// Package repro's root benchmarks regenerate every table and figure of
// the paper's evaluation under `go test -bench=.`, reporting the
// headline quantities as benchmark metrics, plus the ablation studies
// DESIGN.md calls out (core-selection policy, f-domain granularity,
// drop pattern, CC/DC organization, checkpoint cadence) and one
// microbenchmark per RMS kernel.
//
// The rows/series themselves are printed by `go run ./cmd/accordion`;
// here the same drivers run with output discarded so the -bench run
// measures regeneration cost and records the summary metrics.
package repro_test

import (
	"context"
	"io"
	"strconv"
	"testing"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/rms"
	"repro/internal/tech"
)

// runExperiment regenerates one artifact per iteration, rendering to
// io.Discard.
func runExperiment(b *testing.B, id string) []*experiments.Table {
	b.Helper()
	runner, ok := experiments.Registry()[id]
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	var tables []*experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		tables, err = runner(context.Background(), experiments.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		for _, t := range tables {
			if err := t.Render(io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
	return tables
}

// noteMetric extracts the first float following tag in a table note and
// reports it under name.
func noteMetric(b *testing.B, tables []*experiments.Table, tag, name string) {
	b.Helper()
	if v, ok := experiments.NoteMetric(tables, tag); ok {
		b.ReportMetric(v, name)
	}
}

func BenchmarkFig1a(b *testing.B) {
	tables := runExperiment(b, "fig1a")
	noteMetric(b, tables, "energy/op gain", "x-energy-gain")
}

func BenchmarkFig1b(b *testing.B) { runExperiment(b, "fig1b") }

func BenchmarkFig1c(b *testing.B) { runExperiment(b, "fig1c") }

func BenchmarkFig2(b *testing.B) { runExperiment(b, "fig2") }

func BenchmarkFig4(b *testing.B) { runExperiment(b, "fig4") }

func BenchmarkFig5a(b *testing.B) { runExperiment(b, "fig5a") }

func BenchmarkFig5b(b *testing.B) { runExperiment(b, "fig5b") }

func BenchmarkFig6(b *testing.B) { runExperiment(b, "fig6") }

func BenchmarkFig7(b *testing.B) { runExperiment(b, "fig7") }

func BenchmarkTable3(b *testing.B) { runExperiment(b, "table3") }

func BenchmarkHeadline(b *testing.B) {
	tables := runExperiment(b, "headline")
	// Record the paper's 1.61-1.87x band as measured here.
	tab := tables[0]
	lo, hi := 1e9, -1e9
	for i := range tab.Rows {
		for j, col := range tab.Columns {
			if col != "spec MIPS/W" {
				continue
			}
			v, err := strconv.ParseFloat(tab.Rows[i][j], 64)
			if err != nil {
				b.Fatal(err)
			}
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
	}
	b.ReportMetric(lo, "x-MIPSW-min")
	b.ReportMetric(hi, "x-MIPSW-max")
}

func BenchmarkCorruption(b *testing.B) { runExperiment(b, "corruption") }

func BenchmarkBaselines(b *testing.B) { runExperiment(b, "baselines") }

// --- Ablations -----------------------------------------------------

// benchChip returns the shared representative chip.
func benchChip(b *testing.B) *chip.Chip {
	b.Helper()
	ch, err := chip.New(chip.DefaultConfig(), 2014)
	if err != nil {
		b.Fatal(err)
	}
	return ch
}

// BenchmarkAblationCoreSelection compares the Still-point energy
// efficiency under the three core-selection policies.
func BenchmarkAblationCoreSelection(b *testing.B) {
	ch := benchChip(b)
	pm := power.NewModel(ch)
	bench, err := experiments.BenchmarkByName("canneal")
	if err != nil {
		b.Fatal(err)
	}
	qm, err := core.MeasureFronts(bench, 1)
	if err != nil {
		b.Fatal(err)
	}
	policies := []chip.SelectPolicy{chip.SelectEfficient, chip.SelectFastest, chip.SelectSequential}
	for i := 0; i < b.N; i++ {
		for _, pol := range policies {
			solver, err := core.NewSolver(ch, pm, bench, qm)
			if err != nil {
				b.Fatal(err)
			}
			solver.SetPolicy(pol)
			op, err := solver.Solve(bench.DefaultInput(), core.Safe)
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(op.RelMIPSPerWatt, "x-"+pol.String())
			}
		}
	}
}

// BenchmarkAblationFDomain compares per-core engagement against
// whole-cluster engagement (cluster-granularity f domains).
func BenchmarkAblationFDomain(b *testing.B) {
	ch := benchChip(b)
	vdd := ch.VddNTV()
	for i := 0; i < b.N; i++ {
		// Per-core: the 64 best cores chip-wide.
		perCore := ch.SelectCores(64, vdd, chip.SelectFastest)
		fCore := ch.SetFreq(perCore, vdd, tech.ErrorFreePerr)
		// Cluster granularity: the 8 best whole clusters by their
		// slowest member.
		type cl struct {
			id int
			f  float64
		}
		var ranked []cl
		for c := 0; c < ch.Cfg.Clusters; c++ {
			s := ch.ClusterSlowestCore(c, vdd)
			ranked = append(ranked, cl{c, ch.CoreSafeFreq(s, vdd)})
		}
		for a := range ranked {
			for c := a + 1; c < len(ranked); c++ {
				if ranked[c].f > ranked[a].f {
					ranked[a], ranked[c] = ranked[c], ranked[a]
				}
			}
		}
		var clustered []int
		for _, r := range ranked[:8] {
			lo, hi := ch.ClusterCores(r.id)
			for id := lo; id < hi; id++ {
				clustered = append(clustered, id)
			}
		}
		fCluster := ch.SetFreq(clustered, vdd, tech.ErrorFreePerr)
		if i == 0 {
			b.ReportMetric(fCore, "x-f-percore")
			b.ReportMetric(fCluster, "x-f-cluster")
			if fCluster > fCore+1e-9 {
				b.Fatal("cluster granularity cannot beat per-core selection")
			}
		}
	}
}

// BenchmarkAblationDropPattern compares the paper's uniform drop with
// clustered drop for hotspot quality.
func BenchmarkAblationDropPattern(b *testing.B) {
	bench, err := experiments.BenchmarkByName("hotspot")
	if err != nil {
		b.Fatal(err)
	}
	ref, err := rms.Reference(bench, 1)
	if err != nil {
		b.Fatal(err)
	}
	uniform := fault.Plan{Mode: fault.Drop, Num: 16, Den: 64}
	clustered := fault.Plan{Mode: fault.Drop, Num: 16, Den: 64, Contiguous: true}
	for i := 0; i < b.N; i++ {
		ru, err := bench.Run(bench.DefaultInput(), 64, uniform, 1)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := bench.Run(bench.DefaultInput(), 64, clustered, 1)
		if err != nil {
			b.Fatal(err)
		}
		qu, err := bench.Quality(ru, ref)
		if err != nil {
			b.Fatal(err)
		}
		qc, err := bench.Quality(rc, ref)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(qu, "x-q-uniform")
			b.ReportMetric(qc, "x-q-clustered")
		}
	}
}

// BenchmarkAblationOrg compares the three Figure 3 organizations on the
// CC/DC runtime.
func BenchmarkAblationOrg(b *testing.B) {
	orgs := []core.Organization{core.HomogeneousSpatial, core.HomogeneousTimeMux, core.HeterogeneousClusters}
	shared := core.NewSharedRegion([]float64{1})
	for i := 0; i < b.N; i++ {
		for _, org := range orgs {
			rt, err := core.NewRuntime(core.RuntimeConfig{
				Org: org, NumCC: 1, NumDC: 16,
				DataFreq: 0.5, CtrlFreq: 1.5,
				TaskOps: 5e6, NumTasks: 128,
				PollEvery: 0.5e-3, Watchdog: 25e-3,
				RoleSwapCost: 0.5e-3,
			})
			if err != nil {
				b.Fatal(err)
			}
			stats, err := rt.Run(shared.View(), func(task int, in core.ReadOnlyView) float64 { return 1 })
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(stats.Time*1e3, "x-ms-"+org.String())
			}
		}
	}
}

// BenchmarkAblationCheckpoint sweeps the checkpoint cadence of the
// Speculative safety net.
func BenchmarkAblationCheckpoint(b *testing.B) {
	shared := core.NewSharedRegion([]float64{1})
	for i := 0; i < b.N; i++ {
		for _, every := range []float64{5e-3, 20e-3, 80e-3} {
			rt, err := core.NewRuntime(core.RuntimeConfig{
				Org: core.HomogeneousSpatial, NumCC: 1, NumDC: 16,
				DataFreq: 0.5, CtrlFreq: 1.5,
				TaskOps: 5e6, NumTasks: 128,
				PollEvery: 0.5e-3, Watchdog: 25e-3,
				CheckpointEvery: every, CheckpointCost: 0.2e-3,
			})
			if err != nil {
				b.Fatal(err)
			}
			stats, err := rt.Run(shared.View(), func(task int, in core.ReadOnlyView) float64 { return 1 })
			if err != nil {
				b.Fatal(err)
			}
			if i == 0 {
				b.ReportMetric(float64(stats.Checkpoints), "x-ckpts-"+strconv.Itoa(int(every*1e3))+"ms")
			}
		}
	}
}

// --- Kernel microbenchmarks -----------------------------------------

func benchKernel(b *testing.B, name string) {
	bench, err := experiments.BenchmarkByName(name)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		res, err := bench.Run(bench.DefaultInput(), bench.DefaultThreads(), fault.Plan{}, 1)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Ops, "x-ops")
		}
	}
}

func BenchmarkKernelCanneal(b *testing.B)   { benchKernel(b, "canneal") }
func BenchmarkKernelFerret(b *testing.B)    { benchKernel(b, "ferret") }
func BenchmarkKernelBodytrack(b *testing.B) { benchKernel(b, "bodytrack") }
func BenchmarkKernelX264(b *testing.B)      { benchKernel(b, "x264") }
func BenchmarkKernelHotspot(b *testing.B)   { benchKernel(b, "hotspot") }
func BenchmarkKernelSrad(b *testing.B)      { benchKernel(b, "srad") }

// --- Section 7 extensions -------------------------------------------

func BenchmarkWeakscale(b *testing.B) { runExperiment(b, "weakscale") }

func BenchmarkDynamic(b *testing.B) {
	tables := runExperiment(b, "dynamic")
	// Report the static-schedule miss count at the middle rate.
	tab := tables[0]
	if len(tab.Rows) >= 4 {
		if v, err := strconv.ParseFloat(tab.Rows[2][2], 64); err == nil {
			b.ReportMetric(v, "x-static-misses")
		}
		if v, err := strconv.ParseFloat(tab.Rows[3][2], 64); err == nil {
			b.ReportMetric(v, "x-dynamic-misses")
		}
	}
}

func BenchmarkPopulation(b *testing.B) { runExperiment(b, "population") }

// --- Parallel engine ------------------------------------------------
//
// The Sequential/Parallel pairs measure the worker pool's speedup on
// the two headline paths: Monte-Carlo population regeneration and the
// all-experiments driver. scripts/bench_parallel.sh runs both pairs and
// records the ratios in BENCH_parallel.json; the parallel variants
// target >= 3x on a 4+-core machine. Caches are reset every iteration
// so each run pays the full cold-cache cost the pool is hiding.

// benchPopulation draws the paper's 100-chip sample from a prebuilt
// factory under the given pool width.
func benchPopulation(b *testing.B, workers int) {
	b.Cleanup(parallel.SetWorkers(workers))
	f, err := chip.NewFactory(chip.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	const paperChips = 100
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pop := f.Population(2014, paperChips)
		if len(pop) != paperChips {
			b.Fatal("short population")
		}
	}
}

func BenchmarkPopulationSequential(b *testing.B) { benchPopulation(b, 1) }
func BenchmarkPopulationParallel(b *testing.B)   { benchPopulation(b, 0) }

// benchRunAll regenerates every registered experiment under the given
// pool width, rendering to io.Discard — the full `cmd/accordion all`
// run as a benchmark.
func benchRunAll(b *testing.B, workers int) {
	b.Cleanup(parallel.SetWorkers(workers))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		experiments.ResetCaches()
		results, err := experiments.RunAll(context.Background(), experiments.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		if err := experiments.RenderAll(io.Discard, results); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAllSequential(b *testing.B) { benchRunAll(b, 1) }
func BenchmarkRunAll(b *testing.B)           { benchRunAll(b, 0) }

func BenchmarkKernelBtcmine(b *testing.B) { benchKernel(b, "btcmine") }

func BenchmarkVddSweep(b *testing.B) { runExperiment(b, "vddsweep") }

func BenchmarkCPIValidation(b *testing.B) { runExperiment(b, "cpi") }

func BenchmarkCorruptionWide(b *testing.B) { runExperiment(b, "corruptionwide") }

func BenchmarkCCRatio(b *testing.B) { runExperiment(b, "ccratio") }
