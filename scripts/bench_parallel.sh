#!/bin/sh
# Measures the parallel engine's speedup on the two headline paths —
# Monte-Carlo population regeneration and the all-experiments driver —
# by running the Sequential/Parallel benchmark pairs from bench_test.go
# and recording the ratios in BENCH_parallel.json.
#
# Usage: scripts/bench_parallel.sh [output.json]
#   BENCHTIME=5x scripts/bench_parallel.sh   # more iterations
#
# The parallel variants target >= 3x on a 4+-core machine; on fewer
# cores the ratio degrades toward 1x by construction (the pool width
# defaults to GOMAXPROCS).
set -eu
cd "$(dirname "$0")/.." || exit 1
out="${1:-BENCH_parallel.json}"
benchtime="${BENCHTIME:-2x}"

# VCS identity: a benchmark number nobody can attribute to a commit is
# noise, so refuse to write one rather than stamp it blank.
if ! rev=$(git rev-parse HEAD 2>/dev/null); then
    echo "bench_parallel: git rev-parse HEAD failed; refusing to write an unattributable benchmark record" >&2
    exit 1
fi
dirty=false
[ -n "$(git status --porcelain 2>/dev/null)" ] && dirty=true

nsop() {
    go test -run '^$' -bench "^$1\$" -benchtime "$benchtime" . \
        | awk -v b="$1" '$1 ~ "^"b {print $3; exit}'
}

# Fail loudly if a benchmark produced no ns/op figure — a stale
# benchmark name would otherwise flow NaN/empty ratios into the JSON.
require_nsop() {
    case "$2" in
        *[0-9]*) ;;
        *)
            echo "bench_parallel: benchmark $1 reported no ns/op" \
                 "(renamed or deleted in bench_test.go?)" >&2
            exit 1
            ;;
    esac
    case "$2" in
        *[!0-9.]*)
            echo "bench_parallel: benchmark $1 reported malformed ns/op '$2'" >&2
            exit 1
            ;;
    esac
}

echo "benchmarking population draw (sequential)..." >&2
pop_seq=$(nsop BenchmarkPopulationSequential)
require_nsop BenchmarkPopulationSequential "$pop_seq"
echo "benchmarking population draw (parallel)..." >&2
pop_par=$(nsop BenchmarkPopulationParallel)
require_nsop BenchmarkPopulationParallel "$pop_par"
echo "benchmarking all-experiments driver (sequential)..." >&2
all_seq=$(nsop BenchmarkRunAllSequential)
require_nsop BenchmarkRunAllSequential "$all_seq"
echo "benchmarking all-experiments driver (parallel)..." >&2
all_par=$(nsop BenchmarkRunAll)
require_nsop BenchmarkRunAll "$all_par"

cores=$(go env GOMAXPROCS 2>/dev/null || echo 0)
[ "$cores" -gt 0 ] 2>/dev/null || cores=$(getconf _NPROCESSORS_ONLN)

awk -v ps="$pop_seq" -v pp="$pop_par" -v as="$all_seq" -v ap="$all_par" \
    -v cores="$cores" -v benchtime="$benchtime" \
    -v rev="$rev" -v dirty="$dirty" 'BEGIN {
    printf "{\n"
    printf "  \"vcs_revision\": \"%s\",\n", rev
    printf "  \"vcs_dirty\": %s,\n", dirty
    printf "  \"gomaxprocs\": %d,\n", cores
    printf "  \"cores\": %d,\n", cores
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"population\": {\"sequential_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.2f},\n", ps, pp, ps/pp
    printf "  \"runall\": {\"sequential_ns_op\": %s, \"parallel_ns_op\": %s, \"speedup\": %.2f}\n", as, ap, as/ap
    printf "}\n"
}' > "$out"

echo "wrote $out:" >&2
cat "$out"

# With HISTORY_DIR set, the run also lands in the cross-run history
# store so `accordionhist check` can gate the next one against it.
if [ -n "${HISTORY_DIR:-}" ]; then
    go run ./cmd/accordionhist append -dir "$HISTORY_DIR" \
        -tool bench_parallel -kind bench -bench "$out"
fi
