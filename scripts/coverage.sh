#!/bin/sh
# Runs the full test suite with coverage and enforces a minimum total
# statement coverage, so refactors cannot silently shed tests.
#
# Usage: scripts/coverage.sh [profile.out]
#   COVER_MIN=70 scripts/coverage.sh    # override the floor (percent)
set -eu
cd "$(dirname "$0")/.." || exit 1
profile="${1:-coverage.out}"
min="${COVER_MIN:-70}"

go test -coverprofile="$profile" ./...

total=$(go tool cover -func="$profile" | awk '/^total:/ {sub(/%/, "", $3); print $3}')
case "$total" in
    *[0-9]*) ;;
    *)
        echo "coverage: could not read a total from $profile" >&2
        exit 1
        ;;
esac

echo "total statement coverage: ${total}% (floor: ${min}%)"

# The three least-covered packages, so the floor's next threats are
# visible in every run (per-function data rolled up by package).
echo "lowest-covered packages:"
go tool cover -func="$profile" | awk '
    $1 != "total:" {
        split($1, parts, "/[^/]*\\.go:")
        pkg = parts[1]
        sub(/%/, "", $NF)
        sum[pkg] += $NF
        n[pkg]++
    }
    END { for (p in sum) printf "%7.1f%%  %s\n", sum[p]/n[p], p }
' | sort -n | head -3

if awk -v t="$total" -v m="$min" 'BEGIN { exit !(t+0 < m+0) }'; then
    echo "coverage: ${total}% is below the ${min}% floor" >&2
    exit 1
fi
