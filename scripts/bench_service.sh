#!/bin/sh
# Builds accordiond, starts it with a deliberately small queue, drives
# it with the binary's own stdlib-only load generator (-load: sweep,
# determinism double-POST, overflow burst), and records the results in
# BENCH_service.json. The generator itself gates: any status outside
# {200, 202, 429}, a missing 429 under overflow, non-identical bytes
# for identical requests, or a sweep p99 above P99_MAX fails the run.
# Finally the daemon gets SIGTERM and must drain gracefully (exit 0).
#
# Usage: scripts/bench_service.sh [output.json]
#   QUEUE=8 WORKERS=4 REQUESTS=128 scripts/bench_service.sh
#   P99_MAX=2s scripts/bench_service.sh     # tighter latency gate
set -eu
cd "$(dirname "$0")/.." || exit 1
out="${1:-BENCH_service.json}"
addr="${ADDR:-localhost:8344}"
queue="${QUEUE:-4}"
workers="${WORKERS:-2}"
requests="${REQUESTS:-64}"
concurrency="${CONCURRENCY:-8}"
distinct="${DISTINCT:-4}"
# The burst must exceed queue+workers or backpressure cannot trip.
overflow="${OVERFLOW:-24}"
p99max="${P99_MAX:-5s}"
# Generous SLO budgets so the burn gauges are live in the benchmark
# record without ever degrading /healthz during the sweep.
slop99="${SLO_P99:-60s}"
sloerr="${SLO_ERROR_RATE:-1}"

# VCS identity: a benchmark number nobody can attribute to a commit is
# noise, so refuse to write one rather than stamp it blank.
if ! rev=$(git rev-parse HEAD 2>/dev/null); then
    echo "bench_service: git rev-parse HEAD failed; refusing to write an unattributable benchmark record" >&2
    exit 1
fi
dirty=false
[ -n "$(git status --porcelain 2>/dev/null)" ] && dirty=true
gomaxprocs=$(go env GOMAXPROCS 2>/dev/null || echo 0)
[ "$gomaxprocs" -gt 0 ] 2>/dev/null || gomaxprocs=$(getconf _NPROCESSORS_ONLN)

go build -o accordiond ./cmd/accordiond

echo "bench_service: starting accordiond on $addr (queue $queue, $workers workers)..." >&2
./accordiond -addr "$addr" -queue "$queue" -workers "$workers" \
    -retry-after 1s -drain-timeout 60s \
    -slo-p99 "$slop99" -slo-error-rate "$sloerr" &
pid=$!
trap 'kill "$pid" 2>/dev/null || true' EXIT INT TERM

# The load generator polls /healthz before firing, so no startup race.
./accordiond -load "http://$addr" \
    -load-requests "$requests" -load-concurrency "$concurrency" \
    -load-distinct "$distinct" -load-overflow "$overflow" \
    -load-p99-max "$p99max" -load-out "$out" \
    -load-revision "$rev" -load-dirty="$dirty" -load-gomaxprocs "$gomaxprocs"

echo "bench_service: draining accordiond (SIGTERM)..." >&2
kill -TERM "$pid"
trap - EXIT INT TERM
if ! wait "$pid"; then
    echo "bench_service: accordiond did not drain cleanly" >&2
    exit 1
fi
echo "bench_service: graceful drain OK; wrote $out" >&2

# With HISTORY_DIR set, the run also lands in the cross-run history
# store so `accordionhist check` can gate the next one against it.
if [ -n "${HISTORY_DIR:-}" ]; then
    go run ./cmd/accordionhist append -dir "$HISTORY_DIR" \
        -tool bench_service -kind bench -bench "$out"
fi
