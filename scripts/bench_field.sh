#!/bin/sh
# Measures correlated-field sampling: the dense-Cholesky exact path
# against the FFT circulant-embedding path, per grid size, by running
# the BenchmarkField* pairs from internal/variation/bench_test.go and
# recording ns/op, allocs/op, and the speedups in BENCH_field.json.
#
# Usage: scripts/bench_field.sh [output.json]
#   BENCHTIME=20x scripts/bench_field.sh   # more iterations
#
# The circulant path targets >= 10x over dense at 64x64 (4096 points,
# the dense path's historical cap) and must draw with <= 8 allocs/op.
# 16x16 is recorded to document the other side of the crossover: small
# dense draws beat the FFT's constant factor, which is why SampleField
# keeps the dense path below ExactSampleCap.
set -eu
cd "$(dirname "$0")/.." || exit 1
out="${1:-BENCH_field.json}"
benchtime="${BENCHTIME:-10x}"

# VCS identity: a benchmark number nobody can attribute to a commit is
# noise, so refuse to write one rather than stamp it blank.
if ! rev=$(git rev-parse HEAD 2>/dev/null); then
    echo "bench_field: git rev-parse HEAD failed; refusing to write an unattributable benchmark record" >&2
    exit 1
fi
dirty=false
[ -n "$(git status --porcelain 2>/dev/null)" ] && dirty=true
gomaxprocs=$(go env GOMAXPROCS 2>/dev/null || echo 0)
[ "$gomaxprocs" -gt 0 ] 2>/dev/null || gomaxprocs=$(getconf _NPROCESSORS_ONLN)

# Prints "<ns/op> <allocs/op>" for one benchmark.
bench() {
    go test -run '^$' -bench "^$1\$" -benchtime "$benchtime" -benchmem \
        ./internal/variation/ \
        | awk -v b="$1" '$1 ~ "^"b {print $3, $7; exit}'
}

# Fail loudly if a benchmark produced no ns/op figure — a stale
# benchmark name would otherwise flow NaN/empty ratios into the JSON.
require_nsop() {
    case "$2" in
        *[0-9]*) ;;
        *)
            echo "bench_field: benchmark $1 reported no ns/op" \
                 "(renamed or deleted in bench_test.go?)" >&2
            exit 1
            ;;
    esac
    case "$2" in
        *[!0-9.]*)
            echo "bench_field: benchmark $1 reported malformed ns/op '$2'" >&2
            exit 1
            ;;
    esac
}

run() {
    echo "benchmarking $1..." >&2
    # shellcheck disable=SC2046 # splitting is the point: "<ns/op> <allocs/op>"
    set -- "$1" $(bench "$1")
    require_nsop "$1" "${2:-}"
    require_nsop "$1-allocs" "${3:-}"
    echo "$2 $3"
}

d16=$(run BenchmarkFieldDense16x16)
c16=$(run BenchmarkFieldCirculant16x16)
d64=$(run BenchmarkFieldDense64x64)
c64=$(run BenchmarkFieldCirculant64x64)
c128=$(run BenchmarkFieldCirculant128x128)
cfin=$(run BenchmarkFieldCirculant288core)

awk -v d16="$d16" -v c16="$c16" -v d64="$d64" -v c64="$c64" \
    -v c128="$c128" -v cfin="$cfin" -v benchtime="$benchtime" \
    -v rev="$rev" -v dirty="$dirty" -v gomaxprocs="$gomaxprocs" 'BEGIN {
    split(d16, D16); split(c16, C16); split(d64, D64); split(c64, C64)
    split(c128, C128); split(cfin, CF)
    printf "{\n"
    printf "  \"vcs_revision\": \"%s\",\n", rev
    printf "  \"vcs_dirty\": %s,\n", dirty
    printf "  \"gomaxprocs\": %d,\n", gomaxprocs
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"grid_16x16\": {\"points\": 256, \"dense_ns_op\": %s, \"circulant_ns_op\": %s, \"speedup\": %.2f, \"circulant_allocs_op\": %s},\n", D16[1], C16[1], D16[1]/C16[1], C16[2]
    printf "  \"grid_64x64\": {\"points\": 4096, \"dense_ns_op\": %s, \"circulant_ns_op\": %s, \"speedup\": %.2f, \"circulant_allocs_op\": %s},\n", D64[1], C64[1], D64[1]/C64[1], C64[2]
    printf "  \"grid_128x128\": {\"points\": 16384, \"circulant_ns_op\": %s, \"circulant_allocs_op\": %s},\n", C128[1], C128[2]
    printf "  \"grid_288core_192x96\": {\"points\": 18432, \"circulant_ns_op\": %s, \"circulant_allocs_op\": %s}\n", CF[1], CF[2]
    printf "}\n"
}' > "$out"

echo "wrote $out:" >&2
cat "$out"

# With HISTORY_DIR set, the run also lands in the cross-run history
# store so `accordionhist check` can gate the next one against it.
if [ -n "${HISTORY_DIR:-}" ]; then
    go run ./cmd/accordionhist append -dir "$HISTORY_DIR" \
        -tool bench_field -kind bench -bench "$out"
fi
