// Command accordion regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	accordion [-seed N] [-chip N] [-chips N] [list | all | <experiment id>...]
//
// Experiment ids correspond to the paper's tables and figures: fig1a,
// fig1b, fig1c, fig2, fig4, fig5a, fig5b, fig6, fig7, table2, table3,
// headline, corruption, baselines. `list` prints the available ids;
// `all` (or no argument) runs everything in presentation order.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/experiments"
)

func main() {
	var (
		seed   = flag.Int64("seed", 1, "master seed for workloads and fault streams")
		chip   = flag.Int64("chip", 2014, "seed of the representative chip sample")
		chips  = flag.Int("chips", 20, "Monte-Carlo population size")
		format = flag.String("format", "text", "output format: text or csv")
		outDir = flag.String("out", "", "also write each experiment to <out>/<id>.<ext>")
	)
	flag.Parse()
	cfg := experiments.Config{Seed: *seed, ChipSeed: *chip, Chips: *chips}

	args := flag.Args()
	if len(args) == 1 && args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		args = experiments.IDs()
	}
	reg := experiments.Registry()
	for _, id := range args {
		runner, ok := reg[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "accordion: unknown experiment %q (try `accordion list`)\n", id)
			os.Exit(2)
		}
		tables, err := runner(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "accordion: %s: %v\n", id, err)
			os.Exit(1)
		}
		render := func(w io.Writer) error {
			for _, t := range tables {
				var err error
				switch *format {
				case "text":
					err = t.Render(w)
				case "csv":
					err = t.RenderCSV(w)
				default:
					return fmt.Errorf("unknown format %q", *format)
				}
				if err != nil {
					return err
				}
			}
			return nil
		}
		if err := render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "accordion: %v\n", err)
			os.Exit(2)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: %v\n", err)
				os.Exit(1)
			}
			ext := "txt"
			if *format == "csv" {
				ext = "csv"
			}
			f, err := os.Create(filepath.Join(*outDir, id+"."+ext))
			if err != nil {
				fmt.Fprintf(os.Stderr, "accordion: %v\n", err)
				os.Exit(1)
			}
			if err := render(f); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: %v\n", err)
				os.Exit(1)
			}
			if err := f.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
