// Command accordion regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	accordion [-seed N] [-chip N] [-chips N] [-j N] [-telemetry text|json]
//	          [-pprof addr] [list | all | <experiment id>...]
//
// Experiment ids correspond to the paper's tables and figures: fig1a,
// fig1b, fig1c, fig2, fig4, fig5a, fig5b, fig6, fig7, table2, table3,
// headline, corruption, baselines. `list` prints the available ids;
// `all` (or no argument) runs everything in presentation order.
//
// Independent experiments run concurrently on the shared worker pool
// (-j, default GOMAXPROCS) and share the memoized model caches; the
// output is byte-identical to a sequential -j 1 run, in the order the
// ids were given.
//
// Observability: -telemetry text|json enables the process-wide
// telemetry layer (pool utilization, cache hit rates, chip-draw
// latency, per-runner stage timings) and dumps the report to stderr
// after the run, so stdout stays a clean artifact stream. -pprof
// <addr> serves net/http/pprof plus a /telemetryz JSON endpoint with
// the same numbers for live scraping.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"

	"repro/internal/experiments"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

func main() {
	var (
		seed      = flag.Int64("seed", 1, "master seed for workloads and fault streams")
		chip      = flag.Int64("chip", 2014, "seed of the representative chip sample")
		chips     = flag.Int("chips", 20, "Monte-Carlo population size (the paper samples 100)")
		workers   = flag.Int("j", 0, "worker-pool width for experiments and model sweeps (0 = GOMAXPROCS)")
		format    = flag.String("format", "text", "output format: text or csv")
		outDir    = flag.String("out", "", "also write each experiment to <out>/<id>.<ext>")
		telemMode = flag.String("telemetry", "", "dump a telemetry report to stderr after the run: text or json")
		pprofAddr = flag.String("pprof", "", "serve net/http/pprof and /telemetryz on this address (e.g. localhost:6060)")
	)
	flag.Parse()
	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "accordion: "+format+"\n", args...)
		os.Exit(code)
	}
	const maxChips = 100000
	switch {
	case *chips < 1:
		fail(2, "-chips must be at least 1, got %d", *chips)
	case *chips > maxChips:
		fail(2, "-chips %d exceeds the %d-chip sanity cap", *chips, maxChips)
	case *workers < 0:
		fail(2, "-j must be non-negative (0 = GOMAXPROCS), got %d", *workers)
	case *format != "text" && *format != "csv":
		fail(2, "unknown format %q (want text or csv)", *format)
	case *telemMode != "" && *telemMode != "text" && *telemMode != "json":
		fail(2, "unknown -telemetry mode %q (want text or json)", *telemMode)
	}
	parallel.SetWorkers(*workers)

	if *telemMode != "" || *pprofAddr != "" {
		telemetry.SetEnabled(true)
	}
	if *pprofAddr != "" {
		// net/http/pprof registered its handlers on the default mux at
		// import; /telemetryz joins them there.
		http.Handle("/telemetryz", telemetry.Handler())
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: pprof server: %v\n", err)
			}
		}()
	}
	dumpTelemetry := func() {
		if *telemMode == "" {
			return
		}
		snap := telemetry.Capture()
		var err error
		if *telemMode == "json" {
			err = snap.WriteJSON(os.Stderr)
		} else {
			err = snap.WriteText(os.Stderr)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "accordion: telemetry: %v\n", err)
		}
	}

	cfg := experiments.Config{Seed: *seed, ChipSeed: *chip, Chips: *chips}

	args := flag.Args()
	if len(args) == 1 && args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		args = experiments.IDs()
	}
	results, err := experiments.RunMany(context.Background(), cfg, args)
	if err != nil {
		fail(2, "%v (try `accordion list`)", err)
	}
	if err := experiments.FirstErr(results); err != nil {
		// A partial run still has useful telemetry (which stage died,
		// what the caches did first); dump before exiting.
		dumpTelemetry()
		fail(1, "%v", err)
	}
	render := func(w io.Writer, tables []*experiments.Table) error {
		for _, t := range tables {
			var err error
			switch *format {
			case "text":
				err = t.Render(w)
			case "csv":
				err = t.RenderCSV(w)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range results {
		if err := render(os.Stdout, r.Tables); err != nil {
			fail(2, "%v", err)
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fail(1, "%v", err)
			}
			ext := "txt"
			if *format == "csv" {
				ext = "csv"
			}
			f, err := os.Create(filepath.Join(*outDir, r.ID+"."+ext))
			if err != nil {
				fail(1, "%v", err)
			}
			if err := render(f, r.Tables); err != nil {
				fail(1, "%v", err)
			}
			if err := f.Close(); err != nil {
				fail(1, "%v", err)
			}
		}
	}
	dumpTelemetry()
}
