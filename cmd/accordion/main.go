// Command accordion regenerates the paper's evaluation artifacts.
//
// Usage:
//
//	accordion [-seed N] [-chip N] [-chips N] [-j N] [-telemetry text|json]
//	          [-trace FILE] [-events FILE] [-atlas DIR] [-manifest FILE]
//	          [-convergence FILE] [-progress] [-pprof addr]
//	          [-history DIR [-history-check] [-selfprofile]]
//	          [list | all | <experiment id>...]
//	accordion -verify-manifest FILE
//
// Experiment ids correspond to the paper's tables and figures: fig1a,
// fig1b, fig1c, fig2, fig4, fig5a, fig5b, fig6, fig7, table2, table3,
// headline, corruption, baselines. `list` prints the available ids;
// `all` (or no argument) runs everything in presentation order.
//
// Independent experiments run concurrently on the shared worker pool
// (-j, default GOMAXPROCS) and share the memoized model caches; the
// output is byte-identical to a sequential -j 1 run, in the order the
// ids were given.
//
// Observability: -telemetry text|json enables the process-wide
// telemetry layer (pool utilization, cache hit rates, chip-draw
// latency, per-runner stage timings) and dumps the report to stderr
// after the run, so stdout stays a clean artifact stream. -trace FILE
// records hierarchical spans (run → runner → worker → chip draw /
// front measurement / solver sweep) and exports them as Chrome
// trace-event JSON loadable in Perfetto (https://ui.perfetto.dev).
// -manifest FILE writes a run-provenance manifest: the full flag set,
// toolchain versions, per-runner wall times, cache hit rates, and a
// SHA-256 of every artifact the run wrote; -verify-manifest FILE
// re-hashes a manifest's artifacts and exits non-zero on any mismatch
// (paths resolve relative to the current directory, as recorded).
// -convergence FILE enables the Monte-Carlo convergence monitor and
// dumps streaming mean/CI95 statistics for the per-chip metrics;
// -progress additionally prints a chips-done/ETA/CI line to stderr
// every two seconds.
//
// Domain observability: -events FILE records simulation-domain events
// (chip drawn, front measured, fault injected, Drop triggered, quality
// scored) and writes them as NDJSON. -atlas DIR runs the hotspot
// fault-attribution pass on the representative chip and writes the
// per-chip spatial export set — atlas.json, atlas.csv, one
// atlas_<metric>.svg heatmap per metric, and ledger.json with the
// per-core distortion breakdown. -pprof <addr> serves net/http/pprof
// plus the /telemetryz JSON endpoint, the /metricsz Prometheus text
// endpoint, and the /eventsz NDJSON event-log endpoint for live
// scraping. With all of these off, the run is byte-identical to one
// without the observability tier.
//
// Run history: -history DIR appends one record per completed run to
// the store's records.ndjson — runner wall times, telemetry counters
// and quantiles, cache hit rates, convergence CI widths, all stamped
// with the binary's VCS revision and GOMAXPROCS. -history-check then
// gates the fresh record against its baseline window (see
// cmd/accordionhist and the README's "Run history & regression gate"
// section) and exits 1 on a confirmed regression. -selfprofile
// brackets the run with a pprof CPU+heap capture and stores the
// top-N flat hotspots in the record, so hotspot drift is diffable
// across runs without opening pprof.
package main

import (
	"bytes"
	"context"
	"flag"
	"fmt"
	"io"
	"net/http"
	_ "net/http/pprof"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"repro/internal/atlas"
	"repro/internal/converge"
	"repro/internal/experiments"
	"repro/internal/history"
	"repro/internal/parallel"
	"repro/internal/provenance"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
	"repro/internal/telemetry/trace"
)

func main() {
	var (
		seed       = flag.Int64("seed", 1, "master seed for workloads and fault streams")
		chip       = flag.Int64("chip", 2014, "seed of the representative chip sample")
		chips      = flag.Int("chips", 20, "Monte-Carlo population size (the paper samples 100)")
		workers    = flag.Int("j", 0, "worker-pool width for experiments and model sweeps (0 = GOMAXPROCS)")
		format     = flag.String("format", "text", "output format: text or csv")
		outDir     = flag.String("out", "", "also write each experiment to <out>/<id>.<ext>")
		telemMode  = telemetry.ModeFlag(flag.CommandLine)
		tracePath  = flag.String("trace", "", "record spans and write a Chrome trace-event JSON file (open in Perfetto)")
		eventsPath = events.PathFlag(flag.CommandLine)
		atlasDir   = atlas.DirFlag(flag.CommandLine)
		maniPath   = flag.String("manifest", "", "write a run-provenance manifest (flags, versions, wall times, artifact SHA-256s)")
		convPath   = flag.String("convergence", "", "monitor Monte-Carlo convergence and write the statistics as JSON")
		progress   = flag.Bool("progress", false, "print chips-done/ETA/CI-width progress lines to stderr during the run")
		verifyMani = flag.String("verify-manifest", "", "re-hash a manifest's artifacts and exit non-zero on mismatch")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof, /telemetryz and /metricsz on this address (e.g. localhost:6060)")
		histDir    = flag.String("history", "", "append a run record (telemetry, convergence, runner timings) to this run-history store")
		histCheck  = flag.Bool("history-check", false, "after appending, gate the record against its baseline window; exit 1 on regression (requires -history)")
		histMargin = flag.Float64("history-margin", 0, "gate slack relative to the baseline mean (default 0.10; with -history-check)")
		selfProf   = flag.Bool("selfprofile", false, "capture CPU+heap pprof around the run and store top hotspots in the history record (requires -history)")
	)
	flag.Parse()
	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "accordion: "+format+"\n", args...)
		os.Exit(code)
	}

	if *verifyMani != "" {
		man, err := provenance.Load(*verifyMani)
		if err != nil {
			fail(1, "%v", err)
		}
		if errs := man.VerifyArtifacts(); len(errs) > 0 {
			for _, e := range errs {
				fmt.Fprintf(os.Stderr, "accordion: verify-manifest: %v\n", e)
			}
			fail(1, "%d of %d artifacts failed verification", len(errs), len(man.Artifacts))
		}
		fmt.Printf("manifest %s: %d artifacts verified\n", *verifyMani, len(man.Artifacts))
		return
	}

	const maxChips = 100000
	switch {
	case *chips < 1:
		fail(2, "-chips must be at least 1, got %d", *chips)
	case *chips > maxChips:
		fail(2, "-chips %d exceeds the %d-chip sanity cap", *chips, maxChips)
	case *workers < 0:
		fail(2, "-j must be non-negative (0 = GOMAXPROCS), got %d", *workers)
	case *format != "text" && *format != "csv":
		fail(2, "unknown format %q (want text or csv)", *format)
	case *histCheck && *histDir == "":
		fail(2, "-history-check requires -history DIR")
	case *selfProf && *histDir == "":
		fail(2, "-selfprofile requires -history DIR (the hotspot summary lives in the record)")
	}
	parallel.SetWorkers(*workers)

	reportTelemetry, err := telemetry.StartMode(*telemMode)
	if err != nil {
		fail(2, "%v", err)
	}
	// The manifest and the history record report cache hit rates,
	// which live in telemetry counters, so recording must be on even
	// without a -telemetry dump.
	if *pprofAddr != "" || *maniPath != "" || *histDir != "" {
		telemetry.SetEnabled(true)
	}
	if *tracePath != "" {
		trace.SetEnabled(true)
	}
	finishEvents, err := events.StartPath(*eventsPath)
	if err != nil {
		fail(2, "%v", err)
	}
	if *convPath != "" || *progress || *histDir != "" {
		converge.SetEnabled(true)
	}
	if *pprofAddr != "" {
		// net/http/pprof registered its handlers on the default mux at
		// import; /telemetryz, /metricsz and /eventsz join them there.
		http.Handle("/telemetryz", telemetry.Handler())
		http.Handle("/metricsz", telemetry.MetricsHandler())
		http.Handle("/eventsz", events.Handler())
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: pprof server: %v\n", err)
			}
		}()
	}
	dumpTelemetry := func() {
		if err := reportTelemetry(os.Stderr); err != nil {
			fmt.Fprintf(os.Stderr, "accordion: telemetry: %v\n", err)
		}
	}

	var man *provenance.Manifest
	if *maniPath != "" {
		man = provenance.New("accordion")
		man.SetFlags(flag.CommandLine)
	}

	cfg := experiments.Config{Seed: *seed, ChipSeed: *chip, Chips: *chips}

	args := flag.Args()
	if len(args) == 1 && args[0] == "list" {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}
	if len(args) == 0 || (len(args) == 1 && args[0] == "all") {
		args = experiments.IDs()
	}

	ctx := context.Background()
	var root *trace.Span
	if trace.On() {
		root = trace.StartRoot("run").Arg("experiments", int64(len(args)))
		ctx = trace.NewContext(ctx, root)
	}

	start := time.Now()
	stopProgress := func() {}
	if *progress {
		done := make(chan struct{})
		finished := make(chan struct{})
		go func() {
			defer close(finished)
			tick := time.NewTicker(2 * time.Second)
			defer tick.Stop()
			for {
				select {
				case <-done:
					return
				case <-tick.C:
					fmt.Fprintf(os.Stderr, "accordion: %s\n", converge.ProgressLine(*chips, time.Since(start)))
				}
			}
		}()
		stopProgress = func() {
			close(done)
			<-finished
			fmt.Fprintf(os.Stderr, "accordion: %s\n", converge.ProgressLine(*chips, time.Since(start)))
		}
	}

	// finishObservability closes the run span and writes every enabled
	// observability artifact; called on the error path too, so a failed
	// run still leaves its trace, convergence report and manifest (with
	// the error recorded) behind.
	finishObservability := func(results []experiments.RunResult) {
		stopProgress()
		if root != nil {
			root.End()
		}
		if *tracePath != "" {
			if err := writeTrace(*tracePath); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: trace: %v\n", err)
			} else if man != nil {
				if err := man.AddArtifactFile("trace.json", *tracePath); err != nil {
					fmt.Fprintf(os.Stderr, "accordion: manifest: %v\n", err)
				}
			}
		}
		if *convPath != "" {
			if err := writeConvergence(*convPath); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: convergence: %v\n", err)
			} else if man != nil {
				if err := man.AddArtifactFile("convergence.json", *convPath); err != nil {
					fmt.Fprintf(os.Stderr, "accordion: manifest: %v\n", err)
				}
			}
		}
		// The atlas export runs before the event dump so its atlas.built
		// and fault-provenance events land in events.ndjson too.
		if *atlasDir != "" {
			paths, err := writeAtlas(ctx, *atlasDir, cfg)
			if err != nil {
				fmt.Fprintf(os.Stderr, "accordion: atlas: %v\n", err)
			} else if man != nil {
				for _, p := range paths {
					if err := man.AddArtifactFile(filepath.Base(p), p); err != nil {
						fmt.Fprintf(os.Stderr, "accordion: manifest: %v\n", err)
					}
				}
			}
		}
		if *eventsPath != "" {
			if err := finishEvents(); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: %v\n", err)
			} else if man != nil {
				if err := man.AddArtifactFile("events.ndjson", *eventsPath); err != nil {
					fmt.Fprintf(os.Stderr, "accordion: manifest: %v\n", err)
				}
			}
		}
		if man != nil {
			for _, r := range results {
				man.AddRunner(r.ID, r.Elapsed, r.Err)
			}
			addCacheStats(man)
			man.Finish()
			if err := man.WriteFile(*maniPath); err != nil {
				fmt.Fprintf(os.Stderr, "accordion: manifest: %v\n", err)
			}
		}
	}

	// With -selfprofile the run is bracketed by a pprof capture whose
	// hotspot digest lands in the history record; without it the call
	// is exactly the pre-history direct path.
	var results []experiments.RunResult
	var prof *history.ProfileSummary
	if *selfProf {
		var runErr error
		var perr error
		prof, perr = history.CaptureProfile(history.ProfileOptions{CPU: true, Heap: true}, func() error {
			results, runErr = experiments.RunMany(ctx, cfg, args)
			return runErr
		})
		if runErr == nil && perr != nil {
			// A profiler complaint must not fail a healthy run.
			fmt.Fprintf(os.Stderr, "accordion: selfprofile: %v\n", perr)
		}
		err = runErr
	} else {
		results, err = experiments.RunMany(ctx, cfg, args)
	}
	if err != nil {
		fail(2, "%v (try `accordion list`)", err)
	}
	if err := experiments.FirstErr(results); err != nil {
		// A partial run still has useful observability (which stage
		// died, what the caches did first); emit before exiting.
		finishObservability(results)
		dumpTelemetry()
		fail(1, "%v", err)
	}
	render := func(w io.Writer, tables []*experiments.Table) error {
		for _, t := range tables {
			var err error
			switch *format {
			case "text":
				err = t.Render(w)
			case "csv":
				err = t.RenderCSV(w)
			}
			if err != nil {
				return err
			}
		}
		return nil
	}
	ext := "txt"
	if *format == "csv" {
		ext = "csv"
	}
	for _, r := range results {
		out := io.Writer(os.Stdout)
		var buf *bytes.Buffer
		if man != nil {
			// Render through a buffer so the manifest can hash exactly
			// the bytes stdout received; the stream itself is unchanged.
			buf = &bytes.Buffer{}
			out = buf
		}
		if err := render(out, r.Tables); err != nil {
			fail(2, "%v", err)
		}
		if buf != nil {
			if _, err := os.Stdout.Write(buf.Bytes()); err != nil {
				fail(1, "%v", err)
			}
			man.AddArtifactBytes("stdout:"+r.ID, buf.Bytes())
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				fail(1, "%v", err)
			}
			path := filepath.Join(*outDir, r.ID+"."+ext)
			f, err := os.Create(path)
			if err != nil {
				fail(1, "%v", err)
			}
			if err := render(f, r.Tables); err != nil {
				fail(1, "%v", err)
			}
			if err := f.Close(); err != nil {
				fail(1, "%v", err)
			}
			if man != nil {
				if err := man.AddArtifactFile(r.ID+"."+ext, path); err != nil {
					fail(1, "%v", err)
				}
			}
		}
	}
	finishObservability(results)
	dumpTelemetry()

	if *histDir != "" {
		rec := buildHistoryRecord(results, time.Since(start), prof)
		st := history.Store{Dir: *histDir}
		if err := st.Append(rec); err != nil {
			fail(1, "%v", err)
		}
		fmt.Fprintf(os.Stderr, "accordion: appended %s record (%d metrics) to %s\n",
			rec.CompatKey(), len(rec.Metrics), st.Path())
		if *histCheck {
			recs, err := st.Load()
			if err != nil {
				fail(1, "%v", err)
			}
			rep, err := history.Check(recs, history.DefaultDirections(),
				history.GateConfig{Margin: *histMargin})
			if err != nil {
				fail(1, "%v", err)
			}
			if err := rep.WriteText(os.Stderr); err != nil {
				fail(1, "%v", err)
			}
			if rep.Regressions() > 0 {
				os.Exit(1)
			}
		}
	}
}

// buildHistoryRecord harvests the finished run into a history record:
// run identity from the build info, per-runner wall times, the full
// telemetry snapshot (cache hit rates included), and the convergence
// statistics.
func buildHistoryRecord(results []experiments.RunResult, wall time.Duration, prof *history.ProfileSummary) history.Record {
	rec := history.NewRecord("accordion", "run")
	rec.WallMs = wall.Milliseconds()
	rec.Profile = prof
	for _, r := range results {
		if r.Err == nil {
			rec.Set("runner."+r.ID+".wall_ms", float64(r.Elapsed.Milliseconds()))
		}
	}
	rec.AddTelemetry(telemetry.Capture())
	rec.AddConvergence(converge.Capture())
	return rec
}

// writeTrace exports everything the span arena recorded as Chrome
// trace-event JSON.
func writeTrace(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.Dump(f); err != nil {
		f.Close()
		return err
	}
	if n := trace.Dropped(); n > 0 {
		fmt.Fprintf(os.Stderr, "accordion: trace: arena overflow dropped %d events\n", n)
	}
	return f.Close()
}

// writeAtlas runs the fault-attribution pass on the representative
// chip and writes the spatial export set (atlas.json, atlas.csv, the
// SVG heatmaps) plus the per-core distortion ledger into dir. It
// returns every path written so the manifest can hash them.
func writeAtlas(ctx context.Context, dir string, cfg experiments.Config) ([]string, error) {
	res, err := experiments.RunAttribution(ctx, cfg)
	if err != nil {
		return nil, err
	}
	a := atlas.Build(res.Chip)
	a.ApplyLedger(res.Report, res.Bench, res.Mode)
	paths, err := a.WriteDir(dir)
	if err != nil {
		return nil, err
	}
	ledgerPath := filepath.Join(dir, "ledger.json")
	f, err := os.Create(ledgerPath)
	if err != nil {
		return nil, err
	}
	if err := res.Report.WriteJSON(f); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Close(); err != nil {
		return nil, err
	}
	return append(paths, ledgerPath), nil
}

// writeConvergence dumps the Monte-Carlo convergence statistics.
func writeConvergence(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := converge.Capture().WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// addCacheStats harvests the memo caches' hit/miss counters from the
// telemetry registry (cache.<name>.{hits,misses}) into the manifest.
func addCacheStats(man *provenance.Manifest) {
	snap := telemetry.Capture()
	hits := map[string]int64{}
	misses := map[string]int64{}
	for _, c := range snap.Counters {
		if name, ok := strings.CutPrefix(c.Name, "cache."); ok {
			switch {
			case strings.HasSuffix(name, ".hits"):
				hits[strings.TrimSuffix(name, ".hits")] = c.Value
			case strings.HasSuffix(name, ".misses"):
				misses[strings.TrimSuffix(name, ".misses")] = c.Value
			}
		}
	}
	names := make([]string, 0, len(hits))
	for name := range hits {
		names = append(names, name)
	}
	for name := range misses {
		if _, ok := hits[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		man.AddCache(name, hits[name], misses[name])
	}
}
