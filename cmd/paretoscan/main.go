// Command paretoscan extracts the iso-execution-time pareto front for
// one benchmark: for every problem size in the benchmark's sweep it
// reports the (N, f) pair that matches the STV execution time and the
// resulting energy efficiency, power and quality — one panel of
// Figure 6/7 at a time, with a selectable mode flavor and core-
// selection policy.
//
// Usage:
//
//	paretoscan -bench canneal [-flavor safe|spec] [-policy efficient|fastest|sequential]
//	           [-seed N] [-chip N] [-qfloor Q] [-events FILE] [-atlas DIR]
//
// -events FILE records the simulation-domain event log (chip.drawn,
// front.measured, quality.scored, fault provenance) as NDJSON; -atlas
// DIR writes the scanned chip's spatial export set (no fault overlay).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atlas"
	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

func main() {
	var (
		benchName = flag.String("bench", "canneal", "benchmark: canneal ferret bodytrack x264 hotspot srad")
		flavorStr = flag.String("flavor", "safe", "mode flavor: safe or spec")
		policyStr = flag.String("policy", "efficient", "core selection: efficient, fastest, sequential")
		seed      = flag.Int64("seed", 1, "workload seed")
		chipSeed  = flag.Int64("chip", 2014, "chip sample seed")
		qfloor    = flag.Float64("qfloor", 0, "minimum relative quality (0 disables)")
		clusterG  = flag.Bool("cluster", false, "engage whole clusters (the paper's Section 5.1 granularity)")
		telemMode = telemetry.ModeFlag(flag.CommandLine)
		eventsTo  = events.PathFlag(flag.CommandLine)
		atlasDir  = atlas.DirFlag(flag.CommandLine)
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "paretoscan: %v\n", err)
		os.Exit(1)
	}
	reportTelemetry, err := telemetry.StartMode(*telemMode)
	if err != nil {
		fail(err)
	}
	defer reportTelemetry(os.Stderr)
	finishEvents, err := events.StartPath(*eventsTo)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := finishEvents(); err != nil {
			fmt.Fprintf(os.Stderr, "paretoscan: %v\n", err)
		}
	}()

	var flavor core.Flavor
	switch *flavorStr {
	case "safe":
		flavor = core.Safe
	case "spec", "speculative":
		flavor = core.Speculative
	default:
		fail(fmt.Errorf("unknown flavor %q", *flavorStr))
	}
	var policy chip.SelectPolicy
	switch *policyStr {
	case "efficient":
		policy = chip.SelectEfficient
	case "fastest":
		policy = chip.SelectFastest
	case "sequential":
		policy = chip.SelectSequential
	default:
		fail(fmt.Errorf("unknown policy %q", *policyStr))
	}

	b, err := experiments.BenchmarkByName(*benchName)
	if err != nil {
		fail(err)
	}
	ch, err := chip.New(chip.DefaultConfig(), *chipSeed)
	if err != nil {
		fail(err)
	}
	if *atlasDir != "" {
		if _, err := atlas.Build(ch).WriteDir(*atlasDir); err != nil {
			fail(err)
		}
	}
	pm := power.NewModel(ch)
	qm, err := core.MeasureFronts(b, *seed)
	if err != nil {
		fail(err)
	}
	solver, err := core.NewSolver(ch, pm, b, qm)
	if err != nil {
		fail(err)
	}
	solver.SetPolicy(policy)
	solver.SetClusterGranular(*clusterG)
	solver.QualityFloor = *qfloor

	bl := solver.Baseline()
	fmt.Printf("%s %s front on chip %d (policy %s): NSTV=%d fSTV=%.2f GHz PowerSTV=%.1f W VddNTV=%.3f V\n",
		b.Name(), flavor, *chipSeed, policy, bl.N, bl.Freq, bl.Power, ch.VddNTV())
	fmt.Printf("%9s %9s %5s %7s %9s %8s %8s %8s %8s %7s\n",
		"prob.size", "mode", "N", "f(GHz)", "Perr", "N/Nstv", "MIPS/W", "power", "quality", "limit")
	front, err := solver.Front(flavor)
	if err != nil {
		fail(err)
	}
	for _, op := range front {
		limit := op.Limit
		if limit == "" {
			limit = "-"
		}
		fmt.Printf("%9.3f %9s %5d %7.3f %9.1e %8.2f %8.2f %8.2f %8.2f %7s\n",
			op.ProblemSize, op.Mode, op.N, op.Freq, op.Perr,
			op.RelN, op.RelMIPSPerWatt, op.RelPower, op.RelQuality, limit)
	}
}
