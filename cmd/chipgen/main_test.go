package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseGrid(t *testing.T) {
	cases := []struct {
		in   string
		w, h int
		ok   bool
	}{
		{"48x48", 48, 48, true},
		{"192x96", 192, 96, true},
		{"1x1", 1, 1, true},
		// Above the old 4096-point cap: must parse, the circulant
		// sampler handles the size.
		{"128x128", 128, 128, true},
		{"", 0, 0, false},
		{"48", 0, 0, false},
		{"0x48", 0, 0, false},
		{"48x-2", 0, 0, false},
		{"axb", 0, 0, false},
	}
	for _, c := range cases {
		w, h, err := parseGrid(c.in)
		if c.ok != (err == nil) {
			t.Errorf("parseGrid(%q) error = %v, want ok=%v", c.in, err, c.ok)
			continue
		}
		if c.ok && (w != c.w || h != c.h) {
			t.Errorf("parseGrid(%q) = %dx%d, want %dx%d", c.in, w, h, c.w, c.h)
		}
	}
}

// The -fieldgrid path must handle grids above the old dense-sampling
// cap end to end, producing a well-formed PGM of the requested size.
func TestWriteFieldAboveOldCap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "field.pgm")
	if err := writeField(path, 80, 80, 2014); err != nil {
		t.Fatalf("writeField 80x80: %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	header := string(data[:min(len(data), 64)])
	if !strings.HasPrefix(header, "P2") && !strings.HasPrefix(header, "P5") {
		t.Fatalf("not a PGM header: %q", header)
	}
	if !strings.Contains(header, "80 80") {
		t.Errorf("PGM header %q does not declare 80x80", header)
	}
}
