// Command chipgen samples variation-afflicted chips and reports their
// voltage and frequency landscape: per-cluster VddMIN, the chip-wide
// VddNTV, and the distribution of safe core frequencies — the raw
// material of Figures 5a and 5b.
//
// Usage:
//
//	chipgen [-seed N] [-n N] [-v]
//
// With -n > 1 a population summary is printed; -v additionally dumps
// per-cluster detail for the first chip. -events FILE records the
// simulation-domain event log (chip.drawn per sample) as NDJSON;
// -atlas DIR writes the first chip's spatial export set (JSON, CSV,
// SVG heatmaps — no fault overlay, chipgen runs no workload).
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/atlas"
	"repro/internal/chip"
	"repro/internal/mathx"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
	"repro/internal/variation"
	"repro/internal/workload"
)

// parseGrid parses a WxH field resolution. There is no upper size cap:
// grids above variation.ExactSampleCap points go through the
// O(n log n) circulant sampler.
func parseGrid(s string) (w, h int, err error) {
	if _, err := fmt.Sscanf(s, "%dx%d", &w, &h); err != nil {
		return 0, 0, fmt.Errorf("bad -fieldgrid %q: want WxH, e.g. 48x48", s)
	}
	if w <= 0 || h <= 0 {
		return 0, 0, fmt.Errorf("bad -fieldgrid %q: dimensions must be positive", s)
	}
	return w, h, nil
}

// writeField renders one Vth variation field realization as a PGM.
func writeField(path string, w, h int, seed int64) error {
	grid, err := variation.SampleField(w, h, variation.DefaultVth(), mathx.NewRNG(seed))
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := workload.WritePGM(f, grid, -0.35, 0.35); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func main() {
	var (
		seed      = flag.Int64("seed", 2014, "population seed")
		n         = flag.Int("n", 1, "number of chips to sample")
		verbose   = flag.Bool("v", false, "per-cluster detail for the first chip")
		saveFile  = flag.String("save", "", "write the first chip as JSON to this path")
		loadFile  = flag.String("load", "", "analyze a previously saved chip instead of sampling")
		fieldPGM  = flag.String("field", "", "render one Vth variation field to this PGM path")
		fieldGrid = flag.String("fieldgrid", "48x48", "field resolution as WxH; grids above 4096 points use the O(n log n) circulant sampler")
		telemMode = telemetry.ModeFlag(flag.CommandLine)
		eventsTo  = events.PathFlag(flag.CommandLine)
		atlasDir  = atlas.DirFlag(flag.CommandLine)
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "chipgen: %v\n", err)
		os.Exit(1)
	}
	reportTelemetry, err := telemetry.StartMode(*telemMode)
	if err != nil {
		fail(err)
	}
	defer reportTelemetry(os.Stderr)
	finishEvents, err := events.StartPath(*eventsTo)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := finishEvents(); err != nil {
			fmt.Fprintf(os.Stderr, "chipgen: %v\n", err)
		}
	}()
	var pop []*chip.Chip
	if *loadFile != "" {
		f, err := os.Open(*loadFile)
		if err != nil {
			fail(err)
		}
		ch, err := chip.Load(f)
		f.Close()
		if err != nil {
			fail(err)
		}
		pop = []*chip.Chip{ch}
	} else {
		factory, err := chip.NewFactory(chip.DefaultConfig())
		if err != nil {
			fail(err)
		}
		pop = factory.Population(*seed, *n)
	}
	if *saveFile != "" {
		f, err := os.Create(*saveFile)
		if err != nil {
			fail(err)
		}
		if err := pop[0].Save(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("saved chip (seed %d) to %s\n", pop[0].Seed, *saveFile)
	}

	if *atlasDir != "" {
		paths, err := atlas.Build(pop[0]).WriteDir(*atlasDir)
		if err != nil {
			fail(err)
		}
		fmt.Printf("wrote %d atlas files (chip seed %d) to %s\n", len(paths), pop[0].Seed, *atlasDir)
	}

	if *fieldPGM != "" {
		fw, fh, err := parseGrid(*fieldGrid)
		if err != nil {
			fail(err)
		}
		if err := writeField(*fieldPGM, fw, fh, *seed); err != nil {
			fail(err)
		}
		fmt.Printf("wrote %dx%d Vth field (seed %d) to %s\n", fw, fh, *seed, *fieldPGM)
	}

	var ntvs, allVmin []float64
	for _, ch := range pop {
		ntvs = append(ntvs, ch.VddNTV())
		allVmin = append(allVmin, ch.ClusterVddMINs()...)
	}
	lo, hi := mathx.MinMax(allVmin)
	nlo, nhi := mathx.MinMax(ntvs)
	fmt.Printf("chips: %d  cores/chip: %d  clusters/chip: %d\n",
		len(pop), len(pop[0].Cores), pop[0].Cfg.Clusters)
	fmt.Printf("cluster VddMIN: %.3f-%.3f V (mean %.3f)\n", lo, hi, mathx.Mean(allVmin))
	fmt.Printf("chip VddNTV:    %.3f-%.3f V (mean %.3f)\n", nlo, nhi, mathx.Mean(ntvs))

	first := pop[0]
	vdd := first.VddNTV()
	var safe []float64
	for i := range first.Cores {
		safe = append(safe, first.CoreSafeFreq(i, vdd))
	}
	fmt.Printf("chip[0] @ VddNTV=%.3f V: safe core f p5/p50/p95 = %.3f/%.3f/%.3f GHz\n",
		vdd, mathx.Percentile(safe, 5), mathx.Percentile(safe, 50), mathx.Percentile(safe, 95))

	if *verbose {
		fmt.Printf("\n%8s %10s %12s %12s\n", "cluster", "VddMIN(V)", "slow f(GHz)", "fast f(GHz)")
		for c := 0; c < first.Cfg.Clusters; c++ {
			loC, hiC := first.ClusterCores(c)
			fLo, fHi := 1e9, 0.0
			for i := loC; i < hiC; i++ {
				f := first.CoreSafeFreq(i, vdd)
				if f < fLo {
					fLo = f
				}
				if f > fHi {
					fHi = f
				}
			}
			fmt.Printf("%8d %10.3f %12.3f %12.3f\n", c, first.ClusterVddMIN(c), fLo, fHi)
		}
	}
}
