// Command accordionvet is the repository's static-analysis driver: a
// zero-dependency (go/ast + go/parser + go/types, stdlib source
// importer) vet for the domain invariants the runtime tests cannot
// cover exhaustively — determinism of simulation packages, ordered
// output from map iteration, the layering DAG, float equality
// discipline, the telemetry/event name catalog, and RNG seed hygiene
// across pool workers.
//
// Usage:
//
//	accordionvet [-v] [patterns...]
//
// Patterns are go-tool style package patterns relative to the module
// root ("./...", "./internal/...", "./cmd/accordionvet"); the default
// is "./...". Diagnostics print as
//
//	file:line:col: [analyzer] message
//
// and the exit status is 1 when findings exist, 2 on load errors, 0 on
// a clean tree. Findings can be suppressed — with justification — via
//
//	//lint:ignore <analyzer> <reason>
//
// on the offending line or the line above; unused or unjustified
// suppressions are findings themselves, and the total is capped by the
// configured budget. CI runs `go run ./cmd/accordionvet ./...` in the
// lint job; `make lint` mirrors it locally.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	verbose := flag.Bool("v", false, "list analyzers and the packages inspected")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cfg, err := analysis.DefaultConfig(".")
	if err != nil {
		fmt.Fprintf(os.Stderr, "accordionvet: %v\n", err)
		os.Exit(2)
	}
	if *verbose {
		for _, a := range analysis.Analyzers() {
			fmt.Fprintf(os.Stderr, "accordionvet: analyzer %-14s %s\n", a.Name, a.Doc)
		}
	}
	res, err := analysis.Run(cfg, patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "accordionvet: %v\n", err)
		os.Exit(2)
	}
	for _, d := range res.Diagnostics {
		fmt.Println(d)
	}
	if *verbose && res.Suppressed > 0 {
		fmt.Fprintf(os.Stderr, "accordionvet: %d finding(s) suppressed by //lint:ignore\n", res.Suppressed)
	}
	if len(res.Diagnostics) > 0 {
		fmt.Fprintf(os.Stderr, "accordionvet: %d finding(s)\n", len(res.Diagnostics))
		os.Exit(1)
	}
}
