package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/telemetry/events"
)

// loadFlags is the -load client mode: a stdlib-only load generator
// that drives a live accordiond and writes BENCH_service.json. It is
// the tool behind scripts/bench_service.sh and the CI service-smoke
// job, so it also *gates*: any response status outside {200, 202, 429}
// fails the run, as do a missing 429 under deliberate overflow,
// non-identical bytes for identical requests, and (when -load-p99-max
// is set) a p99 above the bound.
type loadFlags struct {
	url          string
	requests     int
	concurrency  int
	distinct     int
	experiment   string
	chips        int
	overflow     int
	overflowExp  string
	overflowChip int
	p99Max       time.Duration
	timeout      time.Duration
	out          string
	revision     string
	dirty        bool
	gomaxprocs   int
}

func newLoadFlags(fs *flag.FlagSet) *loadFlags {
	l := &loadFlags{}
	fs.StringVar(&l.url, "load", "", "run as a load generator against this base URL (e.g. http://localhost:8344) instead of serving")
	fs.IntVar(&l.requests, "load-requests", 64, "total requests in the sweep phase")
	fs.IntVar(&l.concurrency, "load-concurrency", 8, "concurrent client goroutines")
	fs.IntVar(&l.distinct, "load-distinct", 4, "distinct request seeds rotated through the sweep (the rest coalesce)")
	fs.StringVar(&l.experiment, "load-experiment", "fig1a", "experiment id each request runs")
	fs.IntVar(&l.chips, "load-chips", 4, "population size each request uses")
	fs.IntVar(&l.overflow, "load-overflow", 0, "overflow-phase burst size (0 = skip; must exceed queue+workers to prove 429s)")
	fs.StringVar(&l.overflowExp, "load-overflow-experiment", "population", "experiment id the overflow burst runs (slow enough to hold the queue full)")
	fs.IntVar(&l.overflowChip, "load-overflow-chips", 8, "population size each overflow request uses")
	fs.DurationVar(&l.p99Max, "load-p99-max", 0, "fail if sweep p99 latency exceeds this (0 = record only)")
	fs.DurationVar(&l.timeout, "load-timeout", 2*time.Minute, "per-request client timeout")
	fs.StringVar(&l.out, "load-out", "BENCH_service.json", "benchmark JSON output path")
	fs.StringVar(&l.revision, "load-revision", "", "VCS revision stamped into the bench JSON (from the harness)")
	fs.BoolVar(&l.dirty, "load-dirty", false, "VCS dirty flag stamped into the bench JSON")
	fs.IntVar(&l.gomaxprocs, "load-gomaxprocs", 0, "server GOMAXPROCS stamped into the bench JSON")
	return l
}

// body builds the request payload for one sweep slot; slots rotate
// through `distinct` seeds so the server sees a mix of fresh jobs and
// coalescable repeats.
func (l *loadFlags) body(seed int64) []byte {
	return buildBody(l.experiment, l.chips, seed)
}

func buildBody(experiment string, chips int, seed int64) []byte {
	doc := map[string]any{
		"kind":        "experiments",
		"experiments": []string{experiment},
		"chips":       chips,
		"seed":        seed,
	}
	data, err := json.Marshal(doc)
	if err != nil {
		panic(err)
	}
	return data
}

// benchDoc is the BENCH_service.json schema. The VCS/GOMAXPROCS
// identity keys at the top level are what `accordionhist append`
// lifts into a run-history record, so regression baselines only ever
// compare like with like.
type benchDoc struct {
	URL         string         `json:"url"`
	Experiment  string         `json:"experiment"`
	Chips       int            `json:"chips"`
	Requests    int            `json:"requests"`
	Concurrency int            `json:"concurrency"`
	Distinct    int            `json:"distinct"`
	VCSRevision string         `json:"vcs_revision,omitempty"`
	VCSDirty    bool           `json:"vcs_dirty,omitempty"`
	GOMAXPROCS  int            `json:"gomaxprocs,omitempty"`
	Sweep       sweepDoc       `json:"sweep"`
	Overflow    *overflowDoc   `json:"overflow,omitempty"`
	Determinism determinismDoc `json:"determinism"`
	// CachesCold is the cumulative cache picture after the sweep: a
	// fresh daemon shows the cold misses the first requests paid.
	// CachesWarm isolates a second visit to an already-measured model
	// (same benchmark+seed, different population size), where the memo
	// layers must actually hit — the block that proves the caches earn
	// their keep, which the old single `caches` blob (all-zero hit
	// rates on a cold server) never could.
	CachesCold map[string]rateDoc `json:"caches_cold"`
	CachesWarm map[string]rateDoc `json:"caches_warm"`
	Service    serviceDoc         `json:"service"`
	Ops        opsDoc             `json:"ops"`
}

// opsDoc records the observability-surface checks: the dashboard and
// SSE stream answered, the access log carried the sweep, and the
// rolling/SLO readouts the server computed for the same traffic the
// client measured.
type opsDoc struct {
	StatuszOK         bool    `json:"statusz_ok"`
	WatchEventKind    string  `json:"watch_event_kind"`
	AccessLogLines    int     `json:"access_log_lines"`
	RollingCount1m    int64   `json:"rolling_count_1m"`
	RollingP99Ms      float64 `json:"rolling_p99_ms_1m"`
	RollingRateRPS    float64 `json:"rolling_rate_rps_1m"`
	RollingErrorRate  float64 `json:"rolling_error_rate_1m"`
	SLOP99BurnMilli   int64   `json:"slo_p99_burn_milli"`
	SLOErrorBurnMilli int64   `json:"slo_error_burn_milli"`
}

type sweepDoc struct {
	WallMs        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	OK            int     `json:"ok_200"`
	Rejected      int     `json:"rejected_429"`
	P50Ms         float64 `json:"p50_ms"`
	P95Ms         float64 `json:"p95_ms"`
	P99Ms         float64 `json:"p99_ms"`
}

type overflowDoc struct {
	Attempts int `json:"attempts"`
	Accepted int `json:"accepted"`
	Rejected int `json:"rejected_429"`
}

type determinismDoc struct {
	Identical bool `json:"identical"`
	Bytes     int  `json:"bytes"`
}

type rateDoc struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

type serviceDoc struct {
	Requests  int64 `json:"requests"`
	Rejected  int64 `json:"rejected"`
	Coalesced int64 `json:"coalesced"`
}

func (l *loadFlags) run() error {
	if l.requests < 1 || l.concurrency < 1 || l.distinct < 1 {
		return fmt.Errorf("-load-requests, -load-concurrency and -load-distinct must be positive")
	}
	client := &http.Client{Timeout: l.timeout}
	if err := l.waitHealthy(client); err != nil {
		return err
	}

	doc := benchDoc{
		URL:         l.url,
		Experiment:  l.experiment,
		Chips:       l.chips,
		Requests:    l.requests,
		Concurrency: l.concurrency,
		Distinct:    l.distinct,
		VCSRevision: l.revision,
		VCSDirty:    l.dirty,
		GOMAXPROCS:  l.gomaxprocs,
	}

	// Sweep: l.requests POSTs to /run from l.concurrency goroutines,
	// rotating through l.distinct seeds. With distinct <= queue depth
	// every request must come back 200 (coalescing keeps the queue
	// footprint at `distinct` jobs); latency is recorded per request.
	latencies := make([]time.Duration, l.requests)
	statuses := make([]int, l.requests)
	errs := make([]error, l.requests)
	var wg sync.WaitGroup
	next := make(chan int)
	sweepStart := time.Now()
	for w := 0; w < l.concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				body := l.body(1 + int64(i%l.distinct))
				t0 := time.Now()
				status, _, err := l.post(client, "/run", body)
				latencies[i] = time.Since(t0)
				statuses[i] = status
				errs[i] = err
			}
		}()
	}
	for i := 0; i < l.requests; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	wall := time.Since(sweepStart)

	var okLat []time.Duration
	for i := range statuses {
		switch {
		case errs[i] != nil:
			return fmt.Errorf("sweep request %d: %w", i, errs[i])
		case statuses[i] == http.StatusOK:
			doc.Sweep.OK++
			okLat = append(okLat, latencies[i])
		case statuses[i] == http.StatusTooManyRequests:
			doc.Sweep.Rejected++
		default:
			return fmt.Errorf("sweep request %d: unexpected status %d (only 200 and 429 are acceptable)", i, statuses[i])
		}
	}
	if doc.Sweep.OK == 0 {
		return fmt.Errorf("sweep: no request succeeded (%d rejected)", doc.Sweep.Rejected)
	}
	doc.Sweep.WallMs = float64(wall.Microseconds()) / 1e3
	doc.Sweep.ThroughputRPS = float64(l.requests) / wall.Seconds()
	doc.Sweep.P50Ms = ms(percentile(okLat, 0.50))
	doc.Sweep.P95Ms = ms(percentile(okLat, 0.95))
	doc.Sweep.P99Ms = ms(percentile(okLat, 0.99))
	if l.p99Max > 0 && percentile(okLat, 0.99) > l.p99Max {
		return fmt.Errorf("sweep p99 %.1fms exceeds the %.1fms bound", doc.Sweep.P99Ms, ms(l.p99Max))
	}

	// Determinism gate: the same body twice must yield byte-identical
	// responses (the second is typically served from the retained job,
	// but the contract holds either way).
	detBody := l.body(1)
	_, first, err := l.post(client, "/run", detBody)
	if err != nil {
		return fmt.Errorf("determinism request: %w", err)
	}
	_, second, err := l.post(client, "/run", detBody)
	if err != nil {
		return fmt.Errorf("determinism request: %w", err)
	}
	doc.Determinism.Identical = bytes.Equal(first, second)
	doc.Determinism.Bytes = len(first)
	if !doc.Determinism.Identical {
		return fmt.Errorf("identical requests returned different bodies (%d vs %d bytes)", len(first), len(second))
	}

	// Overflow: a concurrent burst of distinct, never-seen seeds
	// against the bounded queue. The burst runs a deliberately slow
	// request shape (Monte-Carlo population jobs, seconds each, vs the
	// sweep's millisecond solver runs) so the absorbed jobs hold the
	// workers and the queue full while the rest of the burst lands. The
	// burst exceeds queue+workers, so at least one 429 (with nothing
	// else unexpected) proves the backpressure path answers instead of
	// queueing without bound.
	if l.overflow > 0 {
		of := &overflowDoc{Attempts: l.overflow}
		results := make([]int, l.overflow)
		oerrs := make([]error, l.overflow)
		var owg sync.WaitGroup
		for i := 0; i < l.overflow; i++ {
			owg.Add(1)
			go func(i int) {
				defer owg.Done()
				body := buildBody(l.overflowExp, l.overflowChip, 1000+int64(i))
				status, _, err := l.post(client, "/jobs", body)
				results[i] = status
				oerrs[i] = err
			}(i)
		}
		owg.Wait()
		for i, status := range results {
			switch {
			case oerrs[i] != nil:
				return fmt.Errorf("overflow request %d: %w", i, oerrs[i])
			case status == http.StatusAccepted || status == http.StatusOK:
				of.Accepted++
			case status == http.StatusTooManyRequests:
				of.Rejected++
			default:
				return fmt.Errorf("overflow request %d: unexpected status %d", i, status)
			}
		}
		if of.Rejected == 0 {
			return fmt.Errorf("overflow burst of %d produced no 429: queue not exerting backpressure", l.overflow)
		}
		doc.Overflow = of
	}

	if err := l.scrape(client, &doc); err != nil {
		return err
	}
	if err := l.warmSweep(client, &doc); err != nil {
		return err
	}
	if err := l.checkOps(client, &doc); err != nil {
		return err
	}

	data, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(l.out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "accordiond: load: wrote %s\n", l.out)
	_, err = os.Stdout.Write(data)
	return err
}

// postPatient posts to /run until it gets a 200, backing off on 429 —
// the overflow burst right before the warm phase leaves the queue
// full of deliberately slow jobs, and a 429 there is the backpressure
// contract working, not a failure.
func (l *loadFlags) postPatient(client *http.Client, what string, body []byte) error {
	deadline := time.Now().Add(l.timeout)
	for {
		status, _, err := l.post(client, "/run", body)
		switch {
		case err != nil:
			return fmt.Errorf("%s request: %w", what, err)
		case status == http.StatusOK:
			return nil
		case status != http.StatusTooManyRequests:
			return fmt.Errorf("%s request: unexpected status %d", what, status)
		case time.Now().After(deadline):
			return fmt.Errorf("%s request: still 429 after %s (queue never drained)", what, l.timeout)
		}
		time.Sleep(250 * time.Millisecond)
	}
}

// post sends one JSON request and returns the status and body.
func (l *loadFlags) post(client *http.Client, path string, body []byte) (int, []byte, error) {
	resp, err := client.Post(l.url+path, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return resp.StatusCode, nil, err
	}
	return resp.StatusCode, data, nil
}

// waitHealthy polls /healthz until the daemon answers 200.
func (l *loadFlags) waitHealthy(client *http.Client) error {
	deadline := time.Now().Add(30 * time.Second)
	for {
		resp, err := client.Get(l.url + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		if time.Now().After(deadline) {
			if err != nil {
				return fmt.Errorf("server never became healthy: %w", err)
			}
			return fmt.Errorf("server never became healthy")
		}
		time.Sleep(100 * time.Millisecond)
	}
}

// scrape reads /telemetryz and extracts the cache hit rates and the
// service counters into the bench document.
func (l *loadFlags) scrape(client *http.Client, doc *benchDoc) error {
	resp, err := client.Get(l.url + "/telemetryz")
	if err != nil {
		return fmt.Errorf("scraping /telemetryz: %w", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
		Gauges []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"gauges"`
		Windows []struct {
			Name     string `json:"name"`
			Horizons []struct {
				Label      string  `json:"label"`
				Count      int64   `json:"count"`
				RatePerSec float64 `json:"rate_per_sec"`
				ErrorRate  float64 `json:"error_rate"`
				P99        int64   `json:"p99"`
			} `json:"horizons"`
		} `json:"windows"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return fmt.Errorf("decoding /telemetryz: %w", err)
	}
	for _, g := range snap.Gauges {
		switch g.Name {
		case "service.slo.p99_burn_milli":
			doc.Ops.SLOP99BurnMilli = g.Value
		case "service.slo.error_burn_milli":
			doc.Ops.SLOErrorBurnMilli = g.Value
		}
	}
	for _, w := range snap.Windows {
		if w.Name != "service.latency_ns" {
			continue
		}
		for _, h := range w.Horizons {
			if h.Label != "1m" {
				continue
			}
			doc.Ops.RollingCount1m = h.Count
			doc.Ops.RollingP99Ms = float64(h.P99) / 1e6
			doc.Ops.RollingRateRPS = h.RatePerSec
			doc.Ops.RollingErrorRate = h.ErrorRate
		}
	}
	if doc.Ops.RollingCount1m == 0 {
		return fmt.Errorf("/telemetryz: rolling service.latency_ns 1m window empty after %d requests", l.requests)
	}
	for _, c := range snap.Counters {
		switch c.Name {
		case "service.requests":
			doc.Service.Requests = c.Value
		case "service.rejected":
			doc.Service.Rejected = c.Value
		case "service.coalesced":
			doc.Service.Coalesced = c.Value
		}
	}
	cold, err := l.cacheCounters(client)
	if err != nil {
		return err
	}
	doc.CachesCold = rates(cold)
	return nil
}

// cachePair is one memo layer's cumulative hit/miss counters.
type cachePair struct{ hits, misses int64 }

// cacheCounters scrapes the cumulative cache.<Name>.{hits,misses}
// counters from /telemetryz.
func (l *loadFlags) cacheCounters(client *http.Client) (map[string]cachePair, error) {
	resp, err := client.Get(l.url + "/telemetryz")
	if err != nil {
		return nil, fmt.Errorf("scraping /telemetryz: %w", err)
	}
	defer resp.Body.Close()
	var snap struct {
		Counters []struct {
			Name  string `json:"name"`
			Value int64  `json:"value"`
		} `json:"counters"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return nil, fmt.Errorf("decoding /telemetryz: %w", err)
	}
	out := map[string]cachePair{}
	for _, c := range snap.Counters {
		name, ok := strings.CutPrefix(c.Name, "cache.")
		if !ok {
			continue
		}
		if base, ok := strings.CutSuffix(name, ".hits"); ok {
			p := out[base]
			p.hits = c.Value
			out[base] = p
		} else if base, ok := strings.CutSuffix(name, ".misses"); ok {
			p := out[base]
			p.misses = c.Value
			out[base] = p
		}
	}
	return out, nil
}

// rates converts cumulative counters to the bench-JSON rate blocks,
// dropping untouched layers.
func rates(counters map[string]cachePair) map[string]rateDoc {
	out := map[string]rateDoc{}
	for name, p := range counters {
		if p.hits+p.misses == 0 {
			continue
		}
		out[name] = rateDoc{
			Hits:    p.hits,
			Misses:  p.misses,
			HitRate: float64(p.hits) / float64(p.hits+p.misses),
		}
	}
	return out
}

// delta subtracts two cumulative scrapes, isolating the cache traffic
// between them.
func delta(before, after map[string]cachePair) map[string]cachePair {
	out := map[string]cachePair{}
	for name, a := range after {
		b := before[name]
		out[name] = cachePair{hits: a.hits - b.hits, misses: a.misses - b.misses}
	}
	return out
}

// warmSweep is the warm-cache phase behind the caches_warm block. The
// sweep above ran against a cold daemon, so its cache picture is all
// misses — committing that as "the" cache stats once shipped a bench
// artifact claiming the memo layers never hit. Here the client runs
// one front-measuring request to populate the model caches, then an
// almost-identical request — same benchmark set and seed, population
// one chip larger so nothing coalesces — and scrapes the counter
// delta: the second request must hit the measured-fronts memo
// (MeasuredFronts is keyed by benchmark+seed, not population), which
// the run gates on.
func (l *loadFlags) warmSweep(client *http.Client, doc *benchDoc) error {
	const warmExperiment = "fig2"
	const warmSeed = 9009
	if err := l.postPatient(client, "warm populate", buildBody(warmExperiment, l.chips, warmSeed)); err != nil {
		return err
	}
	before, err := l.cacheCounters(client)
	if err != nil {
		return fmt.Errorf("warm phase: %w", err)
	}
	if err := l.postPatient(client, "warm revisit", buildBody(warmExperiment, l.chips+1, warmSeed)); err != nil {
		return err
	}
	after, err := l.cacheCounters(client)
	if err != nil {
		return fmt.Errorf("warm phase: %w", err)
	}
	doc.CachesWarm = rates(delta(before, after))
	if doc.CachesWarm["experiments.MeasuredFronts"].Hits < 1 {
		return fmt.Errorf("warm revisit produced no experiments.MeasuredFronts hit: %+v", doc.CachesWarm)
	}
	return nil
}

// checkOps gates the observability surface after the sweep: /statusz
// must serve well-formed HTML, /watch must deliver at least one SSE
// event within a timeout, and the /eventsz access log must carry the
// sweep's service.request lines. The server's own rolling 1m latency
// readout and SLO burn gauges land in the bench document beside the
// client-measured latencies.
func (l *loadFlags) checkOps(client *http.Client, doc *benchDoc) error {
	// Dashboard: well-formed HTML under the right content type.
	resp, err := client.Get(l.url + "/statusz")
	if err != nil {
		return fmt.Errorf("GET /statusz: %w", err)
	}
	page, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("reading /statusz: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("/statusz: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		return fmt.Errorf("/statusz: Content-Type %q, want text/html", ct)
	}
	html := string(page)
	for _, want := range []string{"<!DOCTYPE html>", "</html>", "accordiond", "rolling latency"} {
		if !strings.Contains(html, want) {
			return fmt.Errorf("/statusz: page misses %q", want)
		}
	}
	doc.Ops.StatuszOK = true

	// Live stream: one SSE data frame within the timeout. The replay of
	// the ring tail guarantees a frame immediately after the sweep.
	kind, err := l.readOneSSE()
	if err != nil {
		return fmt.Errorf("GET /watch: %w", err)
	}
	doc.Ops.WatchEventKind = kind

	// Access log: the NDJSON ring must parse and carry the sweep.
	resp, err = client.Get(l.url + "/eventsz")
	if err != nil {
		return fmt.Errorf("GET /eventsz: %w", err)
	}
	evs, err := events.ParseNDJSON(resp.Body)
	resp.Body.Close()
	if err != nil {
		return fmt.Errorf("parsing /eventsz NDJSON: %w", err)
	}
	for _, e := range evs {
		if e.Kind == "service.request" {
			doc.Ops.AccessLogLines++
		}
	}
	if doc.Ops.AccessLogLines == 0 {
		return fmt.Errorf("/eventsz: no service.request access-log events after %d requests", l.requests)
	}
	return nil
}

// readOneSSE connects to /watch and returns the kind of the first
// event frame, failing after a bounded wait.
func (l *loadFlags) readOneSSE() (string, error) {
	sseClient := &http.Client{Timeout: 10 * time.Second}
	resp, err := sseClient.Get(l.url + "/watch")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		return "", fmt.Errorf("Content-Type %q, want text/event-stream", ct)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	for sc.Scan() {
		line, ok := strings.CutPrefix(sc.Text(), "data: ")
		if !ok {
			continue
		}
		evs, err := events.ParseNDJSON(strings.NewReader(line))
		if err != nil || len(evs) != 1 {
			return "", fmt.Errorf("bad SSE frame %q: %v", line, err)
		}
		return evs[0].Kind, nil
	}
	if err := sc.Err(); err != nil {
		return "", err
	}
	return "", fmt.Errorf("stream ended without an event frame")
}

// percentile returns the q-quantile of the recorded latencies
// (nearest-rank on a sorted copy).
func percentile(lat []time.Duration, q float64) time.Duration {
	if len(lat) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lat...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1e3 }
