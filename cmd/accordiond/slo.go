package main

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/telemetry"
)

// sloTracker turns the rolling latency window into burn-rate gauges
// and a readiness verdict. Targets come from -slo-p99 and
// -slo-error-rate; a zero target disables that dimension. Burn is
// expressed in milli-units of the budget — 1000 means the last
// minute's observation sits exactly at the target, above 1000 the
// instance is burning error budget and /healthz degrades, so a load
// balancer stops routing to it before clients notice.
type sloTracker struct {
	p99Target time.Duration // 0 = dimension off
	errTarget float64       // 0 = dimension off

	win     *telemetry.Window
	p99Burn *telemetry.Gauge
	errBurn *telemetry.Gauge

	mu       sync.Mutex
	p99Milli int64
	errMilli int64
}

// newSLOTracker builds the tracker over the service latency window.
func newSLOTracker(p99 time.Duration, errRate float64) *sloTracker {
	return &sloTracker{
		p99Target: p99,
		errTarget: errRate,
		win:       telemetry.GetWindow("service.latency_ns"),
		p99Burn:   telemetry.GetGauge("service.slo.p99_burn_milli"),
		errBurn:   telemetry.GetGauge("service.slo.error_burn_milli"),
	}
}

// enabled reports whether any SLO dimension is configured.
func (t *sloTracker) enabled() bool { return t.p99Target > 0 || t.errTarget > 0 }

// refresh recomputes both burn rates from the last minute of traffic
// and publishes them as gauges. A quiet window burns nothing.
func (t *sloTracker) refresh() {
	st := t.win.Stats(time.Minute)
	var p99Milli, errMilli int64
	if st.Count > 0 {
		if t.p99Target > 0 {
			p99Milli = 1000 * st.P99 / int64(t.p99Target)
		}
		if t.errTarget > 0 {
			errMilli = int64(1000 * st.ErrorRate / t.errTarget)
		}
	}
	t.p99Burn.Set(p99Milli)
	t.errBurn.Set(errMilli)
	t.mu.Lock()
	t.p99Milli, t.errMilli = p99Milli, errMilli
	t.mu.Unlock()
}

// run refreshes the burn gauges on a ticker until ctx ends.
func (t *sloTracker) run(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-tick.C:
			t.refresh()
		}
	}
}

// burns returns the last computed burn rates (milli-units of budget).
func (t *sloTracker) burns() (p99Milli, errMilli int64) {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.p99Milli, t.errMilli
}

// Ready is the service.Config.ReadyCheck hook: a burn above 1000 milli
// (observation past the target) degrades readiness with the reason.
func (t *sloTracker) Ready() error {
	p99Milli, errMilli := t.burns()
	if t.p99Target > 0 && p99Milli > 1000 {
		return fmt.Errorf("slo: rolling p99 at %d milli of the %s budget", p99Milli, t.p99Target)
	}
	if t.errTarget > 0 && errMilli > 1000 {
		return fmt.Errorf("slo: rolling error rate at %d milli of the %g budget", errMilli, t.errTarget)
	}
	return nil
}
