package main

import (
	"html/template"
	"net/http"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
)

// statuszTmpl renders the operator dashboard: pure stdlib HTML, no
// scripts or external assets, so it works from curl --include or any
// browser pointed at the daemon.
var statuszTmpl = template.Must(template.New("statusz").Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<title>accordiond statusz</title>
<style>
body { font-family: monospace; margin: 2em; }
table { border-collapse: collapse; margin: 0.5em 0 1.5em; }
th, td { border: 1px solid #999; padding: 0.25em 0.75em; text-align: right; }
th { background: #eee; }
td.l, th.l { text-align: left; }
.bad { color: #b00; font-weight: bold; }
.ok { color: #070; }
</style>
</head>
<body>
<h1>accordiond</h1>
<p>state:
{{- if .Summary.Draining}} <span class="bad">draining</span>
{{- else if .SLOBreached}} <span class="bad">degraded ({{.SLOReason}})</span>
{{- else}} <span class="ok">serving</span>{{end}}</p>

<h2>queue</h2>
<table>
<tr><th class="l">queue</th><th>inflight</th><th>workers</th><th>retry-after</th></tr>
<tr><td class="l">{{.Summary.QueueLen}}/{{.Summary.QueueCap}}</td>
<td>{{.Summary.Inflight}}</td><td>{{.Summary.Workers}}</td><td>{{.Summary.RetrySecs}}s</td></tr>
</table>

<h2>rolling latency (enqueue to finish)</h2>
<table>
<tr><th class="l">horizon</th><th>n</th><th>req/s</th><th>err rate</th><th>p50</th><th>p95</th><th>p99</th></tr>
{{range .Horizons}}<tr><td class="l">{{.Label}}</td><td>{{.Count}}</td><td>{{printf "%.2f" .RatePerSec}}</td>
<td>{{printf "%.3f" .ErrorRate}}</td><td>{{.P50}}</td><td>{{.P95}}</td><td>{{.P99}}</td></tr>
{{end}}</table>

<h2>slo</h2>
{{if .SLOEnabled}}<table>
<tr><th class="l">dimension</th><th>target</th><th>burn (milli)</th></tr>
{{if .P99Target}}<tr><td class="l">p99 latency</td><td>{{.P99Target}}</td>
<td{{if gt .P99Burn 1000}} class="bad"{{end}}>{{.P99Burn}}</td></tr>{{end}}
{{if .ErrTarget}}<tr><td class="l">error rate</td><td>{{printf "%g" .ErrTarget}}</td>
<td{{if gt .ErrBurn 1000}} class="bad"{{end}}>{{.ErrBurn}}</td></tr>{{end}}
</table>{{else}}<p>no SLO configured (-slo-p99, -slo-error-rate)</p>{{end}}

<h2>recent jobs</h2>
<table>
<tr><th class="l">job</th><th class="l">kind</th><th class="l">state</th><th>queued ms</th><th>run ms</th><th class="l">error</th></tr>
{{range .Summary.Recent}}<tr><td class="l">{{.ID}}</td><td class="l">{{.Kind}}</td>
<td class="l">{{.State}}</td><td>{{.QueuedMs}}</td><td>{{.RunMs}}</td><td class="l">{{.Error}}</td></tr>
{{end}}</table>

<p>live: <a href="/watch">/watch</a> (SSE) ·
<a href="/metricsz">/metricsz</a> ·
<a href="/telemetryz">/telemetryz</a> ·
<a href="/eventsz">/eventsz</a> ·
<a href="/healthz">/healthz</a></p>
</body>
</html>
`))

// statuszData is the template input; one struct per render so the
// handler holds no locks while writing.
type statuszData struct {
	Summary     service.Summary
	Horizons    []horizonRow
	SLOEnabled  bool
	SLOBreached bool
	SLOReason   string
	P99Target   time.Duration
	ErrTarget   float64
	P99Burn     int64
	ErrBurn     int64
}

// horizonRow is one rolling-window readout with latencies in
// milliseconds for the table.
type horizonRow struct {
	Label      string
	Count      int64
	RatePerSec float64
	ErrorRate  float64
	P50        time.Duration
	P95        time.Duration
	P99        time.Duration
}

// statuszHandler serves the HTML dashboard from the server's Summary,
// the rolling latency window, and the SLO tracker.
func statuszHandler(srv *service.Server, slo *sloTracker) http.Handler {
	win := telemetry.GetWindow("service.latency_ns")
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		data := statuszData{
			Summary:    srv.Summary(20),
			SLOEnabled: slo.enabled(),
			P99Target:  slo.p99Target,
			ErrTarget:  slo.errTarget,
		}
		for _, h := range []struct {
			label string
			d     time.Duration
		}{{"1m", time.Minute}, {"5m", 5 * time.Minute}} {
			st := win.Stats(h.d)
			data.Horizons = append(data.Horizons, horizonRow{
				Label:      h.label,
				Count:      st.Count,
				RatePerSec: st.RatePerSec,
				ErrorRate:  st.ErrorRate,
				P50:        time.Duration(st.P50).Round(time.Millisecond),
				P95:        time.Duration(st.P95).Round(time.Millisecond),
				P99:        time.Duration(st.P99).Round(time.Millisecond),
			})
		}
		data.P99Burn, data.ErrBurn = slo.burns()
		if err := slo.Ready(); err != nil {
			data.SLOBreached = true
			data.SLOReason = err.Error()
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		if err := statuszTmpl.Execute(w, data); err != nil {
			// Headers are gone; all we can do is cut the response short.
			return
		}
	})
}
