package main

import (
	"context"
	"fmt"
	"os"
	"sync"

	"repro/internal/history"
	"repro/internal/telemetry"
)

// historyRecorder appends one run-history record per completed batch
// of jobs, so a long-lived daemon leaves the same cross-run trail the
// one-shot CLI does without paying a disk write per job. The server's
// OnJobDone hook only bumps a counter and maybe pokes a channel; the
// actual snapshot+append happens on a dedicated goroutine.
type historyRecorder struct {
	store history.Store
	batch int

	mu      sync.Mutex
	pending int

	kick chan struct{}
}

func newHistoryRecorder(dir string, batch int) *historyRecorder {
	return &historyRecorder{
		store: history.Store{Dir: dir},
		batch: batch,
		kick:  make(chan struct{}, 1),
	}
}

// jobDone is the service.Config.OnJobDone hook: count the completion
// and wake the recorder once a full batch has accumulated. Cheap and
// non-blocking — the worker goroutine never waits on history I/O.
func (h *historyRecorder) jobDone() {
	h.mu.Lock()
	h.pending++
	full := h.pending >= h.batch
	h.mu.Unlock()
	if full {
		select {
		case h.kick <- struct{}{}:
		default:
		}
	}
}

// run appends a record whenever a batch fills, until ctx is canceled.
// The daemon calls flush separately at drain so partially-filled
// batches still land.
func (h *historyRecorder) run(ctx context.Context) {
	for {
		select {
		case <-ctx.Done():
			return
		case <-h.kick:
			h.flush()
		}
	}
}

// flush appends one record covering every completion counted since
// the last flush; a no-op when nothing completed.
func (h *historyRecorder) flush() {
	h.mu.Lock()
	n := h.pending
	h.pending = 0
	h.mu.Unlock()
	if n == 0 {
		return
	}
	rec := history.NewRecord("accordiond", "batch")
	rec.AddTelemetry(telemetry.Capture())
	rec.Set("batch.jobs_done", float64(n))
	if err := h.store.Append(rec); err != nil {
		// History is an observability tier: losing a record must never
		// take the service down with it.
		fmt.Fprintf(os.Stderr, "accordiond: history append: %v\n", err)
	}
}
