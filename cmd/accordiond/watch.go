package main

import (
	"net/http"
	"time"

	"repro/internal/telemetry/events"
)

// watchReplay bounds how much ring history a new /watch client gets
// before the live stream starts.
const watchReplay = 32

// watchKeepalive is the SSE comment interval that keeps idle
// connections from being reaped by proxies.
const watchKeepalive = 15 * time.Second

// watchHandler streams the domain event log over Server-Sent Events:
// a bounded replay of the ring's tail, then every event as it is
// recorded — job lifecycle transitions, access-log lines, simulation
// events — one NDJSON object per SSE data frame. `curl -N /watch` is
// the zero-dependency way to watch a run converge live.
func watchHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		flusher, ok := w.(http.Flusher)
		if !ok {
			http.Error(w, "watch: streaming unsupported", http.StatusNotImplemented)
			return
		}
		w.Header().Set("Content-Type", "text/event-stream")
		w.Header().Set("Cache-Control", "no-cache")
		w.WriteHeader(http.StatusOK)

		// Subscribe before reading the ring tail so no event falls in
		// the gap; events already replayed are deduplicated by Seq.
		live, cancel := events.Subscribe(256)
		defer cancel()

		var buf []byte
		send := func(e events.Event) bool {
			buf = append(buf[:0], "data: "...)
			buf = events.AppendNDJSON(buf, e)
			buf = append(buf, '\n', '\n')
			if _, err := w.Write(buf); err != nil {
				return false
			}
			flusher.Flush()
			return true
		}

		tail := events.Collect()
		if len(tail) > watchReplay {
			tail = tail[len(tail)-watchReplay:]
		}
		var lastSeq uint64
		seen := false
		for _, e := range tail {
			if !send(e) {
				return
			}
			lastSeq, seen = e.Seq, true
		}

		keepalive := time.NewTicker(watchKeepalive)
		defer keepalive.Stop()
		for {
			select {
			case <-r.Context().Done():
				return
			case <-keepalive.C:
				if _, err := w.Write([]byte(": keepalive\n\n")); err != nil {
					return
				}
				flusher.Flush()
			case e, ok := <-live:
				if !ok {
					return
				}
				if seen && e.Seq <= lastSeq {
					continue // already replayed from the ring
				}
				if !send(e) {
					return
				}
				lastSeq, seen = e.Seq, true
			}
		}
	})
}
