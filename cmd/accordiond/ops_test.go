package main

import (
	"bufio"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// TestStatuszHandler pins the dashboard contract the CI smoke curls:
// well-formed HTML under the right headers, carrying the queue, the
// rolling-latency table, and the SLO section.
func TestStatuszHandler(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	telemetry.GetWindow("service.latency_ns").Observe(int64(50 * time.Millisecond))

	srv := service.New(service.Config{QueueDepth: 4, Workers: 2})
	slo := newSLOTracker(100*time.Millisecond, 0.1)
	slo.refresh()
	ts := httptest.NewServer(statuszHandler(srv, slo))
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var sb strings.Builder
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		sb.WriteString(sc.Text())
		sb.WriteString("\n")
	}
	body := sb.String()

	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "text/html") {
		t.Errorf("Content-Type = %q, want text/html", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", got)
	}
	for _, want := range []string{
		"<!DOCTYPE html>", "</html>", "accordiond",
		"rolling latency", "0/4", // queue len/cap
		"p99 latency", "error rate", // SLO rows
		"/watch",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("dashboard misses %q", want)
		}
	}
	telemetry.Reset()
}

// TestStatuszDegraded: a breached SLO shows up in the state line.
func TestStatuszDegraded(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	telemetry.GetWindow("service.latency_ns").Observe(int64(5 * time.Second))

	srv := service.New(service.Config{QueueDepth: 4, Workers: 2})
	slo := newSLOTracker(time.Millisecond, 0)
	slo.refresh()
	rec := httptest.NewRecorder()
	statuszHandler(srv, slo).ServeHTTP(rec, httptest.NewRequest("GET", "/statusz", nil))
	if !strings.Contains(rec.Body.String(), "degraded") {
		t.Error("breached SLO not reflected in the dashboard state line")
	}
	telemetry.Reset()
}

// TestWatchHandler pins the SSE surface: the right headers, a ring
// replay, and a live event delivered through the subscription.
func TestWatchHandler(t *testing.T) {
	defer events.SetEnabled(true)()
	events.Reset()
	events.New("watch.replayed").Int("n", 1).Emit()

	ts := httptest.NewServer(watchHandler())
	defer ts.Close()

	resp, err := http.Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get("Content-Type"); got != "text/event-stream" {
		t.Errorf("Content-Type = %q, want text/event-stream", got)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-cache" {
		t.Errorf("Cache-Control = %q, want no-cache", got)
	}

	lines := make(chan string, 16)
	go func() {
		sc := bufio.NewScanner(resp.Body)
		for sc.Scan() {
			if line, ok := strings.CutPrefix(sc.Text(), "data: "); ok {
				lines <- line
			}
		}
		close(lines)
	}()
	readEvent := func() events.Event {
		t.Helper()
		select {
		case line, ok := <-lines:
			if !ok {
				t.Fatal("stream closed early")
			}
			evs, err := events.ParseNDJSON(strings.NewReader(line))
			if err != nil || len(evs) != 1 {
				t.Fatalf("bad SSE frame %q: %v", line, err)
			}
			return evs[0]
		case <-time.After(5 * time.Second):
			t.Fatal("no SSE frame within 5s")
		}
		panic("unreachable")
	}

	if e := readEvent(); e.Kind != "watch.replayed" {
		t.Errorf("replayed frame kind = %q, want watch.replayed", e.Kind)
	}
	events.New("watch.live").Int("n", 2).Emit()
	if e := readEvent(); e.Kind != "watch.live" {
		t.Errorf("live frame kind = %q, want watch.live", e.Kind)
	}
	events.Reset()
}

// TestSLOTracker pins the burn math and the readiness verdict on both
// dimensions, plus the quiet-window and at-target edges.
func TestSLOTracker(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	w := telemetry.GetWindow("service.latency_ns")

	// Quiet window: no burn, ready, whatever the targets.
	slo := newSLOTracker(time.Millisecond, 0.001)
	slo.refresh()
	if err := slo.Ready(); err != nil {
		t.Errorf("quiet window Ready = %v, want nil", err)
	}

	// p99 at 10x the budget: burn ~10000 milli, degraded.
	for i := 0; i < 100; i++ {
		w.Observe(int64(10 * time.Millisecond))
	}
	slo = newSLOTracker(time.Millisecond, 0)
	slo.refresh()
	p99Burn, _ := slo.burns()
	if p99Burn <= 1000 {
		t.Errorf("p99 burn = %d milli, want > 1000", p99Burn)
	}
	if err := slo.Ready(); err == nil || !strings.Contains(err.Error(), "p99") {
		t.Errorf("Ready = %v, want a p99 budget error", err)
	}

	// Same traffic against a generous budget: within target, ready.
	slo = newSLOTracker(10*time.Second, 0)
	slo.refresh()
	if err := slo.Ready(); err != nil {
		t.Errorf("generous budget Ready = %v, want nil", err)
	}

	// Error-rate dimension: half the traffic failing against a 1%
	// budget burns 50000 milli.
	telemetry.Reset()
	for i := 0; i < 50; i++ {
		w.Observe(int64(time.Millisecond))
		w.ObserveErr(int64(time.Millisecond))
	}
	slo = newSLOTracker(0, 0.01)
	slo.refresh()
	_, errBurn := slo.burns()
	if errBurn != 50000 {
		t.Errorf("error burn = %d milli, want 50000", errBurn)
	}
	if err := slo.Ready(); err == nil || !strings.Contains(err.Error(), "error rate") {
		t.Errorf("Ready = %v, want an error-rate budget error", err)
	}
	telemetry.Reset()
}
