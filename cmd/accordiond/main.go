// Command accordiond is the long-running Accordion simulation service:
// an HTTP/JSON daemon that serves Monte-Carlo population, Pareto-scan,
// and fault-attribution queries concurrently from one warm process, so
// repeated queries share the memoized model caches (Cholesky factors,
// reference runs, representative chips, measured fronts) instead of
// paying cold-start for every question.
//
// Usage:
//
//	accordiond [-addr HOST:PORT] [-queue N] [-workers N] [-j N]
//	           [-retain N] [-retry-after DUR] [-drain-timeout DUR]
//	           [-slo-p99 DUR] [-slo-error-rate F] [-telemetry text|json]
//	           [-history DIR] [-history-batch N]
//	accordiond -load URL [-load-requests N] [-load-concurrency N]
//	           [-load-distinct N] [-load-experiment ID] [-load-chips N]
//	           [-load-overflow N] [-load-p99-max DUR] [-load-out FILE]
//
// Endpoints (see internal/service for the wire schema):
//
//	POST /run              submit a request and wait for its response
//	POST /jobs             submit without waiting (202 + job status)
//	GET  /jobs/<id>        job status, timings, provenance manifest
//	GET  /jobs/<id>/result a completed job's response bytes
//	GET  /healthz          liveness, drain state, SLO readiness
//	GET  /statusz          HTML operator dashboard
//	GET  /watch            live event stream (Server-Sent Events)
//	GET  /telemetryz       telemetry snapshot (JSON)
//	GET  /metricsz         telemetry snapshot (Prometheus text)
//	GET  /eventsz          domain event ring (NDJSON)
//	GET  /historyz         run-history records (JSON; ?format=html|text)
//
// Backpressure: the job queue is bounded (-queue). When it is full,
// submissions are answered 429 with a Retry-After header instead of
// queueing into unbounded latency; the advertised backoff is derived
// from the rolling service-time window (queue drain rate) once the
// daemon has a minute of traffic, and falls back to -retry-after cold.
// Identical in-flight or retained requests coalesce onto one job and
// cost no slot. Responses are deterministic: the same request body
// always yields byte-identical response bytes, whatever the
// concurrency.
//
// Run history: -history DIR appends one record to DIR/records.ndjson
// per -history-batch completed jobs (and a final partial batch at
// drain), each carrying a full telemetry snapshot — rolling-window
// percentiles, cache hit rates, SLO burn — so `accordionhist check`
// can gate a deployment's service metrics against the store the
// previous builds wrote. GET /historyz serves the same records live.
//
// SLO tracking: -slo-p99 and -slo-error-rate set budgets against the
// rolling 1-minute latency window. The burn-rate gauges
// service.slo.{p99,error}_burn_milli report the observation in
// milli-units of the budget (1000 = exactly at target); past 1000,
// /healthz degrades to 503 so load balancers drain the instance.
//
// On SIGINT/SIGTERM the daemon drains: new work is refused (503), the
// workers finish every queued and running job within -drain-timeout,
// and only then does the process exit.
//
// -load turns the same binary into a stdlib-only load generator (used
// by scripts/bench_service.sh and the CI service-smoke job): it fires
// a concurrent request sweep, checks backpressure and byte-identical
// responses, and writes a BENCH_service.json with throughput and
// p50/p95/p99 latency plus the server's cache hit rates.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/history"
	"repro/internal/parallel"
	"repro/internal/service"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

func main() {
	var (
		addr         = flag.String("addr", "localhost:8344", "listen address for the HTTP service")
		queueDepth   = flag.Int("queue", 16, "bounded job-queue depth; overflow is answered 429")
		workers      = flag.Int("workers", 0, "job worker goroutines (0 = GOMAXPROCS)")
		poolWidth    = flag.Int("j", 0, "worker-pool width for model sweeps inside a job (0 = GOMAXPROCS)")
		retain       = flag.Int("retain", 64, "completed jobs kept addressable for /jobs/<id> and coalescing (negative = none)")
		retryAfter   = flag.Duration("retry-after", time.Second, "minimum client backoff advertised on 429/503 responses")
		drainTimeout = flag.Duration("drain-timeout", 60*time.Second, "graceful-shutdown deadline for in-flight jobs")
		sloP99       = flag.Duration("slo-p99", 0, "rolling-p99 latency budget; past it /healthz degrades (0 = off)")
		sloErrRate   = flag.Float64("slo-error-rate", 0, "rolling error-rate budget, a fraction in (0,1]; past it /healthz degrades (0 = off)")
		histDir      = flag.String("history", "", "append run-history records to this store directory (empty = off)")
		histBatch    = flag.Int("history-batch", 16, "completed jobs per appended history record")
		telemMode    = telemetry.ModeFlag(flag.CommandLine)
		load         = newLoadFlags(flag.CommandLine)
	)
	flag.Parse()
	fail := func(code int, format string, args ...any) {
		fmt.Fprintf(os.Stderr, "accordiond: "+format+"\n", args...)
		os.Exit(code)
	}
	if flag.NArg() > 0 {
		fail(2, "unexpected arguments %v", flag.Args())
	}

	if load.url != "" {
		if err := load.run(); err != nil {
			fail(1, "load: %v", err)
		}
		return
	}

	switch {
	case *queueDepth < 1:
		fail(2, "-queue must be at least 1, got %d", *queueDepth)
	case *workers < 0:
		fail(2, "-workers must be non-negative (0 = GOMAXPROCS), got %d", *workers)
	case *poolWidth < 0:
		fail(2, "-j must be non-negative (0 = GOMAXPROCS), got %d", *poolWidth)
	case *sloP99 < 0:
		fail(2, "-slo-p99 must be non-negative, got %s", *sloP99)
	case *sloErrRate < 0 || *sloErrRate > 1:
		fail(2, "-slo-error-rate must be a fraction in [0,1], got %g", *sloErrRate)
	case *histBatch < 1:
		fail(2, "-history-batch must be at least 1, got %d", *histBatch)
	}
	parallel.SetWorkers(*poolWidth)

	// A service wants its ops surface live from the first request:
	// telemetry recording and the domain-event ring are always on (the
	// -telemetry flag only controls the shutdown dump to stderr).
	report, err := telemetry.StartMode(*telemMode)
	if err != nil {
		fail(2, "%v", err)
	}
	telemetry.SetEnabled(true)
	events.SetEnabled(true)

	slo := newSLOTracker(*sloP99, *sloErrRate)
	cfg := service.Config{
		QueueDepth: *queueDepth,
		Workers:    *workers,
		Retain:     *retain,
		RetryAfter: *retryAfter,
		Now:        time.Now,
	}
	if slo.enabled() {
		cfg.ReadyCheck = slo.Ready
	}
	var recorder *historyRecorder
	if *histDir != "" {
		recorder = newHistoryRecorder(*histDir, *histBatch)
		cfg.OnJobDone = recorder.jobDone
	}
	srv := service.New(cfg)

	mux := srv.Mux()
	mux.Handle("GET /telemetryz", telemetry.Handler())
	mux.Handle("GET /metricsz", telemetry.MetricsHandler())
	mux.Handle("GET /eventsz", events.Handler())
	mux.Handle("GET /statusz", statuszHandler(srv, slo))
	mux.Handle("GET /watch", watchHandler())
	if recorder != nil {
		mux.Handle("GET /historyz", history.Handler(recorder.store))
	} else {
		mux.Handle("GET /historyz", history.DisabledHandler())
	}

	// The service core spawns no goroutines; the daemon owns them all.
	workerCtx, stopWorkers := context.WithCancel(context.Background())
	defer stopWorkers()
	for i := 0; i < srv.Workers(); i++ {
		go srv.Worker(workerCtx)
	}
	go slo.run(workerCtx, time.Second)
	if recorder != nil {
		go recorder.run(workerCtx)
	}

	httpSrv := &http.Server{Addr: *addr, Handler: mux}
	listenErr := make(chan error, 1)
	go func() { listenErr <- httpSrv.ListenAndServe() }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	fmt.Fprintf(os.Stderr, "accordiond: serving on http://%s (queue %d, %d workers, retain %d)\n",
		*addr, *queueDepth, srv.Workers(), *retain)

	select {
	case err := <-listenErr:
		fail(1, "%v", err)
	case <-sigCtx.Done():
	}
	stop()

	fmt.Fprintf(os.Stderr, "accordiond: draining (%d in flight, deadline %s)\n", srv.Inflight(), *drainTimeout)
	drainCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	code := 0
	// Drain the job queue first — new submissions now get 503 — then
	// close the HTTP side so in-flight handlers finish writing.
	if err := srv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "accordiond: drain: %v\n", err)
		code = 1
	}
	if recorder != nil {
		// Every job is now terminal; land the partial batch so short
		// sessions still leave a record.
		recorder.flush()
	}
	if err := httpSrv.Shutdown(drainCtx); err != nil {
		fmt.Fprintf(os.Stderr, "accordiond: http shutdown: %v\n", err)
		code = 1
	}
	if err := <-listenErr; !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintf(os.Stderr, "accordiond: listener: %v\n", err)
		code = 1
	}
	if err := report(os.Stderr); err != nil {
		fmt.Fprintf(os.Stderr, "accordiond: telemetry: %v\n", err)
	}
	fmt.Fprintln(os.Stderr, "accordiond: drained, exiting")
	os.Exit(code)
}
