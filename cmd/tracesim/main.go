// Command tracesim drives the trace-driven core simulator over Table
// 2's memory hierarchy: either one of the built-in kernel mixes (by
// benchmark name) or a custom synthetic mix, at a chosen frequency —
// the microarchitectural ground truth behind the analytic work
// profiles.
//
// Usage:
//
//	tracesim -bench canneal [-f GHz] [-n instructions]
//	tracesim -kind random -ws 8388608 -memfrac 0.3 [-hot 0.99] [-f GHz]
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/experiments"
	"repro/internal/sim"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

func main() {
	var (
		benchName = flag.String("bench", "", "use a kernel's reference mix (canneal ferret bodytrack x264 hotspot srad btcmine)")
		kindStr   = flag.String("kind", "random", "custom mix: streaming, strided, random, pointer-chase")
		ws        = flag.Int("ws", 1<<20, "custom mix: working set in bytes")
		memfrac   = flag.Float64("memfrac", 0.3, "custom mix: memory references per instruction")
		hot       = flag.Float64("hot", 0.9, "custom mix: fraction of references to the hot region")
		stride    = flag.Int("stride", 8, "custom mix: stride in bytes for streaming/strided")
		freq      = flag.Float64("f", 1.0, "core frequency in GHz")
		n         = flag.Int64("n", 500000, "dynamic instructions to simulate")
		telemMode = telemetry.ModeFlag(flag.CommandLine)
		eventsTo  = events.PathFlag(flag.CommandLine)
	)
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintf(os.Stderr, "tracesim: %v\n", err)
		os.Exit(1)
	}
	reportTelemetry, err := telemetry.StartMode(*telemMode)
	if err != nil {
		fail(err)
	}
	defer reportTelemetry(os.Stderr)
	// tracesim drives no chip or benchmark run, so the event log only
	// fills when future sim-level events land; the shared flag keeps the
	// observability surface uniform across the cmd binaries.
	finishEvents, err := events.StartPath(*eventsTo)
	if err != nil {
		fail(err)
	}
	defer func() {
		if err := finishEvents(); err != nil {
			fmt.Fprintf(os.Stderr, "tracesim: %v\n", err)
		}
	}()

	var spec sim.TraceSpec
	if *benchName != "" {
		b, err := experiments.BenchmarkByName(*benchName)
		if err != nil {
			fail(err)
		}
		spec = b.Trace()
		fmt.Printf("%s reference mix: %s over %d KB, %.0f%% memory instructions\n",
			b.Name(), spec.Kind, spec.WorkingSetBytes/1024, spec.MemFrac*100)
	} else {
		var kind sim.AccessKind
		switch *kindStr {
		case "streaming":
			kind = sim.Streaming
		case "strided":
			kind = sim.Strided
		case "random":
			kind = sim.RandomUniform
		case "pointer-chase":
			kind = sim.PointerChase
		default:
			fail(fmt.Errorf("unknown access kind %q", *kindStr))
		}
		spec = sim.TraceSpec{
			Kind: kind, WorkingSetBytes: *ws, MemFrac: *memfrac,
			HotFrac: *hot, HotBytes: 16 * 1024, StrideBytes: *stride, Seed: 1,
		}
	}

	res, err := sim.SimulateCore(spec, *n, *freq)
	if err != nil {
		fail(err)
	}
	fmt.Printf("instructions: %d   memory refs: %d (%.1f%%)\n",
		res.Instructions, res.MemRefs, 100*float64(res.MemRefs)/float64(res.Instructions))
	fmt.Printf("L1 (64KB 4-way):  %d accesses, miss rate %.4f\n", res.L1.Accesses, res.L1.MissRate())
	fmt.Printf("L2 (2MB 16-way):  %d accesses, miss rate %.4f\n", res.L2.Accesses, res.L2.MissRate())
	fmt.Printf("CPI @ %.2f GHz:   %.3f   (long-latency misses/op: %.2e)\n", *freq, res.CPI, res.MissPerOp)
}
