// Command accordionhist is the run-history toolbelt: append records
// to a store from artifacts other tools wrote (BENCH_*.json blobs,
// provenance manifests, /telemetryz scrapes), run the noise-aware
// regression gate, and render trend reports.
//
//	accordionhist append -dir HISTORY -tool bench_parallel -kind bench -bench BENCH_parallel.json
//	accordionhist check  -dir HISTORY [-window 20] [-margin 0.10] [-min-baseline 3] [-json]
//	accordionhist report -dir HISTORY [-format text|html] [-last 20] [-out FILE]
//	accordionhist list   -dir HISTORY
//
// Exit codes from check: 0 pass, 1 confirmed regression, 2 usage or
// I/O error — so CI gates on the exit status alone.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/history"
	"repro/internal/provenance"
	"repro/internal/telemetry"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "append":
		err = cmdAppend(os.Args[2:])
	case "check":
		os.Exit(cmdCheck(os.Args[2:]))
	case "report":
		err = cmdReport(os.Args[2:])
	case "list":
		err = cmdList(os.Args[2:])
	case "-h", "-help", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "accordionhist: unknown subcommand %q\n", os.Args[1])
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "accordionhist:", err)
		os.Exit(2)
	}
}

func usage() {
	fmt.Fprint(os.Stderr, `usage: accordionhist <append|check|report|list> [flags]

append  harvest artifacts into a new record and append it to the store
check   gate the newest record against its baseline window (exit 1 on regression)
report  render per-metric trends (text or standalone HTML)
list    one line per record in the store

Run "accordionhist <subcommand> -h" for flags.
`)
}

// repeatedFlag collects a repeatable -flag value.
type repeatedFlag []string

func (r *repeatedFlag) String() string { return fmt.Sprint([]string(*r)) }
func (r *repeatedFlag) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func cmdAppend(args []string) error {
	fs := flag.NewFlagSet("accordionhist append", flag.ExitOnError)
	dir := fs.String("dir", "", "history store directory (required)")
	tool := fs.String("tool", "", "record tool identity, e.g. bench_parallel (required)")
	kind := fs.String("kind", "bench", "record kind: run, bench, or batch")
	note := fs.String("note", "", "free-form note stored on the record")
	var benches, manifests, scrapes repeatedFlag
	fs.Var(&benches, "bench", "BENCH_*.json blob to harvest (repeatable)")
	fs.Var(&manifests, "manifest", "provenance manifest.json to harvest (repeatable)")
	fs.Var(&scrapes, "telemetry", "/telemetryz JSON scrape to harvest (repeatable)")
	revision := fs.String("revision", "", "override the VCS revision stamp")
	dirty := fs.Bool("dirty", false, "override the VCS dirty flag (with -revision)")
	gomaxprocs := fs.Int("gomaxprocs", 0, "override the GOMAXPROCS stamp")
	fs.Parse(args)
	if *dir == "" || *tool == "" {
		return fmt.Errorf("append: -dir and -tool are required")
	}
	if len(benches)+len(manifests)+len(scrapes) == 0 {
		return fmt.Errorf("append: nothing to harvest (need -bench, -manifest, or -telemetry)")
	}
	rec := history.NewRecord(*tool, *kind)
	rec.Note = *note
	for _, path := range manifests {
		man, err := provenance.Load(path)
		if err != nil {
			return err
		}
		rec.AddManifest(man)
	}
	for _, path := range scrapes {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		var snap telemetry.Snapshot
		if err := json.Unmarshal(data, &snap); err != nil {
			return fmt.Errorf("telemetry scrape %s: %w", path, err)
		}
		rec.AddTelemetry(snap)
	}
	for _, path := range benches {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		if err := rec.AddBenchJSON(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
	}
	if *revision != "" {
		rec.VCSRevision = *revision
		rec.VCSDirty = *dirty
	}
	if *gomaxprocs > 0 {
		rec.GOMAXPROCS = *gomaxprocs
	}
	st := history.Store{Dir: *dir}
	if err := st.Append(rec); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "accordionhist: appended %s record (%d metrics) to %s\n",
		rec.CompatKey(), len(rec.Metrics), st.Path())
	return nil
}

func cmdCheck(args []string) int {
	fs := flag.NewFlagSet("accordionhist check", flag.ExitOnError)
	dir := fs.String("dir", "", "history store directory (required)")
	window := fs.Int("window", 0, "baseline window size (default 20)")
	minBaseline := fs.Int("min-baseline", 0, "fewest baseline records before gating (default 3)")
	margin := fs.Float64("margin", 0, "relative slack beyond the 95% band (default 0.10)")
	asJSON := fs.Bool("json", false, "emit the gate report as JSON instead of text")
	fs.Parse(args)
	if *dir == "" {
		fmt.Fprintln(os.Stderr, "accordionhist: check: -dir is required")
		return 2
	}
	recs, err := history.Store{Dir: *dir}.Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "accordionhist:", err)
		return 2
	}
	rep, err := history.Check(recs, history.DefaultDirections(), history.GateConfig{
		Window: *window, MinBaseline: *minBaseline, Margin: *margin,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "accordionhist:", err)
		return 2
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintln(os.Stderr, "accordionhist:", err)
			return 2
		}
	} else if err := rep.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "accordionhist:", err)
		return 2
	}
	if rep.Regressions() > 0 {
		return 1
	}
	return 0
}

func cmdReport(args []string) error {
	fs := flag.NewFlagSet("accordionhist report", flag.ExitOnError)
	dir := fs.String("dir", "", "history store directory (required)")
	format := fs.String("format", "text", "report format: text or html")
	last := fs.Int("last", 0, "records to trend (default 20)")
	out := fs.String("out", "", "write to this file instead of stdout")
	var metrics repeatedFlag
	fs.Var(&metrics, "metric", "glob selecting trended metrics (repeatable; default: gated set)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("report: -dir is required")
	}
	recs, err := history.Store{Dir: *dir}.Load()
	if err != nil {
		return err
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer f.Close()
		w = f
	}
	opt := history.ReportOptions{LastK: *last, Metrics: metrics}
	switch *format {
	case "text":
		return history.WriteTextReport(w, recs, opt)
	case "html":
		return history.WriteHTMLReport(w, recs, opt)
	default:
		return fmt.Errorf("report: unknown format %q (want text or html)", *format)
	}
}

func cmdList(args []string) error {
	fs := flag.NewFlagSet("accordionhist list", flag.ExitOnError)
	dir := fs.String("dir", "", "history store directory (required)")
	fs.Parse(args)
	if *dir == "" {
		return fmt.Errorf("list: -dir is required")
	}
	recs, err := history.Store{Dir: *dir}.Load()
	if err != nil {
		return err
	}
	for i, r := range recs {
		rev := r.VCSRevision
		if len(rev) > 12 {
			rev = rev[:12]
		}
		if rev == "" {
			rev = "-"
		}
		dirty := ""
		if r.VCSDirty {
			dirty = "+"
		}
		fmt.Printf("%4d  %-28s %-13s %4d metrics  %s\n", i+1, r.CompatKey(), rev+dirty, len(r.Metrics), r.Note)
	}
	return nil
}
