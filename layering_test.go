package repro_test

import (
	"go/build"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The README promises strict layering; this test makes the promise an
// invariant. Each internal package may import only the internal
// packages listed here (stdlib is always allowed).
var allowedDeps = map[string][]string{
	"mathx":            {},
	"telemetry":        {},
	"telemetry/trace":  {"telemetry"},
	"telemetry/events": {"telemetry"},
	"converge":         {"telemetry"},
	"provenance":       {},
	"parallel":         {"telemetry", "telemetry/trace"},
	"tech":             {"mathx"},
	"variation":        {"mathx", "parallel", "telemetry", "telemetry/events"},
	"chip":             {"converge", "mathx", "parallel", "tech", "telemetry", "telemetry/events", "telemetry/trace", "variation"},
	"power":            {"chip"},
	"sim":              {"mathx"},
	"quality":          {},
	"fault":            {"mathx", "parallel", "telemetry/events"},
	"workload":         {"mathx"},
	"rms":              {"fault", "parallel", "quality", "sim", "telemetry/events"},
	"rms/canneal":      {"fault", "mathx", "rms", "sim", "workload"},
	"rms/ferret":       {"fault", "rms", "sim", "workload"},
	"rms/bodytrack":    {"fault", "mathx", "quality", "rms", "sim", "workload"},
	"rms/xh264":        {"fault", "mathx", "quality", "rms", "sim", "workload"},
	"rms/hotspot":      {"fault", "mathx", "quality", "rms", "sim", "workload"},
	"rms/srad":         {"fault", "mathx", "quality", "rms", "sim", "workload"},
	"rms/btcmine":      {"fault", "rms", "sim"},
	"rms/rmstest":      {"fault", "rms", "sim"},
	"core":             {"chip", "fault", "mathx", "parallel", "power", "rms", "sim", "tech", "telemetry/events", "telemetry/trace"},
	"atlas":            {"chip", "fault", "telemetry/events"},
	"baseline":         {"chip", "power"},
	"experiments": {"baseline", "chip", "core", "fault", "mathx", "parallel", "power",
		"rms", "rms/bodytrack", "rms/btcmine", "rms/canneal", "rms/ferret",
		"rms/hotspot", "rms/srad", "rms/xh264", "sim", "tech", "telemetry", "telemetry/trace", "variation"},
}

func TestInternalLayering(t *testing.T) {
	const prefix = "repro/internal/"
	root := filepath.Join(".", "internal")
	var pkgs []string
	err := filepath.Walk(root, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if info.IsDir() {
			entries, err := os.ReadDir(path)
			if err != nil {
				return err
			}
			for _, e := range entries {
				if strings.HasSuffix(e.Name(), ".go") {
					rel, err := filepath.Rel(root, path)
					if err != nil {
						return err
					}
					pkgs = append(pkgs, filepath.ToSlash(rel))
					break
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 15 {
		t.Fatalf("found only %d internal packages", len(pkgs))
	}
	for _, pkg := range pkgs {
		allowed, ok := allowedDeps[pkg]
		if !ok {
			t.Errorf("package internal/%s missing from the layering matrix", pkg)
			continue
		}
		allowedSet := map[string]bool{}
		for _, a := range allowed {
			allowedSet[a] = true
		}
		bp, err := build.ImportDir(filepath.Join(root, pkg), 0)
		if err != nil {
			t.Errorf("internal/%s: %v", pkg, err)
			continue
		}
		// Non-test imports only: tests may reach sideways (e.g. solver
		// tests import kernels).
		for _, imp := range bp.Imports {
			if !strings.HasPrefix(imp, prefix) {
				continue // stdlib
			}
			dep := strings.TrimPrefix(imp, prefix)
			if !allowedSet[dep] {
				t.Errorf("internal/%s imports internal/%s, which the layering forbids", pkg, dep)
			}
		}
	}
}

// Substrate purity: the numeric substrate and the device models must
// never know about chips, benchmarks, or the framework.
func TestSubstratesStayPure(t *testing.T) {
	for _, pkg := range []string{"mathx", "tech", "telemetry", "variation", "quality", "sim", "fault", "workload"} {
		bp, err := build.ImportDir(filepath.Join("internal", pkg), 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, imp := range bp.Imports {
			for _, banned := range []string{"/chip", "/core", "/rms", "/power", "/baseline", "/experiments"} {
				if strings.HasSuffix(imp, banned) {
					t.Errorf("substrate internal/%s imports %s", pkg, imp)
				}
			}
		}
	}
}
