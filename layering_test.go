package repro_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/analysis"
)

// layeringRun loads and analyzes ./internal/... once; both tests below
// read the shared result (a full source-importer load costs seconds).
var layeringRun = sync.OnceValues(func() (analysis.Result, error) {
	cfg, err := analysis.DefaultConfig(".")
	if err != nil {
		return analysis.Result{}, err
	}
	return analysis.Run(cfg, []string{"./internal/..."})
})

// The README promises strict layering. The matrix lives in
// internal/analysis/config.go and is enforced by accordionvet's
// layering analyzer (`go run ./cmd/accordionvet ./...`, the CI lint
// job); this test is a thin wrapper that runs the same analyzer under
// `go test ./...`, so the promise stays an invariant even for
// contributors who never run the linter.
func TestInternalLayering(t *testing.T) {
	cfg, err := analysis.DefaultConfig(".")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.AllowedDeps) < 15 {
		t.Fatalf("layering matrix lists only %d internal packages", len(cfg.AllowedDeps))
	}
	res, err := layeringRun()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		if d.Analyzer == "layering" {
			t.Errorf("%s", d)
		}
	}
}

// Substrate purity: the numeric substrate and the device models must
// never know about chips, benchmarks, or the framework. The ban list
// also lives in the analyzer config; this wrapper pins that the config
// actually names the substrates (an emptied list would silently pass).
func TestSubstratesStayPure(t *testing.T) {
	cfg, err := analysis.DefaultConfig(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"mathx", "tech", "telemetry", "variation", "quality", "sim", "fault", "workload"} {
		found := false
		for _, s := range cfg.Substrates {
			if s == want {
				found = true
			}
		}
		if !found {
			t.Errorf("substrate %q missing from the analyzer config", want)
		}
	}
	res, err := layeringRun()
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range res.Diagnostics {
		if d.Analyzer == "layering" && strings.Contains(d.Message, "substrate") {
			t.Errorf("%s", d)
		}
	}
}
