// Lifetime: a fleet operator's view of one NTV chip over years of
// service. BTI-style aging ratchets every core's threshold voltage up
// while thermal cycles wobble it; the question is how long the chip
// sustains an STV-equivalent compute rate, and how much longer dynamic
// re-planning (Section 7) stretches that service life compared to the
// static assignment commissioned on day one.
package main

import (
	"fmt"
	"log"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/power"
)

func main() {
	ch, err := chip.New(chip.DefaultConfig(), 9001)
	if err != nil {
		log.Fatal(err)
	}
	pm := power.NewModel(ch)

	// One epoch = one week; aging of ~0.3 mV/week is an aggressive
	// stress regime that makes the horizon visible in a short run.
	drift := core.DriftModel{
		Amplitude:     0.008,
		AgingPerEpoch: 0.0003,
		Period:        26, // seasonal thermal cycle
		Seed:          7,
	}
	const rate = 40.0 // GHz of aggregate compute the service must hold
	const weeks = 208 // four years

	ctl, err := core.NewController(ch, pm, drift, rate)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip %d: sustaining %.0f GHz aggregate for %d weeks of service\n",
		ch.Seed, rate, weeks)

	type report struct {
		name  string
		stats core.DynamicStats
	}
	var reports []report
	for _, dynamic := range []bool{false, true} {
		stats, err := ctl.Run(weeks, dynamic)
		if err != nil {
			log.Fatal(err)
		}
		name := "static (day-one assignment)"
		if dynamic {
			name = "dynamic (re-plan on miss)  "
		}
		reports = append(reports, report{name, stats})
	}

	fmt.Printf("\n%-28s %12s %12s %12s %12s\n",
		"schedule", "missed weeks", "reconfigs", "mean N", "mean P(W)")
	for _, r := range reports {
		meanN := 0.0
		for _, e := range r.stats.Epochs {
			meanN += float64(e.N)
		}
		meanN /= float64(len(r.stats.Epochs))
		fmt.Printf("%-28s %12d %12d %12.1f %12.1f\n",
			r.name, r.stats.MissedEpochs, r.stats.Reconfigs, meanN, r.stats.MeanPower)
	}

	// Service life: the last week each schedule still meets the rate.
	lastGood := func(stats core.DynamicStats) int {
		last := -1
		for _, e := range stats.Epochs {
			if e.MetRate {
				last = e.Epoch
			}
		}
		return last
	}
	static, dyn := reports[0].stats, reports[1].stats
	fmt.Printf("\nservice life (last compliant week of %d): static %d, dynamic %d\n",
		weeks, lastGood(static), lastGood(dyn))
	fmt.Printf("dynamic re-planning pays %.0f%% more power to absorb aging by migrating toward the chip's stronger cores\n",
		100*(dyn.MeanPower/static.MeanPower-1))
}
