// Thermalfarm: a physics-simulation service built on the hotspot
// kernel. The service has a fixed per-request time budget (the weak-
// scaling premise of Section 1): instead of finishing a fixed-size
// simulation faster, Accordion's Expand mode grows the iteration count
// — and with it the solution fidelity — to whatever the NTV chip can
// finish within the budget, while Compress mode sheds fidelity when the
// farm is oversubscribed.
package main

import (
	"fmt"
	"log"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/rms/hotspot"
)

func main() {
	ch, err := chip.New(chip.DefaultConfig(), 77)
	if err != nil {
		log.Fatal(err)
	}
	bench := hotspot.New()
	fronts, err := core.MeasureFronts(bench, 7)
	if err != nil {
		log.Fatal(err)
	}
	solver, err := core.NewSolver(ch, power.NewModel(ch), bench, fronts)
	if err != nil {
		log.Fatal(err)
	}
	budget := solver.STVTime()
	fmt.Printf("thermal farm: per-request budget %.0f ms (the STV execution time)\n", budget*1e3)
	fmt.Printf("%10s %12s %5s %8s %9s %10s\n",
		"iterations", "mode", "N", "f(GHz)", "power(W)", "fidelity")

	// Sweep the service's fidelity knob from degraded (oversubscribed
	// farm) to enhanced (idle farm).
	for _, iters := range []float64{16, 32, 48, 64, 96} {
		op, err := solver.Solve(iters, core.Safe)
		if err != nil {
			log.Fatal(err)
		}
		status := ""
		if !op.Feasible {
			status = " (" + op.Limit + "-limited)"
		}
		fmt.Printf("%10.0f %12s %5d %8.3f %9.1f %9.2f%s\n",
			iters, op.Mode, op.N, op.Freq, op.Power, op.RelQuality, status)
	}

	// The farm's win: the Expand point finishes a higher-fidelity
	// simulation in the same wall-clock budget the STV machine spends
	// on the default one.
	expand, err := solver.Solve(64, core.Safe)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nExpand at 64 iterations: %.2fx the STV problem size in the same %.0f ms, %.2fx MIPS/W\n",
		expand.RelProblemSize, budget*1e3, expand.RelMIPSPerWatt)
}
