// Quickstart: sample a variation-afflicted NTV chip, profile canneal's
// quality-vs-problem-size fronts, and ask Accordion for the operating
// point that matches the STV execution time at the default problem
// size — the 30-second tour of the whole framework.
package main

import (
	"fmt"
	"log"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/mathx"
	"repro/internal/power"
	"repro/internal/rms/canneal"
	"repro/internal/variation"
)

func main() {
	// 1. A 288-core, 36-cluster 11nm chip with Table 2 variation.
	ch, err := chip.New(chip.DefaultConfig(), 2014)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("chip: %d cores, VddNTV = %.3f V\n", len(ch.Cores), ch.VddNTV())

	// 2. The application: PARSEC canneal with its Accordion input
	//    (swaps per temperature step).
	bench, err := canneal.New()
	if err != nil {
		log.Fatal(err)
	}
	fronts, err := core.MeasureFronts(bench, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s: default-input quality %.3f, Drop 1/4 quality %.3f\n",
		bench.Name(), fronts.Default.At(1), fronts.Quarter.At(1))

	// 3. The Accordion solver: iso-execution-time operating points.
	solver, err := core.NewSolver(ch, power.NewModel(ch), bench, fronts)
	if err != nil {
		log.Fatal(err)
	}
	bl := solver.Baseline()
	fmt.Printf("STV baseline: N=%d at %.2f GHz, %.1f W\n", bl.N, bl.Freq, bl.Power)

	for _, flavor := range []core.Flavor{core.Safe, core.Speculative} {
		op, err := solver.Solve(bench.DefaultInput(), flavor)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-11s: N=%3d f=%.3f GHz  %.2fx MIPS/W  quality %.2f of STV\n",
			flavor, op.N, op.Freq, op.RelMIPSPerWatt, op.RelQuality)
	}

	// 4. A fine-grid Vth variation map. 128x128 is four times the old
	//    dense-sampling cap; SampleField routes it through the FFT
	//    circulant sampler, so it draws in milliseconds.
	field, err := variation.SampleField(128, 128, variation.DefaultVth(), mathx.NewRNG(2014))
	if err != nil {
		log.Fatal(err)
	}
	lo, hi := mathx.MinMax(field.V)
	fmt.Printf("Vth field: %dx%d cells, deviations %.1f%%..%+.1f%% (sigma %.1f%%)\n",
		field.W, field.H, 100*lo, 100*hi, 100*mathx.StdDev(field.V))
}
