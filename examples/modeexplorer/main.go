// Modeexplorer: enumerate every Accordion mode (Still, Compress,
// Expand, each Safe and Speculative) for every benchmark on one chip
// sample and report which are feasible and what limits the rest —
// Table 1 brought to life on variation-afflicted silicon.
package main

import (
	"fmt"
	"log"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/power"
)

func main() {
	ch, err := chip.New(chip.DefaultConfig(), 2014)
	if err != nil {
		log.Fatal(err)
	}
	pm := power.NewModel(ch)
	all, err := experiments.AllBenchmarks()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %-12s %-9s %9s %5s %7s %8s %8s  %s\n",
		"benchmark", "flavor", "mode", "prob.size", "N", "f(GHz)", "MIPS/W", "quality", "verdict")
	for _, b := range all {
		fronts, err := core.MeasureFronts(b, 1)
		if err != nil {
			log.Fatal(err)
		}
		solver, err := core.NewSolver(ch, pm, b, fronts)
		if err != nil {
			log.Fatal(err)
		}
		// A modest quality floor: reject points losing more than 30%
		// of the STV quality.
		solver.QualityFloor = 0.70

		sweep := b.Sweep()
		// Representative inputs: deep Compress, Still, deep Expand.
		inputs := []float64{sweep[0], b.DefaultInput(), sweep[len(sweep)-1]}
		for _, flavor := range []core.Flavor{core.Safe, core.Speculative} {
			for _, in := range inputs {
				op, err := solver.Solve(in, flavor)
				if err != nil {
					log.Fatal(err)
				}
				verdict := "feasible"
				if !op.Feasible {
					verdict = op.Limit + "-limited"
				}
				fmt.Printf("%-10s %-12s %-9s %9.2f %5d %7.3f %8.2f %8.2f  %s\n",
					b.Name(), flavor, op.Mode, op.ProblemSize, op.N, op.Freq,
					op.RelMIPSPerWatt, op.RelQuality, verdict)
			}
		}
	}
	fmt.Println("\nTable 1 invariants checked: Compress alone may shrink N below NSTV;")
	fmt.Println("Expand must grow N faster than the problem; Speculative trades quality for frequency.")
}
