// Imagepipeline: a denoise-then-search pipeline (srad feeding ferret)
// executed on the Accordion control-core/data-core runtime. Data cores
// run the fault-tolerant data-parallel stages at a speculative
// frequency while injected crashes and hangs are absorbed by the
// control core's watchdogs — and the end-to-end output quality is
// measured against a fault-free reference.
package main

import (
	"fmt"
	"log"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/rms/ferret"
	"repro/internal/rms/srad"
)

func main() {
	ch, err := chip.New(chip.DefaultConfig(), 404)
	if err != nil {
		log.Fatal(err)
	}
	vdd := ch.VddNTV()

	// Engage the best 64 cores; data cores run at the speculative f for
	// a per-task error budget of ~1e-8 per cycle, control cores are the
	// chip's fastest (Section 4.1).
	engaged := ch.SelectCores(64, vdd, chip.SelectEfficient)
	fData := ch.SetFreq(engaged, vdd, 1e-8)
	fCtrl := 0.0
	for i := range ch.Cores {
		if f := ch.CoreSafeFreq(i, vdd); f > fCtrl {
			fCtrl = f
		}
	}
	fmt.Printf("CC/DC pipeline on %d DCs at %.3f GHz (speculative), CC at %.3f GHz\n",
		len(engaged), fData, fCtrl)

	// Stage timing on the CC/DC runtime with injected DC failures.
	rt, err := core.NewRuntime(core.RuntimeConfig{
		Org:       core.HomogeneousSpatial,
		NumCC:     1,
		NumDC:     len(engaged),
		DataFreq:  fData,
		CtrlFreq:  fCtrl,
		TaskOps:   2e7,
		NumTasks:  256,
		PollEvery: 0.5e-3,
		Watchdog:  20e-3,
	})
	if err != nil {
		log.Fatal(err)
	}
	rt2, err := core.NewRuntime(core.RuntimeConfig{
		Org:      core.HomogeneousSpatial,
		NumCC:    1,
		NumDC:    len(engaged),
		DataFreq: fData, CtrlFreq: fCtrl,
		TaskOps: 2e7, NumTasks: 256,
		PollEvery: 0.5e-3, Watchdog: 20e-3,
		Faults: []core.FaultEvent{
			{Task: 10, Attempt: 0, Hang: true, After: 0.3},
			{Task: 77, Attempt: 0, Hang: false, After: 0.6},
			{Task: 200, Attempt: 0, Hang: false, After: 0.1},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	shared := core.NewSharedRegion([]float64{1})
	work := func(task int, in core.ReadOnlyView) float64 { return in.At(0) }
	clean, err := rt.Run(shared.View(), work)
	if err != nil {
		log.Fatal(err)
	}
	faulty, err := rt2.Run(shared.View(), work)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("clean run:  %.1f ms, %d tasks\n", clean.Time*1e3, clean.TasksDone)
	fmt.Printf("faulty run: %.1f ms, %d tasks, %d crashes, %d watchdog fires, %d retries\n",
		faulty.Time*1e3, faulty.TasksDone, faulty.Crashes, faulty.WatchdogFires, faulty.Retries)

	// End-to-end algorithmic quality under speculative errors: the
	// data-parallel stages tolerate Drop 1/4.
	denoise := srad.New()
	search, err := ferret.New()
	if err != nil {
		log.Fatal(err)
	}
	plan := fault.DropQuarter()
	fmt.Println("\nstage quality under Drop 1/4 (vs hyper-accurate, fault-free):")
	for _, b := range []rms.Benchmark{denoise, search} {
		ref, err := rms.Reference(b, 11)
		if err != nil {
			log.Fatal(err)
		}
		out, err := b.Run(b.DefaultInput(), b.DefaultThreads(), plan, 11)
		if err != nil {
			log.Fatal(err)
		}
		q, err := b.Quality(out, ref)
		if err != nil {
			log.Fatal(err)
		}
		qClean, err := b.Run(b.DefaultInput(), b.DefaultThreads(), fault.Plan{}, 11)
		if err != nil {
			log.Fatal(err)
		}
		q0, err := b.Quality(qClean, ref)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-7s quality %.3f (fault-free %.3f) -> retains %.0f%%\n",
			b.Name(), q, q0, 100*q/q0)
	}
}
