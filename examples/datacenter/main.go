// Datacenter: the multi-programmed scenario of Section 3.3 — Compress
// is the only Accordion mode where NNTV can stay below NSTV, "useful in
// heavily loaded multi-programmed environments". Several jobs share one
// NTV chip; as load rises, each job compresses its problem size so the
// whole mix still meets every job's STV deadline inside the chip's
// power budget, trading output quality for co-location.
package main

import (
	"fmt"
	"log"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/power"
	"repro/internal/rms"
)

func main() {
	ch, err := chip.New(chip.DefaultConfig(), 31415)
	if err != nil {
		log.Fatal(err)
	}
	pm := power.NewModel(ch)

	jobNames := []string{"canneal", "hotspot", "srad"}
	type job struct {
		bench  rms.Benchmark
		solver *core.Solver
	}
	var jobs []job
	for _, name := range jobNames {
		b, err := experiments.BenchmarkByName(name)
		if err != nil {
			log.Fatal(err)
		}
		fronts, err := core.MeasureFronts(b, 5)
		if err != nil {
			log.Fatal(err)
		}
		s, err := core.NewSolver(ch, pm, b, fronts)
		if err != nil {
			log.Fatal(err)
		}
		jobs = append(jobs, job{b, s})
	}

	budget := pm.Budget()
	fmt.Printf("chip: %d cores, %.0f W budget; %d tenant jobs, each with its own STV deadline\n\n",
		len(ch.Cores), budget, len(jobs))

	// Sweep the compression each tenant accepts; find the load levels
	// at which the mix fits the chip (cores and power).
	fmt.Printf("%12s %10s %10s %10s %12s %10s\n",
		"compression", "sum cores", "power(W)", "fits?", "worst qual", "mean eff")
	var firstFit float64
	for _, ps := range []float64{1.0, 0.8, 0.65, 0.5, 0.4, 0.32} {
		totalCores, totalPower := 0, 0.0
		worstQ, meanEff := 1e9, 0.0
		feasible := true
		for _, j := range jobs {
			// Input achieving the target relative problem size.
			input := j.bench.DefaultInput() * ps
			op, err := j.solver.Solve(input, core.Safe)
			if err != nil {
				log.Fatal(err)
			}
			if !op.Feasible && op.Limit == "cores" {
				feasible = false
			}
			totalCores += op.N
			totalPower += op.Power
			if op.RelQuality < worstQ {
				worstQ = op.RelQuality
			}
			meanEff += op.RelMIPSPerWatt
		}
		meanEff /= float64(len(jobs))
		fits := feasible && totalCores <= len(ch.Cores) && totalPower <= budget
		fmt.Printf("%11.0f%% %10d %10.1f %10v %12.2f %10.2f\n",
			ps*100, totalCores, totalPower, fits, worstQ, meanEff)
		if fits && firstFit == 0 {
			firstFit = ps
		}
	}

	if firstFit > 0 {
		fmt.Printf("\nAt full problem sizes the %d tenants exceed the chip; compressing each to %.0f%%\n", len(jobs), firstFit*100)
		fmt.Println("fits the whole mix inside cores and power while every job still meets its STV")
		fmt.Println("deadline — the Section 3.3 case for Compress in loaded multi-programmed environments.")
	} else {
		fmt.Println("\nno compression level fit this tenant mix; reduce the job count")
	}
}
