# Verification tiers. tier1 is the repository's baseline gate; race is
# mandatory since the worker pool and the memoized model caches put
# goroutines on shared chips, fronts, and Cholesky factors. `make ci`
# mirrors .github/workflows/ci.yml locally, job for job.
.PHONY: tier1 race bench-parallel bench-field golden ci fmt-check cover lint fuzz service-smoke history-check

tier1:
	go build ./... && go test ./...

race:
	go vet ./... && go test -race ./...

# Everything the CI workflow checks, in the same order: build, lint
# (accordionvet + gofmt -s + vet + shellcheck), gofmt cleanliness,
# tests, then the race tier.
ci:
	go build ./...
	$(MAKE) lint
	$(MAKE) fmt-check
	go test ./...
	go test -race ./...

# The repository's own static-analysis suite (see README "Static
# analysis"): accordionvet's six domain analyzers, simplify-mode gofmt,
# go vet, and shellcheck over the scripts (skipped with a notice if
# shellcheck is not installed).
lint:
	go run ./cmd/accordionvet ./...
	@unformatted="$$(gofmt -s -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt -s required on:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi
	go vet ./...
	@if command -v shellcheck >/dev/null 2>&1; then \
		shellcheck scripts/*.sh; \
	else \
		echo "shellcheck not installed; skipping script lint"; \
	fi

# Run each committed fuzz target for FUZZTIME (default 30s) beyond its
# checked-in corpus; mirrors the CI fuzz-smoke job.
FUZZTIME ?= 30s
fuzz:
	go test ./internal/telemetry/events -run '^$$' -fuzz FuzzEventsNDJSONRoundTrip -fuzztime $(FUZZTIME)
	go test ./internal/experiments -run '^$$' -fuzz FuzzFirstFloat -fuzztime $(FUZZTIME)
	go test ./internal/mathx -run '^$$' -fuzz FuzzFFTSizes -fuzztime $(FUZZTIME)

# Fail if any file needs gofmt, listing the offenders.
fmt-check:
	@unformatted="$$(gofmt -l .)"; \
	if [ -n "$$unformatted" ]; then \
		echo "gofmt required on:"; \
		echo "$$unformatted"; \
		exit 1; \
	fi

# Full-suite coverage with a minimum-total floor (COVER_MIN to adjust).
cover:
	./scripts/coverage.sh

# Measure the parallel engine's speedup and record BENCH_parallel.json.
bench-parallel:
	./scripts/bench_parallel.sh

# Measure dense vs circulant field sampling and record BENCH_field.json.
bench-field:
	./scripts/bench_field.sh

# Start accordiond with a small queue, drive it with its own load
# generator (sweep, backpressure, determinism, graceful drain), and
# record BENCH_service.json; mirrors the CI service-smoke job.
service-smoke:
	P99_MAX=5s ./scripts/bench_service.sh

# Gate the newest record in the committed run-history store against
# its baseline window (see README "Run history & regression gate");
# mirrors the CI history-gate job. HISTORY_DIR to point elsewhere.
HISTORY_DIR ?= HISTORY
history-check:
	go run ./cmd/accordionhist check -dir $(HISTORY_DIR)

# Regenerate the pinned golden artifacts after an intentional model change.
golden:
	UPDATE_GOLDEN=1 go test ./internal/experiments
