# Verification tiers. tier1 is the repository's baseline gate; race is
# mandatory since the worker pool and the memoized model caches put
# goroutines on shared chips, fronts, and Cholesky factors.
.PHONY: tier1 race bench-parallel golden

tier1:
	go build ./... && go test ./...

race:
	go vet ./... && go test -race ./...

# Measure the parallel engine's speedup and record BENCH_parallel.json.
bench-parallel:
	./scripts/bench_parallel.sh

# Regenerate the pinned golden artifacts after an intentional model change.
golden:
	UPDATE_GOLDEN=1 go test ./internal/experiments
