// Package baseline implements the comparison points Accordion is
// positioned against in Section 8: conventional STV operation, naive
// NTC with a worst-case timing guardband, a Booster-style dual-rail
// frequency equalizer, and an EnergySmart-style variation-aware
// cluster scheduler. None of these exploit weak scaling or algorithmic
// fault tolerance; they bound what variation mitigation alone achieves.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/chip"
	"repro/internal/power"
)

// Point is one baseline operating point for a fixed amount of work: n
// cores at frequency f and supply vdd, with the resulting throughput
// proxy (aggregate GHz) and power.
type Point struct {
	Name       string
	N          int
	Freq       float64 // GHz per core (effective)
	Vdd        float64
	Power      float64 // W
	Throughput float64 // aggregate effective GHz
}

// EffGHzPerWatt returns the throughput per Watt of the point.
func (p Point) EffGHzPerWatt() float64 {
	if p.Power <= 0 {
		return 0
	}
	return p.Throughput / p.Power
}

// Suite evaluates the baselines on one chip sample.
type Suite struct {
	Chip  *chip.Chip
	Power *power.Model
}

// NewSuite builds a baseline suite for the chip.
func NewSuite(ch *chip.Chip) *Suite {
	return &Suite{Chip: ch, Power: power.NewModel(ch)}
}

// STV returns conventional super-threshold operation: NSTV cores at
// the STV nominal frequency, saturating the power budget.
func (s *Suite) STV() Point {
	bl := s.Power.Baseline()
	return Point{
		Name:       "stv",
		N:          bl.N,
		Freq:       bl.Freq,
		Vdd:        bl.Vdd,
		Power:      bl.Power,
		Throughput: float64(bl.N) * bl.Freq,
	}
}

// NaiveNTC engages n cores at VddNTV clocked for the worst core on the
// chip under a guardbanded (error-free) frequency — variation-blind
// NTC. Every core pays the slowest core's frequency.
func (s *Suite) NaiveNTC(n int) (Point, error) {
	if n < 1 || n > len(s.Chip.Cores) {
		return Point{}, fmt.Errorf("baseline: core count %d out of range", n)
	}
	vdd := s.Chip.VddNTV()
	worst := math.Inf(1)
	for i := range s.Chip.Cores {
		if f := s.Chip.CoreSafeFreq(i, vdd); f < worst {
			worst = f
		}
	}
	cores := s.Chip.SelectCores(n, vdd, chip.SelectSequential)
	return Point{
		Name:       "naive-ntc",
		N:          n,
		Freq:       worst,
		Vdd:        vdd,
		Power:      s.Power.Engaged(cores, vdd, worst).Total(),
		Throughput: float64(n) * worst,
	}, nil
}

// Booster equalizes effective per-core frequency by letting each core
// time-share two voltage rails (Miller et al., HPCA 2012): slow cores
// spend more time on the boost rail. The effective frequency equals the
// target for every core; power reflects the per-core rail mix.
func (s *Suite) Booster(n int, boostVdd float64) (Point, error) {
	if n < 1 || n > len(s.Chip.Cores) {
		return Point{}, fmt.Errorf("baseline: core count %d out of range", n)
	}
	vdd := s.Chip.VddNTV()
	if boostVdd <= vdd {
		return Point{}, fmt.Errorf("baseline: boost rail %.3f must exceed the base rail %.3f", boostVdd, vdd)
	}
	cores := s.Chip.SelectCores(n, vdd, chip.SelectSequential)
	// The achievable common effective frequency is limited by the
	// slowest core running permanently boosted.
	target := math.Inf(1)
	for _, i := range cores {
		if f := s.Chip.CoreSafeFreq(i, boostVdd); f < target {
			target = f
		}
	}
	totalPower := 0.0
	for _, i := range cores {
		fBase := s.Chip.CoreSafeFreq(i, vdd)
		fBoost := s.Chip.CoreSafeFreq(i, boostVdd)
		// Fraction of time on the boost rail to average `target`.
		var frac float64
		switch {
		case fBase >= target:
			frac = 0
		case fBoost <= target:
			frac = 1
		default:
			frac = (target - fBase) / (fBoost - fBase)
		}
		totalPower += (1-frac)*s.Chip.CorePower(i, vdd, fBase) +
			frac*s.Chip.CorePower(i, boostVdd, fBoost)
	}
	// Cluster memory and network overheads at the base rail.
	over := s.Power.Engaged(cores, vdd, 0)
	totalPower += over.Memory + over.Network
	return Point{
		Name:       "booster",
		N:          n,
		Freq:       target,
		Vdd:        vdd,
		Power:      totalPower,
		Throughput: float64(n) * target,
	}, nil
}

// EnergySmart schedules work on whole clusters, ordering clusters by
// energy efficiency at their own safe frequency (Karpuzcu et al.,
// HPCA 2013): a single Vdd rail, per-cluster frequency domains, no
// frequency equalization across clusters. Throughput adds each
// engaged cluster's own frequency.
func (s *Suite) EnergySmart(n int) (Point, error) {
	if n < 1 || n > len(s.Chip.Cores) {
		return Point{}, fmt.Errorf("baseline: core count %d out of range", n)
	}
	vdd := s.Chip.VddNTV()
	type clusterRank struct {
		id  int
		f   float64
		eff float64
	}
	var ranks []clusterRank
	for c := 0; c < s.Chip.Cfg.Clusters; c++ {
		slow := s.Chip.ClusterSlowestCore(c, vdd)
		f := s.Chip.CoreSafeFreq(slow, vdd)
		lo, hi := s.Chip.ClusterCores(c)
		p := 0.0
		for i := lo; i < hi; i++ {
			p += s.Chip.CorePower(i, vdd, f)
		}
		ranks = append(ranks, clusterRank{id: c, f: f, eff: float64(hi-lo) * f / p})
	}
	sort.Slice(ranks, func(a, b int) bool { return ranks[a].eff > ranks[b].eff })

	var cores []int
	throughput, remaining := 0.0, n
	totalPower := 0.0
	for _, r := range ranks {
		if remaining == 0 {
			break
		}
		lo, hi := s.Chip.ClusterCores(r.id)
		take := hi - lo
		if take > remaining {
			take = remaining
		}
		for i := lo; i < lo+take; i++ {
			cores = append(cores, i)
			totalPower += s.Chip.CorePower(i, vdd, r.f)
		}
		throughput += float64(take) * r.f
		remaining -= take
	}
	over := s.Power.Engaged(cores, vdd, 0)
	totalPower += over.Memory + over.Network
	return Point{
		Name:       "energysmart",
		N:          n,
		Freq:       throughput / float64(n),
		Vdd:        vdd,
		Power:      totalPower,
		Throughput: throughput,
	}, nil
}

// PerClusterVdd runs each engaged cluster at its own minimum functional
// voltage plus a margin, instead of the chip-wide VddNTV (which every
// cluster inherits from the single worst memory block). Clusters are
// engaged in EnergySmart order (their own-efficiency at their own Vdd).
//
// The measured outcome on this model is a negative result that
// validates the paper's Section 6.1 design choice: below the chip-wide
// VddNTV the variation-amplified loss of safe frequency outruns the
// quadratic dynamic-power saving, so per-cluster undervolting reduces
// throughput per Watt. The chip-wide "max per-cluster VddMIN"
// designation is near-optimal for safe operation.
func (s *Suite) PerClusterVdd(n int, marginV float64) (Point, error) {
	if n < 1 || n > len(s.Chip.Cores) {
		return Point{}, fmt.Errorf("baseline: core count %d out of range", n)
	}
	if marginV < 0 {
		return Point{}, fmt.Errorf("baseline: negative voltage margin")
	}
	type clusterPlan struct {
		id   int
		vdd  float64
		f    float64
		eff  float64
		size int
	}
	var plans []clusterPlan
	for c := 0; c < s.Chip.Cfg.Clusters; c++ {
		vdd := s.Chip.ClusterVddMIN(c) + marginV
		slow := s.Chip.ClusterSlowestCore(c, vdd)
		f := s.Chip.CoreSafeFreq(slow, vdd)
		lo, hi := s.Chip.ClusterCores(c)
		p := 0.0
		for i := lo; i < hi; i++ {
			p += s.Chip.CorePower(i, vdd, f)
		}
		plans = append(plans, clusterPlan{c, vdd, f, float64(hi-lo) * f / p, hi - lo})
	}
	sort.Slice(plans, func(a, b int) bool { return plans[a].eff > plans[b].eff })

	var cores []int
	throughput, totalPower := 0.0, 0.0
	remaining := n
	weightedVdd := 0.0
	for _, pl := range plans {
		if remaining == 0 {
			break
		}
		take := pl.size
		if take > remaining {
			take = remaining
		}
		lo, _ := s.Chip.ClusterCores(pl.id)
		for i := lo; i < lo+take; i++ {
			cores = append(cores, i)
			totalPower += s.Chip.CorePower(i, pl.vdd, pl.f)
		}
		throughput += float64(take) * pl.f
		weightedVdd += pl.vdd * float64(take)
		remaining -= take
	}
	over := s.Power.Engaged(cores, s.Chip.VddNTV(), 0)
	totalPower += over.Memory + over.Network
	return Point{
		Name:       "per-cluster-vdd",
		N:          n,
		Freq:       throughput / float64(n),
		Vdd:        weightedVdd / float64(n),
		Power:      totalPower,
		Throughput: throughput,
	}, nil
}
