package baseline

import (
	"testing"

	"repro/internal/chip"
)

func testSuite(t *testing.T) *Suite {
	t.Helper()
	ch, err := chip.New(chip.DefaultConfig(), 2014)
	if err != nil {
		t.Fatal(err)
	}
	return NewSuite(ch)
}

func TestSTVPoint(t *testing.T) {
	s := testSuite(t)
	p := s.STV()
	if p.N < 10 || p.N > 24 {
		t.Errorf("NSTV = %d", p.N)
	}
	if p.Power > s.Power.Budget() {
		t.Error("STV point over budget")
	}
	if p.EffGHzPerWatt() <= 0 {
		t.Error("non-positive efficiency")
	}
}

func TestNaiveNTCPessimism(t *testing.T) {
	s := testSuite(t)
	naive, err := s.NaiveNTC(64)
	if err != nil {
		t.Fatal(err)
	}
	// Variation-blind NTC clocks everyone at the chip's slowest core.
	for i := range s.Chip.Cores {
		if s.Chip.CoreSafeFreq(i, s.Chip.VddNTV()) < naive.Freq-1e-12 {
			t.Fatal("naive frequency above some core's safe frequency")
		}
	}
	// EnergySmart scheduling on the same core count must beat it in
	// throughput per Watt (the HPCA 2013 result).
	es, err := s.EnergySmart(64)
	if err != nil {
		t.Fatal(err)
	}
	if es.EffGHzPerWatt() <= naive.EffGHzPerWatt() {
		t.Errorf("EnergySmart (%.3f GHz/W) not above naive NTC (%.3f GHz/W)",
			es.EffGHzPerWatt(), naive.EffGHzPerWatt())
	}
	if es.Throughput <= naive.Throughput {
		t.Error("EnergySmart throughput not above naive NTC")
	}
}

func TestBoosterEqualizes(t *testing.T) {
	s := testSuite(t)
	vdd := s.Chip.VddNTV()
	b, err := s.Booster(64, vdd+0.08)
	if err != nil {
		t.Fatal(err)
	}
	naive, err := s.NaiveNTC(64)
	if err != nil {
		t.Fatal(err)
	}
	// Boosting lifts the common effective frequency above the naive
	// worst-case clock, at a power premium per unit of throughput that
	// stays sane.
	if b.Freq <= naive.Freq {
		t.Errorf("booster f %.3f not above naive %.3f", b.Freq, naive.Freq)
	}
	if b.Power <= 0 || b.Power > s.Power.Budget()*3 {
		t.Errorf("booster power %.1f W implausible", b.Power)
	}
}

func TestBoosterValidation(t *testing.T) {
	s := testSuite(t)
	if _, err := s.Booster(64, s.Chip.VddNTV()-0.01); err == nil {
		t.Error("boost rail below base rail accepted")
	}
	if _, err := s.Booster(0, 1.0); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := s.NaiveNTC(0); err == nil {
		t.Error("zero cores accepted")
	}
	if _, err := s.EnergySmart(10000); err == nil {
		t.Error("oversized request accepted")
	}
}

func TestEnergySmartClusterGranularity(t *testing.T) {
	s := testSuite(t)
	p, err := s.EnergySmart(24)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 24 {
		t.Errorf("N = %d", p.N)
	}
	if p.Throughput <= 0 || p.Freq <= 0 {
		t.Error("degenerate point")
	}
	// More cores, more throughput.
	p2, err := s.EnergySmart(128)
	if err != nil {
		t.Fatal(err)
	}
	if p2.Throughput <= p.Throughput {
		t.Error("throughput not increasing in N")
	}
}

func TestPerClusterVddValidatesChipWideChoice(t *testing.T) {
	s := testSuite(t)
	es, err := s.EnergySmart(64)
	if err != nil {
		t.Fatal(err)
	}
	// The negative result the method documents: undervolting clusters
	// below the chip-wide VddNTV costs safe frequency faster than it
	// saves power.
	deep, err := s.PerClusterVdd(64, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	if deep.Vdd >= s.Chip.VddNTV() {
		t.Errorf("mean per-cluster Vdd %.3f not below VddNTV %.3f", deep.Vdd, s.Chip.VddNTV())
	}
	if deep.EffGHzPerWatt() >= es.EffGHzPerWatt() {
		t.Errorf("deep per-cluster undervolting (%.3f GHz/W) unexpectedly beat chip-wide (%.3f GHz/W)",
			deep.EffGHzPerWatt(), es.EffGHzPerWatt())
	}
	// Efficiency recovers monotonically as the margin (and hence the
	// per-cluster voltage) rises back through the chip-wide point.
	prev := deep.EffGHzPerWatt()
	for _, m := range []float64{0.03, 0.06, 0.09} {
		pc, err := s.PerClusterVdd(64, m)
		if err != nil {
			t.Fatal(err)
		}
		if pc.EffGHzPerWatt() <= prev {
			t.Errorf("efficiency not recovering with margin %.2f", m)
		}
		prev = pc.EffGHzPerWatt()
	}
	if _, err := s.PerClusterVdd(64, -0.1); err == nil {
		t.Error("negative margin accepted")
	}
	if _, err := s.PerClusterVdd(0, 0.01); err == nil {
		t.Error("zero cores accepted")
	}
}
