package service

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"repro/internal/experiments"
)

// TestFloat64RoundTrip pins the event-log convention for non-finite
// floats on the request schema: NaN and the infinities ride as the
// strings "NaN"/"+Inf"/"-Inf" and come back bit-for-bit.
func TestFloat64RoundTrip(t *testing.T) {
	cases := []struct {
		in   float64
		wire string
	}{
		{1.5, "1.5"},
		{0, "0"},
		{math.NaN(), `"NaN"`},
		{math.Inf(1), `"+Inf"`},
		{math.Inf(-1), `"-Inf"`},
	}
	for _, c := range cases {
		data, err := json.Marshal(Float64(c.in))
		if err != nil {
			t.Fatalf("marshal %v: %v", c.in, err)
		}
		if string(data) != c.wire {
			t.Errorf("Float64(%v) encoded as %s, want %s", c.in, data, c.wire)
		}
		var back Float64
		if err := json.Unmarshal(data, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", data, err)
		}
		if math.IsNaN(c.in) {
			if !math.IsNaN(float64(back)) {
				t.Errorf("NaN round-tripped to %v", back)
			}
		} else if float64(back) != c.in {
			t.Errorf("%v round-tripped to %v", c.in, back)
		}
	}
	var f Float64
	if err := json.Unmarshal([]byte(`"Infinity"`), &f); err == nil {
		t.Error(`unknown alias "Infinity" accepted; want an error`)
	}
}

// TestRequestJSONRoundTrip drives a NaN-bearing request through the
// wire format and back: the canonical bytes, the job id, and every
// field must survive.
func TestRequestJSONRoundTrip(t *testing.T) {
	req := Request{
		Kind:            KindAttribution,
		Seed:            7,
		ChipSeed:        99,
		Chips:           5,
		DistortionFloor: Float64(math.NaN()),
	}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	wire := req.Canonical()
	if !strings.Contains(string(wire), `"distortion_floor":"NaN"`) {
		t.Fatalf("canonical encoding lost the NaN alias: %s", wire)
	}
	var back Request
	if err := json.Unmarshal(wire, &back); err != nil {
		t.Fatalf("unmarshal canonical bytes: %v", err)
	}
	if !math.IsNaN(float64(back.DistortionFloor)) {
		t.Errorf("DistortionFloor came back %v, want NaN", back.DistortionFloor)
	}
	if err := back.Normalize(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back.Canonical(), wire) {
		t.Errorf("round-trip changed the canonical bytes:\n got %s\nwant %s", back.Canonical(), wire)
	}
	if back.JobID() != req.JobID() {
		t.Errorf("round-trip changed the job id: %s vs %s", back.JobID(), req.JobID())
	}
}

// TestNormalizeCanonicalizes pins that JSON spelling differences —
// whitespace, key order, explicitly-spelled defaults — all normalize
// to the same job id, which is what request coalescing keys on.
func TestNormalizeCanonicalizes(t *testing.T) {
	spellings := []string{
		`{"kind":"experiments","experiments":["fig1a"]}`,
		`{ "experiments" : [ "fig1a" ] , "kind" : "experiments" }`,
		`{"experiments":["fig1a"],"seed":1,"chips":20,"chip_seed":2014,"format":"text"}`,
		`{"schema":1,"experiments":["fig1a"]}`,
	}
	ids := map[string]bool{}
	for _, s := range spellings {
		var req Request
		if err := json.Unmarshal([]byte(s), &req); err != nil {
			t.Fatalf("unmarshal %s: %v", s, err)
		}
		if err := req.Normalize(); err != nil {
			t.Fatalf("normalize %s: %v", s, err)
		}
		ids[req.JobID()] = true
	}
	if len(ids) != 1 {
		t.Errorf("equivalent spellings produced %d distinct job ids: %v", len(ids), ids)
	}
}

// TestNormalizeRejects covers the validation errors a request can die
// of before it costs a queue slot.
func TestNormalizeRejects(t *testing.T) {
	cases := []struct {
		name string
		req  Request
		want string
	}{
		{"future schema", Request{Schema: 2}, "schema version"},
		{"unknown kind", Request{Kind: "paretoscan"}, "unknown kind"},
		{"unknown experiment", Request{Experiments: []string{"fig9z"}}, "unknown experiment"},
		{"bad format", Request{Format: "yaml"}, "unknown format"},
		{"chips overflow", Request{Chips: maxChips + 1}, "out of range"},
		{"negative chips", Request{Chips: -1}, "out of range"},
		{"attribution format", Request{Kind: KindAttribution, Format: "text"}, "not used"},
		{"attribution experiments", Request{Kind: KindAttribution, Experiments: []string{"fig1a"}}, "not used"},
	}
	for _, c := range cases {
		err := c.req.Normalize()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: Normalize() = %v, want error containing %q", c.name, err, c.want)
		}
	}
}

// TestExecuteDeterministic pins the service's core contract end to
// end: the same request executes to byte-identical response bodies,
// even across a full cache reset in between.
func TestExecuteDeterministic(t *testing.T) {
	req := Request{Experiments: []string{"fig1a"}, Chips: 2}
	if err := req.Normalize(); err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		resp, _, err := Execute(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		body, err := resp.Encode()
		if err != nil {
			t.Fatal(err)
		}
		return body
	}
	first := run()
	experiments.ResetCaches()
	second := run()
	if !bytes.Equal(first, second) {
		t.Errorf("identical requests produced different bodies (%d vs %d bytes)", len(first), len(second))
	}
	var resp Response
	if err := json.Unmarshal(first, &resp); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if resp.Schema != SchemaVersion || resp.JobID != req.JobID() {
		t.Errorf("response header wrong: schema %d, job %s", resp.Schema, resp.JobID)
	}
	if len(resp.Results) != 1 || resp.Results[0].ID != "fig1a" || resp.Results[0].Output == "" {
		t.Errorf("response results wrong: %+v", resp.Results)
	}
}

// TestExecuteAttributionFloor exercises the attribution kind and the
// DistortionFloor filter, including the NaN "no floor" spelling.
func TestExecuteAttributionFloor(t *testing.T) {
	base := Request{Kind: KindAttribution, Chips: 2}
	if err := base.Normalize(); err != nil {
		t.Fatal(err)
	}
	resp, _, err := Execute(context.Background(), base)
	if err != nil {
		t.Fatal(err)
	}
	att := resp.Attribution
	if att == nil || att.Bench != "hotspot" || len(att.Cores) == 0 {
		t.Fatalf("attribution response malformed: %+v", att)
	}

	nan := base
	nan.DistortionFloor = Float64(math.NaN())
	respNaN, _, err := Execute(context.Background(), nan)
	if err != nil {
		t.Fatal(err)
	}
	if len(respNaN.Attribution.Cores) != len(att.Cores) {
		t.Errorf("NaN floor filtered rows: %d vs %d", len(respNaN.Attribution.Cores), len(att.Cores))
	}

	floored := base
	floored.DistortionFloor = Float64(math.Inf(1))
	respInf, _, err := Execute(context.Background(), floored)
	if err != nil {
		t.Fatal(err)
	}
	if len(respInf.Attribution.Cores) != 0 {
		t.Errorf("+Inf floor kept %d rows, want 0", len(respInf.Attribution.Cores))
	}
}
