// Package service lifts the experiment runner's configuration into
// serializable, schema-versioned request/response types and provides
// the job-queue core of the accordiond daemon. The same Request drives
// the CLI, the HTTP service, and (later) sharded workers: a request is
// normalized into a canonical byte encoding, the SHA-256 of those
// bytes is the job id, and the response body is a pure function of the
// request — same request, byte-identical response — because every seed
// the simulation consumes travels inside the request itself.
//
// The package is a simulation package under accordionvet's
// determinism analyzer: it never reads the wall clock (the server's
// clock is injected via Config.Now and feeds only job status, latency
// telemetry, and provenance manifests — never response bytes), never
// draws from global math/rand, and never spawns goroutines. Worker
// loops are plain blocking methods the daemon runs on goroutines it
// owns, so the scheduling nondeterminism lives in cmd/accordiond, not
// here.
package service

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"repro/internal/experiments"
)

// SchemaVersion is the wire-format version of Request and Response. A
// request may carry 0 (meaning "current") or the exact version;
// anything else is rejected so a future schema bump cannot silently
// reinterpret old payloads.
const SchemaVersion = 1

// Float64 is a float64 whose JSON encoding follows the repository's
// NDJSON event-log convention for non-finite values: NaN and the
// infinities, which JSON cannot carry as numbers, become the strings
// "NaN", "+Inf" and "-Inf" and round-trip back to the same bits.
type Float64 float64

// MarshalJSON encodes finite values as numbers and non-finite values
// as their string aliases.
func (f Float64) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte(`"NaN"`), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON accepts a JSON number or one of the three non-finite
// aliases.
func (f *Float64) UnmarshalJSON(data []byte) error {
	if len(data) > 0 && data[0] == '"' {
		var s string
		if err := json.Unmarshal(data, &s); err != nil {
			return err
		}
		switch s {
		case "NaN":
			*f = Float64(math.NaN())
		case "+Inf":
			*f = Float64(math.Inf(1))
		case "-Inf":
			*f = Float64(math.Inf(-1))
		default:
			return fmt.Errorf("service: float field: unknown alias %q (want NaN, +Inf or -Inf)", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = Float64(v)
	return nil
}

// Request kinds.
const (
	// KindExperiments runs registered experiments by id (the same ids
	// `accordion list` prints) and returns their rendered tables.
	KindExperiments = "experiments"
	// KindAttribution runs the fault-attribution pass on the
	// representative chip and returns the per-core distortion ledger.
	KindAttribution = "attribution"
)

// Request is one simulation query. The zero value of every field means
// "use the recorded default" (the same defaults the CLI uses), so
// {"kind":"experiments","experiments":["fig1a"]} is a complete request.
// All randomness is seeded from Seed and ChipSeed: a normalized
// request fully determines the response bytes.
type Request struct {
	// Schema is the wire-format version: 0 or SchemaVersion.
	Schema int `json:"schema"`
	// Kind selects the query type; empty means KindExperiments.
	Kind string `json:"kind,omitempty"`
	// Experiments lists registered experiment ids; empty means every
	// id in presentation order (the CLI's `all`).
	Experiments []string `json:"experiments,omitempty"`
	// Seed is the master seed for workloads and fault streams (0 = 1).
	Seed int64 `json:"seed,omitempty"`
	// ChipSeed seeds the representative chip sample (0 = 2014).
	ChipSeed int64 `json:"chip_seed,omitempty"`
	// Chips is the Monte-Carlo population size (0 = 20).
	Chips int `json:"chips,omitempty"`
	// Format renders experiment tables as "text" (default) or "csv".
	Format string `json:"format,omitempty"`
	// DistortionFloor drops attribution rows whose per-core distortion
	// is below it. 0 keeps every engaged core; NaN is the explicit
	// "no floor" spelling and also keeps everything.
	DistortionFloor Float64 `json:"distortion_floor,omitempty"`
}

// maxChips mirrors the CLI's population sanity cap.
const maxChips = 100000

// Normalize validates the request and fills every defaulted field in
// place, so the canonical encoding (and therefore the job id) of
// {"seed":1} and {} agree. It returns an error for an unknown schema
// version, kind, format, or experiment id, and for out-of-range sizes;
// errors are detected here, before the request costs a queue slot.
func (r *Request) Normalize() error {
	switch r.Schema {
	case 0:
		r.Schema = SchemaVersion
	case SchemaVersion:
	default:
		return fmt.Errorf("service: unsupported schema version %d (this server speaks %d)", r.Schema, SchemaVersion)
	}
	if r.Kind == "" {
		r.Kind = KindExperiments
	}
	if r.Kind != KindExperiments && r.Kind != KindAttribution {
		return fmt.Errorf("service: unknown kind %q (want %s or %s)", r.Kind, KindExperiments, KindAttribution)
	}
	if r.Seed == 0 {
		r.Seed = 1
	}
	if r.ChipSeed == 0 {
		r.ChipSeed = 2014
	}
	if r.Chips == 0 {
		r.Chips = 20
	}
	if r.Chips < 1 || r.Chips > maxChips {
		return fmt.Errorf("service: chips %d out of range [1, %d]", r.Chips, maxChips)
	}
	switch r.Kind {
	case KindExperiments:
		if r.Format == "" {
			r.Format = "text"
		}
		if r.Format != "text" && r.Format != "csv" {
			return fmt.Errorf("service: unknown format %q (want text or csv)", r.Format)
		}
		if len(r.Experiments) == 0 {
			r.Experiments = experiments.IDs()
		}
		reg := experiments.Registry()
		for _, id := range r.Experiments {
			if _, ok := reg[id]; !ok {
				return fmt.Errorf("service: unknown experiment %q", id)
			}
		}
	case KindAttribution:
		if r.Format != "" {
			return fmt.Errorf("service: format %q is not used by %s requests", r.Format, KindAttribution)
		}
		if len(r.Experiments) != 0 {
			return fmt.Errorf("service: experiments list is not used by %s requests", KindAttribution)
		}
	}
	return nil
}

// Canonical returns the request's canonical byte encoding: the JSON of
// the normalized struct, whose field order and float formatting are
// fixed. Two requests that differ only in JSON whitespace, key order,
// or defaulted fields canonicalize identically.
func (r Request) Canonical() []byte {
	data, err := json.Marshal(r)
	if err != nil {
		// Request holds only marshalable fields; Float64's marshaler
		// never fails. Reaching here is a programming error.
		panic(fmt.Sprintf("service: canonical encoding failed: %v", err))
	}
	return data
}

// JobID derives the job identifier from the canonical request bytes:
// the first 16 hex digits of their SHA-256. Identical requests map to
// the identical job, which is what lets the server coalesce them.
func (r Request) JobID() string {
	sum := sha256.Sum256(r.Canonical())
	return hex.EncodeToString(sum[:8])
}

// Result is one experiment's rendered output.
type Result struct {
	ID     string `json:"id"`
	Output string `json:"output"`
}

// CoreShare is one engaged core's slice of an attribution ledger.
type CoreShare struct {
	Core       int     `json:"core"`
	Cluster    int     `json:"cluster"`
	Faults     int64   `json:"faults"`
	Distortion Float64 `json:"distortion"`
	Share      Float64 `json:"share"`
}

// Attribution is the fault-attribution ledger in wire form.
type Attribution struct {
	Bench           string      `json:"bench"`
	Mode            string      `json:"mode"`
	ChipSeed        int64       `json:"chip_seed"`
	EngagedCores    int         `json:"engaged_cores"`
	Injections      int64       `json:"injections"`
	TotalDistortion Float64     `json:"total_distortion"`
	Cores           []CoreShare `json:"cores"`
}

// Response is the deterministic answer to a Request: it echoes the
// normalized request (so a response is self-describing) and carries
// either the rendered experiment tables or the attribution ledger.
// Nothing time- or load-dependent is allowed in here — timings, cache
// statistics, and provenance live in the job status, never in the
// response body.
type Response struct {
	Schema      int          `json:"schema"`
	JobID       string       `json:"job_id"`
	Kind        string       `json:"kind"`
	Request     Request      `json:"request"`
	Results     []Result     `json:"results,omitempty"`
	Attribution *Attribution `json:"attribution,omitempty"`
}

// Encode renders the response as its canonical wire bytes (compact
// JSON plus a trailing newline).
func (r *Response) Encode() ([]byte, error) {
	data, err := json.Marshal(r)
	if err != nil {
		return nil, fmt.Errorf("service: encoding response: %w", err)
	}
	return append(data, '\n'), nil
}

// Execute runs a normalized request to completion on the calling
// goroutine and returns the response plus the per-runner results (for
// provenance accounting; nil for attribution requests). The response
// depends only on the request: experiments run through the same
// deterministic drivers the CLI uses, in the order the ids were given.
func Execute(ctx context.Context, req Request) (*Response, []experiments.RunResult, error) {
	resp := &Response{
		Schema:  req.Schema,
		JobID:   req.JobID(),
		Kind:    req.Kind,
		Request: req,
	}
	cfg := experiments.Config{Seed: req.Seed, ChipSeed: req.ChipSeed, Chips: req.Chips}
	switch req.Kind {
	case KindExperiments:
		results, err := experiments.RunMany(ctx, cfg, req.Experiments)
		if err != nil {
			return nil, nil, err
		}
		if err := experiments.FirstErr(results); err != nil {
			return nil, results, err
		}
		resp.Results = make([]Result, 0, len(results))
		for _, r := range results {
			var buf strings.Builder
			for _, t := range r.Tables {
				var err error
				if req.Format == "csv" {
					err = t.RenderCSV(&buf)
				} else {
					err = t.Render(&buf)
				}
				if err != nil {
					return nil, results, err
				}
			}
			resp.Results = append(resp.Results, Result{ID: r.ID, Output: buf.String()})
		}
		return resp, results, nil
	case KindAttribution:
		res, err := experiments.RunAttribution(ctx, cfg)
		if err != nil {
			return nil, nil, err
		}
		rep := res.Report
		att := &Attribution{
			Bench:           res.Bench,
			Mode:            res.Mode,
			ChipSeed:        rep.ChipSeed,
			EngagedCores:    rep.EngagedCores,
			Injections:      rep.Injections,
			TotalDistortion: Float64(rep.TotalDistortion),
			Cores:           make([]CoreShare, 0, len(rep.Cores)),
		}
		floor := float64(req.DistortionFloor)
		for _, c := range rep.Cores {
			if !math.IsNaN(floor) && c.Distortion < floor {
				continue
			}
			att.Cores = append(att.Cores, CoreShare{
				Core:       c.Core,
				Cluster:    c.Cluster,
				Faults:     c.Faults,
				Distortion: Float64(c.Distortion),
				Share:      Float64(c.Share),
			})
		}
		resp.Attribution = att
		return resp, nil, nil
	}
	return nil, nil, fmt.Errorf("service: unknown kind %q (request not normalized?)", req.Kind)
}
