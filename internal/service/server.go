package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/provenance"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// Config parameterizes a Server. The zero value of every field selects
// the documented default.
type Config struct {
	// QueueDepth bounds the number of jobs waiting for a worker
	// (running jobs do not occupy a slot). When the queue is full, new
	// work is rejected with ErrQueueFull — HTTP 429 — rather than
	// queued into unbounded latency. Default 16.
	QueueDepth int
	// Workers is the number of worker goroutines the daemon runs; the
	// caller must start exactly this many Worker loops, because
	// Shutdown waits for that many exits. Default GOMAXPROCS.
	Workers int
	// Retain bounds how many completed jobs (and their response
	// bytes) stay addressable for /jobs/<id> and request coalescing
	// after they finish. Oldest-finished evicts first. 0 means the
	// default of 64; negative retains nothing, so every identical
	// request re-executes.
	Retain int
	// RetryAfter is the client backoff advertised on 429 and 503
	// responses. Default 1s.
	RetryAfter time.Duration
	// Now supplies timestamps for job status, latency telemetry, and
	// provenance manifests. Response bodies never depend on it. The
	// default is the wall clock; tests inject fakes.
	Now func() time.Time
	// ReadyCheck, when set, gates /healthz readiness: a non-nil error
	// reports the server degraded (HTTP 503 with the reason) without
	// affecting admission. The daemon wires its SLO tracker here so
	// load balancers stop routing to an instance burning its error
	// budget. Nil means always ready.
	ReadyCheck func() error
	// OnJobDone, when set, is called once per worker-completed job
	// (done or failed), after the job reaches its terminal state and
	// outside the server lock. The daemon wires its run-history
	// recorder here to batch records per completed work. Jobs failed
	// administratively by a shutdown deadline — never picked up by a
	// worker — do not fire it. Nil costs nothing on the completion
	// path.
	OnJobDone func()
}

const (
	defaultQueueDepth = 16
	defaultRetain     = 64
	defaultRetryAfter = time.Second
)

// Job states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one admitted request. All fields are guarded by the server's
// mutex; Done() exposes the completion signal.
type Job struct {
	id  string
	req Request

	done     chan struct{}
	state    string
	enqueued time.Time
	started  time.Time
	finished time.Time
	resp     []byte
	err      error
	manifest *provenance.Manifest
	// scope attributes telemetry recorded while this job executes —
	// most importantly the memo caches' hit/miss counters — to this
	// job, so its manifest reports its own cache traffic rather than
	// the process-wide totals.
	scope *telemetry.Scope
}

// ID returns the job's identifier (the canonical request hash).
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Admission errors.
var (
	// ErrQueueFull signals backpressure: the bounded queue has no free
	// slot. HTTP surfaces it as 429 with a Retry-After header.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining signals a shutting-down server that accepts no new
	// work. HTTP surfaces it as 503 with a Retry-After header.
	ErrDraining = errors.New("service: server is draining")
)

// Server is the accordiond core: a bounded job queue with request
// coalescing in front of the deterministic experiment drivers. It
// spawns no goroutines of its own — the daemon runs Config.Workers
// Worker loops — so the package stays out of the scheduler's way and
// inside the determinism analyzer's rules.
type Server struct {
	cfg   Config
	queue chan *Job
	// workerExit receives one token per Worker return; Shutdown drains
	// exactly cfg.Workers of them.
	workerExit chan struct{}

	mu        sync.Mutex
	jobs      map[string]*Job
	retained  []string // completed job ids, oldest-finished first
	inflightN int64    // jobs admitted but not yet terminal
	draining  bool

	requests  *telemetry.Counter
	rejected  *telemetry.Counter
	coalesced *telemetry.Counter
	inflight  *telemetry.Gauge
	latency   *telemetry.Histogram
	runtime   *telemetry.Histogram
	latWin    *telemetry.Window
	runWin    *telemetry.Window
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Retain == 0 {
		cfg.Retain = defaultRetain
	} else if cfg.Retain < 0 {
		cfg.Retain = -1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.Now == nil {
		// The wall clock feeds status, telemetry and manifests only;
		// response bytes are a pure function of the request.
		cfg.Now = time.Now
	}
	return &Server{
		cfg:        cfg,
		queue:      make(chan *Job, cfg.QueueDepth),
		workerExit: make(chan struct{}, cfg.Workers),
		jobs:       make(map[string]*Job),
		requests:   telemetry.GetCounter("service.requests"),
		rejected:   telemetry.GetCounter("service.rejected"),
		coalesced:  telemetry.GetCounter("service.coalesced"),
		inflight:   telemetry.GetGauge("service.inflight"),
		latency:    telemetry.GetHistogram("service.latency_ns"),
		runtime:    telemetry.GetHistogram("service.run_ns"),
		latWin:     telemetry.GetWindow("service.latency_ns"),
		runWin:     telemetry.GetWindow("service.run_ns"),
	}
}

// Workers returns the number of Worker loops the daemon must run.
func (s *Server) Workers() int { return s.cfg.Workers }

// Admit normalizes req and either attaches it to the identical
// in-flight (or retained) job — request coalescing, reported by the
// second return — or enqueues a new job. It returns ErrQueueFull when
// the bounded queue has no slot and ErrDraining once Shutdown has
// begun; validation errors come from Normalize. Admit never blocks.
func (s *Server) Admit(req Request) (*Job, bool, error) {
	if err := req.Normalize(); err != nil {
		return nil, false, err
	}
	id := req.JobID()
	s.requests.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected.Inc()
		return nil, false, ErrDraining
	}
	if j, ok := s.jobs[id]; ok {
		s.coalesced.Inc()
		return j, true, nil
	}
	j := &Job{
		id:       id,
		req:      req,
		done:     make(chan struct{}),
		state:    StateQueued,
		enqueued: s.cfg.Now(),
		scope:    telemetry.NewScope(),
	}
	select {
	case s.queue <- j:
	default:
		s.rejected.Inc()
		return nil, false, ErrQueueFull
	}
	s.jobs[id] = j
	s.inflightN++
	s.inflight.Set(s.inflightN)
	events.New("job.state").Str("job", id).Str("state", StateQueued).
		Int("queue_len", int64(len(s.queue))).Emit()
	return j, false, nil
}

// Worker runs jobs until the context is cancelled or the queue is
// closed and drained by Shutdown. The daemon must run exactly
// Config.Workers of these on its own goroutines.
func (s *Server) Worker(ctx context.Context) {
	defer func() { s.workerExit <- struct{}{} }()
	for {
		select {
		case <-ctx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.run(ctx, j)
		}
	}
}

// run executes one job and records its outcome, latency, and
// provenance manifest. The job's telemetry scope rides the context so
// the memo caches attribute their hits and misses to this job; the
// manifest then reports the job's own cache traffic, not the
// process-wide totals.
func (s *Server) run(ctx context.Context, j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Already failed by a shutdown deadline; nothing to run.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = s.cfg.Now()
	events.New("job.state").Str("job", j.id).Str("state", StateRunning).
		Int("queued_ms", j.started.Sub(j.enqueued).Milliseconds()).Emit()
	s.mu.Unlock()

	ctx = telemetry.NewScopeContext(ctx, j.scope)
	man := provenance.New("accordiond")
	resp, results, err := Execute(ctx, j.req)
	var body []byte
	if err == nil {
		body, err = resp.Encode()
	}
	for _, r := range results {
		man.AddRunner(r.ID, r.Elapsed, r.Err)
	}
	if err == nil {
		man.AddArtifactBytes("response:"+j.id, body)
	}
	addCacheStats(man, j.scope)
	man.Finish()
	s.finish(j, body, err, man)
	if s.cfg.OnJobDone != nil {
		s.cfg.OnJobDone()
	}
}

// finish moves a job to its terminal state exactly once; late arrivals
// (a worker completing a job a shutdown deadline already failed) are
// dropped.
func (s *Server) finish(j *Job, body []byte, err error, man *provenance.Manifest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.finished = s.cfg.Now()
	j.resp = body
	j.err = err
	j.manifest = man
	if err != nil {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	s.inflightN--
	s.inflight.Set(s.inflightN)
	latNs := j.finished.Sub(j.enqueued).Nanoseconds()
	s.latency.Observe(latNs)
	var runNs int64
	queued := j.finished.Sub(j.enqueued)
	if !j.started.IsZero() {
		runNs = j.finished.Sub(j.started).Nanoseconds()
		queued = j.started.Sub(j.enqueued)
	}
	if err != nil {
		s.latWin.ObserveErr(latNs)
		s.runWin.ObserveErr(runNs)
	} else {
		s.latWin.Observe(latNs)
		s.runWin.Observe(runNs)
	}
	s.runtime.Observe(runNs)
	events.New("job.state").Str("job", j.id).Str("state", j.state).
		Int("queued_ms", queued.Milliseconds()).
		Int("run_ms", runNs/int64(time.Millisecond)).Emit()
	close(j.done)
	// Retention: failed jobs are always forgotten (a retry should
	// re-execute); completed jobs stay addressable until the retention
	// window evicts them, oldest finish first.
	if err != nil || s.cfg.Retain < 0 {
		delete(s.jobs, j.id)
		return
	}
	s.retained = append(s.retained, j.id)
	for len(s.retained) > s.cfg.Retain {
		delete(s.jobs, s.retained[0])
		s.retained = s.retained[1:]
	}
}

// Lookup returns the job registered under id, if it is still queued,
// running, or retained.
func (s *Server) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Inflight returns the number of admitted, non-terminal jobs.
func (s *Server) Inflight() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflightN
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: new admissions fail with ErrDraining,
// the queue closes, and Shutdown blocks until every worker has
// finished its in-flight and queued jobs or ctx expires. On deadline,
// jobs that never reached a worker fail with the context's error so no
// waiter hangs, and the context error is returned. Shutdown is
// idempotent; later calls re-wait on nothing and return nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	for i := 0; i < s.cfg.Workers; i++ {
		select {
		case <-s.workerExit:
		case <-ctx.Done():
			s.failPending(fmt.Errorf("service: shutdown: %w", ctx.Err()))
			return ctx.Err()
		}
	}
	// Workers exited via their own context before emptying the queue:
	// fail whatever never ran rather than leaving waiters blocked.
	s.failPending(errors.New("service: server shut down before the job ran"))
	return nil
}

// failPending terminates every non-terminal job with err.
func (s *Server) failPending(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, j := range s.jobs {
		if j.state == StateDone || j.state == StateFailed {
			continue
		}
		j.state = StateFailed
		j.finished = s.cfg.Now()
		j.err = err
		s.inflightN--
		events.New("job.state").Str("job", id).Str("state", StateFailed).Emit()
		close(j.done)
		delete(s.jobs, id)
	}
	s.inflight.Set(s.inflightN)
}

// JobSummary is one row of the dashboard's recent-jobs table.
type JobSummary struct {
	ID       string `json:"job_id"`
	Kind     string `json:"kind"`
	State    string `json:"state"`
	QueuedMs int64  `json:"queued_ms"`
	RunMs    int64  `json:"run_ms"`
	Error    string `json:"error,omitempty"`
}

// Summary is the operational snapshot behind /statusz: live queue and
// worker occupancy, the derived backoff, and the most recent jobs —
// active ones first (newest admission first), then retained completed
// ones (newest finish first).
type Summary struct {
	QueueLen  int          `json:"queue_len"`
	QueueCap  int          `json:"queue_cap"`
	Workers   int          `json:"workers"`
	Inflight  int64        `json:"inflight"`
	Draining  bool         `json:"draining"`
	RetrySecs int64        `json:"retry_secs"`
	Recent    []JobSummary `json:"recent,omitempty"`
}

// Summary snapshots the server's operational state; maxRecent bounds
// the job list (non-positive means none).
func (s *Server) Summary(maxRecent int) Summary {
	sum := Summary{RetrySecs: s.retryAfterSecs()}
	s.mu.Lock()
	defer s.mu.Unlock()
	sum.QueueLen = len(s.queue)
	sum.QueueCap = cap(s.queue)
	sum.Workers = s.cfg.Workers
	sum.Inflight = s.inflightN
	sum.Draining = s.draining
	if maxRecent <= 0 {
		return sum
	}
	var active []*Job
	for _, j := range s.jobs {
		if j.state == StateQueued || j.state == StateRunning {
			active = append(active, j)
		}
	}
	sort.Slice(active, func(a, b int) bool {
		if !active[a].enqueued.Equal(active[b].enqueued) {
			return active[a].enqueued.After(active[b].enqueued)
		}
		return active[a].id < active[b].id // stable order for ties
	})
	for _, j := range active {
		if len(sum.Recent) >= maxRecent {
			return sum
		}
		sum.Recent = append(sum.Recent, s.summaryOfLocked(j))
	}
	for i := len(s.retained) - 1; i >= 0 && len(sum.Recent) < maxRecent; i-- {
		if j, ok := s.jobs[s.retained[i]]; ok {
			sum.Recent = append(sum.Recent, s.summaryOfLocked(j))
		}
	}
	return sum
}

// summaryOfLocked condenses one job for the dashboard; the caller
// holds s.mu.
func (s *Server) summaryOfLocked(j *Job) JobSummary {
	js := JobSummary{ID: j.id, Kind: j.req.Kind, State: j.state}
	switch j.state {
	case StateQueued:
		js.QueuedMs = s.cfg.Now().Sub(j.enqueued).Milliseconds()
	case StateRunning:
		js.QueuedMs = j.started.Sub(j.enqueued).Milliseconds()
		js.RunMs = s.cfg.Now().Sub(j.started).Milliseconds()
	default:
		if !j.started.IsZero() {
			js.QueuedMs = j.started.Sub(j.enqueued).Milliseconds()
			js.RunMs = j.finished.Sub(j.started).Milliseconds()
		} else {
			js.QueuedMs = j.finished.Sub(j.enqueued).Milliseconds()
		}
	}
	if j.err != nil {
		js.Error = j.err.Error()
	}
	return js
}

// Mux returns the service's HTTP surface:
//
//	POST /run             submit and wait; the body is the Response
//	POST /jobs            submit without waiting; the body is a status
//	GET  /jobs/{id}       job status (timings, manifest when done)
//	GET  /jobs/{id}/result the completed job's response bytes
//	GET  /healthz         liveness + drain state
//
// The daemon mounts /telemetryz, /metricsz and /eventsz beside these.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// maxRequestBytes bounds a request body; a Request is tiny.
const maxRequestBytes = 1 << 20

// admitHTTP decodes, normalizes and admits the request body, writing
// the mapped error response (400/429/503) on failure. The second
// return reports coalescing for the access log.
func (s *Server) admitHTTP(w http.ResponseWriter, r *http.Request) (*Job, bool, bool) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		n := writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding request: %w", err))
		s.logRequest(r, nil, false, http.StatusBadRequest, n)
		return nil, false, false
	}
	j, coalesced, err := s.Admit(req)
	var status int
	switch {
	case errors.Is(err, ErrQueueFull):
		s.setRetryAfter(w)
		status = http.StatusTooManyRequests
	case errors.Is(err, ErrDraining):
		s.setRetryAfter(w)
		status = http.StatusServiceUnavailable
	case err != nil:
		status = http.StatusBadRequest
	default:
		return j, coalesced, true
	}
	n := writeError(w, status, err)
	s.logRequest(r, nil, false, status, n)
	return nil, false, false
}

// handleRun is the synchronous path: admit, wait, answer with the
// deterministic response bytes.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	j, coalesced, ok := s.admitHTTP(w, r)
	if !ok {
		return
	}
	select {
	case <-r.Context().Done():
		// Client gone; the job keeps running for coalesced waiters.
		return
	case <-j.Done():
	}
	status, n := s.writeResult(w, j)
	s.logRequest(r, j, coalesced, status, n)
}

// handleSubmit is the asynchronous path: admit and answer immediately
// with the job status; poll /jobs/{id} for completion.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	j, coalesced, ok := s.admitHTTP(w, r)
	if !ok {
		return
	}
	status := http.StatusAccepted
	if st := s.statusOf(j); st.State == StateDone || st.State == StateFailed {
		status = http.StatusOK
	}
	n := writeJSON(w, status, s.statusOf(j))
	s.logRequest(r, j, coalesced, status, n)
}

// JobStatus is the /jobs/{id} document.
type JobStatus struct {
	Schema   int                  `json:"schema"`
	JobID    string               `json:"job_id"`
	Kind     string               `json:"kind"`
	State    string               `json:"state"`
	QueuedMs int64                `json:"queued_ms"`
	RunMs    int64                `json:"run_ms,omitempty"`
	Error    string               `json:"error,omitempty"`
	Manifest *provenance.Manifest `json:"manifest,omitempty"`
}

// statusOf snapshots a job under the lock.
func (s *Server) statusOf(j *Job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		Schema: SchemaVersion,
		JobID:  j.id,
		Kind:   j.req.Kind,
		State:  j.state,
	}
	switch j.state {
	case StateQueued:
		st.QueuedMs = s.cfg.Now().Sub(j.enqueued).Milliseconds()
	case StateRunning:
		st.QueuedMs = j.started.Sub(j.enqueued).Milliseconds()
		st.RunMs = s.cfg.Now().Sub(j.started).Milliseconds()
	default:
		if !j.started.IsZero() {
			st.QueuedMs = j.started.Sub(j.enqueued).Milliseconds()
			st.RunMs = j.finished.Sub(j.started).Milliseconds()
		} else {
			st.QueuedMs = j.finished.Sub(j.enqueued).Milliseconds()
		}
		st.Manifest = j.manifest
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown or evicted job"))
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Lookup(r.PathValue("id"))
	if !ok {
		n := writeError(w, http.StatusNotFound, errors.New("service: unknown or evicted job"))
		s.logRequest(r, nil, false, http.StatusNotFound, n)
		return
	}
	s.mu.Lock()
	state := j.state
	s.mu.Unlock()
	if state == StateQueued || state == StateRunning {
		s.setRetryAfter(w)
		n := writeError(w, http.StatusAccepted, errors.New("service: job still "+state))
		s.logRequest(r, j, false, http.StatusAccepted, n)
		return
	}
	status, n := s.writeResult(w, j)
	s.logRequest(r, j, false, status, n)
}

// writeResult answers with a terminal job's outcome: the deterministic
// response bytes, or the execution error. It returns the HTTP status
// and body size for the access log.
func (s *Server) writeResult(w http.ResponseWriter, j *Job) (int, int) {
	s.mu.Lock()
	body, err := j.resp, j.err
	s.mu.Unlock()
	if err != nil {
		return http.StatusInternalServerError, writeError(w, http.StatusInternalServerError, err)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Job-Id", j.id)
	n, _ := w.Write(body)
	return http.StatusOK, n
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Cache-Control", "no-cache")
	s.mu.Lock()
	doc := struct {
		Status   string `json:"status"`
		Inflight int64  `json:"inflight"`
		Schema   int    `json:"schema"`
		Reason   string `json:"reason,omitempty"`
	}{Status: "ok", Inflight: s.inflightN, Schema: SchemaVersion}
	draining := s.draining
	s.mu.Unlock()
	if draining {
		doc.Status = "draining"
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	if s.cfg.ReadyCheck != nil {
		if err := s.cfg.ReadyCheck(); err != nil {
			doc.Status = "degraded"
			doc.Reason = err.Error()
			s.setRetryAfter(w)
			writeJSON(w, http.StatusServiceUnavailable, doc)
			return
		}
	}
	writeJSON(w, http.StatusOK, doc)
}

// logRequest emits one "service.request" access-log event: the NDJSON
// line downstream tooling joins against job.state transitions. Nil job
// means the request never produced one (decode error, backpressure,
// unknown id). The event is one atomic load when logging is off.
func (s *Server) logRequest(r *http.Request, j *Job, coalesced bool, status, bytes int) {
	b := events.New("service.request")
	if b == nil {
		return
	}
	b.Str("method", r.Method).Str("path", r.URL.Path).
		Int("status", int64(status)).Int("bytes", int64(bytes))
	if j != nil {
		st := s.statusOf(j)
		var co int64
		if coalesced {
			co = 1
		}
		b.Str("job", j.id).Int("coalesced", co).
			Int("queued_ms", st.QueuedMs).Int("run_ms", st.RunMs)
	}
	b.Emit()
}

// maxRetryAfter caps the derived backoff; beyond a minute the estimate
// says more about a cold window than about the queue.
const maxRetryAfter = 60 * time.Second

// retryAfterSecs derives the client backoff from live state: with a
// warm service-time window, the advertised wait is the time the queue
// needs to drain one slot — mean run time × (queue length + 1) spread
// over the worker pool — clamped to [Config.RetryAfter, 60s]. A cold
// window (service just started, telemetry off, no traffic this past
// minute) falls back to the configured constant.
func (s *Server) retryAfterSecs() int64 {
	minSecs := int64(s.cfg.RetryAfter / time.Second)
	if minSecs < 1 {
		minSecs = 1
	}
	st := s.runWin.Stats(time.Minute)
	if st.Count == 0 {
		return minSecs
	}
	waitNs := st.Mean * float64(len(s.queue)+1) / float64(s.cfg.Workers)
	secs := int64(math.Ceil(waitNs / float64(time.Second)))
	if secs < minSecs {
		secs = minSecs
	}
	if max := int64(maxRetryAfter / time.Second); secs > max {
		secs = max
	}
	return secs
}

// setRetryAfter advertises the derived client backoff (Retry-After has
// whole-second resolution, so at least 1s).
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	w.Header().Set("Retry-After", strconv.FormatInt(s.retryAfterSecs(), 10))
}

func writeJSON(w http.ResponseWriter, status int, doc any) int {
	data, err := json.Marshal(doc)
	if err != nil {
		return writeError(w, http.StatusInternalServerError, err)
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	n, _ := w.Write(append(data, '\n'))
	return n
}

func writeError(w http.ResponseWriter, status int, err error) int {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	doc := struct {
		Error string `json:"error"`
	}{Error: err.Error()}
	data, _ := json.Marshal(doc)
	n, _ := w.Write(append(data, '\n'))
	return n
}

// addCacheStats harvests the job's own cache traffic from its
// telemetry scope into the manifest: every cache.<name>.{hits,misses}
// pair the scope tallied becomes one manifest cache entry, sorted by
// name. Scoped harvesting is what keeps concurrent jobs' manifests
// honest — each reports the hits and misses its own execution
// incurred, and the per-job counts sum to the global delta.
func addCacheStats(man *provenance.Manifest, sc *telemetry.Scope) {
	hits := map[string]int64{}
	misses := map[string]int64{}
	for _, c := range sc.Counters() {
		if name, ok := strings.CutPrefix(c.Name, "cache."); ok {
			switch {
			case strings.HasSuffix(name, ".hits"):
				hits[strings.TrimSuffix(name, ".hits")] = c.Value
			case strings.HasSuffix(name, ".misses"):
				misses[strings.TrimSuffix(name, ".misses")] = c.Value
			}
		}
	}
	names := make([]string, 0, len(hits))
	for name := range hits {
		names = append(names, name)
	}
	for name := range misses {
		if _, ok := hits[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		man.AddCache(name, hits[name], misses[name])
	}
}
