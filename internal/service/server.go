package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/provenance"
	"repro/internal/telemetry"
)

// Config parameterizes a Server. The zero value of every field selects
// the documented default.
type Config struct {
	// QueueDepth bounds the number of jobs waiting for a worker
	// (running jobs do not occupy a slot). When the queue is full, new
	// work is rejected with ErrQueueFull — HTTP 429 — rather than
	// queued into unbounded latency. Default 16.
	QueueDepth int
	// Workers is the number of worker goroutines the daemon runs; the
	// caller must start exactly this many Worker loops, because
	// Shutdown waits for that many exits. Default GOMAXPROCS.
	Workers int
	// Retain bounds how many completed jobs (and their response
	// bytes) stay addressable for /jobs/<id> and request coalescing
	// after they finish. Oldest-finished evicts first. 0 means the
	// default of 64; negative retains nothing, so every identical
	// request re-executes.
	Retain int
	// RetryAfter is the client backoff advertised on 429 and 503
	// responses. Default 1s.
	RetryAfter time.Duration
	// Now supplies timestamps for job status, latency telemetry, and
	// provenance manifests. Response bodies never depend on it. The
	// default is the wall clock; tests inject fakes.
	Now func() time.Time
}

const (
	defaultQueueDepth = 16
	defaultRetain     = 64
	defaultRetryAfter = time.Second
)

// Job states, in lifecycle order.
const (
	StateQueued  = "queued"
	StateRunning = "running"
	StateDone    = "done"
	StateFailed  = "failed"
)

// Job is one admitted request. All fields are guarded by the server's
// mutex; Done() exposes the completion signal.
type Job struct {
	id  string
	req Request

	done     chan struct{}
	state    string
	enqueued time.Time
	started  time.Time
	finished time.Time
	resp     []byte
	err      error
	manifest *provenance.Manifest
}

// ID returns the job's identifier (the canonical request hash).
func (j *Job) ID() string { return j.id }

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// Admission errors.
var (
	// ErrQueueFull signals backpressure: the bounded queue has no free
	// slot. HTTP surfaces it as 429 with a Retry-After header.
	ErrQueueFull = errors.New("service: job queue full")
	// ErrDraining signals a shutting-down server that accepts no new
	// work. HTTP surfaces it as 503 with a Retry-After header.
	ErrDraining = errors.New("service: server is draining")
)

// Server is the accordiond core: a bounded job queue with request
// coalescing in front of the deterministic experiment drivers. It
// spawns no goroutines of its own — the daemon runs Config.Workers
// Worker loops — so the package stays out of the scheduler's way and
// inside the determinism analyzer's rules.
type Server struct {
	cfg   Config
	queue chan *Job
	// workerExit receives one token per Worker return; Shutdown drains
	// exactly cfg.Workers of them.
	workerExit chan struct{}

	mu        sync.Mutex
	jobs      map[string]*Job
	retained  []string // completed job ids, oldest-finished first
	inflightN int64    // jobs admitted but not yet terminal
	draining  bool

	requests  *telemetry.Counter
	rejected  *telemetry.Counter
	coalesced *telemetry.Counter
	inflight  *telemetry.Gauge
	latency   *telemetry.Histogram
}

// New builds a Server from cfg, applying defaults.
func New(cfg Config) *Server {
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = defaultQueueDepth
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Retain == 0 {
		cfg.Retain = defaultRetain
	} else if cfg.Retain < 0 {
		cfg.Retain = -1
	}
	if cfg.RetryAfter <= 0 {
		cfg.RetryAfter = defaultRetryAfter
	}
	if cfg.Now == nil {
		// The wall clock feeds status, telemetry and manifests only;
		// response bytes are a pure function of the request.
		cfg.Now = time.Now
	}
	return &Server{
		cfg:        cfg,
		queue:      make(chan *Job, cfg.QueueDepth),
		workerExit: make(chan struct{}, cfg.Workers),
		jobs:       make(map[string]*Job),
		requests:   telemetry.GetCounter("service.requests"),
		rejected:   telemetry.GetCounter("service.rejected"),
		coalesced:  telemetry.GetCounter("service.coalesced"),
		inflight:   telemetry.GetGauge("service.inflight"),
		latency:    telemetry.GetHistogram("service.latency_ns"),
	}
}

// Workers returns the number of Worker loops the daemon must run.
func (s *Server) Workers() int { return s.cfg.Workers }

// Admit normalizes req and either attaches it to the identical
// in-flight (or retained) job — request coalescing — or enqueues a new
// job. It returns ErrQueueFull when the bounded queue has no slot and
// ErrDraining once Shutdown has begun; validation errors come from
// Normalize. Admit never blocks.
func (s *Server) Admit(req Request) (*Job, error) {
	if err := req.Normalize(); err != nil {
		return nil, err
	}
	id := req.JobID()
	s.requests.Inc()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		s.rejected.Inc()
		return nil, ErrDraining
	}
	if j, ok := s.jobs[id]; ok {
		s.coalesced.Inc()
		return j, nil
	}
	j := &Job{
		id:       id,
		req:      req,
		done:     make(chan struct{}),
		state:    StateQueued,
		enqueued: s.cfg.Now(),
	}
	select {
	case s.queue <- j:
	default:
		s.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.jobs[id] = j
	s.inflightN++
	s.inflight.Set(s.inflightN)
	return j, nil
}

// Worker runs jobs until the context is cancelled or the queue is
// closed and drained by Shutdown. The daemon must run exactly
// Config.Workers of these on its own goroutines.
func (s *Server) Worker(ctx context.Context) {
	defer func() { s.workerExit <- struct{}{} }()
	for {
		select {
		case <-ctx.Done():
			return
		case j, ok := <-s.queue:
			if !ok {
				return
			}
			s.run(ctx, j)
		}
	}
}

// run executes one job and records its outcome, latency, and
// provenance manifest.
func (s *Server) run(ctx context.Context, j *Job) {
	s.mu.Lock()
	if j.state != StateQueued {
		// Already failed by a shutdown deadline; nothing to run.
		s.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = s.cfg.Now()
	s.mu.Unlock()

	man := provenance.New("accordiond")
	resp, results, err := Execute(ctx, j.req)
	var body []byte
	if err == nil {
		body, err = resp.Encode()
	}
	for _, r := range results {
		man.AddRunner(r.ID, r.Elapsed, r.Err)
	}
	if err == nil {
		man.AddArtifactBytes("response:"+j.id, body)
	}
	addCacheStats(man)
	man.Finish()
	s.finish(j, body, err, man)
}

// finish moves a job to its terminal state exactly once; late arrivals
// (a worker completing a job a shutdown deadline already failed) are
// dropped.
func (s *Server) finish(j *Job, body []byte, err error, man *provenance.Manifest) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if j.state == StateDone || j.state == StateFailed {
		return
	}
	j.finished = s.cfg.Now()
	j.resp = body
	j.err = err
	j.manifest = man
	if err != nil {
		j.state = StateFailed
	} else {
		j.state = StateDone
	}
	s.inflightN--
	s.inflight.Set(s.inflightN)
	s.latency.Observe(j.finished.Sub(j.enqueued).Nanoseconds())
	close(j.done)
	// Retention: failed jobs are always forgotten (a retry should
	// re-execute); completed jobs stay addressable until the retention
	// window evicts them, oldest finish first.
	if err != nil || s.cfg.Retain < 0 {
		delete(s.jobs, j.id)
		return
	}
	s.retained = append(s.retained, j.id)
	for len(s.retained) > s.cfg.Retain {
		delete(s.jobs, s.retained[0])
		s.retained = s.retained[1:]
	}
}

// Lookup returns the job registered under id, if it is still queued,
// running, or retained.
func (s *Server) Lookup(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Inflight returns the number of admitted, non-terminal jobs.
func (s *Server) Inflight() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflightN
}

// Draining reports whether Shutdown has begun.
func (s *Server) Draining() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining
}

// Shutdown drains the server: new admissions fail with ErrDraining,
// the queue closes, and Shutdown blocks until every worker has
// finished its in-flight and queued jobs or ctx expires. On deadline,
// jobs that never reached a worker fail with the context's error so no
// waiter hangs, and the context error is returned. Shutdown is
// idempotent; later calls re-wait on nothing and return nil.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil
	}
	s.draining = true
	close(s.queue)
	s.mu.Unlock()

	for i := 0; i < s.cfg.Workers; i++ {
		select {
		case <-s.workerExit:
		case <-ctx.Done():
			s.failPending(fmt.Errorf("service: shutdown: %w", ctx.Err()))
			return ctx.Err()
		}
	}
	// Workers exited via their own context before emptying the queue:
	// fail whatever never ran rather than leaving waiters blocked.
	s.failPending(errors.New("service: server shut down before the job ran"))
	return nil
}

// failPending terminates every non-terminal job with err.
func (s *Server) failPending(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for id, j := range s.jobs {
		if j.state == StateDone || j.state == StateFailed {
			continue
		}
		j.state = StateFailed
		j.finished = s.cfg.Now()
		j.err = err
		s.inflightN--
		close(j.done)
		delete(s.jobs, id)
	}
	s.inflight.Set(s.inflightN)
}

// Mux returns the service's HTTP surface:
//
//	POST /run             submit and wait; the body is the Response
//	POST /jobs            submit without waiting; the body is a status
//	GET  /jobs/{id}       job status (timings, manifest when done)
//	GET  /jobs/{id}/result the completed job's response bytes
//	GET  /healthz         liveness + drain state
//
// The daemon mounts /telemetryz, /metricsz and /eventsz beside these.
func (s *Server) Mux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("POST /jobs", s.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", s.handleStatus)
	mux.HandleFunc("GET /jobs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	return mux
}

// maxRequestBytes bounds a request body; a Request is tiny.
const maxRequestBytes = 1 << 20

// admitHTTP decodes, normalizes and admits the request body, writing
// the mapped error response (400/429/503) on failure.
func (s *Server) admitHTTP(w http.ResponseWriter, r *http.Request) (*Job, bool) {
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Errorf("service: decoding request: %w", err))
		return nil, false
	}
	j, err := s.Admit(req)
	switch {
	case errors.Is(err, ErrQueueFull):
		s.setRetryAfter(w)
		writeError(w, http.StatusTooManyRequests, err)
		return nil, false
	case errors.Is(err, ErrDraining):
		s.setRetryAfter(w)
		writeError(w, http.StatusServiceUnavailable, err)
		return nil, false
	case err != nil:
		writeError(w, http.StatusBadRequest, err)
		return nil, false
	}
	return j, true
}

// handleRun is the synchronous path: admit, wait, answer with the
// deterministic response bytes.
func (s *Server) handleRun(w http.ResponseWriter, r *http.Request) {
	j, ok := s.admitHTTP(w, r)
	if !ok {
		return
	}
	select {
	case <-r.Context().Done():
		// Client gone; the job keeps running for coalesced waiters.
		return
	case <-j.Done():
	}
	s.writeResult(w, j)
}

// handleSubmit is the asynchronous path: admit and answer immediately
// with the job status; poll /jobs/{id} for completion.
func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	j, ok := s.admitHTTP(w, r)
	if !ok {
		return
	}
	status := http.StatusAccepted
	if st := s.statusOf(j); st.State == StateDone || st.State == StateFailed {
		status = http.StatusOK
	}
	writeJSON(w, status, s.statusOf(j))
}

// JobStatus is the /jobs/{id} document.
type JobStatus struct {
	Schema   int                  `json:"schema"`
	JobID    string               `json:"job_id"`
	Kind     string               `json:"kind"`
	State    string               `json:"state"`
	QueuedMs int64                `json:"queued_ms"`
	RunMs    int64                `json:"run_ms,omitempty"`
	Error    string               `json:"error,omitempty"`
	Manifest *provenance.Manifest `json:"manifest,omitempty"`
}

// statusOf snapshots a job under the lock.
func (s *Server) statusOf(j *Job) JobStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := JobStatus{
		Schema: SchemaVersion,
		JobID:  j.id,
		Kind:   j.req.Kind,
		State:  j.state,
	}
	switch j.state {
	case StateQueued:
		st.QueuedMs = s.cfg.Now().Sub(j.enqueued).Milliseconds()
	case StateRunning:
		st.QueuedMs = j.started.Sub(j.enqueued).Milliseconds()
		st.RunMs = s.cfg.Now().Sub(j.started).Milliseconds()
	default:
		if !j.started.IsZero() {
			st.QueuedMs = j.started.Sub(j.enqueued).Milliseconds()
			st.RunMs = j.finished.Sub(j.started).Milliseconds()
		} else {
			st.QueuedMs = j.finished.Sub(j.enqueued).Milliseconds()
		}
		st.Manifest = j.manifest
	}
	if j.err != nil {
		st.Error = j.err.Error()
	}
	return st
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown or evicted job"))
		return
	}
	writeJSON(w, http.StatusOK, s.statusOf(j))
}

func (s *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	j, ok := s.Lookup(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errors.New("service: unknown or evicted job"))
		return
	}
	s.mu.Lock()
	state := j.state
	s.mu.Unlock()
	if state == StateQueued || state == StateRunning {
		s.setRetryAfter(w)
		writeError(w, http.StatusAccepted, errors.New("service: job still "+state))
		return
	}
	s.writeResult(w, j)
}

// writeResult answers with a terminal job's outcome: the deterministic
// response bytes, or the execution error.
func (s *Server) writeResult(w http.ResponseWriter, j *Job) {
	s.mu.Lock()
	body, err := j.resp, j.err
	s.mu.Unlock()
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.Header().Set("X-Job-Id", j.id)
	_, _ = w.Write(body)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	doc := struct {
		Status   string `json:"status"`
		Inflight int64  `json:"inflight"`
		Schema   int    `json:"schema"`
	}{Status: "ok", Inflight: s.inflightN, Schema: SchemaVersion}
	draining := s.draining
	s.mu.Unlock()
	if draining {
		doc.Status = "draining"
		s.setRetryAfter(w)
		writeJSON(w, http.StatusServiceUnavailable, doc)
		return
	}
	writeJSON(w, http.StatusOK, doc)
}

// setRetryAfter advertises the configured client backoff, at least 1s
// (Retry-After has whole-second resolution).
func (s *Server) setRetryAfter(w http.ResponseWriter) {
	secs := int64(s.cfg.RetryAfter / time.Second)
	if secs < 1 {
		secs = 1
	}
	w.Header().Set("Retry-After", strconv.FormatInt(secs, 10))
}

func writeJSON(w http.ResponseWriter, status int, doc any) {
	data, err := json.Marshal(doc)
	if err != nil {
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	_, _ = w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, err error) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	w.WriteHeader(status)
	doc := struct {
		Error string `json:"error"`
	}{Error: err.Error()}
	data, _ := json.Marshal(doc)
	_, _ = w.Write(append(data, '\n'))
}

// addCacheStats harvests the memo caches' hit/miss counters from the
// telemetry registry into the manifest, exactly as the CLI does for
// its run manifest: every cache.<name>.{hits,misses} pair becomes one
// manifest cache entry, sorted by name.
func addCacheStats(man *provenance.Manifest) {
	snap := telemetry.Capture()
	hits := map[string]int64{}
	misses := map[string]int64{}
	for _, c := range snap.Counters {
		if name, ok := strings.CutPrefix(c.Name, "cache."); ok {
			switch {
			case strings.HasSuffix(name, ".hits"):
				hits[strings.TrimSuffix(name, ".hits")] = c.Value
			case strings.HasSuffix(name, ".misses"):
				misses[strings.TrimSuffix(name, ".misses")] = c.Value
			}
		}
	}
	names := make([]string, 0, len(hits))
	for name := range hits {
		names = append(names, name)
	}
	for name := range misses {
		if _, ok := hits[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	for _, name := range names {
		man.AddCache(name, hits[name], misses[name])
	}
}
