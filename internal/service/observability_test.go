package service

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/experiments"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// TestRetryAfterDerived pins the derived-backoff bounds: a warm
// service-time window turns Retry-After into drain-rate × queue-depth,
// clamped to [Config.RetryAfter, 60s]; a cold window falls back to the
// configured constant.
func TestRetryAfterDerived(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	srv := New(Config{QueueDepth: 4, Workers: 2, RetryAfter: 3 * time.Second})
	w := telemetry.GetWindow("service.run_ns")

	// Cold window: fall back to the configured constant.
	if got := srv.retryAfterSecs(); got != 3 {
		t.Errorf("cold-window Retry-After = %d, want the configured 3", got)
	}

	// Warm window, empty queue: mean 10s over 2 workers → 5s.
	for i := 0; i < 4; i++ {
		w.Observe(int64(10 * time.Second))
	}
	if got := srv.retryAfterSecs(); got != 5 {
		t.Errorf("warm Retry-After = %d, want ceil(10s*1/2) = 5", got)
	}

	// Upper clamp: a 500s mean must not advertise beyond a minute.
	telemetry.Reset()
	w.Observe(int64(500 * time.Second))
	if got := srv.retryAfterSecs(); got != 60 {
		t.Errorf("clamped Retry-After = %d, want 60", got)
	}

	// Lower clamp: sub-second service time still honors the floor.
	telemetry.Reset()
	w.Observe(int64(time.Millisecond))
	if got := srv.retryAfterSecs(); got != 3 {
		t.Errorf("floored Retry-After = %d, want the configured 3", got)
	}
	telemetry.Reset()
}

// TestRetryAfterDerivedHTTP checks the derived value reaches the 429
// header: with one 10s run on record, one worker, and one queued job,
// the overflow response advertises ceil(10s × 2 / 1) = 20.
func TestRetryAfterDerivedHTTP(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	// No Worker loops: the first job occupies the single queue slot.
	srv := New(Config{QueueDepth: 1, Workers: 1, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()
	telemetry.GetWindow("service.run_ns").Observe(int64(10 * time.Second))

	resp, _ := postJSON(t, ts.URL+"/jobs", reqBody(301))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", resp.StatusCode)
	}
	resp, _ = postJSON(t, ts.URL+"/jobs", reqBody(302))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "20" {
		t.Errorf("derived Retry-After = %q, want %q", got, "20")
	}
	telemetry.Reset()
}

// TestScopedManifestSum is the acceptance pin for per-job attribution:
// two concurrent jobs with different chip seeds produce manifests
// whose per-job cache hit+miss counts sum exactly to the global delta
// for the fully ctx-threaded caches. Run with -race: the scopes are
// written from concurrent workers.
func TestScopedManifestSum(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	experiments.ResetCaches()
	srv, _ := startServer(t, Config{QueueDepth: 4, Workers: 2})

	prev := telemetry.Capture()
	// table2 and fig5b both want the representative chip, so each job
	// records one miss (its own seed's construction) and one hit.
	req := func(chipSeed int64) Request {
		return Request{Experiments: []string{"table2", "fig5b"}, Chips: 2, Seed: 41, ChipSeed: chipSeed}
	}
	j1, _, err := srv.Admit(req(7001))
	if err != nil {
		t.Fatal(err)
	}
	j2, _, err := srv.Admit(req(7002))
	if err != nil {
		t.Fatal(err)
	}
	<-j1.Done()
	<-j2.Done()
	delta := telemetry.Capture().Sub(prev)

	counterDelta := func(name string) int64 {
		for _, c := range delta.Counters {
			if c.Name == name {
				return c.Value
			}
		}
		return 0
	}
	for _, name := range []string{"experiments.RepresentativeChip", "experiments.MeasuredFronts"} {
		var jobSum int64
		for _, j := range []*Job{j1, j2} {
			st := srv.statusOf(j)
			if st.State != StateDone {
				t.Fatalf("job %s state = %s (%s), want done", j.ID(), st.State, st.Error)
			}
			for _, c := range st.Manifest.Caches {
				if c.Name == name {
					jobSum += c.Hits + c.Misses
				}
			}
		}
		global := counterDelta("cache."+name+".hits") + counterDelta("cache."+name+".misses")
		if jobSum != global {
			t.Errorf("%s: per-job manifests sum to %d, global delta is %d", name, jobSum, global)
		}
	}
	// The chip cache specifically: distinct seeds → one miss each, and
	// the second experiment in each job hits its own seed's entry.
	if got := counterDelta("cache.experiments.RepresentativeChip.misses"); got != 2 {
		t.Errorf("global chip misses = %d, want 2 (one per distinct seed)", got)
	}
	if got := counterDelta("cache.experiments.RepresentativeChip.hits"); got == 0 {
		t.Error("global chip hits = 0, want each job's second experiment to hit")
	}
	telemetry.Reset()
}

// TestScopedManifestAfterReset pins the edge satellite: a cache reset
// racing a job must not corrupt that job's own attribution — the
// manifest still reports exactly the hits+misses the job's scope saw.
func TestScopedManifestAfterReset(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	experiments.ResetCaches()
	srv, _ := startServer(t, Config{QueueDepth: 4, Workers: 2})

	j, _, err := srv.Admit(Request{Experiments: []string{"table2"}, Chips: 2, Seed: 43, ChipSeed: 7003})
	if err != nil {
		t.Fatal(err)
	}
	// ResetCaches blocks until the in-flight run finishes (the cache
	// gate), so this exercises reset-vs-manifest ordering, then the
	// next identical job re-misses with a fresh scope.
	<-j.Done()
	experiments.ResetCaches()
	j2, _, err := srv.Admit(Request{Experiments: []string{"table2"}, Chips: 2, Seed: 44, ChipSeed: 7003})
	if err != nil {
		t.Fatal(err)
	}
	<-j2.Done()
	st := srv.statusOf(j2)
	if st.State != StateDone {
		t.Fatalf("job after reset: state %s (%s)", st.State, st.Error)
	}
	var chip *int64
	for _, c := range st.Manifest.Caches {
		if c.Name == "experiments.RepresentativeChip" {
			v := c.Misses
			chip = &v
		}
	}
	if chip == nil || *chip != 1 {
		t.Errorf("post-reset job's chip misses = %v, want exactly its own re-miss", chip)
	}
	telemetry.Reset()
}

// TestAccessLogEvents checks the NDJSON access log: a /run round trip
// emits a service.request event carrying the job id, coalesced flag,
// status and byte count, and the job's lifecycle emits the
// queued→running→done transitions.
func TestAccessLogEvents(t *testing.T) {
	defer events.SetEnabled(true)()
	events.Reset()
	_, ts := startServer(t, Config{QueueDepth: 4, Workers: 1})

	resp, _ := postJSON(t, ts.URL+"/run", reqBody(21))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run: status %d", resp.StatusCode)
	}
	id := resp.Header.Get("X-Job-Id")

	attrs := func(e events.Event) map[string]any {
		m := map[string]any{}
		for _, a := range e.Attrs {
			m[a.Key] = a.Value()
		}
		return m
	}
	var sawRequest bool
	var states []string
	for _, e := range events.Collect() {
		m := attrs(e)
		switch e.Kind {
		case "service.request":
			if m["job"] == id && m["path"] == "/run" {
				sawRequest = true
				if m["status"] != int64(200) {
					t.Errorf("access-log status = %v, want 200", m["status"])
				}
				if m["coalesced"] != int64(0) {
					t.Errorf("access-log coalesced = %v, want 0", m["coalesced"])
				}
				if b, ok := m["bytes"].(int64); !ok || b <= 0 {
					t.Errorf("access-log bytes = %v, want > 0", m["bytes"])
				}
			}
		case "job.state":
			if m["job"] == id {
				states = append(states, m["state"].(string))
			}
		}
	}
	if !sawRequest {
		t.Error("no service.request event for the /run round trip")
	}
	if want := []string{StateQueued, StateRunning, StateDone}; len(states) != 3 ||
		states[0] != want[0] || states[1] != want[1] || states[2] != want[2] {
		t.Errorf("job.state sequence = %v, want %v", states, want)
	}
	events.Reset()
}

// TestHealthHeadersAndReadyCheck pins the ops-surface headers on
// /healthz and the ReadyCheck gate: a failing check degrades readiness
// to 503 with the reason, without touching admission.
func TestHealthHeadersAndReadyCheck(t *testing.T) {
	var degraded error
	srv := New(Config{QueueDepth: 1, Workers: 1, ReadyCheck: func() error { return degraded }})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	resp, body := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthy /healthz: status %d (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Cache-Control"); got != "no-cache" {
		t.Errorf("/healthz Cache-Control = %q, want no-cache", got)
	}
	if got := resp.Header.Get("Content-Type"); !strings.HasPrefix(got, "application/json") {
		t.Errorf("/healthz Content-Type = %q, want application/json", got)
	}

	degraded = errSLO{}
	resp, body = getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded /healthz: status %d, want 503", resp.StatusCode)
	}
	var doc struct {
		Status string `json:"status"`
		Reason string `json:"reason"`
	}
	if err := json.Unmarshal(body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Status != "degraded" || !strings.Contains(doc.Reason, "p99 over budget") {
		t.Errorf("degraded doc = %+v, want degraded with the check's reason", doc)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("degraded /healthz advertises no Retry-After")
	}

	// Degradation must not reject work: admission still succeeds.
	degraded = errSLO{}
	if _, _, err := srv.Admit(Request{Experiments: []string{"fig1a"}, Chips: 2, Seed: 51}); err != nil {
		t.Errorf("Admit while degraded = %v, want accepted", err)
	}
}

type errSLO struct{}

func (errSLO) Error() string { return "slo: p99 over budget" }
