package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/experiments"
)

// startServer builds a Server, runs its worker loops, and serves its
// mux from an httptest listener, tearing all of it down with the test.
func startServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	srv := New(cfg)
	ctx, cancel := context.WithCancel(context.Background())
	for i := 0; i < srv.Workers(); i++ {
		go srv.Worker(ctx)
	}
	ts := httptest.NewServer(srv.Mux())
	t.Cleanup(func() {
		ts.Close()
		sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer scancel()
		if err := srv.Shutdown(sctx); err != nil {
			t.Errorf("cleanup shutdown: %v", err)
		}
		cancel()
	})
	return srv, ts
}

func postJSON(t *testing.T, url, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s response: %v", url, err)
	}
	return resp, data
}

func getJSON(t *testing.T, url string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("reading %s response: %v", url, err)
	}
	return resp, data
}

// reqBody builds the small fig1a request the tests submit; the seed
// distinguishes jobs (distinct seeds never coalesce).
func reqBody(seed int64) string {
	return fmt.Sprintf(`{"kind":"experiments","experiments":["fig1a"],"chips":2,"seed":%d}`, seed)
}

// TestQueueFullBackpressure pins the satellite contract: with no
// workers pulling, a full queue answers 429 with a Retry-After header,
// while an identical request coalesces onto the queued job for free.
func TestQueueFullBackpressure(t *testing.T) {
	// No Worker loops are started: admitted jobs sit in the queue.
	srv := New(Config{QueueDepth: 1, Workers: 1, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	resp, _ := postJSON(t, ts.URL+"/jobs", reqBody(101))
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d, want 202", resp.StatusCode)
	}

	resp, body := postJSON(t, ts.URL+"/jobs", reqBody(102))
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d, want 429 (body %s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("overflow Retry-After = %q, want %q", got, "3")
	}
	if !strings.Contains(string(body), "queue full") {
		t.Errorf("overflow body = %s, want a queue-full error", body)
	}

	// The identical request coalesces onto the queued job: no queue
	// slot needed, so no 429.
	resp, _ = postJSON(t, ts.URL+"/jobs", reqBody(101))
	if resp.StatusCode != http.StatusAccepted {
		t.Errorf("coalesced submit: status %d, want 202", resp.StatusCode)
	}

	if _, _, err := srv.Admit(Request{Experiments: []string{"fig1a"}, Chips: 2, Seed: 103}); !errors.Is(err, ErrQueueFull) {
		t.Errorf("Admit on full queue = %v, want ErrQueueFull", err)
	}
}

// TestRunDeterministicBytes is the acceptance gate: two identical
// POST /run requests return byte-identical bodies. Retain is negative,
// so the second request re-executes instead of replaying a cached
// response — the bytes match because the engine is deterministic.
func TestRunDeterministicBytes(t *testing.T) {
	_, ts := startServer(t, Config{QueueDepth: 4, Workers: 2, Retain: -1})

	resp1, body1 := postJSON(t, ts.URL+"/run", reqBody(7))
	resp2, body2 := postJSON(t, ts.URL+"/run", reqBody(7))
	if resp1.StatusCode != http.StatusOK || resp2.StatusCode != http.StatusOK {
		t.Fatalf("statuses %d/%d, want 200/200 (bodies %s %s)", resp1.StatusCode, resp2.StatusCode, body1, body2)
	}
	if !bytes.Equal(body1, body2) {
		t.Errorf("identical requests returned different bodies (%d vs %d bytes)", len(body1), len(body2))
	}
	if id1, id2 := resp1.Header.Get("X-Job-Id"), resp2.Header.Get("X-Job-Id"); id1 == "" || id1 != id2 {
		t.Errorf("X-Job-Id headers differ: %q vs %q", id1, id2)
	}
	var doc Response
	if err := json.Unmarshal(body1, &doc); err != nil {
		t.Fatalf("response is not valid JSON: %v", err)
	}
	if doc.Request.Seed != 7 || doc.Request.Chips != 2 {
		t.Errorf("response does not echo the normalized request: %+v", doc.Request)
	}
}

// TestJobStatusAndManifest follows the async path end to end: submit,
// wait, read status (with the provenance manifest) and the result
// bytes, and check they match the synchronous answer.
func TestJobStatusAndManifest(t *testing.T) {
	_, ts := startServer(t, Config{QueueDepth: 4, Workers: 1})

	resp, body := postJSON(t, ts.URL+"/run", reqBody(11))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /run: status %d (body %s)", resp.StatusCode, body)
	}
	id := resp.Header.Get("X-Job-Id")
	if id == "" {
		t.Fatal("POST /run returned no X-Job-Id header")
	}

	resp, statusBody := getJSON(t, ts.URL+"/jobs/"+id)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /jobs/%s: status %d", id, resp.StatusCode)
	}
	var st JobStatus
	if err := json.Unmarshal(statusBody, &st); err != nil {
		t.Fatalf("status is not valid JSON: %v", err)
	}
	if st.State != StateDone || st.JobID != id || st.Kind != KindExperiments {
		t.Errorf("status = %+v, want done/%s/%s", st, id, KindExperiments)
	}
	if st.Manifest == nil {
		t.Error("completed job status carries no provenance manifest")
	}

	resp, resultBody := getJSON(t, ts.URL+"/jobs/"+id+"/result")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET result: status %d", resp.StatusCode)
	}
	if !bytes.Equal(resultBody, body) {
		t.Errorf("/jobs/%s/result differs from the /run body", id)
	}

	resp, _ = getJSON(t, ts.URL+"/jobs/nope")
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job status = %d, want 404", resp.StatusCode)
	}
}

// TestGracefulShutdownDrain pins drain semantics: Shutdown finishes
// queued work, then the server refuses new jobs with ErrDraining and
// /healthz flips to 503 with a Retry-After.
func TestGracefulShutdownDrain(t *testing.T) {
	srv := New(Config{QueueDepth: 8, Workers: 2})
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	for i := 0; i < srv.Workers(); i++ {
		go srv.Worker(ctx)
	}
	ts := httptest.NewServer(srv.Mux())
	defer ts.Close()

	jobs := make([]*Job, 0, 3)
	for seed := int64(21); seed < 24; seed++ {
		j, _, err := srv.Admit(Request{Experiments: []string{"fig1a"}, Chips: 2, Seed: seed})
		if err != nil {
			t.Fatalf("admit seed %d: %v", seed, err)
		}
		jobs = append(jobs, j)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer scancel()
	if err := srv.Shutdown(sctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	for _, j := range jobs {
		select {
		case <-j.Done():
		default:
			t.Errorf("job %s not terminal after drain", j.ID())
		}
		if resp, _ := getJSON(t, ts.URL+"/jobs/"+j.ID()+"/result"); resp.StatusCode != http.StatusOK {
			t.Errorf("drained job %s result: status %d, want 200", j.ID(), resp.StatusCode)
		}
	}

	if !srv.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
	if _, _, err := srv.Admit(Request{Experiments: []string{"fig1a"}, Chips: 2, Seed: 99}); !errors.Is(err, ErrDraining) {
		t.Errorf("Admit while draining = %v, want ErrDraining", err)
	}
	resp, _ := postJSON(t, ts.URL+"/run", reqBody(98))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("POST /run while draining: status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("draining response carries no Retry-After header")
	}
	resp, healthBody := getJSON(t, ts.URL+"/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz while draining: status %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(healthBody), "draining") {
		t.Errorf("healthz body = %s, want draining status", healthBody)
	}
	if err := srv.Shutdown(sctx); err != nil {
		t.Errorf("second Shutdown = %v, want nil (idempotent)", err)
	}
}

// TestShutdownDeadline pins the failure path: when the drain deadline
// expires before the workers exit (here: no workers were ever
// started), queued jobs fail instead of leaving waiters blocked.
func TestShutdownDeadline(t *testing.T) {
	srv := New(Config{QueueDepth: 4, Workers: 1})
	j, _, err := srv.Admit(Request{Experiments: []string{"fig1a"}, Chips: 2, Seed: 31})
	if err != nil {
		t.Fatal(err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer scancel()
	if err := srv.Shutdown(sctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Shutdown = %v, want deadline exceeded", err)
	}
	select {
	case <-j.Done():
	case <-time.After(time.Second):
		t.Fatal("queued job not failed after shutdown deadline")
	}
	if _, ok := srv.Lookup(j.ID()); ok {
		t.Error("failed job still addressable; failed jobs should be forgotten")
	}
}

// TestOnJobDoneHook pins the run-history integration point: the hook
// fires exactly once per worker-completed job (coalesced duplicates
// share one execution, so one firing), and never for jobs a shutdown
// deadline failed administratively.
func TestOnJobDoneHook(t *testing.T) {
	var mu sync.Mutex
	done := 0
	_, ts := startServer(t, Config{QueueDepth: 4, Workers: 1, OnJobDone: func() {
		mu.Lock()
		done++
		mu.Unlock()
	}})

	postJSON(t, ts.URL+"/run", reqBody(41))
	postJSON(t, ts.URL+"/run", reqBody(41)) // coalesces: same execution
	postJSON(t, ts.URL+"/run", reqBody(42))

	// The hook fires just after the synchronous responder unblocks;
	// give the worker goroutine a beat to get there.
	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := done
		mu.Unlock()
		if n >= 2 || time.Now().After(deadline) {
			if n != 2 {
				t.Fatalf("OnJobDone fired %d time(s), want 2", n)
			}
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestResetCachesRace hammers concurrent service requests against
// experiments.ResetCaches under the race detector: the cache gate must
// make resets atomic with respect to running jobs. Run with -race to
// get the full value of this test.
func TestResetCachesRace(t *testing.T) {
	_, ts := startServer(t, Config{QueueDepth: 64, Workers: 4})

	const clients = 8
	const perClient = 4
	errs := make(chan error, clients)

	stop := make(chan struct{})
	resetterDone := make(chan struct{})
	go func() {
		defer close(resetterDone)
		for {
			select {
			case <-stop:
				return
			default:
				experiments.ResetCaches()
				time.Sleep(time.Millisecond)
			}
		}
	}()

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < perClient; i++ {
				seed := int64(1 + (c*perClient+i)%3) // mix coalescing and fresh work
				resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(reqBody(seed)))
				if err != nil {
					errs <- err
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusTooManyRequests {
					errs <- fmt.Errorf("client %d: status %d", c, resp.StatusCode)
					return
				}
			}
		}(c)
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Minute):
		t.Fatal("race test timed out")
	}
	close(stop)
	<-resetterDone
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
