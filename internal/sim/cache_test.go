package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTable2CacheGeometry(t *testing.T) {
	l1 := CorePrivateCache()
	if err := l1.Validate(); err != nil {
		t.Fatal(err)
	}
	if l1.Sets() != 64*1024/(4*64) {
		t.Errorf("L1 sets = %d", l1.Sets())
	}
	l2 := ClusterCache()
	if err := l2.Validate(); err != nil {
		t.Fatal(err)
	}
	if l2.Sets() != 2*1024*1024/(16*64) {
		t.Errorf("L2 sets = %d", l2.Sets())
	}
}

func TestCacheConfigValidation(t *testing.T) {
	bad := []CacheConfig{
		{SizeBytes: 0, Ways: 4, LineBytes: 64},
		{SizeBytes: 1024, Ways: 3, LineBytes: 64},           // not divisible
		{SizeBytes: 4 * 3 * 64 * 3, Ways: 4, LineBytes: 64}, // sets not power of two
		{SizeBytes: 1024, Ways: 4, LineBytes: 64, LatencyNs: -1},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d accepted: %+v", i, cfg)
		}
	}
}

func TestCacheHitAfterFill(t *testing.T) {
	c, err := NewCache(CacheConfig{SizeBytes: 4096, Ways: 4, LineBytes: 64, LatencyNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Access(0x1000) {
		t.Error("cold access hit")
	}
	if !c.Access(0x1000) {
		t.Error("warm access missed")
	}
	// Same line, different byte: still a hit.
	if !c.Access(0x103F) {
		t.Error("same-line access missed")
	}
	// Next line: miss.
	if c.Access(0x1040) {
		t.Error("next-line access hit")
	}
	st := c.Stats()
	if st.Accesses != 4 || st.Misses != 2 {
		t.Errorf("stats %+v", st)
	}
}

func TestCacheLRUReplacement(t *testing.T) {
	// Direct-mapped-per-set conflict: 1 set x 2 ways.
	c, err := NewCache(CacheConfig{SizeBytes: 128, Ways: 2, LineBytes: 64, LatencyNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	a, b, d := uint64(0), uint64(64), uint64(128)
	c.Access(a)
	c.Access(b)
	c.Access(a)      // a now MRU
	if c.Access(d) { // evicts b (LRU)
		t.Error("capacity miss hit")
	}
	if !c.Access(a) {
		t.Error("MRU line evicted")
	}
	if c.Access(b) {
		t.Error("LRU line survived")
	}
}

func TestCacheWorkingSetFits(t *testing.T) {
	c, err := NewCache(CorePrivateCache())
	if err != nil {
		t.Fatal(err)
	}
	// A 32 KB streaming loop fits in 64 KB: after the first pass,
	// everything hits.
	for pass := 0; pass < 4; pass++ {
		for addr := uint64(0); addr < 32*1024; addr += 64 {
			c.Access(addr)
		}
	}
	st := c.Stats()
	if st.Misses != 32*1024/64 {
		t.Errorf("misses = %d, want one per line", st.Misses)
	}
}

func TestCacheThrashing(t *testing.T) {
	c, err := NewCache(CorePrivateCache())
	if err != nil {
		t.Fatal(err)
	}
	// A 1 MB streaming loop with LRU thrashes a 64 KB cache: every
	// access misses after warmup.
	for pass := 0; pass < 3; pass++ {
		for addr := uint64(0); addr < 1024*1024; addr += 64 {
			c.Access(addr)
		}
	}
	if rate := c.Stats().MissRate(); rate < 0.99 {
		t.Errorf("thrash miss rate %.3f, want ~1", rate)
	}
	c.Reset()
	if c.Stats().Accesses != 0 {
		t.Error("reset kept stats")
	}
	if c.Access(0) {
		t.Error("reset kept contents")
	}
}

func TestCacheSetIndexingProperty(t *testing.T) {
	c, err := NewCache(CacheConfig{SizeBytes: 8192, Ways: 2, LineBytes: 64, LatencyNs: 1})
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint32) bool {
		addr := uint64(raw)
		c.Access(addr)
		return c.Access(addr) // immediate re-access always hits
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMissRateZeroAccesses(t *testing.T) {
	if (CacheStats{}).MissRate() != 0 {
		t.Error("empty stats miss rate not 0")
	}
}

func TestHierarchyLatencies(t *testing.T) {
	m, err := NewMemoryHierarchy()
	if err != nil {
		t.Fatal(err)
	}
	// Cold: full trip. Warm: L1 hit.
	cold := m.AccessNs(0x5000)
	warm := m.AccessNs(0x5000)
	if math.Abs(cold-(2+10+80)) > 1e-9 {
		t.Errorf("cold access %.1f ns, want 92", cold)
	}
	if math.Abs(warm-2) > 1e-9 {
		t.Errorf("warm access %.1f ns, want 2", warm)
	}
	// Evict from L1 but not L2: stream 128 KB of other lines, then the
	// original line costs an L2 hit.
	for addr := uint64(1 << 20); addr < 1<<20+128*1024; addr += 64 {
		m.AccessNs(addr)
	}
	mid := m.AccessNs(0x5000)
	if math.Abs(mid-(2+10)) > 1e-9 {
		t.Errorf("L2 hit %.1f ns, want 12", mid)
	}
}
