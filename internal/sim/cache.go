package sim

import "fmt"

// CacheConfig describes one cache level. Table 2's two levels are
// provided as constructors: the 64 KB 4-way core-private memory with
// 2 ns access and the 2 MB 16-way cluster memory with 10 ns access,
// both with 64-byte lines.
type CacheConfig struct {
	SizeBytes int
	Ways      int
	LineBytes int
	LatencyNs float64 // hit latency
}

// CorePrivateCache returns Table 2's per-core memory configuration.
func CorePrivateCache() CacheConfig {
	return CacheConfig{SizeBytes: 64 * 1024, Ways: 4, LineBytes: 64, LatencyNs: 2}
}

// ClusterCache returns Table 2's per-cluster memory configuration.
func ClusterCache() CacheConfig {
	return CacheConfig{SizeBytes: 2 * 1024 * 1024, Ways: 16, LineBytes: 64, LatencyNs: 10}
}

// Validate reports the first invalid parameter, or nil.
func (c CacheConfig) Validate() error {
	switch {
	case c.SizeBytes <= 0 || c.Ways <= 0 || c.LineBytes <= 0:
		return fmt.Errorf("sim: cache dimensions must be positive")
	case c.LatencyNs < 0:
		return fmt.Errorf("sim: negative latency")
	case c.SizeBytes%(c.Ways*c.LineBytes) != 0:
		return fmt.Errorf("sim: size %d not divisible by ways*line %d", c.SizeBytes, c.Ways*c.LineBytes)
	}
	if sets := c.SizeBytes / (c.Ways * c.LineBytes); sets&(sets-1) != 0 {
		return fmt.Errorf("sim: set count %d not a power of two", sets)
	}
	return nil
}

// Sets returns the number of cache sets.
func (c CacheConfig) Sets() int { return c.SizeBytes / (c.Ways * c.LineBytes) }

// CacheStats counts accesses.
type CacheStats struct {
	Accesses int64
	Misses   int64
}

// MissRate returns misses per access, or 0 with no accesses.
func (s CacheStats) MissRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return float64(s.Misses) / float64(s.Accesses)
}

// Cache is a set-associative cache with true-LRU replacement. It models
// hit/miss behaviour only (no coherence; the Accordion memory model
// forbids cross-core writes to shared state anyway, Section 4.1).
type Cache struct {
	cfg     CacheConfig
	setMask uint64
	shift   uint
	// tags[set][way]; age[set][way] holds an LRU stamp.
	tags  [][]uint64
	valid [][]bool
	age   [][]int64
	clock int64
	stats CacheStats
}

// NewCache builds an empty cache.
func NewCache(cfg CacheConfig) (*Cache, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	sets := cfg.Sets()
	c := &Cache{cfg: cfg, setMask: uint64(sets - 1)}
	for l := cfg.LineBytes; l > 1; l >>= 1 {
		c.shift++
	}
	c.tags = make([][]uint64, sets)
	c.valid = make([][]bool, sets)
	c.age = make([][]int64, sets)
	for s := 0; s < sets; s++ {
		c.tags[s] = make([]uint64, cfg.Ways)
		c.valid[s] = make([]bool, cfg.Ways)
		c.age[s] = make([]int64, cfg.Ways)
	}
	return c, nil
}

// Config returns the cache geometry.
func (c *Cache) Config() CacheConfig { return c.cfg }

// Stats returns the access counters.
func (c *Cache) Stats() CacheStats { return c.stats }

// Access looks up addr, filling the line on a miss, and reports whether
// it hit.
func (c *Cache) Access(addr uint64) bool {
	c.clock++
	c.stats.Accesses++
	line := addr >> c.shift
	set := line & c.setMask
	tag := line >> 0
	ways := c.cfg.Ways
	tags, valid, age := c.tags[set], c.valid[set], c.age[set]
	for w := 0; w < ways; w++ {
		if valid[w] && tags[w] == tag {
			age[w] = c.clock
			return true
		}
	}
	c.stats.Misses++
	// Fill the LRU (or first invalid) way.
	victim := 0
	oldest := int64(1<<62 - 1)
	for w := 0; w < ways; w++ {
		if !valid[w] {
			victim = w
			break
		}
		if age[w] < oldest {
			oldest, victim = age[w], w
		}
	}
	tags[victim] = tag
	valid[victim] = true
	age[victim] = c.clock
	return false
}

// ResetStats clears the counters but keeps the contents (for warmup).
func (c *Cache) ResetStats() { c.stats = CacheStats{} }

// Reset clears contents and counters.
func (c *Cache) Reset() {
	for s := range c.valid {
		for w := range c.valid[s] {
			c.valid[s][w] = false
		}
	}
	c.clock = 0
	c.stats = CacheStats{}
}
