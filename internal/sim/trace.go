package sim

import (
	"fmt"

	"repro/internal/mathx"
)

// AccessKind is the shape of a synthetic memory reference stream.
type AccessKind int

// Access stream shapes.
const (
	// Streaming walks the working set sequentially with a fixed stride
	// (hotspot, srad, x264: stencil and block kernels).
	Streaming AccessKind = iota
	// Strided walks with a large stride that defeats spatial locality
	// (column-major passes).
	Strided
	// RandomUniform touches uniformly random lines of the working set
	// (ferret's database probes, bodytrack's particle scatter).
	RandomUniform
	// PointerChase follows a fixed random permutation cycle through the
	// working set (canneal's netlist walking) — no spatial locality,
	// full temporal reuse at working-set scale.
	PointerChase
)

// String names the kind.
func (k AccessKind) String() string {
	switch k {
	case Streaming:
		return "streaming"
	case Strided:
		return "strided"
	case RandomUniform:
		return "random"
	case PointerChase:
		return "pointer-chase"
	}
	return fmt.Sprintf("AccessKind(%d)", int(k))
}

// TraceSpec characterizes one kernel's dynamic instruction mix for the
// trace-driven core model.
type TraceSpec struct {
	Kind            AccessKind
	WorkingSetBytes int     // bytes the characteristic stream cycles through
	MemFrac         float64 // fraction of instructions that reference memory
	StrideBytes     int     // for Streaming/Strided
	// HotFrac of the memory references go to a small hot region
	// (locals, stack, loop state) that lives in the private memory;
	// the remainder follow the characteristic pattern.
	HotFrac  float64
	HotBytes int
	Seed     int64
}

// Validate reports the first invalid field, or nil.
func (t TraceSpec) Validate() error {
	switch {
	case t.WorkingSetBytes <= 0:
		return fmt.Errorf("sim: working set must be positive")
	case t.MemFrac < 0 || t.MemFrac > 1:
		return fmt.Errorf("sim: memory fraction %.3f outside [0,1]", t.MemFrac)
	case t.HotFrac < 0 || t.HotFrac > 1:
		return fmt.Errorf("sim: hot fraction %.3f outside [0,1]", t.HotFrac)
	case t.HotFrac > 0 && t.HotBytes <= 0:
		return fmt.Errorf("sim: hot region needs a positive size")
	case (t.Kind == Streaming || t.Kind == Strided) && t.StrideBytes <= 0:
		return fmt.Errorf("sim: streaming/strided traces need a positive stride")
	}
	return nil
}

// Trace generates the reference stream lazily and deterministically.
type Trace struct {
	spec TraceSpec
	rng  *mathx.RNG
	pos  uint64
	perm []uint64 // pointer-chase successor table, lazily built
}

// NewTrace builds a generator for the spec.
func NewTrace(spec TraceSpec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Trace{spec: spec, rng: mathx.NewRNG(spec.Seed)}
	if spec.Kind == PointerChase {
		// One 64-byte node per line of the working set, linked in a
		// random Hamiltonian cycle.
		n := spec.WorkingSetBytes / 64
		if n < 2 {
			n = 2
		}
		order := t.rng.Perm(n)
		t.perm = make([]uint64, n)
		for i := 0; i < n; i++ {
			t.perm[order[i]] = uint64(order[(i+1)%n])
		}
	}
	return t, nil
}

// hotBase places the hot region far above any working set.
const hotBase = uint64(1) << 40

// Next returns the next referenced address.
func (t *Trace) Next() uint64 {
	if t.spec.HotFrac > 0 && t.rng.Float64() < t.spec.HotFrac {
		return hotBase + uint64(t.rng.Intn(t.spec.HotBytes))
	}
	ws := uint64(t.spec.WorkingSetBytes)
	switch t.spec.Kind {
	case Streaming, Strided:
		addr := t.pos
		t.pos = (t.pos + uint64(t.spec.StrideBytes)) % ws
		return addr
	case RandomUniform:
		return uint64(t.rng.Int63()) % ws
	case PointerChase:
		addr := t.pos * 64
		t.pos = t.perm[t.pos]
		return addr
	}
	return 0
}

// MemoryHierarchy bundles Table 2's two cache levels plus the flat
// memory behind them.
type MemoryHierarchy struct {
	L1 *Cache
	L2 *Cache
	// MemLatencyNs is the average round trip to memory behind the
	// cluster cache (Table 2: ~80 ns).
	MemLatencyNs float64
}

// NewMemoryHierarchy builds the Table 2 hierarchy.
func NewMemoryHierarchy() (*MemoryHierarchy, error) {
	l1, err := NewCache(CorePrivateCache())
	if err != nil {
		return nil, err
	}
	l2, err := NewCache(ClusterCache())
	if err != nil {
		return nil, err
	}
	return &MemoryHierarchy{L1: l1, L2: l2, MemLatencyNs: 80}, nil
}

// AccessNs performs one reference and returns its latency in ns.
func (m *MemoryHierarchy) AccessNs(addr uint64) float64 {
	if m.L1.Access(addr) {
		return m.L1.Config().LatencyNs
	}
	if m.L2.Access(addr) {
		return m.L1.Config().LatencyNs + m.L2.Config().LatencyNs
	}
	return m.L1.Config().LatencyNs + m.L2.Config().LatencyNs + m.MemLatencyNs
}

// CoreSimResult summarizes a trace-driven core simulation.
type CoreSimResult struct {
	Instructions int64
	MemRefs      int64
	CPI          float64
	L1           CacheStats
	L2           CacheStats
	// MissPerOp is the per-instruction rate of references that left the
	// private memory — the quantity the analytic WorkProfile.MissPerOp
	// abstracts.
	MissPerOp float64
}

// SimulateCore runs `instructions` dynamic instructions of the spec's
// mix through a single-issue in-order core at frequency fGHz over the
// Table 2 memory hierarchy and returns the achieved CPI. Non-memory
// instructions take one cycle; memory references additionally stall for
// their hierarchy latency beyond the pipelined L1 hit.
func SimulateCore(spec TraceSpec, instructions int64, fGHz float64) (CoreSimResult, error) {
	if instructions <= 0 || fGHz <= 0 {
		return CoreSimResult{}, fmt.Errorf("sim: need positive instruction count and frequency")
	}
	trace, err := NewTrace(spec)
	if err != nil {
		return CoreSimResult{}, err
	}
	mem, err := NewMemoryHierarchy()
	if err != nil {
		return CoreSimResult{}, err
	}
	rng := mathx.NewRNG(mathx.SplitSeed(spec.Seed, 0x51))
	// Warm the hierarchy so compulsory misses of the first pass do not
	// skew the steady-state CPI (ESESC's sampling warms up similarly).
	warm := instructions / 4
	for i := int64(0); i < warm; i++ {
		if rng.Float64() < spec.MemFrac {
			mem.AccessNs(trace.Next())
		}
	}
	mem.L1.ResetStats()
	mem.L2.ResetStats()
	cycles := 0.0
	var memRefs int64
	for i := int64(0); i < instructions; i++ {
		cycles++
		if rng.Float64() < spec.MemFrac {
			memRefs++
			ns := mem.AccessNs(trace.Next())
			// The pipelined L1 hit overlaps with execution; anything
			// slower stalls the in-order core.
			stall := ns - mem.L1.Config().LatencyNs
			if stall > 0 {
				cycles += stall * fGHz
			}
		}
	}
	l1 := mem.L1.Stats()
	return CoreSimResult{
		Instructions: instructions,
		MemRefs:      memRefs,
		CPI:          cycles / float64(instructions),
		L1:           l1,
		L2:           mem.L2.Stats(),
		MissPerOp:    float64(l1.Misses) / float64(instructions),
	}, nil
}
