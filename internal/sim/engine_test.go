package sim

import (
	"testing"
)

func TestEngineOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	if _, err := e.At(3.0, func() { order = append(order, 3) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(1.0, func() { order = append(order, 1) }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.At(2.0, func() { order = append(order, 2) }); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("wrong order %v", order)
	}
	if e.Now() != 3.0 {
		t.Errorf("clock = %g, want 3", e.Now())
	}
}

func TestEngineFIFOAtSameTime(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		if _, err := e.At(1.0, func() { order = append(order, i) }); err != nil {
			t.Fatal(err)
		}
	}
	e.Run(0)
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	fired := false
	ev, err := e.At(1, func() { fired = true })
	if err != nil {
		t.Fatal(err)
	}
	e.Cancel(ev)
	e.Cancel(nil) // must not panic
	e.Run(0)
	if fired {
		t.Error("cancelled event fired")
	}
}

func TestEngineRejectsPast(t *testing.T) {
	e := NewEngine()
	if _, err := e.At(5, func() {}); err != nil {
		t.Fatal(err)
	}
	e.Run(0)
	if _, err := e.At(1, func() {}); err == nil {
		t.Error("scheduling into the past accepted")
	}
}

func TestEngineCascade(t *testing.T) {
	e := NewEngine()
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < 100 {
			if _, err := e.After(0.5, tick); err != nil {
				t.Error(err)
			}
		}
	}
	if _, err := e.After(0.5, tick); err != nil {
		t.Fatal(err)
	}
	n := e.Run(0)
	if n != 100 || count != 100 {
		t.Errorf("ran %d events, counted %d", n, count)
	}
	if e.Now() != 50.0 {
		t.Errorf("clock = %g, want 50", e.Now())
	}
}

func TestEngineMaxEvents(t *testing.T) {
	e := NewEngine()
	var tick func()
	tick = func() {
		if _, err := e.After(1, tick); err != nil {
			t.Error(err)
		}
	}
	if _, err := e.After(1, tick); err != nil {
		t.Fatal(err)
	}
	if n := e.Run(25); n != 25 {
		t.Errorf("bounded run executed %d events", n)
	}
}

func TestEnginePending(t *testing.T) {
	e := NewEngine()
	ev1, _ := e.At(1, func() {})
	if _, err := e.At(2, func() {}); err != nil {
		t.Fatal(err)
	}
	if e.Pending() != 2 {
		t.Errorf("pending = %d, want 2", e.Pending())
	}
	e.Cancel(ev1)
	if e.Pending() != 1 {
		t.Errorf("pending after cancel = %d, want 1", e.Pending())
	}
}
