package sim

import (
	"testing"
)

func TestTraceSpecValidation(t *testing.T) {
	bad := []TraceSpec{
		{Kind: Streaming, WorkingSetBytes: 0, StrideBytes: 64},
		{Kind: Streaming, WorkingSetBytes: 1024, MemFrac: 2, StrideBytes: 64},
		{Kind: Streaming, WorkingSetBytes: 1024, MemFrac: 0.1},
		{Kind: Strided, WorkingSetBytes: 1024, MemFrac: 0.1},
	}
	for i, spec := range bad {
		if err := spec.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if AccessKind(9).String() == "" || Streaming.String() != "streaming" ||
		PointerChase.String() != "pointer-chase" {
		t.Error("kind names wrong")
	}
}

func TestTraceDeterminism(t *testing.T) {
	spec := TraceSpec{Kind: RandomUniform, WorkingSetBytes: 1 << 20, MemFrac: 0.2, Seed: 7}
	t1, err := NewTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := NewTrace(spec)
	for i := 0; i < 1000; i++ {
		if t1.Next() != t2.Next() {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestPointerChaseCoversWorkingSet(t *testing.T) {
	spec := TraceSpec{Kind: PointerChase, WorkingSetBytes: 64 * 256, MemFrac: 0.3, Seed: 3}
	tr, err := NewTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[uint64]bool{}
	for i := 0; i < 256; i++ {
		seen[tr.Next()] = true
	}
	// A Hamiltonian cycle touches every node exactly once per lap.
	if len(seen) != 256 {
		t.Errorf("chase visited %d of 256 nodes in one lap", len(seen))
	}
}

func TestStreamingStaysInWorkingSet(t *testing.T) {
	spec := TraceSpec{Kind: Streaming, WorkingSetBytes: 4096, MemFrac: 0.3, StrideBytes: 64, Seed: 1}
	tr, err := NewTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		if a := tr.Next(); a >= 4096 {
			t.Fatalf("address %d outside working set", a)
		}
	}
}

// The microarchitectural ground truth behind WorkProfile: small working
// sets ride the private memory; huge pointer chases pay the full
// hierarchy; CPI grows with frequency because memory nanoseconds cost
// more cycles — the effect sim.WorkProfile.IPC abstracts.
func TestSimulateCoreRegimes(t *testing.T) {
	const n = 200000
	small := TraceSpec{Kind: Streaming, WorkingSetBytes: 32 * 1024, MemFrac: 0.3, StrideBytes: 8, Seed: 1}
	big := TraceSpec{Kind: PointerChase, WorkingSetBytes: 16 << 20, MemFrac: 0.3, Seed: 1}

	rSmall, err := SimulateCore(small, n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	rBig, err := SimulateCore(big, n, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if rSmall.L1.MissRate() > 0.02 {
		t.Errorf("cache-resident stream misses %.3f of accesses", rSmall.L1.MissRate())
	}
	if rBig.L1.MissRate() < 0.9 {
		t.Errorf("16 MB pointer chase hits too often: miss rate %.3f", rBig.L1.MissRate())
	}
	if rBig.CPI < 5*rSmall.CPI {
		t.Errorf("memory-bound CPI %.2f not far above compute-bound %.2f", rBig.CPI, rSmall.CPI)
	}
	// Frequency scaling: the same trace at a higher f stalls for more
	// cycles per miss.
	rBigFast, err := SimulateCore(big, n, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if rBigFast.CPI <= rBig.CPI {
		t.Error("CPI did not grow with frequency for memory-bound work")
	}
	// Compute-bound work is frequency-insensitive in CPI.
	rSmallFast, err := SimulateCore(small, n, 3.5)
	if err != nil {
		t.Fatal(err)
	}
	if rSmallFast.CPI > rSmall.CPI*1.3 {
		t.Errorf("cache-resident CPI grew from %.2f to %.2f with f", rSmall.CPI, rSmallFast.CPI)
	}
}

// The analytic WorkProfile numbers used by the solver must be of the
// magnitude the trace-driven model produces for RMS-like mixes: sparse
// long-latency misses per instruction (1e-4..1e-2).
func TestWorkProfilesConsistentWithTraceSim(t *testing.T) {
	res, err := SimulateCore(TraceSpec{
		Kind: RandomUniform, WorkingSetBytes: 8 << 20, MemFrac: 0.01, Seed: 2,
	}, 400000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.MissPerOp < 1e-4 || res.MissPerOp > 2e-2 {
		t.Errorf("trace-sim MissPerOp %.2e outside the band the WorkProfiles assume", res.MissPerOp)
	}
	// Effective IPC from the analytic model at this miss rate should
	// agree with the trace simulation within a factor of two.
	w := WorkProfile{OpsPerUnit: 1, CPIBase: 1, MissPerOp: res.MissPerOp, MemLatencyNs: 80}
	analytic := 1 / w.IPC(1.0)
	if res.CPI < 0.5*analytic || res.CPI > 2*analytic {
		t.Errorf("trace CPI %.2f vs analytic %.2f diverge beyond 2x", res.CPI, analytic)
	}
}

func TestSimulateCoreValidation(t *testing.T) {
	spec := TraceSpec{Kind: Streaming, WorkingSetBytes: 1024, MemFrac: 0.1, StrideBytes: 64}
	if _, err := SimulateCore(spec, 0, 1); err == nil {
		t.Error("zero instructions accepted")
	}
	if _, err := SimulateCore(spec, 100, 0); err == nil {
		t.Error("zero frequency accepted")
	}
	if _, err := SimulateCore(TraceSpec{Kind: Streaming, WorkingSetBytes: -1}, 100, 1); err == nil {
		t.Error("invalid spec accepted")
	}
}
