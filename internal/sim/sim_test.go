package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestProfileValidate(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []WorkProfile{
		{OpsPerUnit: 0, CPIBase: 1},
		{OpsPerUnit: 1, SerialFrac: 1, CPIBase: 1},
		{OpsPerUnit: 1, CPIBase: 0},
		{OpsPerUnit: 1, CPIBase: 1, MissPerOp: -1},
	}
	for i, w := range bad {
		if err := w.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestIPCDecreasesWithFrequency(t *testing.T) {
	w := DefaultProfile()
	if w.IPC(0.5) <= w.IPC(3.3) {
		t.Error("IPC should fall as f rises (fixed-ns memory latency)")
	}
	if w.IPC(0) != 0 {
		t.Error("IPC at f=0 should be 0")
	}
	noMem := w
	noMem.MissPerOp = 0
	if math.Abs(noMem.IPC(1)-1/noMem.CPIBase) > 1e-12 {
		t.Error("memory-free IPC must equal 1/CPIBase")
	}
}

func TestExecTimeScaling(t *testing.T) {
	w := DefaultProfile()
	w.SerialFrac = 0 // pure weak-scaling kernel
	t1 := w.ExecTime(1.0, 16, 1.0, 1.0)
	t2 := w.ExecTime(2.0, 32, 1.0, 1.0)
	if math.Abs(t2/t1-1) > 1e-9 {
		t.Errorf("perfect weak scaling violated: %g vs %g", t1, t2)
	}
	// Halving f doubles time for compute-bound work.
	wc := w
	wc.MissPerOp = 0
	if r := wc.ExecTime(1, 16, 0.5, 0.5) / wc.ExecTime(1, 16, 1.0, 1.0); math.Abs(r-2) > 1e-9 {
		t.Errorf("f scaling ratio = %g, want 2", r)
	}
}

func TestExecTimeAmdahl(t *testing.T) {
	w := DefaultProfile()
	w.SerialFrac = 0.5
	w.MissPerOp = 0
	// With half the work serial, infinite parallelism can at best halve
	// the time.
	t1 := w.ExecTime(1, 1, 1, 1)
	tInf := w.ExecTime(1, 1<<20, 1, 1)
	if r := t1 / tInf; r > 2.01 {
		t.Errorf("speedup %g exceeds Amdahl bound 2", r)
	}
}

func TestExecTimeEdgeCases(t *testing.T) {
	w := DefaultProfile()
	if w.ExecTime(0, 16, 1, 1) != 0 {
		t.Error("zero work should take zero time")
	}
	if !math.IsInf(w.ExecTime(1, 0, 1, 1), 1) {
		t.Error("zero cores should take forever")
	}
	if !math.IsInf(w.ExecTime(1, 16, 0, 1), 1) {
		t.Error("zero frequency should take forever")
	}
}

func TestExecTimeMonotoneProperty(t *testing.T) {
	w := DefaultProfile()
	f := func(a, b uint8) bool {
		n1 := int(a%64) + 1
		n2 := n1 + int(b%64) + 1
		return w.ExecTime(1, n2, 0.8, 0.8) <= w.ExecTime(1, n1, 0.8, 0.8)+1e-15
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMIPSConsistency(t *testing.T) {
	w := DefaultProfile()
	ps := 2.0
	tt := w.ExecTime(ps, 32, 1, 1)
	mips := w.MIPS(ps, tt)
	if mips <= 0 {
		t.Fatal("non-positive MIPS")
	}
	// MIPS * time == total ops.
	if got := mips * 1e6 * tt; math.Abs(got-ps*w.OpsPerUnit) > 1e-3*ps*w.OpsPerUnit {
		t.Errorf("MIPS inconsistent: %g ops, want %g", got, ps*w.OpsPerUnit)
	}
	if w.MIPS(1, 0) != 0 {
		t.Error("zero-time MIPS should be 0")
	}
}

func TestCyclesPerTask(t *testing.T) {
	w := DefaultProfile()
	e1 := w.CyclesPerTask(1, 64, 0.5)
	e2 := w.CyclesPerTask(2, 64, 0.5)
	if math.Abs(e2/e1-2) > 1e-9 {
		t.Error("cycles per task should scale with problem size")
	}
	e3 := w.CyclesPerTask(1, 128, 0.5)
	if math.Abs(e1/e3-2) > 1e-9 {
		t.Error("cycles per task should shrink with more tasks")
	}
	if w.CyclesPerTask(1, 0, 0.5) != 0 {
		t.Error("zero tasks should yield zero cycles")
	}
}

func TestTorusHops(t *testing.T) {
	tor := DefaultTorus()
	if tor.Hops(0, 0) != 0 {
		t.Error("self distance nonzero")
	}
	if tor.Hops(0, 1) != 1 {
		t.Error("adjacent distance != 1")
	}
	// Wraparound: cluster 0 (0,0) to cluster 5 (5,0) is 1 hop on a
	// 6-wide torus.
	if tor.Hops(0, 5) != 1 {
		t.Errorf("wraparound hop = %d, want 1", tor.Hops(0, 5))
	}
	// Maximal distance on a 6x6 torus is 3+3.
	if tor.Hops(0, 21) != 6 { // (0,0) -> (3,3)
		t.Errorf("diagonal hops = %d, want 6", tor.Hops(0, 21))
	}
	// Symmetry property.
	for a := 0; a < 36; a++ {
		for b := 0; b < 36; b++ {
			if tor.Hops(a, b) != tor.Hops(b, a) {
				t.Fatalf("asymmetric hops between %d and %d", a, b)
			}
		}
	}
}

func TestTorusLatency(t *testing.T) {
	tor := DefaultTorus()
	if tor.LatencyNs(3, 3) != tor.BusNs {
		t.Error("intra-cluster latency should be the bus latency")
	}
	if tor.LatencyNs(0, 21) <= tor.LatencyNs(0, 1) {
		t.Error("farther clusters should cost more")
	}
	m := tor.MeanLatencyNs()
	if m <= tor.BusNs || m > 40 {
		t.Errorf("mean network latency %.1f ns implausible", m)
	}
}

func TestQueueingFactor(t *testing.T) {
	if QueueingFactor(0) != 1 {
		t.Error("idle network must add no delay")
	}
	if QueueingFactor(0.5) != 1.5 {
		t.Errorf("M/D/1 at 0.5 = %g, want 1.5", QueueingFactor(0.5))
	}
	if QueueingFactor(-1) != 1 {
		t.Error("negative utilization should clamp")
	}
	if f := QueueingFactor(2); f > 11 {
		t.Errorf("saturation clamp failed: %g", f)
	}
	prev := 0.0
	for u := 0.0; u < 0.95; u += 0.05 {
		f := QueueingFactor(u)
		if f <= prev {
			t.Fatal("queueing factor not increasing")
		}
		prev = f
	}
}

// Table 2 quotes the memory round trip "without contention"; with the
// RMS suite's sparse miss rates even full 288-core engagement keeps the
// torus nearly idle, validating that simplification.
func TestContentionNegligibleForRMSMissRates(t *testing.T) {
	tor := DefaultTorus()
	u := tor.Utilization(288, 0.6, 0.0016)
	if u > 0.05 {
		t.Errorf("full engagement utilization %.3f; the uncontended 80 ns assumption would be invalid", u)
	}
	inflated := tor.LoadedMemLatencyNs(80, u)
	if inflated > 84 {
		t.Errorf("contention adds %.1f ns; expected ~negligible", inflated-80)
	}
	// A hypothetical miss-heavy workload would saturate it, so the
	// model is not vacuous.
	if heavy := tor.Utilization(288, 0.6, 0.05); heavy < 0.2 {
		t.Errorf("heavy workload utilization %.3f suspiciously low", heavy)
	}
}
