package sim

import (
	"container/heap"
	"fmt"
)

// Engine is a deterministic discrete-event simulator with a virtual
// clock in seconds. The Accordion control-core/data-core runtime
// (internal/core) schedules task completions, watchdog checks, and
// checkpoints on it.
type Engine struct {
	now   float64
	queue eventQueue
	seq   int64 // tiebreaker for simultaneous events, preserves FIFO order
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// Event is a cancellable scheduled callback.
type Event struct {
	at        float64
	seq       int64
	fn        func()
	cancelled bool
	index     int
}

// At schedules fn at absolute virtual time t (>= Now) and returns a
// handle that can cancel it.
func (e *Engine) At(t float64, fn func()) (*Event, error) {
	if t < e.now {
		return nil, fmt.Errorf("sim: scheduling into the past (%.9f < %.9f)", t, e.now)
	}
	ev := &Event{at: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev, nil
}

// After schedules fn after a delay d (>= 0) from Now.
func (e *Engine) After(d float64, fn func()) (*Event, error) {
	return e.At(e.now+d, fn)
}

// Cancel marks the event dead; it will be skipped when its time comes.
func (e *Engine) Cancel(ev *Event) {
	if ev != nil {
		ev.cancelled = true
	}
}

// Step runs the next pending event and reports whether one existed.
func (e *Engine) Step() bool {
	for e.queue.Len() > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.cancelled {
			continue
		}
		e.now = ev.at
		ev.fn()
		return true
	}
	return false
}

// Run drains the event queue, executing events in time order. It
// returns the number of events executed. Events may schedule further
// events; maxEvents bounds runaway simulations (0 means no bound).
func (e *Engine) Run(maxEvents int) int {
	n := 0
	for e.Step() {
		n++
		if maxEvents > 0 && n >= maxEvents {
			break
		}
	}
	return n
}

// Pending returns the number of live scheduled events.
func (e *Engine) Pending() int {
	n := 0
	for _, ev := range e.queue {
		if !ev.cancelled {
			n++
		}
	}
	return n
}

// eventQueue implements heap.Interface ordered by (time, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index, q[j].index = i, j
}
func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return ev
}
