// Package sim is the performance-model substrate standing in for the
// ESESC simulations of the paper: an analytic timing model for
// data-parallel RMS phases on the clustered manycore (single-issue
// cores with memory overlap, ~80 ns average memory round trip, bus
// within a cluster, 2D torus across clusters), plus a deterministic
// discrete-event engine that the Accordion control-core/data-core
// runtime schedules on.
package sim

import (
	"fmt"
	"math"
)

// WorkProfile characterizes how one application converts problem size
// into machine work. Problem size is measured in the benchmark's
// natural units (normalized to 1.0 at the default Accordion input);
// OpsPerUnit converts it to dynamic instructions.
type WorkProfile struct {
	OpsPerUnit   float64 // dynamic ops per unit of problem size
	SerialFrac   float64 // fraction of ops in serial control phases (runs on one CC)
	CPIBase      float64 // core cycles per op absent memory stalls (single-issue: 1)
	MissPerOp    float64 // long-latency memory accesses per op
	MemLatencyNs float64 // average memory round-trip latency (Table 2: ~80 ns)
}

// DefaultProfile returns a generic compute-intensive RMS profile.
func DefaultProfile() WorkProfile {
	return WorkProfile{
		OpsPerUnit:   1e9,
		SerialFrac:   0.02,
		CPIBase:      1.0,
		MissPerOp:    0.002,
		MemLatencyNs: 80,
	}
}

// Validate reports the first implausible field, or nil.
func (w WorkProfile) Validate() error {
	switch {
	case w.OpsPerUnit <= 0:
		return fmt.Errorf("sim: OpsPerUnit must be positive")
	case w.SerialFrac < 0 || w.SerialFrac >= 1:
		return fmt.Errorf("sim: SerialFrac %.3f outside [0, 1)", w.SerialFrac)
	case w.CPIBase <= 0:
		return fmt.Errorf("sim: CPIBase must be positive")
	case w.MissPerOp < 0 || w.MemLatencyNs < 0:
		return fmt.Errorf("sim: negative memory parameters")
	}
	return nil
}

// IPC returns the effective instructions per cycle at frequency f GHz.
// Memory latency is fixed in nanoseconds, so higher frequencies stall
// for more cycles per miss and the effective IPC drops — the classic
// memory wall that softens NTC's frequency handicap.
func (w WorkProfile) IPC(fGHz float64) float64 {
	if fGHz <= 0 {
		return 0
	}
	stallCycles := w.MissPerOp * w.MemLatencyNs * fGHz
	return 1 / (w.CPIBase + stallCycles)
}

// ExecTime returns the execution time in seconds of problem size ps
// (in profile units) on n data cores at common frequency fGHz, with the
// serial fraction running on one control core at fCC GHz.
func (w WorkProfile) ExecTime(ps float64, n int, fGHz, fCC float64) float64 {
	if ps <= 0 {
		return 0
	}
	if n <= 0 || fGHz <= 0 || fCC <= 0 {
		return math.Inf(1)
	}
	ops := ps * w.OpsPerUnit
	parOps := ops * (1 - w.SerialFrac)
	serOps := ops * w.SerialFrac
	tPar := parOps / float64(n) / (fGHz * 1e9 * w.IPC(fGHz))
	tSer := serOps / (fCC * 1e9 * w.IPC(fCC))
	return tPar + tSer
}

// MIPS returns the achieved million-instructions-per-second rate of an
// execution of problem size ps finishing in t seconds.
func (w WorkProfile) MIPS(ps, t float64) float64 {
	if t <= 0 {
		return 0
	}
	return ps * w.OpsPerUnit / t / 1e6
}

// CyclesPerTask returns the core cycles one of n parallel tasks spends
// executing its share of problem size ps at frequency fGHz. The paper
// uses this as e in Perr = 1/e: one expected timing error per infected
// task (Section 6.3).
func (w WorkProfile) CyclesPerTask(ps float64, n int, fGHz float64) float64 {
	if n <= 0 {
		return 0
	}
	ops := ps * w.OpsPerUnit * (1 - w.SerialFrac) / float64(n)
	return ops * (w.CPIBase + w.MissPerOp*w.MemLatencyNs*fGHz)
}

// Torus models the across-cluster 2D torus of Table 2.
type Torus struct {
	Side      int     // clusters per row/column (6 for the 36-cluster chip)
	HopNs     float64 // per-hop latency at the nominal network frequency
	BusNs     float64 // intra-cluster bus transfer latency
	NetFreq   float64 // GHz, network frequency (Table 2: 0.8)
	RouterCyc int     // router pipeline depth in network cycles
}

// DefaultTorus returns the Table 2 network.
func DefaultTorus() Torus {
	return Torus{Side: 6, HopNs: 2.5, BusNs: 2.0, NetFreq: 0.8, RouterCyc: 2}
}

// Hops returns the minimal hop count between clusters a and b on the
// torus (wraparound included).
func (t Torus) Hops(a, b int) int {
	ax, ay := a%t.Side, a/t.Side
	bx, by := b%t.Side, b/t.Side
	dx := abs(ax - bx)
	if w := t.Side - dx; w < dx {
		dx = w
	}
	dy := abs(ay - by)
	if w := t.Side - dy; w < dy {
		dy = w
	}
	return dx + dy
}

// LatencyNs returns the transfer latency between clusters a and b in
// nanoseconds: the local bus on both ends plus the torus hops.
func (t Torus) LatencyNs(a, b int) float64 {
	if a == b {
		return t.BusNs
	}
	hop := t.HopNs + float64(t.RouterCyc)/t.NetFreq
	return 2*t.BusNs + float64(t.Hops(a, b))*hop
}

// MeanLatencyNs returns the average cross-cluster latency over all
// ordered pairs, the quantity behind Table 2's ~80 ns average memory
// round trip once DRAM access is added.
func (t Torus) MeanLatencyNs() float64 {
	n := t.Side * t.Side
	sum := 0.0
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			sum += t.LatencyNs(a, b)
		}
	}
	return sum / float64(n*n)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}

// QueueingFactor returns the M/D/1 latency multiplier at link
// utilization u: 1 + u/(2(1-u)), clamped below saturation.
func QueueingFactor(u float64) float64 {
	if u < 0 {
		u = 0
	}
	if u > 0.95 {
		u = 0.95
	}
	return 1 + u/(2*(1-u))
}

// Utilization estimates the average torus-link utilization when n cores
// at frequency fGHz each generate missPerOp long-latency references per
// instruction: every miss crosses the network twice (request and reply)
// over the mean hop count, spread over the torus's unidirectional
// links at the network frequency.
func (t Torus) Utilization(n int, fGHz, missPerOp float64) float64 {
	links := float64(4 * t.Side * t.Side) // 2 dims x 2 directions per cluster
	if links == 0 || t.NetFreq <= 0 {
		return 0
	}
	meanHops := 0.0
	clusters := t.Side * t.Side
	for a := 0; a < clusters; a++ {
		meanHops += float64(t.Hops(0, a))
	}
	meanHops /= float64(clusters)
	inject := float64(n) * fGHz * missPerOp * 2 // flits per ns
	return inject * meanHops / (links * t.NetFreq)
}

// LoadedMemLatencyNs inflates a base memory round trip by the queueing
// delay at the given utilization.
func (t Torus) LoadedMemLatencyNs(baseNs float64, util float64) float64 {
	return baseNs * QueueingFactor(util)
}
