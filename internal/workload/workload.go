// Package workload generates the deterministic synthetic inputs that
// stand in for the PARSEC simsmall and Rodinia input sets: netlists for
// canneal, floorplan power maps for hotspot, speckled images for srad,
// video frame sequences for x264, image-feature databases for ferret,
// and observed pose trajectories for bodytrack.
//
// Each generator is a pure function of its parameters and seed, so
// every experiment in the repository is reproducible bit-for-bit.
package workload

import (
	"fmt"
	"io"
	"math"

	"repro/internal/mathx"
)

// Netlist is a synthetic chip netlist for canneal: elements to place on
// a grid and multi-pin nets connecting them. Net cost is the half-
// perimeter wirelength (HPWL) of each net's bounding box, the standard
// placement objective the original canneal minimizes.
type Netlist struct {
	Elements int
	GridW    int
	GridH    int
	Nets     [][]int // element indices on each net (2-5 pins)
}

// NewNetlist builds a netlist of n elements on a w x h grid with
// netsPerElem nets seeded per element. Nets carry two to five pins and
// their membership is biased toward locality (as real netlists are) so
// that annealing has structure to exploit.
func NewNetlist(n, w, h, netsPerElem int, seed int64) (*Netlist, error) {
	if n <= 0 || w <= 0 || h <= 0 || netsPerElem <= 0 {
		return nil, fmt.Errorf("workload: netlist parameters must be positive")
	}
	if n > w*h {
		return nil, fmt.Errorf("workload: %d elements exceed %dx%d grid", n, w, h)
	}
	rng := mathx.NewRNG(seed)
	nl := &Netlist{Elements: n, GridW: w, GridH: h}
	pick := func(e int) int {
		// Mix local and global pins 3:1.
		var other int
		if rng.Float64() < 0.75 {
			other = e + rng.Intn(32) - 16
			if other < 0 || other >= n || other == e {
				other = rng.Intn(n)
			}
		} else {
			other = rng.Intn(n)
		}
		if other == e {
			other = (e + 1) % n
		}
		return other
	}
	for e := 0; e < n; e++ {
		for k := 0; k < netsPerElem; k++ {
			pins := []int{e}
			seen := map[int]bool{e: true}
			extra := 1 + rng.Intn(4) // 2-5 pins total
			for len(pins) < 1+extra {
				o := pick(e)
				if !seen[o] {
					seen[o] = true
					pins = append(pins, o)
				}
			}
			nl.Nets = append(nl.Nets, pins)
		}
	}
	return nl, nil
}

// PowerMap builds a hotspot floorplan power-density map on a w x h grid
// with a handful of hot blocks over a cool background, in W per cell.
func PowerMap(w, h int, seed int64) *mathx.Grid2D {
	rng := mathx.NewRNG(seed)
	g := mathx.NewGrid2D(w, h)
	g.Fill(0.1)
	blocks := 4 + rng.Intn(4)
	for b := 0; b < blocks; b++ {
		bw, bh := 2+rng.Intn(w/4), 2+rng.Intn(h/4)
		x0, y0 := rng.Intn(w-bw), rng.Intn(h-bh)
		p := rng.Uniform(0.5, 2.0)
		for y := y0; y < y0+bh; y++ {
			for x := x0; x < x0+bw; x++ {
				g.Set(x, y, g.At(x, y)+p)
			}
		}
	}
	return g
}

// CleanImage renders a smooth deterministic test image in [0, 255] with
// edges and gradients for the denoising benchmarks.
func CleanImage(w, h int, seed int64) *mathx.Grid2D {
	rng := mathx.NewRNG(seed)
	phase := rng.Uniform(0, math.Pi)
	g := mathx.NewGrid2D(w, h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			fx, fy := float64(x)/float64(w), float64(y)/float64(h)
			v := 120 + 60*math.Sin(6*fx+phase) + 40*math.Cos(5*fy)
			// A bright square patch provides hard edges.
			if fx > 0.3 && fx < 0.6 && fy > 0.3 && fy < 0.6 {
				v += 50
			}
			g.Set(x, y, mathx.Clamp(v, 0, 255))
		}
	}
	return g
}

// SpeckleImage returns a clean image and its speckle-corrupted version
// (multiplicative exponential noise, the degradation SRAD removes from
// ultrasound/radar imagery).
func SpeckleImage(w, h int, noiseSigma float64, seed int64) (clean, noisy *mathx.Grid2D) {
	clean = CleanImage(w, h, seed)
	rng := mathx.NewRNG(mathx.SplitSeed(seed, 1))
	noisy = mathx.NewGrid2D(w, h)
	for i, v := range clean.V {
		noisy.V[i] = mathx.Clamp(v*math.Exp(rng.Normal(0, noiseSigma)), 0, 255)
	}
	return clean, noisy
}

// VideoFrames renders a deterministic sequence of w x h frames with
// translating and oscillating content for the x264 kernel.
func VideoFrames(w, h, frames int, seed int64) []*mathx.Grid2D {
	rng := mathx.NewRNG(seed)
	vx, vy := rng.Uniform(0.5, 2), rng.Uniform(0.3, 1.5)
	out := make([]*mathx.Grid2D, frames)
	for t := 0; t < frames; t++ {
		g := mathx.NewGrid2D(w, h)
		ox, oy := vx*float64(t), vy*float64(t)
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				fx, fy := float64(x)+ox, float64(y)+oy
				v := 128 + 70*math.Sin(fx/5)*math.Cos(fy/7)
				v += 30 * math.Sin(float64(t)/3)
				g.Set(x, y, mathx.Clamp(v, 0, 255))
			}
		}
		out[t] = g
	}
	return out
}

// FeatureDB is a synthetic content-based image-search database for
// ferret: every image belongs to a latent class and is described by
// per-region feature vectors scattered around its class centroid.
type FeatureDB struct {
	Classes int
	Dims    int
	// Images[i] is image i's full-resolution feature set; Class[i] its
	// latent class.
	Images [][][]float64
	Class  []int
	// Queries are probe images with known classes.
	Queries      [][][]float64
	QueryClass   []int
	RegionsFull  int
	featureNoise float64
}

// NewFeatureDB builds a database of classes*perClass images with
// regionsFull regions of dims-dimensional features each, plus queries
// probe images.
func NewFeatureDB(classes, perClass, queries, regionsFull, dims int, seed int64) (*FeatureDB, error) {
	if classes <= 0 || perClass <= 0 || queries <= 0 || regionsFull <= 0 || dims <= 0 {
		return nil, fmt.Errorf("workload: feature DB parameters must be positive")
	}
	rng := mathx.NewRNG(seed)
	centroids := make([][]float64, classes)
	for c := range centroids {
		centroids[c] = make([]float64, dims)
		for d := range centroids[c] {
			centroids[c][d] = rng.Normal(0, 1)
		}
	}
	db := &FeatureDB{Classes: classes, Dims: dims, RegionsFull: regionsFull, featureNoise: 1.1}
	makeImage := func(class int) [][]float64 {
		regions := make([][]float64, regionsFull)
		for r := range regions {
			f := make([]float64, dims)
			for d := range f {
				f[d] = centroids[class][d] + rng.Normal(0, db.featureNoise)
			}
			regions[r] = f
		}
		return regions
	}
	for c := 0; c < classes; c++ {
		for i := 0; i < perClass; i++ {
			db.Images = append(db.Images, makeImage(c))
			db.Class = append(db.Class, c)
		}
	}
	for q := 0; q < queries; q++ {
		c := rng.Intn(classes)
		db.Queries = append(db.Queries, makeImage(c))
		db.QueryClass = append(db.QueryClass, c)
	}
	return db, nil
}

// Coarsen merges an image's regions down to at most k coarse regions by
// averaging consecutive groups, modeling segmentation at a larger
// minimum region size (ferret's size-factor knob).
func Coarsen(regions [][]float64, k int) [][]float64 {
	if k >= len(regions) {
		return regions
	}
	if k < 1 {
		k = 1
	}
	dims := len(regions[0])
	out := make([][]float64, k)
	n := len(regions)
	for g := 0; g < k; g++ {
		lo, hi := g*n/k, (g+1)*n/k
		f := make([]float64, dims)
		for r := lo; r < hi; r++ {
			for d := 0; d < dims; d++ {
				f[d] += regions[r][d]
			}
		}
		for d := range f {
			f[d] /= float64(hi - lo)
		}
		out[g] = f
	}
	return out
}

// PoseTrajectory is bodytrack's synthetic scene: the true articulated-
// body configuration over time plus noisy observations of it.
type PoseTrajectory struct {
	Frames int
	Joints int
	True   [][]float64 // Frames x Joints ground-truth angles
	Obs    [][]float64 // Frames x Joints noisy measurements
	Noise  float64     // observation noise sigma
}

// NewPoseTrajectory synthesizes a smooth joint-angle trajectory with
// observation noise sigma.
func NewPoseTrajectory(frames, joints int, sigma float64, seed int64) (*PoseTrajectory, error) {
	if frames <= 0 || joints <= 0 || sigma < 0 {
		return nil, fmt.Errorf("workload: trajectory parameters invalid")
	}
	rng := mathx.NewRNG(seed)
	tr := &PoseTrajectory{Frames: frames, Joints: joints, Noise: sigma}
	freqs := make([]float64, joints)
	phases := make([]float64, joints)
	for j := range freqs {
		freqs[j] = rng.Uniform(0.05, 0.2)
		phases[j] = rng.Uniform(0, 2*math.Pi)
	}
	for t := 0; t < frames; t++ {
		truth := make([]float64, joints)
		obs := make([]float64, joints)
		for j := 0; j < joints; j++ {
			truth[j] = math.Sin(freqs[j]*float64(t) + phases[j])
			obs[j] = truth[j] + rng.Normal(0, sigma)
		}
		tr.True = append(tr.True, truth)
		tr.Obs = append(tr.Obs, obs)
	}
	return tr, nil
}

// WritePGM serializes a grid as a binary 8-bit PGM image, linearly
// mapping [lo, hi] to [0, 255]; values outside clamp. It gives the
// variation fields, power maps and kernel images a form any image
// viewer opens.
func WritePGM(w io.Writer, g *mathx.Grid2D, lo, hi float64) error {
	if g == nil || g.W <= 0 || g.H <= 0 {
		return fmt.Errorf("workload: empty grid")
	}
	if hi <= lo {
		return fmt.Errorf("workload: bad PGM range [%g, %g]", lo, hi)
	}
	if _, err := fmt.Fprintf(w, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	buf := make([]byte, g.W*g.H)
	for i, v := range g.V {
		buf[i] = byte(mathx.Clamp((v-lo)/(hi-lo)*255, 0, 255))
	}
	_, err := w.Write(buf)
	return err
}
