package workload

import (
	"bytes"
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestNetlistShape(t *testing.T) {
	nl, err := NewNetlist(200, 20, 20, 3, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(nl.Nets) != 600 {
		t.Errorf("got %d nets", len(nl.Nets))
	}
	for _, net := range nl.Nets {
		if len(net) < 2 || len(net) > 5 {
			t.Fatalf("net has %d pins, want 2-5", len(net))
		}
		seen := map[int]bool{}
		for _, e := range net {
			if e < 0 || e >= 200 {
				t.Fatalf("net pin %d out of range", e)
			}
			if seen[e] {
				t.Fatal("duplicate pin on a net")
			}
			seen[e] = true
		}
	}
}

func TestNetlistValidation(t *testing.T) {
	if _, err := NewNetlist(0, 10, 10, 2, 1); err == nil {
		t.Error("zero elements accepted")
	}
	if _, err := NewNetlist(200, 10, 10, 2, 1); err == nil {
		t.Error("overfull grid accepted")
	}
}

func TestNetlistDeterminism(t *testing.T) {
	a, _ := NewNetlist(100, 15, 15, 2, 9)
	b, _ := NewNetlist(100, 15, 15, 2, 9)
	for i := range a.Nets {
		if len(a.Nets[i]) != len(b.Nets[i]) {
			t.Fatal("netlist not deterministic")
		}
		for j := range a.Nets[i] {
			if a.Nets[i][j] != b.Nets[i][j] {
				t.Fatal("netlist not deterministic")
			}
		}
	}
}

func TestPowerMap(t *testing.T) {
	g := PowerMap(32, 32, 3)
	min, max := mathx.MinMax(g.V)
	if min < 0.05 {
		t.Errorf("background power %g too low", min)
	}
	if max <= min {
		t.Error("no hot blocks generated")
	}
	if max > 20 {
		t.Errorf("hot block power %g implausible", max)
	}
}

func TestCleanImageRange(t *testing.T) {
	g := CleanImage(64, 64, 4)
	min, max := mathx.MinMax(g.V)
	if min < 0 || max > 255 {
		t.Errorf("image out of [0,255]: [%g, %g]", min, max)
	}
	if max-min < 50 {
		t.Error("image has too little contrast")
	}
}

func TestSpeckleImage(t *testing.T) {
	clean, noisy := SpeckleImage(64, 64, 0.3, 5)
	diff := 0.0
	for i := range clean.V {
		diff += math.Abs(clean.V[i] - noisy.V[i])
	}
	diff /= float64(len(clean.V))
	if diff < 5 {
		t.Errorf("speckle too weak: mean |diff| = %g", diff)
	}
	if diff > 120 {
		t.Errorf("speckle destroyed the image: mean |diff| = %g", diff)
	}
}

func TestVideoFramesMove(t *testing.T) {
	frames := VideoFrames(32, 32, 8, 6)
	if len(frames) != 8 {
		t.Fatalf("got %d frames", len(frames))
	}
	// Consecutive frames must differ (motion) but not be noise.
	d01 := 0.0
	for i := range frames[0].V {
		d01 += math.Abs(frames[0].V[i] - frames[1].V[i])
	}
	d01 /= float64(len(frames[0].V))
	if d01 < 1 || d01 > 100 {
		t.Errorf("inter-frame difference %g implausible", d01)
	}
}

func TestFeatureDBStructure(t *testing.T) {
	db, err := NewFeatureDB(4, 10, 8, 16, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Images) != 40 || len(db.Class) != 40 {
		t.Fatalf("got %d images", len(db.Images))
	}
	if len(db.Queries) != 8 {
		t.Fatalf("got %d queries", len(db.Queries))
	}
	for _, img := range db.Images {
		if len(img) != 16 {
			t.Fatal("wrong region count")
		}
		for _, f := range img {
			if len(f) != 8 {
				t.Fatal("wrong feature dims")
			}
		}
	}
	// Same-class images must be closer than cross-class on average.
	dist := func(a, b [][]float64) float64 {
		s := 0.0
		for r := range a {
			for d := range a[r] {
				diff := a[r][d] - b[r][d]
				s += diff * diff
			}
		}
		return s
	}
	var same, cross, nSame, nCross float64
	for i := 0; i < 40; i++ {
		for j := i + 1; j < 40; j++ {
			d := dist(db.Images[i], db.Images[j])
			if db.Class[i] == db.Class[j] {
				same += d
				nSame++
			} else {
				cross += d
				nCross++
			}
		}
	}
	if same/nSame >= cross/nCross {
		t.Error("class structure missing: same-class images not closer")
	}
}

func TestFeatureDBValidation(t *testing.T) {
	if _, err := NewFeatureDB(0, 1, 1, 1, 1, 1); err == nil {
		t.Error("zero classes accepted")
	}
}

func TestCoarsen(t *testing.T) {
	regions := [][]float64{{0}, {2}, {4}, {6}}
	c := Coarsen(regions, 2)
	if len(c) != 2 {
		t.Fatalf("got %d coarse regions", len(c))
	}
	if c[0][0] != 1 || c[1][0] != 5 {
		t.Errorf("coarse features %v", c)
	}
	// k >= len passes through unchanged.
	if got := Coarsen(regions, 10); len(got) != 4 {
		t.Error("over-coarsening changed region count")
	}
	if got := Coarsen(regions, 0); len(got) != 1 {
		t.Error("k<1 should clamp to 1 region")
	}
}

func TestPoseTrajectory(t *testing.T) {
	tr, err := NewPoseTrajectory(50, 6, 0.2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.True) != 50 || len(tr.Obs) != 50 {
		t.Fatal("wrong frame count")
	}
	// Truth must be smooth: consecutive frames close.
	for t2 := 1; t2 < 50; t2++ {
		for j := 0; j < 6; j++ {
			if math.Abs(tr.True[t2][j]-tr.True[t2-1][j]) > 0.3 {
				t.Fatalf("trajectory jumps at frame %d", t2)
			}
		}
	}
	// Observations must be noisy but correlated with truth.
	var to, tt []float64
	for t2 := 0; t2 < 50; t2++ {
		to = append(to, tr.Obs[t2][0])
		tt = append(tt, tr.True[t2][0])
	}
	if r := mathx.Pearson(to, tt); r < 0.8 {
		t.Errorf("observations decorrelated from truth: r=%.2f", r)
	}
	if _, err := NewPoseTrajectory(0, 6, 0.1, 1); err == nil {
		t.Error("zero frames accepted")
	}
}

func TestWritePGM(t *testing.T) {
	g := mathx.NewGrid2D(4, 2)
	for i := range g.V {
		g.V[i] = float64(i)
	}
	var buf bytes.Buffer
	if err := WritePGM(&buf, g, 0, 7); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !bytes.HasPrefix(out, []byte("P5\n4 2\n255\n")) {
		t.Fatalf("bad header: %q", out[:12])
	}
	pix := out[len(out)-8:]
	if pix[0] != 0 || pix[7] != 255 {
		t.Errorf("range mapping wrong: %v", pix)
	}
	// Monotone pixel values for monotone input.
	for i := 1; i < 8; i++ {
		if pix[i] < pix[i-1] {
			t.Fatal("pixels not monotone")
		}
	}
	if err := WritePGM(&buf, nil, 0, 1); err == nil {
		t.Error("nil grid accepted")
	}
	if err := WritePGM(&buf, g, 1, 1); err == nil {
		t.Error("degenerate range accepted")
	}
}
