package experiments

import (
	"strconv"
	"strings"
)

// FirstFloat scans s for the first well-formed decimal number and
// returns it. A number is an optional sign, a mantissa with at least
// one digit (digits, optionally with one decimal point), and an
// optional exponent; it must not begin inside another token, so the
// "2" of "v2metric" or the tail "3" of "1.2.3" never match. Trailing
// punctuation ("2.4x", "5.") is handled by matching greedily and
// stopping at the first character that cannot extend the number.
func FirstFloat(s string) (float64, bool) {
	isDigit := func(b byte) bool { return b >= '0' && b <= '9' }
	isAlnum := func(b byte) bool {
		return isDigit(b) || (b >= 'a' && b <= 'z') || (b >= 'A' && b <= 'Z')
	}
	for i := 0; i < len(s); i++ {
		// A candidate starts at a digit, or at a sign/point leading
		// directly into one.
		j := i
		if s[j] == '+' || s[j] == '-' {
			j++
		}
		if j < len(s) && s[j] == '.' {
			j++
		}
		if j >= len(s) || !isDigit(s[j]) {
			continue
		}
		// Reject starts glued to the tail of another token: "1.2.3"
		// must yield 1.2 (from the first character), never 2 or 3.
		if i > 0 && (isAlnum(s[i-1]) || s[i-1] == '.') {
			continue
		}
		end := scanFloat(s, i)
		if v, err := strconv.ParseFloat(s[i:end], 64); err == nil {
			return v, true
		}
	}
	return 0, false
}

// scanFloat returns the end of the longest parseable number starting at
// i: sign, mantissa digits with at most one point, and an exponent only
// if it is complete (so "2.4x" stops before the 'x' and "1e" stops
// before the 'e').
func scanFloat(s string, i int) int {
	j := i
	if j < len(s) && (s[j] == '+' || s[j] == '-') {
		j++
	}
	digits, point := 0, false
	for j < len(s) {
		switch {
		case s[j] >= '0' && s[j] <= '9':
			digits++
		case s[j] == '.' && !point:
			point = true
		default:
			goto mantissaDone
		}
		j++
	}
mantissaDone:
	if digits == 0 {
		return j
	}
	// Trailing "5." parses fine; a dangling point with no digits after
	// it is still part of the match strconv accepts.
	if j < len(s) && (s[j] == 'e' || s[j] == 'E') {
		k := j + 1
		if k < len(s) && (s[k] == '+' || s[k] == '-') {
			k++
		}
		expDigits := k
		for k < len(s) && s[k] >= '0' && s[k] <= '9' {
			k++
		}
		if k > expDigits {
			return k
		}
	}
	return j
}

// NoteMetric finds the first table note containing tag and returns the
// first number following it, for benchmark metric extraction.
func NoteMetric(tables []*Table, tag string) (float64, bool) {
	for _, t := range tables {
		for _, n := range t.Notes {
			idx := strings.Index(n, tag)
			if idx < 0 {
				continue
			}
			if v, ok := FirstFloat(n[idx+len(tag):]); ok {
				return v, true
			}
		}
	}
	return 0, false
}
