package experiments

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// RunResult is one experiment's outcome under RunMany: the tables it
// produced, or the error that stopped it, plus the runner's wall time
// (for the provenance manifest's per-runner accounting).
type RunResult struct {
	ID      string
	Tables  []*Table
	Err     error
	Elapsed time.Duration
}

// RunMany executes the named experiments concurrently on the parallel
// pool (bounded by parallel.Workers(), the -j flag) and returns their
// results in the order the ids were given — the rendered output is
// byte-identical to running them one at a time. Runner errors are
// collected per experiment in RunResult.Err rather than cancelling
// siblings; the returned error is non-nil only for an unknown id or a
// context cancellation.
//
// Under the tracing tier each runner records an experiments.run.<id>
// span (child of the ctx span, in the worker's lane) and passes it
// down through its context, so chip draws, front measurements and
// solver sweeps nest run → runner → stage in the exported trace.
func RunMany(ctx context.Context, cfg Config, ids []string) ([]RunResult, error) {
	reg := Registry()
	for _, id := range ids {
		if _, ok := reg[id]; !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q", id)
		}
	}
	// Hold the cache gate for the whole run so a concurrent
	// ResetCaches cannot interleave with the memo layers mid-flight.
	defer holdCaches()()
	return parallel.MapCtx(ctx, len(ids), func(wctx context.Context, i int) (RunResult, error) {
		// Per-runner stage timing lands in experiments.run.<id>; the
		// span name is only built while telemetry records.
		var sp telemetry.Span
		if telemetry.On() {
			sp = telemetry.StartSpan("experiments.run." + ids[i])
		}
		rctx := wctx
		var tsp *trace.Span
		if trace.On() {
			tsp = trace.StartFrom(wctx, "experiments.run."+ids[i])
			rctx = trace.NewContext(wctx, tsp)
		}
		// Per-runner wall time is reporting, not simulation: it feeds
		// RunResult.Elapsed and the provenance manifest, and no model
		// output depends on it.
		//lint:ignore determinism wall-clock runner timing feeds the provenance manifest only
		start := time.Now()
		tables, err := reg[ids[i]](rctx, cfg)
		//lint:ignore determinism wall-clock runner timing feeds the provenance manifest only
		elapsed := time.Since(start)
		tsp.End()
		sp.End()
		return RunResult{ID: ids[i], Tables: tables, Err: err, Elapsed: elapsed}, nil
	})
}

// RunAll executes every registered experiment in presentation order.
func RunAll(ctx context.Context, cfg Config) ([]RunResult, error) {
	return RunMany(ctx, cfg, IDs())
}

// FirstErr returns the first per-experiment error in result order, or
// nil.
func FirstErr(results []RunResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("experiments: %s: %w", r.ID, r.Err)
		}
	}
	return nil
}

// RenderAll renders every result's tables to w in order, stopping at
// the first render or runner error.
func RenderAll(w io.Writer, results []RunResult) error {
	for _, r := range results {
		if r.Err != nil {
			return fmt.Errorf("experiments: %s: %w", r.ID, r.Err)
		}
		for _, t := range r.Tables {
			if err := t.Render(w); err != nil {
				return err
			}
		}
	}
	return nil
}
