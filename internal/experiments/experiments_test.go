package experiments

import (
	"bytes"
	"context"
	"strconv"
	"strings"
	"testing"
)

func run(t *testing.T, id string) []*Table {
	t.Helper()
	r, ok := Registry()[id]
	if !ok {
		t.Fatalf("experiment %s not registered", id)
	}
	tables, err := r(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) == 0 {
		t.Fatal("no tables produced")
	}
	for _, tab := range tables {
		if tab.ID != id {
			t.Errorf("table id %q under experiment %q", tab.ID, id)
		}
		if len(tab.Rows) == 0 || len(tab.Columns) == 0 {
			t.Errorf("%s: empty table", id)
		}
		for _, row := range tab.Rows {
			if len(row) != len(tab.Columns) {
				t.Errorf("%s: row width %d vs %d columns", id, len(row), len(tab.Columns))
			}
		}
	}
	return tables
}

func cell(t *testing.T, tab *Table, row int, col string) float64 {
	t.Helper()
	for i, c := range tab.Columns {
		if c == col {
			v, err := strconv.ParseFloat(tab.Rows[row][i], 64)
			if err != nil {
				t.Fatalf("cell %s[%d]: %v", col, row, err)
			}
			return v
		}
	}
	t.Fatalf("no column %q", col)
	return 0
}

func TestRegistryCoversIDs(t *testing.T) {
	reg := Registry()
	for _, id := range IDs() {
		if _, ok := reg[id]; !ok {
			t.Errorf("id %s missing from registry", id)
		}
	}
	if len(reg) != len(IDs()) {
		t.Error("registry and id list disagree")
	}
}

func TestTableRender(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "bb"}, Notes: []string{"n"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	if err := tab.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"== x: t", "a", "bb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestFig1aBandsRecorded(t *testing.T) {
	tabs := run(t, "fig1a")
	tab := tabs[0]
	// Frequency strictly increases with Vdd.
	prev := -1.0
	for i := range tab.Rows {
		f := cell(t, tab, i, "f(GHz)")
		if f < prev {
			t.Fatal("frequency not monotone in Vdd")
		}
		prev = f
	}
	if len(tab.Notes) < 2 {
		t.Error("missing band notes")
	}
}

func TestFig1bCliff(t *testing.T) {
	tab := run(t, "fig1b")[0]
	first := cell(t, tab, 0, "Perr/cycle")
	last := cell(t, tab, len(tab.Rows)-1, "Perr/cycle")
	if first < 0.1 {
		t.Errorf("Perr at 0.45V = %g, want near 1", first)
	}
	if last > 1e-6 {
		t.Errorf("Perr at the top of the sweep = %g, want tiny", last)
	}
	// Monotone non-increasing across the cliff.
	prev := first
	for i := 1; i < len(tab.Rows); i++ {
		v := cell(t, tab, i, "Perr/cycle")
		if v > prev*1.001 {
			t.Fatal("error rate not decreasing in Vdd")
		}
		prev = v
	}
}

func TestFig1cOrdering(t *testing.T) {
	tab := run(t, "fig1c")[0]
	for i := range tab.Rows {
		if cell(t, tab, i, "11nm(%)") <= cell(t, tab, i, "22nm(%)") {
			t.Fatal("11nm guardband not above 22nm")
		}
	}
}

func TestFig2Monotone(t *testing.T) {
	for _, tab := range run(t, "fig2") {
		prev := -1.0
		for i := range tab.Rows {
			q := cell(t, tab, i, "Default")
			if q < prev-0.02 {
				t.Fatalf("%s: Default quality dips along problem size", tab.Title)
			}
			prev = q
			if cell(t, tab, i, "Drop 1/2") > cell(t, tab, i, "Default")+0.03 {
				t.Fatalf("%s: Drop 1/2 beats Default", tab.Title)
			}
		}
	}
}

func TestFig5aHistogramSums(t *testing.T) {
	tab := run(t, "fig5a")[0]
	total := 0
	for i := range tab.Rows {
		total += int(cell(t, tab, i, "clusters"))
	}
	if total != 36 {
		t.Errorf("histogram covers %d clusters", total)
	}
}

func TestFig5bPerCluster(t *testing.T) {
	tab := run(t, "fig5b")[0]
	if len(tab.Rows) != 36 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		f16 := cell(t, tab, i, "f@1e-16")
		f4 := cell(t, tab, i, "f@1e-4")
		fmax := cell(t, tab, i, "fmax(Perr~1)")
		if !(f16 < f4 && f4 < fmax) {
			t.Fatalf("row %d: frequencies out of order", i)
		}
	}
}

func TestHeadlineBands(t *testing.T) {
	tab := run(t, "headline")[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("%d benchmarks", len(tab.Rows))
	}
	for i := range tab.Rows {
		safe := cell(t, tab, i, "safe MIPS/W")
		spec := cell(t, tab, i, "spec MIPS/W")
		if spec <= safe {
			t.Errorf("row %d: speculative not above safe", i)
		}
		// The headline band: every benchmark lands near the paper's
		// 1.61-1.87x at iso-execution time.
		if spec < 1.3 || spec > 2.2 {
			t.Errorf("row %d: spec MIPS/W %.2f outside the plausible band", i, spec)
		}
	}
}

func TestCorruptionOrdering(t *testing.T) {
	tab := run(t, "corruption")[0]
	var drop, invert float64
	for i, row := range tab.Rows {
		if row[0] == "drop" {
			drop = cell(t, tab, i, "Q(1/2)/Qnom")
		}
		if row[0] == "invert" {
			invert = cell(t, tab, i, "Q(1/2)/Qnom")
		}
	}
	if invert >= drop {
		t.Errorf("invert (%.3f) should corrupt more than drop (%.3f)", invert, drop)
	}
}

func TestBaselinesOrdering(t *testing.T) {
	tab := run(t, "baselines")[0]
	vals := map[string]float64{}
	for i, row := range tab.Rows {
		vals[row[0]] = cell(t, tab, i, "GHz/W")
	}
	if vals["booster"] <= vals["naive-ntc"] || vals["energysmart"] <= vals["naive-ntc"] {
		t.Error("mitigation schemes must beat naive NTC")
	}
	if vals["naive-ntc"] <= 0 {
		t.Error("degenerate naive baseline")
	}
}

func TestTable3RunsAllBenchmarks(t *testing.T) {
	tab := run(t, "table3")[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	names := map[string]bool{}
	for _, row := range tab.Rows {
		names[row[0]] = true
	}
	for _, want := range []string{"canneal", "ferret", "bodytrack", "x264", "hotspot", "srad"} {
		if !names[want] {
			t.Errorf("missing %s", want)
		}
	}
}

func TestTable2Static(t *testing.T) {
	tab := run(t, "table2")[0]
	if len(tab.Rows) < 10 {
		t.Error("Table 2 too short")
	}
}

func TestBenchmarkByName(t *testing.T) {
	if _, err := BenchmarkByName("canneal"); err != nil {
		t.Fatal(err)
	}
	if _, err := BenchmarkByName("nope"); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestWeakscaleNote(t *testing.T) {
	tabs := run(t, "weakscale")
	found := false
	for _, n := range tabs[0].Notes {
		if strings.Contains(n, "quality return on expansion") {
			found = true
		}
	}
	if !found {
		t.Error("missing the Section 7 comparison note")
	}
}

func TestDynamicBeatsStatic(t *testing.T) {
	tab := run(t, "dynamic")[0]
	if len(tab.Rows)%2 != 0 {
		t.Fatal("rows must pair static/dynamic")
	}
	for i := 0; i < len(tab.Rows); i += 2 {
		static := cell(t, tab, i, "missed epochs")
		dynamic := cell(t, tab, i+1, "missed epochs")
		if tab.Rows[i][1] != "static" || tab.Rows[i+1][1] != "dynamic" {
			t.Fatal("row order broken")
		}
		if dynamic >= static {
			t.Errorf("rate row %d: dynamic misses %v >= static %v", i/2, dynamic, static)
		}
		// Re-planning costs some power.
		if cell(t, tab, i+1, "mean power(W)") < cell(t, tab, i, "mean power(W)") {
			t.Errorf("rate row %d: dynamic cheaper than static, suspicious", i/2)
		}
	}
}

func TestPopulationSpread(t *testing.T) {
	tab := run(t, "population")[0]
	for i, row := range tab.Rows {
		lo := cell(t, tab, i, "min")
		mid := cell(t, tab, i, "p50")
		hi := cell(t, tab, i, "max")
		if !(lo <= mid && mid <= hi) {
			t.Errorf("row %q out of order: %v %v %v", row[0], lo, mid, hi)
		}
	}
	// The efficiency-gain row must stay in the paper's neighbourhood.
	for i, row := range tab.Rows {
		if row[0] == "MIPS/W gain vs STV" {
			if lo := cell(t, tab, i, "min"); lo < 1.2 {
				t.Errorf("weakest chip gain %v implausibly low", lo)
			}
			if hi := cell(t, tab, i, "max"); hi > 2.3 {
				t.Errorf("luckiest chip gain %v implausibly high", hi)
			}
		}
	}
}

func TestVddSweepPeaksNearVth(t *testing.T) {
	tab := run(t, "vddsweep")[0]
	first := cell(t, tab, 0, "MIPS/W vs STV")
	last := cell(t, tab, len(tab.Rows)-1, "MIPS/W vs STV")
	if first <= last {
		t.Errorf("efficiency at VddNTV (%.2f) not above the high-Vdd end (%.2f)", first, last)
	}
	// Every row remains an efficiency win over STV.
	for i := range tab.Rows {
		if v := cell(t, tab, i, "MIPS/W vs STV"); v < 1 {
			t.Errorf("row %d: NTV less efficient than STV (%.2f)", i, v)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "x", Title: "t", Columns: []string{"a", "b"}, Notes: []string{"n"}}
	tab.AddRow("1", "2,3") // embedded comma must be quoted
	var buf bytes.Buffer
	if err := tab.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"# x: t", "a,b", `1,"2,3"`, "# note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("CSV missing %q:\n%s", want, out)
		}
	}
}

func TestCPIValidation(t *testing.T) {
	tab := run(t, "cpi")[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i := range tab.Rows {
		simCPI := cell(t, tab, i, "CPI@1GHz (sim)")
		modelCPI := cell(t, tab, i, "CPI@1GHz (model)")
		if simCPI < 0.5*modelCPI || simCPI > 2*modelCPI {
			t.Errorf("row %d: trace CPI %.2f vs model %.2f diverge beyond 2x", i, simCPI, modelCPI)
		}
		// The memory wall: CPI worsens at the STV frequency.
		if cell(t, tab, i, "CPI@3.5GHz (sim)") <= simCPI {
			t.Errorf("row %d: CPI did not grow with frequency", i)
		}
	}
}

func TestCorruptionWideVerdicts(t *testing.T) {
	tab := run(t, "corruptionwide")[0]
	if len(tab.Rows) != 6 {
		t.Fatalf("%d rows", len(tab.Rows))
	}
	for i, row := range tab.Rows {
		drop := cell(t, tab, i, "drop 1/4")
		if drop < 0.5 {
			t.Errorf("%s: Drop 1/4 collapsed to %.3f; the error model's bound is broken", row[0], drop)
		}
		// Every row carries a verdict consistent with its numbers.
		flip := cell(t, tab, i, "flip 1/4")
		stuck := cell(t, tab, i, "stuck-all-0 1/4")
		excessive := flip < drop || stuck < drop
		wantPrefix := "corruption bounded"
		if excessive {
			wantPrefix = "excessive corruption"
		}
		if !strings.HasPrefix(row[len(row)-1], wantPrefix) {
			t.Errorf("%s: verdict %q inconsistent with numbers", row[0], row[len(row)-1])
		}
	}
}

func TestCCRatioBottleneck(t *testing.T) {
	tab := run(t, "ccratio")[0]
	first := cell(t, tab, 0, "makespan(ms)")
	last := cell(t, tab, len(tab.Rows)-1, "makespan(ms)")
	if first <= last*1.5 {
		t.Errorf("one CC (%.1f ms) should clearly bottleneck vs many (%.1f ms)", first, last)
	}
	// Makespan is non-increasing in CC count.
	prev := first
	for i := 1; i < len(tab.Rows); i++ {
		v := cell(t, tab, i, "makespan(ms)")
		if v > prev*1.001 {
			t.Fatalf("makespan rose with more CCs at row %d", i)
		}
		prev = v
	}
}

func TestFig6AndFig7Run(t *testing.T) {
	if testing.Short() {
		t.Skip("pareto fronts are expensive")
	}
	for _, id := range []string{"fig6", "fig7"} {
		tabs := run(t, id)
		want := 4
		if id == "fig7" {
			want = 2
		}
		if len(tabs) != want {
			t.Fatalf("%s produced %d tables", id, len(tabs))
		}
		for _, tab := range tabs {
			// 2 flavors x 9 sweep points per benchmark.
			if len(tab.Rows) != 18 {
				t.Errorf("%s: %d rows", tab.Title, len(tab.Rows))
			}
		}
	}
}

func TestAllKernelsIncludesMiner(t *testing.T) {
	all, err := AllKernels()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 7 {
		t.Fatalf("%d kernels", len(all))
	}
	if _, err := BenchmarkByName("btcmine"); err != nil {
		t.Error(err)
	}
}
