package experiments

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"
)

// Golden tests pin the exact rendered output of the cheap, fully
// deterministic experiments. A reproduction's numbers must not drift
// silently: any model change that moves them must be made visible here.
// Regenerate with UPDATE_GOLDEN=1 go test ./internal/experiments.
func TestGoldenArtifacts(t *testing.T) {
	ids := []string{"fig1a", "fig1b", "fig1c", "fig5a", "fig5b", "table2"}
	reg := Registry()
	for _, id := range ids {
		id := id
		t.Run(id, func(t *testing.T) {
			tables, err := reg[id](context.Background(), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			var buf bytes.Buffer
			for _, tab := range tables {
				if err := tab.Render(&buf); err != nil {
					t.Fatal(err)
				}
			}
			path := filepath.Join("testdata", "golden_"+id+".txt")
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.MkdirAll("testdata", 0o755); err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(buf.Bytes(), want) {
				t.Errorf("%s drifted from its golden output; if intentional, regenerate with UPDATE_GOLDEN=1 and update EXPERIMENTS.md\n--- got ---\n%s\n--- want ---\n%s",
					id, buf.String(), string(want))
			}
		})
	}
}
