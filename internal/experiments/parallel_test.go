package experiments

import (
	"bytes"
	"context"
	"errors"
	"testing"

	"repro/internal/parallel"
)

// renderIDs runs the given experiments through RunMany under a fixed
// pool width, from cold caches, and renders everything to one buffer.
// A trimmed population keeps the sweep affordable; determinism does not
// depend on the sample size.
func renderIDs(t *testing.T, ids []string, workers int) []byte {
	t.Helper()
	defer parallel.SetWorkers(workers)()
	ResetCaches()
	cfg := DefaultConfig()
	cfg.Chips = 6
	results, err := RunMany(context.Background(), cfg, ids)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := RenderAll(&buf, results); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelEquivalence is the engine's acceptance test: a wide pool
// must render byte-identical artifacts to a sequential run, across
// every parallel path (population draws, quality-front profiling,
// solver sweeps, the experiment driver itself, and all the caches they
// share).
func TestParallelEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second equivalence sweep")
	}
	cases := []struct {
		name string
		ids  []string
	}{
		{"population-and-chips", []string{"fig5a", "population"}},
		{"fronts-and-solver", []string{"fig6", "fig2"}},
		{"mixed-drivers", []string{"fig1a", "table2", "vddsweep"}},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			sequential := renderIDs(t, c.ids, 1)
			if len(sequential) == 0 {
				t.Fatal("empty sequential render")
			}
			for _, workers := range []int{8} {
				parallelOut := renderIDs(t, c.ids, workers)
				if !bytes.Equal(sequential, parallelOut) {
					t.Errorf("workers=%d rendering of %v differs from sequential\n--- sequential ---\n%s\n--- parallel ---\n%s",
						workers, c.ids, sequential, parallelOut)
				}
			}
		})
	}
}

// TestRunManyOrdersResults pins that results come back in argument
// order regardless of completion order.
func TestRunManyOrdersResults(t *testing.T) {
	defer parallel.SetWorkers(4)()
	ids := []string{"table2", "fig1a", "fig1b"}
	results, err := RunMany(context.Background(), DefaultConfig(), ids)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(ids) {
		t.Fatalf("%d results for %d ids", len(results), len(ids))
	}
	for i, r := range results {
		if r.ID != ids[i] {
			t.Fatalf("result %d is %s, want %s", i, r.ID, ids[i])
		}
		if r.Err != nil {
			t.Fatalf("%s: %v", r.ID, r.Err)
		}
		if len(r.Tables) == 0 {
			t.Fatalf("%s produced no tables", r.ID)
		}
	}
}

func TestRunManyRejectsUnknownID(t *testing.T) {
	if _, err := RunMany(context.Background(), DefaultConfig(), []string{"fig1a", "nonsense"}); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestRunManyCancellationMidSweep(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := RunMany(ctx, DefaultConfig(), IDs()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled RunMany: err = %v, want context.Canceled", err)
	}
}

// TestRepresentativeChipShared pins the cross-runner sharing: the same
// ChipSeed yields the same *Chip pointer, distinct seeds distinct
// chips.
func TestRepresentativeChipShared(t *testing.T) {
	ResetCaches()
	a, err := RepresentativeChip(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RepresentativeChip(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("RepresentativeChip rebuilt the shared sample")
	}
	other := DefaultConfig()
	other.ChipSeed = 99
	c, err := RepresentativeChip(context.Background(), other)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("distinct ChipSeeds shared one chip")
	}
	ResetCaches()
}
