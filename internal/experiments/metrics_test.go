package experiments

import "testing"

func TestFirstFloat(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		// The shapes table notes actually contain.
		{" 2.4x (paper 2-5x)", 2.4, true},
		{"gain 1.61-1.87x band", 1.61, true},
		{"at Vdd=0.485V", 0.485, true},
		{"phi=0.1", 0.1, true},
		{"N= 72 cores", 72, true},
		{"negative -3.5 dB", -3.5, true},
		{"explicit +12 offset", 12, true},
		{"leading .5 fraction", 0.5, true},
		{"scientific 1.5e-3 s", 1.5e-3, true},
		{"upper 2E6 ops", 2e6, true},

		// The malformed tokens the old TrimSuffix tokenizer mishandled.
		{"version 1.2.3 of the spec", 1.2, true},
		{"a lone - dash", 0, false},
		{"dashes -- everywhere -", 0, false},
		{"dots ... nothing", 0, false},
		{"sign-dot -. then 7", 7, true},
		{"trailing dot 5. end", 5, true},
		{"range 1/4 of tasks", 1, true},
		{"drop-1/4 scenario", 1, true},
		{"incomplete exponent 3e then text", 3, true},
		{"exponent sign only 4e- stop", 4, true},

		// Numbers glued to identifiers must not match mid-token.
		{"v2metric has no standalone number", 0, false},
		{"x264 is a name, 9 is the value", 9, true},

		// Nothing numeric at all.
		{"", 0, false},
		{"no digits here", 0, false},
	}
	for _, c := range cases {
		got, ok := FirstFloat(c.in)
		if ok != c.ok || (ok && got != c.want) {
			t.Errorf("FirstFloat(%q) = (%g, %v), want (%g, %v)", c.in, got, ok, c.want, c.ok)
		}
	}
}

func TestNoteMetric(t *testing.T) {
	tables := []*Table{
		{Notes: []string{"irrelevant note"}},
		{Notes: []string{
			"f degradation 4.7x, energy/op gain 2.4x (paper 2-5x)",
			"energy/op gain 9.9x later note must not shadow the first",
		}},
	}
	if v, ok := NoteMetric(tables, "energy/op gain"); !ok || v != 2.4 {
		t.Fatalf("NoteMetric = (%g, %v), want (2.4, true)", v, ok)
	}
	if _, ok := NoteMetric(tables, "absent tag"); ok {
		t.Fatal("NoteMetric found an absent tag")
	}
	if _, ok := NoteMetric(nil, "x"); ok {
		t.Fatal("NoteMetric on nil tables")
	}
}
