// Package experiments regenerates every table and figure of the
// paper's evaluation (Section 6) from the reproduction's own models and
// kernels. Each experiment returns a Table whose rows correspond to the
// series the paper plots; cmd/accordion renders them as text and
// bench_test.go regenerates them under `go test -bench`.
package experiments

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"strings"
	"sync"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/rms"
	"repro/internal/rms/bodytrack"
	"repro/internal/rms/btcmine"
	"repro/internal/rms/canneal"
	"repro/internal/rms/ferret"
	"repro/internal/rms/hotspot"
	"repro/internal/rms/srad"
	"repro/internal/rms/xh264"
	"repro/internal/variation"
)

// Config parameterizes an experiment run.
type Config struct {
	Seed     int64 // master seed for workloads and fault streams
	ChipSeed int64 // seed of the representative chip sample
	Chips    int   // population size for population-level statistics
}

// DefaultConfig returns the configuration all recorded results use.
func DefaultConfig() Config {
	return Config{Seed: 1, ChipSeed: 2014, Chips: 20}
}

// Table is one regenerated artifact: the rows behind a figure's series
// or a table of the paper.
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "== %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%*s", w, c)
		}
		return strings.Join(parts, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// kernels memoizes the constructed benchmark sets. Kernels are
// stateless after construction (MeasureFronts already shares one
// instance across concurrent Run calls), but constructing them is not
// free — canneal's netlist and ferret's database dominate — and the
// experiment drivers rebuild the set once per experiment. Each call
// still returns a fresh slice so callers may reorder or truncate it.
var kernels = parallel.Cache[string, []rms.Benchmark]{Name: "experiments.Kernels"}

func cachedKernels(set string, build func() ([]rms.Benchmark, error)) ([]rms.Benchmark, error) {
	all, err := kernels.Do(set, build)
	if err != nil {
		return nil, err
	}
	out := make([]rms.Benchmark, len(all))
	copy(out, all)
	return out, nil
}

// AllBenchmarks constructs the six RMS kernels in Table 3 order.
func AllBenchmarks() ([]rms.Benchmark, error) {
	return cachedKernels("table3", func() ([]rms.Benchmark, error) {
		cb, err := canneal.New()
		if err != nil {
			return nil, err
		}
		fb, err := ferret.New()
		if err != nil {
			return nil, err
		}
		bb, err := bodytrack.New()
		if err != nil {
			return nil, err
		}
		return []rms.Benchmark{cb, fb, bb, xh264.New(), hotspot.New(), srad.New()}, nil
	})
}

// AllKernels returns every kernel in the repository: the Table 3 six
// plus the Section 7 strict weak-scaling miner.
func AllKernels() ([]rms.Benchmark, error) {
	return cachedKernels("all", func() ([]rms.Benchmark, error) {
		all, err := AllBenchmarks()
		if err != nil {
			return nil, err
		}
		return append(all, btcmine.New()), nil
	})
}

// BenchmarkByName returns one kernel (including btcmine).
func BenchmarkByName(name string) (rms.Benchmark, error) {
	all, err := AllKernels()
	if err != nil {
		return nil, err
	}
	for _, b := range all {
		if b.Name() == name {
			return b, nil
		}
	}
	return nil, fmt.Errorf("experiments: unknown benchmark %q", name)
}

// repChips shares one sampled chip per seed across all runners: a Chip
// is immutable after construction, so concurrent experiments read it
// freely, and no runner pays the factory's covariance factorization
// twice.
var repChips = parallel.Cache[int64, *chip.Chip]{Name: "experiments.RepresentativeChip"}

// RepresentativeChip returns the chip sample all single-chip
// experiments use. The sample is memoized per ChipSeed and shared
// between concurrently running experiments. The context carries only
// telemetry attribution (the cache's hit/miss counters tally into the
// job scope of whichever service request asked), never cancellation of
// the sample itself.
func RepresentativeChip(ctx context.Context, cfg Config) (*chip.Chip, error) {
	return repChips.DoCtx(ctx, cfg.ChipSeed, func() (*chip.Chip, error) {
		return chip.New(chip.DefaultConfig(), cfg.ChipSeed)
	})
}

// frontKey identifies one benchmark profiling run.
type frontKey struct {
	bench string
	seed  int64
}

// fronts shares measured quality models across runners; a QualityModel
// is read-only after MeasureFronts returns.
var fronts = parallel.Cache[frontKey, *core.QualityModel]{Name: "experiments.MeasuredFronts"}

// MeasuredFronts returns core.MeasureFronts(b, seed), memoized per
// (benchmark, seed): the profiling sweep behind Figures 2 and 4 is the
// single most expensive step experiments share, and concurrent runners
// wait for one in-flight measurement instead of duplicating it. The
// ctx of whichever caller performs the actual measurement carries its
// trace span, so the core.front spans attribute to that runner;
// memo-hit callers pay nothing and record nothing.
func MeasuredFronts(ctx context.Context, b rms.Benchmark, seed int64) (*core.QualityModel, error) {
	return fronts.DoCtx(ctx, frontKey{b.Name(), seed}, func() (*core.QualityModel, error) {
		return core.MeasureFrontsCtx(ctx, b, seed)
	})
}

// cacheGate serializes ResetCaches against in-flight experiment runs.
// Each cache's own Reset is individually safe, but the compound reset
// is not atomic on its own: a concurrent run could observe some layers
// emptied and others still warm, repopulating a mixed generation.
// RunMany and RunAttribution hold the read side for their whole
// duration, so a reset is atomic with respect to runs: it waits for
// every in-flight run to finish, empties all layers, and only then
// lets new runs repopulate them.
var cacheGate sync.RWMutex

// holdCaches marks an experiment run in flight; the returned release
// must be called when the run finishes. Do not nest holds on one
// goroutine: a writer waiting between two read acquisitions deadlocks.
func holdCaches() (release func()) {
	cacheGate.RLock()
	return cacheGate.RUnlock
}

// ResetCaches empties every process-wide memoization layer the
// experiments depend on (shared chips, quality fronts, reference
// executions, covariance factorizations). It exists for benchmarks and
// equivalence tests that must measure or exercise cold-cache runs, and
// for long-running services that want to shed memory between bursts.
// The reset is atomic with respect to RunMany/RunAttribution: it
// blocks until in-flight runs complete and blocks new runs until every
// layer is empty, so a run never sees a half-reset cache generation.
func ResetCaches() {
	cacheGate.Lock()
	defer cacheGate.Unlock()
	repChips.Reset()
	fronts.Reset()
	kernels.Reset()
	rms.ResetReferenceCache()
	fault.ResetFlipMaskCache()
	variation.ResetFactorizationCache()
	variation.ResetEigenCache()
}

// Runner is the signature every experiment driver shares. The context
// carries cancellation and, under the tracing tier, the runner's trace
// span, so spans opened inside the driver (chip draws, front
// measurements, solver sweeps) nest under it.
type Runner func(ctx context.Context, cfg Config) ([]*Table, error)

// Registry maps experiment ids to drivers.
func Registry() map[string]Runner {
	return map[string]Runner{
		"fig1a":          Fig1a,
		"fig1b":          Fig1b,
		"fig1c":          Fig1c,
		"fig2":           Fig2,
		"fig4":           Fig4,
		"fig5a":          Fig5a,
		"fig5b":          Fig5b,
		"fig6":           Fig6,
		"fig7":           Fig7,
		"table2":         Table2,
		"table3":         Table3,
		"headline":       Headline,
		"corruption":     Corruption,
		"baselines":      Baselines,
		"weakscale":      Weakscale,
		"vddsweep":       VddSweep,
		"dynamic":        Dynamic,
		"population":     Population,
		"cpi":            CPI,
		"corruptionwide": CorruptionWide,
		"ccratio":        CCRatio,
	}
}

// IDs lists the experiment ids in presentation order. The first twelve
// regenerate the paper's artifacts; weakscale, dynamic and population
// extend the study along the axes Section 7 identifies.
func IDs() []string {
	return []string{"fig1a", "fig1b", "fig1c", "fig2", "fig4", "fig5a", "fig5b",
		"fig6", "fig7", "table2", "table3", "headline", "corruption", "baselines",
		"weakscale", "vddsweep", "dynamic", "population", "cpi", "corruptionwide", "ccratio"}
}

func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f1(v float64) string { return fmt.Sprintf("%.1f", v) }
func e1(v float64) string { return fmt.Sprintf("%.1e", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }

// RenderCSV writes the table as CSV: a comment line with id/title, the
// header row, data rows, and one comment line per note.
func (t *Table) RenderCSV(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "# %s: %s\n", t.ID, t.Title); err != nil {
		return err
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	if err := cw.WriteAll(t.Rows); err != nil {
		return err
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return err
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "# note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}
