package experiments

import (
	"context"
	"fmt"

	"repro/internal/tech"
)

// Fig1a regenerates Figure 1a: power, frequency and energy per
// operation as a function of Vdd, with the STC->NTC improvement bands
// the paper quotes (10-50x power, 5-10x frequency, 2-5x energy/op).
func Fig1a(ctx context.Context, cfg Config) ([]*Table, error) {
	tp := tech.Default11nm()
	t := &Table{
		ID:      "fig1a",
		Title:   "power, f, energy/operation vs Vdd (11nm)",
		Columns: []string{"Vdd(V)", "f(GHz)", "power(W)", "energy/op(nJ)"},
	}
	for vdd := 0.25; vdd <= 1.10001; vdd += 0.05 {
		f := tp.Freq(vdd, tp.VthNom)
		p := tp.CorePower(vdd, tp.VthNom, f)
		t.AddRow(f2(vdd), f3(f), f3(p), f3(tp.EnergyPerOp(vdd, tp.VthNom)))
	}
	const vNTV = 0.50
	fRatio := tp.FSTV() / tp.Freq(vNTV, tp.VthNom)
	pRatio := tp.CorePower(tp.VddNomSTV, tp.VthNom, tp.FSTV()) /
		tp.CorePower(vNTV, tp.VthNom, tp.Freq(vNTV, tp.VthNom))
	eRatio := tp.EnergyPerOp(tp.VddNomSTV, tp.VthNom) / tp.EnergyPerOp(vNTV, tp.VthNom)
	t.Notes = append(t.Notes,
		fmt.Sprintf("STC(1.0V) -> NTC(0.5V): f degradation %.1fx (paper 5-10x), power reduction %.1fx (paper 10-50x), energy/op gain %.1fx (paper 2-5x)",
			fRatio, pRatio, eRatio))
	// Locate the minimum-energy point; the paper places it below Vth.
	bestV, bestE := 0.0, tp.EnergyPerOp(0.2, tp.VthNom)
	for vdd := 0.15; vdd <= 1.1; vdd += 0.005 {
		if e := tp.EnergyPerOp(vdd, tp.VthNom); e < bestE {
			bestV, bestE = vdd, e
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("minimum energy/op at Vdd=%.3fV, below the NTV nominal (Vth=%.2fV; the paper's device data places it slightly lower, in sub-threshold)", bestV, tp.VthNom))
	return []*Table{t}, nil
}

// Fig1b regenerates Figure 1b: the variation-induced timing error rate
// as a function of Vdd in the 0.45-0.60V window at the nominal NTV
// frequency.
func Fig1b(ctx context.Context, cfg Config) ([]*Table, error) {
	tp := tech.Default11nm()
	t := &Table{
		ID:      "fig1b",
		Title:   "timing error rate vs Vdd at fNOM=1GHz",
		Columns: []string{"Vdd(V)", "Perr/cycle"},
	}
	for vdd := 0.45; vdd <= 0.66001; vdd += 0.01 {
		t.AddRow(f2(vdd), e1(tp.PerrPerCycle(tp.FNomNTV, vdd, tp.VthNom)))
	}
	t.Notes = append(t.Notes, "error rate collapses from ~1 to error-free within ~0.1V, the cliff Figure 1b shows")
	return []*Table{t}, nil
}

// Fig1c regenerates Figure 1c: the worst-case timing guardband in
// percent versus Vdd for the 22nm and 11nm nodes.
func Fig1c(ctx context.Context, cfg Config) ([]*Table, error) {
	p22, p11 := tech.Default22nm(), tech.Default11nm()
	t := &Table{
		ID:      "fig1c",
		Title:   "timing guardband (%) vs Vdd, 22nm vs 11nm (3-sigma corner)",
		Columns: []string{"Vdd(V)", "22nm(%)", "11nm(%)"},
	}
	for vdd := 0.4; vdd <= 1.20001; vdd += 0.1 {
		t.AddRow(f2(vdd), f1(p22.Guardband(vdd, 0.10, 3)), f1(p11.Guardband(vdd, 0.15, 3)))
	}
	t.Notes = append(t.Notes, "guardbands explode toward the near-threshold region and worsen with scaling, as in Figure 1c")
	return []*Table{t}, nil
}
