package experiments

import (
	"context"
	"fmt"
	"math"

	"repro/internal/baseline"
	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/rms"
	cannealpkg "repro/internal/rms/canneal"
	"repro/internal/sim"
)

// Table2 reports the reproduction's realization of the paper's Table 2
// system parameters.
func Table2(ctx context.Context, cfg Config) ([]*Table, error) {
	c := chip.DefaultConfig()
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	tor := sim.DefaultTorus()
	t := &Table{
		ID:      "table2",
		Title:   "technology and architecture parameters",
		Columns: []string{"parameter", "value", "paper"},
	}
	t.AddRow("technology node", "11nm (analytic models)", "11nm")
	t.AddRow("cores", d(c.NumCores()), "288")
	t.AddRow("clusters", d(c.Clusters), "36 (8 cores/cluster)")
	t.AddRow("power budget PMAX", f1(c.PowerBudget)+" W", "100 W")
	t.AddRow("VddNOM", f2(c.Tech.VddNomNTV)+" V", "0.55 V")
	t.AddRow("VthNOM", f2(c.Tech.VthNom)+" V", "0.33 V")
	t.AddRow("fNOM", f2(c.Tech.FNomNTV)+" GHz", "1.0 GHz")
	t.AddRow("STV equivalent", fmt.Sprintf("%.2f V / %.2f GHz", c.Tech.VddNomSTV, c.Tech.FSTV()), "1 V / 3.3 GHz")
	t.AddRow("Vth variation", fmt.Sprintf("sigma/mu=%.0f%%, phi=%.1f", c.Vth.SigmaMu*100, c.Vth.CorrRange), "15%, phi=0.1")
	t.AddRow("Leff variation", fmt.Sprintf("sigma/mu=%.1f%%", c.Leff.SigmaMu*100), "7.5%")
	t.AddRow("core-private memory", fmt.Sprintf("%d KB", c.CoreMemBits/8/1024), "64 KB")
	t.AddRow("cluster memory", fmt.Sprintf("%d MB", c.ClusterMemBits/8/1024/1024), "2 MB")
	t.AddRow("network", fmt.Sprintf("bus + %dx%d 2D torus @ %.1f GHz", tor.Side, tor.Side, tor.NetFreq), "bus + 2D torus @ 0.8 GHz")
	t.AddRow("representative VddNTV", f3(rep.VddNTV())+" V", "max per-cluster VddMIN")
	return []*Table{t}, nil
}

// Table3 reports, per benchmark, the Accordion input, quality metric,
// and the measured problem-size and quality dependence exponents
// against the paper's linear/complex classification.
func Table3(ctx context.Context, cfg Config) ([]*Table, error) {
	all, err := AllBenchmarks()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "table3",
		Title: "benchmark characteristics and measured input dependencies",
		Columns: []string{"benchmark", "domain", "accordion input", "quality metric",
			"PS dep (paper)", "PS exponent", "Q dep (paper)", "Q slope r2"},
	}
	for _, b := range all {
		psExp, qR2, err := measureDependence(ctx, b, cfg.Seed)
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name(), b.Domain(), b.AccordionInput(), b.QualityMetricName(),
			b.DependencePS().String(), f2(psExp), b.DependenceQ().String(), f2(qR2))
	}
	t.Notes = append(t.Notes,
		"PS exponent: power-law fit of problem size vs input (1.0 = linear)",
		"Q slope r2: goodness of a linear quality-vs-input fit (near 1 = linear)")
	return []*Table{t}, nil
}

// measureDependence fits problem size ~ input^p and quality ~ input.
func measureDependence(ctx context.Context, b rms.Benchmark, seed int64) (psExp, qLinearR2 float64, err error) {
	sweep := b.Sweep()
	ref, err := rms.ReferenceCtx(ctx, b, seed)
	if err != nil {
		return 0, 0, err
	}
	var ps, qs []float64
	for _, in := range sweep {
		ps = append(ps, b.ProblemSize(in))
		res, err := b.Run(in, b.DefaultThreads(), fault.Plan{}, seed)
		if err != nil {
			return 0, 0, err
		}
		q, err := b.Quality(res, ref)
		if err != nil {
			return 0, 0, err
		}
		qs = append(qs, q)
	}
	_, psExp, _ = mathx.PowerFit(sweep, ps)
	_, _, qLinearR2 = mathx.LinFit(sweep, qs)
	return psExp, qLinearR2, nil
}

// Corruption regenerates the Section 6.2/6.3 validation study on
// canneal: end-result corruption modes versus Drop, including the
// decision-inversion case the paper quantifies (77%/69% quality vs
// Drop's 98%/96%).
func Corruption(ctx context.Context, cfg Config) ([]*Table, error) {
	b, err := cannealpkg.New()
	if err != nil {
		return nil, err
	}
	ref, err := rms.ReferenceCtx(ctx, b, cfg.Seed)
	if err != nil {
		return nil, err
	}
	nominal, err := b.Run(b.DefaultInput(), b.DefaultThreads(), fault.Plan{}, cfg.Seed)
	if err != nil {
		return nil, err
	}
	qNom, err := b.Quality(nominal, ref)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "corruption",
		Title:   "canneal: quality vs nominal under error modes (1/4 and 1/2 of threads infected)",
		Columns: []string{"mode", "Q(1/4)/Qnom", "Q(1/2)/Qnom"},
	}
	modes := append([]fault.Mode{fault.Drop}, fault.CorruptionModes()...)
	modes = append(modes, fault.Invert)
	var dropQ, invertQ [2]float64
	for _, m := range modes {
		var rel [2]float64
		for i, den := range []int{4, 2} {
			plan, err := fault.NewPlan(m, 1, den, cfg.Seed)
			if err != nil {
				return nil, err
			}
			res, err := b.Run(b.DefaultInput(), b.DefaultThreads(), plan, cfg.Seed)
			if err != nil {
				return nil, err
			}
			q, err := b.Quality(res, ref)
			if err != nil {
				return nil, err
			}
			rel[i] = q / qNom
		}
		if m == fault.Drop {
			dropQ = rel
		}
		if m == fault.Invert {
			invertQ = rel
		}
		t.AddRow(m.String(), f3(rel[0]), f3(rel[1]))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("Drop: %.0f%%/%.0f%% of nominal (paper 98%%/96%%); Invert: %.0f%%/%.0f%% (paper 77%%/69%%)",
			dropQ[0]*100, dropQ[1]*100, invertQ[0]*100, invertQ[1]*100))
	return []*Table{t}, nil
}

// Baselines compares Accordion's substrate against the related-work
// mitigation schemes of Section 8 at a fixed engaged-core count.
func Baselines(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	s := baseline.NewSuite(rep)
	const n = 64
	stv := s.STV()
	naive, err := s.NaiveNTC(n)
	if err != nil {
		return nil, err
	}
	boost, err := s.Booster(n, rep.VddNTV()+0.08)
	if err != nil {
		return nil, err
	}
	es, err := s.EnergySmart(n)
	if err != nil {
		return nil, err
	}
	pc, err := s.PerClusterVdd(n, 0.01)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "baselines",
		Title:   fmt.Sprintf("variation-mitigation baselines at N=%d (NTV schemes) vs STV", n),
		Columns: []string{"scheme", "N", "eff f(GHz)", "power(W)", "GHz/W", "vs naive"},
	}
	for _, p := range []baseline.Point{stv, naive, boost, es, pc} {
		ratio := 1.0
		if naive.EffGHzPerWatt() > 0 {
			ratio = p.EffGHzPerWatt() / naive.EffGHzPerWatt()
		}
		t.AddRow(p.Name, d(p.N), f3(p.Freq), f1(p.Power), f3(p.EffGHzPerWatt()), f2(ratio))
	}
	t.Notes = append(t.Notes,
		"naive NTC clocks every core at the chip's slowest; Booster equalizes f via a second rail; EnergySmart schedules per-cluster f domains",
		"per-cluster-vdd undervolts each cluster toward its own VddMIN: a negative result — safe frequency falls faster than V^2 power, validating the chip-wide VddNTV choice of Section 6.1",
		"Accordion additionally trades problem size against errors — see fig6/fig7 for its operating points")
	if math.IsInf(naive.Freq, 0) {
		return nil, fmt.Errorf("experiments: degenerate naive baseline")
	}
	return []*Table{t}, nil
}
