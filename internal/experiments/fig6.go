package experiments

import (
	"context"
	"fmt"

	"repro/internal/core"
	"repro/internal/power"
	"repro/internal/rms"
)

// paretoTable renders one benchmark's Figure 6/7 row: the Safe and
// Speculative iso-execution-time fronts with the four normalized
// y-axes (MIPS/W, power, problem size, quality) against NNTV/NSTV.
func paretoTable(ctx context.Context, id string, b rms.Benchmark, cfg Config) (*Table, error) {
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pm := power.NewModel(rep)
	qm, err := MeasuredFronts(ctx, b, cfg.Seed)
	if err != nil {
		return nil, err
	}
	solver, err := core.NewSolver(rep, pm, b, qm)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    id,
		Title: fmt.Sprintf("%s: iso-execution-time fronts (NSTV=%d, fSTV=%.2f GHz)", b.Name(), solver.Baseline().N, solver.Baseline().Freq),
		Columns: []string{"flavor", "mode", "prob.size", "N", "f(GHz)", "Perr",
			"N/Nstv", "MIPS/W", "power", "quality", "limit"},
	}
	for _, flavor := range []core.Flavor{core.Safe, core.Speculative} {
		front, err := solver.FrontCtx(ctx, flavor)
		if err != nil {
			return nil, err
		}
		for _, op := range front {
			limit := op.Limit
			if limit == "" {
				limit = "-"
			}
			t.AddRow(flavor.String(), op.Mode.String(), f3(op.ProblemSize),
				d(op.N), f3(op.Freq), e1(op.Perr), f2(op.RelN),
				f2(op.RelMIPSPerWatt), f2(op.RelPower), f2(op.RelQuality), limit)
		}
	}
	t.Notes = append(t.Notes,
		"MIPS/W, power, quality normalized to the STV baseline; Still sits at prob.size=1 where Compress meets Expand")
	return t, nil
}

// Fig6 regenerates Figure 6: iso-execution-time pareto fronts for
// canneal, ferret, bodytrack and x264.
func Fig6(ctx context.Context, cfg Config) ([]*Table, error) {
	var out []*Table
	for _, name := range []string{"canneal", "ferret", "bodytrack", "x264"} {
		b, err := BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		t, err := paretoTable(ctx, "fig6", b, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig7 regenerates Figure 7: the same fronts for hotspot and srad.
func Fig7(ctx context.Context, cfg Config) ([]*Table, error) {
	var out []*Table
	for _, name := range []string{"hotspot", "srad"} {
		b, err := BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		t, err := paretoTable(ctx, "fig7", b, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Headline regenerates the paper's summary claims: the energy-
// efficiency gain at iso-execution time per benchmark (Section 9's
// 1.61-1.87x) and the speculative frequency gain (Section 6.3's 8-41%).
func Headline(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pm := power.NewModel(rep)
	all, err := AllBenchmarks()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "headline",
		Title: "iso-execution-time energy efficiency at the Still point",
		Columns: []string{"benchmark", "safe MIPS/W", "spec MIPS/W",
			"safe f", "spec f", "f gain(%)", "spec quality"},
	}
	minGain, maxGain := 1e9, -1e9
	minEff, maxEff := 1e9, -1e9
	for _, b := range all {
		qm, err := MeasuredFronts(ctx, b, cfg.Seed)
		if err != nil {
			return nil, err
		}
		solver, err := core.NewSolver(rep, pm, b, qm)
		if err != nil {
			return nil, err
		}
		safe, err := solver.Solve(b.DefaultInput(), core.Safe)
		if err != nil {
			return nil, err
		}
		spec, err := solver.Solve(b.DefaultInput(), core.Speculative)
		if err != nil {
			return nil, err
		}
		gain := (spec.Freq/safe.Freq - 1) * 100
		t.AddRow(b.Name(), f2(safe.RelMIPSPerWatt), f2(spec.RelMIPSPerWatt),
			f3(safe.Freq), f3(spec.Freq), f1(gain), f2(spec.RelQuality))
		if gain < minGain {
			minGain = gain
		}
		if gain > maxGain {
			maxGain = gain
		}
		if spec.RelMIPSPerWatt < minEff {
			minEff = spec.RelMIPSPerWatt
		}
		if spec.RelMIPSPerWatt > maxEff {
			maxEff = spec.RelMIPSPerWatt
		}
	}
	// Section 6.3's "8-41% f increase across chip": per-core gain from
	// tolerating a realistic task-level error rate (~1e-8/cycle) over
	// error-free operation.
	vdd := rep.VddNTV()
	minCore, maxCore := 1e9, -1e9
	for i := range rep.Cores {
		g := rep.CoreFreqAtPerr(i, vdd, 1e-8)/rep.CoreFreqAtPerr(i, vdd, 1e-16) - 1
		if g < minCore {
			minCore = g
		}
		if g > maxCore {
			maxCore = g
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("speculative MIPS/W gain spans %.2f-%.2fx (paper: 1.61-1.87x)", minEff, maxEff),
		fmt.Sprintf("Still-point speculative f gain spans %.1f-%.1f%%", minGain, maxGain),
		fmt.Sprintf("per-core speculative f increase spans %.0f-%.0f%% across the chip (paper: 8-41%%)", minCore*100, maxCore*100))
	return []*Table{t}, nil
}
