package experiments

import (
	"context"
	"fmt"

	"repro/internal/rms"
)

// qualityFrontTable renders one benchmark's Figure 2/4 panel: relative
// quality (normalized to the default-input quality) versus relative
// problem size under Default, Drop 1/4 and Drop 1/2.
func qualityFrontTable(ctx context.Context, id string, b rms.Benchmark, cfg Config) (*Table, error) {
	qm, err := MeasuredFronts(ctx, b, cfg.Seed)
	if err != nil {
		return nil, err
	}
	qDef := qm.Default.At(1)
	if qDef <= 0 {
		return nil, fmt.Errorf("experiments: %s default quality %g", b.Name(), qDef)
	}
	t := &Table{
		ID:      id,
		Title:   fmt.Sprintf("%s: quality vs problem size (input: %s)", b.Name(), b.AccordionInput()),
		Columns: []string{"input", "prob.size", "Default", "Drop 1/4", "Drop 1/2"},
	}
	for i := range qm.Default.ProblemSizes {
		t.AddRow(
			f2(qm.Default.Inputs[i]),
			f3(qm.Default.ProblemSizes[i]),
			f3(qm.Default.Quality[i]/qDef),
			f3(qm.Quarter.Quality[i]/qDef),
			f3(qm.Half.Quality[i]/qDef),
		)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("quality metric: %s; threads: %d; quality normalized to the default input's",
			b.QualityMetricName(), b.DefaultThreads()))
	return t, nil
}

// Fig2 regenerates Figure 2: quality of computing versus problem size
// for canneal and hotspot under Default, Drop 1/4 and Drop 1/2.
func Fig2(ctx context.Context, cfg Config) ([]*Table, error) {
	var out []*Table
	for _, name := range []string{"canneal", "hotspot"} {
		b, err := BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		t, err := qualityFrontTable(ctx, "fig2", b, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// Fig4 regenerates Figure 4: the same fronts for ferret, bodytrack,
// x264 and srad.
func Fig4(ctx context.Context, cfg Config) ([]*Table, error) {
	var out []*Table
	for _, name := range []string{"ferret", "bodytrack", "x264", "srad"} {
		b, err := BenchmarkByName(name)
		if err != nil {
			return nil, err
		}
		t, err := qualityFrontTable(ctx, "fig4", b, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}
