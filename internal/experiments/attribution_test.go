package experiments

import (
	"context"
	"math"
	"testing"
)

// TestRunAttribution is the acceptance check at the experiments layer:
// the attributed run's ledger must charge per-core contributions that
// sum to the run's total fault-caused distortion within 1e-9.
func TestRunAttribution(t *testing.T) {
	res, err := RunAttribution(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Bench != "hotspot" || res.Mode != "drop" {
		t.Fatalf("attributed run = %s/%s", res.Bench, res.Mode)
	}
	rep := res.Report
	if rep.Injections == 0 {
		t.Fatal("no injections recorded under Drop 1/4")
	}
	if rep.TotalDistortion <= 0 {
		t.Fatalf("total distortion = %v", rep.TotalDistortion)
	}
	var sum float64
	for _, c := range rep.Cores {
		sum += c.Distortion
		if c.Core < 0 || c.Core >= len(res.Chip.Cores) {
			t.Errorf("report names core %d outside the chip", c.Core)
		}
	}
	if math.Abs(sum-rep.TotalDistortion) > 1e-9 {
		t.Fatalf("per-core sum %v != total %v", sum, rep.TotalDistortion)
	}
	// The report is sorted worst-first and the run is deterministic, so
	// a second run must agree exactly.
	res2, err := RunAttribution(context.Background(), DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Report.Cores) != len(rep.Cores) ||
		res2.Report.TotalDistortion != rep.TotalDistortion {
		t.Fatalf("attribution is not deterministic: %+v vs %+v", res2.Report, rep)
	}
}
