package experiments

import (
	"context"
	"fmt"

	"repro/internal/chip"
	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/telemetry/trace"
)

// AttributionResult bundles one attributed benchmark run: the chip it
// executed on and the fault ledger's aggregated report.
type AttributionResult struct {
	Chip   *chip.Chip
	Bench  string
	Mode   string
	Report fault.Report
}

// RunAttribution executes one benchmark run under the paper's Drop 1/4
// plan on the representative chip with a fault-attribution ledger
// attached, and returns the per-core distortion breakdown: which cores
// the dropped tasks landed on and how much of the final quality loss
// each one caused. The benchmark is hotspot — its grid output maps
// exactly onto the row-band task decomposition, so the value-level
// attribution is precise rather than partitioned.
//
// The reference is the fault-free run at the same input and thread
// count (not the hyper-accurate reference), so the measured distortion
// is exactly the fault-caused loss, and the ledger's per-core
// contributions sum to the report's total within float rounding.
//
// RunAttribution is deliberately not a Registry experiment: it exists
// for the -atlas export path, and the default `all` run's stdout must
// not change.
func RunAttribution(ctx context.Context, cfg Config) (AttributionResult, error) {
	sp := trace.StartFrom(ctx, "experiments.attribution")
	defer sp.End()
	// Like RunMany: a concurrent ResetCaches waits for this run.
	defer holdCaches()()

	ch, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return AttributionResult{}, err
	}
	b, err := BenchmarkByName("hotspot")
	if err != nil {
		return AttributionResult{}, err
	}
	threads := b.DefaultThreads()
	// Engage cores the way the solver does: the most efficient cores at
	// the chip's near-threshold voltage, one per task slot.
	ids := ch.SelectCores(threads, ch.VddNTV(), chip.SelectEfficient)
	if len(ids) < threads {
		threads = len(ids)
	}
	cores := make([]fault.CoreRef, threads)
	for i, id := range ids[:threads] {
		cores[i] = fault.CoreRef{Core: id, Cluster: ch.Cores[id].Cluster}
	}
	led, err := fault.NewLedger(ch.Seed, cores)
	if err != nil {
		return AttributionResult{}, err
	}
	plan := fault.DropQuarter()
	plan.Seed = cfg.Seed
	plan.Ledger = led

	input := b.DefaultInput()
	run, err := b.Run(input, threads, plan, cfg.Seed)
	if err != nil {
		return AttributionResult{}, fmt.Errorf("experiments: attribution run: %w", err)
	}
	ref, err := b.Run(input, threads, fault.Plan{}, cfg.Seed)
	if err != nil {
		return AttributionResult{}, fmt.Errorf("experiments: attribution reference: %w", err)
	}
	if _, err := rms.Attribute(b, run, ref, threads, led); err != nil {
		return AttributionResult{}, err
	}
	return AttributionResult{
		Chip:   ch,
		Bench:  b.Name(),
		Mode:   plan.Mode.String(),
		Report: led.Report(),
	}, nil
}
