package experiments

import (
	"context"
	"fmt"

	"repro/internal/chip"
	"repro/internal/mathx"
)

// Fig5a regenerates Figure 5a: the histogram of per-cluster VddMIN for
// the representative chip, plus the population-level range.
func Fig5a(ctx context.Context, cfg Config) ([]*Table, error) {
	f, err := chip.NewFactory(chip.DefaultConfig())
	if err != nil {
		return nil, err
	}
	rep := f.SampleCtx(ctx, cfg.ChipSeed)
	vmins := rep.ClusterVddMINs()
	counts, edges := mathx.Histogram(vmins, 0.44, 0.60, 8)
	t := &Table{
		ID:      "fig5a",
		Title:   "per-cluster VddMIN histogram (representative chip)",
		Columns: []string{"bin(V)", "clusters"},
	}
	for i, c := range counts {
		t.AddRow(fmt.Sprintf("%.3f-%.3f", edges[i], edges[i+1]), d(c))
	}
	lo, hi := mathx.MinMax(vmins)
	t.Notes = append(t.Notes,
		fmt.Sprintf("per-cluster VddMIN range %.3f-%.3fV (paper: 0.46-0.58V); chip-wide VddNTV=%.3fV", lo, hi, rep.VddNTV()))

	// Population statistics across the Monte-Carlo chips.
	pop, err := f.PopulationCtx(ctx, cfg.ChipSeed, cfg.Chips)
	if err != nil {
		return nil, err
	}
	var all []float64
	for _, ch := range pop {
		all = append(all, ch.ClusterVddMINs()...)
	}
	plo, phi := mathx.MinMax(all)
	t.Notes = append(t.Notes,
		fmt.Sprintf("across %d chips: cluster VddMIN spans %.3f-%.3fV", cfg.Chips, plo, phi))
	return []*Table{t}, nil
}

// Fig5b regenerates Figure 5b: per-cycle timing error rate versus
// frequency for the slowest core of each cluster at VddNTV. The table
// reports, per cluster, the frequencies at the landmark error rates;
// together they trace the 36 curves of the figure.
func Fig5b(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	vdd := rep.VddNTV()
	t := &Table{
		ID:      "fig5b",
		Title:   fmt.Sprintf("slowest-core f at landmark error rates, VddNTV=%.3fV", vdd),
		Columns: []string{"cluster", "f@1e-16", "f@1e-12", "f@1e-8", "f@1e-4", "fmax(Perr~1)"},
	}
	var safe []float64
	below := 0
	for c := 0; c < rep.Cfg.Clusters; c++ {
		s := rep.ClusterSlowestCore(c, vdd)
		f16 := rep.CoreFreqAtPerr(s, vdd, 1e-16)
		f12 := rep.CoreFreqAtPerr(s, vdd, 1e-12)
		t.AddRow(d(c), f3(f16), f3(f12),
			f3(rep.CoreFreqAtPerr(s, vdd, 1e-8)),
			f3(rep.CoreFreqAtPerr(s, vdd, 1e-4)),
			f3(rep.CoreFmax(s, vdd)))
		safe = append(safe, f12)
		if f12 < rep.Cfg.Tech.FNomNTV {
			below++
		}
	}
	lo, hi := mathx.MinMax(safe)
	t.Notes = append(t.Notes,
		fmt.Sprintf("slowest-core f@Perr in [1e-16,1e-12] spans %.2f-%.2f GHz (paper: 0.14-0.72 of the 1 GHz fNOM)", lo, hi),
		fmt.Sprintf("%d of %d clusters cannot reach fNOM error-free (paper: the majority)", below, rep.Cfg.Clusters))
	return []*Table{t}, nil
}
