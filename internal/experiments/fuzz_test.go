package experiments

import (
	"math"
	"strconv"
	"strings"
	"testing"
)

// FuzzFirstFloat throws arbitrary note text plus an arbitrary float at
// the tokenizer and pins its contract: it never panics, a digit-free
// string never matches, a match is always finite (overflowing tokens
// like "1e999" are skipped, "nan"/"inf" words never start a number),
// and embedding a formatted float between non-token delimiters always
// recovers exactly that float.
func FuzzFirstFloat(f *testing.F) {
	f.Add("energy 2.4x at 0.55V", 1.25)
	f.Add("v2metric 1.2.3", -0.0)
	f.Add("", math.MaxFloat64)
	f.Add("no numbers here", 5e-324)
	f.Add("-.5 leading point", -1e17)
	f.Fuzz(func(t *testing.T, s string, v float64) {
		got, ok := FirstFloat(s)
		if ok && (math.IsNaN(got) || math.IsInf(got, 0)) {
			t.Fatalf("FirstFloat(%q) = %v: matches must be finite", s, got)
		}
		if !strings.ContainsAny(s, "0123456789") && ok {
			t.Fatalf("FirstFloat(%q) = %v, true: no digits to match", s, got)
		}
		// Determinism: same input, same answer.
		got2, ok2 := FirstFloat(s)
		if ok != ok2 || math.Float64bits(got) != math.Float64bits(got2) {
			t.Fatalf("FirstFloat(%q) unstable: (%v,%v) then (%v,%v)", s, got, ok, got2, ok2)
		}
		// Exact recovery of a formatted float from delimited context.
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return
		}
		tok := strconv.FormatFloat(v, 'g', -1, 64)
		embedded := "metric = " + tok + " units"
		ev, eok := FirstFloat(embedded)
		if !eok {
			t.Fatalf("FirstFloat(%q) found nothing", embedded)
		}
		if math.Float64bits(ev) != math.Float64bits(v) {
			t.Fatalf("FirstFloat(%q) = %v, want %v", embedded, ev, v)
		}
	})
}
