package experiments

import (
	"context"
	"testing"

	"repro/internal/telemetry"
)

// TestRunManyTelemetry: each runner executed through RunMany records
// one span in its experiments.run.<id> histogram, and the shared model
// caches report their traffic.
func TestRunManyTelemetry(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	results, err := RunMany(context.Background(), DefaultConfig(), []string{"fig1a", "fig1b"})
	if err != nil {
		t.Fatal(err)
	}
	if err := FirstErr(results); err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"fig1a", "fig1b"} {
		h := telemetry.GetHistogram("experiments.run." + id)
		if h.Count() != 1 {
			t.Errorf("experiments.run.%s span count = %d, want 1", id, h.Count())
		}
	}
}

// TestRepresentativeChipCacheTelemetry: the memoized chip sample
// reports a miss on first use and hits afterwards.
func TestRepresentativeChipCacheTelemetry(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	ResetCaches()
	telemetry.Reset() // discard the evictions ResetCaches just recorded
	cfg := DefaultConfig()
	if _, err := RepresentativeChip(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	if _, err := RepresentativeChip(context.Background(), cfg); err != nil {
		t.Fatal(err)
	}
	hits := telemetry.GetCounter("cache.experiments.RepresentativeChip.hits")
	misses := telemetry.GetCounter("cache.experiments.RepresentativeChip.misses")
	if misses.Value() != 1 || hits.Value() != 1 {
		t.Errorf("RepresentativeChip cache hits/misses = %d/%d, want 1/1",
			hits.Value(), misses.Value())
	}
	// Leave the process-wide caches warm but consistent for the other
	// tests in the package.
	ResetCaches()
}
