package experiments

import (
	"context"
	"fmt"

	"repro/internal/chip"
	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/rms"
	"repro/internal/rms/btcmine"
	"repro/internal/sim"
)

// Weakscale regenerates the Section 7 discussion study: the paper notes
// that its RMS benchmarks only approximate weak scaling (per-thread
// work grows with problem size) and that applications strictly
// conforming to weak scaling — it names bitcoin mining — would benefit
// most from Accordion. This experiment runs the proof-of-work kernel
// through the full Accordion pipeline next to canneal.
func Weakscale(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pm := power.NewModel(rep)
	miner := btcmine.New()

	t, err := paretoTable(ctx, "weakscale", miner, cfg)
	if err != nil {
		return nil, err
	}

	// The strict weak-scaling payoff: quality keeps scaling linearly
	// with the expansion (q ~ problem size, no saturation), whereas the
	// RMS benchmarks' quality saturates. Quantify both at the deepest
	// Expand sweep point.
	qmM, err := MeasuredFronts(ctx, miner, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sM, err := core.NewSolver(rep, pm, miner, qmM)
	if err != nil {
		return nil, err
	}
	cb, err := BenchmarkByName("canneal")
	if err != nil {
		return nil, err
	}
	qmC, err := MeasuredFronts(ctx, cb, cfg.Seed)
	if err != nil {
		return nil, err
	}
	sC, err := core.NewSolver(rep, pm, cb, qmC)
	if err != nil {
		return nil, err
	}
	deepQuality := func(s *core.Solver) (ps, q float64, err error) {
		front, err := s.FrontCtx(ctx, core.Safe)
		if err != nil {
			return 0, 0, err
		}
		last := front[len(front)-1]
		return last.ProblemSize, last.RelQuality, nil
	}
	psM, qM, err := deepQuality(sM)
	if err != nil {
		return nil, err
	}
	psC, qC, err := deepQuality(sC)
	if err != nil {
		return nil, err
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("quality return on expansion (Q gain per unit problem size): btcmine %.2f/%.2fx = %.2f vs canneal %.2f/%.2fx = %.2f — the strict weak-scaling app converts expansion into quality without saturating (paper Section 7)",
			qM, psM, qM/psM, qC, psC, qC/psC))
	return []*Table{t}, nil
}

// Dynamic regenerates the runtime-orchestration study the paper's
// Section 7 leaves open: per-core resiliency drifts during execution
// (thermal sinusoids plus an aging ramp) and the core assignment either
// stays fixed (the paper's whole-execution allocation) or is re-solved
// whenever the engaged set misses the required compute rate.
func Dynamic(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pm := power.NewModel(rep)
	const epochs = 96
	t := &Table{
		ID:    "dynamic",
		Title: fmt.Sprintf("static vs dynamic core assignment under Vth drift (%d epochs)", epochs),
		Columns: []string{"required rate(GHz)", "schedule", "missed epochs", "reconfigs",
			"core swaps", "mean N", "mean f(GHz)", "mean power(W)"},
	}
	for _, rate := range []float64{25, 40, 55} {
		ctl, err := core.NewController(rep, pm, core.DefaultDrift(), rate)
		if err != nil {
			return nil, err
		}
		for _, dynamic := range []bool{false, true} {
			stats, err := ctl.Run(epochs, dynamic)
			if err != nil {
				return nil, err
			}
			name := "static"
			if dynamic {
				name = "dynamic"
			}
			meanN := 0.0
			for _, e := range stats.Epochs {
				meanN += float64(e.N)
			}
			meanN /= float64(len(stats.Epochs))
			t.AddRow(f1(rate), name, d(stats.MissedEpochs), d(stats.Reconfigs),
				d(stats.TotalSwaps), f1(meanN), f3(stats.MeanFreq), f1(stats.MeanPower))
		}
	}
	t.Notes = append(t.Notes,
		"drift: 10 mV thermal sinusoids + 0.12 mV/epoch aging; dynamic re-plans only on a rate miss",
		"the paper fixes the assignment for the whole execution (Section 7); re-planning eliminates the misses for ~4-8% more power")
	return []*Table{t}, nil
}

// Population regenerates the Monte-Carlo dimension of the paper's
// methodology (Table 2's "sample size: 100 chips"): the distribution of
// VddNTV, the STV baseline, and the Still-point efficiency gain across
// chip samples.
func Population(ctx context.Context, cfg Config) ([]*Table, error) {
	factory, err := chip.NewFactory(chip.DefaultConfig())
	if err != nil {
		return nil, err
	}
	n := cfg.Chips
	if n < 2 {
		n = 2
	}
	cb, err := BenchmarkByName("canneal")
	if err != nil {
		return nil, err
	}
	qm, err := MeasuredFronts(ctx, cb, cfg.Seed)
	if err != nil {
		return nil, err
	}
	// One draw+solve per Monte-Carlo chip, fanned out on the pool: chip
	// i's seed depends only on (ChipSeed, i) and results land at their
	// index, so the statistics match a sequential scan exactly.
	type chipStats struct {
		vddNTV, nstv, eff, fGHz float64
	}
	stats, err := parallel.MapCtx(ctx, n, func(wctx context.Context, i int) (chipStats, error) {
		ch := factory.SampleCtx(wctx, mathx.SplitSeed(cfg.ChipSeed, int64(i)))
		pm := power.NewModel(ch)
		solver, err := core.NewSolver(ch, pm, cb, qm)
		if err != nil {
			return chipStats{}, err
		}
		op, err := solver.Solve(cb.DefaultInput(), core.Speculative)
		if err != nil {
			return chipStats{}, err
		}
		return chipStats{ch.VddNTV(), float64(solver.Baseline().N), op.RelMIPSPerWatt, op.Freq}, nil
	})
	if err != nil {
		return nil, err
	}
	var vddNTV, nstv, eff, fGHz []float64
	for _, s := range stats {
		vddNTV = append(vddNTV, s.vddNTV)
		nstv = append(nstv, s.nstv)
		eff = append(eff, s.eff)
		fGHz = append(fGHz, s.fGHz)
	}
	t := &Table{
		ID:      "population",
		Title:   fmt.Sprintf("chip-to-chip variation across %d sampled chips (canneal Still point, Speculative)", n),
		Columns: []string{"quantity", "min", "p50", "max"},
	}
	row := func(name string, xs []float64) {
		lo, hi := mathx.MinMax(xs)
		t.AddRow(name, f3(lo), f3(mathx.Percentile(xs, 50)), f3(hi))
	}
	row("VddNTV (V)", vddNTV)
	row("NSTV (cores)", nstv)
	row("Still-point f (GHz)", fGHz)
	row("MIPS/W gain vs STV", eff)
	t.Notes = append(t.Notes,
		"every chip sustains the STV execution time at NTV with an efficiency gain; the spread quantifies manufacturing luck")
	return []*Table{t}, nil
}

// VddSweep quantifies Section 2's premise that "power savings increase
// with the proximity of the near-threshold Vdd to Vth": the Still-point
// iso-execution-time efficiency as the designated operating voltage
// rises from the chip's VddNTV toward super-threshold.
func VddSweep(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	pm := power.NewModel(rep)
	cb, err := BenchmarkByName("canneal")
	if err != nil {
		return nil, err
	}
	qm, err := MeasuredFronts(ctx, cb, cfg.Seed)
	if err != nil {
		return nil, err
	}
	solver, err := core.NewSolver(rep, pm, cb, qm)
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "vddsweep",
		Title:   fmt.Sprintf("canneal Still point vs operating Vdd (chip VddNTV=%.3f V)", rep.VddNTV()),
		Columns: []string{"Vdd(V)", "N", "f(GHz)", "power(W)", "MIPS/W vs STV"},
	}
	best, bestVdd := 0.0, 0.0
	for vdd := rep.VddNTV(); vdd <= 0.781; vdd += 0.04 {
		if err := solver.SetVdd(vdd); err != nil {
			return nil, err
		}
		op, err := solver.Solve(cb.DefaultInput(), core.Safe)
		if err != nil {
			return nil, err
		}
		t.AddRow(f3(vdd), d(op.N), f3(op.Freq), f1(op.Power), f2(op.RelMIPSPerWatt))
		if op.RelMIPSPerWatt > best {
			best, bestVdd = op.RelMIPSPerWatt, vdd
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("efficiency peaks at Vdd=%.3f V (%.2fx) — the closest functional voltage to Vth wins, the NTC premise of Section 2", bestVdd, best))
	return []*Table{t}, nil
}

// CPI validates the analytic performance model against the trace-driven
// microarchitectural simulation: for every kernel, the declared
// WorkProfile is compared with the CPI and miss rates measured by
// running the kernel's reference memory mix through Table 2's cache
// hierarchy at the NTV and STV frequencies.
func CPI(ctx context.Context, cfg Config) ([]*Table, error) {
	all, err := AllBenchmarks()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:    "cpi",
		Title: "trace-driven CPI vs the analytic work profiles (Table 2 hierarchy)",
		Columns: []string{"benchmark", "mix", "L1 miss/op (sim)", "miss/op (model)",
			"CPI@1GHz (sim)", "CPI@1GHz (model)", "CPI@3.5GHz (sim)", "CPI@3.5GHz (model)"},
	}
	const instructions = 300000
	for _, b := range all {
		spec := b.Trace()
		w := b.Profile()
		slow, err := sim.SimulateCore(spec, instructions, 1.0)
		if err != nil {
			return nil, err
		}
		fast, err := sim.SimulateCore(spec, instructions, 3.5)
		if err != nil {
			return nil, err
		}
		t.AddRow(b.Name(), spec.Kind.String(),
			fmt.Sprintf("%.2e", slow.MissPerOp), fmt.Sprintf("%.2e", w.MissPerOp),
			f2(slow.CPI), f2(1/w.IPC(1.0)), f2(fast.CPI), f2(1/w.IPC(3.5)))
	}
	t.Notes = append(t.Notes,
		"the analytic model the iso-time solver uses abstracts exactly this: sparse long-latency misses whose cycle cost grows with frequency",
		"memory-bound CPI at STV frequency exceeds its NTV value — the memory wall that softens NTC's frequency handicap")
	return []*Table{t}, nil
}

// CorruptionWide extends the Section 6.2 validation study from canneal
// to the whole suite: quality retention under Drop versus the harshest
// bit-corruption mode (random flip) at 1/4 of the tasks infected. The
// paper's claim — Drop conservatively bounds the benign error
// manifestations — must hold (or visibly break into the "excessive
// corruption" bin) for every kernel.
func CorruptionWide(ctx context.Context, cfg Config) ([]*Table, error) {
	all, err := AllBenchmarks()
	if err != nil {
		return nil, err
	}
	t := &Table{
		ID:      "corruptionwide",
		Title:   "quality vs nominal under Drop 1/4 and Flip 1/4, all kernels",
		Columns: []string{"benchmark", "drop 1/4", "flip 1/4", "stuck-all-0 1/4", "verdict"},
	}
	for _, b := range all {
		ref, err := rms.ReferenceCtx(ctx, b, cfg.Seed)
		if err != nil {
			return nil, err
		}
		nominal, err := b.Run(b.DefaultInput(), b.DefaultThreads(), fault.Plan{}, cfg.Seed)
		if err != nil {
			return nil, err
		}
		qNom, err := b.Quality(nominal, ref)
		if err != nil {
			return nil, err
		}
		rel := func(mode fault.Mode) (float64, error) {
			plan, err := fault.NewPlan(mode, 1, 4, cfg.Seed)
			if err != nil {
				return 0, err
			}
			res, err := b.Run(b.DefaultInput(), b.DefaultThreads(), plan, cfg.Seed)
			if err != nil {
				return 0, err
			}
			q, err := b.Quality(res, ref)
			if err != nil {
				return 0, err
			}
			if qNom == 0 {
				return 0, nil
			}
			return q / qNom, nil
		}
		drop, err := rel(fault.Drop)
		if err != nil {
			return nil, err
		}
		flip, err := rel(fault.Flip)
		if err != nil {
			return nil, err
		}
		stuck, err := rel(fault.StuckAll0)
		if err != nil {
			return nil, err
		}
		verdict := "corruption bounded by Drop"
		if flip < drop || stuck < drop {
			verdict = "excessive corruption (paper's bin ii: CC guard territory)"
		}
		t.AddRow(b.Name(), f3(drop), f3(flip), f3(stuck), verdict)
	}
	t.Notes = append(t.Notes,
		"values are quality relative to the fault-free run at the default problem size",
		"Section 6.3: corruption modes either stay at/above Drop or degrade excessively and are binned under manifestation (ii), which the CC's preset quality limits catch (core.RuntimeConfig.ResultGuard)")
	return []*Table{t}, nil
}

// CCRatio regenerates the Section 4.2 design-space discussion: "the
// number of CCs may easily become a bottleneck; depending on the
// application, a higher or a lower CC to DC ratio may be favorable."
// A fixed 256-task job runs on 64 data cores while the control-core
// count sweeps; per-mailbox housekeeping work makes undersized CC
// provisioning stretch the polling loop and the makespan.
func CCRatio(ctx context.Context, cfg Config) ([]*Table, error) {
	rep, err := RepresentativeChip(ctx, cfg)
	if err != nil {
		return nil, err
	}
	vdd := rep.VddNTV()
	engaged := rep.SelectCores(64, vdd, chip.SelectEfficient)
	fData := rep.SetFreq(engaged, vdd, 1e-8)
	fCC := 0.0
	for i := range rep.Cores {
		if f := rep.CoreSafeFreq(i, vdd); f > fCC {
			fCC = f
		}
	}
	t := &Table{
		ID:      "ccratio",
		Title:   fmt.Sprintf("CC:DC ratio vs makespan (64 DCs @ %.3f GHz, CC @ %.3f GHz)", fData, fCC),
		Columns: []string{"CCs", "DCs per CC", "makespan(ms)", "vs best"},
	}
	type res struct {
		ccs  int
		time float64
	}
	var results []res
	best := 1e18
	for _, ccs := range []int{1, 2, 4, 8, 16, 32} {
		rt, err := core.NewRuntime(core.RuntimeConfig{
			Org: core.HeterogeneousClusters, NumCC: ccs, NumDC: 64,
			DataFreq: fData, CtrlFreq: fCC,
			TaskOps: 4e6, NumTasks: 512,
			PollEvery: 0.5e-3, Watchdog: 60e-3,
			PollOps: 4e5,
		})
		if err != nil {
			return nil, err
		}
		shared := core.NewSharedRegion([]float64{1})
		stats, err := rt.Run(shared.View(), func(task int, in core.ReadOnlyView) float64 { return 1 })
		if err != nil {
			return nil, err
		}
		if stats.TasksDone != 512 {
			return nil, fmt.Errorf("experiments: ccratio run finished %d of 512 tasks", stats.TasksDone)
		}
		results = append(results, res{ccs, stats.Time})
		if stats.Time < best {
			best = stats.Time
		}
	}
	for _, r := range results {
		t.AddRow(d(r.ccs), f1(float64(64)/float64(r.ccs)), f1(r.time*1e3), f2(r.time/best))
	}
	t.Notes = append(t.Notes,
		"each mailbox check costs CC cycles; one CC sweeping 64 DCs polls late and starves the task queue (Section 4.2's bottleneck)",
		"beyond the knee, extra CCs buy nothing — the favorable CC:DC ratio is workload-dependent, as the paper notes")
	return []*Table{t}, nil
}
