package history

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/converge"
	"repro/internal/provenance"
	"repro/internal/telemetry"
)

// This file maps every existing observability surface into the flat
// metric namespace a Record trends:
//
//	counter.<name>                      telemetry counters
//	gauge.<name>                        telemetry gauges
//	hist.<name>.{count,mean,p50,p95,p99,max}
//	win.<name>.<horizon>.{count,rate_per_sec,error_rate,p50,p95,p99}
//	cache.<name>.hit_rate               derived from cache.<name>.{hits,misses}
//	converge.<series>.{count,mean,std,ci95}
//	runner.<id>.wall_ms                 provenance runner timings
//	bench.<dotted json path>            numeric leaves of a BENCH_*.json blob
//
// The names are data, not code: they are record map keys, so the
// analysis catalog governs only the history.* self-accounting metrics
// this package emits through telemetry, not the harvested namespace.

// AddTelemetry folds a telemetry snapshot into the record.
func (r *Record) AddTelemetry(snap telemetry.Snapshot) {
	for _, c := range snap.Counters {
		r.Set("counter."+c.Name, float64(c.Value))
	}
	for _, g := range snap.Gauges {
		r.Set("gauge."+g.Name, float64(g.Value))
	}
	for _, h := range snap.Histograms {
		if h.Count == 0 {
			continue
		}
		base := "hist." + h.Name + "."
		r.Set(base+"count", float64(h.Count))
		r.Set(base+"mean", h.Mean)
		r.Set(base+"p50", float64(h.P50))
		r.Set(base+"p95", float64(h.P95))
		r.Set(base+"p99", float64(h.P99))
		r.Set(base+"max", float64(h.Max))
	}
	for _, w := range snap.Windows {
		for _, h := range w.Horizons {
			if h.Count == 0 {
				continue
			}
			base := "win." + w.Name + "." + h.Label + "."
			r.Set(base+"count", float64(h.Count))
			r.Set(base+"rate_per_sec", h.RatePerSec)
			r.Set(base+"error_rate", h.ErrorRate)
			r.Set(base+"p50", float64(h.P50))
			r.Set(base+"p95", float64(h.P95))
			r.Set(base+"p99", float64(h.P99))
		}
	}
	r.addCacheRates(snap)
}

// addCacheRates derives cache.<name>.hit_rate from the hit/miss
// counter pairs the memo caches maintain.
func (r *Record) addCacheRates(snap telemetry.Snapshot) {
	hits := map[string]int64{}
	misses := map[string]int64{}
	for _, c := range snap.Counters {
		if name, ok := strings.CutSuffix(c.Name, ".hits"); ok && strings.HasPrefix(name, "cache.") {
			hits[name] = c.Value
		}
		if name, ok := strings.CutSuffix(c.Name, ".misses"); ok && strings.HasPrefix(name, "cache.") {
			misses[name] = c.Value
		}
	}
	for name, h := range hits {
		if total := h + misses[name]; total > 0 {
			r.Set(name+".hit_rate", float64(h)/float64(total))
		}
	}
}

// AddConvergence folds a converge snapshot into the record. CI95 is
// recorded only once it is finite (two observations).
func (r *Record) AddConvergence(snap converge.Snapshot) {
	for _, s := range snap.Series {
		if s.Count == 0 {
			continue
		}
		base := "converge." + s.Name + "."
		r.Set(base+"count", float64(s.Count))
		r.Set(base+"mean", s.Mean)
		if s.Count >= 2 {
			r.Set(base+"std", s.Std)
			r.Set(base+"ci95", s.CI95)
		}
	}
}

// AddManifest folds a provenance manifest into the record: run
// identity (VCS revision, dirty flag, wall time, argv), per-runner
// wall times, and cache hit rates.
func (r *Record) AddManifest(m *provenance.Manifest) {
	if m == nil {
		return
	}
	if m.VCSRevision != "" {
		r.VCSRevision = m.VCSRevision
		r.VCSDirty = m.VCSModified
	}
	if m.WallMs > 0 {
		r.WallMs = m.WallMs
	}
	if len(m.Args) > 0 {
		r.Args = append([]string(nil), m.Args...)
	}
	for _, run := range m.Runners {
		if run.Error == "" {
			r.Set("runner."+run.ID+".wall_ms", float64(run.WallMs))
		}
	}
	for _, c := range m.Caches {
		if c.Hits+c.Misses > 0 {
			r.Set("cache."+c.Name+".hit_rate", c.HitRate)
		}
	}
}

// AddBenchJSON folds one BENCH_*.json document into the record. The
// top-level identity keys the bench harnesses stamp (vcs_revision,
// vcs_dirty, gomaxprocs) are lifted into the record's identity fields;
// every numeric leaf elsewhere lands under "bench." with its dotted
// path. Booleans become 0/1 so gates can trend them; strings and
// nulls carry no trendable value and are skipped.
func (r *Record) AddBenchJSON(data []byte) error {
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("history: bench blob: %w", err)
	}
	if rev, ok := doc["vcs_revision"].(string); ok && rev != "" {
		r.VCSRevision = rev
	}
	if dirty, ok := doc["vcs_dirty"].(bool); ok {
		r.VCSDirty = dirty
	}
	if gmp, ok := doc["gomaxprocs"].(float64); ok && gmp > 0 && !math.IsInf(gmp, 0) {
		r.GOMAXPROCS = int(gmp)
	}
	for _, k := range sortedKeys(doc) {
		switch k {
		case "vcs_revision", "vcs_dirty", "gomaxprocs":
			continue
		}
		flattenJSON(r, "bench."+k, doc[k])
	}
	return nil
}

// flattenJSON walks one JSON value, recording numeric leaves under
// dotted paths and array elements under numeric indices.
func flattenJSON(r *Record, path string, v any) {
	switch v := v.(type) {
	case float64:
		r.Set(path, v)
	case bool:
		if v {
			r.Set(path, 1)
		} else {
			r.Set(path, 0)
		}
	case map[string]any:
		for _, k := range sortedKeys(v) {
			flattenJSON(r, path+"."+k, v[k])
		}
	case []any:
		for i, el := range v {
			flattenJSON(r, fmt.Sprintf("%s.%d", path, i), el)
		}
	}
}

func sortedKeys(m map[string]any) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
