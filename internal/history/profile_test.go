package history

import (
	"errors"
	"testing"
)

// TestProfileDisabledOverhead pins the hot-path contract the
// acceptance criteria name: with the zero ProfileOptions the hook is
// a direct call — no profiler, no buffers, zero allocations — so
// wiring CaptureProfile around experiments.RunMany costs nothing
// unless -selfprofile is set.
func TestProfileDisabledOverhead(t *testing.T) {
	calls := 0
	fn := func() error { calls++; return nil }
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := CaptureProfile(ProfileOptions{}, fn); err != nil {
			t.Fatal(err)
		}
	})
	if calls == 0 {
		t.Fatal("fn never called")
	}
	if allocs != 0 {
		t.Errorf("disabled CaptureProfile allocates %.1f per call, want 0", allocs)
	}
}

// TestProfileDisabledPassesError pins that the pass-through path
// returns fn's error untouched and no summary.
func TestProfileDisabledPassesError(t *testing.T) {
	want := errors.New("run failed")
	sum, err := CaptureProfile(ProfileOptions{}, func() error { return want })
	if !errors.Is(err, want) || sum != nil {
		t.Errorf("got sum=%v err=%v", sum, err)
	}
}

// TestCaptureProfileHeap pins the enabled path end to end on the heap
// dimension (deterministic, unlike CPU sampling on a quiet 1-core
// runner): run an allocation-heavy fn, parse the capture, and require
// nonzero attributed bytes.
func TestCaptureProfileHeap(t *testing.T) {
	sum, err := CaptureProfile(ProfileOptions{Heap: true, TopN: 8}, func() error {
		churn(1 << 16)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum == nil || len(sum.Heap) == 0 || sum.HeapTotalBytes <= 0 {
		t.Fatalf("heap summary = %+v", sum)
	}
	if len(sum.Heap) > 8 {
		t.Errorf("TopN not applied: %d hotspots", len(sum.Heap))
	}
	for _, h := range sum.Heap {
		if h.Func == "" {
			t.Errorf("unnamed hotspot %+v", h)
		}
	}
}

// TestCaptureProfileCPURuns pins that the CPU bracket runs and
// returns without error; whether samples land depends on the host's
// timer, so only the structural outcome is asserted.
func TestCaptureProfileCPURuns(t *testing.T) {
	sum, err := CaptureProfile(ProfileOptions{CPU: true}, func() error {
		x := 0.0
		for i := 0; i < 1_000_000; i++ {
			x += float64(i % 7)
		}
		if x < 0 {
			t.Error("unreachable")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if sum == nil {
		t.Fatal("nil summary from enabled capture")
	}
}

// TestCaptureProfileKeepsRunError pins that fn's failure wins over
// any profiling complaint.
func TestCaptureProfileKeepsRunError(t *testing.T) {
	want := errors.New("experiment exploded")
	sum, err := CaptureProfile(ProfileOptions{Heap: true}, func() error { return want })
	if !errors.Is(err, want) {
		t.Errorf("err = %v, want the run error", err)
	}
	_ = sum
}
