package history

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// Handler serves the store over GET /historyz. The default rendering
// is JSON ({"records": [...]}); ?format=html renders the trend report
// page and ?format=text the terminal report. ?last=K bounds how many
// trailing records are returned or trended (default 50).
func Handler(s Store) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		recs, err := s.Load()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		last := 50
		if q := r.URL.Query().Get("last"); q != "" {
			n, err := strconv.Atoi(q)
			if err != nil || n <= 0 {
				http.Error(w, "bad last parameter", http.StatusBadRequest)
				return
			}
			last = n
		}
		switch r.URL.Query().Get("format") {
		case "", "json":
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set("Cache-Control", "no-cache")
			doc := struct {
				Count   int      `json:"count"`
				Records []Record `json:"records"`
			}{Count: len(recs), Records: Tail(recs, last)}
			if doc.Records == nil {
				doc.Records = []Record{}
			}
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			if err := enc.Encode(doc); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "html":
			if len(recs) == 0 {
				http.Error(w, "history: no records yet", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/html; charset=utf-8")
			if err := WriteHTMLReport(w, recs, ReportOptions{LastK: last}); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		case "text":
			if len(recs) == 0 {
				http.Error(w, "history: no records yet", http.StatusNotFound)
				return
			}
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			if err := WriteTextReport(w, recs, ReportOptions{LastK: last}); err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
			}
		default:
			http.Error(w, "unknown format (want json, html, or text)", http.StatusBadRequest)
		}
	})
}

// DisabledHandler serves the endpoint shape when the daemon runs
// without a -history directory: a 503 naming the flag, so scrapers
// get an explanation instead of a 404.
func DisabledHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "history disabled: start accordiond with -history DIR", http.StatusServiceUnavailable)
	})
}
