package history

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func handlerStore(t *testing.T) Store {
	t.Helper()
	st := Store{Dir: t.TempDir()}
	for _, r := range goldenRecords() {
		if err := st.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func get(t *testing.T, h http.Handler, target string) *httptest.ResponseRecorder {
	t.Helper()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", target, nil))
	return rec
}

func TestHandlerJSON(t *testing.T) {
	h := Handler(handlerStore(t))
	rec := get(t, h, "/historyz")
	if rec.Code != 200 || !strings.Contains(rec.Header().Get("Content-Type"), "json") {
		t.Fatalf("code=%d ct=%q", rec.Code, rec.Header().Get("Content-Type"))
	}
	var doc struct {
		Count   int      `json:"count"`
		Records []Record `json:"records"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 6 || len(doc.Records) != 6 {
		t.Errorf("count=%d records=%d, want 6/6", doc.Count, len(doc.Records))
	}
	if doc.Records[len(doc.Records)-1].Profile == nil {
		t.Error("profile lost in transport")
	}

	rec = get(t, h, "/historyz?last=2")
	if err := json.Unmarshal(rec.Body.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Count != 6 || len(doc.Records) != 2 {
		t.Errorf("last=2: count=%d records=%d", doc.Count, len(doc.Records))
	}
}

func TestHandlerHTMLAndText(t *testing.T) {
	h := Handler(handlerStore(t))
	rec := get(t, h, "/historyz?format=html")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "<svg") {
		t.Errorf("html: code=%d body=%.120s", rec.Code, rec.Body.String())
	}
	rec = get(t, h, "/historyz?format=text")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "== run history") {
		t.Errorf("text: code=%d body=%.120s", rec.Code, rec.Body.String())
	}
}

func TestHandlerBadInput(t *testing.T) {
	h := Handler(handlerStore(t))
	if rec := get(t, h, "/historyz?format=yaml"); rec.Code != 400 {
		t.Errorf("format=yaml: code=%d", rec.Code)
	}
	if rec := get(t, h, "/historyz?last=zero"); rec.Code != 400 {
		t.Errorf("last=zero: code=%d", rec.Code)
	}
}

func TestHandlerEmptyStore(t *testing.T) {
	h := Handler(Store{Dir: t.TempDir()})
	rec := get(t, h, "/historyz")
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "\"records\": []") {
		t.Errorf("empty json: code=%d body=%s", rec.Code, rec.Body.String())
	}
	if rec := get(t, h, "/historyz?format=html"); rec.Code != 404 {
		t.Errorf("empty html: code=%d", rec.Code)
	}
}

func TestDisabledHandler(t *testing.T) {
	rec := get(t, DisabledHandler(), "/historyz")
	if rec.Code != 503 || !strings.Contains(rec.Body.String(), "-history") {
		t.Errorf("code=%d body=%q", rec.Code, rec.Body.String())
	}
}
