package history

import "strings"

// Sense is a metric's bad direction: which way a move counts as a
// regression. Metrics with no registered sense are never gated — a
// number that is neither good nor bad going up (a count of requests,
// a seed) would otherwise page on every workload change.
type Sense int

const (
	// UpIsBad flags increases: latencies, allocations, error rates.
	UpIsBad Sense = iota
	// DownIsBad flags decreases: throughput, hit rates, speedups.
	DownIsBad
)

func (s Sense) String() string {
	if s == DownIsBad {
		return "down"
	}
	return "up"
}

// Direction binds a metric-name pattern to its bad sense. Pattern is
// a '*' glob where the wildcard matches any run of characters,
// including dots — "hist.*.p99" covers every histogram's p99.
type Direction struct {
	Pattern string
	Worse   Sense
}

// DefaultDirections is the repository's gated-metric table. Each
// family maps to a surface the harvesters produce (harvest.go
// documents the namespace); TestDirectionsCoverHarvest pins that
// every pattern still matches at least one harvested metric so the
// table cannot silently go stale.
func DefaultDirections() []Direction {
	return []Direction{
		// Telemetry histograms: latency-shaped, up is bad.
		{"hist.*.mean", UpIsBad},
		{"hist.*.p50", UpIsBad},
		{"hist.*.p95", UpIsBad},
		{"hist.*.p99", UpIsBad},
		// Rolling-window readouts served by /telemetryz.
		{"win.*.p99", UpIsBad},
		{"win.*.error_rate", UpIsBad},
		// Memo caches: a falling hit rate means recomputation.
		{"cache.*.hit_rate", DownIsBad},
		// Monte-Carlo noise: a wider CI at the same draw count means
		// the estimator got worse.
		{"converge.*.ci95", UpIsBad},
		// Per-runner and whole-run wall time from the manifest.
		{"runner.*.wall_ms", UpIsBad},
		// go test -bench leaves harvested from BENCH_*.json.
		{"bench.*ns_op", UpIsBad},
		{"bench.*allocs_op", UpIsBad},
		{"bench.*bytes_op", UpIsBad},
		{"bench.*.speedup", DownIsBad},
		// accordiond load-generator sweep results.
		{"bench.sweep.*_ms", UpIsBad},
		{"bench.sweep.throughput_rps", DownIsBad},
		{"bench.*hit_rate", DownIsBad},
	}
}

// senseOf returns the first matching direction for the metric name.
func senseOf(name string, dirs []Direction) (Sense, bool) {
	for _, d := range dirs {
		if globMatch(d.Pattern, name) {
			return d.Worse, true
		}
	}
	return 0, false
}

// globMatch reports whether name matches pattern, where '*' matches
// any run of characters (dots included). Linear greedy match with
// backtracking over literal segments.
func globMatch(pattern, name string) bool {
	segs := strings.Split(pattern, "*")
	if len(segs) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, segs[0]) {
		return false
	}
	rest := name[len(segs[0]):]
	for _, seg := range segs[1 : len(segs)-1] {
		i := strings.Index(rest, seg)
		if i < 0 {
			return false
		}
		rest = rest[i+len(seg):]
	}
	return strings.HasSuffix(rest, segs[len(segs)-1])
}
