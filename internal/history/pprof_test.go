package history

import (
	"bytes"
	"math"
	"runtime/pprof"
	"testing"
)

// Protobuf encoding helpers for building a synthetic profile.proto
// blob with known sample weights, so the flat/cum arithmetic is
// pinned against hand-computed percentages rather than whatever the
// runtime happened to sample.

func pbVarint(dst []byte, tag int, v uint64) []byte {
	dst = append(dst, byte(tag<<3))
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

func pbBytes(dst []byte, tag int, sub []byte) []byte {
	dst = append(dst, byte(tag<<3|2))
	dst = pbLen(dst, uint64(len(sub)))
	return append(dst, sub...)
}

func pbLen(dst []byte, v uint64) []byte {
	for v >= 0x80 {
		dst = append(dst, byte(v)|0x80)
		v >>= 7
	}
	return append(dst, byte(v))
}

// syntheticProfile builds a two-sample profile:
//
//	sample A: stack [leaf=f1, f2], value 75
//	sample B: stack [leaf=f2, f2]  (recursion), value 25
//
// so flat is f1 75%, f2 25%, and cum is f1 75%, f2 100% — with the
// recursive frame deduplicated, not double-counted.
func syntheticProfile(t *testing.T, packed bool) []byte {
	t.Helper()
	strtab := []string{"", "cpu", "nanoseconds", "pkg.f1", "pkg.f2"}

	var vt []byte // ValueType{type: "cpu"}
	vt = pbVarint(vt, 1, 1)
	vt = pbVarint(vt, 2, 2)

	fn := func(id, nameIdx uint64) []byte {
		var b []byte
		b = pbVarint(b, 1, id)
		b = pbVarint(b, 2, nameIdx)
		return b
	}
	loc := func(id, fnID uint64) []byte {
		var line []byte
		line = pbVarint(line, 1, fnID)
		var b []byte
		b = pbVarint(b, 1, id)
		b = pbBytes(b, 4, line)
		return b
	}
	sample := func(locs []uint64, value uint64) []byte {
		var b []byte
		if packed {
			var pk []byte
			for _, l := range locs {
				pk = pbLen(pk, l)
			}
			b = pbBytes(b, 1, pk)
			var pv []byte
			pv = pbLen(pv, value)
			b = pbBytes(b, 2, pv)
		} else {
			for _, l := range locs {
				b = pbVarint(b, 1, l)
			}
			b = pbVarint(b, 2, value)
		}
		return b
	}

	var p []byte
	p = pbBytes(p, 1, vt)
	p = pbBytes(p, 2, sample([]uint64{1, 2}, 75))    // f1 leaf, f2 caller
	p = pbBytes(p, 2, sample([]uint64{2, 2, 1}, 25)) // f2 recursing under f1
	p = pbBytes(p, 4, loc(1, 10))
	p = pbBytes(p, 4, loc(2, 11))
	p = pbBytes(p, 5, fn(10, 3))
	p = pbBytes(p, 5, fn(11, 4))
	for _, s := range strtab {
		p = pbBytes(p, 6, []byte(s))
	}
	return p
}

func checkSyntheticHotspots(t *testing.T, data []byte) {
	t.Helper()
	prof, err := parseProfile(data)
	if err != nil {
		t.Fatal(err)
	}
	idx := prof.valueIndex([]string{"cpu"})
	if idx != 0 {
		t.Fatalf("valueIndex = %d, want 0", idx)
	}
	spots, total := prof.hotspots(idx, 10)
	if total != 100 {
		t.Fatalf("total = %d, want 100", total)
	}
	if len(spots) != 2 {
		t.Fatalf("hotspots = %+v, want 2", spots)
	}
	f1, f2 := spots[0], spots[1]
	if f1.Func != "pkg.f1" || math.Abs(f1.FlatPct-75) > 1e-9 || math.Abs(f1.CumPct-100) > 1e-9 {
		t.Errorf("f1 = %+v, want flat 75 cum 100", f1)
	}
	if f2.Func != "pkg.f2" || math.Abs(f2.FlatPct-25) > 1e-9 || math.Abs(f2.CumPct-100) > 1e-9 {
		t.Errorf("f2 = %+v, want flat 25 cum 100 (recursion deduplicated)", f2)
	}
}

func TestParseSyntheticProfileUnpacked(t *testing.T) {
	checkSyntheticHotspots(t, syntheticProfile(t, false))
}

func TestParseSyntheticProfilePacked(t *testing.T) {
	checkSyntheticHotspots(t, syntheticProfile(t, true))
}

// TestParseRealHeapProfile round-trips an actual runtime/pprof
// "allocs" capture (gzipped protobuf) through the parser: the wire
// format the stdlib emits today must decode, name functions from this
// module, and attribute nonzero alloc_space.
func TestParseRealHeapProfile(t *testing.T) {
	churn(1 << 16)
	var buf bytes.Buffer
	if err := pprof.Lookup("allocs").WriteTo(&buf, 0); err != nil {
		t.Fatal(err)
	}
	prof, err := parseProfile(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	idx := prof.valueIndex([]string{"alloc_space"})
	spots, total := prof.hotspots(idx, 10)
	if total <= 0 || len(spots) == 0 {
		t.Fatalf("real profile yielded total=%d spots=%d", total, len(spots))
	}
	for _, h := range spots {
		if h.Func == "" || h.FlatPct < 0 || h.CumPct < h.FlatPct-1e-9 {
			t.Errorf("implausible hotspot %+v", h)
		}
	}
}

// sink defeats dead-allocation elimination in churn.
var sink []byte

//go:noinline
func churn(n int) {
	for i := 0; i < 32; i++ {
		sink = make([]byte, n)
	}
}

func TestParseProfileRejectsGarbage(t *testing.T) {
	if _, err := parseProfile([]byte{0x1f, 0x8b, 0x00}); err == nil {
		t.Error("truncated gzip accepted")
	}
	if _, err := parseProfile([]byte{0xff, 0xff, 0xff}); err == nil {
		t.Error("garbage protobuf accepted")
	}
}
