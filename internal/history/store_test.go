package history

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// testRecord builds a minimal valid record for store tests.
func testRecord(tool string, metrics map[string]float64) Record {
	r := Record{Schema: Schema, Tool: tool, Kind: "run", GOMAXPROCS: 1,
		Metrics: map[string]float64{}}
	for k, v := range metrics {
		r.Metrics[k] = v
	}
	return r
}

func TestStoreAppendLoadRoundTrip(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	recs, err := st.Load()
	if err != nil {
		t.Fatalf("empty store Load: %v", err)
	}
	if len(recs) != 0 {
		t.Fatalf("empty store returned %d records", len(recs))
	}

	a := testRecord("accordion", map[string]float64{"hist.x.p99": 100})
	a.VCSRevision = "abc123"
	a.Args = []string{"-chips", "8"}
	b := testRecord("accordion", map[string]float64{"hist.x.p99": 110})
	for _, r := range []Record{a, b} {
		if err := st.Append(r); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	recs, err = st.Load()
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(recs) != 2 {
		t.Fatalf("Load returned %d records, want 2", len(recs))
	}
	if recs[0].VCSRevision != "abc123" || len(recs[0].Args) != 2 {
		t.Errorf("first record lost fields: %+v", recs[0])
	}
	if recs[1].Metrics["hist.x.p99"] != 110 {
		t.Errorf("second record metrics = %v", recs[1].Metrics)
	}
}

func TestStoreAppendValidates(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	bad := testRecord("", nil)
	if err := st.Append(bad); err == nil {
		t.Error("Append accepted a record with no tool")
	}
	wrong := testRecord("accordion", nil)
	wrong.Schema = 99
	if err := st.Append(wrong); err == nil {
		t.Error("Append accepted schema 99")
	}
	if (Store{}).Append(testRecord("accordion", nil)) == nil {
		t.Error("Append accepted an empty store dir")
	}
}

// TestStoreLoadNamesCorruptLine pins the audit-trail contract: a
// malformed line fails the whole load with its line number, rather
// than silently shortening the history.
func TestStoreLoadNamesCorruptLine(t *testing.T) {
	st := Store{Dir: t.TempDir()}
	if err := st.Append(testRecord("accordion", map[string]float64{"a": 1})); err != nil {
		t.Fatal(err)
	}
	f, err := os.OpenFile(st.Path(), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString("{not json\n"); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, err = st.Load()
	if err == nil || !strings.Contains(err.Error(), ":2:") {
		t.Errorf("Load error = %v, want one naming line 2", err)
	}
}

func TestTailAndMatching(t *testing.T) {
	var recs []Record
	for i := 0; i < 5; i++ {
		recs = append(recs, testRecord("accordion", map[string]float64{"i": float64(i)}))
	}
	recs = append(recs, testRecord("bench_parallel", nil))
	if got := Tail(recs, 2); len(got) != 2 || got[1].Tool != "bench_parallel" {
		t.Errorf("Tail(2) = %d records ending %q", len(got), got[len(got)-1].Tool)
	}
	if got := Tail(recs, 0); len(got) != len(recs) {
		t.Errorf("Tail(0) = %d records, want all %d", len(got), len(recs))
	}
	match := Matching(recs, recs[0].CompatKey())
	if len(match) != 5 {
		t.Errorf("Matching = %d records, want 5", len(match))
	}
}

// TestStorePathLayout pins the on-disk name scripts and docs refer to.
func TestStorePathLayout(t *testing.T) {
	st := Store{Dir: "HISTORY"}
	if st.Path() != filepath.Join("HISTORY", "records.ndjson") {
		t.Errorf("Path = %q", st.Path())
	}
}
