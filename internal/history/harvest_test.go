package history

import (
	"math"
	"strings"
	"testing"

	"repro/internal/converge"
	"repro/internal/provenance"
	"repro/internal/telemetry"
)

// sampleTelemetry builds a representative snapshot without touching
// the process-wide registry.
func sampleTelemetry() telemetry.Snapshot {
	return telemetry.Snapshot{
		Enabled: true,
		Counters: []telemetry.CounterSnapshot{
			{Name: "service.requests", Value: 128},
			{Name: "cache.experiments.Kernels.hits", Value: 90},
			{Name: "cache.experiments.Kernels.misses", Value: 10},
			{Name: "cache.experiments.MeasuredFronts.hits", Value: 0},
			{Name: "cache.experiments.MeasuredFronts.misses", Value: 2},
		},
		Gauges: []telemetry.GaugeSnapshot{{Name: "service.inflight", Value: 3}},
		Histograms: []telemetry.HistogramSnapshot{
			{Name: "service.latency_ns", Unit: "ns", Count: 100, Mean: 1.5e6,
				P50: 1_200_000, P95: 2_500_000, P99: 3_000_000, Max: 4_000_000},
			{Name: "empty.histogram", Count: 0},
		},
		Windows: []telemetry.WindowSnapshot{{
			Name: "service.latency_ns", Unit: "ns",
			Horizons: []telemetry.WindowHorizonSnapshot{
				{Label: "1m", Count: 50, RatePerSec: 0.8, ErrorRate: 0.02,
					P50: 1_100_000, P95: 2_400_000, P99: 2_900_000},
				{Label: "5m", Count: 0},
			},
		}},
	}
}

func TestAddTelemetry(t *testing.T) {
	r := NewRecord("accordion", "run")
	r.AddTelemetry(sampleTelemetry())
	want := map[string]float64{
		"counter.service.requests":                  128,
		"gauge.service.inflight":                    3,
		"hist.service.latency_ns.p99":               3_000_000,
		"hist.service.latency_ns.mean":              1.5e6,
		"win.service.latency_ns.1m.p99":             2_900_000,
		"win.service.latency_ns.1m.error_rate":      0.02,
		"cache.experiments.Kernels.hit_rate":        0.90,
		"cache.experiments.MeasuredFronts.hit_rate": 0,
	}
	for name, v := range want {
		if got, ok := r.Metrics[name]; !ok || got != v {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, v)
		}
	}
	if _, ok := r.Metrics["hist.empty.histogram.count"]; ok {
		t.Error("empty histogram harvested")
	}
	if _, ok := r.Metrics["win.service.latency_ns.5m.count"]; ok {
		t.Error("empty window horizon harvested")
	}
}

func TestAddConvergence(t *testing.T) {
	r := NewRecord("accordion", "run")
	r.AddConvergence(converge.Snapshot{Series: []converge.SeriesSnapshot{
		{Name: "chip.fmax_ghz", Count: 100, Mean: 1.8, Std: 0.1, CI95: 0.02},
		{Name: "chip.lonely", Count: 1, Mean: 3.0},
		{Name: "chip.unseen", Count: 0},
	}})
	if r.Metrics["converge.chip.fmax_ghz.ci95"] != 0.02 ||
		r.Metrics["converge.chip.fmax_ghz.mean"] != 1.8 {
		t.Errorf("converge harvest = %v", r.Metrics)
	}
	if _, ok := r.Metrics["converge.chip.lonely.ci95"]; ok {
		t.Error("single-observation CI harvested (meaningless)")
	}
	if r.Metrics["converge.chip.lonely.mean"] != 3.0 {
		t.Error("single-observation mean missing")
	}
	if _, ok := r.Metrics["converge.chip.unseen.mean"]; ok {
		t.Error("empty series harvested")
	}
}

func TestAddManifest(t *testing.T) {
	r := NewRecord("accordion", "run")
	man := &provenance.Manifest{
		VCSRevision: "deadbeef", VCSModified: true, WallMs: 1234,
		Args: []string{"-chips", "8", "fig5a"},
		Runners: []provenance.Runner{
			{ID: "fig5a", WallMs: 900},
			{ID: "fig9", WallMs: 300, Error: "boom"},
		},
		Caches: []provenance.Cache{
			{Name: "experiments.Kernels", Hits: 9, Misses: 1, HitRate: 0.9},
			{Name: "experiments.Idle", Hits: 0, Misses: 0},
		},
	}
	r.AddManifest(man)
	if r.VCSRevision != "deadbeef" || !r.VCSDirty || r.WallMs != 1234 {
		t.Errorf("identity not lifted: %+v", r)
	}
	if r.Metrics["runner.fig5a.wall_ms"] != 900 {
		t.Errorf("runner wall time = %v", r.Metrics["runner.fig5a.wall_ms"])
	}
	if _, ok := r.Metrics["runner.fig9.wall_ms"]; ok {
		t.Error("failed runner's wall time harvested as a trend point")
	}
	if r.Metrics["cache.experiments.Kernels.hit_rate"] != 0.9 {
		t.Error("manifest cache rate missing")
	}
	if _, ok := r.Metrics["cache.experiments.Idle.hit_rate"]; ok {
		t.Error("idle cache harvested")
	}
}

const sampleBench = `{
  "vcs_revision": "cafe1234",
  "vcs_dirty": false,
  "gomaxprocs": 4,
  "go": "go1.24.0",
  "sweep": {"p99_ms": 12.5, "throughput_rps": 80.2, "ok": 128},
  "caches_warm": {"experiments.MeasuredFronts": {"hits": 2, "misses": 2, "hit_rate": 0.5}},
  "determinism": {"identical": true},
  "results": [{"name": "BenchmarkRunPopulation", "ns_op": 52000000, "allocs_op": 1200}]
}`

func TestAddBenchJSON(t *testing.T) {
	r := NewRecord("bench_service", "bench")
	if err := r.AddBenchJSON([]byte(sampleBench)); err != nil {
		t.Fatal(err)
	}
	if r.VCSRevision != "cafe1234" || r.VCSDirty || r.GOMAXPROCS != 4 {
		t.Errorf("bench identity not lifted: %+v", r)
	}
	want := map[string]float64{
		"bench.sweep.p99_ms":                                    12.5,
		"bench.sweep.throughput_rps":                            80.2,
		"bench.caches_warm.experiments.MeasuredFronts.hit_rate": 0.5,
		"bench.determinism.identical":                           1,
		"bench.results.0.ns_op":                                 52000000,
		"bench.results.0.allocs_op":                             1200,
	}
	for name, v := range want {
		if got := r.Metrics[name]; got != v {
			t.Errorf("%s = %v, want %v", name, got, v)
		}
	}
	if _, ok := r.Metrics["bench.go"]; ok {
		t.Error("string leaf harvested as a metric")
	}
	if err := r.AddBenchJSON([]byte("not json")); err == nil {
		t.Error("malformed bench blob accepted")
	}
}

// TestDirectionsCoverHarvest is the staleness audit the direction
// table's doc comment promises: every pattern in DefaultDirections
// must match at least one metric a canonical harvested record
// actually produces, so renaming a surface breaks this test instead
// of silently un-gating a family.
func TestDirectionsCoverHarvest(t *testing.T) {
	r := NewRecord("bench_service", "bench")
	r.AddTelemetry(sampleTelemetry())
	r.AddConvergence(converge.Snapshot{Series: []converge.SeriesSnapshot{
		{Name: "chip.fmax_ghz", Count: 100, Mean: 1.8, Std: 0.1, CI95: 0.02},
	}})
	r.AddManifest(&provenance.Manifest{Runners: []provenance.Runner{{ID: "fig5a", WallMs: 900}}})
	if err := r.AddBenchJSON([]byte(sampleBench)); err != nil {
		t.Fatal(err)
	}
	// Families only the go-test harnesses produce.
	r.Set("bench.results.0.bytes_op", 4096)
	r.Set("bench.speedup_vs_serial.j4.speedup", 3.1)
	for _, d := range DefaultDirections() {
		matched := false
		for name := range r.Metrics {
			if globMatch(d.Pattern, name) {
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("direction %q matches no harvested metric; the table went stale", d.Pattern)
		}
	}
}

// TestRecordSetDropsNonFinite pins that NaN/Inf never reach the store
// (encoding/json would refuse the whole record).
func TestRecordSetDropsNonFinite(t *testing.T) {
	r := NewRecord("accordion", "run")
	r.Set("bad.nan", math.NaN())
	r.Set("bad.inf", math.Inf(1))
	r.Set("good", 1)
	if len(r.Metrics) != 1 {
		t.Errorf("Metrics = %v", r.Metrics)
	}
}

// TestCompatKey pins the identity format docs and reports print.
func TestCompatKey(t *testing.T) {
	r := testRecord("accordiond", nil)
	r.Kind = "batch"
	r.GOMAXPROCS = 2
	if got := r.CompatKey(); got != "accordiond/batch/j2" {
		t.Errorf("CompatKey = %q", got)
	}
	if !strings.HasPrefix(r.CompatKey(), r.Tool) {
		t.Error("key does not lead with tool")
	}
}
