package history

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"sort"
)

// This file is a minimal reader for the pprof profile.proto wire
// format — just enough protobuf (varints, length-delimited fields,
// packed repeated ints) to turn a runtime/pprof capture into a table
// of flat/cumulative percentages per function. The repository is
// zero-dependency by policy, so rather than import the pprof module
// the parser decodes the five fields it needs and skips everything
// else:
//
//	Profile:  1 sample_type (ValueType)   repeated
//	          2 sample (Sample)           repeated
//	          4 location (Location)       repeated
//	          5 function (Function)       repeated
//	          6 string_table (string)     repeated
//	Sample:   1 location_id (uint64)      repeated (packed or not)
//	          2 value (int64)             repeated (packed or not)
//	Location: 1 id, 4 line (Line)         repeated
//	Line:     1 function_id
//	Function: 1 id, 2 name (string-table index)
//	ValueType: 1 type, 2 unit             (string-table indices)

// Hotspot is one function's share of a profile dimension. Flat is
// the sample weight whose leaf frame is the function; Cum counts
// every sample the function appears anywhere in (deduplicated per
// sample, so recursion does not double-count).
type Hotspot struct {
	Func    string  `json:"func"`
	FlatPct float64 `json:"flat_pct"`
	CumPct  float64 `json:"cum_pct"`
}

type profSample struct {
	locs   []uint64
	values []int64
}

type profData struct {
	sampleTypes []string // value-type names, indexed like Sample.value
	samples     []profSample
	locFuncs    map[uint64][]uint64 // location id → function ids, leaf inline first
	funcNames   map[uint64]string
}

// parseProfile decodes a (possibly gzipped) profile.proto blob.
func parseProfile(data []byte) (*profData, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("history: profile gunzip: %w", err)
		}
		raw, err := io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("history: profile gunzip: %w", err)
		}
		data = raw
	}
	p := &profData{locFuncs: map[uint64][]uint64{}, funcNames: map[uint64]string{}}
	var strtab []string
	var typeIdxs []uint64
	type pendingFunc struct{ id, nameIdx uint64 }
	var pending []pendingFunc
	err := walkFields(data, func(tag uint64, num uint64, sub []byte) error {
		switch tag {
		case 1: // sample_type
			idx, err := valueTypeTypeIdx(sub)
			if err != nil {
				return err
			}
			typeIdxs = append(typeIdxs, idx)
		case 2: // sample
			s, err := parseSample(sub)
			if err != nil {
				return err
			}
			p.samples = append(p.samples, s)
		case 4: // location
			id, fns, err := parseLocation(sub)
			if err != nil {
				return err
			}
			p.locFuncs[id] = fns
		case 5: // function
			var pf pendingFunc
			var err error
			pf.id, pf.nameIdx, err = parseFunction(sub)
			if err != nil {
				return err
			}
			pending = append(pending, pf)
		case 6: // string_table
			strtab = append(strtab, string(sub))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	for _, pf := range pending {
		if pf.nameIdx < uint64(len(strtab)) {
			p.funcNames[pf.id] = strtab[pf.nameIdx]
		}
	}
	for _, idx := range typeIdxs {
		name := ""
		if idx < uint64(len(strtab)) {
			name = strtab[idx]
		}
		p.sampleTypes = append(p.sampleTypes, name)
	}
	return p, nil
}

// walkFields iterates a protobuf message's fields, calling fn with the
// field tag plus either the varint value (wire type 0) or the
// length-delimited payload (wire type 2); fixed32/64 fields are
// skipped.
func walkFields(data []byte, fn func(tag uint64, num uint64, sub []byte) error) error {
	for len(data) > 0 {
		key, n := uvarint(data)
		if n <= 0 {
			return fmt.Errorf("history: profile: bad field key")
		}
		data = data[n:]
		tag, wire := key>>3, key&7
		switch wire {
		case 0: // varint
			v, n := uvarint(data)
			if n <= 0 {
				return fmt.Errorf("history: profile: bad varint in field %d", tag)
			}
			data = data[n:]
			if err := fn(tag, v, nil); err != nil {
				return err
			}
		case 1: // fixed64
			if len(data) < 8 {
				return fmt.Errorf("history: profile: truncated fixed64 in field %d", tag)
			}
			data = data[8:]
		case 2: // length-delimited
			l, n := uvarint(data)
			if n <= 0 || uint64(len(data)-n) < l {
				return fmt.Errorf("history: profile: bad length in field %d", tag)
			}
			if err := fn(tag, 0, data[n:n+int(l)]); err != nil {
				return err
			}
			data = data[n+int(l):]
		case 5: // fixed32
			if len(data) < 4 {
				return fmt.Errorf("history: profile: truncated fixed32 in field %d", tag)
			}
			data = data[4:]
		default:
			return fmt.Errorf("history: profile: unsupported wire type %d in field %d", wire, tag)
		}
	}
	return nil
}

// uvarint is binary.Uvarint without the import ceremony: value plus
// bytes consumed, n <= 0 on malformed input.
func uvarint(b []byte) (uint64, int) {
	var v uint64
	for i := 0; i < len(b) && i < 10; i++ {
		v |= uint64(b[i]&0x7f) << (7 * i)
		if b[i] < 0x80 {
			return v, i + 1
		}
	}
	return 0, 0
}

// repeatedUints decodes a repeated integer field body: a varint when
// sub is nil (unpacked element), the packed payload otherwise.
func repeatedUints(dst []uint64, num uint64, sub []byte) ([]uint64, error) {
	if sub == nil {
		return append(dst, num), nil
	}
	for len(sub) > 0 {
		v, n := uvarint(sub)
		if n <= 0 {
			return nil, fmt.Errorf("history: profile: bad packed varint")
		}
		dst = append(dst, v)
		sub = sub[n:]
	}
	return dst, nil
}

// parseSample decodes Sample: repeated location ids and values.
func parseSample(data []byte) (profSample, error) {
	var s profSample
	err := walkFields(data, func(tag uint64, num uint64, sub []byte) error {
		var err error
		switch tag {
		case 1:
			s.locs, err = repeatedUints(s.locs, num, sub)
		case 2:
			var vals []uint64
			vals, err = repeatedUints(nil, num, sub)
			for _, v := range vals {
				s.values = append(s.values, int64(v))
			}
		}
		return err
	})
	return s, err
}

// parseLocation decodes Location: its id and the function ids of its
// Line entries (leaf inline frame first, per the pprof spec).
func parseLocation(data []byte) (id uint64, fns []uint64, err error) {
	err = walkFields(data, func(tag uint64, num uint64, sub []byte) error {
		switch tag {
		case 1:
			id = num
		case 4: // Line
			return walkFields(sub, func(ltag uint64, lnum uint64, lsub []byte) error {
				if ltag == 1 {
					fns = append(fns, lnum)
				}
				return nil
			})
		}
		return nil
	})
	return id, fns, err
}

// parseFunction decodes Function: its id and name string-table index.
func parseFunction(data []byte) (id, nameIdx uint64, err error) {
	err = walkFields(data, func(tag uint64, num uint64, sub []byte) error {
		switch tag {
		case 1:
			id = num
		case 2:
			nameIdx = num
		}
		return nil
	})
	return id, nameIdx, err
}

// valueTypeTypeIdx decodes ValueType's type string-table index.
func valueTypeTypeIdx(data []byte) (uint64, error) {
	var idx uint64
	err := walkFields(data, func(tag uint64, num uint64, sub []byte) error {
		if tag == 1 {
			idx = num
		}
		return nil
	})
	return idx, err
}

// valueIndex picks which Sample.value column to rank by: the first
// sample type whose name appears in prefer, else the last column
// (pprof convention puts the default dimension last).
func (p *profData) valueIndex(prefer []string) int {
	for _, want := range prefer {
		for i, name := range p.sampleTypes {
			if name == want {
				return i
			}
		}
	}
	return len(p.sampleTypes) - 1
}

// hotspots ranks functions by flat weight in the chosen value column,
// returning the top n plus the total weight.
func (p *profData) hotspots(valueIdx, n int) ([]Hotspot, int64) {
	if valueIdx < 0 {
		return nil, 0
	}
	flat := map[string]int64{}
	cum := map[string]int64{}
	var total int64
	seen := map[string]bool{}
	for _, s := range p.samples {
		if valueIdx >= len(s.values) || len(s.locs) == 0 {
			continue
		}
		v := s.values[valueIdx]
		if v == 0 {
			continue
		}
		total += v
		clear(seen)
		for i, loc := range s.locs {
			fns := p.locFuncs[loc]
			for j, fnID := range fns {
				name := p.funcNames[fnID]
				if name == "" {
					continue
				}
				if i == 0 && j == 0 {
					flat[name] += v
				}
				if !seen[name] {
					seen[name] = true
					cum[name] += v
				}
			}
		}
	}
	if total == 0 {
		return nil, 0
	}
	names := make([]string, 0, len(flat))
	for name := range flat {
		names = append(names, name)
	}
	sort.Slice(names, func(a, b int) bool {
		if flat[names[a]] != flat[names[b]] {
			return flat[names[a]] > flat[names[b]]
		}
		return names[a] < names[b]
	})
	if n > 0 && len(names) > n {
		names = names[:n]
	}
	spots := make([]Hotspot, 0, len(names))
	for _, name := range names {
		spots = append(spots, Hotspot{
			Func:    name,
			FlatPct: 100 * float64(flat[name]) / float64(total),
			CumPct:  100 * float64(cum[name]) / float64(total),
		})
	}
	return spots, total
}
