package history

import (
	"bytes"
	"fmt"
	"runtime/pprof"
)

// ProfileSummary is the self-profiling digest embedded in a Record:
// top-N flat hotspots for CPU time and allocated space, diffable
// across runs without opening a pprof file.
type ProfileSummary struct {
	CPU            []Hotspot `json:"cpu,omitempty"`
	Heap           []Hotspot `json:"heap,omitempty"`
	CPUTotalNs     int64     `json:"cpu_total_ns,omitempty"`
	HeapTotalBytes int64     `json:"heap_total_bytes,omitempty"`
}

// ProfileOptions selects what CaptureProfile records. The zero value
// disables capture entirely.
type ProfileOptions struct {
	CPU  bool
	Heap bool
	// TopN caps hotspots per dimension (default 10).
	TopN int
}

// CaptureProfile runs fn, optionally bracketed by a pprof CPU capture
// and followed by a heap ("allocs" since start) capture, and
// summarizes both into hotspot tables. With the zero ProfileOptions
// the hook is pass-through: fn is invoked directly, no profiler is
// touched, and the call adds zero allocations
// (TestProfileDisabledOverhead pins this, the same contract as
// telemetry's disabled path).
//
// fn's error is returned as-is; a profiling failure wraps it only
// when fn itself succeeded, so a run's real failure is never masked
// by a profiler complaint.
func CaptureProfile(opts ProfileOptions, fn func() error) (*ProfileSummary, error) {
	if !opts.CPU && !opts.Heap {
		return nil, fn()
	}
	topN := opts.TopN
	if topN <= 0 {
		topN = 10
	}
	var cpuBuf bytes.Buffer
	if opts.CPU {
		if err := pprof.StartCPUProfile(&cpuBuf); err != nil {
			return nil, fmt.Errorf("history: start cpu profile: %w", err)
		}
	}
	fnErr := fn()
	if opts.CPU {
		pprof.StopCPUProfile()
	}
	var heapBuf bytes.Buffer
	if opts.Heap {
		if p := pprof.Lookup("allocs"); p != nil {
			if err := p.WriteTo(&heapBuf, 0); err != nil && fnErr == nil {
				return nil, fmt.Errorf("history: heap profile: %w", err)
			}
		}
	}
	sum := &ProfileSummary{}
	if opts.CPU && cpuBuf.Len() > 0 {
		prof, err := parseProfile(cpuBuf.Bytes())
		if err != nil {
			if fnErr == nil {
				return nil, err
			}
			return nil, fnErr
		}
		// The CPU profile's columns are samples/count then cpu/ns.
		sum.CPU, sum.CPUTotalNs = prof.hotspots(prof.valueIndex([]string{"cpu"}), topN)
	}
	if opts.Heap && heapBuf.Len() > 0 {
		prof, err := parseProfile(heapBuf.Bytes())
		if err != nil {
			if fnErr == nil {
				return nil, err
			}
			return nil, fnErr
		}
		sum.Heap, sum.HeapTotalBytes = prof.hotspots(prof.valueIndex([]string{"alloc_space"}), topN)
	}
	return sum, fnErr
}
