package history

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenRecords is a fixed store exercising every renderer feature:
// trended gated metrics, a metric absent from one record (sparkline
// gap), an other-identity record (skipped count), and a profile on
// the newest record.
func goldenRecords() []Record {
	recs := []Record{}
	p99 := []float64{2.00e6, 2.05e6, 1.98e6, 2.10e6, 4.20e6}
	hit := []float64{0.88, 0.90, 0.91, 0.89, 0.90}
	for i := range p99 {
		r := Record{Schema: Schema, Tool: "accordion", Kind: "run", GOMAXPROCS: 1,
			Metrics: map[string]float64{
				"hist.service.latency_ns.p99":        p99[i],
				"cache.experiments.Kernels.hit_rate": hit[i],
				"counter.service.requests":           128, // ungated: stays out of the default report
			}}
		if i != 2 {
			r.Metrics["runner.fig5a.wall_ms"] = 400 + 10*float64(i)
		}
		recs = append(recs, r)
	}
	other := Record{Schema: Schema, Tool: "bench_parallel", Kind: "bench", GOMAXPROCS: 4,
		Metrics: map[string]float64{"bench.results.0.ns_op": 5e7}}
	recs = append(recs[:4], other, recs[4])
	recs[len(recs)-1].VCSRevision = "0123456789abcdef0123"
	recs[len(recs)-1].Profile = &ProfileSummary{
		CPU: []Hotspot{
			{Func: "repro/internal/rms.(*Kernel).Run", FlatPct: 41.25, CumPct: 63.5},
			{Func: "repro/internal/variation.SampleField", FlatPct: 22.0, CumPct: 22.0},
		},
		Heap:           []Hotspot{{Func: "repro/internal/chip.Draw", FlatPct: 55.5, CumPct: 70.0}},
		CPUTotalNs:     1_200_000_000,
		HeapTotalBytes: 64 << 20,
	}
	return recs
}

// TestGoldenReports pins the exact bytes of the text and HTML trend
// reports for the fixed record set above, the same contract the atlas
// exports live under. Regenerate with
// UPDATE_GOLDEN=1 go test ./internal/history.
func TestGoldenReports(t *testing.T) {
	recs := goldenRecords()
	renders := map[string]func() ([]byte, error){
		"golden_report.txt": func() ([]byte, error) {
			var buf bytes.Buffer
			err := WriteTextReport(&buf, recs, ReportOptions{})
			return buf.Bytes(), err
		},
		"golden_report.html": func() ([]byte, error) {
			var buf bytes.Buffer
			err := WriteHTMLReport(&buf, recs, ReportOptions{})
			return buf.Bytes(), err
		},
	}
	for name, render := range renders {
		t.Run(name, func(t *testing.T) {
			got, err := render()
			if err != nil {
				t.Fatal(err)
			}
			path := filepath.Join("testdata", name)
			if os.Getenv("UPDATE_GOLDEN") != "" {
				if err := os.WriteFile(path, got, 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
			}
			if !bytes.Equal(got, want) {
				t.Errorf("%s drifted from golden; rerun with UPDATE_GOLDEN=1 and review the diff\ngot:\n%s", name, got)
			}
		})
	}
}

// TestReportStructure sanity-checks renderer behavior the goldens
// alone would not explain if they drifted: gaps, skip counts, and the
// ungated-metric exclusion.
func TestReportStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTextReport(&buf, goldenRecords(), ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "accordion/run/j1") {
		t.Errorf("report lacks identity key:\n%s", out)
	}
	if !strings.Contains(out, "1 other-identity record(s) skipped") {
		t.Errorf("cross-identity record not reported as skipped:\n%s", out)
	}
	if !strings.Contains(out, "·") {
		t.Errorf("sparkline gap marker missing for absent metric:\n%s", out)
	}
	if strings.Contains(out, "counter.service.requests") {
		t.Errorf("ungated metric leaked into the default report:\n%s", out)
	}
	if !strings.Contains(out, "cpu hotspots") || !strings.Contains(out, "heap hotspots") {
		t.Errorf("profile section missing:\n%s", out)
	}

	// Explicit metric globs override the gated-set default.
	buf.Reset()
	err := WriteTextReport(&buf, goldenRecords(), ReportOptions{Metrics: []string{"counter.*"}})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "counter.service.requests") {
		t.Errorf("explicit glob did not select the metric:\n%s", buf.String())
	}

	var html bytes.Buffer
	if err := WriteHTMLReport(&html, goldenRecords(), ReportOptions{}); err != nil {
		t.Fatal(err)
	}
	h := html.String()
	if !strings.Contains(h, "<svg") || !strings.Contains(h, "polyline") {
		t.Errorf("HTML report lacks SVG sparklines:\n%s", h)
	}
	if !strings.Contains(h, "<!DOCTYPE html>") || strings.Contains(h, "<script") {
		t.Error("HTML report must be standalone and script-free")
	}
}
