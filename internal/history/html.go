package history

import (
	"fmt"
	"html"
	"io"
	"strings"
)

// WriteHTMLReport renders the trend report as one standalone HTML
// page: no scripts, no external assets, one inline SVG sparkline per
// metric row — the same shape the atlas exporter uses, golden-tested
// the same way. Deterministic for a fixed record set.
func WriteHTMLReport(w io.Writer, recs []Record, opt ReportOptions) error {
	opt = opt.withDefaults()
	d, err := buildReport(recs, opt)
	if err != nil {
		return err
	}
	var b strings.Builder
	b.WriteString(`<!DOCTYPE html>
<html lang="en">
<head>
<meta charset="utf-8">
<title>run history</title>
<style>
body { font-family: system-ui, sans-serif; margin: 2rem; color: #111; }
h1 { font-size: 1.3rem; }
table { border-collapse: collapse; }
th, td { padding: 0.3rem 0.8rem; border-bottom: 1px solid #ddd; text-align: right; font-variant-numeric: tabular-nums; }
th { border-bottom: 2px solid #888; }
td.name, th.name { text-align: left; font-family: ui-monospace, monospace; }
td.worse-up { color: #a33; }
td.worse-down { color: #36a; }
.spark polyline { fill: none; stroke: #36a; stroke-width: 1.5; }
.spark circle { fill: #a33; }
.meta { color: #555; }
</style>
</head>
<body>
`)
	fmt.Fprintf(&b, "<h1>run history: %s</h1>\n", html.EscapeString(d.key))
	fmt.Fprintf(&b, "<p class=\"meta\">store: %d record(s); trending last %d", d.total, d.trended)
	if d.skipped > 0 {
		fmt.Fprintf(&b, " (%d other-identity record(s) skipped)", d.skipped)
	}
	if d.newest.VCSRevision != "" {
		fmt.Fprintf(&b, " · newest %.12s", html.EscapeString(d.newest.VCSRevision))
		if d.newest.VCSDirty {
			b.WriteString(" (dirty)")
		}
	}
	b.WriteString("</p>\n")
	if len(d.trends) == 0 {
		b.WriteString("<p>no trended metrics</p>\n")
	} else {
		b.WriteString("<table>\n<tr><th class=\"name\">metric</th><th>worse</th><th>min</th><th>max</th><th>latest</th><th>trend</th></tr>\n")
		for i := range d.trends {
			t := &d.trends[i]
			lo, hi, latest := seriesStats(t)
			worseClass := ""
			if t.worse != "" {
				worseClass = " class=\"worse-" + t.worse + "\""
			}
			fmt.Fprintf(&b, "<tr><td class=\"name\">%s</td><td%s>%s</td><td>%.5g</td><td>%.5g</td><td>%.5g</td><td>%s</td></tr>\n",
				html.EscapeString(t.name), worseClass, t.worse, lo, hi, latest, sparkSVG(t.values, t.ok))
		}
		b.WriteString("</table>\n")
	}
	writeHTMLHotspots(&b, d.newest.Profile, opt.TopN)
	b.WriteString("</body>\n</html>\n")
	_, err = io.WriteString(w, b.String())
	return err
}

// sparkSVG renders one metric's series as an inline SVG polyline with
// the latest point marked; absent records leave gaps.
func sparkSVG(values []float64, ok []bool) string {
	const width, height, pad = 120.0, 24.0, 2.0
	lo, hi := 0.0, 0.0
	any := false
	for i, v := range values {
		if !ok[i] {
			continue
		}
		if !any || v < lo {
			lo = v
		}
		if !any || v > hi {
			hi = v
		}
		any = true
	}
	if !any {
		return ""
	}
	step := 0.0
	if len(values) > 1 {
		step = (width - 2*pad) / float64(len(values)-1)
	}
	y := func(v float64) float64 {
		if hi <= lo {
			return height / 2
		}
		return pad + (height-2*pad)*(1-(v-lo)/(hi-lo))
	}
	var pts []string
	lastX, lastY := pad, height/2
	for i, v := range values {
		if !ok[i] {
			continue
		}
		x := pad + step*float64(i)
		pts = append(pts, fmt.Sprintf("%.1f,%.1f", x, y(v)))
		lastX, lastY = x, y(v)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "<svg class=\"spark\" width=\"%.0f\" height=\"%.0f\" viewBox=\"0 0 %.0f %.0f\">", width, height, width, height)
	if len(pts) > 1 {
		fmt.Fprintf(&b, "<polyline points=\"%s\"/>", strings.Join(pts, " "))
	}
	fmt.Fprintf(&b, "<circle cx=\"%.1f\" cy=\"%.1f\" r=\"2\"/></svg>", lastX, lastY)
	return b.String()
}

func writeHTMLHotspots(b *strings.Builder, p *ProfileSummary, topN int) {
	if p == nil {
		return
	}
	write := func(label string, spots []Hotspot) {
		if len(spots) == 0 {
			return
		}
		fmt.Fprintf(b, "<h1>%s hotspots (newest record)</h1>\n", label)
		b.WriteString("<table>\n<tr><th>flat</th><th>cum</th><th class=\"name\">function</th></tr>\n")
		if len(spots) > topN {
			spots = spots[:topN]
		}
		for _, h := range spots {
			fmt.Fprintf(b, "<tr><td>%.2f%%</td><td>%.2f%%</td><td class=\"name\">%s</td></tr>\n",
				h.FlatPct, h.CumPct, html.EscapeString(h.Func))
		}
		b.WriteString("</table>\n")
	}
	write("cpu", p.CPU)
	write("heap", p.Heap)
}
