// Package history is the cross-run observability tier: an append-only
// NDJSON store of run records, a noise-aware regression gate, and a
// trend report renderer.
//
// Every other observability surface in this repository — telemetry
// counters and histograms, converge CI half-widths, provenance
// manifests, the BENCH_*.json harness blobs — describes exactly one
// run. This package makes those surfaces longitudinal: a Record is a
// flat metric map harvested from whichever of them a run produced,
// stamped with enough identity (tool, kind, VCS revision, dirty flag,
// GOMAXPROCS) to know which records are comparable, and appended as
// one NDJSON line to a store directory. On top of the store sit:
//
//   - Check: the regression gate. The newest record is compared
//     against a baseline window of earlier records sharing its
//     (tool, kind, gomaxprocs) identity, using converge.Welford for
//     the baseline statistics. A metric is flagged only when it moves
//     in its registered bad direction (directions.go) beyond the
//     baseline's 95% band plus a relative margin — so run-to-run
//     noise inside the band never pages anyone, and an identical
//     re-run (zero band, value on the mean) is never a false
//     positive.
//   - WriteTextReport / WriteHTMLReport: per-metric trend lines
//     (unicode and inline-SVG sparklines) over the last K comparable
//     records, plus the newest record's profile hotspots.
//   - CaptureProfile: an opt-in pprof CPU+heap capture around a run
//     whose top-N flat hotspots are summarized into the record, so
//     hotspot drift diffs across runs without opening pprof.
//
// The store is plain NDJSON so records are diffable, committable
// (HISTORY/records.ndjson at the repo root is the checked-in
// baseline CI replays), and appendable from shell harnesses via
// cmd/accordionhist. The package follows the repository's telemetry
// contract: its own self-accounting (history.appends,
// history.gate.checks, …) goes through internal/telemetry and is
// registered in the analysis catalog.
package history

import (
	"fmt"
	"math"
	"os"
	"runtime"
	"runtime/debug"
	"sort"
	"time"
)

// Schema is the record schema version written by this package. Loaders
// accept only this version; bumping it is a reviewable event.
const Schema = 1

// Record is one run's harvested observation set. Metrics is flat on
// purpose: the gate and the report treat every value as an
// independently trended time series keyed by its dotted name
// (harvest.go documents the namespace).
type Record struct {
	Schema      int                `json:"schema"`
	Tool        string             `json:"tool"` // accordion | accordiond | bench_parallel | ...
	Kind        string             `json:"kind"` // run | batch | bench
	StartUnixNs int64              `json:"start_unix_ns,omitempty"`
	WallMs      int64              `json:"wall_ms,omitempty"`
	GoVersion   string             `json:"go_version,omitempty"`
	GOMAXPROCS  int                `json:"gomaxprocs,omitempty"`
	VCSRevision string             `json:"vcs_revision,omitempty"`
	VCSDirty    bool               `json:"vcs_dirty,omitempty"`
	Args        []string           `json:"args,omitempty"`
	Note        string             `json:"note,omitempty"`
	Metrics     map[string]float64 `json:"metrics"`
	Profile     *ProfileSummary    `json:"profile,omitempty"`
}

// NewRecord starts a record for the named tool and kind, stamped with
// the process's identity: wall-clock start, Go version, GOMAXPROCS,
// argv, and whatever VCS metadata the binary carries (populated when
// built inside the module with VCS stamping; harvesters may override
// from a manifest or a bench blob).
func NewRecord(tool, kind string) Record {
	r := Record{
		Schema:      Schema,
		Tool:        tool,
		Kind:        kind,
		StartUnixNs: time.Now().UnixNano(),
		GoVersion:   runtime.Version(),
		GOMAXPROCS:  runtime.GOMAXPROCS(0),
		Args:        append([]string(nil), os.Args[1:]...),
		Metrics:     map[string]float64{},
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				r.VCSRevision = s.Value
			case "vcs.modified":
				r.VCSDirty = s.Value == "true"
			}
		}
	}
	return r
}

// Set records one metric value. NaN and infinities are dropped —
// encoding/json refuses them, and a metric that failed to compute is
// not a trend point.
func (r *Record) Set(name string, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	if r.Metrics == nil {
		r.Metrics = map[string]float64{}
	}
	r.Metrics[name] = v
}

// CompatKey is the comparability identity: records compare only
// against records from the same tool and kind measured at the same
// parallelism. Cross-machine or cross-shape baselines would make the
// gate fire on hardware, not code.
func (r *Record) CompatKey() string {
	return fmt.Sprintf("%s/%s/j%d", r.Tool, r.Kind, r.GOMAXPROCS)
}

// Validate checks the invariants Append enforces.
func (r *Record) Validate() error {
	if r.Schema != Schema {
		return fmt.Errorf("history: record schema %d, want %d", r.Schema, Schema)
	}
	if r.Tool == "" || r.Kind == "" {
		return fmt.Errorf("history: record missing tool (%q) or kind (%q)", r.Tool, r.Kind)
	}
	for name, v := range r.Metrics {
		if name == "" {
			return fmt.Errorf("history: record has an empty metric name")
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("history: metric %s is not finite", name)
		}
	}
	return nil
}

// MetricNames returns the record's metric names sorted.
func (r *Record) MetricNames() []string {
	names := make([]string, 0, len(r.Metrics))
	for name := range r.Metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
