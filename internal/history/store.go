package history

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// recordsFile is the single NDJSON file a store directory holds. One
// record per line, append-only: the file is a time series, and a
// single O_APPEND write per record keeps concurrent appenders (the
// daemon's recorder, a bench harness, a manual accordionhist append)
// from interleaving partial lines.
const recordsFile = "records.ndjson"

// Store is a run-history directory. The zero value is invalid; Dir
// must name a directory (created on first append).
type Store struct {
	Dir string
}

// Path returns the records file path.
func (s Store) Path() string { return filepath.Join(s.Dir, recordsFile) }

// Append validates the record and appends it as one NDJSON line,
// creating the store directory if needed.
func (s Store) Append(r Record) error {
	if s.Dir == "" {
		return fmt.Errorf("history: store has no directory")
	}
	if err := r.Validate(); err != nil {
		return err
	}
	line, err := json.Marshal(r)
	if err != nil {
		return fmt.Errorf("history: marshal record: %w", err)
	}
	if err := os.MkdirAll(s.Dir, 0o755); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	f, err := os.OpenFile(s.Path(), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	if _, err := f.Write(append(line, '\n')); err != nil {
		f.Close()
		return fmt.Errorf("history: append %s: %w", s.Path(), err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("history: append %s: %w", s.Path(), err)
	}
	telemetry.GetCounter("history.appends").Inc()
	events.New("history.appended").Str("tool", r.Tool).Str("kind", r.Kind).
		Int("metrics", int64(len(r.Metrics))).Emit()
	return nil
}

// Load reads every record in append order. A missing records file is
// an empty store, not an error; a malformed or wrong-schema line is an
// error naming its line number — the store is an audit trail, and a
// corrupt trail should not be silently shortened.
func (s Store) Load() ([]Record, error) {
	f, err := os.Open(s.Path())
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("history: %w", err)
	}
	defer f.Close()
	var recs []Record
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			return nil, fmt.Errorf("history: %s:%d: %w", s.Path(), lineNo, err)
		}
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("history: %s:%d: %w", s.Path(), lineNo, err)
		}
		recs = append(recs, r)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("history: %s: %w", s.Path(), err)
	}
	return recs, nil
}

// Tail returns the last k records (all of them when k <= 0 or exceeds
// the count).
func Tail(recs []Record, k int) []Record {
	if k <= 0 || k >= len(recs) {
		return recs
	}
	return recs[len(recs)-k:]
}

// Matching filters recs to those sharing key (a Record.CompatKey),
// preserving order.
func Matching(recs []Record, key string) []Record {
	var out []Record
	for i := range recs {
		if recs[i].CompatKey() == key {
			out = append(out, recs[i])
		}
	}
	return out
}
