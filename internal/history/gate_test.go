package history

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// jitter returns a deterministic pseudo-noise factor in
// [1-amp, 1+amp] from a tiny LCG, so the "20 jittered records" case
// is reproducible without a seed flag.
func jitter(i int, amp float64) float64 {
	x := uint64(i)*6364136223846793005 + 1442695040888963407
	x ^= x >> 33
	u := float64(x%10000) / 10000 // [0,1)
	return 1 + amp*(2*u-1)
}

// baselineRecords builds n comparable records whose gated metrics
// jitter within ±amp of their nominal values.
func baselineRecords(n int, amp float64) []Record {
	var recs []Record
	for i := 0; i < n; i++ {
		r := testRecord("accordion", map[string]float64{
			"hist.service.latency_ns.p99":        2e6 * jitter(i, amp),
			"cache.experiments.Kernels.hit_rate": 0.90 * jitter(i+1000, amp),
			"counter.service.requests":           100, // no direction: never gated
		})
		recs = append(recs, r)
	}
	return recs
}

// TestGateFlagsSyntheticRegression is the acceptance case: a 2×
// latency jump over a stable baseline must be flagged.
func TestGateFlagsSyntheticRegression(t *testing.T) {
	recs := baselineRecords(20, 0.02)
	bad := testRecord("accordion", map[string]float64{
		"hist.service.latency_ns.p99":        4e6, // 2× the ~2e6 baseline
		"cache.experiments.Kernels.hit_rate": 0.90,
	})
	recs = append(recs, bad)
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions() != 1 {
		t.Fatalf("Regressions = %d, want 1; findings %+v", rep.Regressions(), rep.Findings)
	}
	f := rep.Findings[0]
	if f.Metric != "hist.service.latency_ns.p99" || !f.Regression || f.Worse != "up" {
		t.Errorf("finding = %+v", f)
	}
	if f.RelDelta < 0.8 {
		t.Errorf("RelDelta = %v, want ~1.0 for a 2× jump", f.RelDelta)
	}
}

// TestGateFlagsHitRateDrop pins the down-is-bad direction: a falling
// cache hit rate regresses even though the number went down.
func TestGateFlagsHitRateDrop(t *testing.T) {
	recs := baselineRecords(20, 0.01)
	bad := testRecord("accordion", map[string]float64{
		"hist.service.latency_ns.p99":        2e6,
		"cache.experiments.Kernels.hit_rate": 0.30,
	})
	recs = append(recs, bad)
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, f := range rep.Findings {
		if f.Metric == "cache.experiments.Kernels.hit_rate" && f.Regression && f.Worse == "down" {
			found = true
		}
	}
	if !found {
		t.Errorf("hit-rate drop not flagged; findings %+v", rep.Findings)
	}
}

// TestGateNoFalsePositiveOnJitter is the acceptance case: across ≥20
// jittered-within-noise records, a newest record drawn from the same
// jitter never flags.
func TestGateNoFalsePositiveOnJitter(t *testing.T) {
	recs := baselineRecords(24, 0.02)
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions() != 0 {
		t.Errorf("jittered re-run flagged: %+v", rep.Findings)
	}
	if rep.Compared == 0 {
		t.Error("gate compared nothing; baseline plumbing broken")
	}
}

// TestGateIdenticalRerunPasses pins the deterministic-metric case: a
// constant baseline has zero band, and an identical re-run sits
// exactly on the mean — the margin keeps that a pass, not a
// zero-tolerance trip.
func TestGateIdenticalRerunPasses(t *testing.T) {
	recs := baselineRecords(10, 0) // amp 0: byte-identical runs
	recs = append(recs, baselineRecords(1, 0)...)
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions() != 0 {
		t.Errorf("identical re-run flagged: %+v", rep.Findings)
	}
}

// TestGateImprovementIsInformational pins that a move past the band
// in the good direction is reported but never fatal.
func TestGateImprovementIsInformational(t *testing.T) {
	recs := baselineRecords(20, 0.02)
	better := testRecord("accordion", map[string]float64{
		"hist.service.latency_ns.p99":        1e6, // halved
		"cache.experiments.Kernels.hit_rate": 0.90,
	})
	recs = append(recs, better)
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions() != 0 {
		t.Fatalf("improvement counted as regression: %+v", rep.Findings)
	}
	if len(rep.Findings) == 0 || rep.Findings[0].Regression {
		t.Errorf("improvement not reported: %+v", rep.Findings)
	}
}

// TestGateIgnoresOtherIdentity pins the comparability rule: records
// from a different tool or GOMAXPROCS never enter the baseline, so a
// fresh identity passes with a note instead of comparing apples to
// a different machine's oranges.
func TestGateIgnoresOtherIdentity(t *testing.T) {
	recs := baselineRecords(20, 0.02)
	other := testRecord("accordion", map[string]float64{
		"hist.service.latency_ns.p99": 40e6, // 20× — but measured at j8
	})
	other.GOMAXPROCS = 8
	recs = append(recs, other)
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions() != 0 || rep.Note == "" {
		t.Errorf("cross-identity record gated: note=%q findings=%+v", rep.Note, rep.Findings)
	}
}

// TestGateShortBaselineSilent pins MinBaseline: with two records
// total there is one baseline observation, and the gate stays silent.
func TestGateShortBaselineSilent(t *testing.T) {
	recs := baselineRecords(2, 0.02)
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Compared != 0 || rep.Regressions() != 0 || rep.Note == "" {
		t.Errorf("short baseline gated: %+v", rep)
	}
}

// TestGateReplaysCommittedRegressionSet replays the checked-in
// synthetic-regression store (the same one CI's history-gate job
// asserts fails) and requires the gate to flag it.
func TestGateReplaysCommittedRegressionSet(t *testing.T) {
	st := Store{Dir: filepath.Join("testdata", "regressed")}
	recs, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressions() == 0 {
		t.Fatalf("committed regression set not flagged: %+v", rep)
	}
	var b strings.Builder
	if err := rep.WriteText(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "REGRESSED") || !strings.Contains(b.String(), "FAIL") {
		t.Errorf("text report missing verdicts:\n%s", b.String())
	}
}

// TestGateEmptyStoreErrors pins that checking nothing is an error,
// not a pass.
func TestGateEmptyStoreErrors(t *testing.T) {
	if _, err := Check(nil, DefaultDirections(), GateConfig{}); err == nil {
		t.Error("Check(nil) passed")
	}
}

func TestGlobMatch(t *testing.T) {
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"hist.*.p99", "hist.service.latency_ns.p99", true},
		{"hist.*.p99", "hist.service.latency_ns.p50", false},
		{"cache.*.hit_rate", "cache.experiments.Kernels.hit_rate", true},
		{"bench.*ns_op", "bench.results.BenchmarkRunPopulation.ns_op", true},
		{"bench.*ns_op", "bench.results.BenchmarkRunPopulation.allocs_op", false},
		{"exact.name", "exact.name", true},
		{"exact.name", "exact.names", false},
		{"*", "anything.at.all", true},
	}
	for _, c := range cases {
		if got := globMatch(c.pattern, c.name); got != c.want {
			t.Errorf("globMatch(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

// TestGateReportJSONShape pins the machine-readable report the CI job
// and accordionhist -json consume.
func TestGateReportJSONShape(t *testing.T) {
	recs := baselineRecords(20, 0.02)
	recs = append(recs, testRecord("accordion", map[string]float64{
		"hist.service.latency_ns.p99": 4e6,
	}))
	rep, err := Check(recs, DefaultDirections(), GateConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Key != "accordion/run/j1" || rep.BaselineN != 20 {
		t.Errorf("report identity = %q baseline=%d", rep.Key, rep.BaselineN)
	}
	if os.Getenv("DEBUG_GATE") != "" {
		rep.WriteText(os.Stderr)
	}
}
