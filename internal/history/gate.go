package history

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/converge"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// GateConfig parameterizes the regression gate.
type GateConfig struct {
	// Window is how many prior comparable records form the baseline
	// (default 20).
	Window int
	// MinBaseline is the fewest baseline observations a metric needs
	// before it is gated at all (default 3): below that the band is
	// statistically meaningless and the gate stays silent rather than
	// guessing.
	MinBaseline int
	// Margin is the relative slack added on top of the baseline's 95%
	// band (default 0.10): a metric must exceed mean + band +
	// margin·|mean| (mirrored for down-is-bad) to flag. The band
	// absorbs measured noise; the margin absorbs noise the baseline
	// window was too calm to exhibit.
	Margin float64
}

func (c GateConfig) withDefaults() GateConfig {
	if c.Window <= 0 {
		c.Window = 20
	}
	if c.MinBaseline <= 0 {
		c.MinBaseline = 3
	}
	if c.Margin <= 0 {
		c.Margin = 0.10
	}
	return c
}

// Baseline is the summarized baseline window behind one finding.
type Baseline struct {
	N    int64   `json:"n"`
	Mean float64 `json:"mean"`
	Std  float64 `json:"std"`
	// Band is the 95% single-observation half-width (z95·std) the
	// gate grants before the margin applies.
	Band float64 `json:"band"`
}

// Finding is one metric's verdict: a regression (moved past the band
// in the bad direction) or an improvement (moved past the band in the
// good direction, reported for information, never fatal).
type Finding struct {
	Metric     string   `json:"metric"`
	Worse      string   `json:"worse"` // "up" or "down"
	Value      float64  `json:"value"`
	Baseline   Baseline `json:"baseline"`
	Regression bool     `json:"regression"`
	// RelDelta is (value-mean)/|mean| (signed); RelExcess is how far
	// past the allowed envelope the value landed, in the same units.
	RelDelta  float64 `json:"rel_delta"`
	RelExcess float64 `json:"rel_excess"`
}

// GateReport is one gate run's outcome over a record set.
type GateReport struct {
	// Key is the newest record's comparability identity; only records
	// sharing it enter the baseline.
	Key         string    `json:"key"`
	VCSRevision string    `json:"vcs_revision,omitempty"`
	BaselineN   int       `json:"baseline_n"`
	Compared    int       `json:"compared"` // direction-gated metrics with enough baseline
	Skipped     int       `json:"skipped"`  // direction-gated metrics with too little baseline
	Findings    []Finding `json:"findings,omitempty"`
	// Note explains a silent pass (no baseline yet, too few records).
	Note string `json:"note,omitempty"`
}

// Regressions counts the fatal findings.
func (g *GateReport) Regressions() int {
	n := 0
	for i := range g.Findings {
		if g.Findings[i].Regression {
			n++
		}
	}
	return n
}

// Check runs the noise-aware regression gate: the newest record in
// recs against a baseline window of earlier records sharing its
// CompatKey. Metrics are gated only when a Direction registers their
// bad sense and at least MinBaseline baseline records carry them.
//
// The test is Welford-on-the-baseline: a value regresses when it
// leaves the baseline's 95% single-observation band (z95·std) by more
// than Margin·|mean| in the bad direction. Three consequences the
// tests pin: a 2× latency jump over a stable baseline is flagged; a
// value inside the band — any identical re-run, and any jitter the
// baseline itself exhibited — is not; and a constant baseline
// (band 0) still tolerates the margin, so byte-identical reruns of a
// deterministic metric sit exactly on the mean and pass.
func Check(recs []Record, dirs []Direction, cfg GateConfig) (*GateReport, error) {
	cfg = cfg.withDefaults()
	if len(recs) == 0 {
		return nil, fmt.Errorf("history: no records to check")
	}
	newest := recs[len(recs)-1]
	rep := &GateReport{Key: newest.CompatKey(), VCSRevision: newest.VCSRevision}
	baseline := Tail(Matching(recs[:len(recs)-1], rep.Key), cfg.Window)
	rep.BaselineN = len(baseline)
	if len(baseline) < cfg.MinBaseline {
		rep.Note = fmt.Sprintf("only %d comparable baseline record(s) for %s (need %d); nothing gated",
			len(baseline), rep.Key, cfg.MinBaseline)
		finishCheck(rep)
		return rep, nil
	}
	for _, name := range newest.MetricNames() {
		sense, gated := senseOf(name, dirs)
		if !gated {
			continue
		}
		var w converge.Welford
		for i := range baseline {
			if v, ok := baseline[i].Metrics[name]; ok {
				w.Add(v)
			}
		}
		if int(w.N()) < cfg.MinBaseline {
			rep.Skipped++
			continue
		}
		rep.Compared++
		if f, ok := judge(name, sense, newest.Metrics[name], &w, cfg.Margin); ok {
			rep.Findings = append(rep.Findings, f)
		}
	}
	sort.Slice(rep.Findings, func(a, b int) bool {
		fa, fb := &rep.Findings[a], &rep.Findings[b]
		if fa.Regression != fb.Regression {
			return fa.Regression
		}
		if fa.RelExcess > fb.RelExcess {
			return true
		}
		if fb.RelExcess > fa.RelExcess {
			return false
		}
		return fa.Metric < fb.Metric
	})
	finishCheck(rep)
	return rep, nil
}

// judge applies the band-plus-margin test to one metric.
func judge(name string, sense Sense, value float64, w *converge.Welford, margin float64) (Finding, bool) {
	mean, band := w.Mean(), w.Band95()
	slack := band + margin*math.Abs(mean)
	delta := value - mean
	bad := delta > slack // UpIsBad: too far above the envelope
	good := delta < -slack
	if sense == DownIsBad {
		bad, good = good, bad
	}
	if !bad && !good {
		return Finding{}, false
	}
	scale := math.Abs(mean)
	if scale == 0 {
		scale = 1
	}
	f := Finding{
		Metric:     name,
		Worse:      sense.String(),
		Value:      value,
		Baseline:   Baseline{N: w.N(), Mean: mean, Std: w.Std(), Band: band},
		Regression: bad,
		RelDelta:   delta / scale,
		RelExcess:  (math.Abs(delta) - slack) / scale,
	}
	return f, true
}

// finishCheck emits the gate's telemetry self-accounting.
func finishCheck(rep *GateReport) {
	telemetry.GetCounter("history.gate.checks").Inc()
	telemetry.GetGauge("history.gate.regressions").Set(int64(rep.Regressions()))
	events.New("history.checked").Str("key", rep.Key).
		Int("baseline", int64(rep.BaselineN)).
		Int("compared", int64(rep.Compared)).
		Int("regressions", int64(rep.Regressions())).Emit()
}

// WriteText renders the gate report for terminals and CI logs.
func (g *GateReport) WriteText(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("== history gate: %s", g.Key)
	if g.VCSRevision != "" {
		p(" @ %.12s", g.VCSRevision)
	}
	p("\n")
	if g.Note != "" {
		p("PASS (no baseline): %s\n", g.Note)
		return err
	}
	p("baseline %d record(s); %d metric(s) compared, %d skipped (short baseline)\n",
		g.BaselineN, g.Compared, g.Skipped)
	for i := range g.Findings {
		f := &g.Findings[i]
		verdict := "improved "
		if f.Regression {
			verdict = "REGRESSED"
		}
		p("%s  %-44s %12.5g  baseline %.5g ±%.3g (n=%d, worse=%s)  Δ%+.1f%%\n",
			verdict, f.Metric, f.Value, f.Baseline.Mean, f.Baseline.Band,
			f.Baseline.N, f.Worse, 100*f.RelDelta)
	}
	if n := g.Regressions(); n > 0 {
		p("FAIL: %d regression(s) beyond the noise band\n", n)
	} else {
		p("PASS: no metric left its baseline noise band in the bad direction\n")
	}
	return err
}
