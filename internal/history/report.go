package history

import (
	"fmt"
	"io"
	"strings"
)

// ReportOptions selects what the trend report shows.
type ReportOptions struct {
	// LastK is how many trailing comparable records to trend
	// (default 20).
	LastK int
	// Metrics are glob patterns choosing the trended metrics; empty
	// means every metric with a registered direction (the gated set).
	Metrics []string
	// TopN caps the hotspot rows from the newest record's profile
	// (default 5).
	TopN int
	// Dirs is the direction table used for the default metric set and
	// the worse-direction column; nil means DefaultDirections.
	Dirs []Direction
}

func (o ReportOptions) withDefaults() ReportOptions {
	if o.LastK <= 0 {
		o.LastK = 20
	}
	if o.TopN <= 0 {
		o.TopN = 5
	}
	if o.Dirs == nil {
		o.Dirs = DefaultDirections()
	}
	return o
}

// trend is one metric's series over the trended records.
type trend struct {
	name   string
	worse  string // "", "up", "down"
	values []float64
	ok     []bool // value present in record i
}

// reportData is the renderer-agnostic shape both the text and the
// HTML renderer consume.
type reportData struct {
	key     string // CompatKey trended
	total   int    // records in the store
	trended int    // records matching key and inside LastK
	skipped int    // records excluded by key mismatch
	trends  []trend
	newest  *Record
}

// buildReport selects records comparable to the newest one and
// assembles per-metric series.
func buildReport(recs []Record, opt ReportOptions) (*reportData, error) {
	opt = opt.withDefaults()
	if len(recs) == 0 {
		return nil, fmt.Errorf("history: no records to report")
	}
	newest := recs[len(recs)-1]
	key := newest.CompatKey()
	matching := Matching(recs, key)
	window := Tail(matching, opt.LastK)
	d := &reportData{
		key:     key,
		total:   len(recs),
		trended: len(window),
		skipped: len(recs) - len(matching),
		newest:  &newest,
	}
	for _, name := range newest.MetricNames() {
		worse := ""
		if sense, gated := senseOf(name, opt.Dirs); gated {
			worse = sense.String()
		}
		if len(opt.Metrics) > 0 {
			hit := false
			for _, pat := range opt.Metrics {
				if globMatch(pat, name) {
					hit = true
					break
				}
			}
			if !hit {
				continue
			}
		} else if worse == "" {
			continue
		}
		tr := trend{name: name, worse: worse}
		present := 0
		for i := range window {
			v, ok := window[i].Metrics[name]
			tr.values = append(tr.values, v)
			tr.ok = append(tr.ok, ok)
			if ok {
				present++
			}
		}
		if present == 0 {
			continue
		}
		d.trends = append(d.trends, tr)
	}
	return d, nil
}

// sparkRunes are the eight-level unicode sparkline alphabet; a '·'
// marks a record the metric is absent from.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders the series as one rune per record, min-max scaled.
func sparkline(values []float64, ok []bool) string {
	lo, hi, any := 0.0, 0.0, false
	for i, v := range values {
		if !ok[i] {
			continue
		}
		if !any || v < lo {
			lo = v
		}
		if !any || v > hi {
			hi = v
		}
		any = true
	}
	var b strings.Builder
	for i, v := range values {
		if !ok[i] {
			b.WriteRune('·')
			continue
		}
		level := len(sparkRunes) / 2 // flat series sit mid-scale
		if hi > lo {
			level = int((v - lo) / (hi - lo) * float64(len(sparkRunes)-1))
		}
		b.WriteRune(sparkRunes[level])
	}
	return b.String()
}

// seriesStats returns min, max, and the latest present value.
func seriesStats(t *trend) (lo, hi, latest float64) {
	any := false
	for i, v := range t.values {
		if !t.ok[i] {
			continue
		}
		if !any || v < lo {
			lo = v
		}
		if !any || v > hi {
			hi = v
		}
		latest = v
		any = true
	}
	return lo, hi, latest
}

// WriteTextReport renders per-metric trends over the last K
// comparable records plus the newest record's profile hotspots.
// Output is deterministic for a fixed record set (golden-tested).
func WriteTextReport(w io.Writer, recs []Record, opt ReportOptions) error {
	opt = opt.withDefaults()
	d, err := buildReport(recs, opt)
	if err != nil {
		return err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "== run history: %s\n", d.key)
	fmt.Fprintf(&b, "store: %d record(s); trending last %d", d.total, d.trended)
	if d.skipped > 0 {
		fmt.Fprintf(&b, " (%d other-identity record(s) skipped)", d.skipped)
	}
	b.WriteString("\n")
	if d.newest.VCSRevision != "" {
		dirty := ""
		if d.newest.VCSDirty {
			dirty = " (dirty)"
		}
		fmt.Fprintf(&b, "newest: %.12s%s\n", d.newest.VCSRevision, dirty)
	}
	if len(d.trends) == 0 {
		b.WriteString("no trended metrics\n")
	} else {
		width := len("metric")
		for i := range d.trends {
			if len(d.trends[i].name) > width {
				width = len(d.trends[i].name)
			}
		}
		fmt.Fprintf(&b, "%-*s  %5s  %12s  %12s  %12s  trend\n",
			width, "metric", "worse", "min", "max", "latest")
		for i := range d.trends {
			t := &d.trends[i]
			lo, hi, latest := seriesStats(t)
			fmt.Fprintf(&b, "%-*s  %5s  %12.5g  %12.5g  %12.5g  %s\n",
				width, t.name, t.worse, lo, hi, latest, sparkline(t.values, t.ok))
		}
	}
	writeTextHotspots(&b, d.newest.Profile, opt.TopN)
	_, err = io.WriteString(w, b.String())
	return err
}

func writeTextHotspots(b *strings.Builder, p *ProfileSummary, topN int) {
	if p == nil {
		return
	}
	write := func(label string, spots []Hotspot) {
		if len(spots) == 0 {
			return
		}
		fmt.Fprintf(b, "-- %s hotspots (newest record)\n", label)
		if len(spots) > topN {
			spots = spots[:topN]
		}
		for _, h := range spots {
			fmt.Fprintf(b, "%6.2f%% flat  %6.2f%% cum  %s\n", h.FlatPct, h.CumPct, h.Func)
		}
	}
	write("cpu", p.CPU)
	write("heap", p.Heap)
}
