package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestWorkersDefaultAndOverride(t *testing.T) {
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("default Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	restore := SetWorkers(3)
	if got := Workers(); got != 3 {
		t.Fatalf("Workers() after SetWorkers(3) = %d", got)
	}
	restore()
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() after restore = %d, want %d", got, want)
	}
	restore = SetWorkers(-5)
	defer restore()
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() after SetWorkers(-5) = %d, want default %d", got, want)
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, w := range []int{1, 2, 7, 64} {
		restore := SetWorkers(w)
		const n = 100
		var counts [n]atomic.Int64
		if err := ForEach(context.Background(), n, func(i int) error {
			counts[i].Add(1)
			return nil
		}); err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i := range counts {
			if c := counts[i].Load(); c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, c)
			}
		}
		restore()
	}
}

func TestForEachEmptyAndNilContext(t *testing.T) {
	if err := ForEach(context.Background(), 0, func(int) error { return errors.New("boom") }); err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if err := ForEach(nil, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("nil ctx: %v", err)
	}
}

func TestForEachReturnsLowestIndexError(t *testing.T) {
	restore := SetWorkers(8)
	defer restore()
	errAt := func(i int) error { return fmt.Errorf("fail@%d", i) }
	err := ForEach(context.Background(), 50, func(i int) error {
		if i == 7 || i == 23 || i == 41 {
			return errAt(i)
		}
		return nil
	})
	if err == nil || err.Error() != "fail@7" {
		t.Fatalf("err = %v, want fail@7 (the lowest failing index, as a sequential loop would return)", err)
	}
}

func TestForEachErrorCancelsRemainingWork(t *testing.T) {
	restore := SetWorkers(2)
	defer restore()
	var ran atomic.Int64
	err := ForEach(context.Background(), 10000, func(i int) error {
		ran.Add(1)
		if i == 0 {
			return errors.New("early")
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if n := ran.Load(); n == 10000 {
		t.Fatal("error did not cancel the remaining work")
	}
}

func TestForEachContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := ForEach(ctx, 5, func(int) error { return nil }); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled ctx: err = %v", err)
	}

	// Cancel mid-sweep: no new indices are claimed after the
	// cancellation is observed, and the ctx error is reported.
	restore := SetWorkers(2)
	defer restore()
	ctx, cancel = context.WithCancel(context.Background())
	defer cancel()
	var ran atomic.Int64
	err := ForEach(ctx, 100000, func(i int) error {
		if ran.Add(1) == 10 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-sweep cancel: err = %v", err)
	}
	if n := ran.Load(); n == 100000 {
		t.Fatal("cancellation did not stop the sweep")
	}
}

func TestForEachPanicPropagates(t *testing.T) {
	restore := SetWorkers(4)
	defer restore()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatal("worker panic was swallowed")
		}
		pe, ok := r.(*PanicError)
		if !ok {
			t.Fatalf("recovered %T, want *PanicError", r)
		}
		if fmt.Sprint(pe.Value) != "kaboom" {
			t.Fatalf("PanicError.Value = %v", pe.Value)
		}
		if len(pe.Stack) == 0 {
			t.Fatal("PanicError.Stack empty")
		}
	}()
	_ = ForEach(context.Background(), 20, func(i int) error {
		if i == 3 {
			panic("kaboom")
		}
		return nil
	})
}

func TestMapOrdersResults(t *testing.T) {
	for _, w := range []int{1, 8} {
		restore := SetWorkers(w)
		got, err := Map(context.Background(), 64, func(i int) (int, error) {
			return i * i, nil
		})
		restore()
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: got[%d] = %d, want %d", w, i, v, i*i)
			}
		}
	}
}

func TestMapErrorDiscardsResults(t *testing.T) {
	got, err := Map(context.Background(), 8, func(i int) (int, error) {
		if i == 2 {
			return 0, errors.New("nope")
		}
		return i, nil
	})
	if err == nil {
		t.Fatal("expected error")
	}
	if got != nil {
		t.Fatalf("partial results leaked: %v", got)
	}
}

func TestCacheSingleflight(t *testing.T) {
	var c Cache[string, int]
	var computed atomic.Int64
	const callers = 32
	var wg sync.WaitGroup
	results := make([]int, callers)
	for k := 0; k < callers; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			v, err := c.Do("key", func() (int, error) {
				computed.Add(1)
				time.Sleep(5 * time.Millisecond)
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[k] = v
		}(k)
	}
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("compute ran %d times, want 1", n)
	}
	for _, v := range results {
		if v != 42 {
			t.Fatalf("caller saw %d", v)
		}
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d", c.Len())
	}
	if v, ok := c.Get("key"); !ok || v != 42 {
		t.Fatalf("Get = (%d, %v)", v, ok)
	}
	if _, ok := c.Get("missing"); ok {
		t.Fatal("Get found a missing key")
	}
}

func TestCacheDoesNotCacheFailures(t *testing.T) {
	var c Cache[int, string]
	var calls atomic.Int64
	fail := func() (string, error) {
		calls.Add(1)
		return "", errors.New("transient")
	}
	if _, err := c.Do(1, fail); err == nil {
		t.Fatal("expected error")
	}
	if _, err := c.Do(1, fail); err == nil {
		t.Fatal("expected error on retry")
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("failing compute ran %d times, want 2 (failures must not be cached)", n)
	}
	v, err := c.Do(1, func() (string, error) { calls.Add(1); return "ok", nil })
	if err != nil || v != "ok" {
		t.Fatalf("Do after failures = (%q, %v)", v, err)
	}
	if v, _ := c.Do(1, fail); v != "ok" {
		t.Fatal("success was not cached")
	}
}

func TestCachePanicPropagatesAndForgets(t *testing.T) {
	var c Cache[int, int]
	mustPanic := func() {
		defer func() {
			if r := recover(); r == nil {
				t.Fatal("panic swallowed")
			}
		}()
		_, _ = c.Do(5, func() (int, error) { panic("bad compute") })
	}
	mustPanic()
	v, err := c.Do(5, func() (int, error) { return 9, nil })
	if err != nil || v != 9 {
		t.Fatalf("Do after panic = (%d, %v), want fresh computation", v, err)
	}
}

func TestCacheReset(t *testing.T) {
	var c Cache[int, int]
	var calls atomic.Int64
	one := func() (int, error) { calls.Add(1); return 1, nil }
	if _, err := c.Do(0, one); err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if c.Len() != 0 {
		t.Fatalf("Len after Reset = %d", c.Len())
	}
	if _, err := c.Do(0, one); err != nil {
		t.Fatal(err)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("compute ran %d times across a Reset, want 2", n)
	}
}
