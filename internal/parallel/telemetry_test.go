package parallel

import (
	"context"
	"errors"
	"testing"

	"repro/internal/telemetry"
)

// TestPoolTelemetry: one ForEach sweep accounts for every task in the
// submitted/completed counters and the wait/busy histograms.
func TestPoolTelemetry(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	const n = 50
	err := ForEach(context.Background(), n, func(i int) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := telTasksSubmitted.Value(); got != n {
		t.Errorf("tasks.submitted = %d, want %d", got, n)
	}
	if got := telTasksCompleted.Value(); got != n {
		t.Errorf("tasks.completed = %d, want %d", got, n)
	}
	if got := telQueueWait.Count(); got != n {
		t.Errorf("queue.wait observations = %d, want %d", got, n)
	}
	if got := telWorkerBusy.Count(); got != n {
		t.Errorf("worker.busy observations = %d, want %d", got, n)
	}
	if got := telPoolWidth.Value(); got < 1 || got > int64(Workers()) {
		t.Errorf("pool.width = %d, want within [1, %d]", got, Workers())
	}
}

// TestPoolTelemetryError: failed tasks are not counted as completed.
func TestPoolTelemetryError(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	boom := errors.New("boom")
	err := ForEach(context.Background(), 8, func(i int) error {
		if i == 3 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want boom", err)
	}
	if got := telTasksCompleted.Value(); got >= 8 {
		t.Errorf("tasks.completed = %d, want < 8 (task 3 failed)", got)
	}
}

// TestPoolTelemetryPanic: a recovered worker panic increments the panic
// counter and is not credited as a completion.
func TestPoolTelemetryPanic(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected the pool to re-raise the panic")
			}
		}()
		_ = ForEach(context.Background(), 4, func(i int) error {
			if i == 0 {
				panic("kaboom")
			}
			return nil
		})
	}()
	if got := telPanics.Value(); got != 1 {
		t.Errorf("panics_recovered = %d, want 1", got)
	}
	if got := telTasksCompleted.Value(); got >= 4 {
		t.Errorf("tasks.completed = %d, want < 4 (task 0 panicked)", got)
	}
}

// TestPoolTelemetryDisabled: with the switch off a sweep records
// nothing at all.
func TestPoolTelemetryDisabled(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	telemetry.SetEnabled(false)
	if err := ForEach(context.Background(), 16, func(i int) error { return nil }); err != nil {
		t.Fatal(err)
	}
	if telTasksSubmitted.Value() != 0 || telTasksCompleted.Value() != 0 ||
		telQueueWait.Count() != 0 || telWorkerBusy.Count() != 0 {
		t.Errorf("disabled pool recorded: submitted=%d completed=%d wait=%d busy=%d",
			telTasksSubmitted.Value(), telTasksCompleted.Value(),
			telQueueWait.Count(), telWorkerBusy.Count())
	}
}

// TestCacheTelemetry: a named cache reports hits, misses, and both
// eviction paths (failed computations and Reset).
func TestCacheTelemetry(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	c := Cache[int, int]{Name: "test.memo"}
	hits := telemetry.GetCounter("cache.test.memo.hits")
	misses := telemetry.GetCounter("cache.test.memo.misses")
	evictions := telemetry.GetCounter("cache.test.memo.evictions")

	if _, err := c.Do(1, func() (int, error) { return 10, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Do(1, func() (int, error) { t.Error("recompute"); return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if hits.Value() != 1 || misses.Value() != 1 {
		t.Errorf("hits/misses = %d/%d, want 1/1", hits.Value(), misses.Value())
	}

	wantErr := errors.New("fail")
	if _, err := c.Do(2, func() (int, error) { return 0, wantErr }); !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want fail", err)
	}
	if evictions.Value() != 1 {
		t.Errorf("evictions after failed compute = %d, want 1", evictions.Value())
	}

	c.Reset()
	if evictions.Value() != 2 {
		t.Errorf("evictions after Reset = %d, want 2 (one retained entry dropped)", evictions.Value())
	}
}

// TestCacheUnnamedNoTelemetry: an unnamed cache registers nothing and
// stays silent.
func TestCacheUnnamedNoTelemetry(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	var c Cache[int, int]
	if _, err := c.Do(1, func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if c.hits != nil || c.misses != nil || c.evicted != nil {
		t.Error("unnamed cache registered telemetry counters")
	}
}

// TestCacheDoCtxScopeAttribution: DoCtx tallies hits/misses into the
// telemetry scope the context carries, so per-job manifests can report
// a job's own cache traffic. A ctx without a scope behaves like Do.
func TestCacheDoCtxScopeAttribution(t *testing.T) {
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	c := Cache[int, int]{Name: "test.memo.scoped"}
	scA, scB := telemetry.NewScope(), telemetry.NewScope()
	ctxA := telemetry.NewScopeContext(context.Background(), scA)
	ctxB := telemetry.NewScopeContext(context.Background(), scB)

	if _, err := c.DoCtx(ctxA, 1, func() (int, error) { return 10, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DoCtx(ctxB, 1, func() (int, error) { t.Error("recompute"); return 0, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := c.DoCtx(context.Background(), 1, func() (int, error) { return 0, nil }); err != nil {
		t.Fatal(err)
	}

	if got := scA.CounterValue("cache.test.memo.scoped.misses"); got != 1 {
		t.Errorf("scope A misses = %d, want 1", got)
	}
	if got := scA.CounterValue("cache.test.memo.scoped.hits"); got != 0 {
		t.Errorf("scope A hits = %d, want 0", got)
	}
	if got := scB.CounterValue("cache.test.memo.scoped.hits"); got != 1 {
		t.Errorf("scope B hits = %d, want 1", got)
	}

	// Global counters saw every call, scoped or not: the scopeless
	// third call's hit lands only in the globals.
	hits := telemetry.GetCounter("cache.test.memo.scoped.hits")
	misses := telemetry.GetCounter("cache.test.memo.scoped.misses")
	if hits.Value() != 2 || misses.Value() != 1 {
		t.Errorf("global hits/misses = %d/%d, want 2/1", hits.Value(), misses.Value())
	}
	scoped := scA.CounterValue("cache.test.memo.scoped.hits") + scB.CounterValue("cache.test.memo.scoped.hits")
	if unattributed := hits.Value() - scoped; unattributed != 1 {
		t.Errorf("unattributed hits = %d, want exactly the scopeless call", unattributed)
	}
}
