package parallel

import (
	"context"
	"sync"

	"repro/internal/telemetry"
)

// Cache is a concurrency-safe memoization map with singleflight
// semantics: for each key the compute function runs exactly once, even
// under concurrent Do calls for that key — latecomers block until the
// first caller's result is ready and then share it. Failed computations
// (error or panic) are not cached, so a later Do retries.
//
// The zero value is ready to use. Values are shared between callers:
// cache only immutable results, or have callers copy before mutating.
//
// A cache constructed with a Name reports telemetry: Do hits and misses
// plus evictions (failed computations dropped, Reset discards) under
// cache.<Name>.{hits,misses,evictions}. Unnamed caches report nothing.
type Cache[K comparable, V any] struct {
	// Name, when non-empty, registers the cache's telemetry counters on
	// first use. Set it in the composite literal; it must not change
	// after the first Do.
	Name string

	mu      sync.Mutex
	entries map[K]*cacheEntry[V]
	hits    *telemetry.Counter
	misses  *telemetry.Counter
	evicted *telemetry.Counter
}

type cacheEntry[V any] struct {
	done   chan struct{}
	val    V
	err    error
	caught *PanicError
}

// initMetrics lazily resolves the named counters; called under mu. The
// counter methods are nil-safe, so unnamed caches leave them nil and
// every bump is a no-op.
func (c *Cache[K, V]) initMetrics() {
	if c.Name == "" || c.hits != nil {
		return
	}
	c.hits = telemetry.GetCounter("cache." + c.Name + ".hits")
	c.misses = telemetry.GetCounter("cache." + c.Name + ".misses")
	c.evicted = telemetry.GetCounter("cache." + c.Name + ".evictions")
}

// Do returns the cached value for key, computing it with fn on the
// first call. Concurrent calls for the same key wait for the in-flight
// computation instead of duplicating it. If fn panics, the panic is
// re-raised (as a *PanicError) on every waiting caller and the entry is
// forgotten.
func (c *Cache[K, V]) Do(key K, fn func() (V, error)) (V, error) {
	return c.do(nil, key, fn)
}

// DoCtx is Do with per-scope telemetry attribution: when ctx carries a
// telemetry.Scope (the accordiond server installs one per job), the
// cache's hit/miss counters are additionally tallied into that scope,
// so a job's provenance manifest can report the cache traffic that job
// itself generated rather than the process-wide totals. The context is
// used only for attribution — cancellation still belongs to fn.
func (c *Cache[K, V]) DoCtx(ctx context.Context, key K, fn func() (V, error)) (V, error) {
	return c.do(telemetry.ScopeFrom(ctx), key, fn)
}

func (c *Cache[K, V]) do(sc *telemetry.Scope, key K, fn func() (V, error)) (V, error) {
	c.mu.Lock()
	c.initMetrics()
	if c.entries == nil {
		c.entries = make(map[K]*cacheEntry[V])
	}
	if e, ok := c.entries[key]; ok {
		c.mu.Unlock()
		c.hits.IncScoped(sc)
		<-e.done
		if e.caught != nil {
			panic(e.caught)
		}
		return e.val, e.err
	}
	e := &cacheEntry[V]{done: make(chan struct{})}
	c.entries[key] = e
	c.mu.Unlock()
	c.misses.IncScoped(sc)

	func() {
		defer func() {
			if r := recover(); r != nil {
				if pe, ok := r.(*PanicError); ok {
					e.caught = pe
				} else {
					e.caught = &PanicError{Value: r}
				}
			}
		}()
		e.val, e.err = fn()
	}()
	if e.err != nil || e.caught != nil {
		c.mu.Lock()
		delete(c.entries, key)
		c.mu.Unlock()
		c.evicted.Inc()
	}
	close(e.done)
	if e.caught != nil {
		panic(e.caught)
	}
	return e.val, e.err
}

// Get returns the cached value for key without computing anything; ok
// reports whether a completed, successful entry exists.
func (c *Cache[K, V]) Get(key K) (v V, ok bool) {
	c.mu.Lock()
	e, exists := c.entries[key]
	c.mu.Unlock()
	if !exists {
		return v, false
	}
	select {
	case <-e.done:
		if e.err != nil || e.caught != nil {
			return v, false
		}
		return e.val, true
	default:
		return v, false
	}
}

// Len returns the number of entries (including in-flight ones).
func (c *Cache[K, V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Reset empties the cache. In-flight computations complete and deliver
// to their waiters but are not retained. Discarded entries count as
// evictions in the cache's telemetry.
func (c *Cache[K, V]) Reset() {
	c.mu.Lock()
	n := len(c.entries)
	c.entries = nil
	c.mu.Unlock()
	if n > 0 {
		c.evicted.Add(int64(n))
	}
}
