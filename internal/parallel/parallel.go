// Package parallel is the repository's bounded fan-out engine: a
// deterministic worker pool (ForEach, Map) and a memoizing singleflight
// cache (Cache) shared by every layer that exploits the evaluation's
// embarrassing parallelism — Monte-Carlo chip populations, per-benchmark
// quality fronts, solver sweeps, and the all-experiments driver.
//
// Determinism is the design constraint every primitive honors: work is
// identified by index, results land at their index, and no output
// depends on goroutine scheduling. A parallel run therefore produces
// byte-identical artifacts to a sequential one; only the wall clock
// changes.
//
// The fan-out width defaults to GOMAXPROCS and is overridable
// process-wide with SetWorkers (cmd/accordion's -j flag).
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/telemetry"
	"repro/internal/telemetry/trace"
)

// Pool telemetry. Counters are self-gating (a disabled Add is one
// atomic load), so they are bumped unconditionally; the timing paths
// additionally gate their time.Now calls on telemetry.On().
var (
	telTasksSubmitted = telemetry.GetCounter("parallel.tasks.submitted")
	telTasksCompleted = telemetry.GetCounter("parallel.tasks.completed")
	telPanics         = telemetry.GetCounter("parallel.panics_recovered")
	telPoolWidth      = telemetry.GetGauge("parallel.pool.width")
	telQueueWait      = telemetry.GetHistogram("parallel.queue.wait_ns")
	telWorkerBusy     = telemetry.GetHistogram("parallel.worker.busy_ns")
)

// workerOverride holds the explicit width set by SetWorkers; zero means
// "use GOMAXPROCS".
var workerOverride atomic.Int64

// Workers returns the effective fan-out width: the explicit SetWorkers
// override when one is set, else GOMAXPROCS.
func Workers() int {
	if n := workerOverride.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers overrides the process-wide fan-out width; n <= 0 restores
// the GOMAXPROCS default. It returns a function restoring the previous
// setting, for scoped use in tests and benchmarks.
func SetWorkers(n int) (restore func()) {
	prev := workerOverride.Load()
	if n < 0 {
		n = 0
	}
	workerOverride.Store(int64(n))
	return func() { workerOverride.Store(prev) }
}

// PanicError wraps a panic captured in a pool worker so it can be
// re-raised on the calling goroutine with the worker's stack attached.
type PanicError struct {
	Value any    // the value passed to panic()
	Stack []byte // the panicking worker's stack trace
}

// Error formats the captured panic.
func (e *PanicError) Error() string {
	return fmt.Sprintf("parallel: worker panic: %v\n%s", e.Value, e.Stack)
}

// ForEach runs fn(0..n-1), fanning out across min(Workers(), n)
// goroutines. Indices are claimed in ascending order. The first error
// (lowest failing index) cancels the remaining work and is returned; a
// nil ctx means context.Background(), and a ctx cancellation cancels
// the sweep and returns the ctx error. A panic in fn is captured,
// cancels the pool, and is re-raised on the caller's goroutine as a
// *PanicError.
func ForEach(ctx context.Context, n int, fn func(i int) error) error {
	return ForEachCtx(ctx, n, func(_ context.Context, i int) error { return fn(i) })
}

// ForEachCtx is ForEach for work that wants the pool's per-worker
// context: fn receives a context derived from ctx that, while tracing
// is enabled, carries the worker's trace span (a parallel.worker lane
// under the caller's current span), so spans opened inside fn nest
// under the worker that actually ran the task — the trace's worker
// attribution. With tracing disabled the worker context is ctx itself
// and the path adds nothing.
func ForEachCtx(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := Workers()
	if w > n {
		w = n
	}
	telTasksSubmitted.Add(int64(n))
	telPoolWidth.Set(int64(w))
	var poolStart time.Time
	if telemetry.On() {
		poolStart = time.Now()
	}

	poolCtx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		mu     sync.Mutex
		errAt  = -1 // lowest index that failed
		err    error
		caught *PanicError
	)
	next.Store(-1)
	record := func(i int, e error, pe *PanicError) {
		if pe != nil {
			telPanics.Inc()
		}
		mu.Lock()
		if pe != nil && caught == nil {
			caught = pe
		}
		if e != nil && (errAt < 0 || i < errAt) {
			errAt, err = i, e
		}
		mu.Unlock()
		cancel()
	}
	// finished distinguishes a normal return from a recovered panic
	// (where the named results stay zero), so the completion counter
	// never credits a panicked task.
	run := func(wctx context.Context, i int) (e error, finished bool) {
		defer func() {
			if r := recover(); r != nil {
				record(i, nil, &PanicError{Value: r, Stack: debug.Stack()})
			}
		}()
		return fn(wctx, i), true
	}
	parent := trace.FromContext(ctx)
	for k := 0; k < w; k++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			// Worker attribution: every worker records its own lane so
			// the trace shows which goroutine ran which task spans.
			wctx, tasks := ctx, int64(0)
			var ws *trace.Span
			if trace.On() {
				ws = trace.ChildLane(parent, "parallel.worker").Arg("worker", int64(worker))
				wctx = trace.NewContext(ctx, ws)
				defer func() { ws.Arg("tasks", tasks).End() }()
			}
			for {
				i := int(next.Add(1))
				if i >= n || poolCtx.Err() != nil {
					return
				}
				var claimed time.Time
				if !poolStart.IsZero() {
					claimed = time.Now()
					telQueueWait.Observe(claimed.Sub(poolStart).Nanoseconds())
				}
				e, finished := run(wctx, i)
				if !claimed.IsZero() {
					telWorkerBusy.Observe(time.Since(claimed).Nanoseconds())
				}
				if e != nil {
					record(i, e, nil)
					return
				}
				if finished {
					tasks++
					telTasksCompleted.Inc()
				}
			}
		}(k)
	}
	wg.Wait()
	if caught != nil {
		panic(caught)
	}
	if err != nil {
		return err
	}
	// Distinguish a caller-initiated cancellation from our own cleanup
	// cancel: only the parent context's error is reported.
	return ctx.Err()
}

// Map runs fn(0..n-1) under ForEach's pool and returns the results in
// index order, so the output is identical to a sequential loop. On any
// error the partial results are discarded and the (lowest-index) error
// returned.
func Map[T any](ctx context.Context, n int, fn func(i int) (T, error)) ([]T, error) {
	return MapCtx(ctx, n, func(_ context.Context, i int) (T, error) { return fn(i) })
}

// MapCtx is Map with ForEachCtx's per-worker context: fn's ctx carries
// the running worker's trace span while tracing is enabled.
func MapCtx[T any](ctx context.Context, n int, fn func(ctx context.Context, i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := ForEachCtx(ctx, n, func(wctx context.Context, i int) error {
		v, e := fn(wctx, i)
		if e != nil {
			return e
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}
