package provenance

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestManifestRoundTrip: a populated manifest survives write → load
// with every recorded field intact.
func TestManifestRoundTrip(t *testing.T) {
	dir := t.TempDir()
	artifact := filepath.Join(dir, "out.csv")
	if err := os.WriteFile(artifact, []byte("a,b\n1,2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	m := New("accordion-test")
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.Int("chips", 100, "")
	fs.String("chip", "accordion", "")
	if err := fs.Parse([]string{"-chips", "25"}); err != nil {
		t.Fatal(err)
	}
	m.SetFlags(fs)
	m.AddRunner("fig1", 120*time.Millisecond, nil)
	m.AddRunner("fig2", 80*time.Millisecond, errors.New("boom"))
	m.AddCache("repChips", 3, 1)
	if err := m.AddArtifactFile("out.csv", artifact); err != nil {
		t.Fatal(err)
	}
	m.AddArtifactBytes("stdout", []byte("rendered tables"))
	m.Finish()

	path := filepath.Join(dir, "manifest.json")
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != "accordion-test" || got.GoVersion == "" {
		t.Fatalf("tool/go_version not preserved: %+v", got)
	}
	if got.Flags["chips"] != "25" || got.Flags["chip"] != "accordion" {
		t.Fatalf("flags not preserved: %v", got.Flags)
	}
	if len(got.Runners) != 2 || got.Runners[0].WallMs != 120 || got.Runners[1].Error != "boom" {
		t.Fatalf("runners not preserved: %+v", got.Runners)
	}
	if len(got.Caches) != 1 || got.Caches[0].HitRate != 0.75 {
		t.Fatalf("caches not preserved: %+v", got.Caches)
	}
	if len(got.Artifacts) != 2 {
		t.Fatalf("artifacts not preserved: %+v", got.Artifacts)
	}
	want := sha256.Sum256([]byte("a,b\n1,2\n"))
	if got.Artifacts[0].SHA256 != hex.EncodeToString(want[:]) {
		t.Fatalf("artifact hash = %s, want %s", got.Artifacts[0].SHA256, hex.EncodeToString(want[:]))
	}
	if got.Artifacts[1].Path != "" {
		t.Fatal("in-memory artifact gained a path")
	}
	if got.WallMs < 0 || got.End.Before(got.Start) {
		t.Fatalf("wall time not sane: start=%v end=%v wall=%d", got.Start, got.End, got.WallMs)
	}
}

// TestVerifyArtifacts: verification passes on intact files, flags
// tampering, and skips in-memory artifacts.
func TestVerifyArtifacts(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.json")
	if err := os.WriteFile(path, []byte(`{"x":1}`), 0o644); err != nil {
		t.Fatal(err)
	}
	m := New("t")
	if err := m.AddArtifactFile("data.json", path); err != nil {
		t.Fatal(err)
	}
	m.AddArtifactBytes("stdout", []byte("ignored by verify"))
	if errs := m.VerifyArtifacts(); errs != nil {
		t.Fatalf("verify of intact artifacts failed: %v", errs)
	}
	if err := os.WriteFile(path, []byte(`{"x":2}`), 0o644); err != nil {
		t.Fatal(err)
	}
	errs := m.VerifyArtifacts()
	if len(errs) != 1 || !strings.Contains(errs[0].Error(), "sha256 mismatch") {
		t.Fatalf("verify of tampered artifact: %v", errs)
	}
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}
	if errs := m.VerifyArtifacts(); len(errs) != 1 {
		t.Fatalf("verify of missing artifact: %v", errs)
	}
}

// TestManifestJSONKeys pins the documented field names.
func TestManifestJSONKeys(t *testing.T) {
	m := New("t")
	m.AddArtifactBytes("a", []byte("x"))
	m.Finish()
	var buf bytes.Buffer
	if err := m.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"tool", "args", "flags", "go_version", "start", "end", "wall_ms", "artifacts"} {
		if _, ok := doc[key]; !ok {
			t.Errorf("manifest missing key %q", key)
		}
	}
}

// TestLoadRejectsGarbage: a non-JSON manifest is a clean error.
func TestLoadRejectsGarbage(t *testing.T) {
	path := filepath.Join(t.TempDir(), "manifest.json")
	if err := os.WriteFile(path, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err == nil {
		t.Fatal("Load accepted garbage")
	}
}
