// Package provenance records what a run actually was: the full flag
// set and arguments, toolchain and module versions, per-runner wall
// time, cache hit rates, and a SHA-256 for every artifact the run
// wrote. The manifest.json it produces makes a result reproducible
// (re-run with the recorded flags) and auditable (re-hash the
// artifacts and compare) long after the terminal scrollback is gone.
//
// The package is pure stdlib and imports nothing else from this
// module, so any layer may use it; in practice only cmd binaries do.
package provenance

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"time"
)

// Artifact is one file (or rendered stream) the run produced. Path is
// empty for artifacts captured as in-memory bytes (e.g. stdout
// renders); Verify skips those since there is nothing on disk to
// re-hash.
type Artifact struct {
	Name   string `json:"name"`
	Path   string `json:"path,omitempty"`
	SHA256 string `json:"sha256"`
	Bytes  int64  `json:"bytes"`
}

// Runner is one experiment runner's outcome.
type Runner struct {
	ID     string `json:"id"`
	WallMs int64  `json:"wall_ms"`
	Error  string `json:"error,omitempty"`
}

// Cache is one memo cache's hit accounting at the end of the run.
type Cache struct {
	Name    string  `json:"name"`
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// Manifest is the run provenance document.
type Manifest struct {
	Tool        string            `json:"tool"`
	Args        []string          `json:"args"`
	Flags       map[string]string `json:"flags"`
	GoVersion   string            `json:"go_version"`
	Module      string            `json:"module,omitempty"`
	VCSRevision string            `json:"vcs_revision,omitempty"`
	VCSModified bool              `json:"vcs_modified,omitempty"`
	Start       time.Time         `json:"start"`
	End         time.Time         `json:"end"`
	WallMs      int64             `json:"wall_ms"`
	Runners     []Runner          `json:"runners,omitempty"`
	Caches      []Cache           `json:"caches,omitempty"`
	Artifacts   []Artifact        `json:"artifacts"`
}

// New starts a manifest for the named tool, stamping the start time,
// command-line arguments, and whatever build metadata the binary
// carries (Go version always; module path and VCS revision when the
// binary was built inside a module with VCS stamping).
func New(tool string) *Manifest {
	m := &Manifest{
		Tool:      tool,
		Args:      append([]string(nil), os.Args[1:]...),
		Flags:     map[string]string{},
		GoVersion: runtime.Version(),
		Start:     time.Now().UTC(),
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		m.Module = info.Main.Path
		for _, s := range info.Settings {
			switch s.Key {
			case "vcs.revision":
				m.VCSRevision = s.Value
			case "vcs.modified":
				m.VCSModified = s.Value == "true"
			}
		}
	}
	return m
}

// SetFlags records every flag's effective value (set or default) from
// a parsed FlagSet.
func (m *Manifest) SetFlags(fs *flag.FlagSet) {
	fs.VisitAll(func(f *flag.Flag) {
		m.Flags[f.Name] = f.Value.String()
	})
}

// AddRunner appends one runner's wall time and error state.
func (m *Manifest) AddRunner(id string, wall time.Duration, err error) {
	r := Runner{ID: id, WallMs: wall.Milliseconds()}
	if err != nil {
		r.Error = err.Error()
	}
	m.Runners = append(m.Runners, r)
}

// AddCache appends one memo cache's hit accounting.
func (m *Manifest) AddCache(name string, hits, misses int64) {
	c := Cache{Name: name, Hits: hits, Misses: misses}
	if total := hits + misses; total > 0 {
		c.HitRate = float64(hits) / float64(total)
	}
	m.Caches = append(m.Caches, c)
}

// AddArtifactBytes records an in-memory artifact (no backing path).
func (m *Manifest) AddArtifactBytes(name string, data []byte) {
	m.Artifacts = append(m.Artifacts, Artifact{
		Name:   name,
		SHA256: hashBytes(data),
		Bytes:  int64(len(data)),
	})
}

// AddArtifactFile hashes a file the run wrote and records it under its
// path, so a later Verify can re-hash it.
func (m *Manifest) AddArtifactFile(name, path string) error {
	sum, n, err := hashFile(path)
	if err != nil {
		return fmt.Errorf("provenance: artifact %s: %w", name, err)
	}
	m.Artifacts = append(m.Artifacts, Artifact{
		Name:   name,
		Path:   path,
		SHA256: sum,
		Bytes:  n,
	})
	return nil
}

// Finish stamps the end time and total wall time.
func (m *Manifest) Finish() {
	m.End = time.Now().UTC()
	m.WallMs = m.End.Sub(m.Start).Milliseconds()
}

// WriteJSON renders the manifest as indented JSON.
func (m *Manifest) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(m)
}

// WriteFile writes the manifest to path.
func (m *Manifest) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a manifest back from path.
func Load(path string) (*Manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("provenance: %s: %w", path, err)
	}
	return &m, nil
}

// VerifyArtifacts re-hashes every path-backed artifact and returns one
// error per mismatch or unreadable file. Paths are resolved relative
// to the current working directory, exactly as they were recorded.
// In-memory artifacts (empty Path) are skipped. A nil slice means
// every checkable artifact matched.
func (m *Manifest) VerifyArtifacts() []error {
	var errs []error
	for _, a := range m.Artifacts {
		if a.Path == "" {
			continue
		}
		sum, n, err := hashFile(a.Path)
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", a.Name, err))
			continue
		}
		if sum != a.SHA256 {
			errs = append(errs, fmt.Errorf("%s: sha256 mismatch: manifest %s, file %s", a.Name, a.SHA256, sum))
		} else if n != a.Bytes {
			errs = append(errs, fmt.Errorf("%s: size mismatch: manifest %d, file %d", a.Name, a.Bytes, n))
		}
	}
	return errs
}

func hashBytes(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func hashFile(path string) (sum string, n int64, err error) {
	f, err := os.Open(path)
	if err != nil {
		return "", 0, err
	}
	defer f.Close()
	h := sha256.New()
	n, err = io.Copy(h, f)
	if err != nil {
		return "", 0, err
	}
	return hex.EncodeToString(h.Sum(nil)), n, nil
}
