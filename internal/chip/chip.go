// Package chip assembles the technology and variation models into the
// hypothetical NTV manycore of the paper's Table 2: 288 cores in 36
// clusters of 8 on a ~20x20 mm 11nm die, with 64 KB core-private
// memories and a 2 MB memory block per cluster.
//
// A Chip is one variation-afflicted sample: every core carries its own
// threshold-voltage and channel-length deviations, every memory block
// its own minimum operating voltage VddMIN. From those the chip derives
// per-core maximum/safe/speculative frequencies, per-cluster VddMIN,
// and the chip-wide near-threshold operating voltage VddNTV (the
// maximum per-cluster VddMIN, exactly as in Section 6.1).
package chip

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/converge"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/tech"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
	"repro/internal/telemetry/trace"
	"repro/internal/variation"
)

// Factory telemetry: how many Monte-Carlo chips have been drawn and how
// long one draw takes (two correlated-field samples plus the voltage
// derivation; the factory's Cholesky cost is paid once at NewFactory).
var (
	telChipsDrawn = telemetry.GetCounter("chip.factory.chips_drawn")
	telDrawNs     = telemetry.GetHistogram("chip.factory.draw_ns")
)

// Config describes the chip organization and its variation environment.
type Config struct {
	Tech     tech.Params
	Vth      variation.FieldParams
	Leff     variation.FieldParams
	Clusters int // total clusters (36)
	CoresPer int // cores per cluster (8)

	CoreMemBits    int // bits per core-private memory block (64 KB)
	ClusterMemBits int // bits per cluster memory block (2 MB)

	PowerBudget float64 // W, chip power budget PMAX (100)
}

// DefaultConfig returns the paper's Table 2 system configuration.
func DefaultConfig() Config {
	return Config{
		Tech:           tech.Default11nm(),
		Vth:            variation.DefaultVth(),
		Leff:           variation.DefaultLeff(),
		Clusters:       36,
		CoresPer:       8,
		CoreMemBits:    64 * 1024 * 8,
		ClusterMemBits: 2 * 1024 * 1024 * 8,
		PowerBudget:    100,
	}
}

// Validate reports the first invalid field, or nil.
func (c Config) Validate() error {
	if err := c.Tech.Validate(); err != nil {
		return err
	}
	if err := c.Vth.Validate(); err != nil {
		return err
	}
	if err := c.Leff.Validate(); err != nil {
		return err
	}
	switch {
	case c.Clusters <= 0 || c.CoresPer <= 0:
		return fmt.Errorf("chip: need positive cluster and core counts")
	case c.CoreMemBits <= 0 || c.ClusterMemBits <= 0:
		return fmt.Errorf("chip: need positive memory sizes")
	case c.PowerBudget <= 0:
		return fmt.Errorf("chip: need a positive power budget")
	}
	gridSide := int(math.Round(math.Sqrt(float64(c.Clusters))))
	if gridSide*gridSide != c.Clusters {
		return fmt.Errorf("chip: cluster count %d is not a perfect square", c.Clusters)
	}
	return nil
}

// NumCores returns the total core count.
func (c Config) NumCores() int { return c.Clusters * c.CoresPer }

// Core is one variation-afflicted core.
type Core struct {
	ID      int
	Cluster int
	Pos     variation.Point
	VthDev  float64 // fractional Vth deviation
	LeffDev float64 // fractional Leff deviation
}

// Vth returns the core's actual threshold voltage under tech params tp.
func (co Core) Vth(tp tech.Params) float64 { return tp.VthNom * (1 + co.VthDev) }

// BlockKind distinguishes the two memory block types.
type BlockKind int

// Memory block kinds.
const (
	CoreMem BlockKind = iota
	ClusterMem
)

// MemBlock is one SRAM block with its minimum operating voltage.
type MemBlock struct {
	Kind    BlockKind
	Cluster int
	Core    int // owning core for CoreMem blocks, -1 for ClusterMem
	VthDev  float64
	VddMIN  float64
}

// Chip is a single variation-afflicted sample of the manycore.
type Chip struct {
	Cfg    Config
	Seed   int64
	Cores  []Core
	Blocks []MemBlock

	clusterVddMIN []float64
	vddNTV        float64
}

// layout returns the sampling points: for each cluster, CoresPer core
// points (shared by the core and its private memory, which abuts it)
// followed by one cluster-memory point, laid out on a uniform grid.
func layout(cfg Config) (corePts, clusterMemPts []variation.Point) {
	side := int(math.Round(math.Sqrt(float64(cfg.Clusters))))
	coreSide := int(math.Ceil(math.Sqrt(float64(cfg.CoresPer))))
	tile := 1.0 / float64(side)
	for cy := 0; cy < side; cy++ {
		for cx := 0; cx < side; cx++ {
			ox, oy := float64(cx)*tile, float64(cy)*tile
			for k := 0; k < cfg.CoresPer; k++ {
				gx, gy := k%coreSide, k/coreSide
				corePts = append(corePts, variation.Point{
					X: ox + (float64(gx)+0.5)/float64(coreSide)*tile*0.8,
					Y: oy + (float64(gy)+0.5)/float64(coreSide)*tile*0.8,
				})
			}
			clusterMemPts = append(clusterMemPts, variation.Point{
				X: ox + 0.9*tile,
				Y: oy + 0.5*tile,
			})
		}
	}
	return corePts, clusterMemPts
}

// Factory generates a population of chips sharing one covariance
// factorization; building it is the expensive step.
type Factory struct {
	cfg        Config
	vthSampler *variation.Sampler
	lefSampler *variation.Sampler
	corePts    []variation.Point
	nCore      int
}

// NewFactory validates cfg and prepares the variation samplers.
func NewFactory(cfg Config) (*Factory, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	corePts, memPts := layout(cfg)
	all := append(append([]variation.Point{}, corePts...), memPts...)
	vs, err := variation.NewSampler(all, cfg.Vth)
	if err != nil {
		return nil, err
	}
	ls, err := variation.NewSampler(corePts, cfg.Leff)
	if err != nil {
		return nil, err
	}
	return &Factory{cfg: cfg, vthSampler: vs, lefSampler: ls, corePts: corePts, nCore: len(corePts)}, nil
}

// Config returns the factory's configuration.
func (f *Factory) Config() Config { return f.cfg }

// Sample draws one chip. The same seed always yields the same chip.
func (f *Factory) Sample(seed int64) *Chip {
	timer := telemetry.StartTimer()
	cfg := f.cfg
	rng := mathx.NewRNG(seed)
	vthDev := f.vthSampler.Sample(rng.Split(1))
	leffDev := f.lefSampler.Sample(rng.Split(2))
	blockRng := rng.Split(3)

	corePts := f.corePts
	ch := &Chip{Cfg: cfg, Seed: seed}
	ch.Cores = make([]Core, f.nCore)
	for i := range ch.Cores {
		ch.Cores[i] = Core{
			ID:      i,
			Cluster: i / cfg.CoresPer,
			Pos:     corePts[i],
			VthDev:  vthDev[i],
			LeffDev: leffDev[i],
		}
	}
	// Memory blocks: a private block co-located with each core, plus a
	// cluster block at each cluster-memory point.
	for i := 0; i < f.nCore; i++ {
		dv := vthDev[i] * cfg.Tech.VthNom
		ch.Blocks = append(ch.Blocks, MemBlock{
			Kind:    CoreMem,
			Cluster: i / cfg.CoresPer,
			Core:    i,
			VthDev:  vthDev[i],
			VddMIN:  cfg.Tech.BlockVddMIN(dv, cfg.CoreMemBits, blockRng.StdNormal()),
		})
	}
	for c := 0; c < cfg.Clusters; c++ {
		dev := vthDev[f.nCore+c]
		dv := dev * cfg.Tech.VthNom
		ch.Blocks = append(ch.Blocks, MemBlock{
			Kind:    ClusterMem,
			Cluster: c,
			Core:    -1,
			VthDev:  dev,
			VddMIN:  cfg.Tech.BlockVddMIN(dv, cfg.ClusterMemBits, blockRng.StdNormal()),
		})
	}
	ch.deriveVoltages()
	telChipsDrawn.Inc()
	events.New("chip.drawn").
		Int("seed", seed).
		Int("cores", int64(len(ch.Cores))).
		Float("vddntv", ch.vddNTV).
		Emit()
	timer.ObserveIn(telDrawNs)
	return ch
}

// SampleCtx is Sample under the observability tier: while tracing is
// enabled it records a chip.draw span (a child of ctx's current span,
// so population draws nest under their pool worker), and while
// convergence monitoring is enabled it streams the drawn chip's
// summary metrics into the Monte-Carlo convergence estimators. The
// chip returned is bit-identical to Sample(seed) regardless.
func (f *Factory) SampleCtx(ctx context.Context, seed int64) *Chip {
	sp := trace.StartFrom(ctx, "chip.draw").Arg("seed", seed)
	ch := f.Sample(seed)
	sp.End()
	ch.ObserveConvergence()
	return ch
}

// Population draws n chips with seeds derived from seed. The draws fan
// out across parallel.Workers() goroutines; chip i's seed depends only
// on (seed, i), so the population is bit-identical to a sequential
// draw regardless of the worker count.
func (f *Factory) Population(seed int64, n int) []*Chip {
	chips, _ := f.PopulationCtx(context.Background(), seed, n)
	return chips
}

// PopulationCtx is Population with cancellation: it returns early with
// the context's error if ctx is cancelled mid-draw. Each draw goes
// through SampleCtx, so a traced run shows one chip.draw span per chip
// under the pool worker that drew it, and an enabled convergence
// monitor sees every chip of the population.
func (f *Factory) PopulationCtx(ctx context.Context, seed int64, n int) ([]*Chip, error) {
	return parallel.MapCtx(ctx, n, func(wctx context.Context, i int) (*Chip, error) {
		return f.SampleCtx(wctx, mathx.SplitSeed(seed, int64(i))), nil
	})
}

// New is a convenience constructor for a single chip.
func New(cfg Config, seed int64) (*Chip, error) {
	f, err := NewFactory(cfg)
	if err != nil {
		return nil, err
	}
	return f.Sample(seed), nil
}

func (ch *Chip) deriveVoltages() {
	ch.clusterVddMIN = make([]float64, ch.Cfg.Clusters)
	for _, b := range ch.Blocks {
		if b.VddMIN > ch.clusterVddMIN[b.Cluster] {
			ch.clusterVddMIN[b.Cluster] = b.VddMIN
		}
	}
	ch.vddNTV = 0
	for _, v := range ch.clusterVddMIN {
		if v > ch.vddNTV {
			ch.vddNTV = v
		}
	}
}

// ClusterVddMIN returns the minimum functional voltage of cluster c:
// the maximum VddMIN across the memory blocks it contains.
func (ch *Chip) ClusterVddMIN(c int) float64 { return ch.clusterVddMIN[c] }

// ClusterVddMINs returns a copy of all per-cluster VddMIN values.
func (ch *Chip) ClusterVddMINs() []float64 {
	out := make([]float64, len(ch.clusterVddMIN))
	copy(out, ch.clusterVddMIN)
	return out
}

// VddNTV returns the chip-wide near-threshold operating voltage: the
// maximum per-cluster VddMIN, so every memory block stays functional.
func (ch *Chip) VddNTV() float64 { return ch.vddNTV }

// CoreFmax returns core i's variation-afflicted maximum frequency in
// GHz at supply vdd: the technology frequency at the core's actual
// threshold, scaled by its channel-length deviation (longer channels
// are slower).
func (ch *Chip) CoreFmax(i int, vdd float64) float64 {
	co := ch.Cores[i]
	return ch.Cfg.Tech.Freq(vdd, co.Vth(ch.Cfg.Tech)) / (1 + co.LeffDev)
}

// CoreSafeFreq returns core i's highest error-free frequency at vdd.
func (ch *Chip) CoreSafeFreq(i int, vdd float64) float64 {
	co := ch.Cores[i]
	return ch.Cfg.Tech.SafeFreq(vdd, co.Vth(ch.Cfg.Tech)) / (1 + co.LeffDev)
}

// CoreFreqAtPerr returns the highest frequency at which core i's
// per-cycle timing-error probability stays at or below perr.
func (ch *Chip) CoreFreqAtPerr(i int, vdd, perr float64) float64 {
	co := ch.Cores[i]
	return ch.Cfg.Tech.FreqAtPerr(vdd, co.Vth(ch.Cfg.Tech), perr) / (1 + co.LeffDev)
}

// CorePerr returns core i's per-cycle timing error probability when
// clocked at f GHz under supply vdd.
func (ch *Chip) CorePerr(i int, vdd, f float64) float64 {
	co := ch.Cores[i]
	// Leff slows the core: its paths see an effectively higher clock.
	return ch.Cfg.Tech.PerrPerCycle(f*(1+co.LeffDev), vdd, co.Vth(ch.Cfg.Tech))
}

// Leakage damping: a core's maximum frequency is set by its slowest
// critical path (an extreme value of the local Vth distribution), but
// its leakage is the average over millions of transistors, so the
// core-to-core leakage spread is much milder than the fmax spread.
const (
	leakVthDamp   = 0.3
	leakLeffCoeff = 1.0
)

// CoreStaticPower returns core i's leakage power in W at supply vdd,
// with the damped dependence on the local Vth and Leff deviations.
func (ch *Chip) CoreStaticPower(i int, vdd float64) float64 {
	co := ch.Cores[i]
	vthLeak := ch.Cfg.Tech.VthNom * (1 + leakVthDamp*co.VthDev)
	return ch.Cfg.Tech.StaticPower(vdd, vthLeak) * math.Exp(-leakLeffCoeff*co.LeffDev)
}

// CorePower returns core i's power in W at supply vdd and frequency f,
// including its leakage dependence on the local Vth and Leff.
func (ch *Chip) CorePower(i int, vdd, f float64) float64 {
	return ch.Cfg.Tech.DynPower(vdd, f) + ch.CoreStaticPower(i, vdd)
}

// ClusterSlowestCore returns the index of the slowest core of cluster c
// at supply vdd (the core that dictates the cluster's f domain).
func (ch *Chip) ClusterSlowestCore(c int, vdd float64) int {
	lo, hi := c*ch.Cfg.CoresPer, (c+1)*ch.Cfg.CoresPer
	best, bestF := lo, math.Inf(1)
	for i := lo; i < hi; i++ {
		if f := ch.CoreFmax(i, vdd); f < bestF {
			best, bestF = i, f
		}
	}
	return best
}

// ClusterCores returns the core index range [lo, hi) of cluster c.
func (ch *Chip) ClusterCores(c int) (lo, hi int) {
	return c * ch.Cfg.CoresPer, (c + 1) * ch.Cfg.CoresPer
}

// SelectPolicy chooses which cores engage in computation.
type SelectPolicy int

// Core-selection policies.
const (
	// SelectEfficient picks the cores with the best safe-frequency per
	// Watt, the paper's default ("we pick the most energy-efficient
	// NNTV cores").
	SelectEfficient SelectPolicy = iota
	// SelectFastest picks the cores with the highest safe frequency.
	SelectFastest
	// SelectSequential picks cores in layout order, a variation-blind
	// baseline.
	SelectSequential
)

// String names the policy.
func (p SelectPolicy) String() string {
	switch p {
	case SelectEfficient:
		return "efficient"
	case SelectFastest:
		return "fastest"
	case SelectSequential:
		return "sequential"
	}
	return fmt.Sprintf("SelectPolicy(%d)", int(p))
}

// SelectCores returns the IDs of n cores chosen under the policy at
// supply vdd, ordered best-first. It returns fewer than n only if the
// chip has fewer cores.
func (ch *Chip) SelectCores(n int, vdd float64, policy SelectPolicy) []int {
	if n > len(ch.Cores) {
		n = len(ch.Cores)
	}
	ids := make([]int, len(ch.Cores))
	for i := range ids {
		ids[i] = i
	}
	switch policy {
	case SelectFastest:
		sort.Slice(ids, func(a, b int) bool {
			return ch.CoreSafeFreq(ids[a], vdd) > ch.CoreSafeFreq(ids[b], vdd)
		})
	case SelectEfficient:
		// Greedy per-core performance-per-Watt at the core's own safe
		// frequency, the paper's "most energy-efficient NNTV cores".
		// Note the set-level coupling this greedy ignores: the slowest
		// engaged core caps the whole set's frequency, so at voltages
		// well above VddNTV (where frequency spreads compress and
		// leakage differences dominate the metric) the ordering can
		// pull slow, cool cores forward and cost set frequency.
		eff := make([]float64, len(ch.Cores))
		for i := range eff {
			f := ch.CoreSafeFreq(i, vdd)
			p := ch.CorePower(i, vdd, f)
			if p > 0 {
				eff[i] = f / p
			}
		}
		sort.Slice(ids, func(a, b int) bool { return eff[ids[a]] > eff[ids[b]] })
	case SelectSequential:
		// keep layout order
	}
	return ids[:n]
}

// SetFreq returns the frequency at which a set of engaged cores can run
// together: the minimum over the set of each core's frequency at the
// target per-cycle error probability (ErrorFreePerr for safe
// operation). Accordion runs all engaged cores at one f (Section 4).
func (ch *Chip) SetFreq(cores []int, vdd, perr float64) float64 {
	f := math.Inf(1)
	for _, i := range cores {
		if fi := ch.CoreFreqAtPerr(i, vdd, perr); fi < f {
			f = fi
		}
	}
	if math.IsInf(f, 1) {
		return 0
	}
	return f
}

// Summary bundles the chip-level metrics the Monte-Carlo convergence
// monitor tracks per drawn chip, all evaluated at the chip's own
// VddNTV: the fastest core's fmax, the operating voltage itself, the
// whole-chip power with every core at its safe frequency, and the mean
// per-cycle timing-error probability when every core is clocked at the
// population-relevant median core fmax.
type Summary struct {
	FmaxGHz float64 // fastest core's maximum frequency at VddNTV
	VddMINV float64 // chip-wide VddNTV (max per-cluster VddMIN)
	PowerW  float64 // sum of per-core power at each core's safe frequency
	ErrRate float64 // mean CorePerr at the median core's fmax
}

// SummaryMetrics computes the chip's Summary. It walks every core
// three times; callers on hot paths should gate it (ObserveConvergence
// does).
func (ch *Chip) SummaryMetrics() Summary {
	vdd := ch.VddNTV()
	n := len(ch.Cores)
	fmaxes := make([]float64, n)
	s := Summary{VddMINV: vdd}
	for i := 0; i < n; i++ {
		fmaxes[i] = ch.CoreFmax(i, vdd)
		if fmaxes[i] > s.FmaxGHz {
			s.FmaxGHz = fmaxes[i]
		}
		s.PowerW += ch.CorePower(i, vdd, ch.CoreSafeFreq(i, vdd))
	}
	sort.Float64s(fmaxes)
	median := fmaxes[n/2]
	for i := 0; i < n; i++ {
		s.ErrRate += ch.CorePerr(i, vdd, median)
	}
	s.ErrRate /= float64(n)
	return s
}

// ObserveConvergence streams the chip's Summary into the Monte-Carlo
// convergence monitor. While monitoring is disabled (the default) this
// is four atomic loads and no metric derivation.
func (ch *Chip) ObserveConvergence() {
	if !converge.On() {
		return
	}
	s := ch.SummaryMetrics()
	converge.Observe("chip.fmax_ghz", "GHz", s.FmaxGHz)
	converge.Observe("chip.vddmin_v", "V", s.VddMINV)
	converge.Observe("chip.power_w", "W", s.PowerW)
	converge.Observe("chip.err_rate", "p/cycle", s.ErrRate)
}
