package chip

import (
	"context"
	"testing"

	"repro/internal/converge"
)

// TestPopulationConvergence: a fixed-seed population streamed through
// SampleCtx reports CI95 half-widths for all four chip metrics, and
// the estimators see exactly one observation per chip.
func TestPopulationConvergence(t *testing.T) {
	defer converge.SetEnabled(true)()
	converge.Reset()
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 12
	if _, err := f.PopulationCtx(context.Background(), 2014, n); err != nil {
		t.Fatal(err)
	}
	snap := converge.Capture()
	want := map[string]bool{
		"chip.fmax_ghz": false,
		"chip.vddmin_v": false,
		"chip.power_w":  false,
		"chip.err_rate": false,
	}
	for _, s := range snap.Series {
		if _, ok := want[s.Name]; !ok {
			continue
		}
		want[s.Name] = true
		if s.Count != n {
			t.Errorf("%s: count = %d, want %d", s.Name, s.Count, n)
		}
		if s.CI95 <= 0 {
			t.Errorf("%s: ci95 half-width = %v, want > 0", s.Name, s.CI95)
		}
		if s.Mean <= 0 {
			t.Errorf("%s: mean = %v, want > 0", s.Name, s.Mean)
		}
	}
	for name, seen := range want {
		if !seen {
			t.Errorf("metric %s missing from convergence capture", name)
		}
	}
}

// TestSampleCtxIdentical: the observability wrapper returns the same
// chip bits as the plain Sample.
func TestSampleCtxIdentical(t *testing.T) {
	defer converge.SetEnabled(true)()
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	a := f.Sample(7)
	b := f.SampleCtx(context.Background(), 7)
	if a.VddNTV() != b.VddNTV() || len(a.Cores) != len(b.Cores) {
		t.Fatal("SampleCtx chip differs from Sample chip")
	}
	for i := range a.Cores {
		if a.Cores[i] != b.Cores[i] {
			t.Fatalf("core %d differs between Sample and SampleCtx", i)
		}
	}
}

// TestSummaryMetricsDeterministic: same seed, same summary.
func TestSummaryMetricsDeterministic(t *testing.T) {
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	s1 := f.Sample(42).SummaryMetrics()
	s2 := f.Sample(42).SummaryMetrics()
	if s1 != s2 {
		t.Fatalf("summaries differ: %+v vs %+v", s1, s2)
	}
	if s1.FmaxGHz <= 0 || s1.VddMINV <= 0 || s1.PowerW <= 0 || s1.ErrRate < 0 {
		t.Fatalf("summary not sane: %+v", s1)
	}
}
