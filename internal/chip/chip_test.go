package chip

import (
	"math"
	"testing"

	"repro/internal/mathx"
	"repro/internal/tech"
)

func testChip(t *testing.T, seed int64) *Chip {
	t.Helper()
	ch, err := New(DefaultConfig(), seed)
	if err != nil {
		t.Fatal(err)
	}
	return ch
}

func TestDefaultConfigValid(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	if cfg.NumCores() != 288 {
		t.Errorf("core count = %d, want 288", cfg.NumCores())
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.Clusters = 0 },
		func(c *Config) { c.Clusters = 35 }, // not a perfect square
		func(c *Config) { c.CoresPer = -1 },
		func(c *Config) { c.CoreMemBits = 0 },
		func(c *Config) { c.PowerBudget = 0 },
		func(c *Config) { c.Tech.FNomNTV = 0 },
		func(c *Config) { c.Vth.SigmaMu = 0 },
	}
	for i, mutate := range cases {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestChipStructure(t *testing.T) {
	ch := testChip(t, 1)
	if len(ch.Cores) != 288 {
		t.Fatalf("got %d cores", len(ch.Cores))
	}
	if len(ch.Blocks) != 288+36 {
		t.Fatalf("got %d memory blocks, want 324", len(ch.Blocks))
	}
	for i, co := range ch.Cores {
		if co.ID != i || co.Cluster != i/8 {
			t.Fatalf("core %d mislabeled: %+v", i, co)
		}
		if co.Pos.X < 0 || co.Pos.X > 1 || co.Pos.Y < 0 || co.Pos.Y > 1 {
			t.Fatalf("core %d off-die at %+v", i, co.Pos)
		}
	}
}

func TestChipDeterminism(t *testing.T) {
	a, b := testChip(t, 42), testChip(t, 42)
	for i := range a.Cores {
		if a.Cores[i].VthDev != b.Cores[i].VthDev {
			t.Fatal("chips with equal seeds differ")
		}
	}
	c := testChip(t, 43)
	same := true
	for i := range a.Cores {
		if a.Cores[i].VthDev != c.Cores[i].VthDev {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical chips")
	}
}

// Figure 5a: per-cluster VddMIN spans roughly 0.46-0.58 V and the
// chip-wide VddNTV is their maximum.
func TestFig5aVddMINBand(t *testing.T) {
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var all []float64
	for _, ch := range f.Population(2014, 10) {
		vmins := ch.ClusterVddMINs()
		all = append(all, vmins...)
		max := 0.0
		for _, v := range vmins {
			if v > max {
				max = v
			}
		}
		if ch.VddNTV() != max {
			t.Fatalf("VddNTV %.4f != max cluster VddMIN %.4f", ch.VddNTV(), max)
		}
	}
	lo, hi := mathx.MinMax(all)
	if lo < 0.42 || lo > 0.50 {
		t.Errorf("low end of cluster VddMIN = %.3f, want ~0.46", lo)
	}
	if hi < 0.53 || hi > 0.62 {
		t.Errorf("high end of cluster VddMIN = %.3f, want ~0.58", hi)
	}
}

// Figure 5b: at VddNTV most slowest-in-cluster cores cannot reach the
// 1 GHz fNOM error-free, and their safe frequencies spread widely.
func TestFig5bSlowestCoreSpread(t *testing.T) {
	ch := testChip(t, 2014)
	vdd := ch.VddNTV()
	var safe []float64
	cannotReachNom := 0
	for c := 0; c < ch.Cfg.Clusters; c++ {
		s := ch.ClusterSlowestCore(c, vdd)
		f := ch.CoreFreqAtPerr(s, vdd, 1e-12)
		safe = append(safe, f)
		if f < ch.Cfg.Tech.FNomNTV {
			cannotReachNom++
		}
	}
	if cannotReachNom < ch.Cfg.Clusters*3/4 {
		t.Errorf("only %d/36 slowest cores below fNOM; paper says the majority cannot reach 1 GHz", cannotReachNom)
	}
	lo, hi := mathx.MinMax(safe)
	if lo < 0.08 || lo > 0.40 {
		t.Errorf("slowest safe f low end = %.3f GHz, want ~0.14-0.3", lo)
	}
	if hi < 0.45 || hi > 0.90 {
		t.Errorf("slowest safe f high end = %.3f GHz, want ~0.6-0.75", hi)
	}
	if hi/lo < 1.8 {
		t.Errorf("spread %.2fx too narrow for 15%% Vth variation", hi/lo)
	}
}

func TestCoreFreqOrdering(t *testing.T) {
	ch := testChip(t, 7)
	vdd := ch.VddNTV()
	for i := range ch.Cores {
		fmax := ch.CoreFmax(i, vdd)
		safe := ch.CoreSafeFreq(i, vdd)
		spec := ch.CoreFreqAtPerr(i, vdd, 1e-8)
		if !(safe < fmax) {
			t.Fatalf("core %d: safe %.3f !< fmax %.3f", i, safe, fmax)
		}
		if !(safe <= spec) {
			t.Fatalf("core %d: safe %.3f > speculative %.3f", i, safe, spec)
		}
	}
}

func TestCorePerrConsistency(t *testing.T) {
	ch := testChip(t, 8)
	vdd := ch.VddNTV()
	for _, i := range []int{0, 17, 144, 287} {
		f := ch.CoreFreqAtPerr(i, vdd, 1e-10)
		got := ch.CorePerr(i, vdd, f)
		if math.Abs(math.Log10(got)+10) > 0.2 {
			t.Errorf("core %d: Perr at f(1e-10) = %g", i, got)
		}
	}
}

func TestSelectCoresPolicies(t *testing.T) {
	ch := testChip(t, 9)
	vdd := ch.VddNTV()
	n := 64
	fast := ch.SelectCores(n, vdd, SelectFastest)
	eff := ch.SelectCores(n, vdd, SelectEfficient)
	seq := ch.SelectCores(n, vdd, SelectSequential)
	if len(fast) != n || len(eff) != n || len(seq) != n {
		t.Fatal("wrong selection sizes")
	}
	// Fastest selection must be ordered by decreasing safe f.
	for i := 1; i < n; i++ {
		if ch.CoreSafeFreq(fast[i], vdd) > ch.CoreSafeFreq(fast[i-1], vdd)+1e-12 {
			t.Fatal("fastest selection out of order")
		}
	}
	// Sequential is layout order.
	for i := 0; i < n; i++ {
		if seq[i] != i {
			t.Fatal("sequential selection not in layout order")
		}
	}
	// The fastest set's frequency floor is at least the sequential set's.
	if ch.SetFreq(fast, vdd, tech.ErrorFreePerr) < ch.SetFreq(seq, vdd, tech.ErrorFreePerr) {
		t.Error("fastest policy produced a slower set than sequential")
	}
	// No duplicates in any selection.
	for _, sel := range [][]int{fast, eff, seq} {
		seen := map[int]bool{}
		for _, id := range sel {
			if seen[id] {
				t.Fatal("duplicate core selected")
			}
			seen[id] = true
		}
	}
	// Oversized requests clamp to the chip.
	if got := ch.SelectCores(1000, vdd, SelectFastest); len(got) != 288 {
		t.Errorf("oversized selection returned %d cores", len(got))
	}
}

func TestSetFreqIsMinimum(t *testing.T) {
	ch := testChip(t, 10)
	vdd := ch.VddNTV()
	cores := []int{3, 50, 200}
	f := ch.SetFreq(cores, vdd, tech.ErrorFreePerr)
	for _, i := range cores {
		if ch.CoreSafeFreq(i, vdd) < f-1e-12 {
			t.Fatal("SetFreq above a member's safe frequency")
		}
	}
	if ch.SetFreq(nil, vdd, tech.ErrorFreePerr) != 0 {
		t.Error("empty set should yield 0")
	}
}

func TestMoreCoresNeverFaster(t *testing.T) {
	// Growing an engaged set can only hold or lower the common f —
	// the effect behind the paper's degrading MIPS/W at high N.
	ch := testChip(t, 11)
	vdd := ch.VddNTV()
	prev := math.Inf(1)
	for n := 8; n <= 288; n += 40 {
		sel := ch.SelectCores(n, vdd, SelectFastest)
		f := ch.SetFreq(sel, vdd, tech.ErrorFreePerr)
		if f > prev+1e-12 {
			t.Fatalf("set f increased when adding cores at n=%d", n)
		}
		prev = f
	}
}

func TestSelectPolicyString(t *testing.T) {
	if SelectEfficient.String() != "efficient" || SelectFastest.String() != "fastest" ||
		SelectSequential.String() != "sequential" {
		t.Error("policy names wrong")
	}
	if SelectPolicy(99).String() == "" {
		t.Error("unknown policy must still render")
	}
}

func TestClusterCores(t *testing.T) {
	ch := testChip(t, 12)
	lo, hi := ch.ClusterCores(5)
	if lo != 40 || hi != 48 {
		t.Errorf("cluster 5 spans [%d,%d)", lo, hi)
	}
}

func TestPopulationDistinct(t *testing.T) {
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	chips := f.Population(1, 5)
	for i := 1; i < len(chips); i++ {
		if chips[i].VddNTV() == chips[0].VddNTV() &&
			chips[i].Cores[0].VthDev == chips[0].Cores[0].VthDev {
			t.Fatal("population chips look identical")
		}
	}
}
