package chip

import (
	"testing"

	"repro/internal/telemetry"
)

// TestSampleTelemetry: every Monte-Carlo draw lands in the factory's
// chips_drawn counter and draw-latency histogram.
func TestSampleTelemetry(t *testing.T) {
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer telemetry.SetEnabled(true)()
	telemetry.Reset()
	const n = 3
	for i := 0; i < n; i++ {
		f.Sample(int64(100 + i))
	}
	if got := telChipsDrawn.Value(); got != n {
		t.Errorf("chips_drawn = %d, want %d", got, n)
	}
	if got := telDrawNs.Count(); got != n {
		t.Errorf("draw_ns observations = %d, want %d", got, n)
	}
}
