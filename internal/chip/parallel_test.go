package chip

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/parallel"
)

// TestPopulationParallelDeterminism pins the engine's hard requirement:
// the population must be bit-identical no matter how wide the pool is.
func TestPopulationParallelDeterminism(t *testing.T) {
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	const n = 8
	populations := map[int][]*Chip{}
	for _, workers := range []int{1, 2, 8} {
		restore := parallel.SetWorkers(workers)
		populations[workers] = f.Population(2014, n)
		restore()
	}
	want := populations[1]
	for _, workers := range []int{2, 8} {
		got := populations[workers]
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d chips, want %d", workers, len(got), len(want))
		}
		for i := range want {
			if got[i].Seed != want[i].Seed {
				t.Fatalf("workers=%d: chip %d seed %d, want %d", workers, i, got[i].Seed, want[i].Seed)
			}
			if !reflect.DeepEqual(got[i].Cores, want[i].Cores) {
				t.Fatalf("workers=%d: chip %d cores differ from the sequential draw", workers, i)
			}
			if !reflect.DeepEqual(got[i].Blocks, want[i].Blocks) {
				t.Fatalf("workers=%d: chip %d blocks differ from the sequential draw", workers, i)
			}
			if got[i].VddNTV() != want[i].VddNTV() {
				t.Fatalf("workers=%d: chip %d VddNTV %g, want %g", workers, i, got[i].VddNTV(), want[i].VddNTV())
			}
		}
	}
}

// TestPopulationMatchesSample pins that the parallel population draws
// exactly the chips Sample would produce one at a time.
func TestPopulationMatchesSample(t *testing.T) {
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	restore := parallel.SetWorkers(4)
	defer restore()
	pop := f.Population(7, 4)
	for i, ch := range pop {
		one := f.Sample(ch.Seed)
		if !reflect.DeepEqual(ch.Cores, one.Cores) || !reflect.DeepEqual(ch.Blocks, one.Blocks) {
			t.Fatalf("population chip %d differs from a direct Sample(%d)", i, ch.Seed)
		}
	}
}

func TestPopulationCtxCancellation(t *testing.T) {
	f, err := NewFactory(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := f.PopulationCtx(ctx, 1, 50); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled PopulationCtx: err = %v, want context.Canceled", err)
	}
}
