package chip

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzLoad feeds arbitrary bytes to the chip deserializer: it must
// either return a chip whose derived state is internally consistent or
// an error — never panic, never a half-built chip.
func FuzzLoad(f *testing.F) {
	var buf bytes.Buffer
	ch, err := New(DefaultConfig(), 1)
	if err != nil {
		f.Fatal(err)
	}
	if err := ch.Save(&buf); err != nil {
		f.Fatal(err)
	}
	good := buf.String()
	f.Add(good)
	f.Add("{}")
	f.Add(strings.Replace(good, `"version":1`, `"version":2`, 1))
	f.Add(good[:len(good)/3])
	f.Fuzz(func(t *testing.T, data string) {
		loaded, err := Load(strings.NewReader(data))
		if err != nil {
			return
		}
		// Anything accepted must be fully coherent.
		if len(loaded.Cores) != loaded.Cfg.NumCores() {
			t.Fatal("accepted chip with wrong core count")
		}
		max := 0.0
		for _, v := range loaded.ClusterVddMINs() {
			if v > max {
				max = v
			}
		}
		if loaded.VddNTV() != max {
			t.Fatal("accepted chip with inconsistent VddNTV")
		}
	})
}
