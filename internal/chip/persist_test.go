package chip

import (
	"bytes"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	orig := testChip(t, 2014)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Seed != orig.Seed {
		t.Error("seed lost")
	}
	if loaded.VddNTV() != orig.VddNTV() {
		t.Errorf("derived VddNTV differs: %.6f vs %.6f", loaded.VddNTV(), orig.VddNTV())
	}
	for i := range orig.Cores {
		if loaded.Cores[i] != orig.Cores[i] {
			t.Fatalf("core %d differs", i)
		}
	}
	for c := 0; c < orig.Cfg.Clusters; c++ {
		if loaded.ClusterVddMIN(c) != orig.ClusterVddMIN(c) {
			t.Fatalf("cluster %d VddMIN differs", c)
		}
	}
	// Behaviour matches too.
	vdd := orig.VddNTV()
	for _, i := range []int{0, 100, 287} {
		if loaded.CoreSafeFreq(i, vdd) != orig.CoreSafeFreq(i, vdd) {
			t.Fatalf("core %d safe f differs after reload", i)
		}
	}
}

func TestLoadRejectsCorruptFiles(t *testing.T) {
	orig := testChip(t, 7)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	good := buf.String()

	cases := []struct {
		name  string
		input string
	}{
		{"garbage", "not json"},
		{"empty", "{}"},
		{"bad version", strings.Replace(good, `"version":1`, `"version":99`, 1)},
		{"truncated", good[:len(good)/2]},
	}
	for _, c := range cases {
		if _, err := Load(strings.NewReader(c.input)); err == nil {
			t.Errorf("%s accepted", c.name)
		}
	}
}

func TestLoadRejectsInconsistentChip(t *testing.T) {
	orig := testChip(t, 8)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Mislabel a core.
	bad := strings.Replace(buf.String(), `"ID":5,`, `"ID":6,`, 1)
	if _, err := Load(strings.NewReader(bad)); err == nil {
		t.Error("mislabeled core accepted")
	}
}
