package chip

import (
	"encoding/json"
	"fmt"
	"io"
)

// chipFile is the on-disk representation of a sampled chip. The derived
// voltage tables are recomputed on load, so the format carries only the
// configuration and the sampled variation state.
type chipFile struct {
	Version int        `json:"version"`
	Cfg     Config     `json:"config"`
	Seed    int64      `json:"seed"`
	Cores   []Core     `json:"cores"`
	Blocks  []MemBlock `json:"blocks"`
}

const persistVersion = 1

// Save serializes the chip sample as JSON. A saved chip reloads
// bit-identically with Load, letting experiments pin one manufactured
// die across tool invocations.
func (ch *Chip) Save(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(chipFile{
		Version: persistVersion,
		Cfg:     ch.Cfg,
		Seed:    ch.Seed,
		Cores:   ch.Cores,
		Blocks:  ch.Blocks,
	})
}

// Load deserializes a chip saved with Save and rebuilds its derived
// voltage tables.
func Load(r io.Reader) (*Chip, error) {
	var f chipFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("chip: decode: %w", err)
	}
	if f.Version != persistVersion {
		return nil, fmt.Errorf("chip: unsupported file version %d", f.Version)
	}
	if err := f.Cfg.Validate(); err != nil {
		return nil, fmt.Errorf("chip: saved config invalid: %w", err)
	}
	if len(f.Cores) != f.Cfg.NumCores() {
		return nil, fmt.Errorf("chip: %d cores for a %d-core config", len(f.Cores), f.Cfg.NumCores())
	}
	wantBlocks := f.Cfg.NumCores() + f.Cfg.Clusters
	if len(f.Blocks) != wantBlocks {
		return nil, fmt.Errorf("chip: %d memory blocks, want %d", len(f.Blocks), wantBlocks)
	}
	for i, co := range f.Cores {
		if co.ID != i || co.Cluster != i/f.Cfg.CoresPer {
			return nil, fmt.Errorf("chip: core %d mislabeled in file", i)
		}
	}
	for _, b := range f.Blocks {
		if b.Cluster < 0 || b.Cluster >= f.Cfg.Clusters {
			return nil, fmt.Errorf("chip: block references cluster %d", b.Cluster)
		}
		if b.VddMIN <= 0 {
			return nil, fmt.Errorf("chip: non-positive VddMIN in file")
		}
	}
	ch := &Chip{Cfg: f.Cfg, Seed: f.Seed, Cores: f.Cores, Blocks: f.Blocks}
	ch.deriveVoltages()
	return ch, nil
}
