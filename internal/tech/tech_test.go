package tech

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultValidates(t *testing.T) {
	if err := Default11nm().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := Default22nm().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateCatchesBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.VddNomNTV = 0.2 },
		func(p *Params) { p.VddNomSTV = 0.5 },
		func(p *Params) { p.FNomNTV = 0 },
		func(p *Params) { p.Alpha = 3 },
		func(p *Params) { p.PhiT = 0 },
		func(p *Params) { p.NPaths = 0 },
		func(p *Params) { p.SigmaCell = 0 },
	}
	for i, mutate := range cases {
		p := Default11nm()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid params accepted", i)
		}
	}
}

func TestNominalCalibration(t *testing.T) {
	p := Default11nm()
	if f := p.Freq(p.VddNomNTV, p.VthNom); math.Abs(f-1.0) > 1e-9 {
		t.Errorf("NTV nominal f = %.4f GHz, want 1.0", f)
	}
	// Paper Table 2: the NTV point corresponds to ~3.3 GHz at STV.
	if f := p.FSTV(); f < 2.8 || f > 4.0 {
		t.Errorf("STV nominal f = %.3f GHz, want ~3.3", f)
	}
}

// Figure 1a bands: from STV (1.0 V) to NTV (~0.5 V), frequency degrades
// 5-10x, power drops 10-50x, energy/op improves 2-5x.
func TestFig1aBands(t *testing.T) {
	p := Default11nm()
	const vNTV = 0.50
	fRatio := p.FSTV() / p.Freq(vNTV, p.VthNom)
	if fRatio < 4.0 || fRatio > 10.5 {
		t.Errorf("f degradation at %.2f V = %.2fx, want ~5-10x", vNTV, fRatio)
	}
	pSTV := p.CorePower(p.VddNomSTV, p.VthNom, p.FSTV())
	pNTV := p.CorePower(vNTV, p.VthNom, p.Freq(vNTV, p.VthNom))
	pRatio := pSTV / pNTV
	if pRatio < 10 || pRatio > 50 {
		t.Errorf("power reduction = %.1fx, want 10-50x", pRatio)
	}
	eRatio := p.EnergyPerOp(p.VddNomSTV, p.VthNom) / p.EnergyPerOp(vNTV, p.VthNom)
	if eRatio < 2 || eRatio > 5 {
		t.Errorf("energy/op improvement = %.2fx, want 2-5x", eRatio)
	}
}

func TestEnergyMinimumBelowNTVNominal(t *testing.T) {
	// Figure 1a: the minimum-energy point lies below the NTV nominal
	// voltage (the paper's device data puts it in sub-threshold; this
	// model's leakage calibration lands it slightly above Vth, still
	// clearly below VddNomNTV — see EXPERIMENTS.md).
	p := Default11nm()
	best, bestV := math.Inf(1), 0.0
	for v := 0.15; v <= 1.1; v += 0.005 {
		e := p.EnergyPerOp(v, p.VthNom)
		if e < best {
			best, bestV = e, v
		}
	}
	if bestV >= p.VddNomNTV {
		t.Errorf("minimum-energy Vdd = %.3f, want below the NTV nominal %.2f", bestV, p.VddNomNTV)
	}
}

func TestFreqMonotoneInVdd(t *testing.T) {
	p := Default11nm()
	f := func(a, b float64) bool {
		v1 := 0.2 + math.Abs(math.Mod(a, 1))
		v2 := 0.2 + math.Abs(math.Mod(b, 1))
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		return p.Freq(v1, p.VthNom) <= p.Freq(v2, p.VthNom)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestFreqMonotoneDecreasingInVth(t *testing.T) {
	p := Default11nm()
	prev := math.Inf(1)
	for vth := 0.2; vth <= 0.5; vth += 0.01 {
		f := p.Freq(0.55, vth)
		if f > prev {
			t.Fatalf("Freq not decreasing in Vth at %.2f", vth)
		}
		prev = f
	}
}

func TestStaticShareHigherAtNTV(t *testing.T) {
	p := Default11nm()
	share := func(vdd float64) float64 {
		f := p.Freq(vdd, p.VthNom)
		st := p.StaticPower(vdd, p.VthNom)
		return st / (st + p.DynPower(vdd, f))
	}
	stv, ntv := share(p.VddNomSTV), share(p.VddNomNTV)
	if math.Abs(stv-p.StaticFracSTV) > 1e-9 {
		t.Errorf("STV static share = %.3f, want %.3f", stv, p.StaticFracSTV)
	}
	if ntv <= stv {
		t.Errorf("static share at NTV (%.3f) not higher than at STV (%.3f)", ntv, stv)
	}
}

func TestPerrShape(t *testing.T) {
	p := Default11nm()
	vdd, vth := 0.55, 0.33
	fmax := p.Freq(vdd, vth)
	// Well below fmax: error-free; at fmax: ~coin flip or worse given
	// 1000 near-critical paths; well above: certain error.
	if e := p.PerrPerCycle(0.5*fmax, vdd, vth); e > 1e-20 {
		t.Errorf("Perr at 0.5 fmax = %g, want ~0", e)
	}
	if e := p.PerrPerCycle(fmax, vdd, vth); e < 0.4 {
		t.Errorf("Perr at fmax = %g, want >= 0.4", e)
	}
	if e := p.PerrPerCycle(1.3*fmax, vdd, vth); e < 0.999 {
		t.Errorf("Perr at 1.3 fmax = %g, want ~1", e)
	}
	// Monotone non-decreasing in f.
	prev := -1.0
	for f := 0.1; f < 2; f += 0.01 {
		e := p.PerrPerCycle(f, vdd, vth)
		if e < prev-1e-15 {
			t.Fatalf("Perr not monotone at f=%.2f", f)
		}
		if e < 0 || e > 1 {
			t.Fatalf("Perr out of [0,1]: %g", e)
		}
		prev = e
	}
}

func TestFreqAtPerrInvertsPerr(t *testing.T) {
	p := Default11nm()
	vdd, vth := 0.55, 0.36
	for _, target := range []float64{1e-16, 1e-12, 1e-8, 1e-4, 1e-2} {
		f := p.FreqAtPerr(vdd, vth, target)
		got := p.PerrPerCycle(f, vdd, vth)
		if math.Abs(math.Log10(got)-math.Log10(target)) > 0.1 {
			t.Errorf("Perr(FreqAtPerr(%g)) = %g", target, got)
		}
	}
}

func TestSafeFreqBelowFmax(t *testing.T) {
	p := Default11nm()
	for _, vth := range []float64{0.28, 0.33, 0.40, 0.45} {
		safe := p.SafeFreq(0.55, vth)
		fmax := p.Freq(0.55, vth)
		if safe >= fmax {
			t.Errorf("safe f %.3f >= fmax %.3f at vth=%.2f", safe, fmax, vth)
		}
		if safe < 0.4*fmax {
			t.Errorf("safe f %.3f implausibly far below fmax %.3f", safe, fmax)
		}
	}
}

func TestSpeculativeFreqGain(t *testing.T) {
	// Paper 6.3: operating at realistic task-level error rates buys
	// 8-41% frequency over safe across the chip. At the model level the
	// gain from Perr 1e-16 to ~1e-11..1e-9 must land in single to low
	// double digits of percent.
	p := Default11nm()
	gain := p.FreqAtPerr(0.55, 0.38, 1e-10)/p.SafeFreq(0.55, 0.38) - 1
	if gain <= 0.0 || gain > 0.5 {
		t.Errorf("speculative f gain = %.1f%%, want within (0, 50]%%", gain*100)
	}
}

func TestBlockVddMIN(t *testing.T) {
	p := Default11nm()
	small := p.BlockVddMIN(0, 64*1024*8, 0)
	large := p.BlockVddMIN(0, 2*1024*1024*8, 0)
	if large <= small {
		t.Errorf("bigger block must need more voltage: %.3f vs %.3f", large, small)
	}
	// Paper Fig 5a: per-cluster VddMIN values land in ~0.46-0.58 V;
	// the nominal block values must sit inside that window.
	if small < 0.44 || large > 0.60 {
		t.Errorf("nominal VddMIN out of plausible band: %.3f / %.3f", small, large)
	}
	// Slow (high-Vth) blocks need more voltage.
	if p.BlockVddMIN(0.03, 1<<20, 0) <= p.BlockVddMIN(-0.03, 1<<20, 0) {
		t.Error("VddMIN not increasing in block Vth")
	}
	if p.BlockVddMIN(0, 0, 0) != p.VcellNom {
		t.Error("empty block should degenerate to cell nominal")
	}
}

func TestGuardbandGrowsTowardThreshold(t *testing.T) {
	// Figure 1c: guardbands are modest at high Vdd and explode as Vdd
	// approaches Vth, with 11nm (more variation) worse than 22nm.
	p11, p22 := Default11nm(), Default22nm()
	gbHigh := p11.Guardband(1.2, 0.15, 3)
	gbLow := p11.Guardband(0.5, 0.15, 3)
	if gbLow < 3*gbHigh {
		t.Errorf("guardband at 0.5 V (%.0f%%) should dwarf 1.2 V (%.0f%%)", gbLow, gbHigh)
	}
	if gbHigh > 100 {
		t.Errorf("guardband at 1.2 V = %.0f%%, implausibly large", gbHigh)
	}
	for _, v := range []float64{0.5, 0.7, 0.9, 1.1} {
		if p11.Guardband(v, 0.15, 3) <= p22.Guardband(v, 0.10, 3) {
			t.Errorf("11nm guardband not above 22nm at %.1f V", v)
		}
	}
}

func TestDelaySensExplodesNearThreshold(t *testing.T) {
	p := Default11nm()
	if p.DelaySens(0.45, 0.33) <= p.DelaySens(1.0, 0.33) {
		t.Error("delay sensitivity must grow as Vdd approaches Vth")
	}
}

func TestStaticPowerTemperature(t *testing.T) {
	p := Default11nm()
	base := p.StaticPower(0.55, p.VthNom)
	if at := p.StaticPowerAt(0.55, p.VthNom, p.TNom); math.Abs(at-base) > 1e-12 {
		t.Error("TNom leakage must equal the calibrated value")
	}
	// Doubling every 25 C.
	hot := p.StaticPowerAt(0.55, p.VthNom, p.TNom+25)
	if math.Abs(hot/base-2) > 1e-9 {
		t.Errorf("leakage at +25C = %.3fx, want 2x", hot/base)
	}
	cold := p.StaticPowerAt(0.55, p.VthNom, p.TNom-25)
	if math.Abs(cold/base-0.5) > 1e-9 {
		t.Errorf("leakage at -25C = %.3fx, want 0.5x", cold/base)
	}
	bad := Default11nm()
	bad.LeakTempCoeff = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative temperature coefficient accepted")
	}
}

func TestFreqAtPerrMonotoneProperty(t *testing.T) {
	p := Default11nm()
	f := func(a, b float64) bool {
		// Map arbitrary floats to error-rate exponents in [-16, -2].
		e1 := -16 + 14*math.Abs(math.Mod(a, 1))
		e2 := -16 + 14*math.Abs(math.Mod(b, 1))
		if e1 > e2 {
			e1, e2 = e2, e1
		}
		p1 := math.Pow(10, e1)
		p2 := math.Pow(10, e2)
		// Tolerating more errors never slows the core.
		return p.FreqAtPerr(0.55, 0.36, p1) <= p.FreqAtPerr(0.55, 0.36, p2)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEnergyPerOpInfiniteBelowCutoff(t *testing.T) {
	p := Default11nm()
	if !math.IsInf(p.EnergyPerOp(0, p.VthNom), 1) {
		t.Error("zero-Vdd energy should be infinite")
	}
}
