// Package tech models the 11nm device technology underlying the
// Accordion study: operating frequency as a function of (Vdd, Vth)
// across the super-, near- and sub-threshold regions, dynamic and
// static power, energy per operation, variation-induced timing error
// rates, SRAM minimum operating voltage, and worst-case timing
// guardbands.
//
// The paper derived these from ITRS 2011 projections, McPAT, and the
// VARIUS-NTV model. This package substitutes closed-form transregional
// device models (an EKV-style soft-plus drain-current law, subthreshold
// leakage with DIBL, and Gaussian critical-path-delay statistics)
// calibrated to the paper's Table 2 operating points: VddNOM = 0.55 V,
// VthNOM = 0.33 V, fNOM = 1.0 GHz at NTV, corresponding to roughly
// 1.0 V / 3.3 GHz at STV.
package tech

import (
	"fmt"
	"math"

	"repro/internal/mathx"
)

// Params collects the technology parameters. The zero value is not
// usable; start from Default11nm (or Default22nm for the guardband
// comparison) and override fields as needed.
type Params struct {
	// Nominal operating points (Table 2).
	VddNomNTV float64 // V, near-threshold nominal supply (0.55)
	VddNomSTV float64 // V, super-threshold nominal supply (1.0)
	VthNom    float64 // V, nominal threshold voltage (0.33)
	FNomNTV   float64 // GHz, nominal NTV frequency (1.0)

	// Transregional frequency model: f = K * S(Vdd-Vth)^Alpha / Vdd
	// with S the soft-plus current onset of width 2*Nideal*PhiT.
	Alpha  float64 // velocity-saturation exponent (~1.7 at 11nm)
	Nideal float64 // subthreshold ideality factor
	PhiT   float64 // V, thermal voltage at operating temperature

	// Power model.
	CEff          float64 // F, effective switched capacitance per core
	StaticFracSTV float64 // static share of core power at the STV nominal point
	EtaDIBL       float64 // drain-induced barrier lowering coefficient
	NsubPhiT      float64 // V, subthreshold slope parameter n_s * phi_t

	// Timing-error model: per-cycle error probability from NPaths
	// near-critical paths with Gaussian delay of relative spread
	// sigma_d/mu_d = DelaySens(Vdd,Vth) * SigmaVthPath.
	NPaths       int     // near-critical paths per core
	SigmaVthPath float64 // V, effective path-level Vth sigma

	// SRAM VddMIN model: the weakest of a block's cells sets its
	// minimum voltage; the expected weakest-cell requirement is
	// Vc0 + BetaVth*(VthBlock-VthNom) + SigmaCell*sqrt(2 ln Ncells).
	VcellNom  float64 // V, median single-cell minimum voltage
	BetaVth   float64 // cell VddMIN sensitivity to local Vth shift
	SigmaCell float64 // V, cell-to-cell VddMIN spread

	// Thermal model: leakage is calibrated at TNom (Table 2's
	// TMIN = 80 C) and grows exponentially with temperature at
	// LeakTempCoeff per degree C (subthreshold current roughly doubles
	// every ~25 C, i.e. coeff = ln2/25).
	TNom          float64 // C, leakage calibration temperature
	LeakTempCoeff float64 // 1/C
}

// Default11nm returns the 11nm parameter set used throughout the
// reproduction, calibrated against the paper's Table 2 and Figure 1.
func Default11nm() Params {
	return Params{
		VddNomNTV:     0.55,
		VddNomSTV:     1.0,
		VthNom:        0.33,
		FNomNTV:       1.0,
		Alpha:         1.7,
		Nideal:        1.5,
		PhiT:          0.026,
		CEff:          1.50e-9, // calibrated for ~6.2 W/core at STV nominal
		StaticFracSTV: 0.20,
		EtaDIBL:       0.06,
		NsubPhiT:      0.039,
		NPaths:        1000,
		SigmaVthPath:  0.010,
		VcellNom:      0.40,
		BetaVth:       0.65,
		SigmaCell:     0.011,
		TNom:          80,
		LeakTempCoeff: math.Ln2 / 25,
	}
}

// Default22nm returns a 22nm parameter set with the milder variation of
// the older node; it exists for the Figure 1c guardband comparison.
func Default22nm() Params {
	p := Default11nm()
	p.VthNom = 0.32
	p.SigmaVthPath = 0.007
	return p
}

// Validate reports the first implausible parameter, or nil.
func (p Params) Validate() error {
	switch {
	case p.VddNomNTV <= p.VthNom:
		return fmt.Errorf("tech: NTV nominal Vdd %.3f must exceed Vth %.3f", p.VddNomNTV, p.VthNom)
	case p.VddNomSTV <= p.VddNomNTV:
		return fmt.Errorf("tech: STV Vdd %.3f must exceed NTV Vdd %.3f", p.VddNomSTV, p.VddNomNTV)
	case p.FNomNTV <= 0:
		return fmt.Errorf("tech: nominal frequency must be positive")
	case p.Alpha < 1 || p.Alpha > 2:
		return fmt.Errorf("tech: alpha %.2f outside [1, 2]", p.Alpha)
	case p.Nideal <= 0 || p.PhiT <= 0 || p.NsubPhiT <= 0:
		return fmt.Errorf("tech: ideality/thermal parameters must be positive")
	case p.NPaths <= 0:
		return fmt.Errorf("tech: NPaths must be positive")
	case p.SigmaVthPath <= 0 || p.SigmaCell <= 0:
		return fmt.Errorf("tech: variation sigmas must be positive")
	case p.LeakTempCoeff < 0:
		return fmt.Errorf("tech: leakage temperature coefficient must be non-negative")
	}
	return nil
}

// softPlus returns the smoothed current-onset term
// S(u) = 2 n phiT ln(1 + exp(u / (2 n phiT))), which tends to u for
// strong inversion and to an exponential below threshold.
func (p Params) softPlus(u float64) float64 {
	w := 2 * p.Nideal * p.PhiT
	x := u / w
	if x > 40 { // avoid overflow; softplus(x) == x to double precision
		return u
	}
	return w * math.Log1p(math.Exp(x))
}

// softPlusSlope returns dS/du, the logistic sigmoid.
func (p Params) softPlusSlope(u float64) float64 {
	w := 2 * p.Nideal * p.PhiT
	return 1 / (1 + math.Exp(-u/w))
}

// freqRaw is the uncalibrated frequency shape S(Vdd-Vth)^alpha / Vdd.
func (p Params) freqRaw(vdd, vth float64) float64 {
	if vdd <= 0 {
		return 0
	}
	return math.Pow(p.softPlus(vdd-vth), p.Alpha) / vdd
}

// freqK returns the calibration constant mapping freqRaw to GHz such
// that Freq(VddNomNTV, VthNom) == FNomNTV.
func (p Params) freqK() float64 {
	return p.FNomNTV / p.freqRaw(p.VddNomNTV, p.VthNom)
}

// Freq returns the maximum operating frequency in GHz of a core with
// threshold voltage vth at supply vdd, absent any timing margin.
func (p Params) Freq(vdd, vth float64) float64 {
	return p.freqK() * p.freqRaw(vdd, vth)
}

// FSTV returns the super-threshold nominal frequency implied by the
// model (~3.3 GHz for the default 11nm parameters).
func (p Params) FSTV() float64 { return p.Freq(p.VddNomSTV, p.VthNom) }

// DynPower returns the dynamic power in W of one core switching its
// effective capacitance at frequency f GHz under supply vdd.
func (p Params) DynPower(vdd, f float64) float64 {
	return p.CEff * vdd * vdd * f * 1e9
}

// staticK returns the leakage calibration constant such that the static
// share of core power at the STV nominal point equals StaticFracSTV.
func (p Params) staticK() float64 {
	dynNom := p.DynPower(p.VddNomSTV, p.FSTV())
	statNom := dynNom * p.StaticFracSTV / (1 - p.StaticFracSTV)
	return statNom / p.staticRaw(p.VddNomSTV, p.VthNom)
}

// staticRaw is the uncalibrated leakage power shape
// Vdd * exp((-Vth + eta*Vdd) / (n_s phi_t)).
func (p Params) staticRaw(vdd, vth float64) float64 {
	return vdd * math.Exp((-vth+p.EtaDIBL*vdd)/p.NsubPhiT)
}

// StaticPower returns the leakage power in W of one core with threshold
// vth at supply vdd, at the calibration temperature TNom.
func (p Params) StaticPower(vdd, vth float64) float64 {
	return p.staticK() * p.staticRaw(vdd, vth)
}

// StaticPowerAt returns the leakage power at temperature tempC, scaling
// the TNom-calibrated leakage by exp(LeakTempCoeff * (tempC - TNom)).
func (p Params) StaticPowerAt(vdd, vth, tempC float64) float64 {
	return p.StaticPower(vdd, vth) * math.Exp(p.LeakTempCoeff*(tempC-p.TNom))
}

// CorePower returns total (dynamic + static) core power in W at supply
// vdd, threshold vth, running at f GHz. A gated-off core (f == 0) still
// leaks unless vdd is zero.
func (p Params) CorePower(vdd, vth, f float64) float64 {
	return p.DynPower(vdd, f) + p.StaticPower(vdd, vth)
}

// EnergyPerOp returns the energy per operation in nJ for a core running
// flat-out at its maximum frequency for the given operating point.
func (p Params) EnergyPerOp(vdd, vth float64) float64 {
	f := p.Freq(vdd, vth)
	if f <= 0 {
		return math.Inf(1)
	}
	return p.CorePower(vdd, vth, f) / (f * 1e9) * 1e9
}

// DelaySens returns the logarithmic sensitivity of path delay to
// threshold voltage, d ln(delay) / d Vth, in 1/V. It grows steeply as
// Vdd approaches Vth, which is what makes NTC so vulnerable to
// variation.
func (p Params) DelaySens(vdd, vth float64) float64 {
	u := vdd - vth
	s := p.softPlus(u)
	if s <= 0 {
		return math.Inf(1)
	}
	return p.Alpha * p.softPlusSlope(u) / s
}

// delaySpread returns the relative critical-path-delay spread
// sigma_d / mu_d for a core at the given operating point.
func (p Params) delaySpread(vdd, vth float64) float64 {
	return p.DelaySens(vdd, vth) * p.SigmaVthPath
}

// PerrPerCycle returns the per-cycle probability of a variation-induced
// timing error for a core with threshold vth at supply vdd clocked at
// f GHz. The core's NPaths near-critical paths have Gaussian delay with
// mean 1/Freq(vdd,vth) and relative spread delaySpread; an error occurs
// when any path exceeds the clock period.
func (p Params) PerrPerCycle(f, vdd, vth float64) float64 {
	fmax := p.Freq(vdd, vth)
	if f <= 0 {
		return 0
	}
	if fmax <= 0 {
		return 1
	}
	mu := 1 / fmax
	sigma := p.delaySpread(vdd, vth) * mu
	if sigma <= 0 {
		if f > fmax {
			return 1
		}
		return 0
	}
	z := (1/f - mu) / sigma
	// P(all paths meet timing) = CDF(z)^NPaths; for the deep tail use
	// the union bound NPaths * Q(z), exact to first order.
	tail := mathx.StdNormalTail(z)
	n := float64(p.NPaths)
	if tail*n < 1e-6 {
		return tail * n
	}
	cdf := 1 - tail
	if cdf <= 0 {
		return 1
	}
	return 1 - math.Exp(n*math.Log(cdf))
}

// FreqAtPerr returns the highest frequency in GHz at which the core's
// per-cycle timing-error probability stays at or below perr. With
// perr at the error-free target (e.g. 1e-16) this is the safe
// frequency fNTV,Safe; larger perr values yield the speculative
// frequencies of Accordion's Speculative modes.
func (p Params) FreqAtPerr(vdd, vth, perr float64) float64 {
	fmax := p.Freq(vdd, vth)
	if fmax <= 0 {
		return 0
	}
	if perr >= 1 {
		// The delay distribution is unbounded; cap at the point where
		// half the cycles fail.
		perr = 0.5
	}
	mu := 1 / fmax
	sigma := p.delaySpread(vdd, vth) * mu
	n := float64(p.NPaths)
	var z float64
	if perr < 1e-6 {
		z = mathx.StdNormalTailQuantile(perr / n)
	} else {
		// Solve 1 - CDF(z)^n = perr.
		z = mathx.StdNormalTailQuantile(-math.Log1p(-perr) / n)
	}
	return 1 / (mu + z*sigma)
}

// ErrorFreePerr is the per-cycle error probability the paper treats as
// effectively error-free when deriving safe frequencies.
const ErrorFreePerr = 1e-16

// SafeFreq returns fNTV,Safe: the highest frequency excluding timing
// errors (per-cycle error probability at most ErrorFreePerr).
func (p Params) SafeFreq(vdd, vth float64) float64 {
	return p.FreqAtPerr(vdd, vth, ErrorFreePerr)
}

// BlockVddMIN returns the minimum supply voltage at which an SRAM block
// of nbits cells with block-average threshold shift dvth (vs nominal)
// stays functional. extraSigma is a per-block standard-normal draw
// capturing residual randomness of the weakest cell; pass 0 for the
// expected value.
func (p Params) BlockVddMIN(dvth float64, nbits int, extraSigma float64) float64 {
	if nbits <= 0 {
		return p.VcellNom
	}
	worst := math.Sqrt(2 * math.Log(float64(nbits)))
	// The fluctuation of the maximum of n Gaussians around its typical
	// value has scale sigma/worst (Gumbel limit).
	return p.VcellNom + p.BetaVth*dvth + p.SigmaCell*(worst+extraSigma/worst)
}

// Guardband returns the worst-case timing guardband in percent at
// supply vdd for a population with total threshold-voltage variation
// sigmaMu (sigma/mu). It is the frequency penalty of designing for a
// kSigma-slow threshold corner:
// (f(Vdd, VthNom) / f(Vdd, VthNom + kSigma*sigma) - 1) * 100.
func (p Params) Guardband(vdd, sigmaMu, kSigma float64) float64 {
	slow := p.VthNom * (1 + kSigma*sigmaMu)
	fn := p.Freq(vdd, p.VthNom)
	fs := p.Freq(vdd, slow)
	if fs <= 0 {
		return math.Inf(1)
	}
	return (fn/fs - 1) * 100
}
