// Package bodytrack reimplements PARSEC's bodytrack kernel: an
// annealed particle filter (APF) tracking an articulated-body
// configuration through a scene of noisy observations.
//
// The Accordion input is the number of annealing layers, which affects
// both the filtering accuracy and the problem size (Table 3). The
// output is the vector of tracked configurations over all frames, and
// distortion is SSD-based. Fault injection follows footnote 1:
// infected threads are prevented from computing their particles'
// weights, so those particles never survive resampling — which is why
// the paper finds bodytrack the most error-sensitive benchmark.
package bodytrack

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Benchmark is the bodytrack kernel. Construct with New.
type Benchmark struct {
	scene     *workload.PoseTrajectory
	particles int
	obsSigma  float64 // observation-model sigma
	initScale float64 // initial particle scatter
}

// New builds the bodytrack benchmark over its standard synthetic scene.
func New() (*Benchmark, error) {
	scene, err := workload.NewPoseTrajectory(48, 6, 0.25, 0xB0D)
	if err != nil {
		return nil, err
	}
	return &Benchmark{scene: scene, particles: 256, obsSigma: 0.25, initScale: 0.5}, nil
}

// Name implements rms.Benchmark.
func (b *Benchmark) Name() string { return "bodytrack" }

// Domain implements rms.Benchmark.
func (b *Benchmark) Domain() string { return "computer vision" }

// AccordionInput implements rms.Benchmark.
func (b *Benchmark) AccordionInput() string { return "number of annealing layers" }

// QualityMetricName implements rms.Benchmark.
func (b *Benchmark) QualityMetricName() string { return "SSD based" }

// DefaultInput implements rms.Benchmark.
func (b *Benchmark) DefaultInput() float64 { return 4 }

// HyperInput implements rms.Benchmark.
func (b *Benchmark) HyperInput() float64 { return 24 }

// Sweep implements rms.Benchmark: layer counts are integral.
func (b *Benchmark) Sweep() []float64 {
	return []float64{1, 2, 3, 4, 5, 6, 8, 10, 12}
}

// ProblemSize implements rms.Benchmark: each annealing layer weights,
// resamples and perturbs the full particle set.
func (b *Benchmark) ProblemSize(input float64) float64 {
	return input / b.DefaultInput()
}

// DependencePS implements rms.Benchmark (Table 3).
func (b *Benchmark) DependencePS() rms.Dependence { return rms.Complex }

// DependenceQ implements rms.Benchmark (Table 3).
func (b *Benchmark) DependenceQ() rms.Dependence { return rms.Complex }

// DefaultThreads implements rms.Benchmark.
func (b *Benchmark) DefaultThreads() int { return 64 }

// Profile implements rms.Benchmark.
func (b *Benchmark) Profile() sim.WorkProfile {
	return sim.WorkProfile{
		OpsPerUnit:   8.0e9,
		SerialFrac:   0.005,
		CPIBase:      1.0,
		MissPerOp:    0.0012,
		MemLatencyNs: 80,
	}
}

// Run implements rms.Benchmark. The output is the tracked configuration
// (joint angles) for every frame, flattened frame-major.
func (b *Benchmark) Run(input float64, threads int, plan fault.Plan, seed int64) (rms.Result, error) {
	if err := rms.ValidateInput(b.Name(), input); err != nil {
		return rms.Result{}, err
	}
	if err := rms.ValidateThreads(b.Name(), threads); err != nil {
		return rms.Result{}, err
	}
	if plan.Mode == fault.Invert {
		return rms.Result{}, fmt.Errorf("bodytrack: the Invert error mode has no decision variable to invert")
	}
	layers := int(math.Round(input))
	if layers < 1 {
		layers = 1
	}
	frames, joints := b.scene.Frames, b.scene.Joints
	p := b.particles
	rng := mathx.NewRNG(seed)

	owner := func(i int) int { return i * threads / p }

	// Particle cloud and its running center (the previous estimate).
	states := make([][]float64, p)
	for i := range states {
		states[i] = make([]float64, joints)
	}
	center := make([]float64, joints)
	copy(center, b.scene.Obs[0])

	weights := make([]float64, p)
	ops := 0.0
	out := make([]float64, 0, frames*joints)

	const (
		processNoise = 0.35 // first-layer scatter around the prediction
		layerDecay   = 0.7  // per-layer contraction of the diffusion
	)

	// Footnote 1 drops bodytrack tasks in two places: the image row/
	// column filtering of ParticleFilterPthread::Exec and the particle
	// weight computation of TrackingModelPthread::Exec. Unfiltered
	// image slices make the measurement noisier in proportion to the
	// dropped share; the extra noise is drawn from a dedicated stream
	// so the particle draws stay comparable across plans.
	dropFrac := 0.0
	if plan.Mode == fault.Drop {
		dropFrac = float64(plan.CountInfected(threads)) / float64(threads)
	}
	obsRng := mathx.NewRNG(seed).Split(0x0B5)

	for f := 0; f < frames; f++ {
		obs := make([]float64, joints)
		copy(obs, b.scene.Obs[f])
		for j := range obs {
			extra := obsRng.Normal(0, 1)
			if dropFrac > 0 {
				obs[j] += 1.3 * dropFrac * extra
			}
		}
		for l := 0; l < layers; l++ {
			// Diffusion: scatter the cloud around the running center,
			// contracting geometrically as annealing progresses.
			sigma := processNoise * math.Pow(layerDecay, float64(l))
			for i := 0; i < p; i++ {
				for j := 0; j < joints; j++ {
					states[i][j] = center[j] + rng.Normal(0, sigma)
				}
			}
			// Annealing: sharpen the likelihood layer by layer.
			beta := (float64(l) + 1) / float64(layers)
			// Weight phase (data-parallel over particles).
			sum := 0.0
			for i := 0; i < p; i++ {
				t := owner(i)
				if plan.Infected(t) && plan.Active() && (i == 0 || owner(i-1) != t) {
					plan.Note(t, f*layers+l)
				}
				if plan.Mode == fault.Drop && plan.Infected(t) {
					weights[i] = 0 // weight computation prevented
					continue
				}
				d2 := 0.0
				for j := 0; j < joints; j++ {
					diff := states[i][j] - obs[j]
					d2 += diff * diff
				}
				w := math.Exp(-beta * d2 / (2 * b.obsSigma * b.obsSigma))
				if plan.Active() && plan.Mode != fault.Drop && plan.Infected(t) {
					// A corrupted weight is still just a number the
					// reduction consumes; the application's range check
					// clamps it so one bogus particle cannot overflow
					// the normalization into Inf/NaN.
					w = mathx.Clamp(math.Abs(plan.CorruptValue(w, t)), 0, 1e12)
				}
				weights[i] = w
				sum += w
				ops++
			}
			// Selection (control phase): recenter on the weighted mean.
			// With every weight lost (all particles dropped or a
			// degenerate likelihood) the center simply persists, the
			// application's recovery path.
			if sum > 0 {
				for j := 0; j < joints; j++ {
					m := 0.0
					for i := 0; i < p; i++ {
						m += weights[i] * states[i][j]
					}
					center[j] = m / sum
				}
			}
		}
		out = append(out, center...)
		// Next frame predicts from the current estimate (the cloud is
		// re-scattered at the first layer).
	}
	return rms.Result{Output: out, Ops: ops}, nil
}

// Quality implements rms.Benchmark: 1 minus the SSD-based relative
// distortion of the tracked configurations against the hyper-accurate
// reference.
func (b *Benchmark) Quality(run, ref rms.Result) (float64, error) {
	if len(run.Output) != len(ref.Output) || len(ref.Output) == 0 {
		return 0, fmt.Errorf("bodytrack: malformed outputs")
	}
	d, err := quality.NRMSE(run.Output, ref.Output)
	if err != nil {
		return 0, err
	}
	return 1 - d, nil
}

// Trace implements rms.Benchmark: particle state scatters over a
// megabyte-scale arena that overflows the private memory but rides the
// cluster memory.
func (b *Benchmark) Trace() sim.TraceSpec {
	return sim.TraceSpec{
		Kind: sim.RandomUniform, WorkingSetBytes: 1 << 20,
		MemFrac: 0.30, HotFrac: 0.996, HotBytes: 16 * 1024, Seed: 0xB0D,
	}
}

var _ rms.Benchmark = (*Benchmark)(nil)
