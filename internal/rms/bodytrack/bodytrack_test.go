package bodytrack

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/rms/rmstest"
)

func newBench(t *testing.T) *Benchmark {
	t.Helper()
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConformance(t *testing.T) {
	rmstest.Conformance(t, newBench(t))
}

func TestTrackerFollowsTruth(t *testing.T) {
	b := newBench(t)
	res, err := b.Run(8, 16, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The tracked configuration must beat the raw noisy observations in
	// RMS error against ground truth (filtering actually filters).
	joints := b.scene.Joints
	var errTrack, errObs float64
	for f := 0; f < b.scene.Frames; f++ {
		for j := 0; j < joints; j++ {
			dT := res.Output[f*joints+j] - b.scene.True[f][j]
			dO := b.scene.Obs[f][j] - b.scene.True[f][j]
			errTrack += dT * dT
			errObs += dO * dO
		}
	}
	if errTrack >= errObs {
		t.Errorf("tracker (SSD %.2f) worse than raw observations (SSD %.2f)", errTrack, errObs)
	}
}

func TestMoreLayersTrackBetter(t *testing.T) {
	b := newBench(t)
	sse := func(layers float64) float64 {
		res, err := b.Run(layers, 16, fault.Plan{}, 3)
		if err != nil {
			t.Fatal(err)
		}
		joints := b.scene.Joints
		s := 0.0
		for f := 0; f < b.scene.Frames; f++ {
			for j := 0; j < joints; j++ {
				d := res.Output[f*joints+j] - b.scene.True[f][j]
				s += d * d
			}
		}
		return s
	}
	if e1, e12 := sse(1), sse(12); e12 >= e1 {
		t.Errorf("12 layers (SSD %.2f) no better than 1 layer (SSD %.2f)", e12, e1)
	}
}

// The paper singles bodytrack out as the benchmark whose quality is
// most sensitive to errors: Drop 1/2 causes excessive degradation.
func TestDropHurtsMoreThanOtherBenchmarks(t *testing.T) {
	b := newBench(t)
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := func(plan fault.Plan) float64 {
		res, err := b.Run(b.DefaultInput(), 64, plan, 1)
		if err != nil {
			t.Fatal(err)
		}
		v, err := b.Quality(res, ref)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	qDef, qHalf := q(fault.Plan{}), q(fault.DropHalf())
	if qHalf >= qDef {
		t.Errorf("Drop 1/2 did not hurt: %.3f vs %.3f", qHalf, qDef)
	}
}

func TestWeightCorruptionDeterministic(t *testing.T) {
	b := newBench(t)
	plan := fault.Plan{Mode: fault.Flip, Num: 1, Den: 4, Seed: 11}
	r1, err := b.Run(4, 16, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(4, 16, plan, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Fatal("corrupted runs differ")
		}
	}
}

func TestOutputShape(t *testing.T) {
	b := newBench(t)
	res, err := b.Run(2, 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) != b.scene.Frames*b.scene.Joints {
		t.Fatalf("output length %d", len(res.Output))
	}
	for _, v := range res.Output {
		if math.IsNaN(v) || math.Abs(v) > 10 {
			t.Fatalf("implausible tracked angle %g", v)
		}
	}
}

func TestInvertRejected(t *testing.T) {
	b := newBench(t)
	if _, err := b.Run(4, 8, fault.Plan{Mode: fault.Invert, Num: 1, Den: 4}, 1); err == nil {
		t.Error("Invert mode accepted")
	}
}
