// Package rms defines the common harness for the six R(ecognition),
// M(ining), S(ynthesis) benchmarks of Table 3 — canneal, ferret,
// bodytrack, x264 (PARSEC) and hotspot, srad (Rodinia) — reimplemented
// as deterministic Go kernels.
//
// Every benchmark exposes one Accordion input: the application
// parameter that governs both the problem size and the output accuracy
// (swaps per temperature step, size factor, annealing layers, quantizer
// precision, iteration counts). Monotonically increasing the input
// grows the problem and improves the output, which is the property
// Accordion's problem-size knob relies on.
//
// Runs execute the real algorithm with the requested number of emulated
// parallel tasks and apply a fault plan at exactly the program points
// the paper's footnote 1 names (swap() for canneal, filtering and
// weight computation for bodytrack, macroblock encoding for x264, cell
// updates for hotspot, the full iteration body for srad, database-shard
// search for ferret).
package rms

import (
	"context"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/parallel"
	"repro/internal/sim"
)

// Dependence classifies how problem size or quality responds to the
// Accordion input (Table 3).
type Dependence int

// Dependence kinds.
const (
	Linear Dependence = iota
	Complex
)

// String names the dependence.
func (d Dependence) String() string {
	if d == Linear {
		return "linear"
	}
	return "complex"
}

// Result is one execution's observable outcome.
type Result struct {
	// Output holds the numeric output values the distortion metric
	// compares (routing cost, temperatures, pixels, tracked
	// configurations, ranked-list membership indicators).
	Output []float64
	// Ops counts the abstract work units actually executed, the
	// empirical problem size.
	Ops float64
}

// Benchmark is the contract every RMS kernel implements.
type Benchmark interface {
	// Name returns the benchmark's PARSEC/Rodinia name.
	Name() string
	// Domain returns the application domain of Table 3.
	Domain() string
	// AccordionInput names the input parameter serving as the knob.
	AccordionInput() string
	// QualityMetricName names the Table 3 quality metric.
	QualityMetricName() string

	// DefaultInput returns the knob value corresponding to the paper's
	// default (simsmall / as-provided) configuration.
	DefaultInput() float64
	// HyperInput returns the knob value of the hyper-accurate reference
	// execution quality is measured against.
	HyperInput() float64
	// Sweep returns the monotone knob sweep used for Figures 2 and 4.
	Sweep() []float64

	// ProblemSize returns the problem size at the given knob value,
	// normalized to 1 at DefaultInput.
	ProblemSize(input float64) float64

	// Run executes the kernel with the given knob value on `threads`
	// emulated parallel tasks under the fault plan. The same arguments
	// always produce the same result.
	Run(input float64, threads int, plan fault.Plan, seed int64) (Result, error)

	// Quality scores a run against the hyper-accurate reference;
	// 1 is a perfect match, lower is worse.
	Quality(run, ref Result) (float64, error)

	// DependencePS and DependenceQ return the Table 3 classification of
	// the problem-size and quality dependence on the Accordion input.
	DependencePS() Dependence
	DependenceQ() Dependence

	// Profile returns the machine-work characterization used by the
	// iso-execution-time solver.
	Profile() sim.WorkProfile

	// Trace returns the synthetic memory-reference mix that grounds the
	// Profile's MissPerOp in the trace-driven cache model (Table 2's
	// 64 KB private / 2 MB cluster hierarchy).
	Trace() sim.TraceSpec

	// DefaultThreads returns the thread count the paper profiled with
	// (64, except srad's 32).
	DefaultThreads() int
}

// refKey identifies one reference execution: kernels are deterministic
// functions of (name, input, threads, seed), so the tuple pins the
// result exactly.
type refKey struct {
	name    string
	input   float64
	threads int
	seed    int64
}

// refCache memoizes reference executions with singleflight semantics,
// so concurrent experiments profiling the same benchmark never
// duplicate the error-free baseline run.
var refCache = parallel.Cache[refKey, Result]{Name: "rms.Reference"}

// Reference runs the hyper-accurate fault-free execution a benchmark's
// quality is measured against. Results are memoized per (benchmark,
// input, threads, seed) — the baseline is the single most re-run
// execution in the repository — and concurrent callers share one
// in-flight run. The returned Result owns its Output slice; callers
// may mutate it freely.
func Reference(b Benchmark, seed int64) (Result, error) {
	return ReferenceCtx(context.Background(), b, seed)
}

// ReferenceCtx is Reference under per-scope telemetry attribution: the
// memo cache's hit/miss counters tally into the telemetry scope ctx
// carries (if any), so a service job's manifest reports the baseline
// runs that job itself triggered. The context carries attribution
// only, never cancellation of the baseline run.
func ReferenceCtx(ctx context.Context, b Benchmark, seed int64) (Result, error) {
	key := refKey{b.Name(), b.HyperInput(), b.DefaultThreads(), seed}
	res, err := refCache.DoCtx(ctx, key, func() (Result, error) {
		return b.Run(b.HyperInput(), b.DefaultThreads(), fault.Plan{}, seed)
	})
	if err != nil {
		return Result{}, err
	}
	res.Output = append([]float64(nil), res.Output...)
	return res, nil
}

// ResetReferenceCache empties the memoized reference executions; it
// exists for benchmarks that need to measure cold-cache behavior.
func ResetReferenceCache() { refCache.Reset() }

// ValidateInput rejects non-positive knob values on behalf of kernels.
func ValidateInput(name string, input float64) error {
	if input <= 0 {
		return fmt.Errorf("rms: %s input must be positive, got %g", name, input)
	}
	return nil
}

// ValidateThreads rejects non-positive thread counts.
func ValidateThreads(name string, threads int) error {
	if threads <= 0 {
		return fmt.Errorf("rms: %s thread count must be positive, got %d", name, threads)
	}
	return nil
}

// SweepGeometric builds a monotone knob sweep of n points spanning
// [lo, hi] multiplicatively around a benchmark's default.
func SweepGeometric(lo, hi float64, n int) []float64 {
	if n < 2 || hi <= lo || lo <= 0 {
		return []float64{lo}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		t := float64(i) / float64(n-1)
		out[i] = lo * math.Pow(ratio, t)
	}
	return out
}
