// Package rmstest provides the conformance suite every RMS kernel must
// pass: metadata sanity, determinism, the monotone quality-vs-problem-
// size property Accordion relies on, and well-behaved degradation under
// the Drop error model.
package rmstest

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/sim"
)

// Conformance runs the full suite against b.
func Conformance(t *testing.T, b rms.Benchmark) {
	t.Helper()

	t.Run("metadata", func(t *testing.T) { metadata(t, b) })
	t.Run("determinism", func(t *testing.T) { determinism(t, b) })
	t.Run("problem-size", func(t *testing.T) { problemSize(t, b) })
	t.Run("quality-front", func(t *testing.T) { qualityFront(t, b) })
	t.Run("drop-degrades", func(t *testing.T) { dropDegrades(t, b) })
	t.Run("input-validation", func(t *testing.T) { inputValidation(t, b) })
	t.Run("trace-grounding", func(t *testing.T) { traceGrounding(t, b) })
}

// traceGrounding checks the analytic WorkProfile.MissPerOp against the
// trace-driven cache simulation of the kernel's declared reference mix:
// the abstraction must stay within a factor of five of the
// microarchitectural model.
func traceGrounding(t *testing.T, b rms.Benchmark) {
	spec := b.Trace()
	if err := spec.Validate(); err != nil {
		t.Fatalf("trace spec: %v", err)
	}
	res, err := sim.SimulateCore(spec, 300000, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	declared := b.Profile().MissPerOp
	if declared <= 0 {
		t.Fatal("profile declares no memory behaviour")
	}
	if res.MissPerOp < declared/5 || res.MissPerOp > declared*5 {
		t.Errorf("trace-simulated MissPerOp %.2e vs declared %.2e diverge beyond 5x",
			res.MissPerOp, declared)
	}
}

func metadata(t *testing.T, b rms.Benchmark) {
	if b.Name() == "" || b.Domain() == "" || b.AccordionInput() == "" || b.QualityMetricName() == "" {
		t.Error("empty metadata")
	}
	if b.DefaultThreads() <= 0 {
		t.Error("non-positive default thread count")
	}
	if b.DefaultInput() <= 0 || b.HyperInput() <= b.DefaultInput() {
		t.Errorf("inputs out of order: default %g, hyper %g", b.DefaultInput(), b.HyperInput())
	}
	sweep := b.Sweep()
	if len(sweep) < 5 {
		t.Fatalf("sweep too short: %d points", len(sweep))
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= sweep[i-1] {
			t.Fatal("sweep not strictly increasing")
		}
	}
	if sweep[0] > b.DefaultInput() || sweep[len(sweep)-1] < b.DefaultInput() {
		t.Error("default input outside sweep range")
	}
	if err := b.Profile().Validate(); err != nil {
		t.Errorf("work profile: %v", err)
	}
}

func determinism(t *testing.T, b rms.Benchmark) {
	r1, err := b.Run(b.DefaultInput(), 8, fault.DropQuarter(), 5)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(b.DefaultInput(), 8, fault.DropQuarter(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(r1.Output) != len(r2.Output) || r1.Ops != r2.Ops {
		t.Fatal("repeated runs differ in shape")
	}
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Fatal("repeated runs differ in output")
		}
	}
}

func problemSize(t *testing.T, b rms.Benchmark) {
	if ps := b.ProblemSize(b.DefaultInput()); ps < 0.999 || ps > 1.001 {
		t.Errorf("ProblemSize(default) = %g, want 1", ps)
	}
	sweep := b.Sweep()
	prev := 0.0
	for _, in := range sweep {
		ps := b.ProblemSize(in)
		if ps <= prev {
			t.Fatalf("problem size not increasing along sweep at input %g", in)
		}
		prev = ps
	}
	// Empirical work must track the analytic problem size: doubling the
	// problem roughly doubles executed ops.
	lo, err := b.Run(sweep[0], b.DefaultThreads(), fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := b.Run(sweep[len(sweep)-1], b.DefaultThreads(), fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lo.Ops <= 0 || hi.Ops <= lo.Ops {
		t.Errorf("executed ops do not grow with problem size: %g -> %g", lo.Ops, hi.Ops)
	}
	psRatio := b.ProblemSize(sweep[len(sweep)-1]) / b.ProblemSize(sweep[0])
	opsRatio := hi.Ops / lo.Ops
	if opsRatio < 0.4*psRatio || opsRatio > 2.5*psRatio {
		t.Errorf("ops ratio %.2f diverges from problem-size ratio %.2f", opsRatio, psRatio)
	}
}

func qualityFront(t *testing.T, b rms.Benchmark) {
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The reference scores (essentially) perfectly against itself.
	if q, err := b.Quality(ref, ref); err != nil || q < 0.999 || q > 1.001 {
		t.Fatalf("self-quality = %g, err = %v", q, err)
	}
	sweep := b.Sweep()
	threads := b.DefaultThreads()
	first, err := runQuality(b, sweep[0], threads, fault.Plan{}, ref)
	if err != nil {
		t.Fatal(err)
	}
	last, err := runQuality(b, sweep[len(sweep)-1], threads, fault.Plan{}, ref)
	if err != nil {
		t.Fatal(err)
	}
	if last <= first {
		t.Errorf("quality does not improve along the sweep: %.4f -> %.4f", first, last)
	}
	if last > 1.05 {
		t.Errorf("quality %g exceeds the reference's", last)
	}
}

func dropDegrades(t *testing.T, b rms.Benchmark) {
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	threads := b.DefaultThreads()
	in := b.DefaultInput()
	qDef, err := runQuality(b, in, threads, fault.Plan{}, ref)
	if err != nil {
		t.Fatal(err)
	}
	qQuarter, err := runQuality(b, in, threads, fault.DropQuarter(), ref)
	if err != nil {
		t.Fatal(err)
	}
	qHalf, err := runQuality(b, in, threads, fault.DropHalf(), ref)
	if err != nil {
		t.Fatal(err)
	}
	// Non-determinism aside, dropping work must not help (paper allows
	// slight wiggle; we allow 2% of the default quality).
	tol := 0.02 * qDef
	if qQuarter > qDef+tol {
		t.Errorf("Drop 1/4 improved quality: %.4f vs %.4f", qQuarter, qDef)
	}
	if qHalf > qQuarter+tol {
		t.Errorf("Drop 1/2 beat Drop 1/4: %.4f vs %.4f", qHalf, qQuarter)
	}
	if qHalf <= 0 {
		t.Errorf("Drop 1/2 quality collapsed to %.4f; RMS apps should degrade gracefully", qHalf)
	}
}

func inputValidation(t *testing.T, b rms.Benchmark) {
	if _, err := b.Run(0, 8, fault.Plan{}, 1); err == nil {
		t.Error("zero input accepted")
	}
	if _, err := b.Run(-3, 8, fault.Plan{}, 1); err == nil {
		t.Error("negative input accepted")
	}
	if _, err := b.Run(b.DefaultInput(), 0, fault.Plan{}, 1); err == nil {
		t.Error("zero threads accepted")
	}
}

func runQuality(b rms.Benchmark, input float64, threads int, plan fault.Plan, ref rms.Result) (float64, error) {
	r, err := b.Run(input, threads, plan, 1)
	if err != nil {
		return 0, err
	}
	return b.Quality(r, ref)
}
