package hotspot

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/rms"
	"repro/internal/rms/rmstest"
)

func TestConformance(t *testing.T) {
	rmstest.Conformance(t, New())
}

func TestSolverConverges(t *testing.T) {
	b := New()
	r1, err := b.Run(1024, 16, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := b.Run(2048, 16, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Near steady state, doubling iterations barely changes the field.
	maxDiff := 0.0
	for i := range r1.Output {
		if d := math.Abs(r1.Output[i] - r2.Output[i]); d > maxDiff {
			maxDiff = d
		}
	}
	_, peak := mathx.MinMax(r2.Output)
	if maxDiff > 0.01*peak {
		t.Errorf("solver not converged: max drift %.3g vs peak %.3g", maxDiff, peak)
	}
}

func TestTemperatureRisesWherePowerIs(t *testing.T) {
	b := New()
	res, err := b.Run(512, 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// The hottest cell must be hotter than the coolest by a clear margin
	// and all rises must be positive at steady state.
	lo, hi := mathx.MinMax(res.Output)
	if lo <= 0 {
		t.Errorf("temperature rise %.3f not positive", lo)
	}
	if hi < 2*lo {
		t.Error("temperature field suspiciously flat")
	}
	// Peak rise correlates with peak power density.
	peakIdx, peakPow := 0, 0.0
	for y := 0; y < b.h; y++ {
		for x := 0; x < b.w; x++ {
			if p := b.power.At(x, y); p > peakPow {
				peakPow, peakIdx = p, y*b.w+x
			}
		}
	}
	if res.Output[peakIdx] < 0.5*hi {
		t.Error("peak-power cell is not among the hottest")
	}
}

func TestDropSlowsConvergence(t *testing.T) {
	b := New()
	full, err := b.Run(64, 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := b.Run(64, 8, fault.DropHalf(), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Dropped per-iteration tasks slow the march to steady state: the
	// dropped run's field must lag the full run's (lower total rise).
	sumFull, sumDrop := 0.0, 0.0
	for i := range full.Output {
		sumFull += full.Output[i]
		sumDrop += dropped.Output[i]
	}
	if sumDrop >= sumFull {
		t.Errorf("dropped run did not lag: %.1f vs %.1f", sumDrop, sumFull)
	}
	// Half the per-iteration tasks dropped: ops shrink accordingly.
	if ratio := dropped.Ops / full.Ops; math.Abs(ratio-0.5) > 0.05 {
		t.Errorf("Drop 1/2 ops ratio = %.3f", ratio)
	}
	// More iterations still improve a dropped run (monotone fronts of
	// Figure 2 under errors).
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	shortDrop, err := b.Run(24, 8, fault.DropHalf(), 1)
	if err != nil {
		t.Fatal(err)
	}
	longDrop, err := b.Run(96, 8, fault.DropHalf(), 1)
	if err != nil {
		t.Fatal(err)
	}
	qShort, _ := b.Quality(shortDrop, ref)
	qLong, _ := b.Quality(longDrop, ref)
	if qLong <= qShort {
		t.Errorf("quality under Drop not improving with iterations: %.3f -> %.3f", qShort, qLong)
	}
}

// The paper singles out hotspot (with ferret) as highly sensitive to
// problem size: the same input increase buys a bigger quality gain than
// canneal's. Verify the quality front spans a wide range.
func TestQualityHighlySensitive(t *testing.T) {
	b := New()
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	sweep := b.Sweep()
	qLo := mustQuality(t, b, sweep[0], ref)
	qHi := mustQuality(t, b, sweep[len(sweep)-1], ref)
	if qHi-qLo < 0.1 {
		t.Errorf("quality span %.3f-%.3f too flat for hotspot", qLo, qHi)
	}
}

func TestCorruptionHitsOnlyInfectedRows(t *testing.T) {
	b := New()
	full, err := b.Run(48, 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.Plan{Mode: fault.StuckAll1, Num: 1, Den: 4, Seed: 9}
	corr, err := b.Run(48, 8, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	for y := 0; y < b.h; y++ {
		tid := y * 8 / b.h
		same := true
		for x := 0; x < b.w; x++ {
			if corr.Output[y*b.w+x] != full.Output[y*b.w+x] {
				same = false
				break
			}
		}
		if plan.Infected(tid) && same {
			t.Errorf("infected row %d not corrupted", y)
		}
		if !plan.Infected(tid) && !same {
			t.Errorf("healthy row %d corrupted", y)
		}
	}
}

func mustQuality(t *testing.T, b rms.Benchmark, input float64, ref rms.Result) float64 {
	t.Helper()
	r, err := b.Run(input, b.DefaultThreads(), fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	q, err := b.Quality(r, ref)
	if err != nil {
		t.Fatal(err)
	}
	return q
}

func TestOwnerOfValue(t *testing.T) {
	b := New()
	n := b.w * b.h
	threads := 8
	for _, i := range []int{0, b.w - 1, b.w, n - 1} {
		y := i / b.w
		if got, want := b.OwnerOfValue(i, n, threads), y*threads/b.h; got != want {
			t.Errorf("OwnerOfValue(%d) = %d, want %d", i, got, want)
		}
	}
	if got := b.OwnerOfValue(0, 3, threads); got != 0 {
		t.Errorf("mismatched value count owner = %d, want 0", got)
	}
}

// TestAttributionLedgerSums is the end-to-end acceptance check: a Drop
// run's ledger charges per-core distortion contributions that sum to
// the run's total fault-caused distortion within 1e-9.
func TestAttributionLedgerSums(t *testing.T) {
	b := New()
	threads := 8
	cores := make([]fault.CoreRef, threads)
	for i := range cores {
		cores[i] = fault.CoreRef{Core: 100 + i, Cluster: i / 4}
	}
	led, err := fault.NewLedger(2014, cores)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.DropQuarter()
	plan.Ledger = led
	run, err := b.Run(b.DefaultInput(), threads, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := b.Run(b.DefaultInput(), threads, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	total, err := rms.Attribute(b, run, ref, threads, led)
	if err != nil {
		t.Fatal(err)
	}
	if total <= 0 {
		t.Fatalf("Drop 1/4 caused no distortion (%v)", total)
	}
	rep := led.Report()
	if rep.Injections == 0 {
		t.Fatal("ledger recorded no injections")
	}
	if math.Abs(rep.TotalDistortion-total) > 1e-9 {
		t.Fatalf("ledger total %v != attributed total %v", rep.TotalDistortion, total)
	}
	var sum float64
	for _, c := range rep.Cores {
		sum += c.Distortion
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("per-core sum %v != total %v", sum, total)
	}
	if rep.TopShare(len(rep.Cores)) < 1-1e-9 {
		t.Fatalf("TopShare over all cores = %v, want 1", rep.TopShare(len(rep.Cores)))
	}
	if rep.Cores[0].Faults == 0 {
		t.Error("worst core has no recorded faults")
	}
}
