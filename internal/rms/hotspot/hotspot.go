// Package hotspot reimplements Rodinia's hotspot kernel: an iterative
// explicit solver for the heat-transfer differential equations over a
// chip floorplan, producing the temperature at every cell of a grid
// superimposed on the floorplan.
//
// The Accordion input is the iteration count; both problem size and
// quality depend on it (Table 3 classifies the quality dependence as
// linear and the paper observes hotspot's quality is highly sensitive
// to problem size). Fault injection follows footnote 1: infected
// threads are prevented from solving the temperature equation and
// updating their cells, which therefore hold stale values that
// neighbouring rows keep reading.
package hotspot

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Benchmark is the hotspot kernel. Construct with New.
type Benchmark struct {
	w, h    int
	power   *mathx.Grid2D
	tAmb    float64 // ambient temperature (output is rise above this)
	alpha   float64 // conduction coefficient per iteration
	beta    float64 // power-injection coefficient
	cooling float64 // convective loss coefficient
}

// New builds the hotspot benchmark over its standard synthetic
// floorplan power map.
func New() *Benchmark {
	return &Benchmark{
		w:       64,
		h:       64,
		power:   workload.PowerMap(64, 64, 0x407),
		tAmb:    318, // 45 C in Kelvin; outputs are rises above this
		alpha:   0.2,
		beta:    1.5,
		cooling: 0.05,
	}
}

// Name implements rms.Benchmark.
func (b *Benchmark) Name() string { return "hotspot" }

// Domain implements rms.Benchmark.
func (b *Benchmark) Domain() string { return "physics simulation" }

// AccordionInput implements rms.Benchmark.
func (b *Benchmark) AccordionInput() string { return "number of iterations" }

// QualityMetricName implements rms.Benchmark.
func (b *Benchmark) QualityMetricName() string { return "SSD based" }

// DefaultInput implements rms.Benchmark.
func (b *Benchmark) DefaultInput() float64 { return 48 }

// HyperInput implements rms.Benchmark: effectively converged.
func (b *Benchmark) HyperInput() float64 { return 2048 }

// Sweep implements rms.Benchmark.
func (b *Benchmark) Sweep() []float64 {
	return rms.SweepGeometric(16, 112, 9)
}

// ProblemSize implements rms.Benchmark: linear in iterations.
func (b *Benchmark) ProblemSize(input float64) float64 {
	return input / b.DefaultInput()
}

// DependencePS implements rms.Benchmark (Table 3).
func (b *Benchmark) DependencePS() rms.Dependence { return rms.Linear }

// DependenceQ implements rms.Benchmark (Table 3).
func (b *Benchmark) DependenceQ() rms.Dependence { return rms.Linear }

// DefaultThreads implements rms.Benchmark.
func (b *Benchmark) DefaultThreads() int { return 64 }

// Profile implements rms.Benchmark: a stencil kernel with streaming
// memory behaviour.
func (b *Benchmark) Profile() sim.WorkProfile {
	return sim.WorkProfile{
		OpsPerUnit:   6.0e9,
		SerialFrac:   0.003,
		CPIBase:      1.0,
		MissPerOp:    0.0011,
		MemLatencyNs: 80,
	}
}

// Run implements rms.Benchmark. Threads own contiguous row bands; the
// output is the temperature rise above ambient at every grid cell.
func (b *Benchmark) Run(input float64, threads int, plan fault.Plan, seed int64) (rms.Result, error) {
	if err := rms.ValidateInput(b.Name(), input); err != nil {
		return rms.Result{}, err
	}
	if err := rms.ValidateThreads(b.Name(), threads); err != nil {
		return rms.Result{}, err
	}
	if plan.Mode == fault.Invert {
		return rms.Result{}, fmt.Errorf("hotspot: the Invert error mode has no decision variable to invert")
	}
	iters := int(math.Round(input))
	if iters < 1 {
		iters = 1
	}
	w, h := b.w, b.h
	cur := mathx.NewGrid2D(w, h) // rise above ambient, starts at 0
	next := cur.Clone()

	rowOwner := func(y int) int { return y * threads / h }
	for it := 0; it < iters; it++ {
		for y := 0; y < h; y++ {
			t := rowOwner(y)
			// Hotspot's parallel task unit is (iteration, row band): each
			// iteration spawns a fresh task set, so uniformly dropped
			// tasks rotate across the bands rather than starving a fixed
			// set of rows. An infected task skips the equation solve and
			// leaves its cells stale for this iteration (footnote 1).
			if plan.Mode == fault.Drop && plan.Infected((t+it)%threads) {
				if y == 0 || rowOwner(y-1) != t {
					plan.Note((t+it)%threads, it)
				}
				// The equation is not solved for these cells; copy the
				// stale values forward.
				for x := 0; x < w; x++ {
					next.Set(x, y, cur.At(x, y))
				}
				continue
			}
			for x := 0; x < w; x++ {
				c := cur.At(x, y)
				up, down, left, right := c, c, c, c // adiabatic borders
				if y > 0 {
					up = cur.At(x, y-1)
				}
				if y < h-1 {
					down = cur.At(x, y+1)
				}
				if x > 0 {
					left = cur.At(x-1, y)
				}
				if x < w-1 {
					right = cur.At(x+1, y)
				}
				lap := up + down + left + right - 4*c
				v := c + b.alpha*lap + b.beta*b.power.At(x, y) - b.cooling*c
				next.Set(x, y, v)
			}
		}
		cur, next = next, cur
	}
	out := make([]float64, w*h)
	copy(out, cur.V)
	// Bit-corruption modes strike each infected thread's end result:
	// the temperatures of the rows it owns.
	if plan.Active() && plan.Mode != fault.Drop {
		for y := 0; y < h; y++ {
			t := rowOwner(y)
			if plan.Infected(t) {
				if y == 0 || rowOwner(y-1) != t {
					plan.Note(t, -1)
				}
				for x := 0; x < w; x++ {
					out[y*w+x] = clampTemp(plan.CorruptValue(out[y*w+x], t))
				}
			}
		}
	}
	ops := float64(iters) * float64(w*h)
	if plan.Mode == fault.Drop {
		dropped := plan.CountInfected(threads)
		ops *= 1 - float64(dropped)/float64(threads)
	}
	return rms.Result{Output: out, Ops: ops}, nil
}

// clampTemp bounds a corrupted temperature rise to a physical range, as
// the application's sanity check would.
func clampTemp(v float64) float64 { return mathx.Clamp(v, -1e3, 1e3) }

// OwnerOfValue implements rms.ValueOwner: output value i is a grid
// cell, owned by the row band of its y coordinate.
func (b *Benchmark) OwnerOfValue(i, nValues, threads int) int {
	if nValues != b.w*b.h || threads <= 0 {
		return 0
	}
	y := i / b.w
	return y * threads / b.h
}

// Quality implements rms.Benchmark: 1 minus the SSD-based relative
// distortion (normalized RMS error of the temperature field against the
// hyper-accurate solution).
func (b *Benchmark) Quality(run, ref rms.Result) (float64, error) {
	if len(run.Output) != len(ref.Output) || len(ref.Output) == 0 {
		return 0, fmt.Errorf("hotspot: malformed outputs")
	}
	d, err := quality.NRMSE(run.Output, ref.Output)
	if err != nil {
		return 0, err
	}
	return 1 - d, nil
}

// Trace implements rms.Benchmark: the stencil streams grid rows with
// near-perfect spatial locality.
func (b *Benchmark) Trace() sim.TraceSpec {
	return sim.TraceSpec{
		Kind: sim.Streaming, WorkingSetBytes: 128 * 1024, StrideBytes: 8,
		MemFrac: 0.30, HotFrac: 0.970, HotBytes: 16 * 1024, Seed: 0x407,
	}
}

var _ rms.Benchmark = (*Benchmark)(nil)
