package rms

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/quality"
	"repro/internal/telemetry/events"
)

// ValueOwner is implemented by benchmarks whose output values have a
// known producing task: OwnerOfValue maps output value i (of nValues,
// under a threads-task decomposition) to the task index whose work
// determined it. Kernels with grid outputs (hotspot, srad, x264)
// implement it exactly; reduction-style kernels fall back to the block
// partition below.
type ValueOwner interface {
	OwnerOfValue(i, nValues, threads int) int
}

// OwnerOfValue returns the task index that produced output value i of
// nValues under b's decomposition into threads tasks. Benchmarks that
// implement ValueOwner answer exactly; otherwise values are charged by
// the contiguous block partition i*threads/nValues, the same owner rule
// the band-decomposed kernels use internally.
func OwnerOfValue(b Benchmark, i, nValues, threads int) int {
	if vo, ok := b.(ValueOwner); ok {
		return vo.OwnerOfValue(i, nValues, threads)
	}
	if nValues <= 0 || threads <= 0 {
		return 0
	}
	t := i * threads / nValues
	if t < 0 {
		t = 0
	}
	if t >= threads {
		t = threads - 1
	}
	return t
}

// Attribute decomposes a run's output distortion value by value,
// charges each value's contribution to the core that executed its
// producing task via the ledger, and returns the total distortion. The
// per-core contributions in led's Report sum to the returned total up
// to float rounding (the acceptance bound is 1e-9), because both sides
// are the same quality.Contributions decomposition.
//
// ref must be a fault-free run at the SAME input and thread count as
// run (not the hyper-accurate reference, whose output length can
// differ), so the distortion measured is exactly the fault-caused
// loss. led may be nil to only emit the quality.scored event.
func Attribute(b Benchmark, run, ref Result, threads int, led *fault.Ledger) (float64, error) {
	if threads <= 0 {
		return 0, fmt.Errorf("rms: attribute needs a positive thread count, got %d", threads)
	}
	contrib, err := quality.Contributions(run.Output, ref.Output)
	if err != nil {
		return 0, fmt.Errorf("rms: attributing %s: %w", b.Name(), err)
	}
	n := len(contrib)
	total := 0.0
	for i, c := range contrib {
		total += c
		if c != 0 {
			led.AddDistortion(OwnerOfValue(b, i, n, threads), c)
		}
	}
	events.New("quality.scored").
		Str("bench", b.Name()).
		Int("values", int64(n)).
		Int("threads", int64(threads)).
		Float("distortion", total).
		Emit()
	return total, nil
}
