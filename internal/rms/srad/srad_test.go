package srad

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/quality"
	"repro/internal/rms"
	"repro/internal/rms/rmstest"
)

func TestConformance(t *testing.T) {
	rmstest.Conformance(t, New())
}

func TestDiffusionRemovesSpeckle(t *testing.T) {
	b := New()
	res, err := b.Run(128, 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	before, err := quality.PSNR(b.noisy.V, b.clean.V)
	if err != nil {
		t.Fatal(err)
	}
	after, err := quality.PSNR(res.Output, b.clean.V)
	if err != nil {
		t.Fatal(err)
	}
	if after <= before {
		t.Errorf("SRAD did not denoise: PSNR %.1f -> %.1f dB", before, after)
	}
}

func TestPixelsStayInRange(t *testing.T) {
	b := New()
	res, err := b.Run(64, 8, fault.DropQuarter(), 1)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res.Output {
		if v < 0 || v > 255 {
			t.Fatalf("pixel %d out of range: %g", i, v)
		}
	}
}

func TestInvertRejected(t *testing.T) {
	b := New()
	if _, err := b.Run(32, 8, fault.Plan{Mode: fault.Invert, Num: 1, Den: 4}, 1); err == nil {
		t.Error("Invert mode accepted by a benchmark with no decision variables")
	}
}

func TestDropReducesOps(t *testing.T) {
	b := New()
	full, err := b.Run(32, 32, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := b.Run(32, 32, fault.DropHalf(), 1)
	if err != nil {
		t.Fatal(err)
	}
	ratio := half.Ops / full.Ops
	if ratio < 0.4 || ratio > 0.6 {
		t.Errorf("Drop 1/2 ops ratio = %.3f", ratio)
	}
}

func TestDefaultThreadsIs32(t *testing.T) {
	// The paper profiles srad under 32 threads, unlike the others' 64.
	if New().DefaultThreads() != 32 {
		t.Error("srad must default to 32 threads")
	}
}

func TestTable3Classification(t *testing.T) {
	b := New()
	if b.DependencePS() != rms.Linear || b.DependenceQ() != rms.Linear {
		t.Error("srad should be linear/linear per Table 3")
	}
}

func TestOwnerOfValue(t *testing.T) {
	b := New()
	n := b.w * b.h
	threads := 4
	for _, i := range []int{0, b.w, n - 1} {
		y := i / b.w
		if got, want := b.OwnerOfValue(i, n, threads), y*threads/b.h; got != want {
			t.Errorf("OwnerOfValue(%d) = %d, want %d", i, got, want)
		}
	}
	if got := b.OwnerOfValue(0, 5, threads); got != 0 {
		t.Errorf("mismatched value count owner = %d, want 0", got)
	}
}
