// Package srad reimplements Rodinia's srad kernel: Speckle-Reducing
// Anisotropic Diffusion, an iterative PDE solver that removes
// correlated multiplicative noise from ultrasound/radar imagery while
// preserving edges.
//
// The Accordion input is the iteration count (linear problem-size and
// quality dependence per Table 3). Fault injection follows footnote 1:
// an infected per-iteration task skips the calculation of directional
// derivatives, ICOV, diffusion coefficients, divergence and the image
// update for its rows in that iteration; as in hotspot, the per-
// iteration task decomposition makes uniformly dropped tasks rotate
// across row bands.
package srad

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Benchmark is the srad kernel. Construct with New.
type Benchmark struct {
	w, h  int
	noisy *mathx.Grid2D
	clean *mathx.Grid2D
	dt    float64
}

// New builds the srad benchmark over its standard speckled image.
func New() *Benchmark {
	clean, noisy := workload.SpeckleImage(64, 64, 0.25, 0x57AD)
	return &Benchmark{w: 64, h: 64, noisy: noisy, clean: clean, dt: 0.2}
}

// Name implements rms.Benchmark.
func (b *Benchmark) Name() string { return "srad" }

// Domain implements rms.Benchmark.
func (b *Benchmark) Domain() string { return "image processing" }

// AccordionInput implements rms.Benchmark.
func (b *Benchmark) AccordionInput() string { return "number of iterations" }

// QualityMetricName implements rms.Benchmark.
func (b *Benchmark) QualityMetricName() string { return "PSNR based" }

// DefaultInput implements rms.Benchmark.
func (b *Benchmark) DefaultInput() float64 { return 32 }

// HyperInput implements rms.Benchmark.
func (b *Benchmark) HyperInput() float64 { return 1024 }

// Sweep implements rms.Benchmark.
func (b *Benchmark) Sweep() []float64 {
	return rms.SweepGeometric(10, 80, 9)
}

// ProblemSize implements rms.Benchmark: linear in iterations.
func (b *Benchmark) ProblemSize(input float64) float64 {
	return input / b.DefaultInput()
}

// DependencePS implements rms.Benchmark (Table 3).
func (b *Benchmark) DependencePS() rms.Dependence { return rms.Linear }

// DependenceQ implements rms.Benchmark (Table 3).
func (b *Benchmark) DependenceQ() rms.Dependence { return rms.Linear }

// DefaultThreads implements rms.Benchmark: the paper profiles srad
// under 32 threads.
func (b *Benchmark) DefaultThreads() int { return 32 }

// Profile implements rms.Benchmark.
func (b *Benchmark) Profile() sim.WorkProfile {
	return sim.WorkProfile{
		OpsPerUnit:   5.0e9,
		SerialFrac:   0.003,
		CPIBase:      1.0,
		MissPerOp:    0.0009,
		MemLatencyNs: 80,
	}
}

// Run implements rms.Benchmark. The output is the denoised image.
func (b *Benchmark) Run(input float64, threads int, plan fault.Plan, seed int64) (rms.Result, error) {
	if err := rms.ValidateInput(b.Name(), input); err != nil {
		return rms.Result{}, err
	}
	if err := rms.ValidateThreads(b.Name(), threads); err != nil {
		return rms.Result{}, err
	}
	if plan.Mode == fault.Invert {
		return rms.Result{}, fmt.Errorf("srad: the Invert error mode has no decision variable to invert")
	}
	iters := int(math.Round(input))
	if iters < 1 {
		iters = 1
	}
	w, h := b.w, b.h
	img := b.noisy.Clone()
	coef := mathx.NewGrid2D(w, h)
	// Double buffer for the update pass, allocated once: per-iteration
	// Clone was a measurable slice of the simulator's total allocation.
	next := mathx.NewGrid2D(w, h)
	rowOwner := func(y int) int { return y * threads / h }
	ops := 0.0

	for it := 0; it < iters; it++ {
		// Speckle scale q0 from global statistics (the homogeneous-
		// region estimate of the original algorithm).
		mean, variance := imageStats(img)
		q0sq := variance / (mean * mean)
		if q0sq <= 0 {
			q0sq = 1e-6
		}

		// Pass 1: ICOV and diffusion coefficient per cell.
		for y := 0; y < h; y++ {
			if plan.Mode == fault.Drop && plan.Infected((rowOwner(y)+it)%threads) {
				if y == 0 || rowOwner(y-1) != rowOwner(y) {
					plan.Note((rowOwner(y)+it)%threads, it)
				}
				continue // derivatives/ICOV/coefficients skipped
			}
			for x := 0; x < w; x++ {
				c := img.At(x, y)
				if c == 0 {
					c = 1e-6
				}
				dN := img.At(x, clampIdx(y-1, h)) - c
				dS := img.At(x, clampIdx(y+1, h)) - c
				dW := img.At(clampIdx(x-1, w), y) - c
				dE := img.At(clampIdx(x+1, w), y) - c
				g2 := (dN*dN + dS*dS + dW*dW + dE*dE) / (c * c)
				l := (dN + dS + dW + dE) / c
				num := 0.5*g2 - (1.0/16.0)*l*l
				den := (1 + 0.25*l) * (1 + 0.25*l)
				qsq := num / den
				d := (qsq - q0sq) / (q0sq * (1 + q0sq))
				coef.Set(x, y, mathx.Clamp(1/(1+d), 0, 1))
				ops++
			}
		}
		// Pass 2: divergence and image update. Skipped (dropped) rows
		// must keep the current image's values, so the whole frame is
		// copied before the updated rows overwrite their slots — the
		// same stale-row semantics the per-iteration Clone had.
		copy(next.V, img.V)
		for y := 0; y < h; y++ {
			if plan.Mode == fault.Drop && plan.Infected((rowOwner(y)+it)%threads) {
				continue // divergence and update skipped; cells stale
			}
			for x := 0; x < w; x++ {
				c := img.At(x, y)
				cC := coef.At(x, y)
				cS := coef.At(x, clampIdx(y+1, h))
				cE := coef.At(clampIdx(x+1, w), y)
				div := cS*(img.At(x, clampIdx(y+1, h))-c) +
					cC*(img.At(x, clampIdx(y-1, h))-c) +
					cE*(img.At(clampIdx(x+1, w), y)-c) +
					cC*(img.At(clampIdx(x-1, w), y)-c)
				next.Set(x, y, mathx.Clamp(c+0.25*b.dt*div, 0, 255))
			}
		}
		img, next = next, img
	}
	out := make([]float64, w*h)
	copy(out, img.V)
	// Value-corruption modes strike each infected thread's final rows.
	if plan.Active() && plan.Mode != fault.Drop {
		for y := 0; y < h; y++ {
			t := rowOwner(y)
			if plan.Infected(t) {
				if y == 0 || rowOwner(y-1) != t {
					plan.Note(t, -1)
				}
				for x := 0; x < w; x++ {
					out[y*w+x] = mathx.Clamp(plan.CorruptValue(out[y*w+x], t), 0, 255)
				}
			}
		}
	}
	return rms.Result{Output: out, Ops: ops}, nil
}

// OwnerOfValue implements rms.ValueOwner: output value i is an image
// pixel, owned by the row band of its y coordinate.
func (b *Benchmark) OwnerOfValue(i, nValues, threads int) int {
	if nValues != b.w*b.h || threads <= 0 {
		return 0
	}
	y := i / b.w
	return y * threads / b.h
}

func clampIdx(i, n int) int {
	if i < 0 {
		return 0
	}
	if i >= n {
		return n - 1
	}
	return i
}

func imageStats(g *mathx.Grid2D) (mean, variance float64) {
	mean = mathx.Mean(g.V)
	sd := mathx.StdDev(g.V)
	return mean, sd * sd
}

// psnrCap is the PSNR (dB) treated as a perfect reconstruction when
// normalizing the PSNR-based quality to [0, 1].
const psnrCap = 60.0

// Quality implements rms.Benchmark: PSNR of the run against the
// hyper-accurate output, normalized so the reference scores 1.
func (b *Benchmark) Quality(run, ref rms.Result) (float64, error) {
	if len(run.Output) != len(ref.Output) || len(ref.Output) == 0 {
		return 0, fmt.Errorf("srad: malformed outputs")
	}
	p, err := quality.PSNR(run.Output, ref.Output)
	if err != nil {
		return 0, err
	}
	if math.IsInf(p, 1) || p > psnrCap {
		p = psnrCap
	}
	if p < 0 {
		p = 0
	}
	return p / psnrCap, nil
}

// Trace implements rms.Benchmark: like hotspot, a streaming stencil.
func (b *Benchmark) Trace() sim.TraceSpec {
	return sim.TraceSpec{
		Kind: sim.Streaming, WorkingSetBytes: 128 * 1024, StrideBytes: 8,
		MemFrac: 0.30, HotFrac: 0.976, HotBytes: 16 * 1024, Seed: 0x57A,
	}
}

var _ rms.Benchmark = (*Benchmark)(nil)
