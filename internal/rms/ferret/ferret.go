// Package ferret reimplements PARSEC's ferret kernel: content-based
// similarity search over an image database. Query images are
// partitioned into regions; per-region feature vectors are matched
// against the database and the top-n most similar images are returned
// per query.
//
// The Accordion input is the size factor governing the segmentation
// granularity: it scales how many regions a query image is partitioned
// into, which dictates both the work per query and the search accuracy
// (Table 3 classifies both dependencies as complex — region count grows
// superlinearly with the factor). Quality per query is the fraction of
// returned images shared with the hyper-accurate (full-resolution)
// outcome, exactly the paper's 1 - [common image count]/n relative
// error.
//
// Data-parallel tasks scan database shards; a dropped shard's
// candidates are simply absent from the ranking the control core
// merges, so errors degrade recall without corrupting control.
package ferret

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/workload"
)

// TopN is the number of similar images returned per query.
const TopN = 10

// Benchmark is the ferret kernel. Construct with New.
type Benchmark struct {
	db *workload.FeatureDB
}

// New builds the ferret benchmark over its standard synthetic database.
func New() (*Benchmark, error) {
	db, err := workload.NewFeatureDB(16, 16, 32, 16, 8, 0xFE88E7)
	if err != nil {
		return nil, err
	}
	return &Benchmark{db: db}, nil
}

// Name implements rms.Benchmark.
func (b *Benchmark) Name() string { return "ferret" }

// Domain implements rms.Benchmark.
func (b *Benchmark) Domain() string { return "similarity search" }

// AccordionInput implements rms.Benchmark.
func (b *Benchmark) AccordionInput() string { return "size factor" }

// QualityMetricName implements rms.Benchmark.
func (b *Benchmark) QualityMetricName() string { return "based on number of common images" }

// DefaultInput implements rms.Benchmark.
func (b *Benchmark) DefaultInput() float64 { return 1.0 }

// HyperInput implements rms.Benchmark: full-resolution segmentation.
func (b *Benchmark) HyperInput() float64 { return 4.0 }

// Sweep implements rms.Benchmark. Points are chosen so each maps to a
// distinct region count (the problem size is discrete in the
// segmentation granularity).
func (b *Benchmark) Sweep() []float64 {
	out := make([]float64, 0, 9)
	for _, r := range []float64{2, 3, 4, 5, 6, 8, 10, 12, 14} {
		// Invert regions(input) = ceil(4 * input^1.3) at the exact
		// boundary, nudged down so ceil lands on r.
		out = append(out, math.Pow(r/4, 1/1.3)*0.999)
	}
	return out
}

// regions returns the query-segmentation region count at a size factor:
// superlinear in the factor (Table 3's "complex" dependence), capped at
// the full resolution.
func (b *Benchmark) regions(input float64) int {
	r := int(math.Ceil(4 * math.Pow(input, 1.3)))
	if r < 1 {
		r = 1
	}
	if r > b.db.RegionsFull {
		r = b.db.RegionsFull
	}
	return r
}

// ProblemSize implements rms.Benchmark: proportional to the number of
// feature comparisons, i.e. to the region count.
func (b *Benchmark) ProblemSize(input float64) float64 {
	return float64(b.regions(input)) / float64(b.regions(b.DefaultInput()))
}

// DependencePS implements rms.Benchmark (Table 3).
func (b *Benchmark) DependencePS() rms.Dependence { return rms.Complex }

// DependenceQ implements rms.Benchmark (Table 3).
func (b *Benchmark) DependenceQ() rms.Dependence { return rms.Complex }

// DefaultThreads implements rms.Benchmark.
func (b *Benchmark) DefaultThreads() int { return 64 }

// Profile implements rms.Benchmark: an irregular, database-walking
// pipeline with poor locality.
func (b *Benchmark) Profile() sim.WorkProfile {
	return sim.WorkProfile{
		OpsPerUnit:   1.5e10,
		SerialFrac:   0.005,
		CPIBase:      1.0,
		MissPerOp:    0.0016,
		MemLatencyNs: 80,
	}
}

// similarity returns the (negated) dissimilarity of a query's region
// set to a database image's full region set: the mean over query
// regions of the minimum squared distance to any database region.
func similarity(query, dbimg [][]float64) (score float64, comparisons int) {
	total := 0.0
	for _, qr := range query {
		best := math.Inf(1)
		for _, dr := range dbimg {
			d := 0.0
			for k := range qr {
				diff := qr[k] - dr[k]
				d += diff * diff
			}
			if d < best {
				best = d
			}
			comparisons++
		}
		total += best
	}
	return -total / float64(len(query)), comparisons
}

// Run implements rms.Benchmark. The output encodes, per query, the
// ranked TopN database image IDs.
func (b *Benchmark) Run(input float64, threads int, plan fault.Plan, seed int64) (rms.Result, error) {
	if err := rms.ValidateInput(b.Name(), input); err != nil {
		return rms.Result{}, err
	}
	if err := rms.ValidateThreads(b.Name(), threads); err != nil {
		return rms.Result{}, err
	}
	if plan.Mode == fault.Invert {
		return rms.Result{}, fmt.Errorf("ferret: the Invert error mode has no decision variable to invert")
	}
	nRegions := b.regions(input)
	nImages := len(b.db.Images)
	ops := 0.0

	type cand struct {
		id    int
		score float64
	}
	out := make([]float64, 0, len(b.db.Queries)*TopN)
	for qi, query := range b.db.Queries {
		q := workload.Coarsen(query, nRegions)
		var cands []cand
		// Data-parallel phase: each task scans one database shard.
		for t := 0; t < threads; t++ {
			if plan.Mode == fault.Drop && plan.Infected(t) {
				plan.Note(t, qi)
				continue // shard results never reach the control core
			}
			corrupt := plan.Active() && plan.Mode != fault.Drop && plan.Infected(t)
			if corrupt {
				plan.Note(t, qi)
			}
			lo, hi := t*nImages/threads, (t+1)*nImages/threads
			for i := lo; i < hi; i++ {
				score, cmp := similarity(q, b.db.Images[i])
				ops += float64(cmp)
				if corrupt {
					score = plan.CorruptValue(score, t)
				}
				cands = append(cands, cand{id: i, score: score})
			}
		}
		// Control phase: merge and rank (the CC's reduce step).
		sort.Slice(cands, func(a, c int) bool {
			if cands[a].score != cands[c].score {
				return cands[a].score > cands[c].score
			}
			return cands[a].id < cands[c].id
		})
		for k := 0; k < TopN; k++ {
			if k < len(cands) {
				out = append(out, float64(cands[k].id))
			} else {
				out = append(out, -1)
			}
		}
	}
	return rms.Result{Output: out, Ops: ops}, nil
}

// Quality implements rms.Benchmark: the mean, over queries, of the
// fraction of returned images in common with the reference outcome.
func (b *Benchmark) Quality(run, ref rms.Result) (float64, error) {
	if len(run.Output) != len(ref.Output) || len(ref.Output) == 0 || len(ref.Output)%TopN != 0 {
		return 0, fmt.Errorf("ferret: malformed outputs")
	}
	queries := len(ref.Output) / TopN
	total := 0.0
	for q := 0; q < queries; q++ {
		refSet := map[int]bool{}
		for k := 0; k < TopN; k++ {
			refSet[int(ref.Output[q*TopN+k])] = true
		}
		common := 0
		for k := 0; k < TopN; k++ {
			if id := int(run.Output[q*TopN+k]); id >= 0 && refSet[id] {
				common++
			}
		}
		total += float64(common) / TopN
	}
	return total / float64(queries), nil
}

// Trace implements rms.Benchmark: database probing scatters reads
// across the feature store.
func (b *Benchmark) Trace() sim.TraceSpec {
	return sim.TraceSpec{
		Kind: sim.RandomUniform, WorkingSetBytes: 8 << 20,
		MemFrac: 0.32, HotFrac: 0.995, HotBytes: 16 * 1024, Seed: 0xFE8,
	}
}

var _ rms.Benchmark = (*Benchmark)(nil)
