package ferret

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/rms/rmstest"
)

func newBench(t *testing.T) *Benchmark {
	t.Helper()
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConformance(t *testing.T) {
	rmstest.Conformance(t, newBench(t))
}

func TestSearchFindsSameClass(t *testing.T) {
	// At full resolution most returned images should share the query's
	// latent class — the search is semantically meaningful.
	b := newBench(t)
	res, err := b.Run(b.HyperInput(), 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	hits, total := 0, 0
	for q := range b.db.Queries {
		for k := 0; k < TopN; k++ {
			id := int(res.Output[q*TopN+k])
			if id < 0 {
				continue
			}
			total++
			if b.db.Class[id] == b.db.QueryClass[q] {
				hits++
			}
		}
	}
	if frac := float64(hits) / float64(total); frac < 0.6 {
		t.Errorf("only %.0f%% of results share the query class", frac*100)
	}
}

func TestRegionsMonotone(t *testing.T) {
	b := newBench(t)
	prev := 0
	for _, in := range b.Sweep() {
		r := b.regions(in)
		if r <= prev {
			t.Fatalf("region count not increasing at input %g", in)
		}
		prev = r
	}
	if b.regions(b.DefaultInput()) != 4 {
		t.Errorf("default regions = %d, want 4", b.regions(b.DefaultInput()))
	}
	if b.regions(b.HyperInput()) != b.db.RegionsFull {
		t.Error("hyper input should reach full resolution")
	}
}

func TestDropShardsLowerRecall(t *testing.T) {
	b := newBench(t)
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := b.Run(b.DefaultInput(), 64, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	dropped, err := b.Run(b.DefaultInput(), 64, fault.DropQuarter(), 1)
	if err != nil {
		t.Fatal(err)
	}
	qFull, _ := b.Quality(full, ref)
	qDrop, _ := b.Quality(dropped, ref)
	if qDrop >= qFull {
		t.Errorf("dropping shards did not lower recall: %.3f vs %.3f", qDrop, qFull)
	}
	// Losing a quarter of the database loses at most ~a quarter of the
	// common images plus ranking noise, not everything.
	if qDrop < 0.4*qFull {
		t.Errorf("Drop 1/4 collapsed recall: %.3f vs %.3f", qDrop, qFull)
	}
}

func TestRankedListsDeterministic(t *testing.T) {
	b := newBench(t)
	r1, _ := b.Run(1.0, 16, fault.Plan{}, 9)
	r2, _ := b.Run(1.0, 16, fault.Plan{}, 10) // seed must not matter: search is deterministic
	for i := range r1.Output {
		if r1.Output[i] != r2.Output[i] {
			t.Fatal("search results depend on the seed")
		}
	}
}

func TestInvertRejected(t *testing.T) {
	b := newBench(t)
	if _, err := b.Run(1, 8, fault.Plan{Mode: fault.Invert, Num: 1, Den: 4}, 1); err == nil {
		t.Error("Invert mode accepted")
	}
}

func TestTable3Classification(t *testing.T) {
	b := newBench(t)
	if b.DependencePS() != rms.Complex || b.DependenceQ() != rms.Complex {
		t.Error("ferret should be complex/complex per Table 3")
	}
}
