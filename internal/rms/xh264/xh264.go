// Package xh264 reimplements the heart of PARSEC's x264 kernel: motion-
// compensated block-transform video encoding under a rate-quality
// quantizer. The first frame is intra-coded; subsequent frames predict
// each 8x8 macroblock from the best-matching block of the previous
// *decoded* frame (a +-4 pixel SAD motion search, as a real encoder's
// reconstruction loop requires), transform the residual with an exact
// 2-D DCT-II, quantize with the H.264-style step size (doubling every
// 6 QP), and reconstruct; the deliverable is the decoded sequence.
//
// The paper's Accordion input is the quantizer QP, where a smaller QP
// means less compression and higher accuracy. To keep the convention
// that increasing the knob grows the problem, the knob here is the
// quantizer precision 52 - QP; raising it increases both the number of
// significant coefficients to code (problem size, a complex dependence)
// and the SSIM fidelity (quality, roughly linear) — matching Table 3's
// classification.
//
// Fault injection follows footnote 1: infected threads are prohibited
// from encoding their macroblocks (x264_slice_write), which the decoder
// conceals as flat mid-gray blocks.
package xh264

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/quality"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/workload"
)

const (
	blockSize   = 8
	frameW      = 64
	frameH      = 64
	numFrames   = 8
	maxQP       = 52
	searchRange = 4 // +- pixels of motion search around the block
)

// Benchmark is the x264 kernel. Construct with New.
type Benchmark struct {
	frames []*mathx.Grid2D
	dct    [blockSize][blockSize]float64 // DCT-II basis matrix

	mu      sync.Mutex
	opsMemo map[int]float64 // fault-free ops by precision, for ProblemSize
}

// New builds the x264 benchmark over its standard synthetic sequence.
func New() *Benchmark {
	b := &Benchmark{
		frames:  workload.VideoFrames(frameW, frameH, numFrames, 0x264),
		opsMemo: map[int]float64{},
	}
	for k := 0; k < blockSize; k++ {
		for n := 0; n < blockSize; n++ {
			c := math.Sqrt(2.0 / blockSize)
			if k == 0 {
				c = math.Sqrt(1.0 / blockSize)
			}
			b.dct[k][n] = c * math.Cos(math.Pi*(float64(n)+0.5)*float64(k)/blockSize)
		}
	}
	return b
}

// Name implements rms.Benchmark.
func (b *Benchmark) Name() string { return "x264" }

// Domain implements rms.Benchmark.
func (b *Benchmark) Domain() string { return "multimedia" }

// AccordionInput implements rms.Benchmark.
func (b *Benchmark) AccordionInput() string { return "quantizer (precision 52-QP)" }

// QualityMetricName implements rms.Benchmark.
func (b *Benchmark) QualityMetricName() string { return "SSIM based" }

// DefaultInput implements rms.Benchmark: precision 26, i.e. QP 26.
func (b *Benchmark) DefaultInput() float64 { return 26 }

// HyperInput implements rms.Benchmark: QP 4, near-lossless.
func (b *Benchmark) HyperInput() float64 { return 48 }

// Sweep implements rms.Benchmark.
func (b *Benchmark) Sweep() []float64 {
	return []float64{14, 17, 20, 23, 26, 29, 32, 36, 40}
}

// qstep returns the quantization step for a precision knob value.
func qstep(precision float64) float64 {
	qp := maxQP - precision
	return math.Pow(2, (qp-4)/6)
}

// ProblemSize implements rms.Benchmark: the encoding work relative to
// the default precision, measured as the actual coefficient-coding work
// of a fault-free encode (memoized; deterministic).
func (b *Benchmark) ProblemSize(input float64) float64 {
	return b.opsAt(input) / b.opsAt(b.DefaultInput())
}

func (b *Benchmark) opsAt(input float64) float64 {
	key := int(math.Round(input * 16))
	b.mu.Lock()
	v, ok := b.opsMemo[key]
	b.mu.Unlock()
	if ok {
		return v
	}
	res, err := b.Run(input, 1, fault.Plan{}, 0)
	if err != nil {
		return math.NaN()
	}
	b.mu.Lock()
	b.opsMemo[key] = res.Ops
	b.mu.Unlock()
	return res.Ops
}

// DependencePS implements rms.Benchmark (Table 3).
func (b *Benchmark) DependencePS() rms.Dependence { return rms.Complex }

// DependenceQ implements rms.Benchmark (Table 3).
func (b *Benchmark) DependenceQ() rms.Dependence { return rms.Linear }

// DefaultThreads implements rms.Benchmark.
func (b *Benchmark) DefaultThreads() int { return 64 }

// Profile implements rms.Benchmark.
func (b *Benchmark) Profile() sim.WorkProfile {
	return sim.WorkProfile{
		OpsPerUnit:   1.2e10,
		SerialFrac:   0.005,
		CPIBase:      1.0,
		MissPerOp:    0.0010,
		MemLatencyNs: 80,
	}
}

// Run implements rms.Benchmark. The output is the decoded pixel stream,
// frame-major. Ops counts transform work plus per-significant-
// coefficient entropy-coding work.
func (b *Benchmark) Run(input float64, threads int, plan fault.Plan, seed int64) (rms.Result, error) {
	if err := rms.ValidateInput(b.Name(), input); err != nil {
		return rms.Result{}, err
	}
	if err := rms.ValidateThreads(b.Name(), threads); err != nil {
		return rms.Result{}, err
	}
	if input >= maxQP {
		return rms.Result{}, fmt.Errorf("x264: precision %g implies a non-positive QP", input)
	}
	if plan.Mode == fault.Invert {
		return rms.Result{}, fmt.Errorf("x264: the Invert error mode has no decision variable to invert")
	}
	step := qstep(input)
	blocksX, blocksY := frameW/blockSize, frameH/blockSize
	blocksPerFrame := blocksX * blocksY
	totalBlocks := numFrames * blocksPerFrame
	out := make([]float64, numFrames*frameW*frameH)
	ops := 0.0

	var blk, coef [blockSize][blockSize]float64
	for mb := 0; mb < totalBlocks; mb++ {
		t := mb * threads / totalBlocks
		frame := mb / blocksPerFrame
		bi := mb % blocksPerFrame
		bx, by := (bi%blocksX)*blockSize, (bi/blocksX)*blockSize
		base := frame * frameW * frameH

		// Slices are per-frame task sets, so uniformly dropped tasks
		// rotate across slice positions from frame to frame.
		if plan.Mode == fault.Drop && plan.Infected((t+frame)%threads) {
			plan.Note((t+frame)%threads, frame)
			// Macroblock encoding prohibited: the decoder conceals the
			// missing block from the co-located block of the previous
			// decoded frame (mid-gray on the first frame).
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					v := 128.0
					if frame > 0 {
						v = out[base-frameW*frameH+(by+y)*frameW+bx+x]
					}
					out[base+(by+y)*frameW+bx+x] = v
				}
			}
			continue
		}
		src := b.frames[frame]
		// Prediction: mid-gray for the intra frame, the best-SAD block
		// of the previous decoded frame (+-searchRange px) otherwise.
		var pred [blockSize][blockSize]float64
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				pred[y][x] = 128
			}
		}
		if frame > 0 {
			prevBase := base - frameW*frameH
			bestSAD := math.Inf(1)
			bestDX, bestDY := 0, 0
			for dy := -searchRange; dy <= searchRange; dy++ {
				for dx := -searchRange; dx <= searchRange; dx++ {
					px, py := bx+dx, by+dy
					if px < 0 || py < 0 || px+blockSize > frameW || py+blockSize > frameH {
						continue
					}
					sad := 0.0
					for y := 0; y < blockSize; y++ {
						for x := 0; x < blockSize; x++ {
							d := src.At(bx+x, by+y) - out[prevBase+(py+y)*frameW+px+x]
							if d < 0 {
								d = -d
							}
							sad += d
						}
					}
					ops += blockSize * blockSize // SAD work
					if sad < bestSAD {
						bestSAD, bestDX, bestDY = sad, dx, dy
					}
				}
			}
			for y := 0; y < blockSize; y++ {
				for x := 0; x < blockSize; x++ {
					pred[y][x] = out[prevBase+(by+bestDY+y)*frameW+bx+bestDX+x]
				}
			}
		}
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				blk[y][x] = src.At(bx+x, by+y) - pred[y][x]
			}
		}
		b.forwardDCT(&blk, &coef)
		ops += 2 * blockSize * blockSize * blockSize // transform work
		nonzero := 0
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				q := math.Round(coef[y][x] / step)
				if q != 0 {
					nonzero++
				}
				coef[y][x] = q * step
			}
		}
		ops += float64(nonzero) * 220 // entropy-coding + rate-distortion work per level
		b.inverseDCT(&coef, &blk)
		ops += 2 * blockSize * blockSize * blockSize
		corrupt := plan.Active() && plan.Mode != fault.Drop && plan.Infected(t)
		if corrupt {
			plan.Note(t, frame)
		}
		for y := 0; y < blockSize; y++ {
			for x := 0; x < blockSize; x++ {
				v := mathx.Clamp(blk[y][x]+pred[y][x], 0, 255)
				if corrupt {
					v = mathx.Clamp(plan.CorruptValue(v, t), 0, 255)
				}
				out[base+(by+y)*frameW+bx+x] = v
			}
		}
	}
	return rms.Result{Output: out, Ops: ops}, nil
}

// OwnerOfValue implements rms.ValueOwner: output value i is a decoded
// pixel, owned by the task that encoded its macroblock.
func (b *Benchmark) OwnerOfValue(i, nValues, threads int) int {
	if nValues != numFrames*frameW*frameH || threads <= 0 {
		return 0
	}
	blocksX := frameW / blockSize
	blocksPerFrame := blocksX * (frameH / blockSize)
	totalBlocks := numFrames * blocksPerFrame
	frame := i / (frameW * frameH)
	pix := i % (frameW * frameH)
	x, y := pix%frameW, pix/frameW
	bi := (y/blockSize)*blocksX + x/blockSize
	mb := frame*blocksPerFrame + bi
	return mb * threads / totalBlocks
}

// forwardDCT computes dst = D * src * D^T.
func (b *Benchmark) forwardDCT(src, dst *[blockSize][blockSize]float64) {
	var tmp [blockSize][blockSize]float64
	for k := 0; k < blockSize; k++ {
		for x := 0; x < blockSize; x++ {
			s := 0.0
			for n := 0; n < blockSize; n++ {
				s += b.dct[k][n] * src[n][x]
			}
			tmp[k][x] = s
		}
	}
	for k := 0; k < blockSize; k++ {
		for l := 0; l < blockSize; l++ {
			s := 0.0
			for n := 0; n < blockSize; n++ {
				s += tmp[k][n] * b.dct[l][n]
			}
			dst[k][l] = s
		}
	}
}

// inverseDCT computes dst = D^T * src * D.
func (b *Benchmark) inverseDCT(src, dst *[blockSize][blockSize]float64) {
	var tmp [blockSize][blockSize]float64
	for y := 0; y < blockSize; y++ {
		for l := 0; l < blockSize; l++ {
			s := 0.0
			for k := 0; k < blockSize; k++ {
				s += b.dct[k][y] * src[k][l]
			}
			tmp[y][l] = s
		}
	}
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			s := 0.0
			for l := 0; l < blockSize; l++ {
				s += tmp[y][l] * b.dct[l][x]
			}
			dst[y][x] = s
		}
	}
}

// Quality implements rms.Benchmark: mean SSIM of the decoded frames
// against the hyper-accurate (near-lossless) decode.
func (b *Benchmark) Quality(run, ref rms.Result) (float64, error) {
	frameLen := frameW * frameH
	if len(run.Output) != len(ref.Output) || len(ref.Output) != numFrames*frameLen {
		return 0, fmt.Errorf("x264: malformed outputs")
	}
	total := 0.0
	for f := 0; f < numFrames; f++ {
		s, err := quality.SSIM(run.Output[f*frameLen:(f+1)*frameLen],
			ref.Output[f*frameLen:(f+1)*frameLen], frameW, frameH)
		if err != nil {
			return 0, err
		}
		total += s
	}
	return total / numFrames, nil
}

// Trace implements rms.Benchmark: frame encoding streams macroblock
// pixels with high spatial locality.
func (b *Benchmark) Trace() sim.TraceSpec {
	return sim.TraceSpec{
		Kind: sim.Streaming, WorkingSetBytes: 2 << 20, StrideBytes: 8,
		MemFrac: 0.33, HotFrac: 0.976, HotBytes: 16 * 1024, Seed: 0x264,
	}
}

var _ rms.Benchmark = (*Benchmark)(nil)
