package xh264

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/quality"
	"repro/internal/rms"
	"repro/internal/rms/rmstest"
)

func TestConformance(t *testing.T) {
	rmstest.Conformance(t, New())
}

func TestDCTRoundTrip(t *testing.T) {
	b := New()
	var src, coef, back [blockSize][blockSize]float64
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			src[y][x] = math.Sin(float64(3*y+x)) * 50
		}
	}
	b.forwardDCT(&src, &coef)
	b.inverseDCT(&coef, &back)
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			if math.Abs(back[y][x]-src[y][x]) > 1e-9 {
				t.Fatalf("DCT round trip failed at (%d,%d): %g vs %g", x, y, back[y][x], src[y][x])
			}
		}
	}
	// Parseval: energy preserved by the orthonormal transform.
	var eSrc, eCoef float64
	for y := 0; y < blockSize; y++ {
		for x := 0; x < blockSize; x++ {
			eSrc += src[y][x] * src[y][x]
			eCoef += coef[y][x] * coef[y][x]
		}
	}
	if math.Abs(eSrc-eCoef) > 1e-6*eSrc {
		t.Errorf("transform not orthonormal: %g vs %g", eSrc, eCoef)
	}
}

func TestHigherPrecisionHigherFidelity(t *testing.T) {
	b := New()
	fidelity := func(precision float64) float64 {
		res, err := b.Run(precision, 8, fault.Plan{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		// Compare the decode against the pristine source frames.
		orig := make([]float64, 0, len(res.Output))
		for _, fr := range b.frames {
			orig = append(orig, fr.V...)
		}
		s := 0.0
		for f := 0; f < numFrames; f++ {
			v, err := quality.SSIM(res.Output[f*frameW*frameH:(f+1)*frameW*frameH],
				orig[f*frameW*frameH:(f+1)*frameW*frameH], frameW, frameH)
			if err != nil {
				t.Fatal(err)
			}
			s += v
		}
		return s / numFrames
	}
	low, high := fidelity(14), fidelity(40)
	if high <= low {
		t.Errorf("precision 40 (SSIM %.3f) no better than 14 (%.3f)", high, low)
	}
	if high < 0.95 {
		t.Errorf("near-lossless encode only reaches SSIM %.3f", high)
	}
}

func TestWorkGrowsWithPrecision(t *testing.T) {
	b := New()
	lo, err := b.Run(14, 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	hi, err := b.Run(40, 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if hi.Ops <= lo.Ops {
		t.Error("higher precision must code more coefficients")
	}
}

func TestDropConcealsBlocks(t *testing.T) {
	b := New()
	full, err := b.Run(26, 64, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := b.Run(26, 64, fault.DropQuarter(), 1)
	if err != nil {
		t.Fatal(err)
	}
	frameLen := frameW * frameH
	// First frame: dropped slices conceal to mid-gray.
	gray := 0
	for _, v := range res.Output[:frameLen] {
		if v == 128 {
			gray++
		}
	}
	if gray < frameLen/4*8/10 {
		t.Errorf("first frame: only %d of ~%d concealed pixels", gray, frameLen/4)
	}
	// Later frames: concealment copies the previous decoded frame, so
	// dropped pixels equal the co-located pixel one frame earlier.
	f := 3
	match, differ := 0, 0
	for i := 0; i < frameLen; i++ {
		cur := res.Output[f*frameLen+i]
		prev := res.Output[(f-1)*frameLen+i]
		if cur == prev && cur != full.Output[f*frameLen+i] {
			match++
		}
		if cur != full.Output[f*frameLen+i] {
			differ++
		}
	}
	if differ == 0 {
		t.Error("drop changed nothing in frame 3")
	}
	if match == 0 {
		t.Error("no evidence of previous-frame concealment in frame 3")
	}
}

func TestPrecisionBoundsRejected(t *testing.T) {
	b := New()
	if _, err := b.Run(52, 8, fault.Plan{}, 1); err == nil {
		t.Error("precision implying QP <= 0 accepted")
	}
	if _, err := b.Run(60, 8, fault.Plan{}, 1); err == nil {
		t.Error("precision beyond QP range accepted")
	}
}

func TestInvertRejected(t *testing.T) {
	b := New()
	if _, err := b.Run(26, 8, fault.Plan{Mode: fault.Invert, Num: 1, Den: 4}, 1); err == nil {
		t.Error("Invert mode accepted")
	}
}

func TestTable3Classification(t *testing.T) {
	b := New()
	// x264 is the one benchmark whose PS and Q dependencies differ.
	if b.DependencePS() != rms.Complex || b.DependenceQ() != rms.Linear {
		t.Error("x264 should be complex/linear per Table 3")
	}
}

func TestOwnerOfValue(t *testing.T) {
	b := New()
	n := numFrames * frameW * frameH
	threads := 16
	blocksX := frameW / blockSize
	blocksPerFrame := blocksX * (frameH / blockSize)
	totalBlocks := numFrames * blocksPerFrame
	check := func(i int) {
		frame := i / (frameW * frameH)
		pix := i % (frameW * frameH)
		x, y := pix%frameW, pix/frameW
		mb := frame*blocksPerFrame + (y/blockSize)*blocksX + x/blockSize
		if got, want := b.OwnerOfValue(i, n, threads), mb*threads/totalBlocks; got != want {
			t.Errorf("OwnerOfValue(%d) = %d, want %d", i, got, want)
		}
	}
	for _, i := range []int{0, blockSize, frameW * blockSize, frameW * frameH, n - 1} {
		check(i)
	}
	if got := b.OwnerOfValue(0, 7, threads); got != 0 {
		t.Errorf("mismatched value count owner = %d, want 0", got)
	}
}
