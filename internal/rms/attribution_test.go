package rms

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/quality"
	"repro/internal/sim"
)

// stubBench is a minimal Benchmark for exercising the attribution
// helpers without pulling in a kernel package (which would cycle).
type stubBench struct{ owned bool }

func (s *stubBench) Name() string              { return "stub" }
func (s *stubBench) Domain() string            { return "testing" }
func (s *stubBench) AccordionInput() string    { return "n" }
func (s *stubBench) QualityMetricName() string { return "none" }
func (s *stubBench) DefaultInput() float64     { return 1 }
func (s *stubBench) HyperInput() float64       { return 1 }
func (s *stubBench) Sweep() []float64          { return []float64{1} }
func (s *stubBench) ProblemSize(float64) float64 {
	return 1
}
func (s *stubBench) Run(input float64, threads int, plan fault.Plan, seed int64) (Result, error) {
	return Result{Output: []float64{1}, Ops: 1}, nil
}
func (s *stubBench) Quality(run, ref Result) (float64, error) { return 1, nil }
func (s *stubBench) DependencePS() Dependence                 { return Linear }
func (s *stubBench) DependenceQ() Dependence                  { return Linear }
func (s *stubBench) Profile() sim.WorkProfile                 { return sim.WorkProfile{} }
func (s *stubBench) Trace() sim.TraceSpec                     { return sim.TraceSpec{} }
func (s *stubBench) DefaultThreads() int                      { return 4 }

// ownedBench additionally pins every value on task 2.
type ownedBench struct{ stubBench }

func (o *ownedBench) OwnerOfValue(i, nValues, threads int) int { return 2 }

func TestOwnerOfValueFallback(t *testing.T) {
	b := &stubBench{}
	// Block partition: 8 values over 4 threads -> 2 values per thread.
	for i := 0; i < 8; i++ {
		if got, want := OwnerOfValue(b, i, 8, 4), i/2; got != want {
			t.Errorf("OwnerOfValue(%d) = %d, want %d", i, got, want)
		}
	}
	if got := OwnerOfValue(b, 100, 8, 4); got != 3 {
		t.Errorf("out-of-range index clamped to %d, want 3", got)
	}
	if got := OwnerOfValue(b, 0, 0, 4); got != 0 {
		t.Errorf("degenerate nValues owner = %d, want 0", got)
	}
	if got := OwnerOfValue(&ownedBench{}, 5, 8, 4); got != 2 {
		t.Errorf("ValueOwner implementation ignored: owner = %d, want 2", got)
	}
}

func TestAttributeChargesLedger(t *testing.T) {
	ref := Result{Output: []float64{10, 10, 10, 10, 20, 20, 20, 20}}
	run := Result{Output: []float64{10, 10, 11, 11, 20, 20, 20, 30}}
	wantTotal, err := quality.Distortion(run.Output, ref.Output)
	if err != nil {
		t.Fatalf("Distortion: %v", err)
	}

	led, err := fault.NewLedger(42, []fault.CoreRef{
		{Core: 0, Cluster: 0}, {Core: 1, Cluster: 0},
		{Core: 2, Cluster: 1}, {Core: 3, Cluster: 1},
	})
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	total, err := Attribute(&stubBench{}, run, ref, 4, led)
	if err != nil {
		t.Fatalf("Attribute: %v", err)
	}
	if math.Abs(total-wantTotal) > 1e-15 {
		t.Fatalf("Attribute total = %v, Distortion = %v", total, wantTotal)
	}
	rep := led.Report()
	if math.Abs(rep.TotalDistortion-total) > 1e-9 {
		t.Fatalf("ledger total %v != attributed total %v", rep.TotalDistortion, total)
	}
	var sum float64
	for _, c := range rep.Cores {
		sum += c.Distortion
	}
	if math.Abs(sum-total) > 1e-9 {
		t.Fatalf("per-core contributions sum to %v, want %v", sum, total)
	}
	// Values 2,3 belong to task 1 (core 1); value 7 to task 3 (core 3).
	// Cores 0 and 2 produced perfect values and must not appear.
	for _, c := range rep.Cores {
		if c.Core == 0 || c.Core == 2 {
			t.Errorf("clean core %d charged %v", c.Core, c.Distortion)
		}
	}
}

func TestAttributeNilLedgerAndErrors(t *testing.T) {
	ref := Result{Output: []float64{1, 2}}
	run := Result{Output: []float64{1, 3}}
	total, err := Attribute(&stubBench{}, run, ref, 2, nil)
	if err != nil {
		t.Fatalf("Attribute with nil ledger: %v", err)
	}
	want, _ := quality.Distortion(run.Output, ref.Output)
	if math.Abs(total-want) > 1e-15 {
		t.Fatalf("total = %v, want %v", total, want)
	}
	if _, err := Attribute(&stubBench{}, run, ref, 0, nil); err == nil {
		t.Error("zero threads accepted")
	}
	if _, err := Attribute(&stubBench{}, Result{}, ref, 2, nil); err == nil {
		t.Error("mismatched outputs accepted")
	}
}
