package rms

import "testing"

func TestDependenceString(t *testing.T) {
	if Linear.String() != "linear" || Complex.String() != "complex" {
		t.Error("dependence names wrong")
	}
}

func TestValidateHelpers(t *testing.T) {
	if err := ValidateInput("x", 1); err != nil {
		t.Error(err)
	}
	if err := ValidateInput("x", 0); err == nil {
		t.Error("zero input accepted")
	}
	if err := ValidateInput("x", -1); err == nil {
		t.Error("negative input accepted")
	}
	if err := ValidateThreads("x", 4); err != nil {
		t.Error(err)
	}
	if err := ValidateThreads("x", 0); err == nil {
		t.Error("zero threads accepted")
	}
}

func TestSweepGeometric(t *testing.T) {
	s := SweepGeometric(2, 32, 5)
	if len(s) != 5 {
		t.Fatalf("len %d", len(s))
	}
	if s[0] != 2 || s[4] < 31.999 || s[4] > 32.001 {
		t.Errorf("endpoints %v", s)
	}
	// Geometric: constant ratio.
	r := s[1] / s[0]
	for i := 2; i < 5; i++ {
		q := s[i] / s[i-1]
		if q < r*0.999 || q > r*1.001 {
			t.Fatalf("ratio drifts: %v", s)
		}
	}
	// Degenerate requests collapse to the low endpoint.
	if got := SweepGeometric(5, 4, 3); len(got) != 1 || got[0] != 5 {
		t.Errorf("inverted range: %v", got)
	}
	if got := SweepGeometric(2, 8, 1); len(got) != 1 {
		t.Errorf("n<2: %v", got)
	}
	if got := SweepGeometric(0, 8, 4); len(got) != 1 {
		t.Errorf("non-positive lo: %v", got)
	}
}
