package canneal

import (
	"testing"

	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/rms/rmstest"
)

func newBench(t *testing.T) *Benchmark {
	t.Helper()
	b, err := New()
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestConformance(t *testing.T) {
	rmstest.Conformance(t, newBench(t))
}

func TestAnnealingReducesCost(t *testing.T) {
	b := newBench(t)
	p := b.initialPlacement()
	initial := b.totalCost(p)
	res, err := b.Run(b.DefaultInput(), 16, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output[0] >= initial {
		t.Errorf("annealing did not improve cost: %.0f -> %.0f", initial, res.Output[0])
	}
	if res.Output[0] < 0.05*initial {
		t.Errorf("cost %.0f implausibly low vs initial %.0f", res.Output[0], initial)
	}
}

func TestDeltaCostMatchesTotal(t *testing.T) {
	b := newBench(t)
	p := b.initialPlacement()
	before := b.totalCost(p)
	ea, eb := 3, 997
	delta := b.deltaCost(p, ea, eb)
	p.swap(ea, eb)
	after := b.totalCost(p)
	if diff := after - before - delta; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("incremental delta %.3f vs true delta %.3f", delta, after-before)
	}
}

func TestSwapMaintainsInvariants(t *testing.T) {
	b := newBench(t)
	p := b.initialPlacement()
	p.swap(10, 20)
	p.swap(10, 30)
	for e := 0; e < b.netlist.Elements; e++ {
		if p.elemAt[p.slotOf[e]] != e {
			t.Fatalf("slot table inconsistent for element %d", e)
		}
	}
}

func TestDropReducesOps(t *testing.T) {
	b := newBench(t)
	full, err := b.Run(64, 16, fault.Plan{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	half, err := b.Run(64, 16, fault.DropHalf(), 2)
	if err != nil {
		t.Fatal(err)
	}
	ratio := half.Ops / full.Ops
	if ratio < 0.45 || ratio > 0.55 {
		t.Errorf("Drop 1/2 executed %.2f of full ops, want ~0.5", ratio)
	}
}

// Section 6.3: inverting the swap decision is far more damaging than
// dropping the same threads, while bit corruptions of the decision
// variable are no worse than Drop.
func TestInvertWorseThanDrop(t *testing.T) {
	b := newBench(t)
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := func(plan fault.Plan) float64 {
		r, err := b.Run(b.DefaultInput(), 64, plan, 1)
		if err != nil {
			t.Fatal(err)
		}
		v, err := b.Quality(r, ref)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	drop := q(fault.DropQuarter())
	invert := q(fault.Plan{Mode: fault.Invert, Num: 1, Den: 4})
	if invert >= drop {
		t.Errorf("invert (%.3f) should corrupt more than drop (%.3f)", invert, drop)
	}
}

func TestTable3Classification(t *testing.T) {
	b := newBench(t)
	if b.DependencePS() != rms.Linear || b.DependenceQ() != rms.Linear {
		t.Error("canneal should be linear/linear per Table 3")
	}
}
