// Package canneal reimplements PARSEC's canneal kernel: simulated
// annealing that minimizes the routing cost — the total half-perimeter
// wirelength (HPWL) of a synthetic multi-pin netlist placed on a grid.
//
// The Accordion input is swaps_per_temp: the number of swap attempts
// each thread makes per temperature step (Section 5.2; the paper
// designates it "without loss of generality" over the temperature-step
// count). Both problem size and quality depend on it linearly
// (Table 3). Fault injection follows footnote 1: infected threads are
// prevented from performing swap(); the Invert mode flips the
// accept/reject decision of infected threads, and the bit-corruption
// modes corrupt the cost delta feeding that decision.
package canneal

import (
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/workload"
)

// Benchmark is the canneal kernel. Construct with New.
type Benchmark struct {
	netlist   *workload.Netlist
	byElem    [][]int // net indices touching each element
	tempSteps int
	t0        float64 // initial temperature
	tDecay    float64 // per-step geometric decay
	seed      int64
}

// New builds the canneal benchmark over its standard synthetic netlist.
func New() (*Benchmark, error) {
	nl, err := workload.NewNetlist(2000, 50, 50, 2, 0xCA77EA1)
	if err != nil {
		return nil, err
	}
	byElem := make([][]int, nl.Elements)
	for i, net := range nl.Nets {
		for _, e := range net {
			byElem[e] = append(byElem[e], i)
		}
	}
	return &Benchmark{
		netlist:   nl,
		byElem:    byElem,
		tempSteps: 24,
		t0:        20,
		tDecay:    0.75,
		seed:      0xCA77EA1,
	}, nil
}

// Name implements rms.Benchmark.
func (b *Benchmark) Name() string { return "canneal" }

// Domain implements rms.Benchmark.
func (b *Benchmark) Domain() string { return "optimization" }

// AccordionInput implements rms.Benchmark.
func (b *Benchmark) AccordionInput() string { return "swaps per temperature step" }

// QualityMetricName implements rms.Benchmark.
func (b *Benchmark) QualityMetricName() string { return "relative routing cost" }

// DefaultInput implements rms.Benchmark: 128 swaps per thread per step.
func (b *Benchmark) DefaultInput() float64 { return 128 }

// HyperInput implements rms.Benchmark.
func (b *Benchmark) HyperInput() float64 { return 2048 }

// Sweep implements rms.Benchmark.
func (b *Benchmark) Sweep() []float64 {
	return rms.SweepGeometric(48, 320, 9)
}

// ProblemSize implements rms.Benchmark: linear in swaps per step.
func (b *Benchmark) ProblemSize(input float64) float64 {
	return input / b.DefaultInput()
}

// DependencePS implements rms.Benchmark (Table 3).
func (b *Benchmark) DependencePS() rms.Dependence { return rms.Linear }

// DependenceQ implements rms.Benchmark (Table 3).
func (b *Benchmark) DependenceQ() rms.Dependence { return rms.Linear }

// DefaultThreads implements rms.Benchmark.
func (b *Benchmark) DefaultThreads() int { return 64 }

// Profile implements rms.Benchmark. Roughly 10^10 dynamic ops at the
// default problem size with canneal's pointer-chasing memory behaviour.
func (b *Benchmark) Profile() sim.WorkProfile {
	return sim.WorkProfile{
		OpsPerUnit:   1.0e10,
		SerialFrac:   0.004,
		CPIBase:      1.0,
		MissPerOp:    0.0014,
		MemLatencyNs: 80,
	}
}

// placement maps element -> grid slot and slot -> element (or -1).
type placement struct {
	slotOf []int
	elemAt []int
	w      int
}

func (b *Benchmark) initialPlacement() *placement {
	p := &placement{
		slotOf: make([]int, b.netlist.Elements),
		elemAt: make([]int, b.netlist.GridW*b.netlist.GridH),
		w:      b.netlist.GridW,
	}
	for i := range p.elemAt {
		p.elemAt[i] = -1
	}
	// Scatter elements deterministically: a fixed permutation of slots.
	perm := mathx.NewRNG(b.seed).Perm(len(p.elemAt))
	for e := 0; e < b.netlist.Elements; e++ {
		p.slotOf[e] = perm[e]
		p.elemAt[perm[e]] = e
	}
	return p
}

// netCost returns the half-perimeter wirelength (HPWL) of net i: the
// semi-perimeter of the bounding box of its pins' slots.
func (b *Benchmark) netCost(p *placement, i int) float64 {
	pins := b.netlist.Nets[i]
	s0 := p.slotOf[pins[0]]
	minX, maxX := s0%p.w, s0%p.w
	minY, maxY := s0/p.w, s0/p.w
	for _, e := range pins[1:] {
		slot := p.slotOf[e]
		x, y := slot%p.w, slot/p.w
		if x < minX {
			minX = x
		}
		if x > maxX {
			maxX = x
		}
		if y < minY {
			minY = y
		}
		if y > maxY {
			maxY = y
		}
	}
	return float64(maxX-minX) + float64(maxY-minY)
}

// totalCost returns the routing cost of the placement.
func (b *Benchmark) totalCost(p *placement) float64 {
	c := 0.0
	for i := range b.netlist.Nets {
		c += b.netCost(p, i)
	}
	return c
}

// netTouches reports whether net ni contains element e.
func (b *Benchmark) netTouches(ni, e int) bool {
	for _, pin := range b.netlist.Nets[ni] {
		if pin == e {
			return true
		}
	}
	return false
}

// deltaCost returns the routing-cost change of swapping elements a and b.
func (b *Benchmark) deltaCost(p *placement, ea, eb int) float64 {
	before := 0.0
	for _, ni := range b.byElem[ea] {
		before += b.netCost(p, ni)
	}
	for _, ni := range b.byElem[eb] {
		if b.netTouches(ni, ea) {
			continue // shared net already counted
		}
		before += b.netCost(p, ni)
	}
	p.slotOf[ea], p.slotOf[eb] = p.slotOf[eb], p.slotOf[ea]
	after := 0.0
	for _, ni := range b.byElem[ea] {
		after += b.netCost(p, ni)
	}
	for _, ni := range b.byElem[eb] {
		if b.netTouches(ni, ea) {
			continue
		}
		after += b.netCost(p, ni)
	}
	p.slotOf[ea], p.slotOf[eb] = p.slotOf[eb], p.slotOf[ea]
	return after - before
}

func (p *placement) swap(ea, eb int) {
	sa, sb := p.slotOf[ea], p.slotOf[eb]
	p.slotOf[ea], p.slotOf[eb] = sb, sa
	p.elemAt[sa], p.elemAt[sb] = eb, ea
}

// Run implements rms.Benchmark. The output is the single routing-cost
// value; Ops counts swap attempts actually executed.
func (b *Benchmark) Run(input float64, threads int, plan fault.Plan, seed int64) (rms.Result, error) {
	if err := rms.ValidateInput(b.Name(), input); err != nil {
		return rms.Result{}, err
	}
	if err := rms.ValidateThreads(b.Name(), threads); err != nil {
		return rms.Result{}, err
	}
	swapsPerTemp := int(math.Round(input))
	if swapsPerTemp < 1 {
		swapsPerTemp = 1
	}
	p := b.initialPlacement()
	rngs := make([]*mathx.RNG, threads)
	root := mathx.NewRNG(seed)
	for t := range rngs {
		rngs[t] = root.Split(int64(t))
	}
	ops := 0.0
	temp := b.t0
	n := b.netlist.Elements
	for step := 0; step < b.tempSteps; step++ {
		for t := 0; t < threads; t++ {
			infected := plan.Infected(t)
			if infected {
				plan.Note(t, step)
			}
			if infected && plan.Mode == fault.Drop {
				continue // swap() suppressed for dropped threads
			}
			rng := rngs[t]
			for k := 0; k < swapsPerTemp; k++ {
				ea, eb := rng.Intn(n), rng.Intn(n)
				if ea == eb {
					continue
				}
				ops++
				delta := b.deltaCost(p, ea, eb)
				if infected && plan.Mode != fault.Invert {
					// Bit corruption of the decision variable.
					delta = plan.CorruptValue(delta, t)
				}
				accept := delta < 0 || rng.Float64() < math.Exp(-delta/temp)
				if infected && plan.Mode == fault.Invert {
					accept = !accept
				}
				if accept {
					p.swap(ea, eb)
				}
			}
		}
		temp *= b.tDecay
	}
	return rms.Result{Output: []float64{b.totalCost(p)}, Ops: ops}, nil
}

// Quality implements rms.Benchmark: the relative routing cost, the
// hyper-accurate cost divided by the achieved cost (1 means the run
// matched the reference; lower means costlier routing).
func (b *Benchmark) Quality(run, ref rms.Result) (float64, error) {
	if len(run.Output) != 1 || len(ref.Output) != 1 {
		return 0, fmt.Errorf("canneal: malformed outputs")
	}
	if run.Output[0] <= 0 {
		return 0, fmt.Errorf("canneal: non-positive routing cost %g", run.Output[0])
	}
	return ref.Output[0] / run.Output[0], nil
}

// Trace implements rms.Benchmark: netlist walking is a pointer chase
// over a multi-megabyte structure, with most references hitting loop
// state.
func (b *Benchmark) Trace() sim.TraceSpec {
	return sim.TraceSpec{
		Kind: sim.PointerChase, WorkingSetBytes: 8 << 20,
		MemFrac: 0.35, HotFrac: 0.995, HotBytes: 16 * 1024, Seed: 0xCA7,
	}
}

var _ rms.Benchmark = (*Benchmark)(nil)
