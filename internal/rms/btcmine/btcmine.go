// Package btcmine implements the strict weak-scaling workload the
// paper's Discussion (Section 7) points to: proof-of-work search in the
// style of bitcoin mining (Taylor, CASES 2013). The problem size is the
// nonce-space volume searched per block; it partitions perfectly across
// cores with constant per-thread work — weak scaling in the strict
// sense, unlike the six RMS benchmarks whose per-thread work grows with
// the problem.
//
// The Accordion input is the searched nonce volume (in units of 2^16
// nonces). Quality is the fraction of the expected proof-of-work
// solutions actually found: dropped shards lose exactly their share of
// solutions and nothing else, the cleanest possible Drop response.
package btcmine

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/sim"
)

// Benchmark is the proof-of-work kernel. Construct with New.
type Benchmark struct {
	header     [32]byte
	targetBits uint // leading zero bits a digest must have to count
}

// New builds the mining benchmark over a fixed block header.
func New() *Benchmark {
	b := &Benchmark{targetBits: 12}
	for i := range b.header {
		b.header[i] = byte(0xB1*i + 7)
	}
	return b
}

// Name implements rms.Benchmark.
func (b *Benchmark) Name() string { return "btcmine" }

// Domain implements rms.Benchmark.
func (b *Benchmark) Domain() string { return "proof-of-work search" }

// AccordionInput implements rms.Benchmark.
func (b *Benchmark) AccordionInput() string { return "nonce volume (64Ki units)" }

// QualityMetricName implements rms.Benchmark.
func (b *Benchmark) QualityMetricName() string { return "solutions found / expected" }

// DefaultInput implements rms.Benchmark: 16 * 64Ki = 1Mi nonces.
func (b *Benchmark) DefaultInput() float64 { return 16 }

// HyperInput implements rms.Benchmark.
func (b *Benchmark) HyperInput() float64 { return 64 }

// Sweep implements rms.Benchmark.
func (b *Benchmark) Sweep() []float64 {
	return []float64{4, 6, 8, 12, 16, 22, 30, 40, 52}
}

// ProblemSize implements rms.Benchmark: exactly linear in the volume.
func (b *Benchmark) ProblemSize(input float64) float64 {
	return input / b.DefaultInput()
}

// DependencePS implements rms.Benchmark.
func (b *Benchmark) DependencePS() rms.Dependence { return rms.Linear }

// DependenceQ implements rms.Benchmark.
func (b *Benchmark) DependenceQ() rms.Dependence { return rms.Linear }

// DefaultThreads implements rms.Benchmark.
func (b *Benchmark) DefaultThreads() int { return 64 }

// Profile implements rms.Benchmark: pure compute, zero serial fraction
// (strict weak scaling), negligible memory traffic.
func (b *Benchmark) Profile() sim.WorkProfile {
	return sim.WorkProfile{
		OpsPerUnit:   1.0e10,
		SerialFrac:   0.0005,
		CPIBase:      1.0,
		MissPerOp:    0.0001,
		MemLatencyNs: 80,
	}
}

// digest is a small, fast, deterministic 64-bit mixer standing in for
// the double-SHA256 of the real protocol; only the statistics of
// "digest below target" matter here.
func (b *Benchmark) digest(nonce uint64) uint64 {
	h := binary.LittleEndian.Uint64(b.header[:8]) ^ nonce
	h ^= binary.LittleEndian.Uint64(b.header[8:16])
	h = (h ^ (h >> 30)) * 0xBF58476D1CE4E5B9
	h ^= binary.LittleEndian.Uint64(b.header[16:24]) * 0x9E3779B97F4A7C15
	h = (h ^ (h >> 27)) * 0x94D049BB133111EB
	h ^= binary.LittleEndian.Uint64(b.header[24:32])
	return h ^ (h >> 31)
}

// solves reports whether a nonce's digest clears the difficulty target.
func (b *Benchmark) solves(nonce uint64) bool {
	return b.digest(nonce)>>(64-b.targetBits) == 0
}

// Run implements rms.Benchmark. Threads own contiguous nonce shards;
// a dropped shard's solutions are simply never submitted. The output
// encodes the sorted solution nonces; Ops counts hash evaluations.
func (b *Benchmark) Run(input float64, threads int, plan fault.Plan, seed int64) (rms.Result, error) {
	if err := rms.ValidateInput(b.Name(), input); err != nil {
		return rms.Result{}, err
	}
	if err := rms.ValidateThreads(b.Name(), threads); err != nil {
		return rms.Result{}, err
	}
	if plan.Mode == fault.Invert {
		return rms.Result{}, fmt.Errorf("btcmine: the Invert error mode has no decision variable to invert")
	}
	volume := uint64(math.Round(input * 65536))
	if volume == 0 {
		volume = 1
	}
	var out []float64
	ops := 0.0
	for t := 0; t < threads; t++ {
		lo := uint64(t) * volume / uint64(threads)
		hi := uint64(t+1) * volume / uint64(threads)
		if plan.Mode == fault.Drop && plan.Infected(t) {
			plan.Note(t, -1)
			continue // the shard is never searched
		}
		corrupted := plan.Active() && plan.Mode != fault.Drop && plan.Infected(t)
		if corrupted {
			plan.Note(t, -1)
		}
		for nonce := lo; nonce < hi; nonce++ {
			ops++
			if b.solves(nonce) {
				v := float64(nonce)
				if corrupted {
					// A corrupted submission is rejected by validation
					// unless it still names a true solution.
					v = plan.CorruptValue(v, t)
					if v != float64(nonce) {
						continue
					}
				}
				out = append(out, v)
			}
		}
	}
	return rms.Result{Output: out, Ops: ops}, nil
}

// Quality implements rms.Benchmark: the fraction of the hyper-accurate
// reference's solutions the run also found (the "common with baseline"
// semantics ferret uses). The reference searches a superset volume, so
// quality grows linearly with the searched volume and sheds exactly the
// dropped shards' share under errors.
func (b *Benchmark) Quality(run, ref rms.Result) (float64, error) {
	if len(ref.Output) == 0 {
		return 0, fmt.Errorf("btcmine: reference found no solutions")
	}
	refSet := make(map[float64]bool, len(ref.Output))
	for _, v := range ref.Output {
		refSet[v] = true
	}
	common := 0
	for _, v := range run.Output {
		if refSet[v] {
			common++
		}
	}
	return float64(common) / float64(len(ref.Output)), nil
}

// Trace implements rms.Benchmark: hashing is register-resident compute
// with only rare table references.
func (b *Benchmark) Trace() sim.TraceSpec {
	return sim.TraceSpec{
		Kind: sim.RandomUniform, WorkingSetBytes: 256 * 1024,
		MemFrac: 0.02, HotFrac: 0.990, HotBytes: 8 * 1024, Seed: 0xB7C,
	}
}

var _ rms.Benchmark = (*Benchmark)(nil)
