package btcmine

import (
	"math"
	"testing"

	"repro/internal/fault"
	"repro/internal/rms"
	"repro/internal/rms/rmstest"
)

func TestConformance(t *testing.T) {
	rmstest.Conformance(t, New())
}

func TestSolutionRate(t *testing.T) {
	b := New()
	res, err := b.Run(b.HyperInput(), 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// With 12 target bits one nonce in 4096 solves on average.
	expected := res.Ops / 4096
	found := float64(len(res.Output))
	if math.Abs(found-expected) > 4*math.Sqrt(expected) {
		t.Errorf("found %v solutions, expected ~%v", found, expected)
	}
	// Every reported nonce actually solves.
	for _, v := range res.Output {
		if !b.solves(uint64(v)) {
			t.Fatalf("nonce %v does not solve", v)
		}
	}
}

// Strict weak scaling: per-thread work is independent of the thread
// count, and quality under Drop sheds exactly the dropped share.
func TestStrictWeakScaling(t *testing.T) {
	b := New()
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	full, err := b.Run(b.DefaultInput(), 64, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	half, err := b.Run(b.DefaultInput(), 64, fault.DropHalf(), 1)
	if err != nil {
		t.Fatal(err)
	}
	qFull, _ := b.Quality(full, ref)
	qHalf, _ := b.Quality(half, ref)
	ratio := qHalf / qFull
	if math.Abs(ratio-0.5) > 0.12 {
		t.Errorf("Drop 1/2 retained %.2f of quality, want ~0.50 (exactly the surviving shards)", ratio)
	}
	// Ops scale exactly with the dropped fraction.
	if r := half.Ops / full.Ops; math.Abs(r-0.5) > 0.01 {
		t.Errorf("ops ratio %.3f", r)
	}
	// Thread count does not change the total work (strict partition).
	r16, err := b.Run(b.DefaultInput(), 16, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r16.Ops != full.Ops {
		t.Errorf("total work depends on thread count: %v vs %v", r16.Ops, full.Ops)
	}
}

func TestQualityLinearInVolume(t *testing.T) {
	b := New()
	ref, err := rms.Reference(b, 1)
	if err != nil {
		t.Fatal(err)
	}
	q := func(input float64) float64 {
		res, err := b.Run(input, 64, fault.Plan{}, 1)
		if err != nil {
			t.Fatal(err)
		}
		v, err := b.Quality(res, ref)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	q8, q16, q32 := q(8), q(16), q(32)
	if math.Abs(q16/q8-2) > 0.3 || math.Abs(q32/q16-2) > 0.3 {
		t.Errorf("quality not ~linear in volume: %.3f %.3f %.3f", q8, q16, q32)
	}
}

func TestCorruptedSubmissionsRejected(t *testing.T) {
	b := New()
	plan := fault.Plan{Mode: fault.Flip, Num: 1, Den: 2, Seed: 3}
	res, err := b.Run(b.DefaultInput(), 8, plan, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range res.Output {
		if !b.solves(uint64(v)) {
			t.Fatal("corrupted non-solution accepted")
		}
	}
	clean, err := b.Run(b.DefaultInput(), 8, fault.Plan{}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Output) >= len(clean.Output) {
		t.Error("corruption did not lose any submissions")
	}
}

func TestInvertRejected(t *testing.T) {
	if _, err := New().Run(16, 8, fault.Plan{Mode: fault.Invert, Num: 1, Den: 4}, 1); err == nil {
		t.Error("Invert accepted")
	}
}

func TestDigestDeterministicAndSpread(t *testing.T) {
	b := New()
	if b.digest(42) != b.digest(42) {
		t.Fatal("digest not deterministic")
	}
	// Crude avalanche check: adjacent nonces differ in many bits.
	diff := b.digest(1000) ^ b.digest(1001)
	bits := 0
	for ; diff != 0; diff &= diff - 1 {
		bits++
	}
	if bits < 16 {
		t.Errorf("adjacent digests differ in only %d bits", bits)
	}
}
