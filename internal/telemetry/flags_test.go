package telemetry

import (
	"bytes"
	"flag"
	"strings"
	"testing"
)

// TestModeFlag: the helper registers the one shared -telemetry flag.
func TestModeFlag(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	mode := ModeFlag(fs)
	if err := fs.Parse([]string{"-telemetry", "json"}); err != nil {
		t.Fatal(err)
	}
	if *mode != "json" {
		t.Fatalf("mode = %q, want json", *mode)
	}
}

// TestStartModeEmpty: the empty mode is a valid no-op that does not
// enable recording.
func TestStartModeEmpty(t *testing.T) {
	defer SetEnabled(false)()
	report, err := StartMode("")
	if err != nil {
		t.Fatal(err)
	}
	if On() {
		t.Fatal("empty mode enabled telemetry")
	}
	var buf bytes.Buffer
	if err := report(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty mode reported %q", buf.String())
	}
}

// TestStartModeTextJSON: both real modes enable recording and render
// their respective formats.
func TestStartModeTextJSON(t *testing.T) {
	defer SetEnabled(false)()
	for mode, marker := range map[string]string{"text": "== telemetry", "json": `"counters"`} {
		SetEnabled(false)
		report, err := StartMode(mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if !On() {
			t.Fatalf("%s mode did not enable telemetry", mode)
		}
		var buf bytes.Buffer
		if err := report(&buf); err != nil {
			t.Fatal(err)
		}
		if !strings.Contains(buf.String(), marker) {
			t.Fatalf("%s report missing %q:\n%s", mode, marker, buf.String())
		}
	}
}

// TestStartModeInvalid rejects anything but text/json/empty.
func TestStartModeInvalid(t *testing.T) {
	if _, err := StartMode("xml"); err == nil {
		t.Fatal("StartMode accepted xml")
	}
}

// TestHistogramUnitRendering: a non-time histogram renders with its
// own unit in text output and carries it in the snapshot.
func TestHistogramUnitRendering(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogramWithUnit("test.unit.bytes", "B")
	h.reset()
	h.Observe(4096)
	if h.Unit() != "B" {
		t.Fatalf("unit = %q, want B", h.Unit())
	}
	s := Capture()
	var found bool
	for _, hs := range s.Histograms {
		if hs.Name == "test.unit.bytes" {
			found = true
			if hs.Unit != "B" {
				t.Fatalf("snapshot unit = %q, want B", hs.Unit)
			}
		}
	}
	if !found {
		t.Fatal("histogram missing from snapshot")
	}
	var buf bytes.Buffer
	if err := s.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "4096B") {
		t.Fatalf("text render did not use the B unit:\n%s", buf.String())
	}
	// Default-unit histograms still render as durations.
	if GetHistogram("test.unit.default").Unit() != "ns" {
		t.Fatal("GetHistogram default unit is not ns")
	}
}
