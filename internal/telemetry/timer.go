package telemetry

import "time"

// Timer is the hot-path variant of Span for call sites that hold a
// pre-registered *Histogram handle: StartTimer captures the clock only
// while telemetry records, and ObserveIn lands the elapsed nanoseconds
// in the handle. It exists so simulation packages (chip, variation,
// experiments, ...) never call time.Now themselves — the accordionvet
// determinism analyzer forbids wall-clock reads there, because a
// simulation result must be a pure function of (config, seed). All
// clock access stays inside this package, and the disabled path is the
// usual single atomic load with no allocation and no clock read.
//
//	t := telemetry.StartTimer()
//	... simulate ...
//	t.ObserveIn(telDrawNs)
type Timer struct {
	start time.Time
}

// StartTimer captures the clock if telemetry is recording; otherwise
// it returns the zero Timer without touching the clock.
func StartTimer() Timer {
	if !enabled.Load() {
		return Timer{}
	}
	return Timer{start: time.Now()}
}

// ObserveIn records the elapsed nanoseconds into h. Safe on the zero
// Timer (no-op) and on a nil histogram handle.
func (t Timer) ObserveIn(h *Histogram) {
	if t.start.IsZero() || h == nil {
		return
	}
	h.Observe(time.Since(t.start).Nanoseconds())
}
