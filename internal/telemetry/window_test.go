package telemetry

import (
	"bytes"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// fakeClock is a settable unix-nanosecond time source for window tests.
type fakeClock struct{ ns atomic.Int64 }

func (f *fakeClock) now() int64              { return f.ns.Load() }
func (f *fakeClock) set(t time.Duration)     { f.ns.Store(int64(t)) }
func (f *fakeClock) advance(d time.Duration) { f.ns.Add(int64(d)) }

// newTestWindow registers a window, empties it, and pins it to a fake
// clock for the duration of the test.
func newTestWindow(t *testing.T, name string) (*Window, *fakeClock) {
	t.Helper()
	w := GetWindow(name)
	w.reset()
	clk := &fakeClock{}
	clk.set(1000 * time.Second) // away from zero so bucket stamps are non-zero
	t.Cleanup(w.SetClock(clk.now))
	return w, clk
}

// TestWindowDecayAfterBurst pins the whole point of a rolling window:
// a traffic burst is visible in the 1m readout, ages out of it after a
// minute, survives in the 5m readout, and eventually leaves that too —
// without any recording in between.
func TestWindowDecayAfterBurst(t *testing.T) {
	defer SetEnabled(true)()
	w, clk := newTestWindow(t, "test.window.decay")

	const burst = 100
	for i := 0; i < burst; i++ {
		w.Observe(int64(1000 * (i + 1)))
	}
	if got := w.Stats(time.Minute).Count; got != burst {
		t.Fatalf("1m count right after burst = %d, want %d", got, burst)
	}

	clk.advance(61 * time.Second)
	if got := w.Stats(time.Minute).Count; got != 0 {
		t.Errorf("1m count 61s after burst = %d, want 0 (decayed)", got)
	}
	five := w.Stats(5 * time.Minute)
	if five.Count != burst {
		t.Errorf("5m count 61s after burst = %d, want %d (still inside)", five.Count, burst)
	}
	if five.P99 == 0 || five.P99 < five.P50 {
		t.Errorf("5m quantiles degenerate: p50=%d p99=%d", five.P50, five.P99)
	}

	clk.advance(5 * time.Minute)
	if got := w.Stats(5 * time.Minute).Count; got != 0 {
		t.Errorf("5m count after full decay = %d, want 0", got)
	}
}

// TestWindowRatesAndErrors checks the rate readouts: RatePerSec spreads
// the count over the horizon and ErrorRate is errors/count.
func TestWindowRatesAndErrors(t *testing.T) {
	defer SetEnabled(true)()
	w, _ := newTestWindow(t, "test.window.rates")

	for i := 0; i < 30; i++ {
		w.Observe(10)
	}
	for i := 0; i < 10; i++ {
		w.ObserveErr(20)
	}
	st := w.Stats(time.Minute)
	if st.Count != 40 || st.Errors != 10 {
		t.Fatalf("count/errors = %d/%d, want 40/10", st.Count, st.Errors)
	}
	if want := 40.0 / 60.0; st.RatePerSec != want {
		t.Errorf("RatePerSec = %g, want %g", st.RatePerSec, want)
	}
	if want := 0.25; st.ErrorRate != want {
		t.Errorf("ErrorRate = %g, want %g", st.ErrorRate, want)
	}
	if st.Min != 10 || st.Max != 20 {
		t.Errorf("envelope = [%d, %d], want [10, 20]", st.Min, st.Max)
	}
}

// TestWindowQuantilesOrdered sanity-checks the interpolated quantiles
// against the observed envelope.
func TestWindowQuantilesOrdered(t *testing.T) {
	defer SetEnabled(true)()
	w, _ := newTestWindow(t, "test.window.quantiles")
	for i := int64(1); i <= 1000; i++ {
		w.Observe(i)
	}
	st := w.Stats(time.Minute)
	if st.Count != 1000 {
		t.Fatalf("count = %d, want 1000", st.Count)
	}
	if !(st.Min <= st.P50 && st.P50 <= st.P95 && st.P95 <= st.P99 && st.P99 <= st.Max) {
		t.Errorf("quantiles out of order: min=%d p50=%d p95=%d p99=%d max=%d",
			st.Min, st.P50, st.P95, st.P99, st.Max)
	}
	if st.Mean < 400 || st.Mean > 600 {
		t.Errorf("mean = %g, want ~500.5", st.Mean)
	}
}

// TestWindowSingleObservation pins the degenerate one-sample window:
// every quantile must report the one value (an interpolated bucket
// ceiling leaking out here would inflate a quiet service's p99 by up
// to 2x), and the error-free rate fields must stay finite.
func TestWindowSingleObservation(t *testing.T) {
	defer SetEnabled(true)()
	w, _ := newTestWindow(t, "test.window.single")
	w.Observe(777)
	st := w.Stats(time.Minute)
	if st.Count != 1 {
		t.Fatalf("count = %d, want 1", st.Count)
	}
	if st.Min != 777 || st.P50 != 777 || st.P95 != 777 || st.P99 != 777 || st.Max != 777 {
		t.Errorf("single observation not reported at every quantile: min=%d p50=%d p95=%d p99=%d max=%d",
			st.Min, st.P50, st.P95, st.P99, st.Max)
	}
	if st.ErrorRate != 0 {
		t.Errorf("error rate = %g, want 0", st.ErrorRate)
	}
}

// TestWindowBucketRecycle pins the lazy-reset path: when the ring wraps
// onto a stale bucket (exactly WindowSpan later), the old second's data
// is discarded rather than merged.
func TestWindowBucketRecycle(t *testing.T) {
	defer SetEnabled(true)()
	w, clk := newTestWindow(t, "test.window.recycle")

	w.Observe(5)
	clk.advance(WindowSpan) // same ring slot, different second
	w.Observe(7)
	st := w.Stats(WindowSpan)
	if st.Count != 1 || st.Min != 7 || st.Max != 7 {
		t.Errorf("stats after wrap = %+v, want exactly the new observation", st)
	}
}

// TestWindowDisabledOverhead pins constraint #1 for windows, exactly
// like TestTelemetryDisabledOverhead does for the other metric kinds:
// while the switch is off, Observe allocates nothing and records
// nothing.
func TestWindowDisabledOverhead(t *testing.T) {
	defer SetEnabled(false)()
	w := GetWindow("test.window.disabled")
	w.reset()
	if allocs := testing.AllocsPerRun(1000, func() {
		w.Observe(42)
		w.ObserveErr(43)
	}); allocs != 0 {
		t.Errorf("disabled Window.Observe allocates %v times per run, want 0", allocs)
	}
	if got := w.Stats(WindowSpan).Count; got != 0 {
		t.Errorf("disabled window recorded %d observations, want 0", got)
	}
}

// TestWindowEnabledNoAlloc: the enabled record path is a fixed bucket
// update, no allocation.
func TestWindowEnabledNoAlloc(t *testing.T) {
	defer SetEnabled(true)()
	w, _ := newTestWindow(t, "test.window.noalloc")
	if allocs := testing.AllocsPerRun(1000, func() { w.Observe(42) }); allocs != 0 {
		t.Errorf("enabled Window.Observe allocates %v times per run, want 0", allocs)
	}
}

// TestWindowConcurrent hammers one window from many goroutines and
// expects an exact merged count.
func TestWindowConcurrent(t *testing.T) {
	defer SetEnabled(true)()
	w, _ := newTestWindow(t, "test.window.concurrent")
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%10 == 0 {
					w.ObserveErr(int64(g*per + i))
				} else {
					w.Observe(int64(g*per + i))
				}
			}
		}(g)
	}
	wg.Wait()
	st := w.Stats(time.Minute)
	if st.Count != workers*per {
		t.Errorf("count = %d, want %d", st.Count, workers*per)
	}
	if st.Errors != workers*per/10 {
		t.Errorf("errors = %d, want %d", st.Errors, workers*per/10)
	}
}

// TestWindowNilSafety: the nil window is a no-op everywhere, like every
// other metric handle.
func TestWindowNilSafety(t *testing.T) {
	defer SetEnabled(true)()
	var w *Window
	w.Observe(1)
	w.ObserveErr(2)
	if st := w.Stats(time.Minute); st.Count != 0 {
		t.Errorf("nil window stats = %+v, want zeros", st)
	}
	if w.Name() != "" || w.Unit() != "" {
		t.Error("nil window has a name or unit")
	}
}

// TestWindowSnapshotRendering checks the three renderers expose the
// window readouts: Capture carries a windows section, WriteText prints
// it, and WriteProm emits the _window summaries with horizon labels.
func TestWindowSnapshotRendering(t *testing.T) {
	defer SetEnabled(true)()
	w, _ := newTestWindow(t, "test.window.render")
	for i := 0; i < 50; i++ {
		w.Observe(int64(1 << 20))
	}

	snap := Capture()
	var ws *WindowSnapshot
	for i := range snap.Windows {
		if snap.Windows[i].Name == "test.window.render" {
			ws = &snap.Windows[i]
		}
	}
	if ws == nil {
		t.Fatal("Capture() carries no snapshot for the registered window")
	}
	if len(ws.Horizons) != 2 || ws.Horizons[0].Label != "1m" || ws.Horizons[1].Label != "5m" {
		t.Fatalf("horizons = %+v, want [1m 5m]", ws.Horizons)
	}
	if ws.Horizons[0].Count != 50 || ws.Horizons[0].P99 == 0 {
		t.Errorf("1m horizon = %+v, want count 50 and non-zero p99", ws.Horizons[0])
	}

	var text bytes.Buffer
	if err := snap.WriteText(&text); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text.String(), "-- windows") || !strings.Contains(text.String(), "test.window.render") {
		t.Errorf("WriteText misses the windows section:\n%s", text.String())
	}

	var prom bytes.Buffer
	if err := snap.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`test_window_render_window{unit="ns",horizon="1m",quantile="0.99"}`,
		`test_window_render_window_rate{horizon="5m"}`,
		`test_window_render_window_error_rate{horizon="1m"}`,
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("WriteProm output misses %q", want)
		}
	}
}

// TestWindowRegistryReset: the package-wide Reset empties windows too.
func TestWindowRegistryReset(t *testing.T) {
	defer SetEnabled(true)()
	w, _ := newTestWindow(t, "test.window.reset")
	w.Observe(9)
	Reset()
	if got := w.Stats(WindowSpan).Count; got != 0 {
		t.Errorf("count after Reset = %d, want 0", got)
	}
}
