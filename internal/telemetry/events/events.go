// Package events is the repository's domain-observability tier: a
// structured log of *simulation* events — a chip drawn from the
// Monte-Carlo factory, a quality front measured, a fault injected into
// a task, a Drop plan suppressing a task's contribution, an output
// scored against its reference — where internal/telemetry aggregates
// runtime counters and internal/telemetry/trace records runtime spans.
//
// Design constraints, mirroring the other two tiers:
//
//  1. Near-zero cost when off. Event construction is gated on one
//     atomic load of the package switch; while disabled New returns a
//     nil *Builder whose methods are no-ops, so the disabled path
//     performs no allocation and no time.Now call (pinned by
//     TestEventsDisabledOverhead).
//  2. Bounded memory. Events land in a fixed-capacity ring buffer;
//     once the ring wraps, the oldest event is overwritten and
//     Dropped() counts the loss instead of memory growing.
//  3. Self-describing export. The ring dumps as NDJSON — one JSON
//     object per line with a deterministic attribute order — which
//     ParseNDJSON reads back into identical events, so downstream
//     tooling (jq, CI gates, the /eventsz endpoint) needs no schema.
//
// Attributes are typed (int64, float64, string) so hot emitters never
// box values; Attr.Slog converts to a log/slog attribute for callers
// bridging into a slog pipeline.
package events

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"math"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide recording switch.
var enabled atomic.Bool

// epoch anchors event timestamps; all events are nanoseconds since it.
var epoch atomic.Int64 // unix nanoseconds, 0 until first enable

// On reports whether event logging is recording. Callers that must pay
// a setup cost before emitting (deriving attribute values) should gate
// that setup on On(); plain New chains need no guard because New
// checks the switch itself.
func On() bool { return enabled.Load() }

// SetEnabled flips the process-wide switch and returns a function
// restoring the previous state, for scoped use in tests. The first
// enable anchors the event clock; Reset re-anchors it.
func SetEnabled(on bool) (restore func()) {
	if on {
		epoch.CompareAndSwap(0, time.Now().UnixNano())
	}
	prev := enabled.Swap(on)
	return func() { enabled.Store(prev) }
}

// now returns nanoseconds since the event epoch.
func now() int64 { return time.Now().UnixNano() - epoch.Load() }

// attrKind discriminates the typed attribute payloads.
type attrKind uint8

const (
	kindInt attrKind = iota
	kindFloat
	kindStr
)

// Attr is one typed key/value annotation on an event. Construct with
// Int64, Float64 or String; the zero Attr is an int64 0 under the
// empty key.
type Attr struct {
	Key  string
	kind attrKind
	i    int64
	f    float64
	s    string
}

// Int64 returns an integer-valued attribute.
func Int64(key string, v int64) Attr { return Attr{Key: key, kind: kindInt, i: v} }

// Float64 returns a float-valued attribute.
func Float64(key string, v float64) Attr { return Attr{Key: key, kind: kindFloat, f: v} }

// String returns a string-valued attribute.
func String(key, v string) Attr { return Attr{Key: key, kind: kindStr, s: v} }

// Value returns the attribute's dynamic value (int64, float64 or
// string), for assertions and generic consumers.
func (a Attr) Value() any {
	switch a.kind {
	case kindFloat:
		return a.f
	case kindStr:
		return a.s
	}
	return a.i
}

// Slog converts the attribute to a log/slog attribute, so event
// consumers can feed a slog.Handler without re-boxing.
func (a Attr) Slog() slog.Attr {
	switch a.kind {
	case kindFloat:
		return slog.Float64(a.Key, a.f)
	case kindStr:
		return slog.String(a.Key, a.s)
	}
	return slog.Int64(a.Key, a.i)
}

// Event is one recorded simulation-domain event. Seq is the emission
// sequence number (dense from 0 per Reset, so gaps at the front of a
// Collect reveal ring overwrites); TimeNs is nanoseconds since the
// event epoch.
type Event struct {
	Seq    uint64
	TimeNs int64
	Kind   string
	Attrs  []Attr
}

// Builder accumulates one event's attributes. A nil *Builder (what New
// returns while logging is off) is a valid no-op receiver for every
// method, so instrumentation needs no guards.
type Builder struct {
	ev Event
}

// New starts an event of the given kind ("chip.drawn",
// "fault.injected", ...). Returns nil while event logging is off; the
// disabled path is one atomic load and no allocation.
func New(kind string) *Builder {
	if !enabled.Load() {
		return nil
	}
	return &Builder{ev: Event{Kind: kind, TimeNs: now()}}
}

// Int annotates the event with an integer value. Nil-safe, chainable.
func (b *Builder) Int(key string, v int64) *Builder {
	if b == nil {
		return nil
	}
	b.ev.Attrs = append(b.ev.Attrs, Int64(key, v))
	return b
}

// Float annotates the event with a float value. Nil-safe, chainable.
func (b *Builder) Float(key string, v float64) *Builder {
	if b == nil {
		return nil
	}
	b.ev.Attrs = append(b.ev.Attrs, Float64(key, v))
	return b
}

// Str annotates the event with a string value. Nil-safe, chainable.
func (b *Builder) Str(key, v string) *Builder {
	if b == nil {
		return nil
	}
	b.ev.Attrs = append(b.ev.Attrs, String(key, v))
	return b
}

// Emit records the event into the ring. Safe on nil. An event built
// while logging was on still lands if the switch flips mid-flight.
func (b *Builder) Emit() {
	if b == nil {
		return
	}
	record(b.ev)
}

// DefaultCapacity is the ring's event capacity until SetCapacity
// overrides it: enough for every chip draw, front cell and
// task-granular fault note of a default `accordion all` run.
const DefaultCapacity = 65536

// ring is the bounded event store. A mutex suffices: domain events are
// orders of magnitude rarer than spans or counter bumps, and the lock
// is only taken while the switch is on.
var ring struct {
	mu      sync.Mutex
	buf     []Event
	cap     int
	next    uint64 // total events emitted since Reset; also the next Seq
	dropped int64
}

// record appends one event, overwriting the oldest once the ring is
// full, then fans it out to live subscribers.
func record(e Event) {
	ring.mu.Lock()
	if ring.cap == 0 {
		ring.cap = DefaultCapacity
	}
	if ring.buf == nil {
		ring.buf = make([]Event, ring.cap)
	}
	e.Seq = ring.next
	ring.buf[e.Seq%uint64(ring.cap)] = e
	ring.next++
	if ring.next > uint64(ring.cap) {
		ring.dropped++
		telDropped.Set(ring.dropped)
	}
	telEmitted.Inc()
	ring.mu.Unlock()
	publish(e)
}

// subscribers is the live fan-out registry behind Subscribe. A
// separate lock from the ring keeps the hot record path's critical
// section small; publish runs after the ring append, so a subscriber
// that joined before an event never sees it out of order with Collect.
var subscribers struct {
	mu   sync.Mutex
	next int
	m    map[int]chan Event
}

// Subscribe registers a live event listener: every event recorded
// after the call is offered to the returned channel, which carries the
// given buffer capacity (minimum 1). Delivery is non-blocking — a
// subscriber that falls behind loses events rather than stalling
// emitters; the ring (Collect, Dump) remains the lossless-within-
// capacity record. cancel unregisters the channel and closes it;
// it is safe to call more than once.
func Subscribe(buf int) (ch <-chan Event, cancel func()) {
	if buf < 1 {
		buf = 1
	}
	c := make(chan Event, buf)
	subscribers.mu.Lock()
	if subscribers.m == nil {
		subscribers.m = make(map[int]chan Event)
	}
	id := subscribers.next
	subscribers.next++
	subscribers.m[id] = c
	subscribers.mu.Unlock()
	var once sync.Once
	return c, func() {
		once.Do(func() {
			subscribers.mu.Lock()
			delete(subscribers.m, id)
			subscribers.mu.Unlock()
			close(c)
		})
	}
}

// publish offers e to every live subscriber without blocking.
func publish(e Event) {
	subscribers.mu.Lock()
	for _, c := range subscribers.m {
		select {
		case c <- e:
		default: // subscriber behind: drop rather than stall the emitter
		}
	}
	subscribers.mu.Unlock()
}

// Dropped returns the number of events overwritten because the ring
// wrapped; the NDJSON dump then starts at the oldest surviving event.
func Dropped() int64 {
	ring.mu.Lock()
	defer ring.mu.Unlock()
	return ring.dropped
}

// SetCapacity resizes the ring (discarding recorded events) and
// returns a function restoring the previous capacity, for scoped use
// in tests. Non-positive capacities are ignored.
func SetCapacity(n int) (restore func()) {
	ring.mu.Lock()
	prev := ring.cap
	if n > 0 {
		ring.cap = n
		ring.buf = nil
		ring.next = 0
		ring.dropped = 0
	}
	ring.mu.Unlock()
	return func() { SetCapacity(prev) }
}

// Reset discards every recorded event, zeroes the drop counter and
// re-anchors the event clock. Call it between runs; recording may not
// be in flight.
func Reset() {
	ring.mu.Lock()
	ring.buf = nil
	ring.next = 0
	ring.dropped = 0
	ring.mu.Unlock()
	epoch.Store(time.Now().UnixNano())
}

// Collect returns every surviving event in emission order (oldest
// first).
func Collect() []Event {
	ring.mu.Lock()
	defer ring.mu.Unlock()
	if ring.buf == nil {
		return nil
	}
	cap64 := uint64(ring.cap)
	start := uint64(0)
	if ring.next > cap64 {
		start = ring.next - cap64
	}
	out := make([]Event, 0, ring.next-start)
	for s := start; s < ring.next; s++ {
		out = append(out, ring.buf[s%cap64])
	}
	return out
}

// appendJSONFloat renders a float as a JSON number that ParseNDJSON
// reads back as a float: integral values gain a ".0" marker so they
// cannot be mistaken for int64 attributes, and the non-finite values
// JSON cannot carry become the strings "NaN", "+Inf", "-Inf".
func appendJSONFloat(dst []byte, v float64) []byte {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return strconv.AppendQuote(dst, fmt.Sprintf("%v", v))
	}
	s := strconv.AppendFloat(nil, v, 'g', -1, 64)
	if !bytes.ContainsAny(s, ".eE") {
		s = append(s, '.', '0')
	}
	return append(dst, s...)
}

// appendJSONString renders s as a JSON string (encoding/json escaping,
// so control characters survive a round trip).
func appendJSONString(dst []byte, s string) []byte {
	b, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return strconv.AppendQuote(dst, s)
	}
	return append(dst, b...)
}

// AppendNDJSON renders one event as a single NDJSON line (without the
// trailing newline): seq, t_ns, kind, then the attributes as an object
// in emission order.
func AppendNDJSON(dst []byte, e Event) []byte {
	dst = append(dst, `{"seq":`...)
	dst = strconv.AppendUint(dst, e.Seq, 10)
	dst = append(dst, `,"t_ns":`...)
	dst = strconv.AppendInt(dst, e.TimeNs, 10)
	dst = append(dst, `,"kind":`...)
	dst = appendJSONString(dst, e.Kind)
	dst = append(dst, `,"attrs":{`...)
	for i, a := range e.Attrs {
		if i > 0 {
			dst = append(dst, ',')
		}
		dst = appendJSONString(dst, a.Key)
		dst = append(dst, ':')
		switch a.kind {
		case kindFloat:
			dst = appendJSONFloat(dst, a.f)
		case kindStr:
			dst = appendJSONString(dst, a.s)
		default:
			dst = strconv.AppendInt(dst, a.i, 10)
		}
	}
	dst = append(dst, "}}"...)
	return dst
}

// WriteNDJSON writes the events as NDJSON, one event per line.
func WriteNDJSON(w io.Writer, evs []Event) error {
	var buf []byte
	for _, e := range evs {
		buf = AppendNDJSON(buf[:0], e)
		buf = append(buf, '\n')
		if _, err := w.Write(buf); err != nil {
			return err
		}
	}
	return nil
}

// Dump writes everything the ring currently holds as NDJSON: the
// one-call export path for cmd binaries and the /eventsz endpoint.
func Dump(w io.Writer) error { return WriteNDJSON(w, Collect()) }

// ParseNDJSON reads an NDJSON event stream back into events. The
// attribute order and types of a WriteNDJSON round trip are preserved
// exactly: JSON numbers without a fraction or exponent become int64
// attributes, all others float64, strings stay strings (including the
// "NaN"/"+Inf"/"-Inf" spellings of non-finite floats, which return to
// float attributes). Blank lines are skipped.
func ParseNDJSON(r io.Reader) ([]Event, error) {
	var out []Event
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		e, err := parseLine(text)
		if err != nil {
			return nil, fmt.Errorf("events: line %d: %w", line, err)
		}
		out = append(out, e)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// parseLine decodes one NDJSON event. The attrs object is walked
// token by token so attribute order survives.
func parseLine(line string) (Event, error) {
	var raw struct {
		Seq   uint64          `json:"seq"`
		TNs   int64           `json:"t_ns"`
		Kind  string          `json:"kind"`
		Attrs json.RawMessage `json:"attrs"`
	}
	if err := json.Unmarshal([]byte(line), &raw); err != nil {
		return Event{}, err
	}
	e := Event{Seq: raw.Seq, TimeNs: raw.TNs, Kind: raw.Kind}
	if len(raw.Attrs) == 0 {
		return e, nil
	}
	dec := json.NewDecoder(bytes.NewReader(raw.Attrs))
	dec.UseNumber()
	tok, err := dec.Token()
	if err != nil {
		return Event{}, err
	}
	if d, ok := tok.(json.Delim); !ok || d != '{' {
		return Event{}, fmt.Errorf("attrs is not an object")
	}
	for dec.More() {
		kt, err := dec.Token()
		if err != nil {
			return Event{}, err
		}
		key, ok := kt.(string)
		if !ok {
			return Event{}, fmt.Errorf("attr key %v is not a string", kt)
		}
		vt, err := dec.Token()
		if err != nil {
			return Event{}, err
		}
		switch v := vt.(type) {
		case json.Number:
			s := v.String()
			if strings.ContainsAny(s, ".eE") {
				f, err := v.Float64()
				if err != nil {
					return Event{}, err
				}
				e.Attrs = append(e.Attrs, Float64(key, f))
			} else {
				i, err := v.Int64()
				if err != nil {
					return Event{}, err
				}
				e.Attrs = append(e.Attrs, Int64(key, i))
			}
		case string:
			switch v {
			case "NaN":
				e.Attrs = append(e.Attrs, Float64(key, math.NaN()))
			case "+Inf":
				e.Attrs = append(e.Attrs, Float64(key, math.Inf(1)))
			case "-Inf":
				e.Attrs = append(e.Attrs, Float64(key, math.Inf(-1)))
			default:
				e.Attrs = append(e.Attrs, String(key, v))
			}
		case bool:
			i := int64(0)
			if v {
				i = 1
			}
			e.Attrs = append(e.Attrs, Int64(key, i))
		case nil:
			e.Attrs = append(e.Attrs, String(key, ""))
		default:
			return Event{}, fmt.Errorf("attr %q has unsupported value %v", key, vt)
		}
	}
	return e, nil
}
