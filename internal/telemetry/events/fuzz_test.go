package events

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"unicode/utf8"
)

// FuzzEventsNDJSONRoundTrip drives the NDJSON serializer with events
// built from arbitrary kinds, keys, and values — unicode, control
// characters, huge negatives, NaN and the infinities — and pins the
// round-trip contract ParseNDJSON documents: types, order, and values
// come back exactly, and re-serializing the parsed event reproduces
// the original bytes. Strings are expected back UTF-8-coerced: JSON
// cannot carry invalid UTF-8, and encoding/json replaces each invalid
// byte with U+FFFD.
func FuzzEventsNDJSONRoundTrip(f *testing.F) {
	f.Add(uint64(0), int64(0), "chip.drawn", "vdd_mv", int64(850), "u", 0.123, "note", "ok")
	f.Add(uint64(7), int64(-3), "front.measured", "", int64(-1), "f", math.Inf(-1), "s", "line\nbreak")
	f.Add(uint64(1<<63), int64(1)<<62, "q", "k", int64(1)<<62, "k", math.NaN(), "k", `quote"and\slash`)
	f.Add(uint64(3), int64(9), "field.sampled", "n", int64(4096), "sigma", -0.0, "σ", "µ-unicode")
	f.Fuzz(func(t *testing.T, seq uint64, tns int64, kind, ik string, iv int64, fk string, fv float64, sk, sv string) {
		in := Event{
			Seq:    seq,
			TimeNs: tns,
			Kind:   kind,
			Attrs:  []Attr{Int64(ik, iv), Float64(fk, fv), String(sk, sv)},
		}
		line := AppendNDJSON(nil, in)
		evs, err := ParseNDJSON(bytes.NewReader(append(line, '\n')))
		if err != nil {
			t.Fatalf("ParseNDJSON(%q): %v", line, err)
		}
		if len(evs) != 1 {
			t.Fatalf("ParseNDJSON(%q) returned %d events, want 1", line, len(evs))
		}
		out := evs[0]
		if out.Seq != in.Seq || out.TimeNs != in.TimeNs || out.Kind != utf8Coerce(in.Kind) {
			t.Fatalf("header round trip: got (%d, %d, %q), want (%d, %d, %q)",
				out.Seq, out.TimeNs, out.Kind, in.Seq, in.TimeNs, utf8Coerce(in.Kind))
		}
		if len(out.Attrs) != len(in.Attrs) {
			t.Fatalf("attr count round trip: got %d, want %d", len(out.Attrs), len(in.Attrs))
		}
		for i, want := range in.Attrs {
			got := out.Attrs[i]
			if got.Key != utf8Coerce(want.Key) {
				t.Fatalf("attr %d key: got %q, want %q", i, got.Key, utf8Coerce(want.Key))
			}
			if !sameAttrValue(got.Value(), want.Value()) {
				t.Fatalf("attr %d (%q): got %T %v, want %T %v",
					i, want.Key, got.Value(), got.Value(), want.Value(), want.Value())
			}
		}
		// For valid-UTF-8 inputs the serialized form is canonical:
		// parse → serialize is the identity on bytes. (Invalid bytes
		// serialize as the � escape the first time and as the raw
		// replacement rune after a round trip, so only the parsed form
		// is a fixed point there.)
		if utf8.ValidString(kind) && utf8.ValidString(ik) && utf8.ValidString(fk) &&
			utf8.ValidString(sk) && utf8.ValidString(sv) {
			again := AppendNDJSON(nil, out)
			if !bytes.Equal(line, again) {
				t.Fatalf("re-serialization differs:\n first %s\nsecond %s", line, again)
			}
		}
	})
}

// sameAttrValue compares round-tripped attribute values: int64
// exactly, strings up to UTF-8 coercion, float64 bitwise except that
// any NaN payload maps to the one canonical "NaN" spelling.
func sameAttrValue(got, want any) bool {
	if ws, ok := want.(string); ok {
		ws = utf8Coerce(ws)
		// The NDJSON encoding spells non-finite floats as strings, so a
		// string attribute that IS one of those spellings aliases back
		// to a float on parse — a documented corner of the format.
		switch ws {
		case "NaN":
			f, ok := got.(float64)
			return ok && math.IsNaN(f)
		case "+Inf":
			return got == math.Inf(1)
		case "-Inf":
			return got == math.Inf(-1)
		}
		return got == ws
	}
	if wf, ok := want.(float64); ok {
		gf, ok := got.(float64)
		if !ok {
			return false
		}
		if math.IsNaN(wf) {
			return math.IsNaN(gf)
		}
		return math.Float64bits(gf) == math.Float64bits(wf)
	}
	return got == want
}

// utf8Coerce replaces each invalid UTF-8 byte with U+FFFD, exactly as
// encoding/json does when serializing (ranging a string yields one
// RuneError per invalid byte).
func utf8Coerce(s string) string {
	var b strings.Builder
	for _, r := range s {
		b.WriteRune(r)
	}
	return b.String()
}
