package events

import (
	"flag"
	"fmt"
	"os"
)

// PathFlag registers the shared -events flag on fs and returns the
// destination. Every cmd binary uses this one helper so the flag's
// name and usage string cannot drift between tools.
func PathFlag(fs *flag.FlagSet) *string {
	return fs.String("events", "",
		"record simulation-domain events and write them as NDJSON to this file")
}

// StartPath acts on a -events flag value: the empty path leaves event
// logging off and returns a no-op finish, any other path enables
// recording and returns a finish function that dumps the ring to the
// file. Callers invoke finish unconditionally, typically deferred:
//
//	finishEvents, err := events.StartPath(*eventsPath)
//	...
//	defer finishEvents()
func StartPath(path string) (finish func() error, err error) {
	if path == "" {
		return func() error { return nil }, nil
	}
	SetEnabled(true)
	return func() error {
		f, err := os.Create(path)
		if err != nil {
			return fmt.Errorf("events: %w", err)
		}
		if err := Dump(f); err != nil {
			f.Close()
			return fmt.Errorf("events: writing %s: %w", path, err)
		}
		if err := f.Close(); err != nil {
			return fmt.Errorf("events: %w", err)
		}
		return nil
	}, nil
}
