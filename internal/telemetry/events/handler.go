package events

import "net/http"

// Handler returns the /eventsz endpoint: the current ring contents as
// NDJSON. Like /telemetryz, it serves whatever has been recorded so
// far — an empty body simply means event logging is off or nothing has
// happened yet — and disables caching so a live scrape never sees a
// stale snapshot.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson; charset=utf-8")
		w.Header().Set("Cache-Control", "no-cache")
		_ = Dump(w)
	})
}
