package events

import "repro/internal/telemetry"

// The event log mirrors its own health into the telemetry registry so
// a /metricsz scrape shows whether domain events are flowing and
// whether the ring has silently overwritten any (events_dropped > 0
// means the NDJSON dump is missing its oldest events). The mirrors are
// plain telemetry handles, so they cost nothing while telemetry is off.
var (
	telEmitted = telemetry.GetCounter("events.emitted")
	telDropped = telemetry.GetGauge("events.dropped")
)
