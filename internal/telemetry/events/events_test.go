package events

import (
	"bytes"
	"flag"
	"io"
	"math"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// resetAll restores a clean slate between tests that touch the
// package-wide ring and switch.
func resetAll(t *testing.T) {
	t.Helper()
	restore := SetEnabled(false)
	restoreCap := SetCapacity(DefaultCapacity)
	Reset()
	t.Cleanup(func() {
		Reset()
		restoreCap()
		restore()
	})
}

// TestEventsDisabledOverhead pins the contract the instrumented layers
// rely on: with event logging off, building and emitting an event is
// one atomic load and zero allocations.
func TestEventsDisabledOverhead(t *testing.T) {
	resetAll(t)
	allocs := testing.AllocsPerRun(1000, func() {
		New("fault.injected").Int("core", 17).Float("d", 0.25).Str("mode", "drop").Emit()
	})
	if allocs != 0 {
		t.Fatalf("disabled Emit path allocates %.1f times per op, want 0", allocs)
	}
	if got := Collect(); len(got) != 0 {
		t.Fatalf("disabled Emit recorded %d events, want 0", len(got))
	}
}

func TestEmitCollectOrder(t *testing.T) {
	resetAll(t)
	defer SetEnabled(true)()
	New("a").Int("i", 1).Emit()
	New("b").Str("s", "x").Emit()
	New("c").Float("f", 2.5).Emit()
	evs := Collect()
	if len(evs) != 3 {
		t.Fatalf("Collect returned %d events, want 3", len(evs))
	}
	for i, want := range []string{"a", "b", "c"} {
		if evs[i].Kind != want {
			t.Errorf("event %d kind = %q, want %q", i, evs[i].Kind, want)
		}
		if evs[i].Seq != uint64(i) {
			t.Errorf("event %d seq = %d, want %d", i, evs[i].Seq, i)
		}
		if evs[i].TimeNs < 0 {
			t.Errorf("event %d has negative timestamp %d", i, evs[i].TimeNs)
		}
	}
	if v := evs[0].Attrs[0].Value(); v != int64(1) {
		t.Errorf("int attr round-trip = %v (%T), want int64 1", v, v)
	}
	if v := evs[1].Attrs[0].Value(); v != "x" {
		t.Errorf("str attr round-trip = %v, want \"x\"", v)
	}
	if v := evs[2].Attrs[0].Value(); v != 2.5 {
		t.Errorf("float attr round-trip = %v, want 2.5", v)
	}
}

func TestRingDropsOldest(t *testing.T) {
	resetAll(t)
	defer SetCapacity(4)()
	defer SetEnabled(true)()
	for i := 0; i < 10; i++ {
		New("tick").Int("i", int64(i)).Emit()
	}
	if d := Dropped(); d != 6 {
		t.Fatalf("Dropped() = %d, want 6", d)
	}
	evs := Collect()
	if len(evs) != 4 {
		t.Fatalf("Collect returned %d events, want 4", len(evs))
	}
	// The survivors are the newest four, oldest first, with their
	// original sequence numbers intact.
	for i, e := range evs {
		want := uint64(6 + i)
		if e.Seq != want {
			t.Errorf("survivor %d seq = %d, want %d", i, e.Seq, want)
		}
	}
}

func TestNDJSONRoundTrip(t *testing.T) {
	resetAll(t)
	defer SetEnabled(true)()
	New("chip.drawn").Int("seed", 2014).Int("cores", 288).Emit()
	New("quality.scored").Str("bench", "hotspot").Float("quality", 0.97).Float("whole", 3).Emit()
	New("weird").Float("nan", math.NaN()).Float("pinf", math.Inf(1)).Float("ninf", math.Inf(-1)).
		Str("esc", "a\"b\nc ").Emit()
	in := Collect()

	var buf bytes.Buffer
	if err := WriteNDJSON(&buf, in); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	out, err := ParseNDJSON(&buf)
	if err != nil {
		t.Fatalf("ParseNDJSON: %v", err)
	}
	if len(out) != len(in) {
		t.Fatalf("round-trip returned %d events, want %d", len(out), len(in))
	}
	for i := range in {
		a, b := in[i], out[i]
		if a.Seq != b.Seq || a.TimeNs != b.TimeNs || a.Kind != b.Kind || len(a.Attrs) != len(b.Attrs) {
			t.Fatalf("event %d header mismatch: %+v vs %+v", i, a, b)
		}
		for j := range a.Attrs {
			x, y := a.Attrs[j], b.Attrs[j]
			if x.Key != y.Key || x.kind != y.kind {
				t.Fatalf("event %d attr %d: %+v vs %+v", i, j, x, y)
			}
			if x.kind == kindFloat {
				fx, fy := x.f, y.f
				if !(fx == fy || (math.IsNaN(fx) && math.IsNaN(fy))) {
					t.Fatalf("event %d attr %d float: %v vs %v", i, j, fx, fy)
				}
			} else if x.Value() != y.Value() {
				t.Fatalf("event %d attr %d value: %v vs %v", i, j, x.Value(), y.Value())
			}
		}
	}
	// The integral float must carry a decimal marker on the wire so it
	// comes back as a float attr, not an int.
	var wire bytes.Buffer
	if err := WriteNDJSON(&wire, in); err != nil {
		t.Fatalf("WriteNDJSON: %v", err)
	}
	if !strings.Contains(wire.String(), `"whole":3.0`) {
		t.Errorf("integral float lost its decimal marker: %s", wire.String())
	}
}

func TestParseNDJSONRejectsGarbage(t *testing.T) {
	if _, err := ParseNDJSON(strings.NewReader("{not json}\n")); err == nil {
		t.Fatal("ParseNDJSON accepted malformed input")
	}
	evs, err := ParseNDJSON(strings.NewReader("\n  \n"))
	if err != nil || len(evs) != 0 {
		t.Fatalf("blank input: got %d events, err %v", len(evs), err)
	}
}

func TestSlogConversion(t *testing.T) {
	if a := Int64("n", 7).Slog(); a.Value.Int64() != 7 || a.Key != "n" {
		t.Errorf("Int64 slog = %v", a)
	}
	if a := Float64("f", 1.5).Slog(); a.Value.Float64() != 1.5 {
		t.Errorf("Float64 slog = %v", a)
	}
	if a := String("s", "v").Slog(); a.Value.String() != "v" {
		t.Errorf("String slog = %v", a)
	}
}

func TestHandlerServesNDJSON(t *testing.T) {
	resetAll(t)
	defer SetEnabled(true)()
	New("front.measured").Str("bench", "canneal").Int("cells", 12).Emit()

	rr := httptest.NewRecorder()
	Handler().ServeHTTP(rr, httptest.NewRequest("GET", "/eventsz", nil))
	if ct := rr.Header().Get("Content-Type"); ct != "application/x-ndjson; charset=utf-8" {
		t.Errorf("Content-Type = %q", ct)
	}
	if cc := rr.Header().Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("Cache-Control = %q", cc)
	}
	evs, err := ParseNDJSON(rr.Body)
	if err != nil {
		t.Fatalf("handler body does not parse: %v", err)
	}
	if len(evs) != 1 || evs[0].Kind != "front.measured" {
		t.Fatalf("handler served %+v", evs)
	}
}

func TestStartPath(t *testing.T) {
	resetAll(t)

	// Empty path: no-op, logging stays off.
	finish, err := StartPath("")
	if err != nil {
		t.Fatalf("StartPath(\"\"): %v", err)
	}
	if On() {
		t.Fatal("empty StartPath enabled logging")
	}
	if err := finish(); err != nil {
		t.Fatalf("no-op finish: %v", err)
	}

	path := filepath.Join(t.TempDir(), "events.ndjson")
	finish, err = StartPath(path)
	if err != nil {
		t.Fatalf("StartPath: %v", err)
	}
	if !On() {
		t.Fatal("StartPath did not enable logging")
	}
	New("drop.triggered").Int("core", 3).Emit()
	if err := finish(); err != nil {
		t.Fatalf("finish: %v", err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatalf("open dump: %v", err)
	}
	defer f.Close()
	evs, err := ParseNDJSON(f)
	if err != nil {
		t.Fatalf("parse dump: %v", err)
	}
	if len(evs) != 1 || evs[0].Kind != "drop.triggered" {
		t.Fatalf("dump holds %+v", evs)
	}
}

func TestPathFlag(t *testing.T) {
	fs := flag.NewFlagSet("t", flag.ContinueOnError)
	fs.SetOutput(io.Discard)
	p := PathFlag(fs)
	if err := fs.Parse([]string{"-events", "out.ndjson"}); err != nil {
		t.Fatalf("parse: %v", err)
	}
	if *p != "out.ndjson" {
		t.Fatalf("flag value = %q", *p)
	}
}

func TestSetEnabledRestore(t *testing.T) {
	resetAll(t)
	restore := SetEnabled(true)
	if !On() {
		t.Fatal("SetEnabled(true) did not enable")
	}
	restore()
	if On() {
		t.Fatal("restore did not disable")
	}
}

// TestSubscribeFanout: a subscriber receives events recorded after it
// joined, a slow subscriber drops rather than stalls the emitter, and
// cancel closes the channel idempotently.
func TestSubscribeFanout(t *testing.T) {
	defer SetEnabled(true)()
	Reset()

	ch, cancel := Subscribe(4)
	defer cancel()
	New("sub.one").Int("n", 1).Emit()
	New("sub.two").Int("n", 2).Emit()

	for _, want := range []string{"sub.one", "sub.two"} {
		select {
		case e := <-ch:
			if e.Kind != want {
				t.Errorf("received %q, want %q", e.Kind, want)
			}
		default:
			t.Fatalf("no %q event delivered", want)
		}
	}

	// Overflow the buffer: emitters must not block, the tail is lost.
	for i := 0; i < 10; i++ {
		New("sub.burst").Int("n", int64(i)).Emit()
	}
	if got := len(ch); got != 4 {
		t.Errorf("buffered events = %d, want the channel capacity 4", got)
	}
	// The ring kept everything regardless.
	var burst int
	for _, e := range Collect() {
		if e.Kind == "sub.burst" {
			burst++
		}
	}
	if burst != 10 {
		t.Errorf("ring holds %d burst events, want 10", burst)
	}

	cancel()
	cancel() // idempotent
	if _, ok := <-drain(ch); ok {
		// after drain, the channel must be closed
		t.Error("cancelled channel still open")
	}
	New("sub.after").Emit() // must not panic on the closed channel
	Reset()
}

// drain empties ch of its buffered events and returns it.
func drain(ch <-chan Event) <-chan Event {
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				return ch
			}
		default:
			return ch
		}
	}
}
