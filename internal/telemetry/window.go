package telemetry

import (
	"sync"
	"time"
)

// Window layout: a ring of one-second sub-windows covering the longest
// horizon the readouts serve (5 minutes). Each bucket is stamped with
// the unix second it holds, so stale slots are recycled lazily on the
// next write or read — there is no background sweeper goroutine.
const (
	// winBuckets is the ring length in seconds; Stats clamps every
	// horizon to it.
	winBuckets = 300
	// WindowSpan is the longest horizon a Window can answer.
	WindowSpan = winBuckets * time.Second
)

// Standard readout horizons, the ones Capture and the /metricsz
// renderer publish for every registered window.
var windowHorizons = []struct {
	label string
	d     time.Duration
}{
	{"1m", time.Minute},
	{"5m", 5 * time.Minute},
}

// winBucket is one second of observations: the same moments and
// power-of-two buckets a Histogram keeps, plus an error count, all
// guarded by the window's mutex.
type winBucket struct {
	sec    int64 // unix second this bucket holds; 0 means empty
	count  int64
	errs   int64
	sum    int64
	min    int64
	max    int64
	counts [histBuckets]int64
}

// Window is a rolling-window metric: observations land in one-second
// ring buckets and age out, so Stats answers "the last minute", not
// "since boot" — the readout a live ops surface and an SLO tracker
// need where the cumulative Histogram cannot. Recording while the
// telemetry switch is off is one atomic load and zero allocations,
// exactly like the other metric kinds; while on, it is one short
// mutex-guarded bucket update (windows sit on request paths, not in
// inner simulation loops).
//
// The clock is injectable per window (SetClock), so tests drive decay
// deterministically and packages under the determinism analyzer never
// read the wall clock themselves.
type Window struct {
	name string
	unit string

	mu      sync.Mutex
	now     func() int64 // unix nanoseconds
	buckets [winBuckets]winBucket
}

// Name returns the window's registered name.
func (w *Window) Name() string {
	if w == nil {
		return ""
	}
	return w.name
}

// Unit returns the window's unit label.
func (w *Window) Unit() string {
	if w == nil {
		return ""
	}
	return w.unit
}

// wallNowNs is the default window clock.
func wallNowNs() int64 { return time.Now().UnixNano() }

// SetClock injects the window's time source (unix nanoseconds) and
// returns a function restoring the previous one, for scoped use in
// tests.
func (w *Window) SetClock(now func() int64) (restore func()) {
	w.mu.Lock()
	prev := w.now
	w.now = now
	w.mu.Unlock()
	return func() {
		w.mu.Lock()
		w.now = prev
		w.mu.Unlock()
	}
}

// Observe records one successful observation when telemetry is
// enabled; negative values clamp to zero. Nil-safe.
func (w *Window) Observe(v int64) {
	if w == nil || !enabled.Load() {
		return
	}
	w.record(v, false)
}

// ObserveErr records one failed observation — it lands in the same
// latency distribution and additionally counts toward the window's
// error rate. Nil-safe.
func (w *Window) ObserveErr(v int64) {
	if w == nil || !enabled.Load() {
		return
	}
	w.record(v, true)
}

// record updates the current second's bucket, recycling it if the ring
// has wrapped past its stamp.
func (w *Window) record(v int64, isErr bool) {
	if v < 0 {
		v = 0
	}
	w.mu.Lock()
	sec := w.now() / int64(time.Second)
	b := &w.buckets[sec%winBuckets]
	if b.sec != sec {
		*b = winBucket{sec: sec}
	}
	b.count++
	b.sum += v
	if b.count == 1 || v < b.min {
		b.min = v
	}
	if v > b.max {
		b.max = v
	}
	b.counts[bucketOf(v)]++
	if isErr {
		b.errs++
	}
	w.mu.Unlock()
}

// WindowStats is one horizon's merged readout: the request and error
// rates plus the same moments and quantiles a HistogramSnapshot
// carries, computed over only the observations younger than Horizon.
type WindowStats struct {
	Horizon    time.Duration
	Count      int64
	Errors     int64
	RatePerSec float64
	ErrorRate  float64 // errors / count; 0 when the window is empty
	Sum        int64
	Min        int64
	Max        int64
	Mean       float64
	P50        int64
	P95        int64
	P99        int64
}

// Stats merges the buckets younger than horizon (clamped to
// WindowSpan) into one readout. Nil-safe: a nil window reports zeros.
func (w *Window) Stats(horizon time.Duration) WindowStats {
	st := WindowStats{Horizon: horizon}
	if w == nil {
		return st
	}
	if horizon <= 0 || horizon > WindowSpan {
		horizon = WindowSpan
		st.Horizon = WindowSpan
	}
	secs := int64(horizon / time.Second)
	if secs < 1 {
		secs = 1
	}

	w.mu.Lock()
	nowSec := w.now() / int64(time.Second)
	var counts [histBuckets]int64
	first := true
	for i := range w.buckets {
		b := &w.buckets[i]
		// Live buckets are stamped within (nowSec-secs, nowSec].
		if b.sec == 0 || b.sec > nowSec || b.sec <= nowSec-secs {
			continue
		}
		st.Count += b.count
		st.Errors += b.errs
		st.Sum += b.sum
		if first || b.min < st.Min {
			st.Min = b.min
		}
		if b.max > st.Max {
			st.Max = b.max
		}
		for j := range counts {
			counts[j] += b.counts[j]
		}
		first = false
	}
	w.mu.Unlock()

	if st.Count == 0 {
		st.Min = 0
		return st
	}
	st.RatePerSec = float64(st.Count) / float64(secs)
	st.ErrorRate = float64(st.Errors) / float64(st.Count)
	st.Mean = float64(st.Sum) / float64(st.Count)
	st.P50 = quantile(&counts, st.Count, 0.50, st.Min, st.Max)
	st.P95 = quantile(&counts, st.Count, 0.95, st.Min, st.Max)
	st.P99 = quantile(&counts, st.Count, 0.99, st.Min, st.Max)
	return st
}

// reset empties every bucket (registry Reset).
func (w *Window) reset() {
	w.mu.Lock()
	w.buckets = [winBuckets]winBucket{}
	w.mu.Unlock()
}

// GetWindow returns the process-wide rolling window registered under
// name, creating it on first use with the default nanosecond unit.
// Like the other metric kinds, callers hold the returned pointer.
func GetWindow(name string) *Window {
	return GetWindowWithUnit(name, "ns")
}

// GetWindowWithUnit is GetWindow for non-time windows. The unit is
// fixed at first registration.
func GetWindowWithUnit(name, unit string) *Window {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.windows == nil {
		reg.windows = make(map[string]*Window)
	}
	w, ok := reg.windows[name]
	if !ok {
		w = &Window{name: name, unit: unit, now: wallNowNs}
		reg.windows[name] = w
	}
	return w
}
