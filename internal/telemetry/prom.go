package telemetry

import (
	"fmt"
	"io"
	"net/http"
	"strings"
)

// promContentType is the Prometheus text exposition content type.
const promContentType = "text/plain; version=0.0.4; charset=utf-8"

// promName sanitizes a registry name into a legal Prometheus metric
// name: dots and any other illegal characters become underscores.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name))
	for i := 0; i < len(name); i++ {
		c := name[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == ':':
			b.WriteByte(c)
		case c >= '0' && c <= '9':
			if i == 0 {
				b.WriteByte('_')
			}
			b.WriteByte(c)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// WriteProm renders the snapshot in the Prometheus text exposition
// format (version 0.0.4), the document the /metricsz endpoint serves.
// Counters and gauges map directly; each histogram becomes a summary
// (its interpolated p50/p95/p99 as quantiles plus _sum and _count),
// with the histogram's unit attached as a label. A telemetry_enabled
// gauge reports the recording switch so scrapes of a disabled process
// are self-describing.
func (s Snapshot) WriteProm(w io.Writer) error {
	var b strings.Builder
	enabled := 0
	if s.Enabled {
		enabled = 1
	}
	b.WriteString("# HELP telemetry_enabled whether the process-wide telemetry switch is on\n")
	b.WriteString("# TYPE telemetry_enabled gauge\n")
	fmt.Fprintf(&b, "telemetry_enabled %d\n", enabled)
	for _, c := range s.Counters {
		n := promName(c.Name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", n, n, c.Value)
	}
	for _, g := range s.Gauges {
		n := promName(g.Name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %d\n", n, n, g.Value)
	}
	for _, h := range s.Histograms {
		n := promName(h.Name)
		unit := h.Unit
		if unit == "" {
			unit = "ns"
		}
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		fmt.Fprintf(&b, "%s{unit=%q,quantile=\"0.5\"} %d\n", n, unit, h.P50)
		fmt.Fprintf(&b, "%s{unit=%q,quantile=\"0.95\"} %d\n", n, unit, h.P95)
		fmt.Fprintf(&b, "%s{unit=%q,quantile=\"0.99\"} %d\n", n, unit, h.P99)
		fmt.Fprintf(&b, "%s_sum{unit=%q} %d\n", n, unit, h.Sum)
		fmt.Fprintf(&b, "%s_count{unit=%q} %d\n", n, unit, h.Count)
	}
	for _, win := range s.Windows {
		// Rolling windows render under a _window suffix so they never
		// collide with the lifetime histogram of the same name; the
		// horizon label distinguishes the readouts.
		n := promName(win.Name) + "_window"
		unit := win.Unit
		if unit == "" {
			unit = "ns"
		}
		fmt.Fprintf(&b, "# TYPE %s summary\n", n)
		for _, h := range win.Horizons {
			fmt.Fprintf(&b, "%s{unit=%q,horizon=%q,quantile=\"0.5\"} %d\n", n, unit, h.Label, h.P50)
			fmt.Fprintf(&b, "%s{unit=%q,horizon=%q,quantile=\"0.95\"} %d\n", n, unit, h.Label, h.P95)
			fmt.Fprintf(&b, "%s{unit=%q,horizon=%q,quantile=\"0.99\"} %d\n", n, unit, h.Label, h.P99)
			fmt.Fprintf(&b, "%s_count{unit=%q,horizon=%q} %d\n", n, unit, h.Label, h.Count)
		}
		fmt.Fprintf(&b, "# TYPE %s_rate gauge\n", n)
		for _, h := range win.Horizons {
			fmt.Fprintf(&b, "%s_rate{horizon=%q} %g\n", n, h.Label, h.RatePerSec)
		}
		fmt.Fprintf(&b, "# TYPE %s_error_rate gauge\n", n)
		for _, h := range win.Horizons {
			fmt.Fprintf(&b, "%s_error_rate{horizon=%q} %g\n", n, h.Label, h.ErrorRate)
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// MetricsHandler returns the /metricsz endpoint: the same Capture()
// the /telemetryz endpoint serves, rendered for a Prometheus scraper.
// It serves whether or not telemetry is enabled; a disabled process
// reports telemetry_enabled 0 and whatever was recorded before the
// switch flipped.
func MetricsHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", promContentType)
		w.Header().Set("Cache-Control", "no-cache")
		if err := Capture().WriteProm(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
