package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"
)

// CounterSnapshot is one counter's point-in-time reading.
type CounterSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// GaugeSnapshot is one gauge's point-in-time reading.
type GaugeSnapshot struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// HistogramSnapshot is one histogram's point-in-time reading: the
// moments plus interpolated quantiles, all in the histogram's own
// unit, which the Unit field names ("ns" unless the histogram was
// registered with GetHistogramWithUnit).
type HistogramSnapshot struct {
	Name  string  `json:"name"`
	Unit  string  `json:"unit"`
	Count int64   `json:"count"`
	Sum   int64   `json:"sum"`
	Min   int64   `json:"min"`
	Max   int64   `json:"max"`
	Mean  float64 `json:"mean"`
	P50   int64   `json:"p50"`
	P95   int64   `json:"p95"`
	P99   int64   `json:"p99"`
	// Buckets carries the raw power-of-two bucket counts so Sub can
	// recompute quantiles over a delta. It stays out of the JSON
	// rendering: the wire shape of /telemetryz is unchanged.
	Buckets [histBuckets]int64 `json:"-"`
}

// WindowHorizonSnapshot is one horizon's readout of a rolling window:
// the last-1m/5m rates and quantiles the live ops surface serves.
type WindowHorizonSnapshot struct {
	Label      string  `json:"label"`
	Count      int64   `json:"count"`
	Errors     int64   `json:"errors"`
	RatePerSec float64 `json:"rate_per_sec"`
	ErrorRate  float64 `json:"error_rate"`
	Mean       float64 `json:"mean"`
	Min        int64   `json:"min"`
	Max        int64   `json:"max"`
	P50        int64   `json:"p50"`
	P95        int64   `json:"p95"`
	P99        int64   `json:"p99"`
}

// WindowSnapshot is one rolling window's point-in-time reading across
// the standard horizons.
type WindowSnapshot struct {
	Name     string                  `json:"name"`
	Unit     string                  `json:"unit"`
	Horizons []WindowHorizonSnapshot `json:"horizons"`
}

// snapshot reads the window across the standard horizons.
func (w *Window) snapshot() WindowSnapshot {
	s := WindowSnapshot{Name: w.name, Unit: w.unit}
	for _, h := range windowHorizons {
		st := w.Stats(h.d)
		s.Horizons = append(s.Horizons, WindowHorizonSnapshot{
			Label:      h.label,
			Count:      st.Count,
			Errors:     st.Errors,
			RatePerSec: st.RatePerSec,
			ErrorRate:  st.ErrorRate,
			Mean:       st.Mean,
			Min:        st.Min,
			Max:        st.Max,
			P50:        st.P50,
			P95:        st.P95,
			P99:        st.P99,
		})
	}
	return s
}

// Snapshot is a consistent-enough point-in-time view of every
// registered metric, sorted by name. Each individual metric is read
// atomically; the set as a whole is not fenced against concurrent
// recording, which is the usual monitoring trade.
type Snapshot struct {
	Enabled    bool                `json:"enabled"`
	Counters   []CounterSnapshot   `json:"counters"`
	Gauges     []GaugeSnapshot     `json:"gauges"`
	Histograms []HistogramSnapshot `json:"histograms"`
	Windows    []WindowSnapshot    `json:"windows,omitempty"`
}

// Capture reads every registered metric. It is cheap enough to call
// mid-run and safe to call concurrently with recording.
func Capture() Snapshot {
	reg.mu.Lock()
	counters := make([]*Counter, 0, len(reg.counters))
	for _, n := range sortedNames(reg.counters) {
		counters = append(counters, reg.counters[n])
	}
	gauges := make([]*Gauge, 0, len(reg.gauges))
	for _, n := range sortedNames(reg.gauges) {
		gauges = append(gauges, reg.gauges[n])
	}
	hists := make([]*Histogram, 0, len(reg.histograms))
	for _, n := range sortedNames(reg.histograms) {
		hists = append(hists, reg.histograms[n])
	}
	windows := make([]*Window, 0, len(reg.windows))
	for _, n := range sortedNames(reg.windows) {
		windows = append(windows, reg.windows[n])
	}
	reg.mu.Unlock()

	s := Snapshot{
		Enabled:    enabled.Load(),
		Counters:   make([]CounterSnapshot, 0, len(counters)),
		Gauges:     make([]GaugeSnapshot, 0, len(gauges)),
		Histograms: make([]HistogramSnapshot, 0, len(hists)),
	}
	for _, c := range counters {
		s.Counters = append(s.Counters, CounterSnapshot{Name: c.name, Value: c.Value()})
	}
	for _, g := range gauges {
		s.Gauges = append(s.Gauges, GaugeSnapshot{Name: g.name, Value: g.Value()})
	}
	for _, h := range hists {
		s.Histograms = append(s.Histograms, h.snapshot())
	}
	for _, w := range windows {
		s.Windows = append(s.Windows, w.snapshot())
	}
	return s
}

// WriteJSON renders the snapshot as indented JSON, the same document
// the /telemetryz endpoint serves and CI archives.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// fmtUnit renders a histogram value in its unit: nanoseconds become a
// rounded duration a human can scan, anything else stays a plain
// number with the unit appended.
func fmtUnit(v int64, unit string) string {
	if unit == "ns" || unit == "" {
		return time.Duration(v).Round(time.Microsecond).String()
	}
	return fmt.Sprintf("%d%s", v, unit)
}

// WriteText renders the snapshot as an aligned human-readable report:
// counters, gauges, then histograms with their quantiles.
func (s Snapshot) WriteText(w io.Writer) error {
	var b strings.Builder
	state := "disabled"
	if s.Enabled {
		state = "enabled"
	}
	fmt.Fprintf(&b, "== telemetry (%s)\n", state)
	if len(s.Counters) > 0 {
		width := 0
		for _, c := range s.Counters {
			if len(c.Name) > width {
				width = len(c.Name)
			}
		}
		b.WriteString("-- counters\n")
		for _, c := range s.Counters {
			fmt.Fprintf(&b, "%-*s  %d\n", width, c.Name, c.Value)
		}
	}
	if len(s.Gauges) > 0 {
		width := 0
		for _, g := range s.Gauges {
			if len(g.Name) > width {
				width = len(g.Name)
			}
		}
		b.WriteString("-- gauges\n")
		for _, g := range s.Gauges {
			fmt.Fprintf(&b, "%-*s  %d\n", width, g.Name, g.Value)
		}
	}
	if len(s.Histograms) > 0 {
		width := 0
		for _, h := range s.Histograms {
			if len(h.Name) > width {
				width = len(h.Name)
			}
		}
		b.WriteString("-- histograms (count mean p50 p95 p99 max)\n")
		for _, h := range s.Histograms {
			fmt.Fprintf(&b, "%-*s  n=%d  mean=%s  p50=%s  p95=%s  p99=%s  max=%s\n",
				width, h.Name, h.Count, fmtUnit(int64(h.Mean), h.Unit),
				fmtUnit(h.P50, h.Unit), fmtUnit(h.P95, h.Unit),
				fmtUnit(h.P99, h.Unit), fmtUnit(h.Max, h.Unit))
		}
	}
	if len(s.Windows) > 0 {
		width := 0
		for _, win := range s.Windows {
			if len(win.Name) > width {
				width = len(win.Name)
			}
		}
		b.WriteString("-- windows (horizon: n rate err p50 p99)\n")
		for _, win := range s.Windows {
			for _, h := range win.Horizons {
				fmt.Fprintf(&b, "%-*s  %s: n=%d  rate=%.2f/s  err=%.4f  p50=%s  p99=%s\n",
					width, win.Name, h.Label, h.Count, h.RatePerSec, h.ErrorRate,
					fmtUnit(h.P50, win.Unit), fmtUnit(h.P99, win.Unit))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// Handler returns the /telemetryz endpoint: a point-in-time Capture()
// rendered as JSON, so scripts and CI scrape the same numbers the
// -telemetry flag prints.
func Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-cache")
		if err := Capture().WriteJSON(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
