package telemetry

import (
	"flag"
	"fmt"
	"io"
)

// ModeFlag registers the shared -telemetry flag on fs and returns the
// destination. Every cmd binary uses this one helper so the flag's
// name, modes, and usage string cannot drift between tools.
func ModeFlag(fs *flag.FlagSet) *string {
	return fs.String("telemetry", "",
		"dump a telemetry report to stderr after the run: text or json")
}

// StartMode validates a -telemetry mode, enables process-wide
// recording for the non-empty modes, and returns the report function
// that renders the final Capture. The empty mode is valid and returns
// a no-op report, so callers can invoke the result unconditionally:
//
//	report, err := telemetry.StartMode(*mode)
//	...
//	defer report(os.Stderr)
func StartMode(mode string) (report func(io.Writer) error, err error) {
	switch mode {
	case "":
		return func(io.Writer) error { return nil }, nil
	case "text":
		SetEnabled(true)
		return func(w io.Writer) error { return Capture().WriteText(w) }, nil
	case "json":
		SetEnabled(true)
		return func(w io.Writer) error { return Capture().WriteJSON(w) }, nil
	}
	return nil, fmt.Errorf("telemetry: unknown -telemetry mode %q (want text or json)", mode)
}
