package telemetry

import (
	"context"
	"sync"
	"testing"
)

// TestScopedCounterAttribution pins the core scope invariant: a scoped
// bump lands in the global counter AND the scope, so the global delta
// equals the sum of the scoped tallies.
func TestScopedCounterAttribution(t *testing.T) {
	defer SetEnabled(true)()
	c := GetCounter("test.scope.counter")
	c.reset()
	a, b := NewScope(), NewScope()

	c.AddScoped(a, 3)
	c.AddScoped(b, 5)
	c.IncScoped(a)
	c.Add(10) // unscoped

	if got := c.Value(); got != 19 {
		t.Errorf("global = %d, want 19", got)
	}
	if got := a.CounterValue("test.scope.counter"); got != 4 {
		t.Errorf("scope a = %d, want 4", got)
	}
	if got := b.CounterValue("test.scope.counter"); got != 5 {
		t.Errorf("scope b = %d, want 5", got)
	}
	snaps := a.Counters()
	if len(snaps) != 1 || snaps[0].Name != "test.scope.counter" || snaps[0].Value != 4 {
		t.Errorf("a.Counters() = %+v", snaps)
	}
}

// TestScopedHistogram checks scoped observations accumulate a private
// distribution beside the global one.
func TestScopedHistogram(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogramWithUnit("test.scope.hist", "bytes")
	h.reset()
	sc := NewScope()
	for i := int64(1); i <= 100; i++ {
		h.ObserveScoped(sc, i)
	}
	h.Observe(1 << 30) // global-only outlier

	hs := sc.Histograms()
	if len(hs) != 1 {
		t.Fatalf("scope histograms = %d, want 1", len(hs))
	}
	s := hs[0]
	if s.Name != "test.scope.hist" || s.Unit != "bytes" {
		t.Errorf("name/unit = %s/%s", s.Name, s.Unit)
	}
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("scope distribution = %+v, want count 100 in [1,100]", s)
	}
	if s.Max >= 1<<30 {
		t.Error("global-only outlier leaked into the scope")
	}
	if h.Count() != 101 {
		t.Errorf("global count = %d, want 101", h.Count())
	}
}

// TestScopeDisabledAndNil: with the switch off nothing records
// anywhere, and nil scopes/handles are no-ops.
func TestScopeDisabledAndNil(t *testing.T) {
	defer SetEnabled(false)()
	c := GetCounter("test.scope.disabled")
	c.reset()
	sc := NewScope()
	c.AddScoped(sc, 7)
	if c.Value() != 0 || sc.CounterValue("test.scope.disabled") != 0 {
		t.Error("disabled scoped bump recorded somewhere")
	}

	SetEnabled(true)
	c.AddScoped(nil, 2) // nil scope: global only
	if c.Value() != 2 {
		t.Errorf("nil-scope bump: global = %d, want 2", c.Value())
	}
	var nilC *Counter
	nilC.AddScoped(sc, 1)
	var nilH *Histogram
	nilH.ObserveScoped(sc, 1)
	var nilScope *Scope
	if nilScope.CounterValue("x") != 0 || nilScope.Counters() != nil || nilScope.Histograms() != nil {
		t.Error("nil scope readouts are not zero")
	}

	if allocs := testing.AllocsPerRun(1000, func() { c.AddScoped(nil, 0) }); allocs != 0 {
		t.Errorf("nil-scope AddScoped allocates %v times per run", allocs)
	}
}

// TestScopeContext pins the context plumbing the memo caches rely on.
func TestScopeContext(t *testing.T) {
	sc := NewScope()
	ctx := NewScopeContext(context.Background(), sc)
	if got := ScopeFrom(ctx); got != sc {
		t.Errorf("ScopeFrom = %p, want %p", got, sc)
	}
	if got := ScopeFrom(context.Background()); got != nil {
		t.Errorf("ScopeFrom(empty ctx) = %p, want nil", got)
	}
	if got := ScopeFrom(nil); got != nil { //nolint:staticcheck // nil ctx is part of the contract
		t.Errorf("ScopeFrom(nil) = %p, want nil", got)
	}
	base := context.Background()
	if got := NewScopeContext(base, nil); got != base {
		t.Error("NewScopeContext(ctx, nil) should return ctx unchanged")
	}
}

// TestScopeConcurrentAttribution hammers one counter from many
// goroutines, each pair sharing a scope, and expects exact per-scope
// and global totals. Run with -race for the full value.
func TestScopeConcurrentAttribution(t *testing.T) {
	defer SetEnabled(true)()
	c := GetCounter("test.scope.concurrent")
	c.reset()
	const scopes, workersPer, per = 4, 4, 2500
	scs := make([]*Scope, scopes)
	var wg sync.WaitGroup
	for i := range scs {
		scs[i] = NewScope()
		for g := 0; g < workersPer; g++ {
			wg.Add(1)
			go func(sc *Scope) {
				defer wg.Done()
				for j := 0; j < per; j++ {
					c.IncScoped(sc)
				}
			}(scs[i])
		}
	}
	wg.Wait()
	var sum int64
	for i, sc := range scs {
		v := sc.CounterValue("test.scope.concurrent")
		if v != workersPer*per {
			t.Errorf("scope %d = %d, want %d", i, v, workersPer*per)
		}
		sum += v
	}
	if got := c.Value(); got != sum {
		t.Errorf("global %d != sum of scopes %d", got, sum)
	}
}

// captureByName pulls one counter/histogram pair out of a snapshot.
func histByName(s Snapshot, name string) (HistogramSnapshot, bool) {
	for _, h := range s.Histograms {
		if h.Name == name {
			return h, true
		}
	}
	return HistogramSnapshot{}, false
}

func counterByName(s Snapshot, name string) int64 {
	for _, c := range s.Counters {
		if c.Name == name {
			return c.Value
		}
	}
	return 0
}

// TestSnapshotSubCounters pins delta semantics including the
// reset-between-captures clamp.
func TestSnapshotSubCounters(t *testing.T) {
	defer SetEnabled(true)()
	c := GetCounter("test.sub.counter")
	c.reset()
	c.Add(10)
	prev := Capture()
	c.Add(7)
	d := Capture().Sub(prev)
	if got := counterByName(d, "test.sub.counter"); got != 7 {
		t.Errorf("delta = %d, want 7", got)
	}

	// A reset between captures: the counter restarted, so the delta is
	// everything current, never negative.
	c.reset()
	c.Add(3)
	d = Capture().Sub(prev)
	if got := counterByName(d, "test.sub.counter"); got != 3 {
		t.Errorf("post-reset delta = %d, want 3 (clamped to current)", got)
	}
}

// TestSnapshotSubHistograms pins the three histogram delta cases: a
// real delta recomputes quantiles over only the new observations, an
// empty delta reads as zeros, and a reset reads as "everything
// current".
func TestSnapshotSubHistograms(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogram("test.sub.hist")
	h.reset()
	for i := 0; i < 100; i++ {
		h.Observe(100) // old regime: fast
	}
	prev := Capture()

	// Empty delta first: no new observations.
	empty, ok := histByName(Capture().Sub(prev), "test.sub.hist")
	if !ok {
		t.Fatal("delta snapshot misses the histogram")
	}
	if empty.Count != 0 || empty.Sum != 0 || empty.P50 != 0 || empty.P99 != 0 {
		t.Errorf("empty delta = %+v, want all-zero moments", empty)
	}

	// Real delta: the new observations are ~1000x slower; the delta's
	// p50 must reflect only them, not the cumulative distribution.
	for i := 0; i < 100; i++ {
		h.Observe(100_000)
	}
	d, _ := histByName(Capture().Sub(prev), "test.sub.hist")
	if d.Count != 100 {
		t.Fatalf("delta count = %d, want 100", d.Count)
	}
	if d.P50 < 50_000 {
		t.Errorf("delta p50 = %d, want ~100000 (cumulative p50 would be ~100)", d.P50)
	}
	if d.Mean != 100_000 {
		t.Errorf("delta mean = %g, want 100000", d.Mean)
	}

	// Reset between captures: current count < previous count, so the
	// whole current distribution is the delta.
	h.reset()
	h.Observe(40)
	r, _ := histByName(Capture().Sub(prev), "test.sub.hist")
	if r.Count != 1 || r.Max != 40 {
		t.Errorf("post-reset delta = %+v, want the single current observation", r)
	}
}

// TestSnapshotSubGauges: gauges are levels, not totals — Sub carries
// the current reading.
func TestSnapshotSubGauges(t *testing.T) {
	defer SetEnabled(true)()
	g := GetGauge("test.sub.gauge")
	g.reset()
	g.Set(5)
	prev := Capture()
	g.Set(9)
	d := Capture().Sub(prev)
	for _, gs := range d.Gauges {
		if gs.Name == "test.sub.gauge" && gs.Value != 9 {
			t.Errorf("gauge in delta = %d, want current level 9", gs.Value)
		}
	}
}
