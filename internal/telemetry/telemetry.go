// Package telemetry is the repository's zero-dependency observability
// substrate: atomic counters, gauges, bounded log-scale histograms
// (with p50/p95/p99 readouts), and span-style stage timers, all hanging
// off one process-wide registry that Snapshot() reads without stopping
// the world.
//
// Design constraints, in order:
//
//  1. Near-zero cost when off. Recording is gated on one atomic load of
//     the package-wide Enabled switch; a disabled Counter.Add,
//     Histogram.Observe, Gauge.Set, or StartSpan performs no allocation
//     and no time.Now call. Hot layers (the parallel pool, the memo
//     caches, the chip factory) therefore instrument unconditionally
//     and let the switch decide.
//  2. Race-free under fire. Every metric is a fixed set of atomics;
//     there is no per-record locking anywhere. The registry lock is
//     taken only on first registration of a name, never on the record
//     path — callers hold the returned pointer.
//  3. Bounded memory. A Histogram is 64 power-of-two buckets plus five
//     scalars no matter how many observations land in it; quantiles are
//     interpolated within the winning bucket and clamped to the
//     observed min/max.
//
// Metric handles are nil-safe: calling Add/Set/Observe/End on a nil
// metric (or the zero Span) is a no-op, so optional instrumentation
// needs no guards.
package telemetry

import (
	"math"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide switch. All recording paths check it
// first, so leaving it off costs one atomic load per call site.
var enabled atomic.Bool

// On reports whether telemetry is recording. Instrumentation that must
// pay a setup cost before recording (time.Now, key construction) should
// gate that setup on On(); plain counter bumps need no guard because
// every metric checks the switch itself.
func On() bool { return enabled.Load() }

// SetEnabled flips the process-wide recording switch and returns a
// function restoring the previous state, for scoped use in tests.
func SetEnabled(on bool) (restore func()) {
	prev := enabled.Swap(on)
	return func() { enabled.Store(prev) }
}

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when telemetry is enabled. Nil-safe.
func (c *Counter) Add(n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one when telemetry is enabled.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (readable even while disabled).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

func (c *Counter) reset() { c.v.Store(0) }

// Gauge is a last-write-wins atomic level (pool width, cache sizes).
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set records the gauge's current level when telemetry is enabled.
// Nil-safe.
func (g *Gauge) Set(v int64) {
	if g == nil || !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Value returns the last recorded level.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

func (g *Gauge) reset() { g.v.Store(0) }

// histBuckets is the fixed bucket count: bucket b collects values whose
// bit length is b, i.e. the power-of-two range [2^(b-1), 2^b).
const histBuckets = 64

// Histogram accumulates int64 observations into power-of-two buckets.
// Memory is constant; recording is five atomic operations and no
// allocation. Each histogram carries a unit label ("ns" unless
// registered otherwise) that the renderers use; the unit never affects
// recording.
type Histogram struct {
	name    string
	unit    string
	count   atomic.Int64
	sum     atomic.Int64
	min     atomic.Int64 // math.MaxInt64 until the first observation
	max     atomic.Int64
	buckets [histBuckets]atomic.Int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Unit returns the histogram's unit label.
func (h *Histogram) Unit() string { return h.unit }

// bucketOf maps a non-negative value to its power-of-two bucket.
func bucketOf(v int64) int {
	b := bits.Len64(uint64(v))
	if b >= histBuckets {
		b = histBuckets - 1
	}
	return b
}

// Observe records one value when telemetry is enabled; negative values
// clamp to zero. Nil-safe.
func (h *Histogram) Observe(v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.observe(v)
}

// observe records unconditionally; used by Span.End so a span started
// while enabled still lands if the switch flips mid-flight.
func (h *Histogram) observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		cur := h.min.Load()
		if v >= cur || h.min.CompareAndSwap(cur, v) {
			break
		}
	}
	for {
		cur := h.max.Load()
		if v <= cur || h.max.CompareAndSwap(cur, v) {
			break
		}
	}
	h.buckets[bucketOf(v)].Add(1)
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

func (h *Histogram) reset() {
	h.count.Store(0)
	h.sum.Store(0)
	h.min.Store(math.MaxInt64)
	h.max.Store(0)
	for i := range h.buckets {
		h.buckets[i].Store(0)
	}
}

// snapshot reads the histogram into plain integers. Concurrent
// observers may land between the field reads; the quantile math
// tolerates the skew by clamping to the bucket totals it actually read.
func (h *Histogram) snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Name:  h.name,
		Unit:  h.unit,
		Count: h.count.Load(),
		Sum:   h.sum.Load(),
		Max:   h.max.Load(),
	}
	if min := h.min.Load(); min != math.MaxInt64 {
		s.Min = min
	}
	var counts [histBuckets]int64
	var total int64
	for i := range h.buckets {
		counts[i] = h.buckets[i].Load()
		total += counts[i]
	}
	s.Buckets = counts
	if total == 0 {
		return s
	}
	if s.Count > 0 {
		s.Mean = float64(s.Sum) / float64(s.Count)
	}
	s.P50 = quantile(&counts, total, 0.50, s.Min, s.Max)
	s.P95 = quantile(&counts, total, 0.95, s.Min, s.Max)
	s.P99 = quantile(&counts, total, 0.99, s.Min, s.Max)
	return s
}

// quantile interpolates the q-quantile from power-of-two bucket counts,
// clamped to the observed [min, max] envelope.
func quantile(counts *[histBuckets]int64, total int64, q float64, min, max int64) int64 {
	rank := int64(math.Ceil(q * float64(total)))
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for b := 0; b < histBuckets; b++ {
		if counts[b] == 0 {
			continue
		}
		if seen+counts[b] >= rank {
			// Linear interpolation inside the bucket's value range.
			lo, hi := int64(0), int64(0)
			if b > 0 {
				lo = int64(1) << (b - 1)
				hi = lo<<1 - 1
			}
			frac := float64(rank-seen) / float64(counts[b])
			v := lo + int64(frac*float64(hi-lo))
			if v < min {
				v = min
			}
			if v > max {
				v = max
			}
			return v
		}
		seen += counts[b]
	}
	return max
}

// Span measures one stage: StartSpan captures the clock, End records
// the elapsed nanoseconds into the named histogram. The zero Span is a
// no-op, which is what StartSpan returns while telemetry is off — so
// the disabled path never reads the clock.
type Span struct {
	h     *Histogram
	start time.Time
}

// StartSpan begins timing a stage against the named histogram. While
// telemetry is disabled it returns the zero Span without touching the
// clock or the registry; note the name argument itself is evaluated by
// the caller, so gate expensive name construction on On().
func StartSpan(name string) Span {
	if !enabled.Load() {
		return Span{}
	}
	return Span{h: GetHistogram(name), start: time.Now()}
}

// End records the span's elapsed time. Safe on the zero Span.
func (s Span) End() {
	if s.h == nil {
		return
	}
	s.h.observe(time.Since(s.start).Nanoseconds())
}

// registry is the process-wide name -> metric table. It is locked only
// on registration; the record path never touches it.
var reg struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	windows    map[string]*Window
}

// GetCounter returns the process-wide counter registered under name,
// creating it on first use. Callers should hold the returned pointer
// (package-level var) rather than re-resolving the name on hot paths.
func GetCounter(name string) *Counter {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.counters == nil {
		reg.counters = make(map[string]*Counter)
	}
	c, ok := reg.counters[name]
	if !ok {
		c = &Counter{name: name}
		reg.counters[name] = c
	}
	return c
}

// GetGauge returns the process-wide gauge registered under name,
// creating it on first use.
func GetGauge(name string) *Gauge {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.gauges == nil {
		reg.gauges = make(map[string]*Gauge)
	}
	g, ok := reg.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		reg.gauges[name] = g
	}
	return g
}

// GetHistogram returns the process-wide histogram registered under
// name, creating it on first use with the default nanosecond unit.
func GetHistogram(name string) *Histogram {
	return GetHistogramWithUnit(name, "ns")
}

// GetHistogramWithUnit is GetHistogram for non-time histograms: the
// unit labels the renderers' output ("bytes", "chips", ...). The unit
// is fixed at first registration; later calls under any unit return
// the original histogram.
func GetHistogramWithUnit(name, unit string) *Histogram {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.histograms == nil {
		reg.histograms = make(map[string]*Histogram)
	}
	h, ok := reg.histograms[name]
	if !ok {
		h = &Histogram{name: name, unit: unit}
		h.min.Store(math.MaxInt64)
		reg.histograms[name] = h
	}
	return h
}

// Reset zeroes every registered metric in place. Metric identities are
// preserved — pointers held by instrumented packages stay valid — so it
// is safe to call between runs or tests.
func Reset() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, c := range reg.counters {
		c.reset()
	}
	for _, g := range reg.gauges {
		g.reset()
	}
	for _, h := range reg.histograms {
		h.reset()
	}
	for _, w := range reg.windows {
		w.reset()
	}
}

// sortedNames returns m's keys in lexical order.
func sortedNames[V any](m map[string]V) []string {
	names := make([]string, 0, len(m))
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
