// Package trace is the repository's second observability tier: where
// internal/telemetry aggregates (counters, histograms), trace records
// — a hierarchical span tree covering one run (run → runner →
// population → per-chip draw → solver/front stages), exported as
// Chrome trace-event JSON that loads directly in Perfetto or
// chrome://tracing.
//
// Design constraints, mirroring internal/telemetry:
//
//  1. Near-zero cost when off. Span creation is gated on one atomic
//     load of the package switch; while disabled every constructor
//     returns a nil *Span whose methods are no-ops, so the disabled
//     path performs no allocation and no time.Now call (pinned by
//     TestTraceDisabledOverhead).
//  2. Lock-free recording. Finished spans land in a striped event
//     arena: each stripe is a fixed slab claimed by one atomic
//     cursor bump, and a per-slot done flag publishes the write, so
//     the record path takes no lock ever. Stripes are selected by
//     lane, which keeps concurrent workers on separate cache lines.
//  3. Bounded memory. The arena holds at most nStripes*stripeCap
//     events no matter how long the run is; overflow increments
//     Dropped() instead of growing.
//
// Spans form a tree through explicit parent IDs. Each span also lives
// on a lane (exported as the Chrome "tid"): a Child shares its
// parent's lane, so sequential stages nest visually inside one
// Perfetto track, while a ChildLane opens a fresh lane for work that
// runs concurrently with its parent (pool workers, Monte-Carlo
// draws). Lanes are process-unique, so two concurrent pools never
// interleave slices on one track.
//
// Context is the propagation vehicle across layers that fan out:
// NewContext/FromContext carry the current span, and StartFrom opens
// a child of whatever span the context carries (a root span when it
// carries none).
package trace

import (
	"context"
	"encoding/json"
	"io"
	"sort"
	"sync/atomic"
	"time"
)

// enabled is the process-wide recording switch.
var enabled atomic.Bool

// epoch anchors span timestamps; all events are nanoseconds since it.
var epoch atomic.Int64 // unix nanoseconds, 0 until first enable

// On reports whether tracing is recording. Callers that must pay a
// setup cost before opening a span (building a span name, deriving
// args) should gate that setup on On().
func On() bool { return enabled.Load() }

// SetEnabled flips the process-wide tracing switch and returns a
// function restoring the previous state, for scoped use in tests. The
// first enable anchors the trace clock; Reset re-anchors it.
func SetEnabled(on bool) (restore func()) {
	if on {
		epoch.CompareAndSwap(0, time.Now().UnixNano())
	}
	prev := enabled.Swap(on)
	return func() { enabled.Store(prev) }
}

// now returns nanoseconds since the trace epoch.
func now() int64 { return time.Now().UnixNano() - epoch.Load() }

// ID counters. Span IDs start at 1 so 0 always means "no parent";
// lane 0 is never assigned so a zero TID cannot alias a real lane.
var (
	spanIDs atomic.Uint64
	laneIDs atomic.Uint64
)

// Arg is one key/value annotation on a span, either integer or string
// valued. The integer form exists so hot paths can annotate without
// boxing an interface.
type Arg struct {
	Key   string
	Int   int64
	Str   string
	IsStr bool
}

// value returns the arg's dynamic value for JSON encoding.
func (a Arg) value() any {
	if a.IsStr {
		return a.Str
	}
	return a.Int
}

// Event is one finished span as recorded in the arena.
type Event struct {
	Name   string
	ID     uint64
	Parent uint64 // 0 for root spans
	TID    uint64 // lane
	Start  int64  // ns since the trace epoch
	Dur    int64  // ns
	Args   []Arg
}

// Span is one in-flight stage. A nil *Span (what every constructor
// returns while tracing is off) is a valid no-op receiver for every
// method, so instrumentation needs no guards.
type Span struct {
	name   string
	id     uint64
	parent uint64
	tid    uint64
	start  int64
	args   []Arg
}

// start opens a span on the given lane under the given parent id.
func start(name string, parent, tid uint64) *Span {
	return &Span{
		name:   name,
		id:     spanIDs.Add(1),
		parent: parent,
		tid:    tid,
		start:  now(),
	}
}

// StartRoot opens a parentless span on a fresh lane: the top of a span
// tree (a whole run, or a shared computation not owned by any runner).
// Returns nil while tracing is off.
func StartRoot(name string) *Span {
	if !enabled.Load() {
		return nil
	}
	return start(name, 0, laneIDs.Add(1))
}

// Child opens a span under parent on the parent's lane — for a
// sequential stage, which Perfetto then nests inside the parent's
// slice. A nil parent (or disabled tracing) degrades gracefully:
// nil→StartRoot while tracing, nil result while off.
func Child(parent *Span, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	if parent == nil {
		return StartRoot(name)
	}
	return start(name, parent.id, parent.tid)
}

// ChildLane opens a span under parent on a fresh lane — for work that
// runs concurrently with its parent (a pool worker, a Monte-Carlo
// draw), which must not share the parent's track.
func ChildLane(parent *Span, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	var pid uint64
	if parent != nil {
		pid = parent.id
	}
	return start(name, pid, laneIDs.Add(1))
}

// Arg annotates the span with an integer value and returns the span
// for chaining. No-op (and allocation-free) on a nil span.
func (s *Span) Arg(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Int: v})
	return s
}

// ArgStr annotates the span with a string value.
func (s *Span) ArgStr(key, v string) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, Arg{Key: key, Str: v, IsStr: true})
	return s
}

// ID returns the span's unique id (0 for nil spans).
func (s *Span) ID() uint64 {
	if s == nil {
		return 0
	}
	return s.id
}

// End finishes the span and records it into the arena. A span started
// while tracing was on still lands if the switch flips mid-flight, so
// trees are never left with dangling children. Safe on nil.
func (s *Span) End() {
	if s == nil {
		return
	}
	record(Event{
		Name:   s.name,
		ID:     s.id,
		Parent: s.parent,
		TID:    s.tid,
		Start:  s.start,
		Dur:    now() - s.start,
		Args:   s.args,
	})
}

// Context propagation.

type ctxKey struct{}

// NewContext returns a context carrying the span.
func NewContext(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKey{}, s)
}

// FromContext returns the span carried by ctx, or nil.
func FromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKey{}).(*Span)
	return s
}

// StartFrom opens a sequential child of the span ctx carries (a root
// span when it carries none). Returns nil while tracing is off, and
// performs the context lookup only while tracing is on.
func StartFrom(ctx context.Context, name string) *Span {
	if !enabled.Load() {
		return nil
	}
	return Child(FromContext(ctx), name)
}

// The event arena: nStripes fixed slabs. A record picks the stripe of
// its lane, claims a slot with one atomic bump, writes the event, and
// publishes it with the slot's done flag — no locks anywhere on the
// record path. Slabs allocate lazily (one CAS) on first use.
const (
	nStripes  = 64
	stripeCap = 8192
)

type slab struct {
	n    atomic.Int64
	ev   []Event
	done []atomic.Bool
}

var arena struct {
	stripes [nStripes]atomic.Pointer[slab]
	dropped atomic.Int64
}

// record appends one finished event to its lane's stripe.
func record(e Event) {
	sp := &arena.stripes[e.TID%nStripes]
	sl := sp.Load()
	if sl == nil {
		fresh := &slab{ev: make([]Event, stripeCap), done: make([]atomic.Bool, stripeCap)}
		if sp.CompareAndSwap(nil, fresh) {
			sl = fresh
		} else {
			sl = sp.Load()
		}
	}
	idx := sl.n.Add(1) - 1
	if idx >= stripeCap {
		telDropped.Set(arena.dropped.Add(1))
		return
	}
	sl.ev[idx] = e
	sl.done[idx].Store(true)
}

// Dropped returns the number of events discarded because the arena
// was full.
func Dropped() int64 { return arena.dropped.Load() }

// Reset discards every recorded event, re-anchors the trace clock,
// and zeroes the drop counter. Call it between runs; it must not race
// with in-flight spans.
func Reset() {
	for i := range arena.stripes {
		arena.stripes[i].Store(nil)
	}
	arena.dropped.Store(0)
	telDropped.Set(0)
	epoch.Store(time.Now().UnixNano())
}

// Collect returns every published event, sorted by start time (ties
// by span id). Call it only after the traced work has quiesced — the
// per-slot done flags make the read race-free, but events still in
// flight are simply absent.
func Collect() []Event {
	var out []Event
	for i := range arena.stripes {
		sl := arena.stripes[i].Load()
		if sl == nil {
			continue
		}
		n := sl.n.Load()
		if n > stripeCap {
			n = stripeCap
		}
		for j := int64(0); j < n; j++ {
			if sl.done[j].Load() {
				out = append(out, sl.ev[j])
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Start != out[b].Start {
			return out[a].Start < out[b].Start
		}
		return out[a].ID < out[b].ID
	})
	return out
}

// Chrome trace-event JSON (the "JSON Array Format" object flavor with
// a traceEvents key), loadable in Perfetto and chrome://tracing.
// Every span becomes a complete ("X") event; ts/dur are microseconds
// (fractional, so nanosecond resolution survives), and the span/parent
// ids ride in args so the tree is recoverable even across lanes.

type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  uint64         `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// cat derives the event category from the span name's first dotted
// component ("chip.draw" → "chip"), which Perfetto uses for coloring.
func cat(name string) string {
	for i := 0; i < len(name); i++ {
		if name[i] == '.' {
			return name[:i]
		}
	}
	return name
}

// WriteChromeTrace renders events as Chrome trace-event JSON. Lanes
// are named after the first span observed on them via thread_name
// metadata events.
func WriteChromeTrace(w io.Writer, events []Event) error {
	out := chromeTrace{DisplayTimeUnit: "ms", TraceEvents: []chromeEvent{}}
	laneName := map[uint64]string{}
	for _, e := range events {
		if _, ok := laneName[e.TID]; !ok {
			laneName[e.TID] = e.Name
		}
		dur := float64(e.Dur) / 1e3
		args := map[string]any{"span": e.ID, "parent": e.Parent}
		for _, a := range e.Args {
			args[a.Key] = a.value()
		}
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: e.Name,
			Cat:  cat(e.Name),
			Ph:   "X",
			Ts:   float64(e.Start) / 1e3,
			Dur:  &dur,
			Pid:  1,
			Tid:  e.TID,
			Args: args,
		})
	}
	tids := make([]uint64, 0, len(laneName))
	for tid := range laneName {
		tids = append(tids, tid)
	}
	sort.Slice(tids, func(a, b int) bool { return tids[a] < tids[b] })
	for _, tid := range tids {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "thread_name",
			Cat:  "__metadata",
			Ph:   "M",
			Pid:  1,
			Tid:  tid,
			Args: map[string]any{"name": laneName[tid]},
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// Dump collects everything recorded so far and writes it as Chrome
// trace-event JSON: the one-call export path for cmd binaries.
func Dump(w io.Writer) error {
	return WriteChromeTrace(w, Collect())
}
