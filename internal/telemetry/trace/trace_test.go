package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/telemetry"
)

// eventByName finds one collected event by span name.
func eventByName(t *testing.T, events []Event, name string) Event {
	t.Helper()
	for _, e := range events {
		if e.Name == name {
			return e
		}
	}
	t.Fatalf("no event named %q in %d events", name, len(events))
	return Event{}
}

// TestSpanTree pins the structural contract: Child shares the lane and
// parents correctly, ChildLane opens a fresh lane, roots have no
// parent.
func TestSpanTree(t *testing.T) {
	defer SetEnabled(false)()
	SetEnabled(true)
	Reset()

	run := StartRoot("run")
	runner := Child(run, "runner")
	draw := ChildLane(runner, "draw").Arg("index", 7).ArgStr("kind", "mc")
	draw.End()
	runner.End()
	run.End()

	events := Collect()
	if len(events) != 3 {
		t.Fatalf("collected %d events, want 3", len(events))
	}
	er := eventByName(t, events, "run")
	en := eventByName(t, events, "runner")
	ed := eventByName(t, events, "draw")
	if er.Parent != 0 {
		t.Errorf("run parent = %d, want 0", er.Parent)
	}
	if en.Parent != er.ID {
		t.Errorf("runner parent = %d, want run id %d", en.Parent, er.ID)
	}
	if en.TID != er.TID {
		t.Errorf("runner lane = %d, want run lane %d (Child shares lanes)", en.TID, er.TID)
	}
	if ed.Parent != en.ID {
		t.Errorf("draw parent = %d, want runner id %d", ed.Parent, en.ID)
	}
	if ed.TID == en.TID {
		t.Error("ChildLane did not open a fresh lane")
	}
	if len(ed.Args) != 2 || ed.Args[0].Key != "index" || ed.Args[0].Int != 7 ||
		ed.Args[1].Key != "kind" || ed.Args[1].Str != "mc" {
		t.Errorf("draw args = %+v", ed.Args)
	}
}

// TestDisabledReturnsNil: every constructor yields nil while off, and
// nil spans tolerate the full method set.
func TestDisabledReturnsNil(t *testing.T) {
	defer SetEnabled(false)()
	SetEnabled(false)
	if s := StartRoot("x"); s != nil {
		t.Fatal("StartRoot returned a span while disabled")
	}
	if s := Child(nil, "x"); s != nil {
		t.Fatal("Child returned a span while disabled")
	}
	if s := ChildLane(nil, "x"); s != nil {
		t.Fatal("ChildLane returned a span while disabled")
	}
	if s := StartFrom(context.Background(), "x"); s != nil {
		t.Fatal("StartFrom returned a span while disabled")
	}
	var nilSpan *Span
	nilSpan.Arg("k", 1).ArgStr("s", "v").End()
	if nilSpan.ID() != 0 {
		t.Fatal("nil span has a nonzero id")
	}
}

// TestTraceDisabledOverhead mirrors TestTelemetryDisabledOverhead: the
// disabled record path allocates nothing.
func TestTraceDisabledOverhead(t *testing.T) {
	defer SetEnabled(false)()
	SetEnabled(false)
	ctx := context.Background()
	allocs := testing.AllocsPerRun(1000, func() {
		sp := StartRoot("overhead")
		sp = Child(sp, "child")
		sp = sp.Arg("k", 3)
		sp.End()
		StartFrom(ctx, "from").End()
	})
	if allocs != 0 {
		t.Fatalf("disabled tracing allocates %.1f objects per op, want 0", allocs)
	}
}

// TestContextPropagation: StartFrom parents to the context's span and
// FromContext round-trips.
func TestContextPropagation(t *testing.T) {
	defer SetEnabled(false)()
	SetEnabled(true)
	Reset()
	root := StartRoot("ctx.root")
	ctx := NewContext(context.Background(), root)
	if got := FromContext(ctx); got != root {
		t.Fatal("FromContext did not round-trip")
	}
	child := StartFrom(ctx, "ctx.child")
	child.End()
	root.End()
	events := Collect()
	if e := eventByName(t, events, "ctx.child"); e.Parent != root.ID() {
		t.Errorf("ctx child parent = %d, want %d", e.Parent, root.ID())
	}
	if FromContext(nil) != nil {
		t.Error("FromContext(nil) != nil")
	}
	if FromContext(context.Background()) != nil {
		t.Error("FromContext(empty) != nil")
	}
}

// TestConcurrentRecording hammers the arena from many goroutines; the
// count must be exact (no lost events below capacity) and the race
// detector guards the memory model.
func TestConcurrentRecording(t *testing.T) {
	defer SetEnabled(false)()
	SetEnabled(true)
	Reset()
	const workers, per = 16, 200
	root := StartRoot("fire.root")
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lane := ChildLane(root, "fire.lane")
			for i := 0; i < per; i++ {
				Child(lane, "fire.ev").Arg("i", int64(i)).End()
			}
			lane.End()
		}()
	}
	wg.Wait()
	root.End()
	events := Collect()
	want := workers*per + workers + 1
	if len(events) != want {
		t.Fatalf("collected %d events, want %d (dropped=%d)", len(events), want, Dropped())
	}
}

// TestArenaBounded: overflowing one stripe drops instead of growing,
// and the drop is counted.
func TestArenaBounded(t *testing.T) {
	defer SetEnabled(false)()
	SetEnabled(true)
	Reset()
	lane := StartRoot("bound.lane")
	for i := 0; i < stripeCap+10; i++ {
		Child(lane, "bound.ev").End()
	}
	if Dropped() == 0 {
		t.Fatal("overflow did not count drops")
	}
	if n := len(Collect()); n > stripeCap {
		t.Fatalf("arena grew past its cap: %d events", n)
	}
	Reset()
	if Dropped() != 0 || len(Collect()) != 0 {
		t.Fatal("Reset did not clear the arena")
	}
}

// TestChromeExport: the export is valid Chrome trace-event JSON — an
// object with a traceEvents array of "X" events whose args carry the
// span/parent ids, plus thread_name metadata per lane.
func TestChromeExport(t *testing.T) {
	defer SetEnabled(false)()
	SetEnabled(true)
	Reset()
	run := StartRoot("run")
	runner := Child(run, "experiments.run.fig1a")
	draw := ChildLane(runner, "chip.draw").Arg("index", 3)
	draw.End()
	runner.End()
	run.End()

	var buf bytes.Buffer
	if err := Dump(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Cat  string         `json:"cat"`
			Ph   string         `json:"ph"`
			Ts   float64        `json:"ts"`
			Pid  int            `json:"pid"`
			Tid  uint64         `json:"tid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var spans, meta int
	byName := map[string]map[string]any{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
			byName[e.Name] = e.Args
			if e.Pid != 1 {
				t.Errorf("event %q pid = %d, want 1", e.Name, e.Pid)
			}
		case "M":
			meta++
		default:
			t.Errorf("unexpected phase %q", e.Ph)
		}
	}
	if spans != 3 {
		t.Fatalf("export has %d X events, want 3", spans)
	}
	if meta == 0 {
		t.Error("export has no thread_name metadata events")
	}
	// The tree must be recoverable from args: draw.parent == runner.span
	// == child of run.span.
	runID := byName["run"]["span"].(float64)
	runnerArgs := byName["experiments.run.fig1a"]
	if runnerArgs["parent"].(float64) != runID {
		t.Error("runner's exported parent is not the run span")
	}
	drawArgs := byName["chip.draw"]
	if drawArgs["parent"].(float64) != runnerArgs["span"].(float64) {
		t.Error("draw's exported parent is not the runner span")
	}
	if drawArgs["index"].(float64) != 3 {
		t.Error("draw's index arg did not export")
	}
	if cat("chip.draw") != "chip" || cat("run") != "run" {
		t.Error("cat derivation broken")
	}
}

// TestEndAfterDisable: a span started while on still records if the
// switch flips before End, so trees have no dangling children.
func TestEndAfterDisable(t *testing.T) {
	defer SetEnabled(false)()
	SetEnabled(true)
	Reset()
	sp := StartRoot("flip")
	SetEnabled(false)
	sp.End()
	if len(Collect()) != 1 {
		t.Fatal("span started while enabled was lost at End")
	}
}

// TestDroppedGaugeMirror: once the arena overflows, the drop count is
// visible as a telemetry gauge and rendered on /metricsz, so silently
// truncated traces are observable.
func TestDroppedGaugeMirror(t *testing.T) {
	restoreTel := telemetry.SetEnabled(true)
	defer restoreTel()
	Reset()
	defer Reset()

	// Fill one stripe past its capacity; the overflow increments the
	// arena counter and mirrors it into the gauge.
	const over = 7
	for i := 0; i < stripeCap+over; i++ {
		record(Event{TID: 1})
	}
	if d := Dropped(); d != over {
		t.Fatalf("Dropped() = %d, want %d", d, over)
	}
	if v := telemetry.GetGauge("trace.dropped").Value(); v != over {
		t.Fatalf("trace.dropped gauge = %d, want %d", v, over)
	}

	rec := httptest.NewRecorder()
	telemetry.MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if !strings.Contains(rec.Body.String(), "trace_dropped 7") {
		t.Fatalf("/metricsz missing trace_dropped:\n%s", rec.Body.String())
	}

	// Reset clears both the arena counter and the mirror.
	Reset()
	if v := telemetry.GetGauge("trace.dropped").Value(); v != 0 {
		t.Fatalf("gauge after Reset = %d, want 0", v)
	}
}
