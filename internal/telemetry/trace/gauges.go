package trace

import "repro/internal/telemetry"

// telDropped mirrors the arena's drop counter into the telemetry
// registry, so a /metricsz scrape shows trace_dropped > 0 whenever the
// Chrome trace export is silently missing events. The handle is
// nil-safe and gated on the telemetry switch, so the mirror costs one
// atomic load on the (already rare) overflow path.
var telDropped = telemetry.GetGauge("trace.dropped")
