package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestEnabledSwitch pins the core contract: nothing records while the
// switch is off, everything records while it is on.
func TestEnabledSwitch(t *testing.T) {
	defer SetEnabled(false)()
	c := GetCounter("test.switch.counter")
	g := GetGauge("test.switch.gauge")
	h := GetHistogram("test.switch.hist")

	c.Add(5)
	g.Set(7)
	h.Observe(11)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatalf("disabled metrics recorded: counter=%d gauge=%d hist=%d",
			c.Value(), g.Value(), h.Count())
	}

	SetEnabled(true)
	c.Add(5)
	g.Set(7)
	h.Observe(11)
	if c.Value() != 5 || g.Value() != 7 || h.Count() != 1 {
		t.Fatalf("enabled metrics did not record: counter=%d gauge=%d hist=%d",
			c.Value(), g.Value(), h.Count())
	}
}

// TestSetEnabledRestore checks the returned closure restores the prior
// state, nested or not.
func TestSetEnabledRestore(t *testing.T) {
	defer SetEnabled(false)()
	restore := SetEnabled(true)
	if !On() {
		t.Fatal("SetEnabled(true) did not enable")
	}
	restore()
	if On() {
		t.Fatal("restore did not disable")
	}
}

// TestCounterConcurrent hammers one counter from many goroutines and
// expects an exact total.
func TestCounterConcurrent(t *testing.T) {
	defer SetEnabled(true)()
	c := GetCounter("test.concurrent.counter")
	c.reset()
	const workers, per = 16, 10000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Fatalf("counter = %d, want %d", got, workers*per)
	}
}

// TestHistogramConcurrent hammers one histogram from many goroutines
// and checks every accumulated invariant afterwards.
func TestHistogramConcurrent(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogram("test.concurrent.hist")
	h.reset()
	const workers, per = 16, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*per + i + 1))
			}
		}(w)
	}
	wg.Wait()

	s := h.snapshot()
	const n = workers * per
	if s.Count != n {
		t.Fatalf("count = %d, want %d", s.Count, n)
	}
	if want := int64(n) * (n + 1) / 2; s.Sum != want {
		t.Fatalf("sum = %d, want %d", s.Sum, want)
	}
	if s.Min != 1 || s.Max != n {
		t.Fatalf("min/max = %d/%d, want 1/%d", s.Min, s.Max, n)
	}
	var bucketTotal int64
	for i := range h.buckets {
		bucketTotal += h.buckets[i].Load()
	}
	if bucketTotal != n {
		t.Fatalf("bucket total = %d, want %d", bucketTotal, n)
	}
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Fatalf("quantiles not monotone: min=%d p50=%d p95=%d p99=%d max=%d",
			s.Min, s.P50, s.P95, s.P99, s.Max)
	}
}

// TestHistogramQuantilesSingleValue pins the exact case: a degenerate
// distribution must report its one value at every quantile.
func TestHistogramQuantilesSingleValue(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogram("test.quantile.single")
	h.reset()
	for i := 0; i < 100; i++ {
		h.Observe(42)
	}
	s := h.snapshot()
	if s.P50 != 42 || s.P95 != 42 || s.P99 != 42 {
		t.Fatalf("quantiles = %d/%d/%d, want 42/42/42", s.P50, s.P95, s.P99)
	}
	if s.Mean != 42 {
		t.Fatalf("mean = %g, want 42", s.Mean)
	}
}

// TestHistogramQuantileSpread checks a uniform spread lands each
// quantile within its bucket's power-of-two resolution.
func TestHistogramQuantileSpread(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogram("test.quantile.spread")
	h.reset()
	for v := int64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	s := h.snapshot()
	// Log-bucketed estimates: the true p50 is 500, resolvable only to
	// its bucket [256, 511]; p99 is 990, bucket [512, 1023] clamped to
	// the observed max.
	if s.P50 < 256 || s.P50 > 511 {
		t.Fatalf("p50 = %d, want within [256, 511]", s.P50)
	}
	if s.P99 < 512 || s.P99 > 1000 {
		t.Fatalf("p99 = %d, want within [512, 1000]", s.P99)
	}
}

// TestHistogramQuantileBucketBoundary pins interpolation at the exact
// power-of-two bucket edges. 1023 and 1024 straddle a boundary: they
// land in adjacent buckets, and in-bucket interpolation would report
// 1023's bucket ceiling (1023) and 1024's ceiling (2047) — so the
// quantiles must come back clamped to the observed [1023, 1024]
// envelope, not the raw bucket geometry.
func TestHistogramQuantileBucketBoundary(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogram("test.quantile.boundary")
	h.reset()
	h.Observe(1023)
	h.Observe(1024)
	s := h.snapshot()
	if s.P50 != 1023 {
		t.Errorf("p50 = %d, want 1023 (lower boundary value)", s.P50)
	}
	if s.P99 != 1024 {
		t.Errorf("p99 = %d, want 1024 (interpolated 2047 must clamp to max)", s.P99)
	}
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("quantiles out of order: min=%d p50=%d p95=%d p99=%d max=%d",
			s.Min, s.P50, s.P95, s.P99, s.Max)
	}
}

// TestHistogramQuantileTwoBucketSplit pins the rank walk across
// buckets for a bimodal split of exact powers of two: the median
// resolves to the lower mode's bucket, the tail quantiles to the
// upper mode clamped at the observed max, and the p50<=p95<=p99 chain
// holds exactly.
func TestHistogramQuantileTwoBucketSplit(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogram("test.quantile.twobucket")
	h.reset()
	for i := 0; i < 50; i++ {
		h.Observe(1024)
		h.Observe(2048)
	}
	s := h.snapshot()
	if s.P50 < 1024 || s.P50 > 2047 {
		t.Errorf("p50 = %d, want inside 1024's bucket [1024, 2047]", s.P50)
	}
	if s.P95 != 2048 || s.P99 != 2048 {
		t.Errorf("p95/p99 = %d/%d, want 2048/2048 (clamped to observed max)", s.P95, s.P99)
	}
	if !(s.Min <= s.P50 && s.P50 <= s.P95 && s.P95 <= s.P99 && s.P99 <= s.Max) {
		t.Errorf("quantiles out of order: min=%d p50=%d p95=%d p99=%d max=%d",
			s.Min, s.P50, s.P95, s.P99, s.Max)
	}
}

// TestHistogramNegativeClamps checks negative observations clamp to
// zero instead of corrupting the bucket index.
func TestHistogramNegativeClamps(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogram("test.negative")
	h.reset()
	h.Observe(-5)
	s := h.snapshot()
	if s.Count != 1 || s.Min != 0 || s.Sum != 0 {
		t.Fatalf("negative observation mishandled: %+v", s)
	}
}

// TestSnapshotUnderFire captures while recorders run; the race detector
// guards the memory model, and the final capture must be exact.
func TestSnapshotUnderFire(t *testing.T) {
	defer SetEnabled(true)()
	c := GetCounter("test.fire.counter")
	h := GetHistogram("test.fire.hist")
	c.reset()
	h.reset()
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var capWg sync.WaitGroup
	capWg.Add(1)
	go func() {
		defer capWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				s := Capture()
				for _, hs := range s.Histograms {
					if hs.Count < 0 || hs.Sum < 0 {
						panic("negative snapshot")
					}
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				h.Observe(int64(i))
			}
		}()
	}
	wg.Wait()
	close(stop)
	capWg.Wait()
	if c.Value() != workers*per || h.Count() != workers*per {
		t.Fatalf("final totals %d/%d, want %d", c.Value(), h.Count(), workers*per)
	}
}

// TestTelemetryDisabledOverhead guards the Enabled contract: the
// disabled record path allocates nothing — not for counters, gauges,
// histograms, or spans.
func TestTelemetryDisabledOverhead(t *testing.T) {
	defer SetEnabled(false)()
	c := GetCounter("test.overhead.counter")
	g := GetGauge("test.overhead.gauge")
	h := GetHistogram("test.overhead.hist")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Add(3)
		c.Inc()
		g.Set(9)
		h.Observe(123)
		sp := StartSpan("test.overhead.span")
		sp.End()
	})
	if allocs != 0 {
		t.Fatalf("disabled telemetry allocates %.1f objects per op, want 0", allocs)
	}
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("disabled telemetry recorded values")
	}
}

// TestEnabledCounterNoAlloc: the enabled counter/histogram paths are
// atomic-only and must not allocate either.
func TestEnabledCounterNoAlloc(t *testing.T) {
	defer SetEnabled(true)()
	c := GetCounter("test.enabledalloc.counter")
	h := GetHistogram("test.enabledalloc.hist")
	allocs := testing.AllocsPerRun(1000, func() {
		c.Inc()
		h.Observe(777)
	})
	if allocs != 0 {
		t.Fatalf("enabled counter/histogram allocate %.1f objects per op, want 0", allocs)
	}
}

// TestRegistryIdentity: the registry hands out one identity per name,
// and Reset preserves it.
func TestRegistryIdentity(t *testing.T) {
	c1 := GetCounter("test.identity")
	c2 := GetCounter("test.identity")
	if c1 != c2 {
		t.Fatal("GetCounter returned two identities for one name")
	}
	defer SetEnabled(true)()
	c1.Add(3)
	Reset()
	if c1.Value() != 0 {
		t.Fatal("Reset did not zero the counter")
	}
	if GetCounter("test.identity") != c1 {
		t.Fatal("Reset changed the counter's identity")
	}
	h := GetHistogram("test.identity.hist")
	h.Observe(9)
	Reset()
	if h.Count() != 0 {
		t.Fatal("Reset did not zero the histogram")
	}
	if h.min.Load() != math.MaxInt64 {
		t.Fatal("Reset did not restore the histogram min sentinel")
	}
}

// TestNilSafety: nil metric handles and the zero Span are no-ops.
func TestNilSafety(t *testing.T) {
	defer SetEnabled(true)()
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Add(1)
	c.Inc()
	g.Set(1)
	h.Observe(1)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Fatal("nil metrics returned nonzero values")
	}
	var s Span
	s.End() // must not panic
}

// TestSpanRecords: a span lands one observation in its histogram.
func TestSpanRecords(t *testing.T) {
	defer SetEnabled(true)()
	h := GetHistogram("test.span.hist")
	h.reset()
	sp := StartSpan("test.span.hist")
	sp.End()
	if h.Count() != 1 {
		t.Fatalf("span recorded %d observations, want 1", h.Count())
	}
}

// TestSnapshotSorted: Capture returns metrics in lexical name order so
// renders are deterministic.
func TestSnapshotSorted(t *testing.T) {
	GetCounter("test.sort.b")
	GetCounter("test.sort.a")
	s := Capture()
	for i := 1; i < len(s.Counters); i++ {
		if s.Counters[i-1].Name > s.Counters[i].Name {
			t.Fatalf("counters out of order: %q after %q",
				s.Counters[i].Name, s.Counters[i-1].Name)
		}
	}
}

// TestWriteJSONRoundTrip: the JSON render parses back into the same
// totals.
func TestWriteJSONRoundTrip(t *testing.T) {
	defer SetEnabled(true)()
	c := GetCounter("test.json.counter")
	c.reset()
	c.Add(17)
	var buf bytes.Buffer
	if err := Capture().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var parsed Snapshot
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("JSON render does not parse: %v", err)
	}
	found := false
	for _, cs := range parsed.Counters {
		if cs.Name == "test.json.counter" {
			found = true
			if cs.Value != 17 {
				t.Fatalf("round-tripped value = %d, want 17", cs.Value)
			}
		}
	}
	if !found {
		t.Fatal("counter missing from JSON render")
	}
}

// TestWriteText: the text render mentions each section and metric name.
func TestWriteText(t *testing.T) {
	defer SetEnabled(true)()
	GetCounter("test.text.counter").Add(1)
	GetHistogram("test.text.hist").Observe(1000)
	var buf bytes.Buffer
	if err := Capture().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"telemetry (enabled)", "test.text.counter", "test.text.hist", "p95="} {
		if !strings.Contains(out, want) {
			t.Fatalf("text render missing %q:\n%s", want, out)
		}
	}
}

// TestHandler: /telemetryz serves the Capture as JSON.
func TestHandler(t *testing.T) {
	defer SetEnabled(true)()
	GetCounter("test.handler.counter").Add(2)
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/telemetryz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q", ct)
	}
	var parsed Snapshot
	if err := json.Unmarshal(rec.Body.Bytes(), &parsed); err != nil {
		t.Fatalf("handler body does not parse: %v", err)
	}
	if !parsed.Enabled {
		t.Fatal("handler snapshot reports disabled")
	}
}

// TestBucketOf pins the bucket mapping at its edges.
func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {1023, 10}, {1024, 11},
		{math.MaxInt64, 63},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}
