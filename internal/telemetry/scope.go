package telemetry

import (
	"context"
	"sync"
)

// Scope attributes recordings to one unit of work — the accordiond
// server opens one per job — so concurrent jobs can each report their
// own cache hits and stage timings instead of reading the shared
// process-wide totals. A scoped recording always lands in the global
// metric first (the process totals stay authoritative) and then
// tallies into the scope, so for any counter the global delta over an
// interval equals the sum of the scoped tallies plus whatever
// unscoped call sites recorded.
//
// Scope methods are safe for concurrent use: the work a scope covers
// typically fans out across the parallel pool's goroutines. A nil
// *Scope is a valid no-op receiver everywhere, so unscoped callers
// (the CLI, tests) pay nothing.
type Scope struct {
	mu       sync.Mutex
	counters map[string]int64
	hists    map[string]*scopeHist
}

// scopeHist mirrors a Histogram's accumulation for one scope.
type scopeHist struct {
	unit   string
	count  int64
	sum    int64
	min    int64
	max    int64
	counts [histBuckets]int64
}

// NewScope returns an empty scope ready to receive attributions.
func NewScope() *Scope { return &Scope{} }

// addCounter tallies n against name inside the scope.
func (sc *Scope) addCounter(name string, n int64) {
	sc.mu.Lock()
	if sc.counters == nil {
		sc.counters = make(map[string]int64)
	}
	sc.counters[name] += n
	sc.mu.Unlock()
}

// observe tallies one histogram observation inside the scope.
func (sc *Scope) observe(name, unit string, v int64) {
	if v < 0 {
		v = 0
	}
	sc.mu.Lock()
	if sc.hists == nil {
		sc.hists = make(map[string]*scopeHist)
	}
	h, ok := sc.hists[name]
	if !ok {
		h = &scopeHist{unit: unit}
		sc.hists[name] = h
	}
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
	h.counts[bucketOf(v)]++
	sc.mu.Unlock()
}

// CounterValue returns the scope's tally for the named counter.
// Nil-safe.
func (sc *Scope) CounterValue(name string) int64 {
	if sc == nil {
		return 0
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	return sc.counters[name]
}

// Counters returns the scope's counter tallies sorted by name.
// Nil-safe.
func (sc *Scope) Counters() []CounterSnapshot {
	if sc == nil {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]CounterSnapshot, 0, len(sc.counters))
	for _, n := range sortedNames(sc.counters) {
		out = append(out, CounterSnapshot{Name: n, Value: sc.counters[n]})
	}
	return out
}

// Histograms returns the scope's histogram tallies sorted by name,
// with the same interpolated quantiles a registry snapshot carries.
// Nil-safe.
func (sc *Scope) Histograms() []HistogramSnapshot {
	if sc == nil {
		return nil
	}
	sc.mu.Lock()
	defer sc.mu.Unlock()
	out := make([]HistogramSnapshot, 0, len(sc.hists))
	for _, n := range sortedNames(sc.hists) {
		h := sc.hists[n]
		s := HistogramSnapshot{
			Name:    n,
			Unit:    h.unit,
			Count:   h.count,
			Sum:     h.sum,
			Min:     h.min,
			Max:     h.max,
			Buckets: h.counts,
		}
		if h.count > 0 {
			s.Mean = float64(h.sum) / float64(h.count)
			counts := h.counts
			s.P50 = quantile(&counts, h.count, 0.50, h.min, h.max)
			s.P95 = quantile(&counts, h.count, 0.95, h.min, h.max)
			s.P99 = quantile(&counts, h.count, 0.99, h.min, h.max)
		}
		out = append(out, s)
	}
	return out
}

// AddScoped increments the counter globally and tallies the increment
// into sc. Both receiver and scope are nil-safe; a disabled switch
// records nowhere.
func (c *Counter) AddScoped(sc *Scope, n int64) {
	if c == nil || !enabled.Load() {
		return
	}
	c.v.Add(n)
	if sc != nil {
		sc.addCounter(c.name, n)
	}
}

// IncScoped is AddScoped by one.
func (c *Counter) IncScoped(sc *Scope) { c.AddScoped(sc, 1) }

// ObserveScoped records the value globally and tallies it into sc.
// Both receiver and scope are nil-safe; a disabled switch records
// nowhere.
func (h *Histogram) ObserveScoped(sc *Scope, v int64) {
	if h == nil || !enabled.Load() {
		return
	}
	h.observe(v)
	if sc != nil {
		sc.observe(h.name, h.unit, v)
	}
}

// scopeKey is the context key carrying the active scope.
type scopeKey struct{}

// NewScopeContext returns a context carrying sc, for threading the
// active job's scope through the call tree (the memo caches resolve it
// in DoCtx). A nil scope returns ctx unchanged.
func NewScopeContext(ctx context.Context, sc *Scope) context.Context {
	if sc == nil {
		return ctx
	}
	return context.WithValue(ctx, scopeKey{}, sc)
}

// ScopeFrom returns the scope ctx carries, or nil. A nil scope is a
// valid no-op receiver, so callers chain without guards.
func ScopeFrom(ctx context.Context) *Scope {
	if ctx == nil {
		return nil
	}
	sc, _ := ctx.Value(scopeKey{}).(*Scope)
	return sc
}

// Sub returns the per-metric delta cur − prev, the windowless way to
// answer "what happened between these two captures": fleet pollers and
// per-interval controllers diff snapshots instead of tracking lifetime
// totals. Counters subtract and clamp at the current value when the
// previous reading is larger (a Reset between captures restarts the
// count, so the delta since the reset is everything current). Gauges
// are levels, not totals — the current reading carries over. Histogram
// deltas subtract bucket-by-bucket and recompute the quantiles over
// only the new observations; a shrunken count likewise reads as a
// reset. Windows are already time-local deltas and carry over as-is.
func (s Snapshot) Sub(prev Snapshot) Snapshot {
	out := Snapshot{
		Enabled:    s.Enabled,
		Counters:   make([]CounterSnapshot, len(s.Counters)),
		Gauges:     append([]GaugeSnapshot(nil), s.Gauges...),
		Histograms: make([]HistogramSnapshot, len(s.Histograms)),
		Windows:    append([]WindowSnapshot(nil), s.Windows...),
	}
	prevC := make(map[string]int64, len(prev.Counters))
	for _, c := range prev.Counters {
		prevC[c.Name] = c.Value
	}
	for i, c := range s.Counters {
		d := c.Value - prevC[c.Name]
		if d < 0 {
			d = c.Value
		}
		out.Counters[i] = CounterSnapshot{Name: c.Name, Value: d}
	}
	prevH := make(map[string]HistogramSnapshot, len(prev.Histograms))
	for _, h := range prev.Histograms {
		prevH[h.Name] = h
	}
	for i, h := range s.Histograms {
		out.Histograms[i] = subHistogram(h, prevH[h.Name])
	}
	return out
}

// subHistogram computes one histogram's delta. The missing-prev case
// falls out naturally: a zero HistogramSnapshot subtracts nothing.
func subHistogram(cur, prev HistogramSnapshot) HistogramSnapshot {
	if cur.Count < prev.Count {
		// Reset between captures: everything current is new.
		return cur
	}
	d := HistogramSnapshot{
		Name:  cur.Name,
		Unit:  cur.Unit,
		Count: cur.Count - prev.Count,
		Sum:   cur.Sum - prev.Sum,
	}
	if d.Count == 0 {
		// Empty delta: no new observations, so no distribution. Sum
		// can only be stale skew; clamp it.
		d.Sum = 0
		return d
	}
	var total int64
	for i := range cur.Buckets {
		db := cur.Buckets[i] - prev.Buckets[i]
		if db < 0 {
			// Concurrent-recording skew between the bucket reads of
			// the two captures; a bucket never truly shrinks.
			db = 0
		}
		d.Buckets[i] = db
		total += db
	}
	if d.Sum < 0 {
		d.Sum = 0
	}
	d.Mean = float64(d.Sum) / float64(d.Count)
	// The delta's envelope is not recoverable from the moments; the
	// current envelope is the tightest safe clamp.
	d.Min = cur.Min
	d.Max = cur.Max
	if total > 0 {
		d.P50 = quantile(&d.Buckets, total, 0.50, d.Min, d.Max)
		d.P95 = quantile(&d.Buckets, total, 0.95, d.Min, d.Max)
		d.P99 = quantile(&d.Buckets, total, 0.99, d.Min, d.Max)
	}
	return d
}
