package telemetry

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestMetricsHandler: /metricsz serves the snapshot in Prometheus text
// exposition format with the right content type.
func TestMetricsHandler(t *testing.T) {
	defer SetEnabled(true)()
	GetCounter("test.prom.counter").Add(4)
	GetGauge("test.prom.gauge").Set(11)
	GetHistogramWithUnit("test.prom.hist", "chips").Observe(100)

	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != promContentType {
		t.Fatalf("content-type = %q, want %q", ct, promContentType)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"telemetry_enabled 1",
		"# TYPE test_prom_counter counter",
		"test_prom_counter 4",
		"# TYPE test_prom_gauge gauge",
		"test_prom_gauge 11",
		"# TYPE test_prom_hist summary",
		`test_prom_hist{unit="chips",quantile="0.5"}`,
		`test_prom_hist_count{unit="chips"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metricsz body missing %q", want)
		}
	}
}

// TestMetricsHandlerDisabled: the endpoint keeps serving while
// telemetry is off and says so.
func TestMetricsHandlerDisabled(t *testing.T) {
	defer SetEnabled(false)()
	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200 while disabled", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), "telemetry_enabled 0") {
		t.Error("/metricsz did not report telemetry_enabled 0 while disabled")
	}
}

// TestTelemetryzHandlerDisabled: /telemetryz also serves while
// disabled, with enabled=false in the JSON document.
func TestTelemetryzHandlerDisabled(t *testing.T) {
	defer SetEnabled(false)()
	rec := httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/telemetryz", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d, want 200 while disabled", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("content-type = %q, want application/json", ct)
	}
	if !strings.Contains(rec.Body.String(), `"enabled": false`) {
		t.Error("/telemetryz did not report enabled: false while disabled")
	}
}

// TestPromName pins the sanitizer at its edges.
func TestPromName(t *testing.T) {
	cases := map[string]string{
		"parallel.tasks.submitted": "parallel_tasks_submitted",
		"cache.rms.Reference.hits": "cache_rms_Reference_hits",
		"9lives":                   "_9lives",
		"a-b c":                    "a_b_c",
	}
	for in, want := range cases {
		if got := promName(in); got != want {
			t.Errorf("promName(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestEndpointCacheHeaders: both scrape endpoints must disable caching
// and declare their content types, so a proxy never serves a stale
// snapshot.
func TestEndpointCacheHeaders(t *testing.T) {
	rec := httptest.NewRecorder()
	MetricsHandler().ServeHTTP(rec, httptest.NewRequest("GET", "/metricsz", nil))
	if cc := rec.Header().Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("/metricsz Cache-Control = %q, want no-cache", cc)
	}
	if ct := rec.Header().Get("Content-Type"); ct != promContentType {
		t.Errorf("/metricsz Content-Type = %q", ct)
	}

	rec = httptest.NewRecorder()
	Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/telemetryz", nil))
	if cc := rec.Header().Get("Cache-Control"); cc != "no-cache" {
		t.Errorf("/telemetryz Cache-Control = %q, want no-cache", cc)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Errorf("/telemetryz Content-Type = %q", ct)
	}
}
