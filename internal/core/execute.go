package core

import (
	"fmt"

	"repro/internal/fault"
	"repro/internal/rms"
)

// Execution is the end-to-end outcome of running a benchmark under one
// solved operating point: the CC/DC runtime's virtual makespan for the
// data-parallel phase and the actually measured output quality, both
// directly comparable against the operating point's predictions.
type Execution struct {
	Op OperatingPoint
	// VirtualTime is the runtime-simulated wall time of the parallel
	// phase in seconds (CC polling overhead included, the CC-serial
	// merge excluded).
	VirtualTime float64
	// MeasuredRelQuality is the executed kernel's quality relative to
	// the error-free default-size baseline — the measured counterpart
	// of Op.RelQuality.
	MeasuredRelQuality float64
	// Plan is the fault plan speculation implied (none for Safe).
	Plan fault.Plan
	// Stats carries the CC/DC runtime bookkeeping.
	Stats RunStats
}

// Execute runs the benchmark under the operating point: the kernel
// executes for real (with the Drop plan the Speculative flavor implies)
// to measure output quality, and the CC/DC runtime simulates the
// parallel phase's timing with Op.N data cores at Op.Freq. It is the
// closed loop behind the solver's predictions — tests assert both
// agree.
func (s *Solver) Execute(op OperatingPoint, seed int64) (Execution, error) {
	if op.Benchmark != s.Bench.Name() {
		return Execution{}, fmt.Errorf("core: operating point for %s executed on %s", op.Benchmark, s.Bench.Name())
	}
	if op.N < 1 || op.Freq <= 0 {
		return Execution{}, fmt.Errorf("core: degenerate operating point (N=%d, f=%g)", op.N, op.Freq)
	}

	// The error plan the flavor implies: Safe runs error-free; under
	// Speculative every infected task sees ~one timing error (Perr=1/e),
	// which the paper models as the Drop scenario its quality front was
	// measured with.
	var plan fault.Plan
	if op.Flavor == Speculative {
		plan = fault.DropQuarter()
		if s.Quality.SpeculativeFront() == s.Quality.Half {
			plan = fault.DropHalf()
		}
	}

	// 1. Algorithmic execution: the real kernel at the operating
	//    problem size under the implied plan.
	res, err := s.Bench.Run(op.Input, s.Bench.DefaultThreads(), plan, seed)
	if err != nil {
		return Execution{}, err
	}
	ref, err := rms.Reference(s.Bench, seed)
	if err != nil {
		return Execution{}, err
	}
	q, err := s.Bench.Quality(res, ref)
	if err != nil {
		return Execution{}, err
	}
	base := s.Quality.Default.At(1)
	relQ := 0.0
	if base > 0 {
		relQ = q / base
	}

	// 2. Timing execution: the CC/DC runtime with Op.N data cores at
	//    the common frequency. Task work is expressed in cycles so that
	//    the analytic model's effective CPI (memory stalls included)
	//    carries over.
	const rounds = 4
	numTasks := rounds * op.N
	parCycles := op.ProblemSize * s.profile.OpsPerUnit * (1 - s.profile.SerialFrac) / s.profile.IPC(op.Freq)
	rt, err := NewRuntime(RuntimeConfig{
		Org:       HomogeneousSpatial,
		NumCC:     1 + op.N/32,
		NumDC:     op.N,
		DataFreq:  op.Freq,
		CtrlFreq:  s.fCC,
		TaskOps:   parCycles / float64(numTasks),
		NumTasks:  numTasks,
		PollEvery: op.ExecTime / 1000,
		Watchdog:  op.ExecTime,
	})
	if err != nil {
		return Execution{}, err
	}
	shared := NewSharedRegion([]float64{op.ProblemSize})
	stats, err := rt.Run(shared.View(), func(task int, in ReadOnlyView) float64 {
		return in.At(0)
	})
	if err != nil {
		return Execution{}, err
	}
	return Execution{
		Op:                 op,
		VirtualTime:        stats.Time,
		MeasuredRelQuality: relQ,
		Plan:               plan,
		Stats:              stats,
	}, nil
}
