// Package core implements Accordion itself: the framework of Section 3
// that designates the problem size as the knob trading the degree of
// parallelism against the degree of vulnerability to variation, the
// operating modes of Table 1, the iso-execution-time operating-point
// solver behind Figures 6 and 7, and the decoupled control-core /
// data-core architecture of Section 4.
package core

import "fmt"

// Mode is the problem-size accord of Table 1.
type Mode int

// Accordion basic modes of operation.
const (
	// Still keeps the problem size intact (strong scaling): NNTV must
	// grow by at least fSTV/fNTV to retain the STV execution time.
	Still Mode = iota
	// Compress shrinks the problem size so the low NTV frequency can
	// hold the STV execution time at a lower core count — at the price
	// of output quality. The only mode where NNTV may stay below NSTV.
	Compress
	// Expand grows the problem size; N must then grow by more than the
	// problem does so per-core work still shrinks by fNTV/fSTV.
	Expand
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case Still:
		return "Still"
	case Compress:
		return "Compress"
	case Expand:
		return "Expand"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// ModeOf classifies a relative problem size into its Table 1 mode.
func ModeOf(problemSize float64) Mode {
	const tol = 1e-9
	switch {
	case problemSize < 1-tol:
		return Compress
	case problemSize > 1+tol:
		return Expand
	}
	return Still
}

// Flavor selects how fNTV relates to the safe frequency (Table 1's
// second axis).
type Flavor int

// Accordion mode flavors.
const (
	// Safe caps fNTV at fNTV,Safe, excluding variation-induced timing
	// errors entirely.
	Safe Flavor = iota
	// Speculative lets fNTV exceed fNTV,Safe, embracing timing errors
	// the application's fault tolerance absorbs.
	Speculative
)

// String names the flavor.
func (f Flavor) String() string {
	if f == Safe {
		return "Safe"
	}
	return "Speculative"
}

// Constraints captures Table 1's per-mode relations so they can be
// checked mechanically against solver output.
type Constraints struct {
	ProblemVsSTV  int  // -1 smaller, 0 equal, +1 larger (vs STV problem size)
	NMayShrink    bool // whether NNTV < NSTV is admissible
	QualityAtMost bool // whether QNTV <= QSTV is forced by the mode itself
}

// TableOne returns the paper's Table 1 row for a mode.
func TableOne(m Mode) Constraints {
	switch m {
	case Compress:
		return Constraints{ProblemVsSTV: -1, NMayShrink: true, QualityAtMost: true}
	case Expand:
		return Constraints{ProblemVsSTV: +1, NMayShrink: false, QualityAtMost: false}
	default:
		return Constraints{ProblemVsSTV: 0, NMayShrink: false, QualityAtMost: true}
	}
}

// RequiredN returns the paper's Section 3.2 closed-form lower bound on
// the NTV core count for iso-execution time at a given problem size:
// NNTV >= NSTV * (fSTV / fNTV) * (ProblemSizeNTV / ProblemSizeSTV),
// i.e. per-core work must shrink by fNTV/fSTV. The bound ignores the
// memory wall (fixed-nanosecond misses cost fewer cycles at NTV), so
// the solver's N may undercut it; it can never exceed it by more than
// the IPC advantage.
func RequiredN(nSTV int, fSTV, fNTV, problemSize float64) float64 {
	if fNTV <= 0 {
		return 0
	}
	return float64(nSTV) * fSTV / fNTV * problemSize
}
