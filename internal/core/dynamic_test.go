package core

import (
	"math"
	"testing"

	"repro/internal/chip"
	"repro/internal/power"
)

func testController(t *testing.T, rate float64) *Controller {
	t.Helper()
	ch, err := chip.New(chip.DefaultConfig(), 2014)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(ch, power.NewModel(ch), DefaultDrift(), rate)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestDriftModelProperties(t *testing.T) {
	d := DefaultDrift()
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deterministic.
	if d.Shift(5, 10) != d.Shift(5, 10) {
		t.Fatal("drift not deterministic")
	}
	// Bounded by amplitude + aging.
	for core := 0; core < 20; core++ {
		for e := 0; e < 100; e++ {
			s := d.Shift(core, e)
			bound := d.Amplitude + d.AgingPerEpoch*float64(e) + 1e-12
			if math.Abs(s) > bound {
				t.Fatalf("shift %g exceeds bound %g", s, bound)
			}
		}
	}
	// Aging pushes the mean up over time.
	var early, late float64
	for core := 0; core < 50; core++ {
		early += d.Shift(core, 0)
		late += d.Shift(core, 200)
	}
	if late <= early {
		t.Error("aging ramp missing")
	}
	// Different cores drift out of phase.
	same := true
	for e := 0; e < 10; e++ {
		if d.Shift(0, e) != d.Shift(1, e) {
			same = false
			break
		}
	}
	if same {
		t.Error("cores drift in lockstep")
	}
	// Zero drift shifts nothing.
	if (DriftModel{Period: 1}).Shift(3, 7) != 0 {
		t.Error("zero model shifts")
	}
	bad := DriftModel{Amplitude: -1, Period: 1}
	if err := bad.Validate(); err == nil {
		t.Error("negative amplitude accepted")
	}
}

func TestControllerValidation(t *testing.T) {
	ch, err := chip.New(chip.DefaultConfig(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewController(ch, power.NewModel(ch), DefaultDrift(), 0); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := NewController(ch, power.NewModel(ch), DriftModel{Period: 0}, 1); err == nil {
		t.Error("invalid drift accepted")
	}
	c := testController(t, 10)
	if _, err := c.Run(0, true); err == nil {
		t.Error("zero epochs accepted")
	}
	cHuge := testController(t, 10)
	cHuge.RequiredRate = 1e9
	if _, err := cHuge.Run(4, true); err == nil {
		t.Error("unreachable rate accepted")
	}
}

func TestStaticScheduleMissesUnderDrift(t *testing.T) {
	c := testController(t, 40) // ~80 cores at ~0.5 GHz
	static, err := c.Run(96, false)
	if err != nil {
		t.Fatal(err)
	}
	dynamic, err := c.Run(96, true)
	if err != nil {
		t.Fatal(err)
	}
	// Drift must actually bite the static schedule...
	if static.MissedEpochs == 0 {
		t.Error("drift never violated the static assignment; the experiment is vacuous")
	}
	// ...and the dynamic controller must recover most of it.
	if dynamic.MissedEpochs >= static.MissedEpochs {
		t.Errorf("dynamic (%d misses) not better than static (%d)", dynamic.MissedEpochs, static.MissedEpochs)
	}
	if dynamic.Reconfigs == 0 {
		t.Error("dynamic run never reconfigured")
	}
	if dynamic.TotalSwaps == 0 {
		t.Error("reconfigurations swapped no cores")
	}
	if len(static.Epochs) != 96 || len(dynamic.Epochs) != 96 {
		t.Fatal("wrong epoch counts")
	}
}

func TestControllerDeterminism(t *testing.T) {
	a, err := testController(t, 30).Run(48, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := testController(t, 30).Run(48, true)
	if err != nil {
		t.Fatal(err)
	}
	if a.MissedEpochs != b.MissedEpochs || a.Reconfigs != b.Reconfigs ||
		a.MeanPower != b.MeanPower {
		t.Error("controller runs differ")
	}
}

func TestPlanMinimality(t *testing.T) {
	c := testController(t, 30)
	vdd := c.Chip.VddNTV()
	set := c.plan(0, vdd)
	if set == nil {
		t.Fatal("no plan")
	}
	rate, _ := c.setRate(set, 0, vdd)
	if rate < c.RequiredRate {
		t.Errorf("plan rate %.1f below requirement %.1f", rate, c.RequiredRate)
	}
	// Dropping the slowest member must break the headroom'd target —
	// minimality of the prefix.
	if len(set) > 1 {
		smaller := set[:len(set)-1]
		r2, _ := c.setRate(smaller, 0, vdd)
		if r2 >= c.RequiredRate*(1+c.Headroom) {
			t.Error("plan is not minimal")
		}
	}
}
