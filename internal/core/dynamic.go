package core

import (
	"fmt"
	"math"

	"repro/internal/chip"
	"repro/internal/mathx"
	"repro/internal/power"
	"repro/internal/tech"
)

// This file implements the paper's Section 7 open question: dynamic
// orchestration of Accordion at runtime. The problem size cannot change
// mid-execution, but the number of cores assigned to computation can —
// and both the application phases and the hardware experience
// resiliency changes while running (temperature, supply droop, aging).
// DriftModel perturbs per-core threshold voltages over execution
// epochs; Controller re-solves the core assignment each epoch and is
// compared against the static assignment the paper evaluates.

// DriftModel is a smooth, deterministic per-core Vth drift over epochs:
// each core follows its own superposition of slow sinusoids (thermal
// time constants) plus a linear aging ramp.
type DriftModel struct {
	// Amplitude is the peak sinusoidal Vth excursion in volts
	// (e.g. 0.01 for a 10 mV thermal swing).
	Amplitude float64
	// AgingPerEpoch is the monotone Vth increase per epoch in volts
	// (BTI-style aging; 0 disables).
	AgingPerEpoch float64
	// Period is the dominant drift period in epochs.
	Period float64
	// Seed decorrelates the per-core phases.
	Seed int64
}

// DefaultDrift returns a mild thermal-plus-aging drift.
func DefaultDrift() DriftModel {
	return DriftModel{Amplitude: 0.010, AgingPerEpoch: 0.00012, Period: 24, Seed: 99}
}

// Validate reports the first implausible field, or nil.
func (d DriftModel) Validate() error {
	if d.Amplitude < 0 || d.AgingPerEpoch < 0 {
		return fmt.Errorf("core: negative drift magnitudes")
	}
	if d.Period <= 0 {
		return fmt.Errorf("core: drift period must be positive")
	}
	return nil
}

// corePhases derives core i's two sinusoid phases. They are a pure
// function of (Seed, core), but drawing them costs a fresh RNG — a 5 KB
// lagged-Fibonacci state — so callers evaluating many epochs cache them
// (the Controller keeps a per-core table).
func (d DriftModel) corePhases(core int) (phase, phase2 float64) {
	rng := mathx.NewRNG(mathx.SplitSeed(d.Seed, int64(core)))
	return rng.Uniform(0, 2*math.Pi), rng.Uniform(0, 2*math.Pi)
}

// shiftAt evaluates the drift at an epoch given precomputed phases.
func (d DriftModel) shiftAt(epoch int, phase, phase2 float64) float64 {
	w := 2 * math.Pi / d.Period
	t := float64(epoch)
	s := 0.7*math.Sin(w*t+phase) + 0.3*math.Sin(2.3*w*t+phase2)
	return d.Amplitude*s + d.AgingPerEpoch*t
}

// Shift returns core i's Vth shift in volts at the given epoch.
func (d DriftModel) Shift(core, epoch int) float64 {
	if d.Amplitude == 0 && d.AgingPerEpoch == 0 {
		return 0
	}
	phase, phase2 := d.corePhases(core)
	return d.shiftAt(epoch, phase, phase2)
}

// EpochOutcome records one epoch of a (static or dynamic) schedule.
type EpochOutcome struct {
	Epoch    int
	N        int
	Freq     float64 // GHz, common frequency of the engaged set
	Power    float64 // W
	MetRate  bool    // whether the epoch sustained the required rate
	Swapped  int     // cores changed versus the previous epoch
	Resolved bool    // whether the controller re-solved this epoch
}

// DynamicStats aggregates a run.
type DynamicStats struct {
	Epochs       []EpochOutcome
	MissedEpochs int
	Reconfigs    int
	TotalSwaps   int
	MeanPower    float64
	MeanFreq     float64
}

// Controller re-assigns cores across execution epochs to sustain a
// required aggregate compute rate under Vth drift.
type Controller struct {
	Chip  *chip.Chip
	Power *power.Model
	Drift DriftModel

	// RequiredRate is the aggregate effective GHz the engaged set must
	// sustain (N * f at the common frequency).
	RequiredRate float64
	// Perr is the per-cycle error-rate target (ErrorFreePerr for Safe).
	Perr float64
	// Headroom deflates the nominal safe frequency when planning, so a
	// small drift does not immediately violate the rate (0.05 = 5%).
	Headroom float64

	// phases caches each core's drift sinusoid phases; deriving them
	// costs a fresh 5 KB RNG per (core, epoch) otherwise. Controllers
	// are driven from one goroutine (Run is sequential), so the lazy
	// fill needs no locking.
	phases [][2]float64
	// cands is plan's reusable sort scratch.
	cands []coreFreq
}

// coreFreq pairs a core id with its drift-adjusted frequency; plan
// sorts a slice of these each epoch.
type coreFreq struct {
	id int
	f  float64
}

// shift returns core i's drift at an epoch through the phase cache,
// bit-identical to Drift.Shift.
func (c *Controller) shift(i, epoch int) float64 {
	if c.Drift.Amplitude == 0 && c.Drift.AgingPerEpoch == 0 {
		return 0
	}
	if c.phases == nil {
		c.phases = make([][2]float64, len(c.Chip.Cores))
		for core := range c.phases {
			p1, p2 := c.Drift.corePhases(core)
			c.phases[core] = [2]float64{p1, p2}
		}
	}
	return c.Drift.shiftAt(epoch, c.phases[i][0], c.phases[i][1])
}

// NewController validates and builds a controller.
func NewController(ch *chip.Chip, pm *power.Model, drift DriftModel, requiredRate float64) (*Controller, error) {
	if err := drift.Validate(); err != nil {
		return nil, err
	}
	if requiredRate <= 0 {
		return nil, fmt.Errorf("core: required rate must be positive")
	}
	return &Controller{
		Chip:  ch,
		Power: pm,
		Drift: drift,

		RequiredRate: requiredRate,
		Perr:         tech.ErrorFreePerr,
		Headroom:     0.08,
	}, nil
}

// coreFreqAt returns core i's frequency at the error-rate target with
// the epoch's drift applied.
func (c *Controller) coreFreqAt(i, epoch int, vdd float64) float64 {
	co := c.Chip.Cores[i]
	vth := co.Vth(c.Chip.Cfg.Tech) + c.shift(i, epoch)
	return c.Chip.Cfg.Tech.FreqAtPerr(vdd, vth, c.Perr) / (1 + co.LeffDev)
}

// setRate returns the aggregate rate (N * min f) of a core set at an
// epoch.
func (c *Controller) setRate(cores []int, epoch int, vdd float64) (rate, minF float64) {
	if len(cores) == 0 {
		return 0, 0
	}
	minF = math.Inf(1)
	for _, i := range cores {
		if f := c.coreFreqAt(i, epoch, vdd); f < minF {
			minF = f
		}
	}
	return float64(len(cores)) * minF, minF
}

// plan picks the cheapest engaged set sustaining the required rate at
// an epoch: cores sorted by drift-adjusted frequency, prefix-scanned
// for the smallest N whose N*minF clears the target with headroom.
func (c *Controller) plan(epoch int, vdd float64) []int {
	n := len(c.Chip.Cores)
	if cap(c.cands) < n {
		c.cands = make([]coreFreq, n)
	}
	cands := c.cands[:n]
	for i := 0; i < n; i++ {
		cands[i] = coreFreq{i, c.coreFreqAt(i, epoch, vdd)}
	}
	// Sort descending by frequency (insertion into sorted slice via
	// simple sort).
	for a := 1; a < n; a++ {
		for b := a; b > 0 && cands[b].f > cands[b-1].f; b-- {
			cands[b], cands[b-1] = cands[b-1], cands[b]
		}
	}
	target := c.RequiredRate * (1 + c.Headroom)
	best := []int(nil)
	for k := 1; k <= n; k++ {
		// The k fastest cores run at the k-th core's frequency.
		rate := float64(k) * cands[k-1].f
		if rate >= target {
			ids := make([]int, k)
			for j := 0; j < k; j++ {
				ids[j] = cands[j].id
			}
			best = ids
			break
		}
	}
	return best
}

// Run simulates epochs under drift. If dynamic is false the epoch-0
// assignment persists (the paper's static allocation); otherwise the
// controller re-plans whenever the current set misses the rate.
func (c *Controller) Run(epochs int, dynamic bool) (DynamicStats, error) {
	if epochs <= 0 {
		return DynamicStats{}, fmt.Errorf("core: need a positive epoch count")
	}
	vdd := c.Chip.VddNTV()
	current := c.plan(0, vdd)
	if current == nil {
		return DynamicStats{}, fmt.Errorf("core: required rate %.1f GHz unreachable on this chip", c.RequiredRate)
	}
	var stats DynamicStats
	prev := map[int]bool{}
	for _, id := range current {
		prev[id] = true
	}
	for e := 0; e < epochs; e++ {
		rate, minF := c.setRate(current, e, vdd)
		met := rate >= c.RequiredRate
		out := EpochOutcome{Epoch: e, N: len(current), Freq: minF, MetRate: met}
		if !met && dynamic {
			if replanned := c.plan(e, vdd); replanned != nil {
				current = replanned
				out.Resolved = true
				stats.Reconfigs++
				swaps := 0
				next := map[int]bool{}
				for _, id := range current {
					next[id] = true
					if !prev[id] {
						swaps++
					}
				}
				prev = next
				out.Swapped = swaps
				stats.TotalSwaps += swaps
				rate, minF = c.setRate(current, e, vdd)
				met = rate >= c.RequiredRate
				out.N, out.Freq, out.MetRate = len(current), minF, met
			}
		}
		if !met {
			stats.MissedEpochs++
		}
		out.Power = c.Power.Engaged(current, vdd, minF).Total()
		stats.MeanPower += out.Power
		stats.MeanFreq += minF
		stats.Epochs = append(stats.Epochs, out)
	}
	stats.MeanPower /= float64(epochs)
	stats.MeanFreq /= float64(epochs)
	return stats, nil
}
