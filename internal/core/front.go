package core

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/fault"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/rms"
	"repro/internal/telemetry/events"
	"repro/internal/telemetry/trace"
)

// QualityFront is the measured quality-vs-problem-size characteristic
// of one benchmark under one error scenario (Figures 2 and 4), usable
// as an interpolator by the operating-point solver.
type QualityFront struct {
	Benchmark string
	Scenario  string // "default", "drop-1/4", "drop-1/2"
	// Parallel arrays, ascending in problem size.
	Inputs       []float64
	ProblemSizes []float64
	Quality      []float64 // absolute quality vs the hyper-accurate reference
}

// At interpolates the absolute quality at a relative problem size.
func (f *QualityFront) At(problemSize float64) float64 {
	return mathx.InterpMonotone(f.ProblemSizes, f.Quality, problemSize)
}

// QualityModel bundles a benchmark's fronts for all three scenarios and
// answers the solver's quality queries.
type QualityModel struct {
	Benchmark string
	Default   *QualityFront
	Quarter   *QualityFront
	Half      *QualityFront
}

// MeasureFronts runs the benchmark across its sweep under Default,
// Drop 1/4 and Drop 1/2 and returns the three fronts. This is the
// expensive profiling step behind Figures 2 and 4; reuse the result.
// The (scenario, input) cells are independent deterministic executions,
// so they fan out on the parallel pool (bounded by parallel.Workers(),
// which the -j flag controls) with results collected by cell index —
// the model is identical to a sequential scan.
func MeasureFronts(b rms.Benchmark, seed int64) (*QualityModel, error) {
	return MeasureFrontsCtx(context.Background(), b, seed)
}

// MeasureFrontsCtx is MeasureFronts under the tracing tier: the whole
// measurement records a core.front span (child of ctx's span), the
// reference execution a core.front.reference stage, and every
// (scenario, input) profiling cell its own core.front.cell span under
// the pool worker that ran it.
func MeasureFrontsCtx(ctx context.Context, b rms.Benchmark, seed int64) (*QualityModel, error) {
	fsp := trace.StartFrom(ctx, "core.front").ArgStr("bench", b.Name())
	defer fsp.End()
	ctx = trace.NewContext(ctx, fsp)

	rsp := trace.Child(fsp, "core.front.reference")
	ref, err := rms.ReferenceCtx(ctx, b, seed)
	rsp.End()
	if err != nil {
		return nil, fmt.Errorf("core: reference run: %w", err)
	}
	scenarios := []struct {
		name string
		plan fault.Plan
	}{
		{"default", fault.Plan{}},
		{"drop-1/4", fault.DropQuarter()},
		{"drop-1/2", fault.DropHalf()},
	}
	sweep := b.Sweep()
	qualities, err := parallel.MapCtx(ctx, len(scenarios)*len(sweep), func(wctx context.Context, i int) (float64, error) {
		sc, in := scenarios[i/len(sweep)], sweep[i%len(sweep)]
		csp := trace.StartFrom(wctx, "core.front.cell").ArgStr("scenario", sc.name)
		defer csp.End()
		res, err := b.Run(in, b.DefaultThreads(), sc.plan, seed)
		if err != nil {
			return 0, fmt.Errorf("core: %s %s at input %g: %w", b.Name(), sc.name, in, err)
		}
		q, err := b.Quality(res, ref)
		if err == nil {
			events.New("quality.scored").
				Str("bench", b.Name()).
				Str("scenario", sc.name).
				Float("input", in).
				Float("quality", q).
				Emit()
		}
		return q, err
	})
	if err != nil {
		return nil, err
	}
	events.New("front.measured").
		Str("bench", b.Name()).
		Int("cells", int64(len(qualities))).
		Emit()

	qm := &QualityModel{Benchmark: b.Name()}
	for s, sc := range scenarios {
		front := &QualityFront{Benchmark: b.Name(), Scenario: sc.name}
		for p, in := range sweep {
			front.Inputs = append(front.Inputs, in)
			front.ProblemSizes = append(front.ProblemSizes, b.ProblemSize(in))
			front.Quality = append(front.Quality, qualities[s*len(sweep)+p])
		}
		ensureAscending(front)
		switch sc.name {
		case "default":
			qm.Default = front
		case "drop-1/4":
			qm.Quarter = front
		case "drop-1/2":
			qm.Half = front
		}
	}
	return qm, nil
}

func ensureAscending(f *QualityFront) {
	idx := make([]int, len(f.ProblemSizes))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return f.ProblemSizes[idx[a]] < f.ProblemSizes[idx[b]] })
	in := make([]float64, len(idx))
	ps := make([]float64, len(idx))
	q := make([]float64, len(idx))
	for k, i := range idx {
		in[k], ps[k], q[k] = f.Inputs[i], f.ProblemSizes[i], f.Quality[i]
	}
	f.Inputs, f.ProblemSizes, f.Quality = in, ps, q
}

// SpeculativeFront picks the error-scenario front Speculative modes pay
// for: Drop 1/4 normally, but the more conservative Drop 1/2 for
// benchmarks whose quality degradation under Drop 1/4 is negligible
// (Section 6.3). Negligible means losing less than negligibleLoss of
// the default-scenario quality at the default problem size.
func (qm *QualityModel) SpeculativeFront() *QualityFront {
	const negligibleLoss = 0.05
	qDef := qm.Default.At(1)
	if qDef <= 0 {
		return qm.Quarter
	}
	if qm.Quarter.At(1) >= (1-negligibleLoss)*qDef {
		return qm.Half
	}
	return qm.Quarter
}

// RelativeQuality returns QNTV/QSTV for an operating point: the quality
// of the scenario front at the operating problem size, normalized by
// the error-free quality at the default problem size (the STV
// baseline's quality).
func (qm *QualityModel) RelativeQuality(front *QualityFront, problemSize float64) float64 {
	base := qm.Default.At(1)
	if base == 0 {
		return 0
	}
	return front.At(problemSize) / base
}
