package core

import (
	"context"
	"fmt"
	"math"
	"sort"

	"repro/internal/chip"
	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/power"
	"repro/internal/rms"
	"repro/internal/sim"
	"repro/internal/tech"
	"repro/internal/telemetry/trace"
)

// OperatingPoint is one point of an iso-execution-time pareto front
// (Figures 6 and 7): a problem size together with the (N, f) that
// brings the NTV execution time to the STV execution time, and the
// resulting power, energy efficiency and quality — all also normalized
// to the STV baseline.
type OperatingPoint struct {
	Benchmark string
	Mode      Mode
	Flavor    Flavor

	Input       float64 // the Accordion input value
	ProblemSize float64 // relative to the default problem size

	N        int     // NNTV: cores engaged
	Freq     float64 // GHz: the common data-core frequency
	Perr     float64 // per-cycle timing-error probability at Freq
	ExecTime float64 // seconds
	Power    float64 // W

	// Normalized coordinates of Figures 6 and 7.
	RelN           float64 // NNTV / NSTV
	RelPower       float64 // PowerNTV / PowerSTV
	RelProblemSize float64 // = ProblemSize
	RelQuality     float64 // QNTV / QSTV
	RelMIPSPerWatt float64 // (MIPS/W)NTV / (MIPS/W)STV

	Feasible bool
	Limit    string // "", "cores", "power", "quality"
}

// Solver extracts iso-execution-time operating points for one benchmark
// on one variation-afflicted chip sample.
type Solver struct {
	Chip    *chip.Chip
	Power   *power.Model
	Bench   rms.Benchmark
	Quality *QualityModel

	// QualityFloor marks points with RelQuality below it as
	// quality-limited (0 disables the check).
	QualityFloor float64

	policy          chip.SelectPolicy
	clusterGranular bool

	baseline power.STVBaseline
	profile  sim.WorkProfile
	vdd      float64
	order    []int // engagement order of cores under Policy

	perrGrid  []float64
	logPerr   []float64   // log10 of perrGrid, the interpolation abscissae
	prefixMin [][]float64 // prefixMin[n][g]: min f over first n+1 cores at perrGrid[g]
	fCC       float64     // control-core frequency (fastest safe core)
}

// NewSolver prepares a solver; the quality model must belong to the
// benchmark.
func NewSolver(ch *chip.Chip, pm *power.Model, b rms.Benchmark, qm *QualityModel) (*Solver, error) {
	if qm.Benchmark != b.Name() {
		return nil, fmt.Errorf("core: quality model is for %s, benchmark is %s", qm.Benchmark, b.Name())
	}
	s := &Solver{
		Chip:    ch,
		Power:   pm,
		Bench:   b,
		Quality: qm,
		policy:  chip.SelectEfficient,
	}
	s.baseline = pm.Baseline()
	s.profile = b.Profile()
	s.vdd = ch.VddNTV()
	s.rebuild()
	return s, nil
}

// Policy returns the current core-engagement policy.
func (s *Solver) Policy() chip.SelectPolicy { return s.policy }

// Vdd returns the near-threshold supply the solver operates at.
func (s *Solver) Vdd() float64 { return s.vdd }

// SetVdd overrides the operating supply (default: the chip's VddNTV)
// and rebuilds the frequency tables. Voltages below the chip's VddNTV
// are rejected: some memory block could not hold state there.
func (s *Solver) SetVdd(vdd float64) error {
	if vdd < s.Chip.VddNTV() {
		return fmt.Errorf("core: Vdd %.3f below the chip's VddNTV %.3f", vdd, s.Chip.VddNTV())
	}
	if vdd > s.Chip.Cfg.Tech.VddNomSTV {
		return fmt.Errorf("core: Vdd %.3f beyond the STV nominal", vdd)
	}
	s.vdd = vdd
	s.rebuild()
	return nil
}

// SetPolicy changes the core-engagement order (the paper uses the most
// energy-efficient cores; fastest and sequential exist for ablation)
// and rebuilds the frequency tables.
func (s *Solver) SetPolicy(p chip.SelectPolicy) {
	s.policy = p
	s.rebuild()
}

// SetClusterGranular switches between per-core engagement (default)
// and whole-cluster engagement. The paper assigns tasks at the
// granularity of clusters (Section 5.1): engaging any core of a cluster
// engages all eight, and the cluster order follows the policy applied
// to each cluster's slowest member.
func (s *Solver) SetClusterGranular(on bool) {
	s.clusterGranular = on
	s.rebuild()
}

// ClusterGranular reports the engagement granularity.
func (s *Solver) ClusterGranular() bool { return s.clusterGranular }

func (s *Solver) rebuild() {
	if s.clusterGranular {
		s.order = s.clusterOrder()
	} else {
		s.order = s.Chip.SelectCores(len(s.Chip.Cores), s.vdd, s.policy)
	}
	s.buildFreqTable()
}

// clusterOrder ranks whole clusters by the policy metric of their
// slowest core and emits core ids cluster by cluster.
func (s *Solver) clusterOrder() []int {
	type rank struct {
		id  int
		key float64
	}
	ranks := make([]rank, s.Chip.Cfg.Clusters)
	for c := range ranks {
		slow := s.Chip.ClusterSlowestCore(c, s.vdd)
		f := s.Chip.CoreSafeFreq(slow, s.vdd)
		key := f
		if s.policy == chip.SelectEfficient {
			if p := s.Chip.CorePower(slow, s.vdd, f); p > 0 {
				key = f / p
			}
		}
		if s.policy == chip.SelectSequential {
			key = -float64(c)
		}
		ranks[c] = rank{c, key}
	}
	sort.Slice(ranks, func(a, b int) bool { return ranks[a].key > ranks[b].key })
	out := make([]int, 0, len(s.Chip.Cores))
	for _, r := range ranks {
		lo, hi := s.Chip.ClusterCores(r.id)
		for i := lo; i < hi; i++ {
			out = append(out, i)
		}
	}
	return out
}

// Baseline returns the STV reference operating point.
func (s *Solver) Baseline() power.STVBaseline { return s.baseline }

// STVTime returns the target execution time: the default problem size
// on NSTV cores at the nominal STV frequency (variation neglected at
// STV, Section 6.3).
func (s *Solver) STVTime() float64 {
	return s.profile.ExecTime(1, s.baseline.N, s.baseline.Freq, s.baseline.Freq)
}

// buildFreqTable precomputes, for every engagement prefix and a grid of
// per-cycle error-rate targets, the common frequency of the prefix (the
// minimum member frequency at that error rate). Interpolating the
// prefix minima across the grid approximates min-of-interpolations
// exactly whenever one slowest core dominates the prefix, which is the
// regime the chip operates in.
func (s *Solver) buildFreqTable() {
	s.perrGrid = []float64{1e-16, 1e-14, 1e-12, 1e-10, 1e-8, 1e-6, 1e-4, 1e-2}
	s.logPerr = make([]float64, len(s.perrGrid))
	for g, p := range s.perrGrid {
		s.logPerr[g] = math.Log10(p)
	}
	n := len(s.order)
	s.prefixMin = make([][]float64, n)
	running := make([]float64, len(s.perrGrid))
	for g := range running {
		running[g] = math.Inf(1)
	}
	for i, id := range s.order {
		row := make([]float64, len(s.perrGrid))
		for g, perr := range s.perrGrid {
			f := s.Chip.CoreFreqAtPerr(id, s.vdd, perr)
			if f < running[g] {
				running[g] = f
			}
			row[g] = running[g]
		}
		s.prefixMin[i] = row
	}
	// Control cores are the chip's fastest, most reliable cores; they
	// run error-free.
	s.fCC = 0
	for i := range s.Chip.Cores {
		if f := s.Chip.CoreSafeFreq(i, s.vdd); f > s.fCC {
			s.fCC = f
		}
	}
}

// setFreq returns the common frequency of the first n cores at a
// per-cycle error-rate target, interpolated on the precomputed grid.
func (s *Solver) setFreq(n int, perr float64) float64 {
	row := s.prefixMin[n-1]
	lp := math.Log10(mathx.Clamp(perr, s.perrGrid[0], s.perrGrid[len(s.perrGrid)-1]))
	return mathx.InterpMonotone(s.logPerr, row, lp)
}

// taskPerr returns the paper's Section 6.3 speculative error-rate
// target: one expected timing error per infected task, Perr = 1/e for a
// task of e cycles.
func (s *Solver) taskPerr(ps float64, n int, f float64) float64 {
	e := s.profile.CyclesPerTask(ps, n, f)
	if e <= 0 {
		return tech.ErrorFreePerr
	}
	return mathx.Clamp(1/e, tech.ErrorFreePerr, 1e-2)
}

// Solve finds the iso-execution-time operating point for one Accordion
// input under the given flavor: the smallest engaged core count whose
// common frequency brings the NTV execution time to (or below) the STV
// execution time.
func (s *Solver) Solve(input float64, flavor Flavor) (OperatingPoint, error) {
	ps := s.Bench.ProblemSize(input)
	if ps <= 0 {
		return OperatingPoint{}, fmt.Errorf("core: non-positive problem size at input %g", input)
	}
	target := s.STVTime()
	maxN := len(s.order)

	perr := tech.ErrorFreePerr
	for n := 1; n <= maxN; n++ {
		f := s.setFreq(n, perr)
		if flavor == Speculative {
			// Fixed point of (f -> task error rate -> f).
			for iter := 0; iter < 4; iter++ {
				perr = s.taskPerr(ps, n, f)
				f = s.setFreq(n, perr)
			}
		} else {
			perr = tech.ErrorFreePerr
		}
		t := s.profile.ExecTime(ps, n, f, s.fCC)
		if t <= target {
			return s.finishPoint(ps, input, flavor, n, f, perr, t), nil
		}
	}
	// N-limited: even every core of the chip cannot reach the STV
	// execution time. Report the best the chip can do.
	f := s.setFreq(maxN, perr)
	t := s.profile.ExecTime(ps, maxN, f, s.fCC)
	op := s.finishPoint(ps, input, flavor, maxN, f, perr, t)
	op.Feasible = false
	op.Limit = "cores"
	return op, nil
}

// Front solves every input of the benchmark's sweep under one flavor,
// producing one iso-execution-time pareto front of Figures 6 and 7
// (problem size, and hence mode, varies along it). The sweep points
// are independent — Solve never writes solver state — so they fan out
// across parallel.Workers() goroutines with results in sweep order,
// identical to a sequential scan.
func (s *Solver) Front(flavor Flavor) ([]OperatingPoint, error) {
	return s.FrontCtx(context.Background(), flavor)
}

// FrontCtx is Front under the tracing tier: the sweep records a
// core.solver.front span and each solved input a core.solver.solve
// span under the pool worker that ran it.
func (s *Solver) FrontCtx(ctx context.Context, flavor Flavor) ([]OperatingPoint, error) {
	fsp := trace.StartFrom(ctx, "core.solver.front").
		ArgStr("bench", s.Bench.Name()).ArgStr("flavor", flavor.String())
	defer fsp.End()
	ctx = trace.NewContext(ctx, fsp)
	sweep := s.Bench.Sweep()
	return parallel.MapCtx(ctx, len(sweep), func(wctx context.Context, i int) (OperatingPoint, error) {
		ssp := trace.StartFrom(wctx, "core.solver.solve")
		defer ssp.End()
		return s.Solve(sweep[i], flavor)
	})
}

// SolveBest returns the most energy-efficient feasible operating point
// for one input under the flavor: instead of stopping at the smallest
// iso-time core count the way Solve does, it scans every admissible N
// and keeps the point with the highest MIPS/W that respects the power
// budget (and quality floor). This is the operating point a deployment
// would actually pick off the pareto front.
func (s *Solver) SolveBest(input float64, flavor Flavor) (OperatingPoint, error) {
	ps := s.Bench.ProblemSize(input)
	if ps <= 0 {
		return OperatingPoint{}, fmt.Errorf("core: non-positive problem size at input %g", input)
	}
	target := s.STVTime()
	var best OperatingPoint
	found := false
	perr := tech.ErrorFreePerr
	for n := 1; n <= len(s.order); n++ {
		f := s.setFreq(n, perr)
		if flavor == Speculative {
			for iter := 0; iter < 4; iter++ {
				perr = s.taskPerr(ps, n, f)
				f = s.setFreq(n, perr)
			}
		} else {
			perr = tech.ErrorFreePerr
		}
		t := s.profile.ExecTime(ps, n, f, s.fCC)
		if t > target {
			continue
		}
		op := s.finishPoint(ps, input, flavor, n, f, perr, t)
		if !op.Feasible {
			continue
		}
		if !found || op.RelMIPSPerWatt > best.RelMIPSPerWatt {
			best, found = op, true
		}
	}
	if !found {
		// Fall back to the minimal-N solution, which carries the limit
		// diagnosis.
		return s.Solve(input, flavor)
	}
	return best, nil
}

// finishPoint fills in the derived metrics and feasibility checks for a
// candidate (n, f) solution.
func (s *Solver) finishPoint(ps, input float64, flavor Flavor, n int, f, perr, t float64) OperatingPoint {
	op := OperatingPoint{
		Benchmark:      s.Bench.Name(),
		Mode:           ModeOf(ps),
		Flavor:         flavor,
		Input:          input,
		ProblemSize:    ps,
		RelProblemSize: ps,
		N:              n,
		Freq:           f,
		Perr:           perr,
		ExecTime:       t,
	}
	engaged := s.order[:n]
	op.Power = s.Power.Engaged(engaged, s.vdd, f).Total()
	op.RelN = float64(n) / float64(s.baseline.N)
	op.RelPower = op.Power / s.baseline.Power
	front := s.Quality.Default
	if flavor == Speculative {
		front = s.Quality.SpeculativeFront()
	}
	op.RelQuality = s.Quality.RelativeQuality(front, ps)
	mipsNTV := s.profile.MIPS(ps, op.ExecTime) / op.Power
	mipsSTV := s.profile.MIPS(1, s.STVTime()) / s.baseline.Power
	op.RelMIPSPerWatt = mipsNTV / mipsSTV
	op.Feasible = true
	if op.Power > s.Power.Budget() {
		op.Feasible = false
		op.Limit = "power"
	} else if s.QualityFloor > 0 && op.RelQuality < s.QualityFloor {
		op.Feasible = false
		op.Limit = "quality"
	}
	return op
}
