package core

import "testing"

func TestModeOf(t *testing.T) {
	cases := []struct {
		ps   float64
		want Mode
	}{
		{0.5, Compress}, {0.999, Compress}, {1.0, Still}, {1.001, Expand}, {2.5, Expand},
	}
	for _, c := range cases {
		if got := ModeOf(c.ps); got != c.want {
			t.Errorf("ModeOf(%g) = %v, want %v", c.ps, got, c.want)
		}
	}
}

func TestModeAndFlavorStrings(t *testing.T) {
	if Still.String() != "Still" || Compress.String() != "Compress" || Expand.String() != "Expand" {
		t.Error("mode names wrong")
	}
	if Safe.String() != "Safe" || Speculative.String() != "Speculative" {
		t.Error("flavor names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode must render")
	}
}

// Table 1 semantics: Compress is the only mode admitting NNTV < NSTV;
// Still and Compress cannot improve quality beyond the STV baseline.
func TestTableOne(t *testing.T) {
	if c := TableOne(Compress); !c.NMayShrink || c.ProblemVsSTV != -1 || !c.QualityAtMost {
		t.Errorf("Compress row wrong: %+v", c)
	}
	if c := TableOne(Expand); c.NMayShrink || c.ProblemVsSTV != +1 || c.QualityAtMost {
		t.Errorf("Expand row wrong: %+v", c)
	}
	if c := TableOne(Still); c.NMayShrink || c.ProblemVsSTV != 0 || !c.QualityAtMost {
		t.Errorf("Still row wrong: %+v", c)
	}
}

func TestOrganizationString(t *testing.T) {
	if HomogeneousSpatial.String() != "homogeneous-spatial" ||
		HomogeneousTimeMux.String() != "homogeneous-timemux" ||
		HeterogeneousClusters.String() != "heterogeneous" {
		t.Error("organization names wrong")
	}
	if Organization(7).String() == "" {
		t.Error("unknown organization must render")
	}
}

func TestRequiredNFormula(t *testing.T) {
	// NSTV=16, fSTV=3.2, fNTV=0.4, PS=1: 16*8 = 128.
	if got := RequiredN(16, 3.2, 0.4, 1); got != 128 {
		t.Errorf("RequiredN = %g", got)
	}
	// Compress halves the problem: half the cores.
	if got := RequiredN(16, 3.2, 0.4, 0.5); got != 64 {
		t.Errorf("RequiredN = %g", got)
	}
	if RequiredN(16, 3.2, 0, 1) != 0 {
		t.Error("zero fNTV should degenerate to 0")
	}
}
