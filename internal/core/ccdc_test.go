package core

import (
	"math"
	"testing"
)

func testRuntimeConfig() RuntimeConfig {
	return RuntimeConfig{
		Org:       HomogeneousSpatial,
		NumCC:     1,
		NumDC:     8,
		DataFreq:  0.5,
		CtrlFreq:  1.0,
		TaskOps:   5e6, // 10 ms per task at 0.5 GHz
		NumTasks:  32,
		PollEvery: 1e-3,
		Watchdog:  30e-3,
	}
}

func TestRuntimeValidate(t *testing.T) {
	good := testRuntimeConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*RuntimeConfig){
		func(c *RuntimeConfig) { c.NumCC = 0 },
		func(c *RuntimeConfig) { c.NumDC = 0 },
		func(c *RuntimeConfig) { c.DataFreq = 0 },
		func(c *RuntimeConfig) { c.TaskOps = 0 },
		func(c *RuntimeConfig) { c.PollEvery = 0 },
		func(c *RuntimeConfig) { c.Watchdog = 0.5e-3 }, // below poll interval
		func(c *RuntimeConfig) { c.CheckpointCost = -1 },
	}
	for i, mutate := range bad {
		cfg := testRuntimeConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid runtime config accepted", i)
		}
	}
}

func runAll(t *testing.T, cfg RuntimeConfig) RunStats {
	t.Helper()
	rt, err := NewRuntime(cfg)
	if err != nil {
		t.Fatal(err)
	}
	shared := NewSharedRegion([]float64{2, 3, 4})
	stats, err := rt.Run(shared.View(), func(task int, in ReadOnlyView) float64 {
		return float64(task) * in.At(0)
	})
	if err != nil {
		t.Fatal(err)
	}
	return stats
}

func TestRuntimeCompletesAllTasks(t *testing.T) {
	stats := runAll(t, testRuntimeConfig())
	if stats.TasksDone != 32 {
		t.Fatalf("done %d of 32", stats.TasksDone)
	}
	for task, r := range stats.Results {
		if r != float64(task)*2 {
			t.Fatalf("task %d result %g", task, r)
		}
	}
	// 32 tasks on 8 DCs at 10 ms each: at least 40 ms of virtual time,
	// plus polling slack.
	if stats.Time < 0.040 || stats.Time > 0.060 {
		t.Errorf("virtual time %.3fs implausible", stats.Time)
	}
	if stats.Crashes != 0 || stats.WatchdogFires != 0 || stats.Retries != 0 {
		t.Errorf("phantom failures: %+v", stats)
	}
}

func TestRuntimeDeterminism(t *testing.T) {
	a := runAll(t, testRuntimeConfig())
	b := runAll(t, testRuntimeConfig())
	if a.Time != b.Time || a.TasksDone != b.TasksDone {
		t.Error("runtime is not deterministic")
	}
}

func TestCrashDetectedAndRetried(t *testing.T) {
	cfg := testRuntimeConfig()
	cfg.Faults = []FaultEvent{{Task: 5, Attempt: 0, Hang: false, After: 0.5}}
	stats := runAll(t, cfg)
	if stats.TasksDone != 32 {
		t.Fatalf("done %d of 32", stats.TasksDone)
	}
	if stats.Crashes != 1 || stats.Retries != 1 {
		t.Errorf("crashes %d retries %d, want 1/1", stats.Crashes, stats.Retries)
	}
	if stats.WatchdogFires != 0 {
		t.Error("crash should be caught at a poll, not by the watchdog")
	}
	if stats.Results[5] != 10 {
		t.Errorf("retried task result %g", stats.Results[5])
	}
}

func TestHangCaughtByWatchdog(t *testing.T) {
	cfg := testRuntimeConfig()
	cfg.Faults = []FaultEvent{{Task: 3, Attempt: 0, Hang: true, After: 0.2}}
	stats := runAll(t, cfg)
	if stats.TasksDone != 32 {
		t.Fatalf("done %d of 32", stats.TasksDone)
	}
	if stats.WatchdogFires != 1 {
		t.Errorf("watchdog fired %d times, want 1", stats.WatchdogFires)
	}
	// The hang steals a DC for the watchdog period, so the run must
	// take longer than a clean one (the retry overlaps other DCs'
	// work, so the penalty is one extra task round, not the full
	// watchdog timeout).
	clean := runAll(t, testRuntimeConfig())
	if stats.Time <= clean.Time {
		t.Errorf("hung run (%.3fs) not slower than clean run (%.3fs)", stats.Time, clean.Time)
	}
}

func TestRepeatedFaultsEventuallyComplete(t *testing.T) {
	cfg := testRuntimeConfig()
	cfg.Faults = []FaultEvent{
		{Task: 7, Attempt: 0, Hang: false, After: 0.9},
		{Task: 7, Attempt: 1, Hang: true, After: 0.1},
		{Task: 7, Attempt: 2, Hang: false, After: 0.3},
	}
	stats := runAll(t, cfg)
	if stats.TasksDone != 32 {
		t.Fatalf("done %d of 32", stats.TasksDone)
	}
	if stats.Retries != 3 || stats.Crashes != 2 || stats.WatchdogFires != 1 {
		t.Errorf("stats %+v", stats)
	}
	if stats.Results[7] != 14 {
		t.Errorf("task 7 result %g", stats.Results[7])
	}
}

func TestTimeMuxPaysRoleSwaps(t *testing.T) {
	cfg := testRuntimeConfig()
	base := runAll(t, cfg)
	cfg.Org = HomogeneousTimeMux
	cfg.RoleSwapCost = 2e-3
	mux := runAll(t, cfg)
	if mux.RoleSwaps != 32 {
		t.Errorf("role swaps = %d, want one per task", mux.RoleSwaps)
	}
	if mux.Time <= base.Time {
		t.Error("time-multiplexed organization should pay for protection-domain switches")
	}
}

func TestCheckpointsCount(t *testing.T) {
	cfg := testRuntimeConfig()
	cfg.CheckpointEvery = 10e-3
	cfg.CheckpointCost = 0.1e-3
	stats := runAll(t, cfg)
	if stats.Checkpoints < 3 {
		t.Errorf("only %d checkpoints over ~45 ms", stats.Checkpoints)
	}
}

func TestSharedRegionIsReadOnly(t *testing.T) {
	r := NewSharedRegion([]float64{1, 2, 3})
	v := r.View()
	if v.Len() != 3 || v.At(1) != 2 {
		t.Fatal("view misreads")
	}
	// The original slice cannot alias the region.
	src := []float64{9}
	r2 := NewSharedRegion(src)
	src[0] = 42
	if r2.View().At(0) != 9 {
		t.Error("region aliases caller memory")
	}
}

func TestSlowerDCsTakeLonger(t *testing.T) {
	fast := testRuntimeConfig()
	slow := testRuntimeConfig()
	slow.DataFreq = fast.DataFreq / 2
	tf := runAll(t, fast).Time
	ts := runAll(t, slow).Time
	if ratio := ts / tf; math.Abs(ratio-2) > 0.2 {
		t.Errorf("halving DC frequency scaled time by %.2f, want ~2", ratio)
	}
}

func TestResultGuardCatchesCorruption(t *testing.T) {
	cfg := testRuntimeConfig()
	// Healthy results are task*2 (0..62); the guard rejects anything
	// beyond 100 as excessive degradation.
	cfg.ResultGuard = func(task int, v float64) bool { return v >= 0 && v <= 100 }
	cfg.Faults = []FaultEvent{
		{Task: 9, Attempt: 0, Corrupt: true, CorruptValue: 1e9},
		{Task: 20, Attempt: 0, Corrupt: true, CorruptValue: -5},
	}
	stats := runAll(t, cfg)
	if stats.TasksDone != 32 {
		t.Fatalf("done %d of 32", stats.TasksDone)
	}
	if stats.GuardRejects != 2 {
		t.Errorf("guard rejected %d results, want 2", stats.GuardRejects)
	}
	if stats.Retries != 2 {
		t.Errorf("retries = %d", stats.Retries)
	}
	// The retried attempts deliver the true values.
	if stats.Results[9] != 18 || stats.Results[20] != 40 {
		t.Errorf("guarded tasks ended with %g / %g", stats.Results[9], stats.Results[20])
	}
}

func TestResultGuardAcceptsCleanRun(t *testing.T) {
	cfg := testRuntimeConfig()
	cfg.ResultGuard = func(task int, v float64) bool { return v >= 0 && v <= 100 }
	stats := runAll(t, cfg)
	if stats.GuardRejects != 0 {
		t.Errorf("clean run rejected %d results", stats.GuardRejects)
	}
	if stats.TasksDone != 32 {
		t.Fatalf("done %d", stats.TasksDone)
	}
}

func TestCorruptionLoopTerminatesViaAttempts(t *testing.T) {
	// A task corrupted on its first two attempts succeeds on the third.
	cfg := testRuntimeConfig()
	cfg.ResultGuard = func(task int, v float64) bool { return v < 100 }
	cfg.Faults = []FaultEvent{
		{Task: 4, Attempt: 0, Corrupt: true, CorruptValue: 1e9},
		{Task: 4, Attempt: 1, Corrupt: true, CorruptValue: 1e9},
	}
	stats := runAll(t, cfg)
	if stats.GuardRejects != 2 || stats.Results[4] != 8 {
		t.Errorf("stats %+v", stats)
	}
}

func TestWipeoutWithCheckpointRecovers(t *testing.T) {
	cfg := testRuntimeConfig()
	// Rounds complete at ~10/20/30/40 ms; checkpoints at ~12/24/36 ms.
	// A wipeout at 32 ms loses exactly the 30 ms round (8 tasks).
	cfg.CheckpointEvery = 12e-3
	cfg.CheckpointCost = 0.1e-3
	cfg.Wipeouts = []float64{32e-3}
	stats := runAll(t, cfg)
	if stats.Recoveries != 1 {
		t.Fatalf("recoveries = %d", stats.Recoveries)
	}
	if stats.TasksDone != 32 {
		t.Fatalf("done %d of 32 after recovery", stats.TasksDone)
	}
	for task, r := range stats.Results {
		if r != float64(task)*2 {
			t.Fatalf("task %d result %g after recovery", task, r)
		}
	}
	// Only the work since the last checkpoint is redone.
	if stats.TasksRedone == 0 || stats.TasksRedone > 16 {
		t.Errorf("redone %d tasks; the checkpoint should bound the loss window", stats.TasksRedone)
	}
}

func TestWipeoutWithoutCheckpointRestartsFromScratch(t *testing.T) {
	withCkpt := testRuntimeConfig()
	withCkpt.CheckpointEvery = 5e-3
	withCkpt.CheckpointCost = 0.1e-3
	withCkpt.Wipeouts = []float64{30e-3}
	protected := runAll(t, withCkpt)

	bare := testRuntimeConfig()
	bare.Wipeouts = []float64{30e-3}
	unprotected := runAll(t, bare)

	if protected.TasksDone != 32 || unprotected.TasksDone != 32 {
		t.Fatal("runs did not complete")
	}
	// Without a checkpoint, everything completed before the wipeout is
	// lost and redone; checkpoints bound the loss.
	if unprotected.TasksRedone <= protected.TasksRedone {
		t.Errorf("checkpointing did not reduce redone work: %d vs %d",
			protected.TasksRedone, unprotected.TasksRedone)
	}
	if unprotected.Time <= protected.Time {
		t.Errorf("unprotected recovery (%.3fs) not slower than checkpointed (%.3fs)",
			unprotected.Time, protected.Time)
	}
}

func TestLateWipeoutRestartsPolling(t *testing.T) {
	// The wipeout fires after the run would have drained; the runtime
	// must restart its housekeeping and still finish everything.
	cfg := testRuntimeConfig()
	cfg.Wipeouts = []float64{0.2} // well past the ~45 ms clean finish
	stats := runAll(t, cfg)
	if stats.TasksDone != 32 {
		t.Fatalf("done %d of 32 after late wipeout", stats.TasksDone)
	}
	if stats.Recoveries != 1 || stats.TasksRedone != 32 {
		t.Errorf("stats %+v", stats)
	}
}

func TestCCBottleneck(t *testing.T) {
	// Section 4.2: too few control cores throttle the housekeeping loop.
	base := testRuntimeConfig()
	base.NumDC = 64
	base.NumTasks = 256
	base.PollOps = 4e5 // 0.4 ms of CC work per mailbox at 1 GHz

	starved := base
	starved.NumCC = 1 // 64 mailboxes -> 25.6 ms sweep >> 1 ms PollEvery
	provisioned := base
	provisioned.NumCC = 32

	slow := runAll(t, starved)
	fast := runAll(t, provisioned)
	if slow.TasksDone != 256 || fast.TasksDone != 256 {
		t.Fatal("runs incomplete")
	}
	if slow.Time <= fast.Time*1.2 {
		t.Errorf("CC bottleneck invisible: 1 CC %.3fs vs 32 CCs %.3fs", slow.Time, fast.Time)
	}
	// Without per-poll cost, the CC count is immaterial.
	free := base
	free.PollOps = 0
	free.NumCC = 1
	if runAll(t, free).Time > fast.Time*1.1 {
		t.Error("zero-cost polling should not bottleneck")
	}
}
