package core

import (
	"fmt"

	"repro/internal/mathx"
	"repro/internal/sim"
)

// Organization selects the Figure 3 design-space point for decoupling
// control from data processing.
type Organization int

// Accordion chip organizations (Figure 3).
const (
	// HomogeneousSpatial (Fig 3a): identical cores; the fastest, most
	// reliable cores are designated Control Cores spatio-temporally.
	HomogeneousSpatial Organization = iota
	// HomogeneousTimeMux (Fig 3b): identical cores time-multiplexed
	// between CC and DC roles; better utilization, but every role swap
	// pays a protection-domain switch.
	HomogeneousTimeMux
	// HeterogeneousClusters (Fig 3c): dedicated CC hardware per
	// cluster; CC count is fixed by design.
	HeterogeneousClusters
)

// String names the organization.
func (o Organization) String() string {
	switch o {
	case HomogeneousSpatial:
		return "homogeneous-spatial"
	case HomogeneousTimeMux:
		return "homogeneous-timemux"
	case HeterogeneousClusters:
		return "heterogeneous"
	}
	return fmt.Sprintf("Organization(%d)", int(o))
}

// TaskState tracks one data-parallel task through the runtime.
type TaskState int

// Task states.
const (
	TaskPending TaskState = iota
	TaskRunning
	TaskDone
	TaskFailed // crashed or hung; will be reassigned
)

// FaultEvent injects a DC failure into a run: execution attempt
// `Attempt` (0-based) of task `Task` either crashes after `After`
// fraction of the task (detected at the next CC poll via the mailbox)
// or hangs (detected only by the watchdog).
type FaultEvent struct {
	Task    int
	Attempt int
	Hang    bool
	After   float64 // fraction of the task executed before the fault
	// Corrupt makes the attempt complete normally but deliver
	// CorruptValue instead of the true result — the paper's
	// manifestation (ii), termination with excessive degradation,
	// which the CC catches against its preset result limits.
	Corrupt      bool
	CorruptValue float64
}

// RuntimeConfig configures a CC/DC execution.
type RuntimeConfig struct {
	Org Organization

	NumCC int // control cores (>=1)
	NumDC int // data cores

	DataFreq float64 // GHz, common DC frequency
	CtrlFreq float64 // GHz, CC frequency

	TaskOps   float64 // ops per task
	NumTasks  int
	PollEvery float64 // seconds between CC mailbox polls
	Watchdog  float64 // seconds of DC silence before reset

	// PollOps is the control-core work per DC mailbox check (ops). The
	// DCs are partitioned among the NumCC control cores; a CC whose
	// share takes longer than PollEvery to sweep polls late, which is
	// how an undersized CC count becomes the bottleneck Section 4.2
	// warns about.
	PollOps float64

	// CheckpointEvery of 0 disables the checkpoint-recovery safety net;
	// otherwise CCs snapshot completed-task state this often, paying
	// CheckpointCost seconds each time.
	CheckpointEvery float64
	CheckpointCost  float64

	// RoleSwapCost is paid by HomogeneousTimeMux each time a core swaps
	// between CC and DC protection domains.
	RoleSwapCost float64

	// ResultGuard, when non-nil, is the CC's preset limit on acceptable
	// task results (Section 6.3's manifestation (ii)): a result failing
	// the guard is treated exactly like a crash and the task retried.
	ResultGuard func(task int, result float64) bool

	Faults []FaultEvent

	// Wipeouts are virtual times at which a catastrophic event clears
	// all DC state and every result not yet captured by a checkpoint;
	// the run resumes from the last checkpoint (or from scratch when
	// checkpointing is disabled) — the Section 4.1 safety net whose
	// anticipated rarity is what lets Accordion keep it simple.
	Wipeouts []float64
}

// Validate reports the first invalid field, or nil.
func (c RuntimeConfig) Validate() error {
	switch {
	case c.NumCC < 1:
		return fmt.Errorf("core: need at least one control core")
	case c.NumDC < 1:
		return fmt.Errorf("core: need at least one data core")
	case c.DataFreq <= 0 || c.CtrlFreq <= 0:
		return fmt.Errorf("core: frequencies must be positive")
	case c.TaskOps <= 0 || c.NumTasks <= 0:
		return fmt.Errorf("core: need positive task work")
	case c.PollEvery <= 0:
		return fmt.Errorf("core: need a positive poll interval")
	case c.Watchdog <= c.PollEvery:
		return fmt.Errorf("core: watchdog timeout must exceed the poll interval")
	case c.CheckpointEvery < 0 || c.CheckpointCost < 0 || c.RoleSwapCost < 0:
		return fmt.Errorf("core: negative overheads")
	}
	return nil
}

// RunStats summarizes a CC/DC execution.
type RunStats struct {
	Time          float64 // total virtual seconds
	TasksDone     int
	Crashes       int // failures detected via mailbox at a CC poll
	WatchdogFires int // hangs detected by the watchdog
	GuardRejects  int // results rejected by the CC's preset quality limit
	Retries       int
	Checkpoints   int
	RoleSwaps     int
	Recoveries    int       // checkpoint restores after wipeouts
	TasksRedone   int       // completed work lost to wipeouts and re-executed
	Results       []float64 // merged per-task results (CC reduce)
}

// mailbox is the dedicated memory location a DC and its master CC
// communicate over: CCs read status, DCs write status and a result.
// DCs cannot touch anything else of the CC's space — there is no API
// for it.
type mailbox struct {
	state   TaskState
	task    int
	attempt int
	epoch   int     // bumped on every (re)assignment; stale events no-op
	done    float64 // completion time, valid when state == TaskDone
	result  float64
}

// SharedRegion is data a CC publishes for its DCs. DCs receive a
// read-only view; the absence of any mutator on ReadOnlyView enforces
// the Section 4.1 rule that DCs can read but never modify CC data.
type SharedRegion struct {
	data []float64
}

// NewSharedRegion copies vals into a CC-owned region.
func NewSharedRegion(vals []float64) *SharedRegion {
	d := make([]float64, len(vals))
	copy(d, vals)
	return &SharedRegion{data: d}
}

// ReadOnlyView is the DC-side handle: read access only.
type ReadOnlyView struct{ r *SharedRegion }

// View returns the read-only handle DCs get.
func (r *SharedRegion) View() ReadOnlyView { return ReadOnlyView{r} }

// At reads element i.
func (v ReadOnlyView) At(i int) float64 { return v.r.data[i] }

// Len returns the region length.
func (v ReadOnlyView) Len() int { return len(v.r.data) }

// Runtime executes a task set under the CC/DC architecture on the
// discrete-event engine, modeling master-slave coordination, per-DC
// watchdogs, fast DC reset/restart, and the checkpoint safety net.
type Runtime struct {
	cfg RuntimeConfig
	eng *sim.Engine

	boxes    []mailbox // one per DC
	deadline []float64 // per DC: expected completion + watchdog margin
	attempts map[int]int
	faults   map[[2]int]FaultEvent

	pending []int
	stats   RunStats

	shared   ReadOnlyView
	work     func(int, ReadOnlyView) float64
	pollLive bool

	// Checkpoint state: which tasks' results the last snapshot holds.
	snapshot []bool
	done     []bool
}

// NewRuntime validates the config and prepares a runtime.
func NewRuntime(cfg RuntimeConfig) (*Runtime, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Runtime{cfg: cfg}, nil
}

// taskDuration returns the execution time of one task on a DC.
func (r *Runtime) taskDuration() float64 {
	return r.cfg.TaskOps / (r.cfg.DataFreq * 1e9)
}

// Run executes all tasks and returns the statistics. work maps a task
// index to its result value given the read-only shared inputs; it runs
// at completion time, so results are deterministic.
func (r *Runtime) Run(shared ReadOnlyView, work func(task int, in ReadOnlyView) float64) (RunStats, error) {
	r.eng = sim.NewEngine()
	r.boxes = make([]mailbox, r.cfg.NumDC)
	r.deadline = make([]float64, r.cfg.NumDC)
	r.attempts = map[int]int{}
	r.faults = map[[2]int]FaultEvent{}
	for _, f := range r.cfg.Faults {
		r.faults[[2]int{f.Task, f.Attempt}] = f
	}
	r.stats = RunStats{Results: make([]float64, r.cfg.NumTasks)}
	r.shared, r.work = shared, work
	r.snapshot = make([]bool, r.cfg.NumTasks)
	r.done = make([]bool, r.cfg.NumTasks)
	r.pending = r.pending[:0]
	for t := r.cfg.NumTasks - 1; t >= 0; t-- {
		r.pending = append(r.pending, t)
	}
	for dc := range r.boxes {
		r.boxes[dc].state = TaskPending
		r.assign(dc, shared, work)
	}
	for _, at := range r.cfg.Wipeouts {
		if _, err := r.eng.At(at, r.wipeout); err != nil {
			return RunStats{}, err
		}
	}
	// The master CCs poll DC mailboxes periodically (Section 4.1) —
	// never reading DC-produced data for control, only mailbox status.
	r.pollLive = true
	if _, err := r.eng.After(r.pollInterval(), func() { r.poll(shared, work) }); err != nil {
		return RunStats{}, err
	}
	if r.cfg.CheckpointEvery > 0 {
		if _, err := r.eng.After(r.cfg.CheckpointEvery, r.checkpoint); err != nil {
			return RunStats{}, err
		}
	}
	r.eng.Run(0)
	return r.stats, nil
}

// assign hands the next pending task to DC dc.
func (r *Runtime) assign(dc int, shared ReadOnlyView, work func(int, ReadOnlyView) float64) {
	if len(r.pending) == 0 {
		r.boxes[dc].state = TaskPending
		return
	}
	task := r.pending[len(r.pending)-1]
	r.pending = r.pending[:len(r.pending)-1]
	attempt := r.attempts[task]
	r.attempts[task] = attempt + 1
	if attempt > 0 {
		r.stats.Retries++
	}
	if r.cfg.Org == HomogeneousTimeMux {
		// The core served a CC role slice before taking DC work.
		r.stats.RoleSwaps++
	}
	box := &r.boxes[dc]
	box.state = TaskRunning
	box.task = task
	box.attempt = attempt
	box.epoch++
	epoch := box.epoch

	dur := r.taskDuration()
	if r.cfg.Org == HomogeneousTimeMux {
		dur += r.cfg.RoleSwapCost
	}
	// The watchdog arms relative to the expected completion: a DC
	// silent past its deadline by the watchdog margin is presumed hung.
	r.deadline[dc] = r.eng.Now() + dur + r.cfg.Watchdog

	if f, ok := r.faults[[2]int{task, attempt}]; ok && !f.Corrupt {
		at := r.eng.Now() + dur*mathx.Clamp(f.After, 0, 1)
		if f.Hang {
			// The DC goes silent: no mailbox update; only the watchdog
			// will notice.
			return
		}
		// Crash: the DC's fast-reset hardware flags the mailbox.
		if _, err := r.eng.At(at, func() {
			if box.epoch == epoch {
				box.state = TaskFailed
			}
		}); err != nil {
			panic(err)
		}
		return
	}
	corrupt, corruptValue := false, 0.0
	if f, ok := r.faults[[2]int{task, attempt}]; ok && f.Corrupt {
		corrupt, corruptValue = true, f.CorruptValue
	}
	if _, err := r.eng.At(r.eng.Now()+dur, func() {
		if box.epoch != epoch {
			return // superseded assignment; result discarded
		}
		box.state = TaskDone
		box.done = r.eng.Now()
		if corrupt {
			box.result = corruptValue
		} else {
			box.result = work(task, shared)
		}
	}); err != nil {
		panic(err)
	}
}

// poll is the CC housekeeping loop: collect finished results, reassign
// failed or hung tasks, and keep watchdogs per DC.
func (r *Runtime) poll(shared ReadOnlyView, work func(int, ReadOnlyView) float64) {
	now := r.eng.Now()
	active := false
	for dc := range r.boxes {
		box := &r.boxes[dc]
		switch box.state {
		case TaskDone:
			if r.cfg.ResultGuard != nil && !r.cfg.ResultGuard(box.task, box.result) {
				// Excessive degradation: the preset limit rejects the
				// result and the task is treated like a crash (Section
				// 6.3's binning of (ii) under (i)).
				r.stats.GuardRejects++
				r.pending = append(r.pending, box.task)
				r.assign(dc, shared, work)
				break
			}
			r.stats.Results[box.task] = box.result
			if !r.done[box.task] {
				r.done[box.task] = true
				r.stats.TasksDone++
			}
			r.assign(dc, shared, work)
		case TaskFailed:
			r.stats.Crashes++
			r.pending = append(r.pending, box.task)
			r.assign(dc, shared, work)
		case TaskRunning:
			if now > r.deadline[dc] {
				// Watchdog: reset the silent DC and restart its task.
				r.stats.WatchdogFires++
				r.pending = append(r.pending, box.task)
				r.assign(dc, shared, work)
			}
		}
		if box.state == TaskRunning {
			active = true
		}
	}
	// CC poll work costs cycles on the control core; folded into the
	// poll cadence (the CC is otherwise idle between polls).
	if active || len(r.pending) > 0 {
		if _, err := r.eng.After(r.pollInterval(), func() { r.poll(shared, work) }); err != nil {
			panic(err)
		}
	} else {
		r.pollLive = false
		r.stats.Time = now
	}
}

// checkpoint snapshots completed-task state; under Speculative
// operation this is the reduced-frequency safety net of Section 4.1.
func (r *Runtime) checkpoint() {
	r.stats.Checkpoints++
	copy(r.snapshot, r.done)
	if r.stats.TasksDone < r.cfg.NumTasks {
		if _, err := r.eng.After(r.cfg.CheckpointEvery+r.cfg.CheckpointCost, r.checkpoint); err != nil {
			panic(err)
		}
	}
}

// wipeout is the catastrophic event: all in-flight DC work dies and
// completed results not captured by the last checkpoint are lost; the
// CC restores the snapshot and re-queues everything else.
func (r *Runtime) wipeout() {
	r.stats.Recoveries++
	r.pending = r.pending[:0]
	for task := r.cfg.NumTasks - 1; task >= 0; task-- {
		if r.snapshot[task] {
			continue // preserved by the checkpoint
		}
		if r.done[task] {
			r.stats.TasksRedone++
			r.stats.TasksDone--
			r.done[task] = false
		}
		r.pending = append(r.pending, task)
	}
	// Every non-snapshot task is already re-queued above (including any
	// in flight); reset the DCs and orphan their in-flight events.
	for dc := range r.boxes {
		box := &r.boxes[dc]
		box.state = TaskPending
		box.epoch++
	}
	for dc := range r.boxes {
		r.assign(dc, r.shared, r.work)
	}
	// The CC housekeeping loop may have wound down if the run had
	// drained before the wipeout; restart it.
	if !r.pollLive && len(r.pending) > 0 {
		r.pollLive = true
		if _, err := r.eng.After(r.pollInterval(), func() { r.poll(r.shared, r.work) }); err != nil {
			panic(err)
		}
	}
}

// pollInterval returns the effective housekeeping period: the nominal
// PollEvery, stretched when each CC's share of mailboxes takes longer
// than that to sweep at the control-core frequency.
func (r *Runtime) pollInterval() float64 {
	if r.cfg.PollOps <= 0 {
		return r.cfg.PollEvery
	}
	perCC := (float64(r.cfg.NumDC) / float64(r.cfg.NumCC)) * r.cfg.PollOps
	sweep := perCC / (r.cfg.CtrlFreq * 1e9)
	if sweep > r.cfg.PollEvery {
		return sweep
	}
	return r.cfg.PollEvery
}
