package core

import (
	"math"
	"sync"
	"testing"

	"repro/internal/chip"
	"repro/internal/power"
	"repro/internal/rms"
	"repro/internal/rms/canneal"
	"repro/internal/rms/hotspot"
	"repro/internal/tech"
)

// Shared fixtures: measuring fronts and factorizing the chip are the
// expensive parts of these tests; do each once.
var (
	fixOnce   sync.Once
	fixChip   *chip.Chip
	fixPower  *power.Model
	fixBench  rms.Benchmark
	fixFronts *QualityModel
	fixErr    error
)

func fixtures(t *testing.T) (*chip.Chip, *power.Model, rms.Benchmark, *QualityModel) {
	t.Helper()
	fixOnce.Do(func() {
		fixChip, fixErr = chip.New(chip.DefaultConfig(), 2014)
		if fixErr != nil {
			return
		}
		fixPower = power.NewModel(fixChip)
		fixBench, fixErr = canneal.New()
		if fixErr != nil {
			return
		}
		fixFronts, fixErr = MeasureFronts(fixBench, 1)
	})
	if fixErr != nil {
		t.Fatal(fixErr)
	}
	return fixChip, fixPower, fixBench, fixFronts
}

func newTestSolver(t *testing.T) *Solver {
	t.Helper()
	ch, pm, b, qm := fixtures(t)
	s, err := NewSolver(ch, pm, b, qm)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestMeasureFrontsShape(t *testing.T) {
	_, _, b, qm := fixtures(t)
	for _, f := range []*QualityFront{qm.Default, qm.Quarter, qm.Half} {
		if f == nil {
			t.Fatal("missing front")
		}
		if len(f.ProblemSizes) != len(b.Sweep()) {
			t.Fatalf("front has %d points", len(f.ProblemSizes))
		}
		for i := 1; i < len(f.ProblemSizes); i++ {
			if f.ProblemSizes[i] <= f.ProblemSizes[i-1] {
				t.Fatal("front not ascending in problem size")
			}
		}
	}
	// Default dominates Drop 1/4 dominates Drop 1/2 at the default size.
	d, q, h := qm.Default.At(1), qm.Quarter.At(1), qm.Half.At(1)
	if !(d >= q && q >= h) {
		t.Errorf("scenario ordering broken: %.3f / %.3f / %.3f", d, q, h)
	}
}

func TestFrontInterpolation(t *testing.T) {
	_, _, _, qm := fixtures(t)
	f := qm.Default
	// Interpolation hits measured points exactly and is monotone
	// between them for canneal.
	for i, ps := range f.ProblemSizes {
		if got := f.At(ps); math.Abs(got-f.Quality[i]) > 1e-12 {
			t.Fatalf("At(%g) = %g, want %g", ps, got, f.Quality[i])
		}
	}
	lo := f.At(f.ProblemSizes[0] - 10)
	hi := f.At(f.ProblemSizes[len(f.ProblemSizes)-1] + 10)
	if lo != f.Quality[0] || hi != f.Quality[len(f.Quality)-1] {
		t.Error("out-of-range interpolation should clamp")
	}
}

func TestSolverMismatchedQualityModel(t *testing.T) {
	ch, pm, _, qm := fixtures(t)
	other := hotspot.New()
	if _, err := NewSolver(ch, pm, other, qm); err == nil {
		t.Error("mismatched quality model accepted")
	}
}

func TestSolveStillPoint(t *testing.T) {
	s := newTestSolver(t)
	op, err := s.Solve(s.Bench.DefaultInput(), Safe)
	if err != nil {
		t.Fatal(err)
	}
	if op.Mode != Still {
		t.Errorf("default input solved as %v", op.Mode)
	}
	if !op.Feasible {
		t.Errorf("Still point infeasible: %+v", op)
	}
	// Iso-execution time achieved.
	if op.ExecTime > s.STVTime()+1e-12 {
		t.Errorf("exec time %.4f exceeds STV target %.4f", op.ExecTime, s.STVTime())
	}
	// Still mode requires NNTV >= NSTV * fSTV/fNTV (Table 1).
	needed := float64(s.Baseline().N) * s.Baseline().Freq / op.Freq
	// Memory-latency effects make NTV cycles cheaper, so allow slack
	// below the frequency-only bound, but N must far exceed NSTV.
	if float64(op.N) < 0.5*needed || op.N <= s.Baseline().N {
		t.Errorf("Still N = %d implausible vs frequency-ratio bound %.0f", op.N, needed)
	}
	// The headline: NTV operation at iso-execution-time is more energy
	// efficient than STV.
	if op.RelMIPSPerWatt < 1.2 || op.RelMIPSPerWatt > 2.2 {
		t.Errorf("Still MIPS/W ratio = %.2f, want ~1.6", op.RelMIPSPerWatt)
	}
}

func TestSolveModesByProblemSize(t *testing.T) {
	s := newTestSolver(t)
	sweep := s.Bench.Sweep()
	small, err := s.Solve(sweep[0], Safe)
	if err != nil {
		t.Fatal(err)
	}
	big, err := s.Solve(sweep[len(sweep)-1], Safe)
	if err != nil {
		t.Fatal(err)
	}
	if small.Mode != Compress || big.Mode != Expand {
		t.Errorf("modes: %v / %v", small.Mode, big.Mode)
	}
	// Compress achieves iso-time at fewer cores than Expand (Section 6.3).
	if small.N >= big.N {
		t.Errorf("Compress N=%d not below Expand N=%d", small.N, big.N)
	}
	// Compress runs at a frequency at least as high (fewer, better cores).
	if small.Freq < big.Freq-1e-9 {
		t.Errorf("Compress f=%.3f below Expand f=%.3f", small.Freq, big.Freq)
	}
	// Compress consumes less power.
	if small.Power >= big.Power {
		t.Errorf("Compress power %.1f not below Expand %.1f", small.Power, big.Power)
	}
	// Compress pays with quality.
	if small.RelQuality >= big.RelQuality {
		t.Errorf("Compress quality %.3f not below Expand %.3f", small.RelQuality, big.RelQuality)
	}
}

func TestSpeculativeBeatsSafe(t *testing.T) {
	s := newTestSolver(t)
	in := s.Bench.DefaultInput()
	safe, err := s.Solve(in, Safe)
	if err != nil {
		t.Fatal(err)
	}
	spec, err := s.Solve(in, Speculative)
	if err != nil {
		t.Fatal(err)
	}
	// Section 6.3: the higher speculative f means fewer cores suffice,
	// yielding a higher MIPS/W, at a quality cost.
	if spec.Freq <= safe.Freq {
		t.Errorf("speculative f %.3f not above safe %.3f", spec.Freq, safe.Freq)
	}
	if spec.N > safe.N {
		t.Errorf("speculative N=%d above safe N=%d", spec.N, safe.N)
	}
	if spec.RelMIPSPerWatt <= safe.RelMIPSPerWatt {
		t.Errorf("speculative MIPS/W %.2f not above safe %.2f", spec.RelMIPSPerWatt, safe.RelMIPSPerWatt)
	}
	if spec.RelQuality >= safe.RelQuality {
		t.Errorf("speculative quality %.3f not below safe %.3f", spec.RelQuality, safe.RelQuality)
	}
	// Paper: 8-41% frequency increase from speculation.
	gain := spec.Freq/safe.Freq - 1
	if gain < 0.02 || gain > 0.5 {
		t.Errorf("speculative f gain = %.0f%%, want ~8-41%%", gain*100)
	}
	if spec.Perr <= tech.ErrorFreePerr {
		t.Error("speculative point reports an error-free Perr")
	}
}

func TestFrontShape(t *testing.T) {
	s := newTestSolver(t)
	front, err := s.Front(Safe)
	if err != nil {
		t.Fatal(err)
	}
	if len(front) != len(s.Bench.Sweep()) {
		t.Fatalf("front has %d points", len(front))
	}
	// N grows with problem size; MIPS/W degrades with N (Section 6.3's
	// "degrading MIPS/W with increasing N"). Amortization of cluster
	// overheads allows small upticks at low N, so check the trend: the
	// last feasible point must sit clearly below the peak.
	peakEff, lastEff := 0.0, 0.0
	for i := 1; i < len(front); i++ {
		if front[i].N < front[i-1].N {
			t.Errorf("N not non-decreasing along the front at %d", i)
		}
		if front[i].Feasible && front[i-1].Feasible &&
			front[i].RelMIPSPerWatt > front[i-1].RelMIPSPerWatt+0.05 {
			t.Errorf("MIPS/W jumped with N at %d", i)
		}
	}
	for _, op := range front {
		if !op.Feasible {
			continue
		}
		if op.RelMIPSPerWatt > peakEff {
			peakEff = op.RelMIPSPerWatt
		}
		lastEff = op.RelMIPSPerWatt
	}
	if lastEff > peakEff-0.01 && peakEff > 0 {
		t.Errorf("MIPS/W does not degrade toward high N: peak %.2f, last feasible %.2f", peakEff, lastEff)
	}
	// The largest problem sizes exceed the chip: N- or power-limited.
	last := front[len(front)-1]
	if last.Feasible {
		t.Error("largest Expand point should be resource-limited on this chip")
	}
	if last.Limit != "cores" && last.Limit != "power" {
		t.Errorf("limit = %q", last.Limit)
	}
}

func TestQualityFloorMarksPoints(t *testing.T) {
	s := newTestSolver(t)
	s.QualityFloor = 0.99
	op, err := s.Solve(s.Bench.Sweep()[0], Speculative)
	if err != nil {
		t.Fatal(err)
	}
	if op.Feasible || op.Limit != "quality" {
		t.Errorf("deep Speculative Compress should be quality-limited, got %+v", op.Limit)
	}
}

func TestSpeculativeFrontSelection(t *testing.T) {
	_, _, _, qm := fixtures(t)
	f := qm.SpeculativeFront()
	if f != qm.Quarter && f != qm.Half {
		t.Fatal("speculative front must be one of the drop fronts")
	}
	// canneal's Drop 1/4 loss at the default size exceeds 5%, so the
	// paper's rule keeps Drop 1/4.
	loss := 1 - qm.Quarter.At(1)/qm.Default.At(1)
	if loss > 0.05 && f != qm.Quarter {
		t.Error("non-negligible Drop 1/4 degradation should select the 1/4 front")
	}
	if loss <= 0.05 && f != qm.Half {
		t.Error("negligible Drop 1/4 degradation should select the conservative 1/2 front")
	}
}

func TestSetVdd(t *testing.T) {
	s := newTestSolver(t)
	base := s.Vdd()
	if base != s.Chip.VddNTV() {
		t.Fatalf("default Vdd %.3f != chip VddNTV", base)
	}
	if err := s.SetVdd(base - 0.01); err == nil {
		t.Error("sub-VddMIN voltage accepted")
	}
	if err := s.SetVdd(1.5); err == nil {
		t.Error("beyond-STV voltage accepted")
	}
	if err := s.SetVdd(base + 0.1); err != nil {
		t.Fatal(err)
	}
	opHigh, err := s.Solve(s.Bench.DefaultInput(), Safe)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetVdd(base); err != nil {
		t.Fatal(err)
	}
	opBase, err := s.Solve(s.Bench.DefaultInput(), Safe)
	if err != nil {
		t.Fatal(err)
	}
	// The NTC premise: raising Vdd away from Vth costs energy
	// efficiency at iso-execution time. (The engaged set's common
	// frequency is not guaranteed monotone in Vdd: the greedy
	// efficiency ordering re-shuffles, see chip.SelectEfficient.)
	if opHigh.RelMIPSPerWatt >= opBase.RelMIPSPerWatt {
		t.Error("raising Vdd should cost energy efficiency (the NTC premise)")
	}
}

func TestClusterGranularEngagement(t *testing.T) {
	s := newTestSolver(t)
	s.SetClusterGranular(true)
	if !s.ClusterGranular() {
		t.Fatal("granularity flag lost")
	}
	op, err := s.Solve(s.Bench.DefaultInput(), Safe)
	if err != nil {
		t.Fatal(err)
	}
	s.SetClusterGranular(false)
	perCore, err := s.Solve(s.Bench.DefaultInput(), Safe)
	if err != nil {
		t.Fatal(err)
	}
	// Whole-cluster engagement drags each cluster's slowest member in,
	// so iso-time needs at least as many cores and is never more
	// efficient than free per-core selection.
	if op.N < perCore.N {
		t.Errorf("cluster-granular N=%d below per-core N=%d", op.N, perCore.N)
	}
	if op.RelMIPSPerWatt > perCore.RelMIPSPerWatt+1e-9 {
		t.Errorf("cluster granularity beat per-core selection: %.3f vs %.3f",
			op.RelMIPSPerWatt, perCore.RelMIPSPerWatt)
	}
	if op.Feasible {
		// Engagement must cover whole clusters up to the last one.
		full := op.N / s.Chip.Cfg.CoresPer * s.Chip.Cfg.CoresPer
		if op.N-full >= s.Chip.Cfg.CoresPer {
			t.Error("engagement order not cluster-contiguous")
		}
	}
}

func TestSolveBestDominatesMinimalN(t *testing.T) {
	s := newTestSolver(t)
	in := s.Bench.DefaultInput()
	minimal, err := s.Solve(in, Safe)
	if err != nil {
		t.Fatal(err)
	}
	best, err := s.SolveBest(in, Safe)
	if err != nil {
		t.Fatal(err)
	}
	if !best.Feasible {
		t.Fatal("best point infeasible")
	}
	if best.RelMIPSPerWatt < minimal.RelMIPSPerWatt-1e-9 {
		t.Errorf("SolveBest (%.3f) below Solve (%.3f)", best.RelMIPSPerWatt, minimal.RelMIPSPerWatt)
	}
	// Still iso-time.
	if best.ExecTime > s.STVTime()+1e-12 {
		t.Error("best point misses the execution-time target")
	}
	// When nothing is feasible, SolveBest falls back to the diagnosing
	// minimal-N point.
	s.QualityFloor = 5.0
	op, err := s.SolveBest(in, Safe)
	if err != nil {
		t.Fatal(err)
	}
	if op.Feasible || op.Limit == "" {
		t.Error("infeasible fallback lost its limit diagnosis")
	}
	s.QualityFloor = 0
}

// The solver's N tracks the paper's closed-form bound: at most the
// bound (the memory wall gives NTV cycles an IPC advantage), and no
// less than the bound deflated by that advantage.
func TestSolverTracksClosedFormN(t *testing.T) {
	s := newTestSolver(t)
	bl := s.Baseline()
	for _, in := range []float64{s.Bench.Sweep()[0], s.Bench.DefaultInput()} {
		op, err := s.Solve(in, Safe)
		if err != nil {
			t.Fatal(err)
		}
		if !op.Feasible {
			continue
		}
		bound := RequiredN(bl.N, bl.Freq, op.Freq, op.ProblemSize)
		ipcAdvantage := s.profile.IPC(op.Freq) / s.profile.IPC(bl.Freq)
		if float64(op.N) > bound+1 {
			t.Errorf("input %g: N=%d exceeds the closed-form bound %.1f", in, op.N, bound)
		}
		if float64(op.N) < bound/ipcAdvantage-1 {
			t.Errorf("input %g: N=%d below the IPC-adjusted bound %.1f", in, op.N, bound/ipcAdvantage)
		}
	}
}
