package core

import (
	"math"
	"testing"

	"repro/internal/fault"
)

// The closed loop: the timing the CC/DC runtime simulates and the
// quality the real kernel delivers must agree with the solver's
// predictions for the same operating point.
func TestExecuteMatchesPredictions(t *testing.T) {
	s := newTestSolver(t)
	for _, flavor := range []Flavor{Safe, Speculative} {
		op, err := s.Solve(s.Bench.DefaultInput(), flavor)
		if err != nil {
			t.Fatal(err)
		}
		ex, err := s.Execute(op, 1)
		if err != nil {
			t.Fatal(err)
		}
		// The runtime's parallel-phase makespan tracks the analytic
		// parallel time within polling slack.
		parTime := op.ExecTime * (1 - s.profile.SerialFrac)
		if ex.VirtualTime < 0.8*parTime || ex.VirtualTime > 1.2*op.ExecTime {
			t.Errorf("%v: virtual time %.4fs vs predicted parallel %.4fs", flavor, ex.VirtualTime, parTime)
		}
		// All tasks completed without phantom failures.
		if ex.Stats.TasksDone != 4*op.N || ex.Stats.Retries != 0 {
			t.Errorf("%v: runtime stats %+v", flavor, ex.Stats)
		}
		// Measured quality agrees with the front's interpolation.
		if math.Abs(ex.MeasuredRelQuality-op.RelQuality) > 0.1 {
			t.Errorf("%v: measured quality %.3f vs predicted %.3f", flavor, ex.MeasuredRelQuality, op.RelQuality)
		}
	}
}

func TestExecutePlanMatchesFlavor(t *testing.T) {
	s := newTestSolver(t)
	safeOp, err := s.Solve(s.Bench.DefaultInput(), Safe)
	if err != nil {
		t.Fatal(err)
	}
	safeEx, err := s.Execute(safeOp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if safeEx.Plan.Active() {
		t.Error("safe execution carries a fault plan")
	}
	specOp, err := s.Solve(s.Bench.DefaultInput(), Speculative)
	if err != nil {
		t.Fatal(err)
	}
	specEx, err := s.Execute(specOp, 1)
	if err != nil {
		t.Fatal(err)
	}
	if specEx.Plan.Mode != fault.Drop {
		t.Error("speculative execution lacks the Drop plan")
	}
	// Speculation costs measured quality, as predicted.
	if specEx.MeasuredRelQuality >= safeEx.MeasuredRelQuality {
		t.Errorf("speculative measured quality %.3f not below safe %.3f",
			specEx.MeasuredRelQuality, safeEx.MeasuredRelQuality)
	}
	// Both meet the same iso-time target; speculation's win is fewer
	// engaged cores for it, not less time.
	if specOp.N >= safeOp.N {
		t.Errorf("speculative N=%d not below safe N=%d", specOp.N, safeOp.N)
	}
	ratio := specEx.VirtualTime / safeEx.VirtualTime
	if ratio < 0.85 || ratio > 1.15 {
		t.Errorf("iso-time violated between flavors: %.4f vs %.4f", specEx.VirtualTime, safeEx.VirtualTime)
	}
}

func TestExecuteValidation(t *testing.T) {
	s := newTestSolver(t)
	if _, err := s.Execute(OperatingPoint{Benchmark: "other", N: 1, Freq: 1}, 1); err == nil {
		t.Error("cross-benchmark execution accepted")
	}
	if _, err := s.Execute(OperatingPoint{Benchmark: s.Bench.Name()}, 1); err == nil {
		t.Error("degenerate operating point accepted")
	}
}
