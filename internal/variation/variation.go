// Package variation models within-die parametric process variation in
// the style of VARIUS-NTV: each transistor parameter (threshold voltage
// Vth, effective channel length Leff) deviates from its design value by
// the sum of a spatially-correlated systematic component and an
// uncorrelated random component.
//
// The systematic component is a Gaussian random field with a spherical
// correlation structure of range phi (expressed as a fraction of the
// chip width), the same structure VARIUS obtains from geoR. Fields are
// sampled exactly at the set of layout points of interest (core and
// memory-block centers) via a Cholesky factorization of the covariance
// matrix, so no gridding or interpolation error enters.
//
// Everything is deterministic given a seed, and a single factorization
// is reused across the Monte-Carlo chip population. Factorizations are
// additionally memoized process-wide per (point set, field parameters)
// — see NewSampler — so concurrent chip factories and SampleField calls
// share one O(n³) Cholesky instead of each refactorizing the same
// covariance.
//
// Two sampling paths exist, selected by grid size:
//
//   - Dense Cholesky (Sampler): exact at ANY point layout, O(n³) setup
//     and O(n²) per draw. SampleField keeps this path for grids up to
//     ExactSampleCap points (4096, a 128 MB factor and tens of seconds
//     of factorization already), both because it is the historical
//     bit-exact path and because small dense draws beat the FFT's
//     constant factor.
//   - FFT circulant embedding (CirculantSampler): regular grids only.
//     The stationary covariance is embedded on a padded periodic
//     torus, diagonalized by one 2-D FFT, and each realization costs
//     one more FFT — O(n log n) per draw, O(n) memory, no size cap.
//     With the padding past the correlation range the spherical
//     correlogram's embedding is exact, so the two paths agree in
//     distribution (pinned by the statistical-equivalence tests).
//
// SampleField applies the selection rule automatically: dense at or
// below ExactSampleCap points (bit-identical to all historical
// output), circulant above. Callers that want the O(n log n) path on a
// small grid construct a CirculantSampler directly.
package variation

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/telemetry"
)

// Point is a location on the die in normalized coordinates: the chip
// spans [0,1] x [0,1].
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance to q in normalized chip units.
func (p Point) Dist(q Point) float64 {
	dx, dy := p.X-q.X, p.Y-q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Correlogram selects the spatial correlation family of the systematic
// component.
type Correlogram int

// Correlogram families.
const (
	// Spherical is VARIUS's choice: exactly zero correlation beyond the
	// range phi.
	Spherical Correlogram = iota
	// Exponential decays as exp(-3r/phi), reaching ~5% at the range —
	// an alternative fit some process data prefers.
	Exponential
)

// String names the correlogram.
func (c Correlogram) String() string {
	if c == Exponential {
		return "exponential"
	}
	return "spherical"
}

// FieldParams configures one parameter's variation field.
type FieldParams struct {
	SigmaMu   float64 // total sigma/mu of the parameter (e.g. 0.15 for Vth)
	CorrRange float64 // phi: correlation range as a fraction of chip width
	SysFrac   float64 // fraction of total variance that is systematic (spatially correlated)
	// Corr selects the correlation family (default Spherical, as in
	// VARIUS).
	Corr Correlogram
}

// DefaultVth returns the paper's Table 2 Vth variation:
// total sigma/mu = 15%, phi = 0.1, variance split evenly between
// systematic and random components (the customary VARIUS split).
func DefaultVth() FieldParams {
	return FieldParams{SigmaMu: 0.15, CorrRange: 0.1, SysFrac: 0.5}
}

// DefaultLeff returns the paper's Table 2 Leff variation:
// total sigma/mu = 7.5%, phi = 0.1, even systematic/random split.
func DefaultLeff() FieldParams {
	return FieldParams{SigmaMu: 0.075, CorrRange: 0.1, SysFrac: 0.5}
}

// Validate reports the first implausible parameter, or nil.
func (fp FieldParams) Validate() error {
	switch {
	case fp.SigmaMu <= 0 || fp.SigmaMu > 0.5:
		return fmt.Errorf("variation: sigma/mu %.3f outside (0, 0.5]", fp.SigmaMu)
	case fp.CorrRange <= 0 || fp.CorrRange > 2:
		return fmt.Errorf("variation: correlation range %.3f outside (0, 2]", fp.CorrRange)
	case fp.SysFrac < 0 || fp.SysFrac > 1:
		return fmt.Errorf("variation: systematic fraction %.3f outside [0, 1]", fp.SysFrac)
	}
	return nil
}

// SphericalCorr returns the spherical correlogram at distance r for
// range phi: 1 - 1.5(r/phi) + 0.5(r/phi)^3 within the range, 0 beyond.
func SphericalCorr(r, phi float64) float64 {
	if r <= 0 {
		return 1
	}
	if r >= phi {
		return 0
	}
	x := r / phi
	return 1 - 1.5*x + 0.5*x*x*x
}

// ExponentialCorr returns the exponential correlogram exp(-3r/phi),
// whose practical range (5% correlation) is phi.
func ExponentialCorr(r, phi float64) float64 {
	if r <= 0 {
		return 1
	}
	return math.Exp(-3 * r / phi)
}

// corr dispatches on the configured family.
func (fp FieldParams) corr(r float64) float64 {
	if fp.Corr == Exponential {
		return ExponentialCorr(r, fp.CorrRange)
	}
	return SphericalCorr(r, fp.CorrRange)
}

// Sampler draws correlated relative deviations at a fixed set of layout
// points. Construct once per (point set, field) pair and reuse for the
// whole chip population.
type Sampler struct {
	params   FieldParams
	n        int
	chol     *mathx.Matrix // factor of the systematic covariance
	sigmaSys float64
	sigmaRnd float64
}

// cholCache memoizes covariance factors per exact (field parameters,
// point set) key. The factor is immutable after construction (Sample
// only multiplies by it), so samplers share cached entries freely
// across goroutines. Entries above cholCachePoints points are computed
// but not retained: a dense 2048-point factor is already 32 MB, and the
// repository's hot sets (chip layouts) are an order of magnitude
// smaller.
var cholCache = parallel.Cache[string, *mathx.Matrix]{Name: "variation.Cholesky"}

const cholCachePoints = 2048

// cholKey encodes the exact bit patterns of the field parameters and
// every coordinate, so distinct inputs can never collide.
func cholKey(pts []Point, fp FieldParams) string {
	buf := make([]byte, 0, 8*(2*len(pts)+4))
	put := func(v float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	put(fp.SigmaMu)
	put(fp.CorrRange)
	put(fp.SysFrac)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(fp.Corr))
	for _, p := range pts {
		put(p.X)
		put(p.Y)
	}
	return string(buf)
}

// factorize builds the systematic covariance for the point set and
// Cholesky-factorizes it.
func factorize(pts []Point, fp FieldParams, sigmaSys float64) (*mathx.Matrix, error) {
	n := len(pts)
	cov := mathx.NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			c := sigmaSys * sigmaSys * fp.corr(pts[i].Dist(pts[j]))
			cov.Set(i, j, c)
			cov.Set(j, i, c)
		}
	}
	chol, err := mathx.Cholesky(cov)
	if err != nil {
		return nil, fmt.Errorf("variation: covariance factorization: %w", err)
	}
	return chol, nil
}

// NewSampler factorizes the systematic covariance for the point set.
// Factors are memoized process-wide: concurrent calls with the same
// point set and parameters share one factorization (singleflight), so
// a Monte-Carlo population costs one O(n³) factorization total.
func NewSampler(pts []Point, fp FieldParams) (*Sampler, error) {
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	if len(pts) == 0 {
		return nil, fmt.Errorf("variation: empty point set")
	}
	n := len(pts)
	sigmaSys := fp.SigmaMu * math.Sqrt(fp.SysFrac)
	sigmaRnd := fp.SigmaMu * math.Sqrt(1-fp.SysFrac)

	var chol *mathx.Matrix
	if sigmaSys > 0 {
		var err error
		if n <= cholCachePoints {
			chol, err = cholCache.Do(cholKey(pts, fp), func() (*mathx.Matrix, error) {
				return factorize(pts, fp, sigmaSys)
			})
		} else {
			chol, err = factorize(pts, fp, sigmaSys)
		}
		if err != nil {
			return nil, err
		}
	}
	return &Sampler{params: fp, n: n, chol: chol, sigmaSys: sigmaSys, sigmaRnd: sigmaRnd}, nil
}

// ResetFactorizationCache empties the process-wide factor cache; it
// exists for benchmarks that need to measure cold-cache behavior.
func ResetFactorizationCache() { cholCache.Reset() }

// N returns the number of layout points.
func (s *Sampler) N() int { return s.n }

// Params returns the field parameters the sampler was built with.
func (s *Sampler) Params() FieldParams { return s.params }

// Sample draws one chip's relative deviations: element i is the
// fractional deviation of the parameter at point i, so the actual
// parameter value is nominal * (1 + dev[i]).
func (s *Sampler) Sample(rng *mathx.RNG) []float64 {
	timer := telemetry.StartTimer()
	dev := make([]float64, s.n)
	if s.chol != nil {
		z := make([]float64, s.n)
		for i := range z {
			z[i] = rng.StdNormal()
		}
		sys := s.chol.LowerMulVec(z)
		copy(dev, sys)
	}
	if s.sigmaRnd > 0 {
		for i := range dev {
			dev[i] += s.sigmaRnd * rng.StdNormal()
		}
	}
	timer.ObserveIn(telSampleNs)
	return dev
}

// ExactSampleCap is the largest point count SampleField hands to the
// dense-Cholesky exact sampler; larger grids go through the FFT
// circulant path (package doc). The dense factor at this size is
// already 128 MB and tens of seconds of O(n³) work.
const ExactSampleCap = 4096

// SampleField renders one systematic+random field realization on a
// w x h grid covering the whole die; useful for visualization, for
// fine-grid per-core atlases, and for statistical validation of the
// correlation structure.
//
// Path selection (package doc): grids of at most ExactSampleCap points
// use the dense-Cholesky exact sampler — bit-identical to this
// function's historical output — while larger grids use the FFT
// circulant-embedding sampler, whose draws are O(n log n) and whose
// distribution matches the dense path. Both paths memoize their
// expensive precomputation process-wide (the Cholesky factor and the
// torus eigen-decomposition respectively), so repeated calls on the
// same grid and parameters refactorize nothing; dense grids above the
// factor cache's retention threshold still pay one factorization per
// call, so prefer a reused Sampler or CirculantSampler for repeated
// large draws.
func SampleField(w, h int, fp FieldParams, rng *mathx.RNG) (*mathx.Grid2D, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("variation: field dimensions must be positive")
	}
	if w*h > ExactSampleCap {
		s, err := NewCirculantSampler(w, h, fp)
		if err != nil {
			return nil, err
		}
		g := s.SampleGrid(rng)
		emitFieldSampled(w, h, "circulant")
		return g, nil
	}
	pts := make([]Point, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pts = append(pts, Point{
				X: (float64(x) + 0.5) / float64(w),
				Y: (float64(y) + 0.5) / float64(h),
			})
		}
	}
	s, err := NewSampler(pts, fp)
	if err != nil {
		return nil, err
	}
	dev := s.Sample(rng)
	g := mathx.NewGrid2D(w, h)
	copy(g.V, dev)
	emitFieldSampled(w, h, "dense")
	return g, nil
}
