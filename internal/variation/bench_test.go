package variation

import (
	"sync"
	"testing"

	"repro/internal/mathx"
)

// Each benchmark's sampler is built lazily and exactly once per
// process, and only when its own benchmark runs: the dense 64x64
// factorization alone is a 4096-point O(n^3) Cholesky (tens of
// seconds), which must be paid neither per iteration nor by processes
// benchmarking only the circulant path (scripts/bench_field.sh runs
// one benchmark per process).
type lazyDense struct {
	once sync.Once
	s    *Sampler
}

func (l *lazyDense) get(w, h int) *Sampler {
	l.once.Do(func() {
		s, err := NewSampler(gridPoints(w, h), DefaultVth())
		if err != nil {
			panic(err)
		}
		l.s = s
	})
	return l.s
}

type lazyCirculant struct {
	once sync.Once
	s    *CirculantSampler
}

func (l *lazyCirculant) get(w, h int) *CirculantSampler {
	l.once.Do(func() {
		s, err := NewCirculantSampler(w, h, DefaultVth())
		if err != nil {
			panic(err)
		}
		l.s = s
	})
	return l.s
}

var (
	benchDense16   lazyDense
	benchDense64   lazyDense
	benchCirc16    lazyCirculant
	benchCirc64    lazyCirculant
	benchCirc128   lazyCirculant
	benchCirc288co lazyCirculant // 288-core die at 8x8 cells per core
)

func benchDenseDraw(b *testing.B, s *Sampler) {
	rng := mathx.NewRNG(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sample(rng)
	}
}

func benchCirculantDraw(b *testing.B, s *CirculantSampler) {
	rng := mathx.NewRNG(1)
	dst := make([]float64, s.N())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.SampleTo(dst, rng)
	}
}

func BenchmarkFieldDense16x16(b *testing.B) { benchDenseDraw(b, benchDense16.get(16, 16)) }

func BenchmarkFieldDense64x64(b *testing.B) { benchDenseDraw(b, benchDense64.get(64, 64)) }

func BenchmarkFieldCirculant16x16(b *testing.B) { benchCirculantDraw(b, benchCirc16.get(16, 16)) }

func BenchmarkFieldCirculant64x64(b *testing.B) { benchCirculantDraw(b, benchCirc64.get(64, 64)) }

func BenchmarkFieldCirculant128x128(b *testing.B) {
	benchCirculantDraw(b, benchCirc128.get(128, 128))
}

// 288 cores at 8x8 field cells per core on a 2:1 die: the fine-grid
// atlas case the dense path could never reach (an 18432-point factor
// would be 2.7 GB).
func BenchmarkFieldCirculant288core(b *testing.B) {
	benchCirculantDraw(b, benchCirc288co.get(192, 96))
}
