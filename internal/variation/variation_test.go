package variation

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/mathx"
)

func TestFieldParamsValidate(t *testing.T) {
	if err := DefaultVth().Validate(); err != nil {
		t.Fatal(err)
	}
	if err := DefaultLeff().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []FieldParams{
		{SigmaMu: 0, CorrRange: 0.1, SysFrac: 0.5},
		{SigmaMu: 0.9, CorrRange: 0.1, SysFrac: 0.5},
		{SigmaMu: 0.1, CorrRange: 0, SysFrac: 0.5},
		{SigmaMu: 0.1, CorrRange: 0.1, SysFrac: 1.5},
	}
	for i, fp := range bad {
		if err := fp.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestSphericalCorrProperties(t *testing.T) {
	if SphericalCorr(0, 0.1) != 1 {
		t.Error("corr at 0 distance must be 1")
	}
	if SphericalCorr(0.1, 0.1) != 0 || SphericalCorr(5, 0.1) != 0 {
		t.Error("corr beyond range must be 0")
	}
	f := func(a, b float64) bool {
		r1 := math.Abs(math.Mod(a, 0.1))
		r2 := math.Abs(math.Mod(b, 0.1))
		if r1 > r2 {
			r1, r2 = r2, r1
		}
		return SphericalCorr(r1, 0.1) >= SphericalCorr(r2, 0.1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randomPoints(n int, rng *mathx.RNG) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{X: rng.Float64(), Y: rng.Float64()}
	}
	return pts
}

func TestSampleMarginalStats(t *testing.T) {
	rng := mathx.NewRNG(101)
	pts := randomPoints(64, rng)
	s, err := NewSampler(pts, DefaultVth())
	if err != nil {
		t.Fatal(err)
	}
	// Pool deviations across many chips; the marginal must be ~N(0, 0.15^2).
	var all []float64
	for chip := 0; chip < 400; chip++ {
		all = append(all, s.Sample(rng)...)
	}
	if m := mathx.Mean(all); math.Abs(m) > 0.01 {
		t.Errorf("mean deviation = %.4f, want ~0", m)
	}
	if sd := mathx.StdDev(all); math.Abs(sd-0.15) > 0.01 {
		t.Errorf("sigma = %.4f, want ~0.15", sd)
	}
}

func TestSpatialCorrelationStructure(t *testing.T) {
	// Two points much closer than the correlation range must correlate
	// at about SysFrac; two points beyond it must not correlate.
	rng := mathx.NewRNG(202)
	pts := []Point{{0.5, 0.5}, {0.505, 0.5}, {0.9, 0.9}}
	s, err := NewSampler(pts, FieldParams{SigmaMu: 0.15, CorrRange: 0.1, SysFrac: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	n := 6000
	a, b, c := make([]float64, n), make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		d := s.Sample(rng)
		a[i], b[i], c[i] = d[0], d[1], d[2]
	}
	near := mathx.Pearson(a, b)
	far := mathx.Pearson(a, c)
	if near < 0.35 || near > 0.6 {
		t.Errorf("near-pair correlation = %.3f, want ~0.5 (SysFrac)", near)
	}
	if math.Abs(far) > 0.08 {
		t.Errorf("far-pair correlation = %.3f, want ~0", far)
	}
}

func TestSamplerDeterminism(t *testing.T) {
	pts := randomPoints(20, mathx.NewRNG(1))
	s1, _ := NewSampler(pts, DefaultVth())
	s2, _ := NewSampler(pts, DefaultVth())
	d1 := s1.Sample(mathx.NewRNG(77))
	d2 := s2.Sample(mathx.NewRNG(77))
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("sampling is not reproducible")
		}
	}
}

func TestPureRandomField(t *testing.T) {
	// SysFrac 0 must work without a Cholesky factor and produce
	// uncorrelated deviations.
	rng := mathx.NewRNG(5)
	pts := []Point{{0.1, 0.1}, {0.1001, 0.1}}
	s, err := NewSampler(pts, FieldParams{SigmaMu: 0.1, CorrRange: 0.1, SysFrac: 0})
	if err != nil {
		t.Fatal(err)
	}
	n := 4000
	a, b := make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		d := s.Sample(rng)
		a[i], b[i] = d[0], d[1]
	}
	if r := mathx.Pearson(a, b); math.Abs(r) > 0.06 {
		t.Errorf("random-only field correlates: r=%.3f", r)
	}
}

func TestPureSystematicField(t *testing.T) {
	// SysFrac 1: co-located points get identical deviations.
	rng := mathx.NewRNG(6)
	pts := []Point{{0.3, 0.3}, {0.3, 0.3}}
	s, err := NewSampler(pts, FieldParams{SigmaMu: 0.1, CorrRange: 0.1, SysFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	d := s.Sample(rng)
	if math.Abs(d[0]-d[1]) > 1e-4 {
		t.Errorf("co-located systematic deviations differ: %g vs %g", d[0], d[1])
	}
}

func TestEmptyPointSetRejected(t *testing.T) {
	if _, err := NewSampler(nil, DefaultVth()); err == nil {
		t.Error("empty point set accepted")
	}
}

func TestSampleField(t *testing.T) {
	g, err := SampleField(16, 16, DefaultVth(), mathx.NewRNG(9))
	if err != nil {
		t.Fatal(err)
	}
	if g.W != 16 || g.H != 16 {
		t.Fatalf("bad grid dims %dx%d", g.W, g.H)
	}
	min, max := mathx.MinMax(g.V)
	if min == max {
		t.Error("degenerate field")
	}
	if math.Abs(min) > 1 || math.Abs(max) > 1 {
		t.Errorf("implausible deviations: [%g, %g]", min, max)
	}
}

// The sampled systematic field must reproduce the analytic variogram
// gamma(r) = sigma_sys^2 (1 - rho(r)) + sigma_rand^2, the statistical
// contract VARIUS-NTV's geoR fields satisfy.
func TestEmpiricalVariogramMatchesModel(t *testing.T) {
	fp := FieldParams{SigmaMu: 0.15, CorrRange: 0.1, SysFrac: 0.5}
	// Point pairs at controlled separations.
	seps := []float64{0.01, 0.03, 0.05, 0.08, 0.15}
	var pts []Point
	for _, r := range seps {
		pts = append(pts, Point{0.2, 0.2}, Point{0.2 + r, 0.2})
	}
	s, err := NewSampler(pts, fp)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(31)
	n := 8000
	sq := make([]float64, len(seps))
	for k := 0; k < n; k++ {
		d := s.Sample(rng)
		for i := range seps {
			diff := d[2*i] - d[2*i+1]
			sq[i] += diff * diff
		}
	}
	sigma2 := fp.SigmaMu * fp.SigmaMu
	sysVar, rndVar := fp.SysFrac*sigma2, (1-fp.SysFrac)*sigma2
	for i, r := range seps {
		gammaEmp := sq[i] / float64(n) / 2
		gammaModel := sysVar*(1-SphericalCorr(r, fp.CorrRange)) + rndVar
		if gammaEmp < 0.8*gammaModel || gammaEmp > 1.2*gammaModel {
			t.Errorf("variogram at r=%.2f: empirical %.5f vs model %.5f", r, gammaEmp, gammaModel)
		}
	}
}

func TestExponentialCorrelogram(t *testing.T) {
	if ExponentialCorr(0, 0.1) != 1 {
		t.Error("corr at zero distance must be 1")
	}
	// ~5% at the range.
	if c := ExponentialCorr(0.1, 0.1); c < 0.03 || c > 0.08 {
		t.Errorf("corr at the range = %.3f, want ~0.05", c)
	}
	if Spherical.String() != "spherical" || Exponential.String() != "exponential" {
		t.Error("names wrong")
	}
	// The exponential family plugs into the sampler.
	fp := FieldParams{SigmaMu: 0.15, CorrRange: 0.1, SysFrac: 0.5, Corr: Exponential}
	pts := []Point{{0.5, 0.5}, {0.52, 0.5}, {0.9, 0.1}}
	s, err := NewSampler(pts, fp)
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(77)
	nn := 4000
	a, b := make([]float64, nn), make([]float64, nn)
	for i := 0; i < nn; i++ {
		d := s.Sample(rng)
		a[i], b[i] = d[0], d[1]
	}
	// Near points correlate at ~SysFrac * rho(0.02) ~ 0.5*0.55.
	if r := mathx.Pearson(a, b); r < 0.15 || r > 0.45 {
		t.Errorf("exponential near-pair correlation %.3f out of band", r)
	}
}

// Historically SampleField errored above 4096 points; the circulant
// path lifted that cap (TestSampleFieldLiftsCap), so only degenerate
// dimensions are rejected now.
func TestSampleFieldRejectsBadDims(t *testing.T) {
	if _, err := SampleField(0, 4, DefaultVth(), mathx.NewRNG(1)); err == nil {
		t.Error("zero dimension accepted")
	}
	if _, err := SampleField(4, -2, DefaultVth(), mathx.NewRNG(1)); err == nil {
		t.Error("negative dimension accepted")
	}
}
