// Circulant-embedding field sampling: the O(n log n) path behind
// SampleField for grids too large for the dense-Cholesky exact sampler.
//
// The systematic component is a stationary Gaussian field, so its
// covariance between two grid cells depends only on their separation.
// Embedding the covariance kernel on a periodic torus that is padded
// past the correlation range makes the covariance matrix
// block-circulant, and a block-circulant matrix is diagonalized by the
// 2-D DFT: one forward FFT of the kernel yields the full eigenvalue
// spectrum. A realization is then one more FFT of spectrally-shaped
// complex white noise — for the spherical correlogram (compact
// support) the torus covariance restricted to the sampling window is
// exactly the target covariance, so the draw is exact, not
// approximate, whenever the embedding's eigenvalues are nonnegative.
// Tiny negative eigenvalues from floating-point rounding are clamped
// to zero; the relative mass clamped is recorded and available via
// ClampedEigenMass for diagnostics.
package variation

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"

	"repro/internal/mathx"
	"repro/internal/parallel"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// circulantEigen is the one-per-(dims, params) precomputation: the
// square roots of the torus eigenvalues, pre-scaled so a draw is just
// FFT(sqrtLam .* Z). It is immutable after construction and shared
// freely between samplers through eigenCache.
type circulantEigen struct {
	m, n       int       // torus dims (power-of-two), m covers x, n covers y
	sqrtLam    []float64 // sqrt(max(lambda,0) / (m*n)), length m*n
	clampedRel float64   // |most negative eigenvalue| / largest, 0 when clean
}

// eigenCache memoizes torus eigen-decompositions per exact
// (grid dims, field parameters) key, with singleflight semantics like
// the Cholesky factor cache: a Monte-Carlo fleet pays one FFT of the
// covariance kernel per distinct field, no matter how many samplers
// are constructed concurrently.
var eigenCache = parallel.Cache[string, *circulantEigen]{Name: "variation.CirculantEigen"}

// telSampleNs tracks the wall time of every correlated-field draw
// (both the dense-Cholesky and the circulant path).
var telSampleNs = telemetry.GetHistogram("variation.sample_ns")

// eigenKey encodes the exact bit patterns of the grid dims and field
// parameters, so distinct inputs can never collide.
func eigenKey(w, h int, fp FieldParams) string {
	buf := make([]byte, 0, 8*7)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(w))
	buf = binary.LittleEndian.AppendUint64(buf, uint64(h))
	put := func(v float64) {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	put(fp.SigmaMu)
	put(fp.CorrRange)
	put(fp.SysFrac)
	buf = binary.LittleEndian.AppendUint64(buf, uint64(fp.Corr))
	return string(buf)
}

// negEigenTol is the relative negative-eigenvalue mass accepted from a
// padded embedding before the padding is doubled: rounding noise, not
// a structurally indefinite embedding.
const negEigenTol = 1e-9

// embedTorus builds the torus covariance kernel for a w x h sampling
// window at the given padding (in cells per axis) and eigendecomposes
// it with one forward 2-D FFT. minLam/maxLam report the spectrum's
// extremes before clamping.
func embedTorus(w, h, padX, padY int, fp FieldParams, sigmaSys float64) (eig *circulantEigen, minLam, maxLam float64) {
	m := mathx.NextPow2(w + padX)
	n := mathx.NextPow2(h + padY)
	re := make([]float64, m*n)
	im := make([]float64, m*n)
	dx := 1 / float64(w)
	dy := 1 / float64(h)
	s2 := sigmaSys * sigmaSys
	for j := 0; j < n; j++ {
		// Torus separation: the shorter way around each axis.
		wy := j
		if n-j < wy {
			wy = n - j
		}
		ry := float64(wy) * dy
		for i := 0; i < m; i++ {
			wx := i
			if m-i < wx {
				wx = m - i
			}
			rx := float64(wx) * dx
			re[j*m+i] = s2 * fp.corr(math.Sqrt(rx*rx+ry*ry))
		}
	}
	mathx.NewFFT2DPlan(m, n).Forward(re, im)
	minLam, maxLam = re[0], re[0]
	for _, l := range re {
		if l < minLam {
			minLam = l
		}
		if l > maxLam {
			maxLam = l
		}
	}
	scale := 1 / float64(m*n)
	sqrtLam := re // reuse the kernel buffer for the shaped spectrum
	for k, l := range re {
		if l < 0 {
			l = 0
		}
		sqrtLam[k] = math.Sqrt(l * scale)
	}
	eig = &circulantEigen{m: m, n: n, sqrtLam: sqrtLam}
	if maxLam > 0 && minLam < 0 {
		eig.clampedRel = -minLam / maxLam
	}
	return eig, minLam, maxLam
}

// newEigen computes the torus eigen-decomposition for a w x h grid,
// doubling the padding once if the first embedding shows more than
// rounding-level negative eigenvalue mass.
func newEigen(w, h int, fp FieldParams, sigmaSys float64) (*circulantEigen, error) {
	// Pad each axis past the correlation range (phi is a fraction of
	// the unit die, i.e. phi*w cells in x), so no pair of window cells
	// sees the short way around the torus within the range.
	padX := int(math.Ceil(fp.CorrRange*float64(w))) + 1
	padY := int(math.Ceil(fp.CorrRange*float64(h))) + 1
	eig, minLam, maxLam := embedTorus(w, h, padX, padY, fp, sigmaSys)
	if maxLam <= 0 {
		return nil, fmt.Errorf("variation: degenerate circulant embedding for %dx%d field", w, h)
	}
	if eig.clampedRel > negEigenTol {
		eig, minLam, maxLam = embedTorus(w, h, 2*padX, 2*padY, fp, sigmaSys)
		_ = minLam
		if maxLam <= 0 {
			return nil, fmt.Errorf("variation: degenerate circulant embedding for %dx%d field", w, h)
		}
	}
	return eig, nil
}

// CirculantSampler draws correlated relative deviations on a regular
// w x h grid covering the die in O(n log n) per realization, with the
// one eigen-decomposition per (dims, parameters) shared process-wide.
// Construct with NewCirculantSampler.
//
// A sampler reuses internal scratch between draws (SampleTo performs
// zero allocations), so draws on one sampler are serialized by an
// internal mutex; for parallel drawing build one sampler per goroutine
// — they share the cached eigen-decomposition, which is the expensive
// part.
type CirculantSampler struct {
	w, h     int
	params   FieldParams
	sigmaRnd float64
	eig      *circulantEigen // nil when SysFrac == 0

	mu     sync.Mutex
	fft    *mathx.FFT2DPlan
	re, im []float64
}

// NewCirculantSampler prepares the circulant sampler for a w x h grid
// of cell-centered points, the same layout SampleField uses. The
// eigen-decomposition is memoized process-wide (singleflight) under
// the variation.CirculantEigen cache, so concurrent constructions for
// the same (dims, parameters) share one spectral factorization.
func NewCirculantSampler(w, h int, fp FieldParams) (*CirculantSampler, error) {
	if err := fp.Validate(); err != nil {
		return nil, err
	}
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("variation: field dimensions must be positive")
	}
	sigmaSys := fp.SigmaMu * math.Sqrt(fp.SysFrac)
	s := &CirculantSampler{
		w:        w,
		h:        h,
		params:   fp,
		sigmaRnd: fp.SigmaMu * math.Sqrt(1-fp.SysFrac),
	}
	if sigmaSys > 0 {
		eig, err := eigenCache.Do(eigenKey(w, h, fp), func() (*circulantEigen, error) {
			return newEigen(w, h, fp, sigmaSys)
		})
		if err != nil {
			return nil, err
		}
		s.eig = eig
		s.fft = mathx.NewFFT2DPlan(eig.m, eig.n)
		s.re = make([]float64, eig.m*eig.n)
		s.im = make([]float64, eig.m*eig.n)
	}
	return s, nil
}

// ResetEigenCache empties the process-wide eigen-decomposition cache;
// it exists for benchmarks that need to measure cold-cache behavior.
func ResetEigenCache() { eigenCache.Reset() }

// Dims returns the grid dimensions.
func (s *CirculantSampler) Dims() (w, h int) { return s.w, s.h }

// N returns the number of grid points per realization.
func (s *CirculantSampler) N() int { return s.w * s.h }

// Params returns the field parameters the sampler was built with.
func (s *CirculantSampler) Params() FieldParams { return s.params }

// ClampedEigenMass reports the relative magnitude of the most negative
// torus eigenvalue that had to be clamped to zero (0 for a clean
// embedding). Values at rounding level (<= ~1e-9) are expected; larger
// values would signal an inadequate embedding.
func (s *CirculantSampler) ClampedEigenMass() float64 {
	if s.eig == nil {
		return 0
	}
	return s.eig.clampedRel
}

// Sample draws one realization as a freshly allocated row-major slice:
// element y*w+x is the fractional parameter deviation at grid cell
// (x, y). One allocation per call; use SampleTo to reuse a buffer.
func (s *CirculantSampler) Sample(rng *mathx.RNG) []float64 {
	dev := make([]float64, s.w*s.h)
	s.SampleTo(dev, rng)
	return dev
}

// SampleGrid draws one realization as a Grid2D.
func (s *CirculantSampler) SampleGrid(rng *mathx.RNG) *mathx.Grid2D {
	g := mathx.NewGrid2D(s.w, s.h)
	s.SampleTo(g.V, rng)
	return g
}

// SampleTo draws one realization into dst (length w*h), performing no
// allocations: the systematic component is FFT(sqrtLam .* Z) restricted
// to the sampling window, the random component is added per cell.
func (s *CirculantSampler) SampleTo(dst []float64, rng *mathx.RNG) {
	if len(dst) != s.w*s.h {
		panic("variation: SampleTo buffer length mismatch")
	}
	timer := telemetry.StartTimer()
	s.mu.Lock()
	if s.eig != nil {
		// Spectrally-shaped complex white noise: with Z1 + i*Z2 per
		// mode, the real part of the transform carries the target
		// covariance exactly (and the imaginary part is an independent
		// realization this implementation discards for determinism's
		// sake — each draw depends only on its own RNG stream).
		for k, sl := range s.eig.sqrtLam {
			s.re[k] = sl * rng.StdNormal()
			s.im[k] = sl * rng.StdNormal()
		}
		s.fft.Forward(s.re, s.im)
		m := s.eig.m
		for y := 0; y < s.h; y++ {
			copy(dst[y*s.w:(y+1)*s.w], s.re[y*m:y*m+s.w])
		}
	} else {
		for i := range dst {
			dst[i] = 0
		}
	}
	s.mu.Unlock()
	if s.sigmaRnd > 0 {
		for i := range dst {
			dst[i] += s.sigmaRnd * rng.StdNormal()
		}
	}
	timer.ObserveIn(telSampleNs)
}

// emitFieldSampled records the domain event for one SampleField call.
func emitFieldSampled(w, h int, path string) {
	events.New("field.sampled").
		Int("w", int64(w)).
		Int("h", int64(h)).
		Int("points", int64(w*h)).
		Str("path", path).
		Emit()
}
