package variation

import (
	"fmt"
	"math"
	"testing"

	"repro/internal/converge"
	"repro/internal/mathx"
)

// gridPoints builds the cell-centered point set SampleField uses, for
// driving the dense sampler on the same layout as the circulant one.
func gridPoints(w, h int) []Point {
	pts := make([]Point, 0, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			pts = append(pts, Point{
				X: (float64(x) + 0.5) / float64(w),
				Y: (float64(y) + 0.5) / float64(h),
			})
		}
	}
	return pts
}

// fieldStats streams per-draw spatial means into a converge series and
// accumulates the pooled second moment plus lagged cross-products for
// the correlation-vs-distance curve.
type fieldStats struct {
	series string
	lags   []int
	n      int64     // pooled value count
	sum    float64   // pooled sum
	sumSq  float64   // pooled sum of squares
	lagN   []int64   // pair count per lag
	lagSum []float64 // sum of products per lag
}

func newFieldStats(series string, lags []int) *fieldStats {
	return &fieldStats{
		series: series,
		lags:   lags,
		lagN:   make([]int64, len(lags)),
		lagSum: make([]float64, len(lags)),
	}
}

func (st *fieldStats) observe(dev []float64, w, h int) {
	var sum float64
	for _, v := range dev {
		sum += v
		st.sumSq += v * v
	}
	st.sum += sum
	st.n += int64(len(dev))
	converge.Observe(st.series, "dev", sum/float64(len(dev)))
	for li, lag := range st.lags {
		for y := 0; y < h; y++ {
			row := dev[y*w : (y+1)*w]
			for x := 0; x+lag < w; x++ {
				st.lagSum[li] += row[x] * row[x+lag]
				st.lagN[li]++
			}
		}
	}
}

func (st *fieldStats) variance() float64 {
	mean := st.sum / float64(st.n)
	return st.sumSq/float64(st.n) - mean*mean
}

// corrAt returns the empirical correlation at lag index li, normalizing
// the lagged product by the pooled variance (the field is zero-mean by
// construction, and the mean test pins that separately).
func (st *fieldStats) corrAt(li int) float64 {
	return st.lagSum[li] / float64(st.lagN[li]) / st.variance()
}

// The circulant sampler must reproduce the dense sampler's
// distribution: matching mean (within the converge CI bounds),
// matching total variance, and a matching correlation-vs-distance
// curve against the analytic model SysFrac * rho(r).
func TestCirculantMatchesDenseStatistics(t *testing.T) {
	if testing.Short() {
		t.Skip("many-draw statistical comparison")
	}
	const w, h, draws = 24, 24, 500
	fp := DefaultVth()
	lags := []int{1, 2, 4, 8}

	restore := converge.SetEnabled(true)
	defer restore()
	converge.Reset()

	dense, err := NewSampler(gridPoints(w, h), fp)
	if err != nil {
		t.Fatal(err)
	}
	circ, err := NewCirculantSampler(w, h, fp)
	if err != nil {
		t.Fatal(err)
	}
	if mass := circ.ClampedEigenMass(); mass > 1e-9 {
		t.Errorf("embedding clamped eigenvalue mass %g, want rounding level", mass)
	}

	dRng, cRng := mathx.NewRNG(1101), mathx.NewRNG(2202)
	dStats := newFieldStats("equiv.dense.mean", lags)
	cStats := newFieldStats("equiv.circulant.mean", lags)
	buf := make([]float64, w*h)
	for i := 0; i < draws; i++ {
		dStats.observe(dense.Sample(dRng), w, h)
		circ.SampleTo(buf, cRng)
		cStats.observe(buf, w, h)
	}

	// Mean: each sampler's per-draw spatial means are iid across draws,
	// so the converge CI95 half-widths bound both population means.
	snap := converge.Capture()
	byName := map[string]converge.SeriesSnapshot{}
	for _, s := range snap.Series {
		byName[s.Name] = s
	}
	dMean, cMean := byName["equiv.dense.mean"], byName["equiv.circulant.mean"]
	if dMean.Count != draws || cMean.Count != draws {
		t.Fatalf("converge observed %d/%d draws, want %d", dMean.Count, cMean.Count, draws)
	}
	if diff := math.Abs(dMean.Mean - cMean.Mean); diff > 2*(dMean.CI95+cMean.CI95) {
		t.Errorf("means differ: dense %.5f±%.5f vs circulant %.5f±%.5f",
			dMean.Mean, dMean.CI95, cMean.Mean, cMean.CI95)
	}
	if math.Abs(cMean.Mean) > 3*cMean.CI95 {
		t.Errorf("circulant mean %.5f outside 3x CI95 %.5f of zero", cMean.Mean, cMean.CI95)
	}

	// Total variance: both must sit near sigma^2 and near each other.
	sigma2 := fp.SigmaMu * fp.SigmaMu
	dVar, cVar := dStats.variance(), cStats.variance()
	for name, v := range map[string]float64{"dense": dVar, "circulant": cVar} {
		if v < 0.85*sigma2 || v > 1.15*sigma2 {
			t.Errorf("%s variance %.6f, want ~%.6f", name, v, sigma2)
		}
	}
	if math.Abs(dVar-cVar) > 0.12*sigma2 {
		t.Errorf("variances differ: dense %.6f vs circulant %.6f", dVar, cVar)
	}

	// Correlation vs distance: the total-deviation correlation at lag r
	// is SysFrac * rho(r) (the random component decorrelates the rest).
	for li, lag := range lags {
		r := float64(lag) / float64(w)
		model := fp.SysFrac * SphericalCorr(r, fp.CorrRange)
		for name, st := range map[string]*fieldStats{"dense": dStats, "circulant": cStats} {
			if got := st.corrAt(li); math.Abs(got-model) > 0.06 {
				t.Errorf("%s correlation at lag %d: %.4f, want %.4f±0.06", name, lag, got, model)
			}
		}
	}
}

// SampleField must succeed far beyond the old 4096-point exact-sampling
// cap (the historical TestSampleFieldCapsSize asserted an error here).
func TestSampleFieldLiftsCap(t *testing.T) {
	g, err := SampleField(128, 128, DefaultVth(), mathx.NewRNG(1))
	if err != nil {
		t.Fatalf("128x128 field: %v", err)
	}
	if g.W != 128 || g.H != 128 {
		t.Fatalf("bad grid dims %dx%d", g.W, g.H)
	}
	min, max := mathx.MinMax(g.V)
	if min == max {
		t.Error("degenerate field")
	}
	if math.Abs(min) > 1 || math.Abs(max) > 1 {
		t.Errorf("implausible deviations: [%g, %g]", min, max)
	}
	if sd := mathx.StdDev(g.V); sd < 0.08 || sd > 0.25 {
		t.Errorf("field sigma %.4f, want ~0.15", sd)
	}
}

func TestCirculantSamplerValidates(t *testing.T) {
	if _, err := NewCirculantSampler(0, 4, DefaultVth()); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewCirculantSampler(4, -1, DefaultVth()); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := NewCirculantSampler(4, 4, FieldParams{SigmaMu: 9, CorrRange: 0.1}); err == nil {
		t.Error("implausible params accepted")
	}
}

func TestCirculantDeterminism(t *testing.T) {
	s1, err := NewCirculantSampler(32, 16, DefaultVth())
	if err != nil {
		t.Fatal(err)
	}
	s2, err := NewCirculantSampler(32, 16, DefaultVth())
	if err != nil {
		t.Fatal(err)
	}
	d1 := s1.Sample(mathx.NewRNG(77))
	d2 := s2.Sample(mathx.NewRNG(77))
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("circulant sampling is not reproducible")
		}
	}
	if w, h := s1.Dims(); w != 32 || h != 16 || s1.N() != 512 {
		t.Error("dims accessors wrong")
	}
	if s1.Params() != DefaultVth() {
		t.Error("params accessor wrong")
	}
}

// SysFrac 0 must work without an embedding and produce uncorrelated
// deviations; SysFrac 1 must produce a smooth pure-systematic field.
func TestCirculantComponentExtremes(t *testing.T) {
	rng := mathx.NewRNG(5)
	pure, err := NewCirculantSampler(16, 16, FieldParams{SigmaMu: 0.1, CorrRange: 0.1, SysFrac: 0})
	if err != nil {
		t.Fatal(err)
	}
	n := 3000
	a, b := make([]float64, n), make([]float64, n)
	for i := 0; i < n; i++ {
		d := pure.Sample(rng)
		a[i], b[i] = d[0], d[1]
	}
	if r := mathx.Pearson(a, b); math.Abs(r) > 0.06 {
		t.Errorf("random-only field correlates: r=%.3f", r)
	}

	sys, err := NewCirculantSampler(16, 16, FieldParams{SigmaMu: 0.1, CorrRange: 0.5, SysFrac: 1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		d := sys.Sample(rng)
		a[i], b[i] = d[0], d[1]
	}
	// Adjacent cells at 1/16 of the die with range 0.5 are highly
	// correlated under the spherical model (~0.81).
	if r := mathx.Pearson(a, b); r < 0.6 {
		t.Errorf("pure-systematic neighbors decorrelated: r=%.3f", r)
	}
}

// The zero-allocation draw contract: SampleTo allocates nothing, and
// Sample allocates only its result slice.
func TestCirculantSampleAllocations(t *testing.T) {
	s, err := NewCirculantSampler(64, 64, DefaultVth())
	if err != nil {
		t.Fatal(err)
	}
	rng := mathx.NewRNG(9)
	dst := make([]float64, s.N())
	if allocs := testing.AllocsPerRun(10, func() { s.SampleTo(dst, rng) }); allocs != 0 {
		t.Errorf("SampleTo allocates %g objects per draw, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(10, func() { s.Sample(rng) }); allocs > 1 {
		t.Errorf("Sample allocates %g objects per draw, want <= 1", allocs)
	}
}

// Concurrent constructions share one cached eigen-decomposition, and
// SampleTo rejects a wrong-size buffer.
func TestCirculantEigenCacheSharing(t *testing.T) {
	ResetEigenCache()
	a, err := NewCirculantSampler(40, 40, DefaultVth())
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewCirculantSampler(40, 40, DefaultVth())
	if err != nil {
		t.Fatal(err)
	}
	if a.eig != b.eig {
		t.Error("same (dims, params) did not share the cached eigen-decomposition")
	}
	if c, _ := NewCirculantSampler(40, 20, DefaultVth()); c.eig == a.eig {
		t.Error("distinct dims shared an eigen-decomposition")
	}
	defer func() {
		if recover() == nil {
			t.Error("SampleTo accepted a wrong-size buffer")
		}
	}()
	a.SampleTo(make([]float64, 7), mathx.NewRNG(1))
}

// The embedding spectra stay clean (no more than rounding-level
// clamping) across the parameter families and grid shapes the
// repository uses.
func TestCirculantEmbeddingSpectra(t *testing.T) {
	cases := []struct {
		w, h int
		fp   FieldParams
	}{
		{64, 64, DefaultVth()},
		{128, 128, DefaultVth()},
		{96, 48, DefaultLeff()},
		{80, 80, FieldParams{SigmaMu: 0.15, CorrRange: 0.1, SysFrac: 0.5, Corr: Exponential}},
		{33, 65, FieldParams{SigmaMu: 0.1, CorrRange: 0.4, SysFrac: 0.8}},
	}
	for _, c := range cases {
		t.Run(fmt.Sprintf("%dx%d", c.w, c.h), func(t *testing.T) {
			s, err := NewCirculantSampler(c.w, c.h, c.fp)
			if err != nil {
				t.Fatal(err)
			}
			if mass := s.ClampedEigenMass(); mass > 1e-6 {
				t.Errorf("clamped eigenvalue mass %g, want <= 1e-6", mass)
			}
		})
	}
}
