package converge

import "math"

// Welford is the streaming mean/variance accumulator (Welford's
// algorithm) behind every Series, exported so other observability
// tiers — notably internal/history's noise-aware regression gate —
// reuse the exact same statistics instead of growing a second,
// subtly different implementation. The zero value is ready to use.
// Welford is not safe for concurrent use; Series wraps it in a lock.
type Welford struct {
	n    int64
	mean float64
	m2   float64 // sum of squared deviations
	min  float64
	max  float64
}

// Add folds one value into the accumulator.
func (w *Welford) Add(v float64) {
	w.n++
	if w.n == 1 {
		w.min, w.max = v, v
	} else {
		if v < w.min {
			w.min = v
		}
		if v > w.max {
			w.max = v
		}
	}
	d := v - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (v - w.mean)
}

// N returns the number of observations so far.
func (w *Welford) N() int64 { return w.n }

// Mean returns the running mean (zero before any observation).
func (w *Welford) Mean() float64 { return w.mean }

// Min returns the smallest observation (zero before any observation).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (zero before any observation).
func (w *Welford) Max() float64 { return w.max }

// Std returns the sample standard deviation (n-1 denominator), zero
// until two observations exist.
func (w *Welford) Std() float64 {
	if w.n < 2 {
		return 0
	}
	return math.Sqrt(w.m2 / float64(w.n-1))
}

// CI95Mean returns the 95% confidence-interval half-width of the mean
// (z95·s/√n, normal approximation), +Inf until two observations exist
// — a single draw says nothing about its own uncertainty.
func (w *Welford) CI95Mean() float64 {
	if w.n < 2 {
		return math.Inf(1)
	}
	return z95 * math.Sqrt(w.m2/float64(w.n-1)/float64(w.n))
}

// Band95 returns the half-width of the 95% band for a single new
// observation (z95·s, normal approximation) — the tolerance the
// regression gate grants a fresh measurement before calling it an
// outlier. Zero until two observations exist.
func (w *Welford) Band95() float64 { return z95 * w.Std() }
