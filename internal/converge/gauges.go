package converge

import "repro/internal/telemetry"

// The converge → telemetry edge lives in this one file: every series
// mirrors its running count, mean, and CI95 half-width into telemetry
// gauges so /telemetryz and /metricsz expose convergence live. Gauge
// values are integers, so the float statistics are scaled by 1e6
// (hence the _micro suffixes).
func init() {
	gaugeSetter = func(series, kind string) interface{ Set(int64) } {
		return telemetry.GetGauge("converge." + series + "." + kind)
	}
}
