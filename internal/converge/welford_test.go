package converge

import (
	"math"
	"testing"
)

// TestWelfordAgainstTwoPass checks the streaming accumulator against
// the textbook two-pass mean/variance on a fixed sample.
func TestWelfordAgainstTwoPass(t *testing.T) {
	vals := []float64{3.5, -1.25, 7, 0, 2.5, 2.5, 11.75, -4}
	var w Welford
	for _, v := range vals {
		w.Add(v)
	}

	var sum float64
	for _, v := range vals {
		sum += v
	}
	mean := sum / float64(len(vals))
	var m2 float64
	for _, v := range vals {
		m2 += (v - mean) * (v - mean)
	}
	std := math.Sqrt(m2 / float64(len(vals)-1))

	if w.N() != int64(len(vals)) {
		t.Fatalf("N = %d, want %d", w.N(), len(vals))
	}
	if math.Abs(w.Mean()-mean) > 1e-12 {
		t.Errorf("Mean = %v, want %v", w.Mean(), mean)
	}
	if math.Abs(w.Std()-std) > 1e-12 {
		t.Errorf("Std = %v, want %v", w.Std(), std)
	}
	wantCI := z95 * std / math.Sqrt(float64(len(vals)))
	if math.Abs(w.CI95Mean()-wantCI) > 1e-12 {
		t.Errorf("CI95Mean = %v, want %v", w.CI95Mean(), wantCI)
	}
	wantBand := z95 * std
	if math.Abs(w.Band95()-wantBand) > 1e-12 {
		t.Errorf("Band95 = %v, want %v", w.Band95(), wantBand)
	}
	if w.Min() != -4 || w.Max() != 11.75 {
		t.Errorf("Min/Max = %v/%v, want -4/11.75", w.Min(), w.Max())
	}
}

// TestWelfordDegenerate pins the under-determined cases the gate
// depends on: an empty accumulator, a single observation (CI on the
// mean is +Inf — one draw says nothing about its own noise — while
// Std and Band95 report zero), and a constant series (zero variance,
// so the band collapses and an identical re-run sits exactly on the
// mean).
func TestWelfordDegenerate(t *testing.T) {
	var w Welford
	if w.N() != 0 || w.Mean() != 0 || w.Std() != 0 {
		t.Fatalf("zero value not zero: n=%d mean=%v std=%v", w.N(), w.Mean(), w.Std())
	}
	if !math.IsInf(w.CI95Mean(), 1) {
		t.Errorf("empty CI95Mean = %v, want +Inf", w.CI95Mean())
	}

	w.Add(42)
	if w.Mean() != 42 || w.Min() != 42 || w.Max() != 42 {
		t.Errorf("single obs mean/min/max = %v/%v/%v, want 42", w.Mean(), w.Min(), w.Max())
	}
	if !math.IsInf(w.CI95Mean(), 1) {
		t.Errorf("single-obs CI95Mean = %v, want +Inf", w.CI95Mean())
	}
	if w.Std() != 0 || w.Band95() != 0 {
		t.Errorf("single-obs Std/Band95 = %v/%v, want 0", w.Std(), w.Band95())
	}

	var c Welford
	for i := 0; i < 20; i++ {
		c.Add(7.5)
	}
	if c.Mean() != 7.5 {
		t.Errorf("constant mean = %v, want 7.5", c.Mean())
	}
	if c.Std() > 1e-12 || c.Band95() > 1e-12 {
		t.Errorf("constant Std/Band95 = %v/%v, want 0", c.Std(), c.Band95())
	}
}

// TestSeriesMatchesWelford pins that the Series path (lock + gauges)
// reports exactly what the bare accumulator computes — the refactor
// that extracted Welford must not have changed Series numbers.
func TestSeriesMatchesWelford(t *testing.T) {
	defer SetEnabled(true)()
	Reset()
	vals := []float64{1, 2, 3, 4, 100}
	var w Welford
	for _, v := range vals {
		Observe("welford.series.check", "u", v)
		w.Add(v)
	}
	snap := Capture()
	for _, s := range snap.Series {
		if s.Name != "welford.series.check" {
			continue
		}
		if s.Count != w.N() || math.Abs(s.Mean-w.Mean()) > 1e-12 ||
			math.Abs(s.Std-w.Std()) > 1e-12 || math.Abs(s.CI95-w.CI95Mean()) > 1e-12 ||
			s.Min != w.Min() || s.Max != w.Max() {
			t.Errorf("series %+v diverges from Welford n=%d mean=%v std=%v ci=%v",
				s, w.N(), w.Mean(), w.Std(), w.CI95Mean())
		}
		return
	}
	t.Fatal("series welford.series.check not captured")
}
