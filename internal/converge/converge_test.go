package converge

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/telemetry"
)

// TestWelford pins the streaming mean/variance against the closed
// form on a small fixed sample.
func TestWelford(t *testing.T) {
	defer SetEnabled(true)()
	Reset()
	vals := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, v := range vals {
		Observe("test.welford", "x", v)
	}
	s := Get("test.welford", "x").snapshot()
	if s.Count != int64(len(vals)) {
		t.Fatalf("count = %d, want %d", s.Count, len(vals))
	}
	if math.Abs(s.Mean-5) > 1e-12 {
		t.Fatalf("mean = %v, want 5", s.Mean)
	}
	// Sample std of the classic example: sqrt(32/7).
	wantStd := math.Sqrt(32.0 / 7.0)
	if math.Abs(s.Std-wantStd) > 1e-12 {
		t.Fatalf("std = %v, want %v", s.Std, wantStd)
	}
	wantCI := 1.959963984540054 * wantStd / math.Sqrt(8)
	if math.Abs(s.CI95-wantCI) > 1e-12 {
		t.Fatalf("ci95 = %v, want %v", s.CI95, wantCI)
	}
	if math.Abs(s.RelCI95-wantCI/5) > 1e-12 {
		t.Fatalf("rel ci95 = %v, want %v", s.RelCI95, wantCI/5)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Fatalf("min/max = %v/%v, want 2/9", s.Min, s.Max)
	}
}

// TestDisabledNoRecord: observations while disabled are dropped.
func TestDisabledNoRecord(t *testing.T) {
	defer SetEnabled(false)()
	Reset()
	Observe("test.disabled", "x", 1)
	for _, s := range Capture().Series {
		if s.Name == "test.disabled" {
			t.Fatal("disabled Observe registered a series")
		}
	}
}

// TestConvergeDisabledOverhead mirrors TestTelemetryDisabledOverhead:
// the disabled path must not allocate.
func TestConvergeDisabledOverhead(t *testing.T) {
	defer SetEnabled(false)()
	allocs := testing.AllocsPerRun(1000, func() {
		Observe("test.overhead", "x", 3.14)
	})
	if allocs != 0 {
		t.Fatalf("disabled Observe allocates %v per call, want 0", allocs)
	}
}

// TestConcurrentObserve: concurrent observers lose nothing.
func TestConcurrentObserve(t *testing.T) {
	defer SetEnabled(true)()
	Reset()
	const workers, per = 8, 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				Observe("test.concurrent", "x", 1)
			}
		}()
	}
	wg.Wait()
	if n := Get("test.concurrent", "x").Count(); n != workers*per {
		t.Fatalf("count = %d, want %d", n, workers*per)
	}
}

// TestCaptureJSON: convergence.json carries the documented keys and is
// valid JSON.
func TestCaptureJSON(t *testing.T) {
	defer SetEnabled(true)()
	Reset()
	Observe("test.json", "GHz", 1.5)
	Observe("test.json", "GHz", 2.5)
	var buf bytes.Buffer
	if err := Capture().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Enabled bool `json:"enabled"`
		Series  []map[string]any
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("convergence.json is not valid JSON: %v", err)
	}
	if !doc.Enabled {
		t.Fatal("enabled = false in capture while enabled")
	}
	var found map[string]any
	for _, s := range doc.Series {
		if s["name"] == "test.json" {
			found = s
		}
	}
	if found == nil {
		t.Fatal("series missing from capture")
	}
	for _, key := range []string{"unit", "count", "mean", "std", "ci95_half_width", "rel_ci95", "min", "max"} {
		if _, ok := found[key]; !ok {
			t.Errorf("convergence.json series missing key %q", key)
		}
	}
	if found["ci95_half_width"].(float64) <= 0 {
		t.Fatal("ci95_half_width not positive after two observations")
	}
}

// TestResetPreservesIdentity: Reset zeroes counts but keeps the series
// pointer, so long-lived references stay valid.
func TestResetPreservesIdentity(t *testing.T) {
	defer SetEnabled(true)()
	s := Get("test.reset", "x")
	Observe("test.reset", "x", 7)
	Reset()
	if s != Get("test.reset", "x") {
		t.Fatal("Reset replaced the series")
	}
	if s.Count() != 0 {
		t.Fatal("Reset did not zero the count")
	}
}

// TestProgressLine: the -progress line reports done/target, an ETA,
// and per-series mean±CI.
func TestProgressLine(t *testing.T) {
	defer SetEnabled(true)()
	Reset()
	for i := 0; i < 50; i++ {
		Observe("test.progress", "W", 2.0)
	}
	line := ProgressLine(100, 2*time.Second)
	for _, want := range []string{"chips=50/100", "elapsed=2s", "eta=2s", "test.progress"} {
		if !strings.Contains(line, want) {
			t.Errorf("progress line missing %q: %s", want, line)
		}
	}
	// No target: no /target, no eta.
	line = ProgressLine(0, time.Second)
	if strings.Contains(line, "eta=") || strings.Contains(line, "/") {
		t.Errorf("untargeted progress line carries target fields: %s", line)
	}
}

// TestGaugeMirror: observations surface as telemetry gauges (which
// record only while telemetry itself is also enabled).
func TestGaugeMirror(t *testing.T) {
	defer SetEnabled(true)()
	defer telemetry.SetEnabled(true)()
	Reset()
	g := gaugeSetter("test.mirror", "count")
	if g == nil {
		t.Fatal("gaugeSetter not wired to telemetry")
	}
	Observe("test.mirror", "x", 1)
	Observe("test.mirror", "x", 3)
	mirrored := telemetryGaugeValue(t, "converge.test.mirror.count")
	if mirrored != 2 {
		t.Fatalf("telemetry gauge = %d, want 2", mirrored)
	}
	if mean := telemetryGaugeValue(t, "converge.test.mirror.mean_micro"); mean != 2_000_000 {
		t.Fatalf("mean_micro gauge = %d, want 2000000", mean)
	}
}

// TestEtaFor pins the ETA guard table: no estimate without a target,
// without progress, at/past the target, or below timer resolution —
// and a sane linear extrapolation otherwise.
func TestEtaFor(t *testing.T) {
	cases := []struct {
		name    string
		done    int64
		target  int
		elapsed time.Duration
		want    time.Duration
		ok      bool
	}{
		{"no target", 5, 0, time.Second, 0, false},
		{"negative target", 5, -3, time.Second, 0, false},
		{"nothing done", 0, 100, time.Second, 0, false},
		{"zero elapsed", 10, 100, 0, 0, false},
		{"negative elapsed", 10, 100, -time.Second, 0, false},
		{"at target", 100, 100, time.Second, 0, false},
		{"past target", 150, 100, time.Second, 0, false},
		{"halfway", 50, 100, 10 * time.Second, 10 * time.Second, true},
		{"one done", 1, 4, time.Second, 3 * time.Second, true},
		{"overflow", 1, math.MaxInt32, math.MaxInt64, 0, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, ok := etaFor(tc.done, tc.target, tc.elapsed)
			if ok != tc.ok || got != tc.want {
				t.Fatalf("etaFor(%d, %d, %s) = (%s, %v), want (%s, %v)",
					tc.done, tc.target, tc.elapsed, got, ok, tc.want, tc.ok)
			}
		})
	}
}

// TestProgressLineNeverNaN: the edge cases the ETA guard exists for —
// zero chips done and sub-resolution wall time — must render clean
// lines with no NaN/Inf and no ETA.
func TestProgressLineNeverNaN(t *testing.T) {
	defer SetEnabled(true)()
	Reset()
	defer Reset()

	// Zero chips done, target set.
	for _, elapsed := range []time.Duration{0, time.Nanosecond, time.Second} {
		line := ProgressLine(100, elapsed)
		if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
			t.Fatalf("progress line with no chips contains NaN/Inf: %q", line)
		}
		if strings.Contains(line, "eta=") {
			t.Fatalf("progress line with no chips prints an ETA: %q", line)
		}
	}

	// Chips done but wall time below timer resolution.
	Observe("chip.fmax_ghz", "GHz", 1.0)
	line := ProgressLine(100, 0)
	if strings.Contains(line, "NaN") || strings.Contains(line, "Inf") {
		t.Fatalf("sub-resolution progress line contains NaN/Inf: %q", line)
	}
	if strings.Contains(line, "eta=") {
		t.Fatalf("sub-resolution progress line prints an ETA: %q", line)
	}
	// With real elapsed time the ETA returns.
	line = ProgressLine(100, time.Second)
	if !strings.Contains(line, "eta=") {
		t.Fatalf("progress line with progress and elapsed lost its ETA: %q", line)
	}
}
