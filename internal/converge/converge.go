// Package converge is the Monte-Carlo convergence monitor: streaming
// mean/variance (Welford's algorithm) and 95% confidence-interval
// half-widths for the per-chip metrics the paper's population studies
// report (fmax, VddMIN, power, error rate), updated live as the
// population fans out across the worker pool.
//
// The paper samples 100 variation-afflicted chips per experiment and
// reports population means; this package answers the question the
// figure captions beg — was 100 enough? A run's Capture() (dumped as
// convergence.json by cmd/accordion) reports, per metric, the count,
// mean, standard deviation, and the CI95 half-width both absolute and
// relative to the mean, so "the mean VddNTV is 0.63 V" becomes "0.63 V
// ± 0.4% at 95% confidence after 100 draws".
//
// The package follows internal/telemetry's contract: one process-wide
// switch, a single atomic load on the disabled path (zero allocations,
// pinned by TestConvergeDisabledOverhead), per-series locks touched
// only while enabled, and series identities that survive Reset. Each
// observation also updates telemetry gauges
// (converge.<series>.{count,mean_micro,ci95_micro}, micro-unit scaled
// since gauges are integers) so the /metricsz and /telemetryz
// endpoints expose convergence live mid-run.
package converge

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// enabled is the process-wide switch; Observe is one atomic load while
// it is off.
var enabled atomic.Bool

// On reports whether convergence monitoring is recording. Callers that
// must derive metric values before observing (chip summary metrics)
// should gate the derivation on On().
func On() bool { return enabled.Load() }

// SetEnabled flips the process-wide switch and returns a function
// restoring the previous state, for scoped use in tests.
func SetEnabled(on bool) (restore func()) {
	prev := enabled.Swap(on)
	return func() { enabled.Store(prev) }
}

// z95 is the two-sided 95% normal quantile; the CI half-width is
// z95*s/sqrt(n). The normal approximation is the right tool here —
// population sizes of interest are ≥ 20 draws.
const z95 = 1.959963984540054

// Series is one monitored metric's streaming accumulator.
type Series struct {
	name string
	unit string

	mu    sync.Mutex
	w     Welford
	gauge gauges
}

type gauges struct {
	count, meanMicro, ciMicro interface{ Set(int64) }
}

// Name returns the series' registered name.
func (s *Series) Name() string { return s.name }

// Unit returns the series' unit label.
func (s *Series) Unit() string { return s.unit }

// observe folds one value into the accumulator (Welford's update).
func (s *Series) observe(v float64) (n int64, mean, ci float64) {
	s.mu.Lock()
	s.w.Add(v)
	n, mean, ci = s.w.N(), s.w.Mean(), s.w.CI95Mean()
	s.mu.Unlock()
	return n, mean, ci
}

// Count returns the number of observations so far.
func (s *Series) Count() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.w.N()
}

// snapshot reads the series into plain numbers.
func (s *Series) snapshot() SeriesSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	snap := SeriesSnapshot{
		Name:  s.name,
		Unit:  s.unit,
		Count: s.w.N(),
		Mean:  s.w.Mean(),
		Min:   s.w.Min(),
		Max:   s.w.Max(),
	}
	if s.w.N() >= 2 {
		snap.Std = s.w.Std()
		snap.CI95 = s.w.CI95Mean()
		if snap.Mean != 0 {
			snap.RelCI95 = math.Abs(snap.CI95 / snap.Mean)
		}
	}
	return snap
}

func (s *Series) reset() {
	s.mu.Lock()
	s.w = Welford{}
	s.mu.Unlock()
}

// registry is the process-wide name → series table, locked only on
// first registration of a name (the record path holds the per-series
// lock, never this one).
var reg struct {
	mu sync.Mutex
	m  map[string]*Series
}

// gaugeSetter indirects telemetry gauge updates so this package's only
// coupling to internal/telemetry is the three Set calls; wired in
// gauges.go to keep the layering explicit.
var gaugeSetter = func(series, kind string) interface{ Set(int64) } { return nil }

// nopGauge satisfies the gauge surface when no setter is wired.
type nopGauge struct{}

func (nopGauge) Set(int64) {}

// Get returns the process-wide series registered under name, creating
// it with the unit on first use. The unit is fixed at first
// registration.
func Get(name, unit string) *Series {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	if reg.m == nil {
		reg.m = make(map[string]*Series)
	}
	s, ok := reg.m[name]
	if !ok {
		s = &Series{name: name, unit: unit}
		s.gauge.count = orNop(gaugeSetter(name, "count"))
		s.gauge.meanMicro = orNop(gaugeSetter(name, "mean_micro"))
		s.gauge.ciMicro = orNop(gaugeSetter(name, "ci95_micro"))
		reg.m[name] = s
	}
	return s
}

func orNop(g interface{ Set(int64) }) interface{ Set(int64) } {
	if g == nil {
		return nopGauge{}
	}
	return g
}

// Observe records one value for the named series when monitoring is
// enabled, and mirrors the running count/mean/CI into telemetry
// gauges. The disabled path is a single atomic load.
func Observe(name, unit string, v float64) {
	if !enabled.Load() {
		return
	}
	s := Get(name, unit)
	n, mean, ci := s.observe(v)
	s.gauge.count.Set(n)
	s.gauge.meanMicro.Set(int64(mean * 1e6))
	if !math.IsInf(ci, 1) {
		s.gauge.ciMicro.Set(int64(ci * 1e6))
	}
}

// Reset zeroes every registered series in place, preserving
// identities, for use between runs or tests.
func Reset() {
	reg.mu.Lock()
	defer reg.mu.Unlock()
	for _, s := range reg.m {
		s.reset()
	}
}

// SeriesSnapshot is one series' point-in-time reading. CI95 is the
// 95% confidence-interval half-width of the mean (normal
// approximation); RelCI95 is CI95/|mean|. Both are zero until two
// observations exist.
type SeriesSnapshot struct {
	Name    string  `json:"name"`
	Unit    string  `json:"unit"`
	Count   int64   `json:"count"`
	Mean    float64 `json:"mean"`
	Std     float64 `json:"std"`
	CI95    float64 `json:"ci95_half_width"`
	RelCI95 float64 `json:"rel_ci95"`
	Min     float64 `json:"min"`
	Max     float64 `json:"max"`
}

// Snapshot is a point-in-time view of every monitored series, sorted
// by name.
type Snapshot struct {
	Enabled bool             `json:"enabled"`
	Series  []SeriesSnapshot `json:"series"`
}

// Capture reads every registered series; cheap and safe mid-run.
func Capture() Snapshot {
	reg.mu.Lock()
	all := make([]*Series, 0, len(reg.m))
	for _, s := range reg.m {
		all = append(all, s)
	}
	reg.mu.Unlock()
	sort.Slice(all, func(a, b int) bool { return all[a].name < all[b].name })
	snap := Snapshot{Enabled: enabled.Load(), Series: make([]SeriesSnapshot, 0, len(all))}
	for _, s := range all {
		snap.Series = append(snap.Series, s.snapshot())
	}
	return snap
}

// WriteJSON renders the snapshot as indented JSON — the convergence.json
// document cmd/accordion dumps per run.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ProgressLine formats the one-line mid-run progress report the
// -progress flag prints: chips done (with ETA against target when one
// is known) and each series' mean ± CI95 half-width. Done is the
// maximum series count, which tracks the chip draw counter since every
// chip observes every metric once.
func ProgressLine(target int, elapsed time.Duration) string {
	snap := Capture()
	var done int64
	for _, s := range snap.Series {
		if s.Count > done {
			done = s.Count
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "chips=%d", done)
	if target > 0 {
		fmt.Fprintf(&b, "/%d", target)
	}
	fmt.Fprintf(&b, " elapsed=%s", elapsed.Round(100*time.Millisecond))
	if eta, ok := etaFor(done, target, elapsed); ok {
		fmt.Fprintf(&b, " eta=%s", eta.Round(100*time.Millisecond))
	}
	for _, s := range snap.Series {
		if s.Count == 0 {
			continue
		}
		fmt.Fprintf(&b, " | %s %.4g±%.2g %s", s.Name, s.Mean, s.CI95, s.Unit)
	}
	return b.String()
}

// etaFor estimates the remaining wall time from linear extrapolation
// of done/target over elapsed. The second return is false whenever no
// meaningful estimate exists: no target, nothing done yet, already at
// or past the target, an elapsed at or below the timer's resolution
// (a sub-tick wall time would extrapolate to a garbage ETA of zero),
// or an extrapolation too large for a time.Duration — so the progress
// line never prints a NaN, an Inf, or a wrapped-around ETA.
func etaFor(done int64, target int, elapsed time.Duration) (time.Duration, bool) {
	if target <= 0 || done <= 0 || done >= int64(target) || elapsed <= 0 {
		return 0, false
	}
	eta := float64(elapsed) / float64(done) * float64(int64(target)-done)
	if math.IsNaN(eta) || math.IsInf(eta, 0) || eta >= float64(math.MaxInt64) {
		return 0, false
	}
	return time.Duration(eta), true
}
