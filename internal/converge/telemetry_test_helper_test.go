package converge

import (
	"testing"

	"repro/internal/telemetry"
)

// telemetryGaugeValue reads a named gauge out of a telemetry capture.
func telemetryGaugeValue(t *testing.T, name string) int64 {
	t.Helper()
	for _, g := range telemetry.Capture().Gauges {
		if g.Name == name {
			return g.Value
		}
	}
	t.Fatalf("gauge %q missing from telemetry capture", name)
	return 0
}
