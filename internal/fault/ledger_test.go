package fault

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"repro/internal/telemetry/events"
)

func testCores(n int) []CoreRef {
	cores := make([]CoreRef, n)
	for i := range cores {
		cores[i] = CoreRef{Core: 10 + i, Cluster: i / 2}
	}
	return cores
}

func TestNewLedgerValidates(t *testing.T) {
	if _, err := NewLedger(1, nil); err == nil {
		t.Fatal("NewLedger accepted zero cores")
	}
	if _, err := NewLedger(1, testCores(4)); err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
}

func TestLedgerAttribution(t *testing.T) {
	led, err := NewLedger(2014, testCores(4))
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	plan := DropQuarter()
	plan.Ledger = led

	// Tasks 0..7 round-robin over 4 cores; note two faults on task 0's
	// core (slot 0) and one on task 5's (slot 1).
	plan.Note(0, 0)
	plan.Note(4, 1) // same slot as task 0
	plan.Note(5, 2)

	led.AddDistortion(0, 0.3)
	led.AddDistortion(4, 0.1) // slot 0 again -> 0.4 total
	led.AddDistortion(5, 0.1)
	led.AddDistortion(2, 0.0) // zero contribution is not recorded

	rep := led.Report()
	if rep.ChipSeed != 2014 || rep.EngagedCores != 4 || rep.Injections != 3 {
		t.Fatalf("report header = %+v", rep)
	}
	if math.Abs(rep.TotalDistortion-0.5) > 1e-15 {
		t.Fatalf("total distortion = %v, want 0.5", rep.TotalDistortion)
	}
	if len(rep.Cores) != 2 {
		t.Fatalf("report has %d cores, want 2", len(rep.Cores))
	}
	// Worst core first: slot 0 (core id 10) with 0.4.
	if rep.Cores[0].Core != 10 || rep.Cores[0].Faults != 2 {
		t.Fatalf("worst core = %+v", rep.Cores[0])
	}
	if math.Abs(rep.Cores[0].Share-0.8) > 1e-15 {
		t.Fatalf("worst core share = %v, want 0.8", rep.Cores[0].Share)
	}
	if math.Abs(rep.TopShare(1)-0.8) > 1e-15 {
		t.Fatalf("TopShare(1) = %v, want 0.8", rep.TopShare(1))
	}
	if math.Abs(rep.TopShare(5)-1.0) > 1e-15 {
		t.Fatalf("TopShare(5) = %v, want 1", rep.TopShare(5))
	}
	// Contributions must sum to the total exactly (shares to 1).
	var sum float64
	for _, c := range rep.Cores {
		sum += c.Distortion
	}
	if math.Abs(sum-rep.TotalDistortion) > 1e-12 {
		t.Fatalf("per-core sum %v != total %v", sum, rep.TotalDistortion)
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not parse: %v", err)
	}
	if back.Injections != 3 || len(back.Cores) != 2 {
		t.Fatalf("JSON round trip = %+v", back)
	}
}

func TestNilLedgerSafe(t *testing.T) {
	var led *Ledger
	led.AddDistortion(0, 1)
	led.noteInjection(Drop, 0, 0)
	rep := led.Report()
	if rep.Injections != 0 || len(rep.Cores) != 0 {
		t.Fatalf("nil ledger report = %+v", rep)
	}
	// A plan without a ledger must Note without panicking, logging off
	// or on.
	plan := DropHalf()
	plan.Note(3, 0)
	defer events.SetEnabled(true)()
	defer events.SetCapacity(16)()
	plan.Note(3, 0)
	found := false
	for _, e := range events.Collect() {
		if e.Kind == "drop.triggered" {
			found = true
		}
	}
	if !found {
		t.Fatal("ledger-less Note with events on emitted no drop.triggered event")
	}
}

func TestNoteEmitsProvenanceEvents(t *testing.T) {
	defer events.SetEnabled(true)()
	defer events.SetCapacity(64)()
	events.Reset()
	defer events.Reset()

	led, err := NewLedger(7, testCores(2))
	if err != nil {
		t.Fatalf("NewLedger: %v", err)
	}
	plan := Plan{Mode: Flip, Num: 1, Den: 2, Ledger: led}
	plan.Note(1, 3)

	evs := events.Collect()
	if len(evs) != 1 {
		t.Fatalf("Note emitted %d events, want 1", len(evs))
	}
	e := evs[0]
	if e.Kind != "fault.injected" {
		t.Fatalf("kind = %q", e.Kind)
	}
	got := map[string]any{}
	for _, a := range e.Attrs {
		got[a.Key] = a.Value()
	}
	want := map[string]any{
		"chip": int64(7), "cluster": int64(0), "core": int64(11),
		"task": int64(1), "iter": int64(3), "mode": "flip",
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("attr %s = %v, want %v", k, got[k], v)
		}
	}
}

func TestReportTopShareEdges(t *testing.T) {
	var rep Report
	if s := rep.TopShare(3); s != 0 {
		t.Fatalf("empty TopShare = %v", s)
	}
	rep = Report{TotalDistortion: 1, Cores: []CoreReport{{Distortion: 1}}}
	if s := rep.TopShare(0); s != 0 {
		t.Fatalf("TopShare(0) = %v", s)
	}
}
