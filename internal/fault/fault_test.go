package fault

import (
	"math"
	"testing"
	"testing/quick"
)

func TestPlanNoFault(t *testing.T) {
	var p Plan
	if p.Active() {
		t.Error("zero plan active")
	}
	for i := 0; i < 100; i++ {
		if p.Infected(i) {
			t.Fatal("zero plan infects")
		}
	}
	if p.CountInfected(100) != 0 {
		t.Error("zero plan counts infections")
	}
}

func TestDropQuarterSpacing(t *testing.T) {
	p := DropQuarter()
	if got := p.CountInfected(64); got != 16 {
		t.Errorf("Drop 1/4 infected %d of 64, want 16", got)
	}
	// Exactly one infected task per 4 consecutive indices.
	for base := 0; base < 64; base += 4 {
		n := 0
		for i := base; i < base+4; i++ {
			if p.Infected(i) {
				n++
			}
		}
		if n != 1 {
			t.Fatalf("window [%d,%d) has %d infections", base, base+4, n)
		}
	}
}

func TestDropHalfSpacing(t *testing.T) {
	p := DropHalf()
	if got := p.CountInfected(64); got != 32 {
		t.Errorf("Drop 1/2 infected %d of 64, want 32", got)
	}
}

func TestCountMatchesInfectedProperty(t *testing.T) {
	f := func(num, den, n uint8) bool {
		d := int(den%12) + 1
		m := int(num) % (d + 1)
		plan, err := NewPlan(Drop, m, d, 0)
		if err != nil {
			return false
		}
		total := int(n)
		count := 0
		for i := 0; i < total; i++ {
			if plan.Infected(i) {
				count++
			}
		}
		return count == plan.CountInfected(total)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNewPlanValidation(t *testing.T) {
	if _, err := NewPlan(Drop, 3, 2, 0); err == nil {
		t.Error("fraction > 1 accepted")
	}
	if _, err := NewPlan(Drop, -1, 2, 0); err == nil {
		t.Error("negative numerator accepted")
	}
	if _, err := NewPlan(Drop, 1, 0, 0); err == nil {
		t.Error("zero denominator accepted")
	}
	p, err := NewPlan(None, 9, 0, 0)
	if err != nil || p.Active() {
		t.Error("None plan should always construct inactive")
	}
}

func TestNegativeIndexNotInfected(t *testing.T) {
	if DropHalf().Infected(-1) {
		t.Error("negative task index infected")
	}
}

func TestCorruptValueModes(t *testing.T) {
	v := 123.456
	p := Plan{Mode: StuckAll0, Num: 1, Den: 1}
	if got := p.CorruptValue(v, 0); got != 0 {
		t.Errorf("stuck-all-0 gave %g", got)
	}
	p.Mode = StuckAll1
	if got := p.CorruptValue(v, 0); math.IsNaN(got) || got != math.MaxFloat64 {
		t.Errorf("stuck-all-1 should sanitize NaN to MaxFloat64, got %g", got)
	}
	p.Mode = StuckLow0
	got := p.CorruptValue(v, 0)
	if got == v {
		t.Error("stuck-low-0 left value intact")
	}
	if math.Abs(got-v) > 1e-4 {
		t.Errorf("stuck-low-0 changed value too much: %g", got)
	}
	p.Mode = StuckHigh1
	if got := p.CorruptValue(v, 0); got == v {
		t.Error("stuck-high-1 left value intact")
	}
	p.Mode = Flip
	p.Seed = 7
	a := p.CorruptValue(v, 3)
	b := p.CorruptValue(v, 3)
	if a != b {
		t.Error("flip corruption not deterministic per task")
	}
	c := p.CorruptValue(v, 4)
	if a == c {
		t.Error("flip corruption identical across tasks")
	}
	// Non-corrupting modes pass through.
	for _, m := range []Mode{None, Drop, Invert} {
		p.Mode = m
		if p.CorruptValue(v, 0) != v {
			t.Errorf("mode %v altered the value", m)
		}
	}
}

func TestCorruptValueNeverNaN(t *testing.T) {
	f := func(raw uint64, task uint8) bool {
		v := math.Float64frombits(raw)
		if math.IsNaN(v) {
			return true
		}
		for _, m := range CorruptionModes() {
			p := Plan{Mode: m, Num: 1, Den: 1, Seed: 3}
			got := p.CorruptValue(v, int(task))
			if math.IsNaN(got) || math.IsInf(got, 0) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModeString(t *testing.T) {
	names := map[Mode]string{
		None: "none", Drop: "drop", StuckAll0: "stuck-all-0", StuckAll1: "stuck-all-1",
		StuckHigh0: "stuck-high-0", StuckHigh1: "stuck-high-1",
		StuckLow0: "stuck-low-0", StuckLow1: "stuck-low-1", Flip: "flip", Invert: "invert",
	}
	for m, want := range names {
		if m.String() != want {
			t.Errorf("%d stringifies to %q", int(m), m.String())
		}
	}
	if Mode(42).String() == "" {
		t.Error("unknown mode must render")
	}
	if len(CorruptionModes()) != 7 {
		t.Error("corruption mode list wrong")
	}
}

func TestContiguousPlan(t *testing.T) {
	p := Plan{Mode: Drop, Num: 16, Den: 64, Contiguous: true}
	for i := 0; i < 64; i++ {
		want := i < 16
		if p.Infected(i) != want {
			t.Fatalf("contiguous infection wrong at %d", i)
		}
	}
	if got := p.CountInfected(64); got != 16 {
		t.Errorf("contiguous count = %d", got)
	}
	if got := p.CountInfected(10); got != 10 {
		t.Errorf("partial contiguous count = %d, want 10", got)
	}
	// The uniform plan with the same fraction spreads instead.
	u := Plan{Mode: Drop, Num: 16, Den: 64}
	run := 0
	maxRun := 0
	for i := 0; i < 64; i++ {
		if u.Infected(i) {
			run++
			if run > maxRun {
				maxRun = run
			}
		} else {
			run = 0
		}
	}
	if maxRun > 1 {
		t.Errorf("uniform 16/64 plan has %d adjacent infections", maxRun)
	}
}
