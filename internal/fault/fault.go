// Package fault is the error-injection framework of Sections 6.2-6.3.
//
// The paper's primary error model is Drop: a fixed fraction of the
// parallel tasks assigned to computation is prevented from contributing
// (uniformly spaced across the task index range), conservatively
// assuming every timing fault reaching an infected task corrupts that
// task's entire end result. The validation study additionally corrupts
// (rather than discards) infected tasks' end results: all/higher/lower
// order bits stuck at 0 or 1, random bit flips, and semantic inversion
// of decision variables.
package fault

import (
	"fmt"
	"math"

	"repro/internal/mathx"
	"repro/internal/parallel"
)

// Mode enumerates the error manifestations applied to infected tasks.
type Mode int

// Error modes.
const (
	// None injects nothing; the Default executions of Figures 2 and 4.
	None Mode = iota
	// Drop discards the infected task's contribution entirely.
	Drop
	// StuckAll0 / StuckAll1 force every bit of the result to 0 / 1.
	StuckAll0
	StuckAll1
	// StuckHigh0 / StuckHigh1 force the upper half of the bits.
	StuckHigh0
	StuckHigh1
	// StuckLow0 / StuckLow1 force the lower half of the bits.
	StuckLow0
	StuckLow1
	// Flip flips each bit independently with probability 1/2.
	Flip
	// Invert asks the benchmark to invert infected decision variables
	// (e.g. canneal accepts swaps it should reject and vice versa).
	// Value-level corruption leaves the value unchanged; the benchmark
	// interprets the mode at its decision points.
	Invert
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case None:
		return "none"
	case Drop:
		return "drop"
	case StuckAll0:
		return "stuck-all-0"
	case StuckAll1:
		return "stuck-all-1"
	case StuckHigh0:
		return "stuck-high-0"
	case StuckHigh1:
		return "stuck-high-1"
	case StuckLow0:
		return "stuck-low-0"
	case StuckLow1:
		return "stuck-low-1"
	case Flip:
		return "flip"
	case Invert:
		return "invert"
	}
	return fmt.Sprintf("Mode(%d)", int(m))
}

// CorruptionModes lists the value-corruption modes of the Section 6.3
// validation study (everything except None, Drop and Invert).
func CorruptionModes() []Mode {
	return []Mode{StuckAll0, StuckAll1, StuckHigh0, StuckHigh1, StuckLow0, StuckLow1, Flip}
}

// Plan decides which of a run's parallel tasks are infected and how.
// The zero value is the no-fault plan.
type Plan struct {
	Mode Mode
	Num  int // infected tasks per Den tasks (e.g. 1 of 4 for Drop 1/4)
	Den  int
	Seed int64 // seeds value corruption randomness (Flip)
	// Contiguous clusters the infected tasks at the start of every Den-
	// sized window instead of spacing them uniformly; it exists for the
	// drop-pattern ablation (the paper drops uniformly).
	Contiguous bool
	// Ledger, when non-nil, receives (chip, cluster, core, task,
	// iteration) provenance for every injection the kernels Note. It
	// never affects which tasks are infected or how values corrupt.
	Ledger *Ledger
}

// NewPlan builds a plan infecting num of every den tasks under mode.
func NewPlan(mode Mode, num, den int, seed int64) (Plan, error) {
	if mode == None {
		return Plan{}, nil
	}
	if den <= 0 || num < 0 || num > den {
		return Plan{}, fmt.Errorf("fault: infection fraction %d/%d invalid", num, den)
	}
	return Plan{Mode: mode, Num: num, Den: den, Seed: seed}, nil
}

// DropQuarter returns the paper's Drop 1/4 plan.
func DropQuarter() Plan { return Plan{Mode: Drop, Num: 1, Den: 4} }

// DropHalf returns the paper's Drop 1/2 plan.
func DropHalf() Plan { return Plan{Mode: Drop, Num: 1, Den: 2} }

// Infected reports whether task index i (of any count) is infected.
// Infected tasks are uniformly spaced: exactly Num out of every Den
// consecutive indices, matching the paper's "uniformly dropped" tasks.
func (p Plan) Infected(i int) bool {
	if p.Mode == None || p.Num == 0 {
		return false
	}
	if i < 0 {
		return false
	}
	r := i % p.Den
	if p.Contiguous {
		return r < p.Num
	}
	// Bresenham-style spacing: task i is infected when the running
	// total floor((r+1)*Num/Den) advances at residue r = i mod Den.
	return (r+1)*p.Num/p.Den > r*p.Num/p.Den
}

// CountInfected returns how many of n tasks the plan infects.
func (p Plan) CountInfected(n int) int {
	if p.Mode == None || p.Num == 0 || n <= 0 {
		return 0
	}
	count := n / p.Den * p.Num
	for r := 0; r < n%p.Den; r++ {
		if p.Infected(r) {
			count++
		}
	}
	return count
}

// Active reports whether the plan injects anything at all.
func (p Plan) Active() bool { return p.Mode != None && p.Num > 0 }

// flipMaskCache memoizes Flip's per-(seed, task) XOR masks. The mask is
// a pure function of the split seed, but deriving it costs a fresh RNG —
// a 5 KB lagged-Fibonacci state — per corrupted value, which profiling
// showed was the simulator's single largest allocator (a Monte-Carlo
// population corrupts the same task indices on every chip). Keying by
// the split seed is exact: NewRNG sees nothing else.
var flipMaskCache = parallel.Cache[int64, uint64]{Name: "fault.FlipMask"}

// flipMask returns the Flip mode's XOR mask for one task, bit-identical
// to drawing it from a fresh RNG seeded with SplitSeed(seed, task).
func flipMask(seed int64, task int) uint64 {
	split := mathx.SplitSeed(seed, int64(task))
	mask, _ := flipMaskCache.Do(split, func() (uint64, error) {
		rng := mathx.NewRNG(split)
		return uint64(rng.Int63())<<1 | uint64(rng.Intn(2)), nil
	})
	return mask
}

// ResetFlipMaskCache empties the process-wide flip-mask cache; it exists
// for benchmarks that need to measure cold-cache behavior.
func ResetFlipMaskCache() { flipMaskCache.Reset() }

// CorruptValue applies the plan's value-corruption mode to the float64
// end result v of infected task i. Drop, None and Invert return v
// unchanged (Drop is handled by discarding contributions, Invert at the
// benchmark's decision points).
func (p Plan) CorruptValue(v float64, task int) float64 {
	switch p.Mode {
	case None, Drop, Invert:
		return v
	}
	bits := math.Float64bits(v)
	const highMask = uint64(0xFFFFFFFF00000000)
	const lowMask = uint64(0x00000000FFFFFFFF)
	switch p.Mode {
	case StuckAll0:
		bits = 0
	case StuckAll1:
		bits = ^uint64(0)
	case StuckHigh0:
		bits &^= highMask
	case StuckHigh1:
		bits |= highMask
	case StuckLow0:
		bits &^= lowMask
	case StuckLow1:
		bits |= lowMask
	case Flip:
		bits ^= flipMask(p.Seed, task)
	}
	out := math.Float64frombits(bits)
	// A corrupted result is still a stored number; NaN/Inf patterns are
	// sanitized the way a victim application's reduction loop would
	// clamp them after a range check.
	if math.IsNaN(out) || math.IsInf(out, 0) {
		return math.MaxFloat64
	}
	return out
}
