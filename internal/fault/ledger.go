package fault

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"

	"repro/internal/telemetry/events"
)

// CoreRef identifies one engaged physical core of a sampled chip.
// Task index t of a run executes on cores[t mod len(cores)], matching
// the round-robin task assignment every kernel's owner functions use.
type CoreRef struct {
	Core    int // chip-wide core id
	Cluster int // owning voltage cluster
}

// Ledger is the fault-attribution record of one benchmark run: which
// physical core every injected fault landed on, and — once the output
// is scored — how much of the final distortion each core is charged
// with. It answers the paper's vulnerability question ("which cores
// caused the quality loss?") at run granularity.
//
// Attach a Ledger to a Plan before the run; the kernels call
// Plan.Note at each injection site, and rms.Attribute charges the
// per-value distortion contributions afterwards. All methods are
// goroutine-safe; a nil *Ledger is a valid no-op receiver everywhere.
type Ledger struct {
	mu       sync.Mutex
	chipSeed int64
	cores    []CoreRef
	recs     map[int]*coreRecord // keyed by engaged-core slot (task mod len)
	total    float64
	injected int64
}

type coreRecord struct {
	slot       int
	faults     int64
	distortion float64
}

// NewLedger builds a ledger for a run whose tasks round-robin over the
// given engaged cores of the chip drawn from chipSeed.
func NewLedger(chipSeed int64, cores []CoreRef) (*Ledger, error) {
	if len(cores) == 0 {
		return nil, fmt.Errorf("fault: ledger needs at least one engaged core")
	}
	return &Ledger{
		chipSeed: chipSeed,
		cores:    append([]CoreRef(nil), cores...),
		recs:     make(map[int]*coreRecord),
	}, nil
}

// slotOf maps a task index to its engaged-core slot.
func (l *Ledger) slotOf(task int) int {
	if task < 0 {
		task = -task
	}
	return task % len(l.cores)
}

// rec returns (creating if needed) the record for a slot. Caller holds
// l.mu.
func (l *Ledger) rec(slot int) *coreRecord {
	r := l.recs[slot]
	if r == nil {
		r = &coreRecord{slot: slot}
		l.recs[slot] = r
	}
	return r
}

// noteInjection records one injected fault against the core executing
// task, and emits the fault.injected / drop.triggered domain event
// with full (chip, cluster, core, task, iteration) provenance. iter is
// the kernel iteration (frame, sweep, step) the fault landed in, or -1
// for end-of-run result corruption.
func (l *Ledger) noteInjection(mode Mode, task, iter int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	slot := l.slotOf(task)
	l.rec(slot).faults++
	l.injected++
	ref := l.cores[slot]
	seed := l.chipSeed
	l.mu.Unlock()

	kind := "fault.injected"
	if mode == Drop {
		kind = "drop.triggered"
	}
	events.New(kind).
		Int("chip", seed).
		Int("cluster", int64(ref.Cluster)).
		Int("core", int64(ref.Core)).
		Int("task", int64(task)).
		Int("iter", int64(iter)).
		Str("mode", mode.String()).
		Emit()
}

// AddDistortion charges d of the run's final output distortion to the
// core executing task. Nil-safe.
func (l *Ledger) AddDistortion(task int, d float64) {
	if l == nil || d == 0 {
		return
	}
	l.mu.Lock()
	l.rec(l.slotOf(task)).distortion += d
	l.total += d
	l.mu.Unlock()
}

// CoreReport is one engaged core's line in the attribution report.
type CoreReport struct {
	Core       int     `json:"core"`
	Cluster    int     `json:"cluster"`
	Faults     int64   `json:"faults"`
	Distortion float64 `json:"distortion"`
	Share      float64 `json:"share"` // Distortion / TotalDistortion, 0 if total is 0
}

// Report is the ledger's aggregated view: per-core fault counts and
// distortion contributions, sorted worst core first.
type Report struct {
	ChipSeed        int64        `json:"chip_seed"`
	EngagedCores    int          `json:"engaged_cores"`
	Injections      int64        `json:"injections"`
	TotalDistortion float64      `json:"total_distortion"`
	Cores           []CoreReport `json:"cores"`
}

// Report aggregates the ledger. Cores are sorted by distortion
// contribution (descending), ties broken by fault count then core id,
// so Cores[:k] are the k worst offenders. A nil ledger reports zero.
func (l *Ledger) Report() Report {
	if l == nil {
		return Report{}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	rep := Report{
		ChipSeed:        l.chipSeed,
		EngagedCores:    len(l.cores),
		Injections:      l.injected,
		TotalDistortion: l.total,
	}
	for _, r := range l.recs {
		ref := l.cores[r.slot]
		cr := CoreReport{
			Core:       ref.Core,
			Cluster:    ref.Cluster,
			Faults:     r.faults,
			Distortion: r.distortion,
		}
		if l.total > 0 {
			cr.Share = r.distortion / l.total
		}
		rep.Cores = append(rep.Cores, cr)
	}
	sort.Slice(rep.Cores, func(i, j int) bool {
		a, b := rep.Cores[i], rep.Cores[j]
		if a.Distortion != b.Distortion {
			return a.Distortion > b.Distortion
		}
		if a.Faults != b.Faults {
			return a.Faults > b.Faults
		}
		return a.Core < b.Core
	})
	return rep
}

// TopShare returns the fraction of total distortion attributable to
// the k worst cores (1 if the total is zero and k > 0 covers all
// recorded cores, 0 if nothing was recorded).
func (r Report) TopShare(k int) float64 {
	if k <= 0 || len(r.Cores) == 0 || r.TotalDistortion <= 0 {
		return 0
	}
	if k > len(r.Cores) {
		k = len(r.Cores)
	}
	var sum float64
	for _, c := range r.Cores[:k] {
		sum += c.Distortion
	}
	return sum / r.TotalDistortion
}

// WriteJSON renders the report as indented JSON.
func (r Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// Note records a fault injection at task (kernel iteration iter, or -1
// for end-of-run result corruption) against the plan's ledger, if any,
// and emits the corresponding domain event. It is the kernels' single
// entry point: behavior-neutral by construction (it touches no plan
// state), and free when neither a ledger is attached nor event logging
// is on.
func (p Plan) Note(task, iter int) {
	if p.Ledger == nil {
		if !events.On() {
			return
		}
		kind := "fault.injected"
		if p.Mode == Drop {
			kind = "drop.triggered"
		}
		events.New(kind).
			Int("task", int64(task)).
			Int("iter", int64(iter)).
			Str("mode", p.Mode.String()).
			Emit()
		return
	}
	p.Ledger.noteInjection(p.Mode, task, iter)
}
