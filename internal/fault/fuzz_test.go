package fault

import (
	"math"
	"testing"
)

// FuzzPlanInfected checks the plan invariants for arbitrary fractions:
// Infected never panics, the per-window count always equals Num, and
// CountInfected agrees with brute force.
func FuzzPlanInfected(f *testing.F) {
	f.Add(1, 4, 64, false)
	f.Add(1, 2, 64, true)
	f.Add(3, 7, 100, false)
	f.Add(0, 5, 10, true)
	f.Fuzz(func(t *testing.T, num, den, n int, contiguous bool) {
		if den <= 0 || den > 1000 || num < 0 || num > den || n < 0 || n > 10000 {
			t.Skip()
		}
		p := Plan{Mode: Drop, Num: num, Den: den, Contiguous: contiguous}
		count := 0
		for i := 0; i < n; i++ {
			if p.Infected(i) {
				count++
			}
		}
		if got := p.CountInfected(n); got != count {
			t.Fatalf("CountInfected(%d) = %d, brute force %d (plan %+v)", n, got, count, p)
		}
		// Full windows carry exactly Num infections.
		if n >= den {
			w := 0
			for i := 0; i < den; i++ {
				if p.Infected(i) {
					w++
				}
			}
			if w != num {
				t.Fatalf("window carries %d infections, want %d", w, num)
			}
		}
	})
}

// FuzzCorruptValue checks that no corruption mode can smuggle NaN or
// infinities into a victim's reduction.
func FuzzCorruptValue(f *testing.F) {
	f.Add(uint64(0x3FF0000000000000), 3, int64(7))
	f.Add(uint64(0), 0, int64(0))
	f.Add(^uint64(0), 50, int64(-1))
	f.Fuzz(func(t *testing.T, bits uint64, task int, seed int64) {
		v := math.Float64frombits(bits)
		if math.IsNaN(v) {
			t.Skip()
		}
		for _, m := range CorruptionModes() {
			p := Plan{Mode: m, Num: 1, Den: 1, Seed: seed}
			got := p.CorruptValue(v, task)
			if math.IsNaN(got) || math.IsInf(got, 0) {
				t.Fatalf("mode %v produced %v from %v", m, got, v)
			}
		}
	})
}
