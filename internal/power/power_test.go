package power

import (
	"math"
	"testing"

	"repro/internal/chip"
)

func testModel(t *testing.T) *Model {
	t.Helper()
	ch, err := chip.New(chip.DefaultConfig(), 2014)
	if err != nil {
		t.Fatal(err)
	}
	m := NewModel(ch)
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEngagedBreakdown(t *testing.T) {
	m := testModel(t)
	vdd := m.Chip.VddNTV()
	cores := []int{0, 1, 2, 3}
	b := m.Engaged(cores, vdd, 0.5)
	if b.CoreDynamic <= 0 || b.CoreStatic <= 0 || b.Memory <= 0 || b.Network <= 0 {
		t.Fatalf("non-positive components: %+v", b)
	}
	if math.Abs(b.Total()-(b.CoreDynamic+b.CoreStatic+b.Memory+b.Network)) > 1e-12 {
		t.Error("Total does not sum components")
	}
	// All four cores share cluster 0: exactly one memory block active.
	spread := m.Engaged([]int{0, 8, 16, 24}, vdd, 0.5)
	if spread.Memory <= b.Memory {
		t.Error("spreading cores across clusters must activate more memory")
	}
}

func TestEmptySetZeroPower(t *testing.T) {
	m := testModel(t)
	if got := m.Engaged(nil, 0.55, 1.0).Total(); got != 0 {
		t.Errorf("empty set draws %.3f W", got)
	}
}

func TestPowerMonotoneInCoresAndFreq(t *testing.T) {
	m := testModel(t)
	vdd := m.Chip.VddNTV()
	sel := m.Chip.SelectCores(288, vdd, chip.SelectEfficient)
	prev := 0.0
	for n := 1; n <= 288; n += 32 {
		p := m.Engaged(sel[:n], vdd, 0.5).Total()
		if p <= prev {
			t.Fatalf("power not increasing in N at n=%d", n)
		}
		prev = p
	}
	if m.Engaged(sel[:10], vdd, 0.4).Total() >= m.Engaged(sel[:10], vdd, 0.8).Total() {
		t.Error("power not increasing in f")
	}
}

// The STV baseline must land near the paper's implied operating point:
// NSTV around 15-16 cores saturating the 100 W budget at ~3.3 GHz, so
// that NNTV/NSTV ratios up to ~18 (Fig 6 x-axes) map onto the 288-core
// chip.
func TestBaselineCalibration(t *testing.T) {
	m := testModel(t)
	bl := m.Baseline()
	if bl.N < 12 || bl.N > 20 {
		t.Errorf("NSTV = %d, want ~15", bl.N)
	}
	if bl.Freq < 2.8 || bl.Freq > 4.0 {
		t.Errorf("fSTV = %.2f GHz, want ~3.3", bl.Freq)
	}
	if bl.Power > m.Budget() {
		t.Errorf("baseline power %.1f exceeds budget %.1f", bl.Power, m.Budget())
	}
	if bl.Power < 0.8*m.Budget() {
		t.Errorf("baseline power %.1f leaves budget badly unused", bl.Power)
	}
	if len(bl.Cores) != bl.N {
		t.Error("core list length mismatch")
	}
	// One more core must blow the budget.
	all := m.Chip.SelectCores(288, bl.Vdd, chip.SelectEfficient)
	if m.WithinBudget(all[:bl.N+1], bl.Vdd, bl.Freq) {
		t.Error("baseline is not maximal")
	}
}

// The NTC promise: at VddNTV the budget fits many times more cores than
// at STV (paper: 10-50x power reduction enables the 288-core design).
func TestNTVFitsManyMoreCores(t *testing.T) {
	m := testModel(t)
	bl := m.Baseline()
	vddNTV := m.Chip.VddNTV()
	// Price cores at a typical NTV frequency.
	nNTV := m.MaxCoresAt(vddNTV, 0.5, chip.SelectEfficient)
	if ratio := float64(nNTV) / float64(bl.N); ratio < 5 {
		t.Errorf("NTV fits only %.1fx the STV cores (%d vs %d)", ratio, nNTV, bl.N)
	}
}

func TestMaxCoresAtBoundary(t *testing.T) {
	m := testModel(t)
	vdd := m.Chip.VddNTV()
	n := m.MaxCoresAt(vdd, 0.5, chip.SelectEfficient)
	sel := m.Chip.SelectCores(288, vdd, chip.SelectEfficient)
	if n > 0 && !m.WithinBudget(sel[:n], vdd, 0.5) {
		t.Error("MaxCoresAt result over budget")
	}
	if n < 288 && m.WithinBudget(sel[:n+1], vdd, 0.5) {
		t.Error("MaxCoresAt not maximal")
	}
	// At an absurdly high frequency nothing fits... but at zero f some do.
	if m.MaxCoresAt(vdd, 1000, chip.SelectEfficient) > m.MaxCoresAt(vdd, 0.5, chip.SelectEfficient) {
		t.Error("higher f should not fit more cores")
	}
}

func TestValidate(t *testing.T) {
	if err := (&Model{}).Validate(); err == nil {
		t.Error("nil chip accepted")
	}
	m := testModel(t)
	m.NetworkFracDyn = -1
	if err := m.Validate(); err == nil {
		t.Error("negative coefficient accepted")
	}
}

func TestEngagedThermalCoupling(t *testing.T) {
	m := testModel(t)
	vdd := m.Chip.VddNTV()
	cores := m.Chip.SelectCores(128, vdd, chip.SelectEfficient)
	plain := m.Engaged(cores, vdd, 0.5)
	coupled, temp := m.EngagedThermal(cores, vdd, 0.5)
	// Temperature rises above ambient with load.
	if temp <= m.TAmbient {
		t.Errorf("die temperature %.1f C not above ambient %.1f C", temp, m.TAmbient)
	}
	// Dynamic power is temperature-independent; only leakage scales.
	if coupled.CoreDynamic != plain.CoreDynamic || coupled.Network != plain.Network {
		t.Error("thermal coupling touched dynamic components")
	}
	// Below the calibration temperature leakage shrinks; above it grows.
	tp := m.Chip.Cfg.Tech
	if temp < tp.TNom && coupled.CoreStatic >= plain.CoreStatic {
		t.Error("leakage did not shrink below TNom")
	}
	if temp > tp.TNom && coupled.CoreStatic <= plain.CoreStatic {
		t.Error("leakage did not grow above TNom")
	}
	// A heavier load runs hotter.
	_, tempHot := m.EngagedThermal(m.Chip.SelectCores(288, vdd, chip.SelectEfficient), vdd, 0.6)
	if tempHot <= temp {
		t.Error("more power should heat the die more")
	}
}

func TestThermalCalibrationAtBudget(t *testing.T) {
	// At roughly the PMAX budget the die should sit near the Table 2
	// TMIN = 80 C the leakage was calibrated at.
	m := testModel(t)
	bl := m.Baseline()
	_, temp := m.EngagedThermal(bl.Cores, bl.Vdd, bl.Freq)
	if temp < 70 || temp > 92 {
		t.Errorf("budget-level temperature %.1f C far from the 80 C calibration point", temp)
	}
}
