// Package power performs chip-level power accounting in the role McPAT
// played for the paper: it prices an engaged set of cores (plus the
// cluster memories and network slice they activate) at an operating
// point, checks the PMAX budget, and derives the STV baseline core
// count NSTV — the maximum number of cores that fit the budget at the
// super-threshold nominal voltage.
package power

import (
	"fmt"
	"math"

	"repro/internal/chip"
)

// Model prices operating points on one chip sample.
type Model struct {
	Chip *chip.Chip

	// ClusterMemLeakFactor scales a core's static power to one cluster
	// memory block's leakage (a 2 MB SRAM bank leaks a few core-
	// equivalents' worth of subthreshold current).
	ClusterMemLeakFactor float64
	// NetworkFracDyn is the network + cluster-bus energy as a fraction
	// of the engaged cores' dynamic power.
	NetworkFracDyn float64

	// Thermal coupling for EngagedThermal: die temperature is
	// TAmbient + RthPerW * total power, and leakage rises with it.
	TAmbient float64 // C
	RthPerW  float64 // C per W
}

// NewModel returns a Model with the default McPAT-flavoured overhead
// coefficients. The thermal defaults are calibrated so that running at
// the full PMAX budget heats the die to the leakage-calibration
// temperature (Table 2's TMIN = 80 C over a 45 C ambient).
func NewModel(ch *chip.Chip) *Model {
	return &Model{
		Chip:                 ch,
		ClusterMemLeakFactor: 0.6,
		NetworkFracDyn:       0.10,
		TAmbient:             45,
		RthPerW:              0.35,
	}
}

// Validate reports the first implausible coefficient, or nil.
func (m *Model) Validate() error {
	if m.Chip == nil {
		return fmt.Errorf("power: nil chip")
	}
	if m.ClusterMemLeakFactor < 0 || m.NetworkFracDyn < 0 {
		return fmt.Errorf("power: negative overhead coefficients")
	}
	return nil
}

// Breakdown itemizes the power of an operating point in Watts.
type Breakdown struct {
	CoreDynamic float64
	CoreStatic  float64
	Memory      float64
	Network     float64
}

// Total returns the summed power in Watts.
func (b Breakdown) Total() float64 {
	return b.CoreDynamic + b.CoreStatic + b.Memory + b.Network
}

// Engaged prices running the given cores at supply vdd and common
// frequency f GHz. Clusters containing no engaged core are power-gated
// and contribute nothing; each active cluster pays its memory leakage.
func (m *Model) Engaged(cores []int, vdd, f float64) Breakdown {
	var b Breakdown
	activeClusters := map[int]bool{}
	tp := m.Chip.Cfg.Tech
	for _, i := range cores {
		co := m.Chip.Cores[i]
		b.CoreDynamic += tp.DynPower(vdd, f)
		b.CoreStatic += m.Chip.CoreStaticPower(i, vdd)
		activeClusters[co.Cluster] = true
	}
	memLeakNom := tp.StaticPower(vdd, tp.VthNom) * m.ClusterMemLeakFactor
	b.Memory = float64(len(activeClusters)) * memLeakNom
	b.Network = b.CoreDynamic * m.NetworkFracDyn
	return b
}

// EngagedThermal prices the operating point with leakage-temperature
// coupling: die temperature follows the dissipated power, leakage
// follows the temperature, and the fixed point of the loop is returned
// together with the converged temperature in C. Engaged itself prices
// at the calibration temperature (Table 2's TMIN).
func (m *Model) EngagedThermal(cores []int, vdd, f float64) (Breakdown, float64) {
	base := m.Engaged(cores, vdd, f)
	tp := m.Chip.Cfg.Tech
	temp := tp.TNom
	b := base
	for i := 0; i < 8; i++ {
		scale := math.Exp(tp.LeakTempCoeff * (temp - tp.TNom))
		b = base
		b.CoreStatic *= scale
		b.Memory *= scale
		next := m.TAmbient + m.RthPerW*b.Total()
		if math.Abs(next-temp) < 1e-6 {
			temp = next
			break
		}
		temp = next
	}
	return b, temp
}

// Budget returns the chip's power budget PMAX in Watts.
func (m *Model) Budget() float64 { return m.Chip.Cfg.PowerBudget }

// WithinBudget reports whether the operating point fits PMAX.
func (m *Model) WithinBudget(cores []int, vdd, f float64) bool {
	return m.Engaged(cores, vdd, f).Total() <= m.Budget()+1e-9
}

// STVBaseline characterizes the paper's super-threshold reference
// operating point.
type STVBaseline struct {
	N     int     // NSTV: cores engaged
	Cores []int   // which cores
	Vdd   float64 // STV nominal supply
	Freq  float64 // GHz, nominal STV frequency (variation neglected, §6.3)
	Power float64 // W
}

// Baseline computes the STV reference: the maximum N such that the N
// most efficient cores running at the STV nominal voltage and nominal
// frequency fit PMAX. Following Section 6.3, STV operation neglects
// variation, so all cores run at the nominal fSTV.
func (m *Model) Baseline() STVBaseline {
	tp := m.Chip.Cfg.Tech
	vdd := tp.VddNomSTV
	f := tp.FSTV()
	all := m.Chip.SelectCores(len(m.Chip.Cores), vdd, chip.SelectEfficient)
	n := 0
	for n < len(all) && m.WithinBudget(all[:n+1], vdd, f) {
		n++
	}
	cores := all[:n]
	return STVBaseline{
		N:     n,
		Cores: cores,
		Vdd:   vdd,
		Freq:  f,
		Power: m.Engaged(cores, vdd, f).Total(),
	}
}

// MaxCoresAt returns the largest prefix of the selection order that
// fits the budget at (vdd, f); it is the power-limited core count the
// paper's Expand mode runs into.
func (m *Model) MaxCoresAt(vdd, f float64, policy chip.SelectPolicy) int {
	all := m.Chip.SelectCores(len(m.Chip.Cores), vdd, policy)
	lo, hi := 0, len(all)
	// Power grows monotonically with the engaged prefix; binary search.
	for lo < hi {
		mid := (lo + hi + 1) / 2
		if m.WithinBudget(all[:mid], vdd, f) {
			lo = mid
		} else {
			hi = mid - 1
		}
	}
	return lo
}
