package quality

import (
	"math"
	"testing"

	"repro/internal/mathx"
)

func TestDistortionPerfect(t *testing.T) {
	ref := []float64{1, 2, 3}
	d, err := Distortion([]float64{1, 2, 3}, ref)
	if err != nil || d != 0 {
		t.Fatalf("distortion = %g, err = %v", d, err)
	}
	q, _ := Quality([]float64{1, 2, 3}, ref)
	if q != 1 {
		t.Errorf("quality = %g", q)
	}
}

func TestDistortionRelativeError(t *testing.T) {
	// 10% relative error on every value -> distortion 0.1.
	ref := []float64{10, 20, -30}
	out := []float64{11, 22, -33}
	d, err := Distortion(out, ref)
	if err != nil || math.Abs(d-0.1) > 1e-12 {
		t.Fatalf("distortion = %g, want 0.1", d)
	}
}

func TestDistortionZeroRefGuard(t *testing.T) {
	ref := []float64{0, 100}
	out := []float64{1, 100}
	d, err := Distortion(out, ref)
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(d, 1) || math.IsNaN(d) || d > 1 {
		t.Errorf("zero-reference value blew up distortion: %g", d)
	}
}

func TestDistortionErrors(t *testing.T) {
	if _, err := Distortion([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Distortion(nil, nil); err == nil {
		t.Error("empty outputs accepted")
	}
}

func TestSSDAndNRMSE(t *testing.T) {
	ref := []float64{1, 2, 3, 4}
	out := []float64{1, 2, 3, 6}
	s, err := SSD(out, ref)
	if err != nil || s != 4 {
		t.Fatalf("SSD = %g", s)
	}
	n, err := NRMSE(out, ref)
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(1.0) / math.Sqrt(30.0/4.0)
	if math.Abs(n-want) > 1e-12 {
		t.Errorf("NRMSE = %g, want %g", n, want)
	}
	if v, _ := NRMSE(ref, ref); v != 0 {
		t.Error("NRMSE of identical vectors should be 0")
	}
}

func TestPSNR(t *testing.T) {
	ref := []float64{0, 100, 50, 25}
	if p, _ := PSNR(ref, ref); !math.IsInf(p, 1) {
		t.Error("identical images should give infinite PSNR")
	}
	noisy := []float64{1, 99, 51, 24}
	p, err := PSNR(noisy, ref)
	if err != nil {
		t.Fatal(err)
	}
	// MSE = 1, peak = 100 -> 10 log10(10000) = 40 dB.
	if math.Abs(p-40) > 1e-9 {
		t.Errorf("PSNR = %g dB, want 40", p)
	}
	noisier := []float64{5, 95, 55, 20}
	p2, _ := PSNR(noisier, ref)
	if p2 >= p {
		t.Error("more noise should mean lower PSNR")
	}
}

func TestSSIMIdentity(t *testing.T) {
	rng := mathx.NewRNG(1)
	w, h := 16, 16
	img := make([]float64, w*h)
	for i := range img {
		img[i] = rng.Uniform(0, 255)
	}
	s, err := SSIM(img, img, w, h)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-1) > 1e-9 {
		t.Errorf("self-SSIM = %g, want 1", s)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	rng := mathx.NewRNG(2)
	w, h := 32, 32
	ref := make([]float64, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			ref[y*w+x] = 128 + 100*math.Sin(float64(x)/3)*math.Cos(float64(y)/4)
		}
	}
	mild := make([]float64, len(ref))
	harsh := make([]float64, len(ref))
	for i := range ref {
		mild[i] = ref[i] + rng.Normal(0, 5)
		harsh[i] = ref[i] + rng.Normal(0, 60)
	}
	sMild, _ := SSIM(mild, ref, w, h)
	sHarsh, _ := SSIM(harsh, ref, w, h)
	if !(sHarsh < sMild && sMild < 1) {
		t.Errorf("SSIM ordering broken: harsh=%g mild=%g", sHarsh, sMild)
	}
}

func TestSSIMGeometryErrors(t *testing.T) {
	if _, err := SSIM(make([]float64, 10), make([]float64, 10), 5, 5); err == nil {
		t.Error("bad geometry accepted")
	}
	if _, err := SSIM(make([]float64, 16), make([]float64, 16), 4, 4); err == nil {
		t.Error("image smaller than window accepted")
	}
}

func TestRelative(t *testing.T) {
	if Relative(0.9, 0.6) != 1.5 {
		t.Error("relative quality wrong")
	}
	if !math.IsNaN(Relative(1, 0)) {
		t.Error("zero default should give NaN")
	}
}

func TestContributionsSumToDistortion(t *testing.T) {
	ref := []float64{10, 0, -30, 4.5, 1e-12, 7}
	out := []float64{11, 2, -33, 4.5, -5, 6}
	d, err := Distortion(out, ref)
	if err != nil {
		t.Fatalf("Distortion: %v", err)
	}
	contrib, err := Contributions(out, ref)
	if err != nil {
		t.Fatalf("Contributions: %v", err)
	}
	if len(contrib) != len(ref) {
		t.Fatalf("got %d contributions for %d values", len(contrib), len(ref))
	}
	var sum float64
	for i, c := range contrib {
		if c < 0 {
			t.Errorf("contribution %d = %g < 0", i, c)
		}
		sum += c
	}
	if math.Abs(sum-d) > 1e-12 {
		t.Fatalf("contributions sum to %g, Distortion = %g", sum, d)
	}
	// A perfect value contributes exactly zero.
	if contrib[3] != 0 {
		t.Errorf("exact-match value contributes %g, want 0", contrib[3])
	}
}

func TestContributionsErrors(t *testing.T) {
	if _, err := Contributions([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := Contributions(nil, nil); err == nil {
		t.Error("empty outputs accepted")
	}
}
