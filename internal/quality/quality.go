// Package quality implements the output-quality framework of the paper
// (Section 5.2): the distortion metric of Misailovic et al. — the mean,
// across all numeric output values, of the relative error per value —
// together with the SSD-, PSNR- and SSIM-based comparators the
// individual benchmarks plug into it. Quality is 1 - distortion and is
// reported relative to a "hyper-accurate" reference execution.
package quality

import (
	"fmt"
	"math"
)

// Distortion returns the average relative error per output value of out
// against the reference ref. Reference values indistinguishable from
// zero are compared on an absolute scale set by the reference's RMS so
// that a handful of zero outputs cannot blow up the average.
func Distortion(out, ref []float64) (float64, error) {
	if len(out) != len(ref) {
		return 0, fmt.Errorf("quality: length mismatch %d vs %d", len(out), len(ref))
	}
	if len(ref) == 0 {
		return 0, fmt.Errorf("quality: empty outputs")
	}
	scale := rms(ref)
	if scale == 0 {
		scale = 1
	}
	eps := 1e-9 * scale
	sum := 0.0
	for i := range ref {
		den := math.Abs(ref[i])
		if den < eps {
			den = scale
		}
		sum += math.Abs(out[i]-ref[i]) / den
	}
	return sum / float64(len(ref)), nil
}

// Contributions decomposes Distortion(out, ref) value by value:
// element i of the result is output value i's relative error divided
// by the value count, using exactly Distortion's denominator rule, so
// the contributions sum to the total distortion (up to float rounding).
// The decomposition is what lets a fault-attribution ledger charge the
// distortion of each output value to the core that produced it.
func Contributions(out, ref []float64) ([]float64, error) {
	if len(out) != len(ref) {
		return nil, fmt.Errorf("quality: length mismatch %d vs %d", len(out), len(ref))
	}
	if len(ref) == 0 {
		return nil, fmt.Errorf("quality: empty outputs")
	}
	scale := rms(ref)
	if scale == 0 {
		scale = 1
	}
	eps := 1e-9 * scale
	n := float64(len(ref))
	contrib := make([]float64, len(ref))
	for i := range ref {
		den := math.Abs(ref[i])
		if den < eps {
			den = scale
		}
		contrib[i] = math.Abs(out[i]-ref[i]) / den / n
	}
	return contrib, nil
}

// Quality returns 1 - Distortion(out, ref). A perfect match scores 1;
// heavily corrupted outputs can score below zero.
func Quality(out, ref []float64) (float64, error) {
	d, err := Distortion(out, ref)
	if err != nil {
		return 0, err
	}
	return 1 - d, nil
}

func rms(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x * x
	}
	return math.Sqrt(s / float64(len(xs)))
}

// SSD returns the sum of squared differences between out and ref, the
// comparator bodytrack and hotspot distortion is built on.
func SSD(out, ref []float64) (float64, error) {
	if len(out) != len(ref) {
		return 0, fmt.Errorf("quality: length mismatch %d vs %d", len(out), len(ref))
	}
	s := 0.0
	for i := range ref {
		d := out[i] - ref[i]
		s += d * d
	}
	return s, nil
}

// NRMSE returns the root-mean-square error normalized by the
// reference's RMS: an SSD-based relative distortion in [0, inf).
func NRMSE(out, ref []float64) (float64, error) {
	s, err := SSD(out, ref)
	if err != nil {
		return 0, err
	}
	if len(ref) == 0 {
		return 0, fmt.Errorf("quality: empty outputs")
	}
	r := rms(ref)
	if r == 0 {
		r = 1
	}
	return math.Sqrt(s/float64(len(ref))) / r, nil
}

// PSNR returns the peak signal-to-noise ratio in dB of out against ref,
// with the peak taken as the reference's maximum absolute value. A
// perfect match returns +Inf.
func PSNR(out, ref []float64) (float64, error) {
	s, err := SSD(out, ref)
	if err != nil {
		return 0, err
	}
	if len(ref) == 0 {
		return 0, fmt.Errorf("quality: empty outputs")
	}
	mse := s / float64(len(ref))
	if mse == 0 {
		return math.Inf(1), nil
	}
	peak := 0.0
	for _, x := range ref {
		if a := math.Abs(x); a > peak {
			peak = a
		}
	}
	if peak == 0 {
		peak = 1
	}
	return 10 * math.Log10(peak*peak/mse), nil
}

// SSIM returns the mean structural-similarity index of out against ref,
// both interpreted as w x h images, computed over 8x8 windows with the
// standard stabilizing constants and dynamic range taken from ref.
// SSIM is 1 for identical images and degrades toward (and below) 0; it
// tracks human perception better than PSNR, which is why x264's
// distortion is based on it (Section 5.2).
func SSIM(out, ref []float64, w, h int) (float64, error) {
	if w <= 0 || h <= 0 || len(out) != w*h || len(ref) != w*h {
		return 0, fmt.Errorf("quality: bad SSIM geometry %dx%d for %d/%d values", w, h, len(out), len(ref))
	}
	lo, hi := ref[0], ref[0]
	for _, x := range ref {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	dr := hi - lo
	if dr == 0 {
		dr = 1
	}
	c1 := (0.01 * dr) * (0.01 * dr)
	c2 := (0.03 * dr) * (0.03 * dr)

	const win = 8
	sum, count := 0.0, 0
	for by := 0; by+win <= h; by += win {
		for bx := 0; bx+win <= w; bx += win {
			var mx, my float64
			for y := by; y < by+win; y++ {
				for x := bx; x < bx+win; x++ {
					mx += out[y*w+x]
					my += ref[y*w+x]
				}
			}
			n := float64(win * win)
			mx /= n
			my /= n
			var vx, vy, cov float64
			for y := by; y < by+win; y++ {
				for x := bx; x < bx+win; x++ {
					dx, dy := out[y*w+x]-mx, ref[y*w+x]-my
					vx += dx * dx
					vy += dy * dy
					cov += dx * dy
				}
			}
			vx /= n - 1
			vy /= n - 1
			cov /= n - 1
			ssim := ((2*mx*my + c1) * (2*cov + c2)) /
				((mx*mx + my*my + c1) * (vx + vy + c2))
			sum += ssim
			count++
		}
	}
	if count == 0 {
		return 0, fmt.Errorf("quality: image smaller than the SSIM window")
	}
	return sum / float64(count), nil
}

// Relative normalizes a quality value against the quality measured at
// the default Accordion input, producing the y-axes of Figures 2 and 4.
func Relative(q, qDefault float64) float64 {
	if qDefault == 0 {
		return math.NaN()
	}
	return q / qDefault
}
