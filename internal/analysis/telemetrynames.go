package analysis

import (
	"go/ast"
	"go/types"
	"regexp"
	"strconv"
)

// TelemetryNamesAnalyzer keeps the observability vocabulary closed and
// greppable. Every name handed to telemetry.GetCounter / GetGauge /
// GetHistogram / StartSpan and every kind handed to events.New must
//
//   - resolve statically: a string literal, a concatenation with a
//     literal prefix ("cache." + name + ".hits"), or a local variable
//     whose every assignment in the function is such a value,
//   - match ^[a-z0-9_.]+$ in its literal part, and
//   - be registered in the catalog (internal/analysis/catalog.go) —
//     exact names exactly, dynamic families by literal prefix.
//
// This is what keeps /metricsz names and the event-kind vocabulary
// (which CI smoke checks and jq pipelines key on) from drifting or
// colliding: adding a metric means a visible catalog diff, and a typo
// in an emit site fails the lint run instead of shipping a phantom
// name.
var TelemetryNamesAnalyzer = &Analyzer{
	Name: "telemetrynames",
	Doc:  "require literal, well-formed, cataloged telemetry metric and event names",
	Run:  runTelemetryNames,
}

var nameRe = regexp.MustCompile(`^[a-z0-9_.]+$`)

// metricFuncs and eventFuncs name the registration points, by
// module-relative defining package.
var metricFuncs = map[string]bool{
	"GetCounter": true, "GetGauge": true, "GetHistogram": true,
	"GetWindow": true, "GetWindowWithUnit": true, "StartSpan": true,
}

const (
	telemetryPkgRel = "internal/telemetry"
	eventsPkgRel    = "internal/telemetry/events"
)

func runTelemetryNames(pass *Pass) {
	rel, _ := pass.Cfg.rel(pass.Pkg.Path)
	for _, exempt := range pass.Cfg.TelemetryExempt {
		if rel == exempt {
			return
		}
	}
	info := pass.Pkg.Info
	telemetryPkg := pass.Cfg.ModulePath + "/" + telemetryPkgRel
	eventsPkg := pass.Cfg.ModulePath + "/" + eventsPkgRel
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := funcFor(info, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			var kind string
			cat := pass.Cfg.Catalog
			var exact map[string]bool
			var prefixes []string
			switch {
			case fn.Pkg().Path() == telemetryPkg && metricFuncs[fn.Name()]:
				kind, exact, prefixes = "metric", cat.Metrics, cat.MetricPrefixes
			case fn.Pkg().Path() == eventsPkg && fn.Name() == "New":
				kind, exact, prefixes = "event", cat.Events, cat.EventPrefixes
			default:
				return true
			}
			checkName(pass, call, call.Args[0], kind, exact, prefixes)
			return true
		})
	}
}

// checkName validates one name argument against the catalog.
func checkName(pass *Pass, call *ast.CallExpr, arg ast.Expr, kind string, exact map[string]bool, prefixes []string) {
	lit, isPrefix, ok := resolveName(pass, arg)
	if !ok {
		pass.Reportf(arg.Pos(), "%s name must be a string literal (or a literal-prefixed concatenation); dynamic names cannot be audited against the catalog", kind)
		return
	}
	if !nameRe.MatchString(lit) {
		pass.Reportf(arg.Pos(), "%s name %q must match ^[a-z0-9_.]+$", kind, lit)
		return
	}
	if isPrefix {
		if !lookupPrefix(lit, prefixes) {
			pass.Reportf(arg.Pos(), "%s name family %q* is not registered in internal/analysis/catalog.go", kind, lit)
		}
		return
	}
	if !lookupExact(lit, exact, prefixes) {
		pass.Reportf(arg.Pos(), "%s name %q is not registered in internal/analysis/catalog.go", kind, lit)
	}
}

// resolveName statically resolves arg to a literal (isPrefix=false) or
// to the literal prefix of a concatenation (isPrefix=true). For a
// plain identifier it requires every assignment to that variable to be
// a string literal; the first is returned and the alternates are
// validated in place by resolveIdent.
func resolveName(pass *Pass, arg ast.Expr) (lit string, isPrefix, ok bool) {
	switch e := ast.Unparen(arg).(type) {
	case *ast.BasicLit:
		if e.Kind.String() != "STRING" {
			return "", false, false
		}
		s, err := strconv.Unquote(e.Value)
		if err != nil {
			return "", false, false
		}
		return s, false, true
	case *ast.BinaryExpr:
		if e.Op.String() != "+" {
			return "", false, false
		}
		// Leftmost operand of the concatenation chain must be literal.
		left := ast.Unparen(e.X)
		for {
			if be, isBin := left.(*ast.BinaryExpr); isBin && be.Op.String() == "+" {
				left = ast.Unparen(be.X)
				continue
			}
			break
		}
		if bl, isLit := left.(*ast.BasicLit); isLit {
			s, err := strconv.Unquote(bl.Value)
			if err != nil {
				return "", false, false
			}
			return s, true, true
		}
		return "", false, false
	case *ast.Ident:
		return resolveIdent(pass, e)
	}
	return "", false, false
}

// resolveIdent handles the local-variable idiom
//
//	kind := "fault.injected"
//	if mode == Drop { kind = "drop.triggered" }
//	events.New(kind)
//
// by requiring every assignment to the variable in its declaring
// function to be a plain string literal; the first literal is returned
// for charset checking and ALL of them must be cataloged, which the
// caller verifies via the extra values in prefixAlts.
func resolveIdent(pass *Pass, id *ast.Ident) (string, bool, bool) {
	obj := pass.Pkg.Info.Uses[id]
	if obj == nil {
		return "", false, false
	}
	v, isVar := obj.(*types.Var)
	if !isVar {
		// A typed constant still resolves exactly.
		if c, isConst := obj.(*types.Const); isConst && c.Val() != nil {
			s := c.Val().ExactString()
			if unq, err := strconv.Unquote(s); err == nil {
				return unq, false, true
			}
		}
		return "", false, false
	}
	// Collect every assignment to v in the file set.
	var lits []string
	complete := true
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			as, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range as.Lhs {
				li, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				lobj := pass.Pkg.Info.Defs[li]
				if lobj == nil {
					lobj = pass.Pkg.Info.Uses[li]
				}
				if lobj != v || i >= len(as.Rhs) {
					continue
				}
				if bl, ok := ast.Unparen(as.Rhs[i]).(*ast.BasicLit); ok {
					if s, err := strconv.Unquote(bl.Value); err == nil {
						lits = append(lits, s)
						continue
					}
				}
				complete = false
			}
			return true
		})
	}
	if !complete || len(lits) == 0 {
		return "", false, false
	}
	// Validate the alternates beyond the first here, so the caller's
	// single-value check covers the whole set.
	for _, alt := range lits[1:] {
		if !nameRe.MatchString(alt) {
			pass.Reportf(id.Pos(), "name %q (assigned to %s) must match ^[a-z0-9_.]+$", alt, id.Name)
		} else if !lookupExact(alt, pass.Cfg.Catalog.Events, pass.Cfg.Catalog.EventPrefixes) && !lookupExact(alt, pass.Cfg.Catalog.Metrics, pass.Cfg.Catalog.MetricPrefixes) {
			pass.Reportf(id.Pos(), "name %q (assigned to %s) is not registered in internal/analysis/catalog.go", alt, id.Name)
		}
	}
	return lits[0], false, true
}
