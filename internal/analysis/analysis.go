// Package analysis is the repository's static-analysis engine: a
// stdlib-only (go/ast + go/parser + go/types with the source importer,
// no x/tools) driver plus the project-specific analyzers that turn the
// reproduction's determinism and layering contracts into compile-time
// invariants instead of runtime hopes.
//
// The guarantees this repository trades on — byte-identical
// parallel-vs-sequential runs, dense-vs-circulant bit-equivalence below
// variation.ExactSampleCap, ledger shares summing to the measured
// distortion within 1e-9, stable golden files — are all one careless
// `time.Now` or unsorted map range away from silently eroding. Each
// analyzer polices one such failure mode:
//
//	determinism     no time.Now/time.Since, global math/rand, or bare
//	                `go` statements in simulation packages
//	mapiter         no map iteration that writes to an encoder, builder,
//	                writer, or escaping slice without sorting first
//	layering        the import DAG (the README's layering matrix,
//	                formerly duplicated in layering_test.go)
//	floateq         no ==/!= on floats outside an allowlist of exact
//	                key comparisons
//	telemetrynames  telemetry metric and event names are literals,
//	                match ^[a-z0-9_.]+$, and live in the catalog
//	seedhygiene     no *mathx.RNG or worker-invariant seed reuse
//	                across parallel worker closures
//
// A finding can be suppressed with a justified inline comment,
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the offending line or the line above it. Suppressions are
// parsed, counted, and budgeted: an unused or malformed suppression is
// itself a diagnostic, and a tree that accumulates more than
// Config.SuppressionBudget of them fails the run, so the escape hatch
// cannot quietly become the front door.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer is one named static check. Run inspects a single
// type-checked package and reports findings through the pass.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass hands one loaded package to one analyzer.
type Pass struct {
	Analyzer *Analyzer
	Cfg      *Config
	Pkg      *Package
	report   func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding: where, which analyzer, and what.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String renders the diagnostic in the driver's canonical
// file:line:col: [analyzer] message shape.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzers returns every analyzer in report order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		DeterminismAnalyzer,
		MapIterAnalyzer,
		LayeringAnalyzer,
		FloatEqAnalyzer,
		TelemetryNamesAnalyzer,
		SeedHygieneAnalyzer,
	}
}

// suppression is one parsed //lint:ignore comment.
type suppression struct {
	analyzer string
	reason   string
	pos      token.Pos
	used     bool
}

// ignoreRe matches `//lint:ignore <analyzer> <reason>`; the reason is
// mandatory — an unjustified suppression is a finding.
var ignoreRe = regexp.MustCompile(`^//\s*lint:ignore\s+(\S+)\s*(.*)$`)

// suppressions indexes a package's //lint:ignore comments by the line
// they apply to. A comment suppresses matching diagnostics on its own
// line and on the line directly below it (the comment-above idiom).
type suppressions struct {
	byLine map[int][]*suppression
	all    []*suppression
}

// parseSuppressions scans every comment in the package. Malformed
// directives (no reason, unknown analyzer) are reported immediately
// since no later stage will look at them again.
func parseSuppressions(pkg *Package, known map[string]bool, report func(Diagnostic)) *suppressions {
	sup := &suppressions{byLine: map[int][]*suppression{}}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := ignoreRe.FindStringSubmatch(c.Text)
				if m == nil {
					if strings.HasPrefix(c.Text, "//lint:") {
						report(Diagnostic{
							Analyzer: "driver",
							Pos:      pkg.Fset.Position(c.Pos()),
							Message:  fmt.Sprintf("malformed lint directive %q (want //lint:ignore <analyzer> <reason>)", c.Text),
						})
					}
					continue
				}
				s := &suppression{analyzer: m[1], reason: strings.TrimSpace(m[2]), pos: c.Pos()}
				pos := pkg.Fset.Position(c.Pos())
				switch {
				case !known[s.analyzer]:
					report(Diagnostic{
						Analyzer: "driver",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:ignore names unknown analyzer %q", s.analyzer),
					})
					continue
				case s.reason == "":
					report(Diagnostic{
						Analyzer: "driver",
						Pos:      pos,
						Message:  fmt.Sprintf("//lint:ignore %s needs a justification", s.analyzer),
					})
					continue
				}
				sup.all = append(sup.all, s)
				sup.byLine[pos.Line] = append(sup.byLine[pos.Line], s)
				sup.byLine[pos.Line+1] = append(sup.byLine[pos.Line+1], s)
			}
		}
	}
	return sup
}

// match consumes a suppression for a diagnostic, if one applies.
func (s *suppressions) match(d Diagnostic) bool {
	for _, cand := range s.byLine[d.Pos.Line] {
		if cand.analyzer == d.Analyzer {
			cand.used = true
			return true
		}
	}
	return false
}

// Result is one driver run's outcome.
type Result struct {
	Diagnostics []Diagnostic
	Suppressed  int // findings silenced by a used //lint:ignore
}

// Run loads the packages matching patterns and applies every analyzer,
// returning findings sorted by position. Suppressed findings are
// counted, unused suppressions are reported, and exceeding the
// configured suppression budget is itself a finding.
func Run(cfg *Config, patterns []string) (Result, error) {
	pkgs, err := Load(cfg, patterns)
	if err != nil {
		return Result{}, err
	}
	return RunPackages(cfg, pkgs), nil
}

// RunPackages applies every analyzer to already-loaded packages.
func RunPackages(cfg *Config, pkgs []*Package) Result {
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	var res Result
	totalSuppressions := 0
	for _, pkg := range pkgs {
		var raw []Diagnostic
		collect := func(d Diagnostic) { raw = append(raw, d) }
		sup := parseSuppressions(pkg, known, collect)
		totalSuppressions += len(sup.all)
		for _, a := range Analyzers() {
			pass := &Pass{Analyzer: a, Cfg: cfg, Pkg: pkg, report: collect}
			a.Run(pass)
		}
		for _, d := range raw {
			if d.Analyzer != "driver" && sup.match(d) {
				res.Suppressed++
				continue
			}
			res.Diagnostics = append(res.Diagnostics, d)
		}
		for _, s := range sup.all {
			if !s.used {
				res.Diagnostics = append(res.Diagnostics, Diagnostic{
					Analyzer: "driver",
					Pos:      pkg.Fset.Position(s.pos),
					Message:  fmt.Sprintf("unused //lint:ignore %s (nothing to suppress here)", s.analyzer),
				})
			}
		}
	}
	if cfg.SuppressionBudget >= 0 && totalSuppressions > cfg.SuppressionBudget {
		res.Diagnostics = append(res.Diagnostics, Diagnostic{
			Analyzer: "driver",
			Message: fmt.Sprintf("suppression budget exceeded: %d //lint:ignore directives, budget %d — fix findings instead of silencing them",
				totalSuppressions, cfg.SuppressionBudget),
		})
	}
	sort.SliceStable(res.Diagnostics, func(i, j int) bool {
		a, b := res.Diagnostics[i].Pos, res.Diagnostics[j].Pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Column < b.Column
	})
	return res
}

// ---- shared type helpers used by several analyzers ----

// namedType reports the (package path, name) of t's core named type,
// unwrapping pointers and aliases; ok is false for unnamed types.
func namedType(t types.Type) (pkgPath, name string, ok bool) {
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, isNamed := t.(*types.Named)
	if !isNamed {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name(), true
	}
	return obj.Pkg().Path(), obj.Name(), true
}

// isFloat reports whether t's underlying type is a floating-point
// basic type.
func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

// funcFor resolves the called function object of a call expression,
// seeing through parenthesization; nil when the callee is not a
// declared function or method.
func funcFor(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// calleeIs reports whether call resolves to the package-level function
// pkgPath.name.
func calleeIs(info *types.Info, call *ast.CallExpr, pkgPath, name string) bool {
	fn := funcFor(info, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name && fn.Type().(*types.Signature).Recv() == nil
}
