package analysis

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed and type-checked target package: the unit a
// Pass inspects. Files holds only non-test sources — the analyzers
// police shipped behavior; tests may legitimately use wall clocks,
// unordered iteration, and exact float comparisons.
type Package struct {
	Path  string // import path, e.g. repro/internal/chip
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// ModuleRoot locates the enclosing module: the nearest ancestor of dir
// carrying a go.mod, returning its directory and module path.
func ModuleRoot(dir string) (root, modulePath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("analysis: no go.mod above %s", abs)
		}
	}
}

// expand resolves go-tool-style patterns ("./...", "./internal/...",
// "./cmd/accordionvet") into package directories under root. Like the
// go tool, the ... wildcard never descends into testdata, hidden, or
// underscore-prefixed directories; the golden seeded-violation
// packages under internal/analysis/testdata stay invisible to a
// whole-tree run and are loaded explicitly by their tests.
func expand(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		rec := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			rec = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		base := filepath.Join(root, filepath.FromSlash(pat))
		info, err := os.Stat(base)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("analysis: pattern %q does not name a directory under %s", pat, root)
		}
		if !rec {
			if hasGoFiles(base) {
				add(base)
			}
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// hasGoFiles reports whether dir directly contains at least one
// non-test .go file.
func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if n := e.Name(); !e.IsDir() && strings.HasSuffix(n, ".go") && !strings.HasSuffix(n, "_test.go") {
			return true
		}
	}
	return false
}

// Load parses and type-checks every package matching patterns,
// resolving dependencies from source through the stdlib source
// importer (zero-dep: no x/tools, no export data). Patterns are
// resolved relative to cfg.ModuleRoot.
func Load(cfg *Config, patterns []string) ([]*Package, error) {
	dirs, err := expand(cfg.ModuleRoot, patterns)
	if err != nil {
		return nil, err
	}
	if len(dirs) == 0 {
		return nil, fmt.Errorf("analysis: patterns %v matched no packages", patterns)
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loadDir(cfg, fset, imp, dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// loadDir parses dir's non-test files and type-checks them as the
// package named by its module-relative path.
func loadDir(cfg *Config, fset *token.FileSet, imp types.Importer, dir string) (*Package, error) {
	rel, err := filepath.Rel(cfg.ModuleRoot, dir)
	if err != nil {
		return nil, err
	}
	path := cfg.ModulePath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: %w", err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("analysis: type-checking %s: %v", path, typeErrs[0])
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
