package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismAnalyzer enforces the reproduction's core contract: a
// simulation result is a pure function of (configuration, seed). In
// the configured simulation packages it forbids
//
//   - time.Now / time.Since — wall-clock reads make runs
//     unrepeatable; timing belongs to telemetry.StartTimer (whose
//     disabled path never touches the clock) or to callers passing
//     times in,
//   - the global math/rand top-level functions — the process-wide
//     source is seeded once per process and shared across goroutines,
//     so any draw perturbs every other stream; all randomness must
//     flow through *mathx.RNG derived via Split/SplitSeed,
//   - bare go statements — ad-hoc goroutines reintroduce scheduling
//     nondeterminism the bounded pool in internal/parallel was built
//     to contain (submission order, panic capture, deterministic
//     fan-in live there).
var DeterminismAnalyzer = &Analyzer{
	Name: "determinism",
	Doc:  "forbid wall clocks, global math/rand, and bare goroutines in simulation packages",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	if !pass.Cfg.isSimPackage(pass.Pkg.Path) {
		return
	}
	info := pass.Pkg.Info
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Reportf(n.Pos(), "bare go statement in simulation package %s; use the deterministic pool in internal/parallel", pass.Pkg.Path)
			case *ast.CallExpr:
				fn := funcFor(info, n)
				if fn == nil || fn.Pkg() == nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" || fn.Name() == "Since" {
						pass.Reportf(n.Pos(), "time.%s in simulation package %s; wall clocks break run repeatability — use telemetry.StartTimer or take times as inputs", fn.Name(), pass.Pkg.Path)
					}
				case "math/rand", "math/rand/v2":
					// Constructors (New, NewSource, ...) build local,
					// seedable generators and are fine; the package-level
					// draws hit the shared global source.
					if fn.Type().(*types.Signature).Recv() == nil && !strings.HasPrefix(fn.Name(), "New") {
						pass.Reportf(n.Pos(), "global %s.%s in simulation package %s; draws from the shared source are order-dependent — use *mathx.RNG with Split/SplitSeed", fn.Pkg().Path(), fn.Name(), pass.Pkg.Path)
					}
				}
			}
			return true
		})
	}
}
