// Package historynames seeds catalog violations against the
// run-history tier's self-accounting emit sites. The test's catalog
// registers exactly: metrics "history.appends" and
// "history.gate.regressions", event "history.appended".
package historynames

import (
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// Registered emits through every registration point the history store
// and gate actually use; never flagged.
func Registered() {
	telemetry.GetCounter("history.appends").Inc()
	telemetry.GetGauge("history.gate.regressions").Set(0)
	events.New("history.appended").Int("metrics", 27).Emit()
}

// UnregisteredCounter counts appends under a name the catalog has
// never heard of — the drift the audit exists to catch: a phantom
// history.* metric would ship a /metricsz family the regression gate
// and CI smoke never learn to read.
func UnregisteredCounter() {
	telemetry.GetCounter("history.phantom_appends").Inc() // want `metric name "history.phantom_appends" is not registered`
}

// UnregisteredGauge proves the gauge constructor is audited for the
// gate's family too.
func UnregisteredGauge() {
	telemetry.GetGauge("history.gate.ghosts").Set(1) // want `metric name "history.gate.ghosts" is not registered`
}

// UnregisteredEvent emits an event kind outside the closed
// vocabulary jq pipelines key on.
func UnregisteredEvent() {
	events.New("history.vanished").Emit() // want `event name "history.vanished" is not registered`
}

// BadCharset uses a name outside the [a-z0-9_.] alphabet.
func BadCharset() {
	telemetry.GetCounter("History-Appends").Inc() // want `must match`
}

// Dynamic passes a parameter through: unauditable.
func Dynamic(name string) {
	telemetry.GetCounter(name).Inc() // want `must be a string literal`
}
