// Package a is a substrate in the layering testdata: its matrix entry
// allows sink, but the substrate ban list forbids anything ending in
// /sink, so the import below trips the purity rule (and only it).
package a

import "repro/internal/analysis/testdata/src/layering/sink" // want `substrate package .* imports .*sink`

// FromSink re-exports the leaf value.
const FromSink = sink.Value
