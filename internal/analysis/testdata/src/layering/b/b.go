// Package b imports a, which its matrix entry does not allow.
package b

import "repro/internal/analysis/testdata/src/layering/a" // want `b imports a, which the layering matrix forbids`

// Again re-exports through the forbidden edge.
const Again = a.FromSink
