// Package sink is a leaf the layering testdata imports.
package sink

// Value is exported so importers have something to use.
const Value = 42
