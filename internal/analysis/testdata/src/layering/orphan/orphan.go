// Package orphan has no layering-matrix entry at all.
package orphan // want `package .*orphan missing from the layering matrix`

// Lonely keeps the package non-empty.
const Lonely = true
