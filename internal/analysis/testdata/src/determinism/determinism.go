// Package determinism seeds every violation class the determinism
// analyzer must catch, plus the sanctioned alternatives it must not
// flag. Loaded only by the golden-diagnostic tests (testdata is
// invisible to builds and to accordionvet's ./... expansion).
package determinism

import (
	"math/rand"
	"time"

	"repro/internal/mathx"
)

// Simulate is a stand-in simulation kernel.
func Simulate(seed int64) float64 {
	start := time.Now() // want `time.Now in simulation package`
	_ = start
	elapsed := time.Since(start) // want `time.Since in simulation package`
	_ = elapsed

	_ = rand.Float64()                 // want `global math/rand.Float64`
	_ = rand.Intn(7)                   // want `global math/rand.Intn`
	rand.Shuffle(3, func(i, j int) {}) // want `global math/rand.Shuffle`

	// Constructors are fine: a locally seeded source is deterministic.
	local := rand.New(rand.NewSource(seed))
	_ = local.Float64()

	// The repository's own RNG is the sanctioned path.
	rng := mathx.NewRNG(seed)
	return rng.Float64()
}

// Fork spawns an ad-hoc goroutine, which the bounded pool forbids.
func Fork(done chan struct{}) {
	go func() { // want `bare go statement`
		close(done)
	}()
}
